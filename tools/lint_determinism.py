#!/usr/bin/env python3
"""Determinism lint for the mpsram sources.

The repo's central guarantee is bitwise thread-count determinism of every
parallel path (ROADMAP, "Determinism contract").  This linter catches the
constructs that historically break that guarantee at the point they are
introduced, before any bench gate can notice a drifting checksum:

  rand                 C rand() draws from hidden global state.
  random-device        std::random_device is nondeterministic by design;
                       every stream must derive from an explicit seed
                       (util::Rng::stream / Rng::child).
  wall-clock           time() / std::chrono ::now() make results depend on
                       when they ran.  Bench wall-time measurement lives in
                       bench/, which is not scanned; src/ must stay clean.
  unordered-iteration  Iterating an unordered_{map,set} feeds hash-order —
                       which varies across libstdc++ versions and pointer
                       salts — into whatever the loop accumulates.  Iterate
                       a sorted container or an index range instead.
  float-narrowing      float in numeric code silently narrows; reduction
                       loops accumulate the 2^-24 steps into thread-count-
                       dependent results.  The codebase is double-only.
  raw-thread           std::thread / std::jthread / std::async / OpenMP
                       outside util::Thread_pool bypass the deterministic
                       chunking of core::run and the one-pool-per-thread
                       discipline.
  raw-socket           socket/accept/bind/connect/recv/send/poll/select
                       syscalls outside src/util/ and src/core/service.cpp
                       grow an unaudited I/O surface; all socket I/O goes
                       through util::Socket / util::Unix_listener and the
                       service daemon's poll loop.

Escape hatch: a finding on a line containing `// lint:allow(<rule>)` (or
whose previous line is exactly such a comment) is suppressed.  Use it for
reviewed, order-insensitive exceptions and say why next to it.

Self-test: `--self-test` runs the rules over tools/lint_fixtures/, where
every deliberate violation is annotated `// lint:expect(<rule>)`; the
linter proves each rule fires exactly where expected (and nowhere else)
and that lint:allow suppresses.  CI runs the self-test before the real
scan, so a regex regression cannot silently stop a rule from firing.

Exit status: 0 clean, 1 findings (or self-test mismatch), 2 usage error.
No dependencies outside the standard library.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

SOURCE_SUFFIXES = {".cpp", ".h", ".hpp", ".cc"}

# Paths (relative to the repo root, '/'-separated) where raw threading
# primitives are the implementation of the sanctioned pool itself.
RAW_THREAD_ALLOWED = ("src/util/thread_pool.h", "src/util/thread_pool.cpp")

# Where raw socket/poll syscalls are the implementation of the sanctioned
# I/O layer: the util socket wrappers and the service daemon's poll loop.
RAW_SOCKET_ALLOWED_PREFIXES = ("src/util/",)
RAW_SOCKET_ALLOWED = ("src/core/service.cpp",)

ALLOW_RE = re.compile(r"//\s*lint:allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")
EXPECT_RE = re.compile(r"//\s*lint:expect\(([a-z-]+)\)")


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def render(self, root: Path) -> str:
        try:
            shown = self.path.relative_to(root)
        except ValueError:
            shown = self.path
        return f"{shown}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literal contents, preserving
    line structure so finding line numbers stay exact."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append(c)
                i += 1
            elif c == "'":
                state = "char"
                out.append(c)
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # string or char literal
            quote = '"' if state == "string" else "'"
            if c == "\\" and i + 1 < n:
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(c)
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


# --- per-line regex rules ----------------------------------------------------

LINE_RULES = [
    (
        "rand",
        re.compile(r"(?<!::)\brand\s*\(|\bsrand\s*\("),
        "C rand()/srand() draw from hidden global state; derive a "
        "util::Rng stream from an explicit seed instead",
    ),
    (
        "random-device",
        re.compile(r"\brandom_device\b"),
        "std::random_device is nondeterministic; seed util::Rng "
        "explicitly (Rng::stream / Rng::child)",
    ),
    (
        "wall-clock",
        # `time` only in its C call form (an argument present), so that
        # accessors/members named time() do not fire.
        re.compile(
            r"(?<![\w:.])time\s*\(\s*(?:NULL\b|nullptr\b|0\b|&)"
            r"|::now\s*\(|\bclock\s*\(\s*\)|\bgettimeofday\b"
        ),
        "wall-clock reads make results depend on when they ran; keep "
        "timing in bench/ drivers only",
    ),
    (
        "float-narrowing",
        re.compile(r"\bfloat\b"),
        "float narrows silently and makes reduction order observable; "
        "this codebase computes in double",
    ),
    (
        "raw-thread",
        re.compile(
            r"std::thread\b(?!::hardware_concurrency)|std::jthread\b"
            r"|std::async\b|#\s*pragma\s+omp\b|#\s*include\s*<omp\.h>"
        ),
        "raw threading outside util::Thread_pool bypasses the "
        "deterministic chunking of core::run",
    ),
    (
        "raw-socket",
        # Two spellings of a raw syscall: a bare call (`accept(fd, ...)`,
        # not preceded by an identifier, '.', or '::' — so member calls
        # and qualified names stay quiet) and a global-qualified call
        # (`::socket(...)` where the `::` is not itself qualified).
        re.compile(
            r"(?<![\w.:])(?:socket|accept4?|bind|listen|connect|recv"
            r"|send(?:msg|to)?|poll|ppoll|select|epoll_(?:create1?|ctl|wait))"
            r"\s*\("
            r"|(?<![\w)>\]])::(?:socket|accept4?|bind|listen|connect|recv"
            r"|send(?:msg|to)?|poll|ppoll|select|epoll_(?:create1?|ctl|wait))"
            r"\s*\("
        ),
        "raw socket/poll syscalls outside src/util/ and "
        "src/core/service.cpp; route I/O through util::Socket / "
        "util::Unix_listener",
    ),
]

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set)\s*<[^;\n]*>\s*(?:const\s*)?[&*]?\s*(\w+)\s*[;{=,()]"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\(\s*[^;)]*?:\s*([^)]+)\)")
UNORDERED_EXPR_RE = re.compile(r"\bunordered_(?:map|set)\b")


def scan_file(path: Path, relpath: str, self_test: bool) -> tuple[list, list]:
    """Return (findings, expects) for one file."""
    raw = path.read_text(encoding="utf-8", errors="replace")
    raw_lines = raw.split("\n")
    code = strip_comments_and_strings(raw)
    code_lines = code.split("\n")

    allows: dict[int, set] = {}
    expects = []
    for idx, line in enumerate(raw_lines, start=1):
        m = ALLOW_RE.search(line)
        if m:
            rules = {r.strip() for r in m.group(1).split(",")}
            # An allow comment covers its own line; a comment-only line
            # covers the next line too.
            allows.setdefault(idx, set()).update(rules)
            if line.strip().startswith("//"):
                allows.setdefault(idx + 1, set()).update(rules)
        if self_test:
            e = EXPECT_RE.search(line)
            if e:
                expects.append((relpath, idx, e.group(1)))

    findings = []

    def report(lineno: int, rule: str, message: str):
        if rule in allows.get(lineno, set()):
            return
        findings.append(Finding(path, lineno, rule, message))

    for idx, line in enumerate(code_lines, start=1):
        for rule, rx, message in LINE_RULES:
            if rule == "raw-thread" and relpath in RAW_THREAD_ALLOWED:
                continue
            if rule == "raw-socket" and (
                relpath.startswith(RAW_SOCKET_ALLOWED_PREFIXES)
                or relpath in RAW_SOCKET_ALLOWED
            ):
                continue
            if rx.search(line):
                report(idx, rule, message)

    # unordered-iteration: a range-for whose range expression names an
    # unordered container — either spelled inline or declared as one
    # earlier in the same file.
    unordered_names = set(UNORDERED_DECL_RE.findall(code))
    for idx, line in enumerate(code_lines, start=1):
        m = RANGE_FOR_RE.search(line)
        if not m:
            continue
        range_expr = m.group(1)
        names = set(re.findall(r"\b\w+\b", range_expr))
        if UNORDERED_EXPR_RE.search(range_expr) or (
            names & unordered_names
        ):
            report(
                idx,
                "unordered-iteration",
                "iterating an unordered container feeds hash order into "
                "the loop; iterate a sorted container or index range",
            )

    return findings, expects


def collect_sources(paths: list[Path]) -> list[Path]:
    files = []
    for p in paths:
        if p.is_file():
            files.append(p)
        elif p.is_dir():
            files.extend(
                f
                for f in sorted(p.rglob("*"))
                if f.suffix in SOURCE_SUFFIXES and f.is_file()
            )
        else:
            print(f"error: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return files


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to scan (default: src/)",
    )
    parser.add_argument(
        "--report", type=Path, help="also write findings to this file"
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="run the rules over tools/lint_fixtures/ and verify every "
        "lint:expect annotation fires exactly once",
    )
    args = parser.parse_args()

    if args.self_test:
        scan_paths = [root / "tools" / "lint_fixtures"]
    elif args.paths:
        scan_paths = args.paths
    else:
        scan_paths = [root / "src"]

    findings: list[Finding] = []
    expects: list[tuple] = []
    for f in collect_sources(scan_paths):
        try:
            rel = str(f.resolve().relative_to(root)).replace("\\", "/")
        except ValueError:
            rel = str(f)
        file_findings, file_expects = scan_file(f, rel, args.self_test)
        findings.extend(file_findings)
        expects.extend(file_expects)

    lines = [fi.render(root) for fi in findings]

    if args.self_test:
        got = set()
        for fi in findings:
            try:
                rel = str(fi.path.resolve().relative_to(root))
            except ValueError:
                rel = str(fi.path)
            got.add((rel.replace("\\", "/"), fi.line, fi.rule))
        want = set(expects)
        missing = sorted(want - got)
        unexpected = sorted(got - want)
        for relpath, line, rule in missing:
            lines.append(
                f"self-test: {relpath}:{line}: rule '{rule}' did not fire"
            )
        for relpath, line, rule in unexpected:
            lines.append(
                f"self-test: {relpath}:{line}: unexpected finding '{rule}'"
            )
        ok = not missing and not unexpected and want
        if not want:
            lines.append("self-test: no lint:expect annotations found")
        verdict = "PASS" if ok else "FAIL"
        lines.append(
            f"self-test {verdict}: {len(want)} expected findings, "
            f"{len(got)} fired"
        )
        output = "\n".join(lines) + "\n"
        sys.stdout.write(output)
        if args.report:
            args.report.write_text(output, encoding="utf-8")
        return 0 if ok else 1

    output = "\n".join(lines) + ("\n" if lines else "")
    if lines:
        sys.stdout.write(output)
        sys.stdout.write(f"{len(lines)} determinism-lint finding(s)\n")
    else:
        sys.stdout.write("determinism lint: clean\n")
    if args.report:
        args.report.write_text(
            output if lines else "determinism lint: clean\n",
            encoding="utf-8",
        )
    return 1 if lines else 0


if __name__ == "__main__":
    sys.exit(main())
