// mpsram_client: command-line client of the query service daemon
// (core/service.h; start one with mpsram_serve).
//
// Subcommands (all take --socket PATH):
//   query --query FILE [--out FILE] [--format json|csv] [--expect-warm]
//       Send the query JSON (mpsram_shard emit's output) and write the
//       result table — as the bare canonical table JSON (byte-identical
//       to an in-process run's json_of_result_table dump, so `cmp`
//       against local output is the determinism gate) or as CSV
//       (core/csv.h).  The per-request serve metadata goes to stderr.
//       --expect-warm exits 1 unless the daemon served the request warm
//       (a memo or disk-cache hit, zero corner searches / surface fits).
//   status
//   cache-stats
//       Print the daemon's counters (the response payload, as JSON).
//   shutdown
//       Ask the daemon to drain and exit; prints the ack.
//
// Output convention matches mpsram_shard: stdout appends a newline,
// --out files carry the exact payload bytes.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/csv.h"
#include "core/serialize.h"
#include "core/service.h"
#include "util/atomic_file.h"
#include "util/json.h"
#include "util/socket.h"

namespace {

using namespace mpsram;

[[noreturn]] void usage(const std::string& message)
{
    std::cerr << "mpsram_client: " << message << "\n"
              << "subcommands: query | status | cache-stats | shutdown "
                 "(see the header comment)\n";
    std::exit(2);
}

struct Args {
    std::vector<std::pair<std::string, std::string>> flags;

    std::optional<std::string> get(const std::string& name) const
    {
        for (const auto& flag : flags) {
            if (flag.first == name) return flag.second;
        }
        return std::nullopt;
    }
    std::string require(const std::string& name) const
    {
        const auto v = get(name);
        if (!v) usage("missing required flag --" + name);
        return *v;
    }
    bool has(const std::string& name) const
    {
        return get(name).has_value();
    }
};

Args parse_args(int argc, char** argv, int first)
{
    Args args;
    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) usage("unexpected argument '" + arg + "'");
        const std::string name = arg.substr(2);
        if (name == "expect-warm") {
            args.flags.emplace_back(name, "1");
            continue;
        }
        if (i + 1 >= argc) usage("flag --" + name + " needs a value");
        args.flags.emplace_back(name, argv[++i]);
    }
    return args;
}

std::string slurp(const std::string& path)
{
    const auto contents = util::read_file(path);
    if (!contents) usage("cannot read '" + path + "'");
    return *contents;
}

void write_out(const std::optional<std::string>& path,
               const std::string& contents)
{
    if (!path) {
        std::cout << contents << "\n";
        return;
    }
    std::ofstream out(*path, std::ios::binary | std::ios::trunc);
    out << contents;
    out.flush();
    if (!out) usage("cannot write '" + *path + "'");
}

/// One request/response exchange.  Reads until the response line's
/// newline arrives; a daemon that goes away mid-response is an error.
util::Json round_trip(const std::string& socket_path,
                      const util::Json& request)
{
    util::Socket sock = util::Socket::connect_unix(socket_path);
    sock.write_all(request.dump() + "\n", 30000);
    util::Line_buffer lines;
    char buf[4096];
    for (;;) {
        if (auto line = lines.pop_line()) return util::Json::parse(*line);
        const auto n = sock.read_some(buf, sizeof buf, 60000);
        if (!n) throw std::runtime_error("timed out waiting for the daemon");
        if (*n == 0) throw std::runtime_error("daemon closed the connection");
        lines.append(buf, *n);
    }
}

util::Json request_of(const std::string& op)
{
    util::Json request;
    request.set("v", core::service_protocol_version);
    request.set("op", op);
    return request;
}

/// Surface an error envelope as a failure exit (code + message on
/// stderr), pass a success envelope through.
const util::Json& check_ok(const util::Json& response)
{
    if (response.at("ok").as_bool()) return response;
    const util::Json& error = response.at("error");
    std::cerr << "mpsram_client: daemon error ["
              << error.at("code").as_string() << "] "
              << error.at("message").as_string() << "\n";
    std::exit(1);
}

int cmd_query(const std::string& socket_path, const Args& args)
{
    util::Json request = request_of("query");
    request.set("query", util::Json::parse(slurp(args.require("query"))));

    const util::Json response =
        check_ok(round_trip(socket_path, request));
    const util::Json& serve = response.at("serve");
    std::cerr << "mpsram_client: serve " << serve.dump() << "\n";

    if (args.has("expect-warm")) {
        const bool memo_hit = serve.at("memo_hit").as_bool();
        const bool cache_hit = serve.at("cache_hits").as_u64() > 0;
        const bool no_work = serve.at("corner_searches").as_u64() == 0 &&
                             serve.at("surface_fits").as_u64() == 0;
        if (!((memo_hit || cache_hit) && no_work)) {
            std::cerr << "mpsram_client: request was not served warm\n";
            return 1;
        }
    }

    const std::string format = args.get("format").value_or("json");
    if (format == "json") {
        write_out(args.get("out"), response.at("result").dump());
    } else if (format == "csv") {
        write_out(args.get("out"),
                  core::to_csv(
                      core::result_table_of_json(response.at("result"))));
    } else {
        usage("unknown --format '" + format + "' (accepted: json, csv)");
    }
    return 0;
}

int cmd_payload(const std::string& socket_path, const std::string& op,
                const std::string& payload_key, const Args& args)
{
    const util::Json response =
        check_ok(round_trip(socket_path, request_of(op)));
    write_out(args.get("out"), response.at(payload_key).dump());
    return 0;
}

int cmd_shutdown(const std::string& socket_path, const Args& args)
{
    const util::Json response =
        check_ok(round_trip(socket_path, request_of("shutdown")));
    write_out(args.get("out"), response.dump());
    return 0;
}

} // namespace

int main(int argc, char** argv)
{
    if (argc < 2) usage("missing subcommand");
    const std::string command = argv[1];
    const Args args = parse_args(argc, argv, 2);
    try {
        const std::string socket_path = args.require("socket");
        if (command == "query") return cmd_query(socket_path, args);
        if (command == "status") {
            return cmd_payload(socket_path, "status", "status", args);
        }
        if (command == "cache-stats") {
            return cmd_payload(socket_path, "cache_stats", "cache_stats",
                               args);
        }
        if (command == "shutdown") return cmd_shutdown(socket_path, args);
    } catch (const std::exception& e) {
        std::cerr << "mpsram_client: " << e.what() << "\n";
        return 1;
    }
    usage("unknown subcommand '" + command + "'");
}
