// Deliberately-bad snippets for the determinism-lint self-test.
//
// This file is NEVER compiled (tools/ is outside the CMake source globs);
// it exists so `lint_determinism.py --self-test` can prove that every
// rule fires on the construct it bans — and only there.  Each seeded
// violation carries a `// lint:expect(<rule>)` annotation; lines carrying
// `// lint:allow(<rule>)` prove the escape hatch suppresses.  Clean
// look-alike lines at the bottom guard against false positives.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace lint_fixture {

// --- rand: hidden global state ----------------------------------------------
inline double bad_rand_draw()
{
    return static_cast<double>(rand()) / RAND_MAX;  // lint:expect(rand)
}

inline void bad_rand_seed()
{
    srand(42);  // lint:expect(rand)
}

// --- random-device: nondeterministic seeding --------------------------------
inline unsigned bad_entropy_seed()
{
    std::random_device rd;  // lint:expect(random-device)
    return rd();            // benign use of the named variable
}

// --- wall-clock: results depend on when they ran ----------------------------
inline long bad_epoch_seconds()
{
    return static_cast<long>(time(nullptr));  // lint:expect(wall-clock)
}

inline long long bad_chrono_stamp()
{
    const auto t0 =
        std::chrono::steady_clock::now();  // lint:expect(wall-clock)
    return t0.time_since_epoch().count();
}

// --- unordered-iteration: hash order feeds an accumulation ------------------
inline double bad_unordered_reduction(
    const std::unordered_map<std::string, double>& weights)
{
    double sum = 0.0;
    for (const auto& [name, w] : weights) {  // lint:expect(unordered-iteration)
        sum += w;
    }
    return sum;
}

inline int bad_unordered_set_walk()
{
    std::unordered_set<int> seen{3, 1, 2};
    int checksum = 0;
    for (int v : seen) {  // lint:expect(unordered-iteration)
        checksum = checksum * 31 + v;
    }
    return checksum;
}

// --- float-narrowing: single-precision accumulator in a reduction -----------
inline float bad_float_accumulator(const std::vector<double>& xs)  // lint:expect(float-narrowing)
{
    float acc = 0.0f;  // lint:expect(float-narrowing)
    for (const double x : xs) {
        acc += static_cast<float>(x);  // lint:expect(float-narrowing)
    }
    return acc;
}

// --- raw-thread: threading outside util::Thread_pool ------------------------
inline void bad_raw_thread()
{
    std::thread t([] {});  // lint:expect(raw-thread)
    t.join();
}

#pragma omp parallel for  // lint:expect(raw-thread)
// (the pragma itself is the violation; no loop needed for the fixture)

// --- raw-socket: syscall I/O outside the audited layer ----------------------
inline int bad_raw_socket()
{
    const int fd = socket(1, 1, 0);  // lint:expect(raw-socket)
    return fd;
}

inline int bad_qualified_socket_calls(int fd)
{
    const int client = ::accept4(fd, nullptr, nullptr, 0);  // lint:expect(raw-socket)
    ::poll(nullptr, 0, 0);  // lint:expect(raw-socket)
    return client;
}

// --- escape hatch: reviewed exceptions stay silent --------------------------
inline std::size_t allowed_unordered_size_only(
    const std::unordered_map<std::string, double>& weights)
{
    // Order-insensitive: every element contributes 1 regardless of hash
    // order, reviewed 2026-08.
    std::size_t n = 0;
    for (const auto& kv : weights) {  // lint:allow(unordered-iteration)
        (void)kv;
        ++n;
    }
    return n;
}

// --- clean look-alikes: none of these may fire ------------------------------
inline int clean_lookalikes()
{
    // "rand(" in a comment and a string must not fire: rand( time( now(
    // (nor "socket( accept( poll(" here in a comment)
    const std::string s = "std::random_device rand( time( float ";
    int operand = 1;        // 'rand' inside an identifier
    int wall_time = 2;      // 'time' inside an identifier
    double runtime = 3.0;   // not a call
    (void)runtime;
    const int hardware =
        static_cast<int>(std::thread::hardware_concurrency());
    std::unordered_map<int, int> lut;
    lut.emplace(1, 2);      // lookup/insert without iteration is fine
    const auto it = lut.find(1);
    std::vector<int> sorted_keys{1, 2, 3};
    int sum = 0;
    for (int k : sorted_keys) sum += k;  // ordered iteration is fine
    const auto accept_step = [](int v) { return v; };
    const int stepped = accept_step(7);  // not the accept() syscall
    const auto bindings = [](int v) { return v; };
    const int bound = bindings(1);       // not bind() either
    return operand + wall_time + hardware + sum + stepped + bound +
           static_cast<int>(s.size()) +
           (it != lut.end() ? it->second : 0);
}

} // namespace lint_fixture
