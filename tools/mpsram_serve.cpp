// mpsram_serve: the query service daemon (core/service.h).
//
// Binds a Unix-domain socket, warms ONE shared Study_session, and serves
// the line-delimited JSON protocol until a client sends op:shutdown —
// corner searches, surrogate calibrations and whole query results then
// amortize across every request instead of across one process.  With
// MPSRAM_CACHE_DIR set the session persists its artifacts on disk too,
// so a restarted daemon warms from the cache.
//
// Usage:
//   mpsram_serve --socket PATH [--threads N] [--max-pending N]
//                [--max-clients N] [--max-line-bytes N]
//                [--memo-entries N] [--poll-ms N]
//
//   --socket          socket file to listen on (unlinked on shutdown)
//   --threads         worker threads per served query (0 = hardware)
//   --max-pending     request-queue bound; overflow gets a `busy` envelope
//   --max-clients     concurrent-connection bound
//   --max-line-bytes  per-client line-buffer bound; an unterminated
//                     stream past it is rejected and disconnected
//   --memo-entries    result-memo bound (LRU eviction; 0 disables)
//   --poll-ms         idle poll tick of the serve loop
//
// Exit status: 0 after a graceful shutdown drain; nonzero when the
// socket cannot be bound (including when another daemon is already
// listening on the path — a live daemon is never usurped).  Protocol
// errors never terminate the daemon.

#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/service.h"
#include "core/session.h"

namespace {

using namespace mpsram;

[[noreturn]] void usage(const std::string& message)
{
    std::cerr << "mpsram_serve: " << message << "\n"
              << "usage: mpsram_serve --socket PATH [--threads N] "
                 "[--max-pending N] [--max-clients N] "
                 "[--max-line-bytes N] [--memo-entries N] [--poll-ms N]\n";
    std::exit(2);
}

struct Args {
    std::vector<std::pair<std::string, std::string>> flags;

    std::optional<std::string> get(const std::string& name) const
    {
        for (const auto& flag : flags) {
            if (flag.first == name) return flag.second;
        }
        return std::nullopt;
    }
    std::string require(const std::string& name) const
    {
        const auto v = get(name);
        if (!v) usage("missing required flag --" + name);
        return *v;
    }
};

Args parse_args(int argc, char** argv)
{
    Args args;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) usage("unexpected argument '" + arg + "'");
        const std::string name = arg.substr(2);
        if (i + 1 >= argc) usage("flag --" + name + " needs a value");
        args.flags.emplace_back(name, argv[++i]);
    }
    return args;
}

} // namespace

int main(int argc, char** argv)
{
    const Args args = parse_args(argc, argv);
    try {
        core::Service_options opts;
        opts.socket_path = args.require("socket");
        if (const auto t = args.get("threads")) {
            opts.runner.threads = std::stoi(*t);
        }
        if (const auto n = args.get("max-pending")) {
            opts.max_pending = std::stoul(*n);
        }
        if (const auto n = args.get("max-clients")) {
            opts.max_clients = std::stoul(*n);
        }
        if (const auto n = args.get("max-line-bytes")) {
            opts.max_line_bytes = std::stoul(*n);
        }
        if (const auto n = args.get("memo-entries")) {
            opts.max_memo_entries = std::stoul(*n);
        }
        if (const auto n = args.get("poll-ms")) {
            opts.poll_interval_ms = std::stoi(*n);
        }

        const core::Study_session session;
        core::Query_service service(session, opts);
        std::cerr << "mpsram_serve: listening on " << opts.socket_path
                  << " (cache " << core::to_string(session.cache_mode())
                  << ")\n";
        const int status = service.serve();
        std::cerr << "mpsram_serve: graceful shutdown after "
                  << service.stats().requests << " requests ("
                  << service.stats().queries << " queries, "
                  << service.stats().memo_hits << " memo hits)\n";
        return status;
    } catch (const std::exception& e) {
        std::cerr << "mpsram_serve: " << e.what() << "\n";
        return 1;
    }
}
