// mpsram_shard: process-level shard driver for study queries.
//
// Splits one query's case list into k contiguous ranges, runs each range
// in an independent process (fork per shard — each child is a fresh
// Study_session with its own memory memos), and merges the partial
// tables bitwise-identically to a single-process run (the determinism
// argument lives in core/shard.h).  With MPSRAM_CACHE_DIR set, the
// shards share the on-disk result cache and a warm rerun skips the
// simulation work entirely.
//
// Subcommands:
//   emit  --metric M --options le3,sadp,euv --word-lines 16,24,32
//         [--ol V] [--accuracy A] [--solver S] [--samples N] [--seed S]
//         [--tdp-engine E] [--twp-engine E] [--out FILE]
//       Compose a query and write its JSON (stdout by default).
//   run   --query FILE --shard I --count K --out FILE [--threads N]
//       Run shard I of K and write the part envelope.
//   merge --query FILE --out FILE [--format json|csv] PART...
//       Merge part envelopes into the full table (bare table JSON, or a
//       CSV export via core/csv.h).
//   exec  --query FILE --count K --out FILE [--threads N] [--expect-warm]
//       Fork K shard processes, wait, merge, write the full table.
//       --expect-warm additionally requires every shard to be served
//       from the cache (hits > 0, zero corner searches / surface fits).
//   cache-gc --dir DIR [--max-bytes N]
//       Sweep a result-cache directory: delete corrupt envelopes on
//       sight and, with --max-bytes, evict valid entries oldest-mtime-
//       first until the survivors fit (core::gc_result_cache).  Prints
//       the sweep stats as JSON.
//
// The merged output of exec/merge is byte-stable: `cmp` of k=1/2/4 runs
// is the CI gate for the shard-merge determinism contract.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "core/csv.h"
#include "core/query.h"
#include "core/result_cache.h"
#include "core/serialize.h"
#include "core/session.h"
#include "core/shard.h"
#include "sram/sim_accuracy.h"
#include "sram/solver_policy.h"
#include "util/atomic_file.h"
#include "util/json.h"

namespace {

using namespace mpsram;

[[noreturn]] void usage(const std::string& message)
{
    std::cerr << "mpsram_shard: " << message << "\n"
              << "subcommands: emit | run | merge | exec | cache-gc (see "
                 "the header comment)\n";
    std::exit(2);
}

/// Minimal flag scanner: --name value pairs plus positional leftovers.
struct Args {
    std::vector<std::pair<std::string, std::string>> flags;
    std::vector<std::string> positional;

    std::optional<std::string> get(const std::string& name) const
    {
        for (const auto& flag : flags) {
            if (flag.first == name) return flag.second;
        }
        return std::nullopt;
    }
    std::string require(const std::string& name) const
    {
        const auto v = get(name);
        if (!v) usage("missing required flag --" + name);
        return *v;
    }
    bool has(const std::string& name) const
    {
        return get(name).has_value();
    }
};

Args parse_args(int argc, char** argv, int first)
{
    Args args;
    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) == 0) {
            const std::string name = arg.substr(2);
            if (name == "expect-warm") {
                args.flags.emplace_back(name, "1");
                continue;
            }
            if (i + 1 >= argc) usage("flag --" + name + " needs a value");
            args.flags.emplace_back(name, argv[++i]);
        } else {
            args.positional.push_back(arg);
        }
    }
    return args;
}

std::vector<std::string> split_list(const std::string& text)
{
    std::vector<std::string> out;
    std::stringstream stream(text);
    std::string item;
    while (std::getline(stream, item, ',')) {
        if (!item.empty()) out.push_back(item);
    }
    return out;
}

std::string slurp(const std::string& path)
{
    const auto contents = util::read_file(path);
    if (!contents) usage("cannot read '" + path + "'");
    return *contents;
}

void write_out(const std::optional<std::string>& path,
               const std::string& contents)
{
    if (!path) {
        std::cout << contents << "\n";
        return;
    }
    std::ofstream out(*path, std::ios::binary | std::ios::trunc);
    out << contents;
    out.flush();
    if (!out) usage("cannot write '" + *path + "'");
}

tech::Patterning_option option_of_token(const std::string& token)
{
    if (token == "le3") return tech::Patterning_option::le3;
    if (token == "sadp") return tech::Patterning_option::sadp;
    if (token == "euv") return tech::Patterning_option::euv;
    usage("unknown patterning option '" + token +
          "' (accepted: le3, sadp, euv)");
}

core::Metric metric_of_token(const std::string& token)
{
    for (int i = 0; i < 9; ++i) {
        const auto m = static_cast<core::Metric>(i);
        if (core::to_string(m) == token) return m;
    }
    usage("unknown metric '" + token + "'");
}

int cmd_emit(const Args& args)
{
    core::Query query(metric_of_token(args.require("metric")));

    std::vector<int> word_lines;
    for (const std::string& n : split_list(args.require("word-lines"))) {
        word_lines.push_back(std::stoi(n));
    }
    const double ol =
        args.get("ol") ? std::stod(*args.get("ol")) : -1.0;
    for (const std::string& opt : split_list(args.require("options"))) {
        for (const int n : word_lines) {
            query.cases.push_back({option_of_token(opt), n, ol});
        }
    }

    if (const auto a = args.get("accuracy")) {
        query.accuracy = sram::parse_sim_accuracy(*a);
    }
    if (const auto s = args.get("solver")) {
        query.solver = sram::parse_solver_policy(*s);
    }
    if (const auto n = args.get("samples")) {
        query.mc.samples = std::stoi(*n);
    }
    if (const auto s = args.get("seed")) {
        query.mc.seed = std::stoull(*s);
    }
    if (const auto e = args.get("tdp-engine")) {
        if (*e == "formula") query.tdp_engine = core::Tdp_engine::formula;
        else if (*e == "spice") query.tdp_engine = core::Tdp_engine::spice;
        else if (*e == "surrogate")
            query.tdp_engine = core::Tdp_engine::surrogate;
        else usage("unknown tdp engine '" + *e + "'");
    }
    if (const auto e = args.get("twp-engine")) {
        if (*e == "formula") query.twp_engine = core::Twp_engine::formula;
        else if (*e == "spice") query.twp_engine = core::Twp_engine::spice;
        else if (*e == "surrogate")
            query.twp_engine = core::Twp_engine::surrogate;
        else usage("unknown twp engine '" + *e + "'");
    }

    write_out(args.get("out"), core::json_of_query(query).dump());
    return 0;
}

core::Query load_query(const Args& args)
{
    core::Query query = core::query_of_json(
        util::Json::parse(slurp(args.require("query"))));
    if (const auto t = args.get("threads")) {
        query.runner.threads = std::stoi(*t);
        query.mc.runner.threads = query.runner.threads;
    }
    return query;
}

/// Run one shard on a fresh session and return the part.  Asserts the
/// warm-cache contract when requested: served entirely from disk, no
/// corner searches, no surface fits.
core::Shard_part run_one_shard(const core::Query& query, std::size_t index,
                               std::size_t count, bool expect_warm)
{
    const core::Study_session session;
    const std::vector<core::Shard_range> plan =
        core::shard_plan(query.cases.size(), count);
    core::Shard_part part =
        core::run_shard(session, query, plan[index], index, count);
    if (expect_warm) {
        if (session.cache_hit_count() == 0 ||
            session.corner_search_count() != 0 ||
            session.surface_fit_count() != 0) {
            std::cerr << "mpsram_shard: shard " << index
                      << " was not served from the cache (hits="
                      << session.cache_hit_count()
                      << " corner_searches=" << session.corner_search_count()
                      << " surface_fits=" << session.surface_fit_count()
                      << ")\n";
            std::exit(1);
        }
    }
    return part;
}

int cmd_run(const Args& args)
{
    const core::Query query = load_query(args);
    const auto index =
        static_cast<std::size_t>(std::stoul(args.require("shard")));
    const auto count =
        static_cast<std::size_t>(std::stoul(args.require("count")));
    if (index >= count) usage("--shard must be < --count");

    const core::Shard_part part =
        run_one_shard(query, index, count, args.has("expect-warm"));
    write_out(args.get("out"), core::json_of_shard_part(part).dump());
    return 0;
}

int cmd_merge(const Args& args)
{
    const core::Query query = load_query(args);
    const core::Study_session session;
    const std::uint64_t hash = core::query_key(session, query);

    std::vector<core::Shard_part> parts;
    if (args.positional.empty()) usage("merge needs part files");
    for (const std::string& path : args.positional) {
        parts.push_back(
            core::shard_part_of_json(util::Json::parse(slurp(path))));
    }
    const core::Result_table merged =
        core::merge_shard_parts(hash, query.cases.size(),
                                std::move(parts));
    const std::string format = args.get("format").value_or("json");
    if (format == "json") {
        write_out(args.get("out"),
                  core::json_of_result_table(merged).dump());
    } else if (format == "csv") {
        write_out(args.get("out"), core::to_csv(merged));
    } else {
        usage("unknown --format '" + format + "' (accepted: json, csv)");
    }
    return 0;
}

int cmd_cache_gc(const Args& args)
{
    core::Gc_options options;
    if (const auto n = args.get("max-bytes")) {
        options.max_bytes = std::stoull(*n);
    }
    const core::Gc_stats stats =
        core::gc_result_cache(args.require("dir"), options);

    util::Json report;
    report.set("entries", static_cast<std::uint64_t>(stats.entries));
    report.set("corrupt_deleted",
               static_cast<std::uint64_t>(stats.corrupt_deleted));
    report.set("evicted", static_cast<std::uint64_t>(stats.evicted));
    report.set("bytes_before", stats.bytes_before);
    report.set("bytes_after", stats.bytes_after);
    write_out(args.get("out"), report.dump());
    return 0;
}

int cmd_exec(const Args& args)
{
    const core::Query query = load_query(args);
    const auto count =
        static_cast<std::size_t>(std::stoul(args.require("count")));
    if (count == 0) usage("--count must be positive");
    const std::string out = args.require("out");
    const bool expect_warm = args.has("expect-warm");

    // One process per shard: each child computes its range on a fresh
    // session and writes a part file; the parent merges.  Sharing an
    // MPSRAM_CACHE_DIR across the children exercises the concurrent-
    // writer path of the cache (atomic rename, last writer wins with
    // identical bytes).
    std::vector<pid_t> children;
    for (std::size_t i = 0; i < count; ++i) {
        const pid_t pid = ::fork();
        if (pid < 0) {
            std::cerr << "mpsram_shard: fork failed\n";
            return 1;
        }
        if (pid == 0) {
            try {
                const core::Shard_part part =
                    run_one_shard(query, i, count, expect_warm);
                write_out(out + ".part" + std::to_string(i),
                          core::json_of_shard_part(part).dump());
                std::_Exit(0);
            } catch (const std::exception& e) {
                std::cerr << "mpsram_shard: shard " << i << ": " << e.what()
                          << "\n";
                std::_Exit(1);
            }
        }
        children.push_back(pid);
    }

    bool failed = false;
    for (const pid_t pid : children) {
        int status = 0;
        if (::waitpid(pid, &status, 0) < 0 || !WIFEXITED(status) ||
            WEXITSTATUS(status) != 0) {
            failed = true;
        }
    }
    if (failed) {
        std::cerr << "mpsram_shard: a shard process failed\n";
        return 1;
    }

    const core::Study_session session;
    const std::uint64_t hash = core::query_key(session, query);
    std::vector<core::Shard_part> parts;
    for (std::size_t i = 0; i < count; ++i) {
        const std::string path = out + ".part" + std::to_string(i);
        parts.push_back(
            core::shard_part_of_json(util::Json::parse(slurp(path))));
        std::remove(path.c_str());
    }
    const core::Result_table merged = core::merge_shard_parts(
        hash, query.cases.size(), std::move(parts));
    write_out(out, core::json_of_result_table(merged).dump());
    return 0;
}

} // namespace

int main(int argc, char** argv)
{
    if (argc < 2) usage("missing subcommand");
    const std::string command = argv[1];
    const Args args = parse_args(argc, argv, 2);
    try {
        if (command == "emit") return cmd_emit(args);
        if (command == "run") return cmd_run(args);
        if (command == "merge") return cmd_merge(args);
        if (command == "exec") return cmd_exec(args);
        if (command == "cache-gc") return cmd_cache_gc(args);
    } catch (const std::exception& e) {
        std::cerr << "mpsram_shard: " << e.what() << "\n";
        return 1;
    }
    usage("unknown subcommand '" + command + "'");
}
