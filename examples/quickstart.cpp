// Quickstart: the paper's whole flow in ~60 lines.
//
// Builds the N10 technology, finds the worst-case patterning corner per
// option (Table I), runs one SPICE read simulation (Fig. 4 point), and
// evaluates the analytical formula (Section III) — the minimal tour of the
// mpsram public API.
//
//   $ ./quickstart
#include <iostream>

#include "core/study.h"
#include "util/table.h"

int main()
{
    using namespace mpsram;

    // The study object wires together: layout generation -> patterning ->
    // extraction -> SPICE -> analytic formula.  Defaults reproduce the
    // paper's setup (imec-N10-like node, 10 bit-line pairs, worst-case
    // 8 nm LE3 overlay).
    core::Variability_study study;

    std::cout << "mpsram quickstart — " << study.technology().name
              << " node\n\n";

    // 1. Worst-case R/C variability of the victim bit line (Table I).
    std::cout << "Worst-case bit-line variability:\n";
    util::Table t1({"option", "worst corner", "dCbl", "dRbl"});
    for (const auto option : tech::all_patterning_options) {
        const auto row = study.worst_case(option);
        t1.add_row({std::string(tech::to_string(option)), row.corner,
                    util::fmt_percent(row.cbl_percent / 100.0, 2),
                    util::fmt_percent(row.rbl_percent / 100.0, 2)});
    }
    std::cout << t1.render() << '\n';

    // 2. One full SPICE read: nominal vs LE3 worst case at 10x64.
    const int n = 64;
    const auto read = study.worst_case_read(tech::Patterning_option::le3, n);
    std::cout << "SPICE read, 10x" << n << " array:\n"
              << "  nominal td     = " << util::fmt_time(read.td_nominal, 2)
              << "\n  LE3 worst td   = " << util::fmt_time(read.td_varied, 2)
              << "\n  read penalty   = "
              << util::fmt_fixed(read.tdp_percent, 2) << "%\n\n";

    // 3. The analytical formula (eq. 4) on the same case.
    const auto wc = study.worst_case_full(tech::Patterning_option::le3, n);
    const auto params = study.formula_params(n);
    std::cout << "Analytical formula:\n"
              << "  td(nominal)    = "
              << util::fmt_time(analytic::td_lumped(params, n), 2)
              << "\n  tdp(worst)     = "
              << util::fmt_fixed(
                     analytic::tdp_percent(params, n,
                                           wc.variation.r_factor,
                                           wc.variation.c_factor),
                     2)
              << "%\n\n";

    // 4. A quick Monte-Carlo pass (Fig. 5 in miniature).
    mc::Distribution_options mo;
    mo.samples = 5000;
    const auto dist = study.mc_tdp(tech::Patterning_option::le3, n, mo);
    std::cout << "Monte-Carlo tdp (" << mo.samples << " samples): mean "
              << util::fmt_fixed(dist.summary.mean, 3) << "%, sigma "
              << util::fmt_fixed(dist.summary.stddev, 3) << "\n";

    return 0;
}
