// Patterning explorer: visualize the worst-case metal1 layout distortion
// (the paper's Fig. 2) as an ASCII cross-section, per option, and check it
// against the design rules.
//
//   $ ./patterning_explorer
#include <iostream>
#include <string>

#include "core/study.h"
#include "geom/drc.h"
#include "util/units.h"

namespace {

using namespace mpsram;

/// Render the track stack around the victim: one row per wire, drawn to
/// scale in 2 nm character cells.
void render(const geom::Wire_array& arr, std::size_t victim, int radius)
{
    const double scale = 2.0 * units::nm;
    const double origin =
        arr[victim - static_cast<std::size_t>(radius)].y_center -
        20.0 * units::nm;

    for (std::size_t i = victim - static_cast<std::size_t>(radius);
         i <= victim + static_cast<std::size_t>(radius); ++i) {
        const geom::Wire& w = arr[i];
        const double lo = w.y_center - 0.5 * w.width;
        const auto pad = static_cast<int>((lo - origin) / scale);
        const auto bar = static_cast<int>(w.width / scale);
        std::cout << (i == victim ? "victim " : "       ")
                  << std::string(static_cast<std::size_t>(std::max(pad, 0)),
                                 ' ')
                  << std::string(static_cast<std::size_t>(std::max(bar, 1)),
                                 '#')
                  << "  " << w.net << " (w=" << w.width / units::nm
                  << " nm)\n";
    }
}

} // namespace

int main()
{
    core::Variability_study study;
    const auto& rules = study.technology().metal1.drc;
    constexpr int n = 64;

    for (const auto option : tech::all_patterning_options) {
        const auto wc = study.worst_case_full(option, n);
        const auto nominal = study.decomposed_array(option, n);
        const std::size_t victim =
            sram::find_victim_wires(nominal, study.options().array).bl;

        std::cout << "=== " << tech::to_string(option)
                  << " worst case ===\n";
        std::cout << "corner: "
                  << study.worst_case(option).corner << "\n\n";
        std::cout << "nominal tracks:\n";
        render(nominal, victim, 2);
        std::cout << "\nworst-case tracks:\n";
        render(wc.realized, victim, 2);

        const auto violations = geom::check_drc(wc.realized, rules);
        if (violations.empty()) {
            std::cout << "\nDRC: clean — the corner is manufacturable.\n";
        } else {
            std::cout << "\nDRC: " << violations.size()
                      << " violation(s):\n";
            for (const auto& v : violations) {
                std::cout << "  " << v.describe() << '\n';
            }
        }
        std::cout << "\nvictim dCbl = "
                  << wc.variation.c_percent() << "%, dRbl = "
                  << wc.variation.r_percent() << "%\n\n";
    }
    return 0;
}
