// Yield screen: turn the tdp distribution into pass/fail yield numbers.
//
// A memory designer does not ship sigma values; they ship parts that meet
// a timing budget.  This example takes the Monte-Carlo tdp distributions
// and reports, per patterning option and overlay budget, the fraction of
// dies whose read-time penalty exceeds a given guard band — plus the DRC
// fallout rate (corners that break the layout outright).
//
//   $ ./yield_screen [guard_band_percent]
#include <atomic>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/runner.h"
#include "core/session.h"
#include "geom/drc.h"
#include "pattern/engine.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/units.h"

int main(int argc, char** argv)
{
    using namespace mpsram;

    const double guard = argc > 1 ? std::atof(argv[1]) : 1.0;  // [% tdp]
    constexpr int n = 64;

    core::Study_session session;
    mc::Distribution_options mo;
    mo.samples = 20000;

    std::cout << "Yield screen at 10x" << n << ", guard band " << guard
              << "% tdp, " << mo.samples << " samples\n\n";

    util::Table table({"option", "3s OL", "sigma", "p(tdp > guard)",
                       "DRC fallout"});

    const struct {
        tech::Patterning_option option;
        double ol;
    } cases[] = {
        {tech::Patterning_option::le3, 3e-9},
        {tech::Patterning_option::le3, 5e-9},
        {tech::Patterning_option::le3, 8e-9},
        {tech::Patterning_option::sadp, -1.0},
        {tech::Patterning_option::euv, -1.0},
    };

    // All five cases as one Metric::mc_tdp query; bitwise identical at
    // any thread count.
    const auto runner = core::Runner_options::parallel();
    mo.runner = runner;
    core::Query query(core::Metric::mc_tdp);
    for (const auto& c : cases) query.with_case({c.option, n, c.ol});
    const auto dists =
        session.run(query.with_mc(mo)).column<mc::Tdp_distribution>();

    for (std::size_t ci = 0; ci < std::size(cases); ++ci) {
        const auto& c = cases[ci];
        const auto& dist = dists[ci];
        int slow = 0;
        for (double tdp : dist.tdp) {
            if (tdp > guard) ++slow;
        }

        // DRC fallout: re-sample geometry and count rule violations.
        // Sample i draws from substream (2015, i), so this loop too is
        // order- and thread-count-independent.
        tech::Technology t = session.technology();
        if (c.ol >= 0.0) t.variability.le3_ol_3sigma = c.ol;
        const auto engine = pattern::make_engine(c.option, t);
        const auto nominal = session.decomposed_array(c.option, n, c.ol);
        std::atomic<int> fallout{0};
        constexpr int geo_samples = 2000;
        core::run_indexed(
            geo_samples,
            [&](std::size_t i, const core::Run_context&) {
                util::Rng rng = util::Rng::stream(2015, i);
                const auto realized =
                    engine->realize(nominal, engine->sample_gaussian(rng));
                if (!geom::check_drc(realized, t.metal1.drc).empty()) {
                    fallout.fetch_add(1, std::memory_order_relaxed);
                }
            },
            runner);

        table.add_row(
            {std::string(tech::to_string(c.option)),
             c.ol >= 0.0 ? util::fmt_fixed(c.ol / units::nm, 0) + " nm"
                         : std::string("-"),
             util::fmt_fixed(dist.summary.stddev, 3),
             util::fmt_percent(static_cast<double>(slow) / mo.samples, 2),
             util::fmt_percent(static_cast<double>(fallout.load()) /
                                   geo_samples,
                               2)});
    }

    std::cout << table.render() << '\n'
              << "p(tdp > guard) is read-timing yield loss; DRC fallout is\n"
                 "geometry that no longer prints legally (shorts/pinches),\n"
                 "which dominates LE3 at loose overlay budgets.\n";
    return 0;
}
