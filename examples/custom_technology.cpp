// Custom technology: run the paper's methodology on a node it never saw.
//
// The study object is fully parametric in the technology description; this
// example sketches a hypothetical "N7-like" node (tighter metal1 pitch,
// thinner wires, tighter spacer control) and re-asks the paper's question:
// does the LE3-vs-SADP ranking survive scaling?
//
//   $ ./custom_technology
#include <iostream>

#include "core/study.h"
#include "util/table.h"
#include "util/units.h"

namespace {

mpsram::tech::Technology n7ish()
{
    using namespace mpsram::units;
    // Start from N10 and scale the critical layer.
    mpsram::tech::Technology t = mpsram::tech::n10();
    t.name = "hypothetical-N7";
    t.metal1.pitch = 36.0 * nm;
    t.metal1.nominal_width = 20.0 * nm;
    t.metal1.thickness = 22.0 * nm;
    t.metal1.drc.min_width = 14.0 * nm;
    t.metal1.drc.min_space = 9.0 * nm;
    // Scanner improves: tighter CD and spacer control, overlay unchanged
    // (the pessimistic assumption).
    t.variability.cd_3sigma = 2.0 * nm;
    t.variability.sadp_spacer_3sigma = 1.0 * nm;
    t.cell.cell_length = 80.0 * nm;
    return t;
}

} // namespace

int main()
{
    using namespace mpsram;

    for (const bool scaled : {false, true}) {
        core::Variability_study study(scaled ? n7ish() : tech::n10());
        std::cout << "=== " << study.technology().name << " ===\n";

        util::Table table(
            {"option", "worst dCbl", "worst dRbl", "sigma(tdp) @10x64"});
        mc::Distribution_options mo;
        mo.samples = 8000;
        for (const auto option : tech::all_patterning_options) {
            const auto wc = study.worst_case(option);
            const auto dist = study.mc_tdp(option, 64, mo);
            table.add_row({std::string(tech::to_string(option)),
                           util::fmt_percent(wc.cbl_percent / 100.0, 2),
                           util::fmt_percent(wc.rbl_percent / 100.0, 2),
                           util::fmt_fixed(dist.summary.stddev, 3)});
        }
        std::cout << table.render() << '\n';
    }

    std::cout << "Reading: at the tighter node the same overlay budget\n"
                 "eats a larger fraction of the spacing, so LE3's spread\n"
                 "degrades faster than SADP's — the paper's conclusion\n"
                 "sharpens with scaling.\n";
    return 0;
}
