// SPICE playground: the circuit engine as a standalone tool.
//
// mpsram's simulator is a general MNA engine, not an SRAM-only artifact.
// This example builds a 5-stage CMOS inverter chain driving an RC load,
// runs a transient, measures stage delays, and prints an ASCII waveform —
// no SRAM or patterning code involved.
//
//   $ ./spice_playground
#include <iostream>
#include <string>
#include <vector>

#include "spice/analysis.h"
#include "spice/measure.h"
#include "util/table.h"
#include "util/units.h"

namespace {

using namespace mpsram;
using namespace mpsram::spice;

/// Crude terminal oscilloscope: one row per time slice.
void plot(const Transient_result& res, const std::string& probe,
          double vdd, int rows = 24, int width = 60)
{
    const auto wave = res.waveform(probe);
    const double t0 = res.time().front();
    const double t1 = res.time().back();
    for (int r = 0; r < rows; ++r) {
        const double t = t0 + (t1 - t0) * r / (rows - 1);
        const double v = wave.at(t);
        const auto col = static_cast<int>(v / vdd * width);
        std::cout << util::fmt_time(t, 1) << " |"
                  << std::string(
                         static_cast<std::size_t>(std::clamp(col, 0, width)),
                         ' ')
                  << "*\n";
    }
}

} // namespace

int main()
{
    constexpr double vdd = 0.7;

    Mosfet_params nmos;
    nmos.type = Mosfet_type::nmos;
    nmos = calibrate_beta(nmos, vdd, 40e-6);
    Mosfet_params pmos;
    pmos.type = Mosfet_type::pmos;
    pmos = calibrate_beta(pmos, vdd, 30e-6);

    Circuit c;
    const Node vdd_n = c.node("vdd");
    c.add_voltage_source("Vdd", vdd_n, ground_node, Waveform::dc(vdd));
    const Node in = c.node("in");
    c.add_voltage_source("Vin", in, ground_node,
                         Waveform::pulse(0.0, vdd, 20e-12, 5e-12));

    constexpr int stages = 5;
    Node prev = in;
    std::vector<Node> taps;
    for (int s = 0; s < stages; ++s) {
        const Node out = c.node("s" + std::to_string(s));
        c.add_mosfet("Mp" + std::to_string(s), out, prev, vdd_n, pmos);
        c.add_mosfet("Mn" + std::to_string(s), out, prev, ground_node,
                     nmos);
        // Gate load of the next stage plus local wiring.
        c.add_capacitor("Cl" + std::to_string(s), out, ground_node,
                        0.12e-15);
        taps.push_back(out);
        prev = out;
    }
    // Far-end RC wire load.
    const Node far = c.node("far");
    c.add_resistor("Rwire", prev, far, 500.0);
    c.add_capacitor("Cwire", far, ground_node, 2e-15);

    Transient_options opts;
    opts.tstop = 300e-12;
    opts.nominal_steps = 3000;

    std::vector<Node> probes = taps;
    probes.push_back(in);
    probes.push_back(far);
    const Transient_result res = run_transient(c, probes, opts);

    // Per-stage 50% crossing delays.
    util::Table table({"stage", "t50", "stage delay"});
    double prev_t = spice::crossing_time(res, "in", vdd / 2, 0.0);
    for (int s = 0; s < stages; ++s) {
        const double t =
            crossing_time(res, "s" + std::to_string(s), vdd / 2, prev_t);
        table.add_row({"s" + std::to_string(s), util::fmt_time(t, 2),
                       util::fmt_time(t - prev_t, 2)});
        prev_t = t;
    }
    std::cout << "5-stage inverter chain at vdd = " << vdd << " V\n\n"
              << table.render() << '\n';

    std::cout << "far-end waveform (x: voltage 0.." << vdd << " V):\n";
    plot(res, "far", vdd);
    return 0;
}
