// Overlay-budget study: the paper's actionable conclusion, computed.
//
// Section IV: "Limiting the 3-sigma OL error to <= 3 nm allows LE3 to
// reach comparable performance variations with respect to SADP and EUV."
// This example inverts that statement into a design query: given a target
// sigma(tdp) (the EUV value), what overlay budget must the LE3 scanner
// hold?  Answered by bisection over the Monte-Carlo study.
//
// The td reference of every Monte-Carlo case comes from the calibrated
// adaptive-LTE engine (the production default); pass --reference to pin
// the fixed-step oracle.
//
//   $ ./overlay_budget_study [--reference]
#include <cstring>
#include <iostream>
#include <vector>

#include "core/session.h"
#include "util/numeric.h"
#include "util/table.h"
#include "util/units.h"

int main(int argc, char** argv)
{
    using namespace mpsram;

    core::Study_options sopts;
    if (argc > 1) {
        if (std::strcmp(argv[1], "--reference") != 0) {
            std::cerr << "usage: overlay_budget_study [--reference]\n";
            return 2;
        }
        sopts.read.accuracy = sram::Sim_accuracy::reference;
    }
    core::Study_session session(tech::n10(), sopts);
    constexpr int n = 64;
    mc::Distribution_options mo;
    mo.samples = 8000;
    mo.runner = core::Runner_options::parallel();

    // Reference spreads and the whole OL scan as one Metric::mc_tdp
    // query: every case's sample loop fans out over the pool, and each
    // distribution is identical to a standalone single-case query.
    core::Query query(core::Metric::mc_tdp);
    query.with_case({tech::Patterning_option::euv, n})
        .with_case({tech::Patterning_option::sadp, n})
        .with_mc(mo);
    for (double ol_nm = 1.0; ol_nm <= 8.0; ol_nm += 1.0) {
        query.with_case(
            {tech::Patterning_option::le3, n, ol_nm * units::nm});
    }
    const auto table = session.run(query);
    const auto dists = table.column<mc::Tdp_distribution>();

    const double sigma_euv = dists[0].summary.stddev;
    const double sigma_sadp = dists[1].summary.stddev;

    std::cout << "Reference sigma(tdp) at 10x" << n << ":\n"
              << "  EUV : " << util::fmt_fixed(sigma_euv, 3) << "\n"
              << "  SADP: " << util::fmt_fixed(sigma_sadp, 3) << "\n\n";

    // sigma(tdp) of LE3 as a function of the 3-sigma overlay budget.
    const auto sigma_le3 = [&](double ol) {
        return session
            .run(core::Query(core::Metric::mc_tdp)
                     .with_case({tech::Patterning_option::le3, n, ol})
                     .with_mc(mo))
            .as<mc::Tdp_distribution>(0)
            .summary.stddev;
    };

    util::Table sweep({"3s OL [nm]", "LE3 sigma(tdp)", "vs EUV"});
    for (std::size_t i = 2; i < table.size(); ++i) {
        const double s = dists[i].summary.stddev;
        sweep.add_row(
            {util::fmt_fixed(table.axes(i).ol_3sigma / units::nm, 0),
             util::fmt_fixed(s, 3),
             s <= sigma_euv ? "meets" : "exceeds"});
    }
    std::cout << sweep.render() << '\n';

    // Bisect for the budget where LE3 exactly matches EUV.
    const double budget = util::bisect(
        [&](double ol) { return sigma_le3(ol) - sigma_euv; },
        0.5 * units::nm, 8.0 * units::nm, 0.02 * units::nm);

    std::cout << "LE3 matches the EUV spread at a 3s overlay budget of "
              << util::fmt_fixed(budget / units::nm, 2) << " nm\n"
              << "(paper's engineering answer: ~3 nm or tighter)\n";
    return 0;
}
