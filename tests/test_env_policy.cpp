// Env-pin parsing for the execution-policy and cache variables.  The
// memoized default_* getters can only be exercised once per process, so
// the tests target the parse functions they delegate to.
#include "core/result_cache.h"
#include "sram/sim_accuracy.h"
#include "sram/solver_policy.h"

#include <gtest/gtest.h>

#include <string>

#include "util/contracts.h"

namespace {

using namespace mpsram;

TEST(EnvPolicy, SimAccuracyParsesAcceptedTokens)
{
    EXPECT_EQ(sram::parse_sim_accuracy("fast"), sram::Sim_accuracy::fast);
    EXPECT_EQ(sram::parse_sim_accuracy("reference"),
              sram::Sim_accuracy::reference);
}

TEST(EnvPolicy, SimAccuracyRejectsUnknownToken)
{
    EXPECT_THROW(sram::parse_sim_accuracy("Fast"),
                 util::Precondition_error);
    EXPECT_THROW(sram::parse_sim_accuracy(""), util::Precondition_error);
    EXPECT_THROW(sram::parse_sim_accuracy("fastest"),
                 util::Precondition_error);
}

TEST(EnvPolicy, SimAccuracyErrorNamesValueAndAcceptedSet)
{
    try {
        sram::parse_sim_accuracy("refrence");
        FAIL() << "parse should have thrown";
    } catch (const util::Precondition_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("MPSRAM_SIM_ACCURACY"), std::string::npos)
            << what;
        EXPECT_NE(what.find("'refrence'"), std::string::npos) << what;
        EXPECT_NE(what.find("'reference'"), std::string::npos) << what;
        EXPECT_NE(what.find("'fast'"), std::string::npos) << what;
    }
}

TEST(EnvPolicy, SolverPolicyParsesAcceptedTokens)
{
    EXPECT_EQ(sram::parse_solver_policy("direct"),
              spice::Solver_policy::direct);
    EXPECT_EQ(sram::parse_solver_policy("bypass"),
              spice::Solver_policy::bypass);
    EXPECT_EQ(sram::parse_solver_policy("iterative"),
              spice::Solver_policy::iterative);
}

TEST(EnvPolicy, SolverPolicyRejectsUnknownToken)
{
    EXPECT_THROW(sram::parse_solver_policy("Bypass"),
                 util::Precondition_error);
    EXPECT_THROW(sram::parse_solver_policy(""), util::Precondition_error);
    EXPECT_THROW(sram::parse_solver_policy("ilu"),
                 util::Precondition_error);
}

TEST(EnvPolicy, SolverPolicyErrorNamesValueAndAcceptedSet)
{
    try {
        sram::parse_solver_policy("bypas");
        FAIL() << "parse should have thrown";
    } catch (const util::Precondition_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("MPSRAM_SOLVER_POLICY"), std::string::npos)
            << what;
        EXPECT_NE(what.find("'bypas'"), std::string::npos) << what;
        EXPECT_NE(what.find("'direct'"), std::string::npos) << what;
        EXPECT_NE(what.find("'bypass'"), std::string::npos) << what;
        EXPECT_NE(what.find("'iterative'"), std::string::npos) << what;
    }
}

TEST(EnvPolicy, CacheModeParsesAcceptedTokens)
{
    EXPECT_EQ(core::parse_cache_mode("off"), core::Cache_mode::off);
    EXPECT_EQ(core::parse_cache_mode("read"), core::Cache_mode::read);
    EXPECT_EQ(core::parse_cache_mode("readwrite"),
              core::Cache_mode::readwrite);
}

TEST(EnvPolicy, CacheModeRejectsUnknownToken)
{
    EXPECT_THROW(core::parse_cache_mode("Off"), util::Precondition_error);
    EXPECT_THROW(core::parse_cache_mode(""), util::Precondition_error);
    EXPECT_THROW(core::parse_cache_mode("write"),
                 util::Precondition_error);
    EXPECT_THROW(core::parse_cache_mode("rw"), util::Precondition_error);
}

TEST(EnvPolicy, CacheModeErrorNamesValueAndAcceptedSet)
{
    try {
        core::parse_cache_mode("readwrit");
        FAIL() << "parse should have thrown";
    } catch (const util::Precondition_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("MPSRAM_CACHE"), std::string::npos) << what;
        EXPECT_NE(what.find("'readwrit'"), std::string::npos) << what;
        EXPECT_NE(what.find("'off'"), std::string::npos) << what;
        EXPECT_NE(what.find("'read'"), std::string::npos) << what;
        EXPECT_NE(what.find("'readwrite'"), std::string::npos) << what;
    }
}

TEST(EnvPolicy, CacheDirAcceptsAnyNonEmptyPath)
{
    EXPECT_EQ(core::parse_cache_dir("/tmp/mpsram-cache"),
              "/tmp/mpsram-cache");
    EXPECT_EQ(core::parse_cache_dir("relative/dir"), "relative/dir");
}

TEST(EnvPolicy, CacheDirRejectsEmptyPinNamingTheVariable)
{
    // An empty pin is a configuration bug, not "no cache": disabling is
    // spelled by unsetting the variable (or MPSRAM_CACHE=off).
    try {
        core::parse_cache_dir("");
        FAIL() << "parse should have thrown";
    } catch (const util::Precondition_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("MPSRAM_CACHE_DIR"), std::string::npos)
            << what;
    }
}

TEST(EnvPolicy, CacheToStringRoundTripsThroughParse)
{
    for (const core::Cache_mode mode :
         {core::Cache_mode::off, core::Cache_mode::read,
          core::Cache_mode::readwrite}) {
        EXPECT_EQ(core::parse_cache_mode(core::to_string(mode)), mode);
    }
}

TEST(EnvPolicy, DefaultsAreUsableWithoutEnvPins)
{
    // The memoized getters must at minimum return a member of the enum
    // under the test environment (which sets neither variable or sets a
    // valid one — an invalid pin would abort every test, not just this).
    const sram::Sim_accuracy acc = sram::default_sim_accuracy();
    EXPECT_TRUE(acc == sram::Sim_accuracy::fast ||
                acc == sram::Sim_accuracy::reference);
    const spice::Solver_policy pol = sram::default_solver_policy();
    EXPECT_TRUE(pol == spice::Solver_policy::direct ||
                pol == spice::Solver_policy::bypass ||
                pol == spice::Solver_policy::iterative);
    const core::Cache_mode mode = core::default_cache_mode();
    EXPECT_TRUE(mode == core::Cache_mode::off ||
                mode == core::Cache_mode::read ||
                mode == core::Cache_mode::readwrite);
    // default_cache_dir() must not throw when the variable is unset.
    (void)core::default_cache_dir();
}

} // namespace
