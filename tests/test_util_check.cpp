#include "util/check.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/runner.h"
#include "spice/analysis.h"
#include "spice/circuit.h"

namespace {

using namespace mpsram;

constexpr double quiet_nan = std::numeric_limits<double>::quiet_NaN();

TEST(Check, AllFinite)
{
    EXPECT_TRUE(util::all_finite({}));
    EXPECT_TRUE(util::all_finite({0.0, -1.5, 1e300}));
    EXPECT_FALSE(util::all_finite({0.0, quiet_nan}));
    EXPECT_FALSE(
        util::all_finite({std::numeric_limits<double>::infinity()}));
}

TEST(Check, PassingCheckIsSilentInEveryBuild)
{
    const double x = 1.0;
    MPSRAM_ASSERT(x > 0.0, "positive stays positive", MPSRAM_VAL(x));
    MPSRAM_REQUIRE(x < 2.0, "small stays small");
    MPSRAM_ENSURE(std::isfinite(x), "finite stays finite", MPSRAM_VAL(x));
    SUCCEED();
}

TEST(Check, EvaluationMatchesBuildMode)
{
    // Checked builds evaluate the condition (and fire nothing when it
    // holds); unchecked builds must not evaluate it at all — the macros
    // are documented as side-effect free because of exactly this.
    int calls = 0;
    auto probe = [&calls] {
        ++calls;
        return true;
    };
    MPSRAM_ASSERT(probe(), "side-effect probe");
#ifdef MPSRAM_CHECKED
    EXPECT_EQ(calls, 1);
#else
    EXPECT_EQ(calls, 0);
#endif
}

TEST(Check, CheckedSlotAcceptsInRangeIndex)
{
    core::Run_context ctx;
    ctx.job_index = 2;
    ctx.worker = 1;
    EXPECT_EQ(core::checked_slot(ctx, 4), 2u);
    EXPECT_EQ(core::checked_worker(ctx, 4), 1u);
}

TEST(Check, CheckedSlotRejectsOutOfRangeIndex)
{
    core::Run_context ctx;
    ctx.job_index = 7;  // plan slot beyond a 4-row result vector
    ctx.worker = -1;    // bogus worker id
#ifdef MPSRAM_CHECKED
    EXPECT_THROW(core::checked_slot(ctx, 4), util::Contract_error);
    EXPECT_THROW(core::checked_worker(ctx, 4), util::Contract_error);
#else
    // Compiled out: the helpers degrade to plain pass-throughs.
    EXPECT_EQ(core::checked_slot(ctx, 4), 7u);
#endif
}

#ifdef MPSRAM_CHECKED

TEST(Check, FailureMessageNamesEverything)
{
    const int limit = 3;
    const int value = 9;
    try {
        MPSRAM_REQUIRE(value < limit, "value exceeded the limit",
                       MPSRAM_VAL(value), MPSRAM_VAL(limit));
        FAIL() << "contract should have fired";
    } catch (const util::Contract_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("MPSRAM_REQUIRE"), std::string::npos) << what;
        EXPECT_NE(what.find("value < limit"), std::string::npos) << what;
        EXPECT_NE(what.find("test_util_check.cpp"), std::string::npos)
            << what;
        EXPECT_NE(what.find("value exceeded the limit"), std::string::npos)
            << what;
        EXPECT_NE(what.find("value = 9"), std::string::npos) << what;
        EXPECT_NE(what.find("limit = 3"), std::string::npos) << what;
    }
}

TEST(Check, FloatCapturesKeepFullPrecision)
{
    const double piv = 0.1;
    try {
        MPSRAM_ASSERT(piv > 1.0, "pivot too small", MPSRAM_VAL(piv));
        FAIL() << "contract should have fired";
    } catch (const util::Contract_error& e) {
        // max_digits10 round-trips the double exactly.
        EXPECT_NE(std::string(e.what()).find("piv = 0.1000000000000000"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Check, IndexFormReportsBothSides)
{
    const std::size_t i = 12;
    const std::size_t n = 10;
    try {
        MPSRAM_REQUIRE_INDEX(i, n);
        FAIL() << "contract should have fired";
    } catch (const util::Contract_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("index out of range"), std::string::npos)
            << what;
        EXPECT_NE(what.find("12"), std::string::npos) << what;
        EXPECT_NE(what.find("10"), std::string::npos) << what;
    }
}

#endif // MPSRAM_CHECKED

/// Test-only device stamping a NaN conductance.  The library devices
/// validate their parameters at construction, so the only way a NaN can
/// reach the MNA assembly is a buggy model — which this class simulates.
class Nan_device : public spice::Device {
public:
    Nan_device(std::string name, spice::Node a, spice::Node b)
        : Device(std::move(name), {a, b}), a_(a), b_(b)
    {
    }

    void stamp(spice::Stamper& s, const spice::Eval_context&) const override
    {
        s.conductance(a_, b_, quiet_nan);
    }

private:
    spice::Node a_;
    spice::Node b_;
};

TEST(Check, CheckedBuildRejectsNanStampedDevice)
{
#ifndef MPSRAM_CHECKED
    GTEST_SKIP() << "contract layer compiled out in this build";
#else
    spice::Circuit c;
    const spice::Node n1 = c.node("n1");
    c.add_voltage_source("V1", n1, spice::ground_node,
                         spice::Waveform::dc(1.0));
    const spice::Node n2 = c.node("n2");
    c.add_resistor("R1", n1, n2, 1000.0);
    c.devices().push_back(
        std::make_unique<Nan_device>("XNAN", n2, spice::ground_node));

    // Without the stamp guard the NaN sails through assembly, defeats the
    // pivot-floor test (fabs(NaN) < floor is false), and Newton "converges"
    // because fabs(NaN delta) > tol is also false — a silent wrong answer.
    EXPECT_THROW(spice::dc_operating_point(c), util::Contract_error);
#endif
}

} // namespace
