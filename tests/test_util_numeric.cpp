#include "util/numeric.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/contracts.h"

namespace {

using mpsram::util::bisect;
using mpsram::util::lerp;
using mpsram::util::Piecewise_linear;
using mpsram::util::polyval;
using mpsram::util::rel_diff;

TEST(Lerp, InterpolatesAndExtrapolates)
{
    EXPECT_DOUBLE_EQ(lerp(0.0, 0.0, 1.0, 10.0, 0.5), 5.0);
    EXPECT_DOUBLE_EQ(lerp(0.0, 0.0, 1.0, 10.0, 2.0), 20.0);
    EXPECT_THROW(lerp(1.0, 0.0, 1.0, 1.0, 0.5),
                 mpsram::util::Precondition_error);
}

TEST(PiecewiseLinear, AtClampsOutsideRange)
{
    const Piecewise_linear w({0.0, 1.0, 2.0}, {0.0, 10.0, 0.0});
    EXPECT_DOUBLE_EQ(w.at(-1.0), 0.0);
    EXPECT_DOUBLE_EQ(w.at(3.0), 0.0);
    EXPECT_DOUBLE_EQ(w.at(0.5), 5.0);
    EXPECT_DOUBLE_EQ(w.at(1.5), 5.0);
}

TEST(PiecewiseLinear, AppendEnforcesMonotoneX)
{
    Piecewise_linear w;
    w.append(0.0, 1.0);
    w.append(1.0, 2.0);
    EXPECT_THROW(w.append(0.5, 3.0), mpsram::util::Precondition_error);
}

TEST(PiecewiseLinear, ConstructorValidates)
{
    EXPECT_THROW(Piecewise_linear({0.0, 0.0}, {1.0, 2.0}),
                 mpsram::util::Precondition_error);
    EXPECT_THROW(Piecewise_linear({0.0}, {1.0, 2.0}),
                 mpsram::util::Precondition_error);
}

TEST(PiecewiseLinear, FirstCrossingRising)
{
    const Piecewise_linear w({0.0, 1.0, 2.0}, {0.0, 1.0, 1.0});
    EXPECT_NEAR(w.first_crossing(0.5), 0.5, 1e-12);
    EXPECT_NEAR(w.first_crossing(1.0), 1.0, 1e-12);
}

TEST(PiecewiseLinear, FirstCrossingFalling)
{
    const Piecewise_linear w({0.0, 2.0}, {1.0, 0.0});
    EXPECT_NEAR(w.first_crossing(0.25), 1.5, 1e-12);
}

TEST(PiecewiseLinear, FirstCrossingHonorsFrom)
{
    // Crosses 0.5 upward at t=0.5 and downward at t=2.5.
    const Piecewise_linear w({0.0, 1.0, 2.0, 3.0}, {0.0, 1.0, 1.0, 0.0});
    EXPECT_NEAR(w.first_crossing(0.5, 1.2), 2.5, 1e-12);
}

TEST(PiecewiseLinear, FirstCrossingMissReturnsNegative)
{
    const Piecewise_linear w({0.0, 1.0}, {0.0, 0.4});
    EXPECT_LT(w.first_crossing(0.5), 0.0);
}

TEST(Polyval, EvaluatesHornerForm)
{
    // 2 + 3x + 4x^2 at x=2 -> 2 + 6 + 16 = 24
    EXPECT_DOUBLE_EQ(polyval({2.0, 3.0, 4.0}, 2.0), 24.0);
    EXPECT_DOUBLE_EQ(polyval({}, 5.0), 0.0);
    EXPECT_DOUBLE_EQ(polyval({7.0}, 5.0), 7.0);
}

TEST(Bisect, FindsSqrtTwo)
{
    const double root =
        bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0, 1e-13);
    EXPECT_NEAR(root, std::sqrt(2.0), 1e-12);
}

TEST(Bisect, EndpointRoots)
{
    EXPECT_DOUBLE_EQ(bisect([](double x) { return x; }, 0.0, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(bisect([](double x) { return x - 1.0; }, 0.0, 1.0),
                     1.0);
}

TEST(Bisect, RequiresSignChange)
{
    EXPECT_THROW(bisect([](double) { return 1.0; }, 0.0, 1.0),
                 mpsram::util::Precondition_error);
}

TEST(RelDiff, BasicProperties)
{
    EXPECT_DOUBLE_EQ(rel_diff(1.0, 1.0), 0.0);
    EXPECT_NEAR(rel_diff(1.0, 1.1), 0.1 / 1.1, 1e-12);
    EXPECT_DOUBLE_EQ(rel_diff(0.0, 0.0), 0.0);
    // Symmetric.
    EXPECT_DOUBLE_EQ(rel_diff(2.0, 3.0), rel_diff(3.0, 2.0));
}

class CrossingConsistencyTest : public ::testing::TestWithParam<double> {};

TEST_P(CrossingConsistencyTest, ValueAtCrossingEqualsLevel)
{
    // Property: at the reported crossing time, the interpolated waveform
    // equals the level (within numerical tolerance).
    const double level = GetParam();
    const Piecewise_linear w({0.0, 1.0, 2.0, 3.0, 4.0},
                             {0.0, 0.8, 0.2, 0.9, 0.1});
    const double t = w.first_crossing(level);
    ASSERT_GE(t, 0.0);
    EXPECT_NEAR(w.at(t), level, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Levels, CrossingConsistencyTest,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.85));

} // namespace
