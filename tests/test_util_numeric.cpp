#include "util/numeric.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/contracts.h"

namespace {

using mpsram::util::bisect;
using mpsram::util::lerp;
using mpsram::util::Piecewise_linear;
using mpsram::util::polyval;
using mpsram::util::rel_diff;

TEST(Lerp, InterpolatesAndExtrapolates)
{
    EXPECT_DOUBLE_EQ(lerp(0.0, 0.0, 1.0, 10.0, 0.5), 5.0);
    EXPECT_DOUBLE_EQ(lerp(0.0, 0.0, 1.0, 10.0, 2.0), 20.0);
    EXPECT_THROW(lerp(1.0, 0.0, 1.0, 1.0, 0.5),
                 mpsram::util::Precondition_error);
}

TEST(PiecewiseLinear, AtClampsOutsideRange)
{
    const Piecewise_linear w({0.0, 1.0, 2.0}, {0.0, 10.0, 0.0});
    EXPECT_DOUBLE_EQ(w.at(-1.0), 0.0);
    EXPECT_DOUBLE_EQ(w.at(3.0), 0.0);
    EXPECT_DOUBLE_EQ(w.at(0.5), 5.0);
    EXPECT_DOUBLE_EQ(w.at(1.5), 5.0);
}

TEST(PiecewiseLinear, AppendEnforcesMonotoneX)
{
    Piecewise_linear w;
    w.append(0.0, 1.0);
    w.append(1.0, 2.0);
    EXPECT_THROW(w.append(0.5, 3.0), mpsram::util::Precondition_error);
}

TEST(PiecewiseLinear, ConstructorValidates)
{
    EXPECT_THROW(Piecewise_linear({0.0, 0.0}, {1.0, 2.0}),
                 mpsram::util::Precondition_error);
    EXPECT_THROW(Piecewise_linear({0.0}, {1.0, 2.0}),
                 mpsram::util::Precondition_error);
}

TEST(PiecewiseLinear, FirstCrossingRising)
{
    const Piecewise_linear w({0.0, 1.0, 2.0}, {0.0, 1.0, 1.0});
    EXPECT_NEAR(w.first_crossing(0.5), 0.5, 1e-12);
    EXPECT_NEAR(w.first_crossing(1.0), 1.0, 1e-12);
}

TEST(PiecewiseLinear, FirstCrossingFalling)
{
    const Piecewise_linear w({0.0, 2.0}, {1.0, 0.0});
    EXPECT_NEAR(w.first_crossing(0.25), 1.5, 1e-12);
}

TEST(PiecewiseLinear, FirstCrossingHonorsFrom)
{
    // Crosses 0.5 upward at t=0.5 and downward at t=2.5.
    const Piecewise_linear w({0.0, 1.0, 2.0, 3.0}, {0.0, 1.0, 1.0, 0.0});
    EXPECT_NEAR(w.first_crossing(0.5, 1.2), 2.5, 1e-12);
}

TEST(PiecewiseLinear, FirstCrossingMissReturnsNegative)
{
    const Piecewise_linear w({0.0, 1.0}, {0.0, 0.4});
    EXPECT_LT(w.first_crossing(0.5), 0.0);
}

TEST(PiecewiseLinear, FirstCrossingFlatAtLevelSpanningFrom)
{
    // Regression: the segment [1, 2] starts exactly at the level with its
    // start before `from` and stays flat at the level.  The old code
    // skipped it entirely (the y0 == 0 early-return was gated on
    // xs_[i-1] >= from and the sign-change test excluded y0 == 0) and
    // returned -1; the waveform is at the level at `from` itself.
    const Piecewise_linear w({0.0, 1.0, 2.0}, {0.0, 0.5, 0.5});
    EXPECT_DOUBLE_EQ(w.first_crossing(0.5, 1.5), 1.5);
    // Start of the flat run at-or-after `from` keeps reporting the sample.
    EXPECT_DOUBLE_EQ(w.first_crossing(0.5, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(w.first_crossing(0.5, 0.5), 1.0);
}

TEST(PiecewiseLinear, FirstCrossingLeavesLevelBeforeFrom)
{
    // Touches the level only at x=0, before `from`, then leaves: no
    // crossing to report.
    const Piecewise_linear w({0.0, 1.0, 2.0}, {0.5, 1.0, 2.0});
    EXPECT_LT(w.first_crossing(0.5, 0.25), 0.0);
    // ... but the touch itself counts when `from` is at or before it.
    EXPECT_DOUBLE_EQ(w.first_crossing(0.5, 0.0), 0.0);
}

TEST(PiecewiseLinear, FirstCrossingSingleSample)
{
    const Piecewise_linear at_level({1.0}, {0.5});
    EXPECT_DOUBLE_EQ(at_level.first_crossing(0.5), 1.0);
    EXPECT_LT(at_level.first_crossing(0.5, 2.0), 0.0);
    const Piecewise_linear off_level({1.0}, {0.4});
    EXPECT_LT(off_level.first_crossing(0.5), 0.0);
}

TEST(Polyval, EvaluatesHornerForm)
{
    // 2 + 3x + 4x^2 at x=2 -> 2 + 6 + 16 = 24
    EXPECT_DOUBLE_EQ(polyval({2.0, 3.0, 4.0}, 2.0), 24.0);
    EXPECT_DOUBLE_EQ(polyval({}, 5.0), 0.0);
    EXPECT_DOUBLE_EQ(polyval({7.0}, 5.0), 7.0);
}

TEST(Bisect, FindsSqrtTwo)
{
    const double root =
        bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0, 1e-13);
    EXPECT_NEAR(root, std::sqrt(2.0), 1e-12);
}

TEST(Bisect, EndpointRoots)
{
    EXPECT_DOUBLE_EQ(bisect([](double x) { return x; }, 0.0, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(bisect([](double x) { return x - 1.0; }, 0.0, 1.0),
                     1.0);
}

TEST(Bisect, RequiresSignChange)
{
    EXPECT_THROW(bisect([](double) { return 1.0; }, 0.0, 1.0),
                 mpsram::util::Precondition_error);
}

TEST(RelDiff, BasicProperties)
{
    EXPECT_DOUBLE_EQ(rel_diff(1.0, 1.0), 0.0);
    EXPECT_NEAR(rel_diff(1.0, 1.1), 0.1 / 1.1, 1e-12);
    EXPECT_DOUBLE_EQ(rel_diff(0.0, 0.0), 0.0);
    // Symmetric.
    EXPECT_DOUBLE_EQ(rel_diff(2.0, 3.0), rel_diff(3.0, 2.0));
}

TEST(NormalQuantile, CentralAndModerateTailsRoundTrip)
{
    using mpsram::util::normal_cdf;
    using mpsram::util::normal_quantile;
    for (const double p : {0.01, 0.1, 0.5, 0.9, 0.99, 1e-6, 1.0 - 1e-6}) {
        EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-12 + 1e-9 * p);
    }
}

TEST(NormalQuantile, ExtremeTailsStayFinite)
{
    using mpsram::util::normal_quantile;
    // Regression: at p ~ 1e-300 the z estimate sits near -37 where the
    // normal pdf underflows to 0; the Newton refinement used to divide by
    // it and return NaN/Inf.  The guarded version keeps the rational
    // approximation.
    const double z_low = normal_quantile(1e-300);
    ASSERT_TRUE(std::isfinite(z_low));
    EXPECT_LT(z_low, -36.0);
    EXPECT_GT(z_low, -38.5);

    // Near 1 the refinement still applies (pdf ~ 6e-16 at z ~ 8.2) and
    // must stay finite and monotone with the tail.
    const double z_high = normal_quantile(1.0 - 1e-16);
    ASSERT_TRUE(std::isfinite(z_high));
    EXPECT_GT(z_high, 7.5);
    EXPECT_LT(z_high, 8.7);

    // Symmetric spot checks deep in both tails.
    for (const double p : {1e-200, 1e-100, 1e-50}) {
        const double zl = normal_quantile(p);
        const double zh = normal_quantile(1.0 - 1e-16);
        ASSERT_TRUE(std::isfinite(zl));
        ASSERT_TRUE(std::isfinite(zh));
        EXPECT_LT(zl, -14.0);
    }
}

class CrossingConsistencyTest : public ::testing::TestWithParam<double> {};

TEST_P(CrossingConsistencyTest, ValueAtCrossingEqualsLevel)
{
    // Property: at the reported crossing time, the interpolated waveform
    // equals the level (within numerical tolerance).
    const double level = GetParam();
    const Piecewise_linear w({0.0, 1.0, 2.0, 3.0, 4.0},
                             {0.0, 0.8, 0.2, 0.9, 0.1});
    const double t = w.first_crossing(level);
    ASSERT_GE(t, 0.0);
    EXPECT_NEAR(w.at(t), level, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Levels, CrossingConsistencyTest,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.85));

} // namespace
