#include "spice/netlist_io.h"

#include <gtest/gtest.h>

#include "extract/extractor.h"
#include "spice/mosfet_model.h"
#include "sram/netlist_builder.h"

namespace {

using namespace mpsram;
using namespace mpsram::spice;

TEST(NetlistIo, EmitsAllDeviceCards)
{
    Mosfet_params nm;
    nm.type = Mosfet_type::nmos;

    Circuit c;
    const Node vdd = c.node("vdd");
    const Node out = c.node("out");
    c.add_voltage_source("Vdd", vdd, ground_node, Waveform::dc(0.7));
    c.add_resistor("R1", vdd, out, 1234.5);
    c.add_capacitor("C1", out, ground_node, 2e-15);
    c.add_current_source("I1", ground_node, out, Waveform::dc(1e-6));
    c.add_mosfet("Mn", out, vdd, ground_node, nm, 2.0);

    const std::string text = to_spice(c, "unit test");
    EXPECT_NE(text.find("* unit test"), std::string::npos);
    EXPECT_NE(text.find("R1 vdd out 1234.5"), std::string::npos);
    EXPECT_NE(text.find("C1 out 0 2e-15"), std::string::npos);
    EXPECT_NE(text.find("Vdd vdd 0 DC 0.7"), std::string::npos);
    EXPECT_NE(text.find("I1 0 out DC 1e-06"), std::string::npos);
    EXPECT_NE(text.find("Mn out vdd 0 0 nmos_ekv m=2"), std::string::npos);
    EXPECT_NE(text.find(".end"), std::string::npos);
}

TEST(NetlistIo, PulseSourcesSerializeAsPwl)
{
    Circuit c;
    const Node a = c.node("a");
    c.add_voltage_source("Vp", a, ground_node,
                         Waveform::pulse(0.0, 0.7, 1e-11, 4e-12));
    const std::string text = to_spice(c);
    EXPECT_NE(text.find("Vp a 0 PWL(0 0 1e-11 0 1.4e-11 0.7)"),
              std::string::npos);
}

TEST(NetlistIo, SramReadNetlistRoundTripsAllDevices)
{
    const tech::Technology t = tech::n10();
    const auto cell = sram::Cell_electrical::n10(t.feol);
    const extract::Extractor ex(t.metal1);
    sram::Array_config cfg;
    cfg.word_lines = 4;
    cfg.victim_pair = 6;
    const auto arr = sram::build_metal1_array(t, cfg);
    const auto wires = sram::roll_up_nominal(ex, arr, t, cfg);
    const sram::Read_netlist net =
        sram::build_read_netlist(t, cell, wires, cfg);

    const std::string text = to_spice(net.circuit, "sram read path");
    // One line per device plus title, count comment and .end.
    std::size_t lines = 0;
    for (char ch : text) {
        if (ch == '\n') ++lines;
    }
    EXPECT_EQ(lines, net.circuit.device_count() + 3);
    // Spot checks.
    EXPECT_NE(text.find("Mpg_bl3"), std::string::npos);
    EXPECT_NE(text.find("Rvss0"), std::string::npos);
    EXPECT_NE(text.find("pmos_ekv"), std::string::npos);
}

} // namespace
