#include "core/study.h"

#include <gtest/gtest.h>

namespace {

using namespace mpsram;

// One study shared by the suite: its caches make repeated queries cheap.
core::Variability_study& study()
{
    static core::Variability_study instance;
    return instance;
}

TEST(Study, TableOneLe3RowMatchesPaper)
{
    const auto row = study().worst_case(tech::Patterning_option::le3);
    // Paper: Cbl +61.56%, Rbl -10.36%.  Calibration tolerance: a couple
    // of percentage points.
    EXPECT_NEAR(row.cbl_percent, 61.56, 3.0);
    EXPECT_NEAR(row.rbl_percent, -10.36, 1.0);
    EXPECT_NE(row.corner.find("cd_mask_a=+3s"), std::string::npos);
    EXPECT_NE(row.corner.find("overlay"), std::string::npos);
}

TEST(Study, TableOneSadpRowMatchesPaper)
{
    const auto row = study().worst_case(tech::Patterning_option::sadp);
    EXPECT_NEAR(row.cbl_percent, 4.01, 1.5);
    EXPECT_NEAR(row.rbl_percent, -18.19, 2.0);
    // Anti-correlated rail.
    EXPECT_GT(row.vss_r_percent, 10.0);
}

TEST(Study, TableOneEuvRowMatchesPaper)
{
    const auto row = study().worst_case(tech::Patterning_option::euv);
    EXPECT_NEAR(row.cbl_percent, 6.65, 1.5);
    EXPECT_NEAR(row.rbl_percent, -10.36, 1.0);
    EXPECT_EQ(row.corner, "cd=+3s");
}

TEST(Study, Le3AndEuvShareRblSensitivity)
{
    // Both worst cases put +3 nm on the victim wire.
    const auto le3 = study().worst_case(tech::Patterning_option::le3);
    const auto euv = study().worst_case(tech::Patterning_option::euv);
    EXPECT_NEAR(le3.rbl_percent, euv.rbl_percent, 1e-9);
}

TEST(Study, OverlayBudgetScalesLe3Severity)
{
    const auto tight = study().worst_case(tech::Patterning_option::le3, 3e-9);
    const auto loose = study().worst_case(tech::Patterning_option::le3, 8e-9);
    EXPECT_LT(tight.cbl_percent, 0.5 * loose.cbl_percent);
    // Overlay budget does not touch widths.
    EXPECT_NEAR(tight.rbl_percent, loose.rbl_percent, 1e-9);
}

TEST(Study, OlOverrideIgnoredForSingleMaskOptions)
{
    const auto a = study().worst_case(tech::Patterning_option::euv, 3e-9);
    const auto b = study().worst_case(tech::Patterning_option::euv, 8e-9);
    EXPECT_NEAR(a.cbl_percent, b.cbl_percent, 1e-12);
}

TEST(Study, DecomposedArrayHasPaperShape)
{
    const auto arr =
        study().decomposed_array(tech::Patterning_option::le3, 64);
    EXPECT_EQ(arr.size(), 40u);  // 10 pairs x 4 tracks
    EXPECT_NE(arr[0].color, geom::Mask_color::unassigned);
}

TEST(Study, FormulaParamsMatchPaperRegime)
{
    const auto p = study().formula_params(64);
    EXPECT_NEAR(p.a, 0.105, 1e-3);
    // Wire share of per-cell capacitance ~30% (Table III regime).
    const double share = p.c_bl_cell / (p.c_bl_cell + p.c_fe);
    EXPECT_GT(share, 0.2);
    EXPECT_LT(share, 0.45);
}

TEST(Study, McTdpReproducibleAndOrdered)
{
    mc::Distribution_options mo;
    mo.samples = 2000;
    const auto le3 =
        study().mc_tdp(tech::Patterning_option::le3, 64, mo, 8e-9);
    const auto le3_again =
        study().mc_tdp(tech::Patterning_option::le3, 64, mo, 8e-9);
    EXPECT_DOUBLE_EQ(le3.summary.stddev, le3_again.summary.stddev);

    const auto sadp = study().mc_tdp(tech::Patterning_option::sadp, 64, mo);
    EXPECT_GT(le3.summary.stddev, 2.0 * sadp.summary.stddev);
}

TEST(Study, McSigmaGrowsWithOverlayBudget)
{
    mc::Distribution_options mo;
    mo.samples = 3000;
    double prev = 0.0;
    for (double ol : {3e-9, 5e-9, 7e-9, 8e-9}) {
        const auto d =
            study().mc_tdp(tech::Patterning_option::le3, 64, mo, ol);
        EXPECT_GT(d.summary.stddev, prev) << "OL " << ol;
        prev = d.summary.stddev;
    }
}

TEST(Study, WorstCaseFullProvidesGeometry)
{
    const auto wc =
        study().worst_case_full(tech::Patterning_option::le3, 16);
    EXPECT_EQ(wc.realized.size(), 40u);
    EXPECT_GT(wc.corner.metric, 0.0);
    // Geometry is actually distorted.
    bool any_shift = false;
    const auto nominal =
        study().decomposed_array(tech::Patterning_option::le3, 16);
    for (std::size_t i = 0; i < wc.realized.size(); ++i) {
        if (wc.realized[i].y_center != nominal[i].y_center) any_shift = true;
    }
    EXPECT_TRUE(any_shift);
}

TEST(Study, VictimPairDefaultsToMaskACompatible)
{
    EXPECT_EQ(study().options().array.victim_pair, 6);
    EXPECT_EQ(study().options().array.bl_pairs, 10);
}

} // namespace
