// Canonical JSON (util/json.h): the dump/parse properties the
// content-addressed cache relies on — deterministic compact rendering,
// bitwise numeric round-trip (u64 seeds, shortest-round-trip doubles,
// tagged non-finite encoding), and a strict parser.
#include "util/json.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "util/contracts.h"

namespace {

using mpsram::util::Json;
using mpsram::util::Json_array;
using mpsram::util::double_of_json;
using mpsram::util::json_of_double;
using mpsram::util::Precondition_error;

TEST(UtilJson, DumpIsCompactAndInsertionOrdered)
{
    Json j;
    j.set("b", 1.5);
    j.set("a", true);
    j.set("c", "x");
    // Members stay in insertion order (ordered vector, not a hash map)
    // and the rendering is whitespace-free — the dump is hashable.
    EXPECT_EQ(j.dump(), "{\"b\":1.5,\"a\":true,\"c\":\"x\"}");
}

TEST(UtilJson, SetReplacesInPlace)
{
    Json j;
    j.set("a", 1.0);
    j.set("b", 2.0);
    j.set("a", 3.0);
    EXPECT_EQ(j.dump(), "{\"a\":3,\"b\":2}");
}

TEST(UtilJson, ParseRoundTripsDump)
{
    Json j;
    j.set("null", nullptr);
    j.set("flag", false);
    j.set("n", 42);
    j.set("list", Json_array{Json(1.0), Json("two"), Json(true)});
    Json nested;
    nested.set("x", -0.125);
    j.set("obj", std::move(nested));
    const std::string dump = j.dump();
    EXPECT_EQ(Json::parse(dump).dump(), dump);
}

TEST(UtilJson, U64KeepsFullPrecision)
{
    // Seeds exceed 2^53; the dedicated u64 kind must not lose bits.
    const std::uint64_t big = std::numeric_limits<std::uint64_t>::max();
    Json j;
    j.set("seed", big);
    const Json back = Json::parse(j.dump());
    EXPECT_EQ(back.at("seed").as_u64(), big);
    EXPECT_EQ(back.dump(), j.dump());
}

TEST(UtilJson, DoubleShortestRoundTripIsBitwise)
{
    for (const double v : {0.1, 1.0 / 3.0, 6.02214076e23, 1e-300,
                           -2.2250738585072014e-308, 12345.6789}) {
        const Json back = Json::parse(Json(v).dump());
        EXPECT_EQ(std::bit_cast<std::uint64_t>(back.as_double()),
                  std::bit_cast<std::uint64_t>(v))
            << Json(v).dump();
    }
}

TEST(UtilJson, NegativeZeroRoundTripsBitwise)
{
    const double nz = -0.0;
    const double back = double_of_json(Json::parse(json_of_double(nz).dump()));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back),
              std::bit_cast<std::uint64_t>(nz));
}

TEST(UtilJson, NonFiniteDoublesUseTaggedStringAndRoundTripBitwise)
{
    const double values[] = {std::numeric_limits<double>::quiet_NaN(),
                             std::numeric_limits<double>::infinity(),
                             -std::numeric_limits<double>::infinity()};
    for (const double v : values) {
        const Json encoded = json_of_double(v);
        ASSERT_TRUE(encoded.is_string());
        EXPECT_EQ(encoded.as_string().rfind("f64:", 0), 0u)
            << encoded.dump();
        const double back = double_of_json(Json::parse(encoded.dump()));
        EXPECT_EQ(std::bit_cast<std::uint64_t>(back),
                  std::bit_cast<std::uint64_t>(v));
    }
}

TEST(UtilJson, FiniteDoublesStayPlainNumbers)
{
    const Json encoded = json_of_double(2.5);
    EXPECT_FALSE(encoded.is_string());
    EXPECT_EQ(encoded.dump(), "2.5");
    EXPECT_EQ(double_of_json(encoded), 2.5);
}

TEST(UtilJson, StringEscapesRoundTrip)
{
    const std::string nasty = "quote\" backslash\\ newline\n tab\t "
                              "control\x01 done";
    Json j;
    j.set("s", nasty);
    EXPECT_EQ(Json::parse(j.dump()).at("s").as_string(), nasty);
}

TEST(UtilJson, StrictParserRejectsMalformedInput)
{
    EXPECT_THROW(Json::parse(""), Precondition_error);
    EXPECT_THROW(Json::parse("{"), Precondition_error);
    EXPECT_THROW(Json::parse("{\"a\":1,}"), Precondition_error);
    EXPECT_THROW(Json::parse("[1 2]"), Precondition_error);
    EXPECT_THROW(Json::parse("\"unterminated"), Precondition_error);
    EXPECT_THROW(Json::parse("nul"), Precondition_error);
    EXPECT_THROW(Json::parse("{}extra"), Precondition_error);
}

TEST(UtilJson, TypedAccessThrowsOnKindMismatch)
{
    const Json j = Json::parse("{\"a\":1.5}");
    EXPECT_THROW(j.at("a").as_string(), Precondition_error);
    EXPECT_THROW(j.at("missing"), Precondition_error);
    EXPECT_EQ(j.find("missing"), nullptr);
    // A fractional double has no exact u64 meaning.
    EXPECT_THROW(j.at("a").as_u64(), Precondition_error);
}

} // namespace
