#include "spice/analysis.h"

#include <cmath>

#include <gtest/gtest.h>

#include "spice/exceptions.h"
#include "spice/measure.h"
#include "spice/mosfet_model.h"
#include "util/contracts.h"

namespace {

using namespace mpsram::spice;

/// Build the canonical RC low-pass driven by a step.
struct Rc_fixture {
    Circuit circuit;
    Node in = 0;
    Node out = 0;
    double r = 1000.0;
    double c = 1e-12;  // tau = 1 ns

    explicit Rc_fixture(double step_delay = 1e-9)
    {
        in = circuit.node("in");
        out = circuit.node("out");
        circuit.add_voltage_source(
            "Vin", in, ground_node,
            Waveform::pulse(0.0, 1.0, step_delay, 1e-12));
        circuit.add_resistor("R1", in, out, r);
        circuit.add_capacitor("C1", out, ground_node, c);
    }
};

class RcChargeTest : public ::testing::TestWithParam<Integration_method> {};

TEST_P(RcChargeTest, MatchesAnalyticExponential)
{
    Rc_fixture f;
    Transient_options opts;
    opts.tstop = 6e-9;
    opts.nominal_steps = 3000;
    opts.method = GetParam();

    const Transient_result res =
        run_transient(f.circuit, {f.out}, opts);
    const auto wave = res.waveform("out");

    const double tau = f.r * f.c;
    for (double t_ns : {1.5, 2.0, 3.0, 4.0, 5.5}) {
        const double t = t_ns * 1e-9;
        const double expected = 1.0 - std::exp(-(t - 1e-9 - 0.5e-12) / tau);
        EXPECT_NEAR(wave.at(t), expected, 5e-3)
            << "t = " << t_ns << " ns";
    }
}

INSTANTIATE_TEST_SUITE_P(Integrators, RcChargeTest,
                         ::testing::Values(
                             Integration_method::backward_euler,
                             Integration_method::trapezoidal));

TEST(Transient, TrapezoidalMoreAccurateThanBackwardEuler)
{
    const double tau = 1e-9;
    auto max_error = [&](Integration_method m) {
        Rc_fixture f;
        Transient_options opts;
        opts.tstop = 5e-9;
        opts.nominal_steps = 200;  // deliberately coarse
        opts.method = m;
        const auto res = run_transient(f.circuit, {f.out}, opts);
        const auto wave = res.waveform("out");
        double worst = 0.0;
        for (double t = 1.2e-9; t < 5e-9; t += 0.1e-9) {
            const double expected = 1.0 - std::exp(-(t - 1e-9) / tau);
            worst = std::max(worst, std::fabs(wave.at(t) - expected));
        }
        return worst;
    };
    EXPECT_LT(max_error(Integration_method::trapezoidal),
              max_error(Integration_method::backward_euler));
}

TEST(Transient, TenPercentDischargeConstant)
{
    // Discharge an initially charged cap and verify t = 0.105 RC at the
    // 10% discharge level — eq. (3) of the paper.
    Circuit c;
    const Node in = c.node("in");
    const Node out = c.node("out");
    c.add_voltage_source("Vin", in, ground_node,
                         Waveform::pulse(1.0, 0.0, 1e-9, 1e-12));
    c.add_resistor("R1", in, out, 1000.0);
    c.add_capacitor("C1", out, ground_node, 1e-12);

    Transient_options opts;
    opts.tstop = 3e-9;
    opts.nominal_steps = 6000;
    const auto res = run_transient(c, {out}, opts);
    const double t_cross = crossing_time(res, "out", 0.9, 1e-9);
    ASSERT_GT(t_cross, 0.0);
    EXPECT_NEAR(t_cross - 1e-9 - 0.5e-12, 0.10536e-9, 3e-12);
}

TEST(Transient, StartsFromDcOperatingPoint)
{
    // The cap starts at the DC solution (1 V), so nothing moves until the
    // source steps down.
    Circuit c;
    const Node in = c.node("in");
    const Node out = c.node("out");
    c.add_voltage_source("Vin", in, ground_node,
                         Waveform::pulse(1.0, 0.0, 2e-9, 1e-12));
    c.add_resistor("R1", in, out, 1000.0);
    c.add_capacitor("C1", out, ground_node, 1e-12);

    Transient_options opts;
    opts.tstop = 3e-9;
    const auto res = run_transient(c, {out}, opts);
    const auto wave = res.waveform("out");
    EXPECT_NEAR(wave.at(0.0), 1.0, 1e-6);
    EXPECT_NEAR(wave.at(1.9e-9), 1.0, 1e-4);
    EXPECT_LT(wave.at(3e-9), 0.7);
}

TEST(Transient, LandsExactlyOnBreakpoints)
{
    Rc_fixture f(1.234567e-9);
    Transient_options opts;
    opts.tstop = 2e-9;
    opts.nominal_steps = 37;  // deliberately incommensurate
    const auto res = run_transient(f.circuit, {f.out}, opts);
    // One recorded sample must sit exactly on the source corner.
    bool found = false;
    for (double t : res.time()) {
        if (std::fabs(t - 1.234567e-9) < 1e-18) found = true;
    }
    EXPECT_TRUE(found);
}

TEST(Transient, CapacitorDividerStep)
{
    // Two series caps divide a fast step by the capacitance ratio.
    Circuit c;
    const Node in = c.node("in");
    const Node mid = c.node("mid");
    c.add_voltage_source("Vin", in, ground_node,
                         Waveform::pulse(0.0, 1.0, 0.5e-9, 1e-12));
    c.add_capacitor("C1", in, mid, 3e-15);
    c.add_capacitor("C2", mid, ground_node, 1e-15);

    Transient_options opts;
    opts.tstop = 1e-9;
    opts.newton.gmin = 1e-15;  // keep the divider from drooping
    const auto res = run_transient(c, {mid}, opts);
    EXPECT_NEAR(res.final_value("mid"), 0.75, 1e-3);
}

TEST(Transient, InverterSwitchesAndIsMeasurable)
{
    Mosfet_params nm;
    nm.type = Mosfet_type::nmos;
    nm = calibrate_beta(nm, 0.7, 40e-6);
    Mosfet_params pm;
    pm.type = Mosfet_type::pmos;
    pm = calibrate_beta(pm, 0.7, 30e-6);

    Circuit c;
    const Node vdd = c.node("vdd");
    const Node in = c.node("in");
    const Node out = c.node("out");
    c.add_voltage_source("Vdd", vdd, ground_node, Waveform::dc(0.7));
    c.add_voltage_source("Vin", in, ground_node,
                         Waveform::pulse(0.0, 0.7, 50e-12, 10e-12));
    c.add_mosfet("Mp", out, in, vdd, pm);
    c.add_mosfet("Mn", out, in, ground_node, nm);
    c.add_capacitor("CL", out, ground_node, 1e-15);

    Transient_options opts;
    opts.tstop = 300e-12;
    const auto res = run_transient(c, {in, out}, opts);

    EXPECT_NEAR(res.waveform("out").at(10e-12), 0.7, 1e-3);
    EXPECT_LT(res.final_value("out"), 0.05);
    const double t50 = crossing_time(res, "out", 0.35, 40e-12);
    EXPECT_GT(t50, 50e-12);
    EXPECT_LT(t50, 120e-12);
}

TEST(Transient, DifferentialMeasurement)
{
    // Two RC branches with different taus develop a measurable
    // differential.
    Circuit c;
    const Node in = c.node("in");
    const Node a = c.node("a");
    const Node b = c.node("b");
    c.add_voltage_source("Vin", in, ground_node,
                         Waveform::pulse(0.0, 1.0, 0.1e-9, 1e-12));
    c.add_resistor("Ra", in, a, 1000.0);
    c.add_capacitor("Ca", a, ground_node, 1e-12);
    c.add_resistor("Rb", in, b, 3000.0);
    c.add_capacitor("Cb", b, ground_node, 1e-12);

    Transient_options opts;
    opts.tstop = 3e-9;
    const auto res = run_transient(c, {a, b}, opts);
    const double t = differential_time(res, "a", "b", 0.1, 0.1e-9);
    EXPECT_GT(t, 0.1e-9);
    EXPECT_LT(t, 1.5e-9);
    // At the reported time the differential equals the level.
    EXPECT_NEAR(res.differential("a", "b").at(t), 0.1, 1e-6);
}

TEST(Transient, ValidatesOptions)
{
    Rc_fixture f;
    Transient_options opts;
    opts.tstop = 0.0;
    EXPECT_THROW(run_transient(f.circuit, {f.out}, opts),
                 mpsram::util::Precondition_error);
}

TEST(Transient, UnknownProbeNameThrows)
{
    Rc_fixture f;
    Transient_options opts;
    opts.tstop = 1e-9;
    const auto res = run_transient(f.circuit, {f.out}, opts);
    EXPECT_THROW(res.waveform("nope"), mpsram::spice::Netlist_error);
}

TEST(Mosfet, PassGateChargeSharingConserved)
{
    // Charge redistribution across a pass gate: 2 fF at 0.7 V into 1 fF at
    // 0 V -> both settle near 0.7 * 2/3 = 0.467 V (NMOS can pass this
    // level since vgs stays above vth).
    Mosfet_params nm;
    nm.type = Mosfet_type::nmos;
    nm = calibrate_beta(nm, 0.7, 40e-6);

    Circuit c;
    const Node a = c.node("a");
    const Node b = c.node("b");
    const Node g = c.node("g");
    c.add_voltage_source("Vg", g, ground_node,
                         Waveform::pulse(0.0, 0.7, 10e-12, 4e-12));
    // Pre-charge node a via a source that steps away... simpler: use a
    // big source resistor so node a starts at 0.7 and is then isolated.
    const Node supply = c.node("supply");
    c.add_voltage_source("Vs", supply, ground_node,
                         Waveform::pulse(0.7, 0.0, 5e-12, 2e-12));
    c.add_resistor("Riso", supply, a, 1e7);
    c.add_capacitor("Ca", a, ground_node, 2e-15);
    c.add_capacitor("Cb", b, ground_node, 1e-15);
    // Multiplicity 0.01 slows the transfer to ~1 ps so the fixed-step
    // integrator resolves it; at full drive the hand-off happens in ~10 fs
    // and the one-step linearized current overshoots.
    c.add_mosfet("Mpass", a, g, b, nm, 0.01);

    Transient_options opts;
    opts.tstop = 2000e-12;
    opts.nominal_steps = 4000;
    const auto res = run_transient(c, {a, b}, opts);
    // The full equilibrium (0.7 * 2/3 ~ 0.467 V) is never reached inside
    // the window: as b rises, the pass gate's vgs collapses into
    // subthreshold.  What must hold exactly:
    const double va = res.final_value("a");
    const double vb = res.final_value("b");
    // 1. substantial transfer happened, with no overshoot (a stays above b);
    EXPECT_GT(vb, 0.2);
    EXPECT_GT(va, vb);
    EXPECT_LT(va, 0.7);
    // 2. charge conservation: 2 fF * va + 1 fF * vb == 2 fF * 0.7 minus
    //    the small drain through the 10 Mohm isolation resistor.
    const double q_total = 2e-15 * va + 1e-15 * vb;
    EXPECT_LT(q_total, 2e-15 * 0.7);
    EXPECT_NEAR(q_total, 2e-15 * 0.7, 0.05e-15);
}

} // namespace
