#include "pattern/sadp.h"

#include <gtest/gtest.h>

#include "sram/layout.h"
#include "tech/technology.h"
#include "util/contracts.h"
#include "util/units.h"

namespace {

using namespace mpsram;
namespace units = mpsram::units;

geom::Wire_array nominal_array()
{
    sram::Array_config cfg;
    cfg.word_lines = 8;
    cfg.bl_pairs = 4;
    return sram::build_metal1_array(tech::n10(), cfg);
}

TEST(Sadp, TwoVariationAxes)
{
    const pattern::Sadp_engine engine(tech::n10());
    const auto& axes = engine.axes();
    ASSERT_EQ(axes.size(), 2u);
    EXPECT_EQ(axes[pattern::Sadp_engine::cd_core].name, "cd_core");
    EXPECT_EQ(axes[pattern::Sadp_engine::spacer].name, "spacer");
    EXPECT_NEAR(axes[0].sigma, 1.0 * units::nm, 1e-15);
    EXPECT_NEAR(axes[1].sigma, 0.5 * units::nm, 1e-15);
}

TEST(Sadp, PowerRailsAreMandrelsBitLinesAreGaps)
{
    const pattern::Sadp_engine engine(tech::n10());
    const geom::Wire_array arr = engine.decompose(nominal_array());
    for (std::size_t i = 0; i < arr.size(); ++i) {
        const bool is_rail = arr[i].net.rfind("VSS", 0) == 0 ||
                             arr[i].net.rfind("VDD", 0) == 0;
        const auto expected =
            is_rail ? geom::Sadp_class::mandrel : geom::Sadp_class::gap;
        EXPECT_EQ(arr[i].sadp, expected)
            << "wire " << i << " net " << arr[i].net;
    }
}

TEST(Sadp, GapWidthAntiCorrelatesWithCoreCd)
{
    const pattern::Sadp_engine engine(tech::n10());
    const geom::Wire_array arr = engine.decompose(nominal_array());

    pattern::Process_sample s = engine.nominal_sample();
    s[pattern::Sadp_engine::cd_core] = -3.0 * units::nm;
    const geom::Wire_array realized = engine.realize(arr, s);

    for (std::size_t i = 0; i < arr.size(); ++i) {
        const double dw = realized[i].width - arr[i].width;
        if (arr[i].sadp == geom::Sadp_class::mandrel) {
            EXPECT_NEAR(dw, -3.0 * units::nm, 1e-18);
        } else {
            EXPECT_NEAR(dw, +3.0 * units::nm, 1e-18);  // anti-correlated
        }
    }
}

TEST(Sadp, SpacerBiasNarrowsGapsOnly)
{
    const pattern::Sadp_engine engine(tech::n10());
    const geom::Wire_array arr = engine.decompose(nominal_array());

    pattern::Process_sample s = engine.nominal_sample();
    s[pattern::Sadp_engine::spacer] = 1.0 * units::nm;
    const geom::Wire_array realized = engine.realize(arr, s);

    for (std::size_t i = 0; i < arr.size(); ++i) {
        const double dw = realized[i].width - arr[i].width;
        if (arr[i].sadp == geom::Sadp_class::mandrel) {
            EXPECT_NEAR(dw, 0.0, 1e-18);
        } else {
            EXPECT_NEAR(dw, -2.0 * units::nm, 1e-18);  // one spacer per side
        }
    }
}

TEST(Sadp, PitchIsConservedUnderAnyVariation)
{
    // Self-aligned property: centers never move, so the center-to-center
    // pitch of the whole array is invariant under any process sample.
    const pattern::Sadp_engine engine(tech::n10());
    const geom::Wire_array arr = engine.decompose(nominal_array());

    pattern::Process_sample s = {2.0 * units::nm, -1.0 * units::nm};
    const geom::Wire_array realized = engine.realize(arr, s);

    for (std::size_t i = 0; i < arr.size(); ++i) {
        EXPECT_DOUBLE_EQ(realized[i].y_center, arr[i].y_center);
    }
}

class SadpSelfAlignmentTest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(SadpSelfAlignmentTest, MandrelGapSpacingIsSpacerDefined)
{
    // Property (the heart of SADP): every mandrel->gap spacing equals
    // nominal spacer thickness + bias, independent of the core CD.
    const auto [cd_nm, sp_nm] = GetParam();
    const tech::Technology t = tech::n10();
    const pattern::Sadp_engine engine(t);
    const geom::Wire_array arr = engine.decompose(nominal_array());

    pattern::Process_sample s = {cd_nm * units::nm, sp_nm * units::nm};
    const geom::Wire_array realized = engine.realize(arr, s);

    // Interior spacings between a mandrel and a gap wire: the mandrel edge
    // moves by cd/2, the gap edge by -(cd/2 + sp)... total spacing change
    // is sp relative to nominal spacer.
    const double expected =
        engine.nominal_spacer() -
        (t.metal1.nominal_space() - engine.nominal_spacer()) +
        sp_nm * units::nm;
    // With uniform nominal track widths, nominal spacing == spacer.
    EXPECT_NEAR(engine.nominal_spacer(), t.metal1.nominal_space(), 1e-18);

    for (std::size_t i = 0; i + 1 < realized.size(); ++i) {
        EXPECT_NEAR(realized.spacing_above(i),
                    t.metal1.nominal_space() + sp_nm * units::nm, 1e-17)
            << "spacing " << i << " should not depend on core CD "
            << cd_nm;
    }
    (void)expected;
}

INSTANTIATE_TEST_SUITE_P(
    CdSpacerGrid, SadpSelfAlignmentTest,
    ::testing::Values(std::pair{0.0, 0.0}, std::pair{3.0, 0.0},
                      std::pair{-3.0, 0.0}, std::pair{0.0, 1.5},
                      std::pair{3.0, -1.5}, std::pair{-3.0, 1.5}));

TEST(Sadp, RealizeValidates)
{
    const pattern::Sadp_engine engine(tech::n10());
    const geom::Wire_array undecomposed = nominal_array();
    EXPECT_THROW(engine.realize(undecomposed, engine.nominal_sample()),
                 util::Precondition_error);
    const geom::Wire_array arr = engine.decompose(undecomposed);
    EXPECT_THROW(engine.realize(arr, std::vector<double>{0.0}),
                 util::Precondition_error);
}

TEST(Sadp, PinchOffThrows)
{
    const pattern::Sadp_engine engine(tech::n10());
    const geom::Wire_array arr = engine.decompose(nominal_array());
    pattern::Process_sample s = {30.0 * units::nm, 0.0};
    EXPECT_THROW(engine.realize(arr, s), util::Postcondition_error);
}

} // namespace
