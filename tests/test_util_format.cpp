#include <sstream>

#include <gtest/gtest.h>

#include "util/contracts.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

using mpsram::util::Csv_writer;
using mpsram::util::Table;

TEST(Formatting, FixedAndScientific)
{
    EXPECT_EQ(mpsram::util::fmt_fixed(20.601, 2), "20.60");
    EXPECT_EQ(mpsram::util::fmt_fixed(-1.005, 1), "-1.0");
    EXPECT_EQ(mpsram::util::fmt_sci(5.59e-12, 2), "5.59E-12");
    EXPECT_EQ(mpsram::util::fmt_sci(3.4485e-10, 2), "3.45E-10");
}

TEST(Formatting, Percent)
{
    EXPECT_EQ(mpsram::util::fmt_percent(0.6156, 2), "+61.56%");
    EXPECT_EQ(mpsram::util::fmt_percent(-0.1036, 2), "-10.36%");
    EXPECT_EQ(mpsram::util::fmt_percent(0.0, 1), "+0.0%");
}

TEST(Formatting, EngineeringTime)
{
    EXPECT_EQ(mpsram::util::fmt_time(5.59e-12, 2), "5.59 ps");
    EXPECT_EQ(mpsram::util::fmt_time(3.0e-9, 1), "3.0 ns");
    EXPECT_EQ(mpsram::util::fmt_time(1.5, 1), "1.5 s");
    EXPECT_EQ(mpsram::util::fmt_time(2.0e-16, 1), "0.2 fs");
}

TEST(Table, RendersAlignedColumns)
{
    Table t({"a", "bbbb"});
    t.add_row({"xx", "y"});
    const std::string out = t.render();
    // Header, rule, one row.
    EXPECT_NE(out.find("a   bbbb"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
    EXPECT_NE(out.find("xx  y"), std::string::npos);
}

TEST(Table, RejectsMismatchedRow)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}),
                 mpsram::util::Precondition_error);
    EXPECT_THROW(Table({}), mpsram::util::Precondition_error);
}

TEST(Table, CountsRowsAndColumns)
{
    Table t({"a", "b", "c"});
    EXPECT_EQ(t.columns(), 3u);
    EXPECT_EQ(t.rows(), 0u);
    t.add_row({"1", "2", "3"});
    EXPECT_EQ(t.rows(), 1u);
}

TEST(Csv, WritesPlainRows)
{
    std::ostringstream out;
    Csv_writer csv(out);
    csv.write_header({"x", "y"});
    csv.write_row(std::vector<double>{1.5, -2.0});
    EXPECT_EQ(out.str(), "x,y\n1.5,-2\n");
}

TEST(Csv, QuotesSpecialCharacters)
{
    std::ostringstream out;
    Csv_writer csv(out);
    csv.write_row(std::vector<std::string>{"a,b", "he said \"hi\"", "line\nbreak"});
    EXPECT_EQ(out.str(),
              "\"a,b\",\"he said \"\"hi\"\"\",\"line\nbreak\"\n");
}

} // namespace
