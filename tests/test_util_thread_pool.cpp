#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace {

using mpsram::util::Thread_pool;

TEST(ThreadPool, HardwareThreadsAtLeastOne)
{
    EXPECT_GE(Thread_pool::hardware_threads(), 1);
}

TEST(ThreadPool, ThreadCountIncludesCaller)
{
    EXPECT_EQ(Thread_pool(1).thread_count(), 1);
    EXPECT_EQ(Thread_pool(4).thread_count(), 4);
    EXPECT_GE(Thread_pool(0).thread_count(), 1);  // hardware default
}

TEST(ThreadPool, EmptyLoopIsANoop)
{
    Thread_pool pool(4);
    int calls = 0;
    pool.parallel_for(0, 0, [&](std::size_t, int) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ExecutesEveryIndexExactlyOnce)
{
    // Far more jobs than workers, tiny chunks: maximal scheduling churn.
    Thread_pool pool(4);
    constexpr std::size_t count = 10000;
    std::vector<std::atomic<int>> hits(count);
    pool.parallel_for(count, 1, [&](std::size_t i, int) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ThreadPool, AutoChunkCoversEveryIndex)
{
    Thread_pool pool(3);
    constexpr std::size_t count = 1001;  // not divisible by any chunk guess
    std::vector<std::atomic<int>> hits(count);
    pool.parallel_for(count, 0, [&](std::size_t i, int) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ThreadPool, SingleThreadPoolRunsInline)
{
    Thread_pool pool(1);
    const auto caller = std::this_thread::get_id();
    std::size_t calls = 0;
    pool.parallel_for(100, 7, [&](std::size_t, int worker) {
        EXPECT_EQ(worker, 0);
        EXPECT_EQ(std::this_thread::get_id(), caller);
        ++calls;  // safe: single thread
    });
    EXPECT_EQ(calls, 100u);
}

TEST(ThreadPool, WorkerIdsStayInRange)
{
    Thread_pool pool(4);
    std::mutex mutex;
    std::set<int> seen;
    pool.parallel_for(2000, 1, [&](std::size_t, int worker) {
        const std::lock_guard<std::mutex> lock(mutex);
        seen.insert(worker);
    });
    for (int w : seen) {
        EXPECT_GE(w, 0);
        EXPECT_LT(w, pool.thread_count());
    }
}

TEST(ThreadPool, ExceptionPropagatesToCaller)
{
    Thread_pool pool(4);
    const auto boom = [](std::size_t i, int) {
        if (i == 137) throw std::runtime_error("boom");
    };
    EXPECT_THROW(pool.parallel_for(1000, 1, boom), std::runtime_error);
}

TEST(ThreadPool, PoolIsReusableAfterAnException)
{
    Thread_pool pool(4);
    EXPECT_THROW(pool.parallel_for(100, 1,
                                   [](std::size_t, int) {
                                       throw std::runtime_error("boom");
                                   }),
                 std::runtime_error);

    std::vector<std::atomic<int>> hits(500);
    pool.parallel_for(500, 1, [&](std::size_t i, int) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < hits.size(); ++i) {
        ASSERT_EQ(hits[i].load(), 1);
    }
}

TEST(ThreadPool, ExceptionAbortsRemainingChunks)
{
    // With the abort flag, far fewer than `count` bodies run after the
    // throw.  Only the precise "every index before the throw was not
    // silently skipped on the throwing chunk" matters for correctness;
    // here we just assert the loop both throws and stops early enough to
    // terminate (no hang).
    Thread_pool pool(2);
    std::atomic<std::size_t> calls{0};
    EXPECT_THROW(pool.parallel_for(1 << 20, 1,
                                   [&](std::size_t, int) {
                                       calls.fetch_add(1);
                                       throw std::runtime_error("first");
                                   }),
                 std::runtime_error);
    EXPECT_LT(calls.load(), std::size_t{1} << 20);
}

TEST(ThreadPool, ParallelSumMatchesSerial)
{
    constexpr std::size_t count = 4096;
    std::vector<double> out_serial(count);
    std::vector<double> out_parallel(count);

    const auto body = [](std::size_t i) {
        return static_cast<double>(i) * 0.5 + 1.0;
    };

    Thread_pool serial(1);
    serial.parallel_for(count, 0, [&](std::size_t i, int) {
        out_serial[i] = body(i);
    });
    Thread_pool parallel(4);
    parallel.parallel_for(count, 3, [&](std::size_t i, int) {
        out_parallel[i] = body(i);
    });

    EXPECT_EQ(out_serial, out_parallel);
    EXPECT_DOUBLE_EQ(
        std::accumulate(out_serial.begin(), out_serial.end(), 0.0),
        std::accumulate(out_parallel.begin(), out_parallel.end(), 0.0));
}

} // namespace
