// Linear-solver tier (spice::Solver_policy): factorization reuse, ILU(0),
// BiCGSTAB, and the Step_stats counter contracts that prove which tier
// actually ran.  Semantics in spice/analysis.h.
#include "spice/sparse.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "spice/analysis.h"
#include "spice/mosfet_model.h"
#include "sram/read_sim.h"
#include "extract/extractor.h"
#include "util/contracts.h"
#include "util/numeric.h"

namespace {

using namespace mpsram;
using spice::Bicgstab_scratch;
using spice::Ilu0;
using spice::Solver_policy;
using spice::Sparse_lu;
using spice::Sparse_matrix;

/// The -1 2 -1 conductance ladder every bitline discretizes to.
Sparse_matrix ladder(std::size_t n)
{
    std::vector<std::pair<int, int>> entries;
    for (std::size_t i = 0; i + 1 < n; ++i) {
        entries.push_back({static_cast<int>(i), static_cast<int>(i + 1)});
        entries.push_back({static_cast<int>(i + 1), static_cast<int>(i)});
    }
    Sparse_matrix m(n, entries);
    for (std::size_t i = 0; i < n; ++i) {
        m.add(static_cast<int>(i), static_cast<int>(i), 2.0);
        if (i + 1 < n) {
            m.add(static_cast<int>(i), static_cast<int>(i + 1), -1.0);
            m.add(static_cast<int>(i + 1), static_cast<int>(i), -1.0);
        }
    }
    return m;
}

std::vector<double> ramp_rhs(std::size_t n)
{
    std::vector<double> b(n);
    for (std::size_t i = 0; i < n; ++i) {
        b[i] = 0.25 + 0.01 * static_cast<double>(i);
    }
    return b;
}

TEST(SolverReuse, StaleFactorSolveBitwiseIdenticalToFresh)
{
    // The bypass tier's core assumption: as long as the values are
    // unchanged, solving against the factorization computed N solves ago
    // is BITWISE identical to refactoring first — reuse can never perturb
    // a converged result, only the iteration count.
    const Sparse_matrix m = ladder(64);
    const std::vector<double> b = ramp_rhs(64);

    Sparse_lu stale(m);
    stale.factor(m);
    std::vector<double> x_stale = b;
    stale.solve(x_stale);  // first solve, factor now "stale"
    std::vector<double> x_stale2 = b;
    stale.solve(x_stale2);  // reuse without refactor

    Sparse_lu fresh(m);
    fresh.factor(m);
    std::vector<double> x_fresh = b;
    fresh.solve(x_fresh);

    for (std::size_t i = 0; i < b.size(); ++i) {
        EXPECT_EQ(x_stale[i], x_fresh[i]) << "row " << i;
        EXPECT_EQ(x_stale2[i], x_fresh[i]) << "row " << i;
    }
}

TEST(Ilu0, ExactOnTridiagonalLadder)
{
    // A tridiagonal factorization has no fill to drop, so ILU(0) IS the
    // exact LU and apply() solves the system to rounding.
    const std::size_t n = 80;
    const Sparse_matrix m = ladder(n);
    Ilu0 ilu(m);
    ilu.factor(m);

    Sparse_lu lu(m);
    lu.factor(m);

    std::vector<double> x_ilu = ramp_rhs(n);
    ilu.apply(x_ilu);
    std::vector<double> x_lu = ramp_rhs(n);
    lu.solve(x_lu);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(x_ilu[i], x_lu[i], 1e-11) << "row " << i;
    }
}

TEST(Bicgstab, SolvesLadderToTolerance)
{
    const std::size_t n = 200;
    const Sparse_matrix m = ladder(n);
    Ilu0 ilu(m);
    ilu.factor(m);

    const std::vector<double> b = ramp_rhs(n);
    std::vector<double> x;
    Bicgstab_scratch scratch;
    const int iters = spice::bicgstab(m, ilu, b, x, 1e-12, 400, scratch);
    ASSERT_GE(iters, 0) << "breakdown on a well-conditioned ladder";

    // With the exact-on-tridiagonal preconditioner the first Krylov step
    // already lands on the solution.
    EXPECT_LE(iters, 3);

    Sparse_lu lu(m);
    lu.factor(m);
    std::vector<double> x_ref = b;
    lu.solve(x_ref);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(x[i], x_ref[i], 1e-9) << "row " << i;
    }
}

TEST(Bicgstab, ZeroRhsReturnsZeroInZeroIterations)
{
    const Sparse_matrix m = ladder(16);
    Ilu0 ilu(m);
    ilu.factor(m);
    std::vector<double> x(16, 7.0);  // stale content must be cleared
    Bicgstab_scratch scratch;
    const std::vector<double> b(16, 0.0);
    EXPECT_EQ(spice::bicgstab(m, ilu, b, x, 1e-12, 50, scratch), 0);
    for (const double v : x) EXPECT_EQ(v, 0.0);
}

/// A small SRAM read column: the nonlinear MOSFET workload the reuse
/// tiers must reproduce, with Step_stats exposing which tier ran.
struct Read_fixture {
    tech::Technology t = tech::n10();
    sram::Cell_electrical cell = sram::Cell_electrical::n10(t.feol);
    extract::Extractor ex{t.metal1};
    sram::Array_config cfg;
    sram::Bitline_electrical wires;

    explicit Read_fixture(int n)
    {
        cfg.word_lines = n;
        cfg.victim_pair = 2;
        const geom::Wire_array arr = sram::build_metal1_array(t, cfg);
        wires = sram::roll_up_nominal(ex, arr, t, cfg);
    }

    sram::Read_result run(Solver_policy policy)
    {
        sram::Read_netlist net =
            sram::build_read_netlist(t, cell, wires, cfg);
        sram::Read_options opts;
        opts.accuracy = sram::Sim_accuracy::fast;
        opts.solver = policy;
        return sram::simulate_read(net, opts);
    }
};

TEST(SolverPolicy, ReuseTiersAgreeWithDirectOnReadColumn)
{
    Read_fixture f(8);
    const sram::Read_result direct = f.run(Solver_policy::direct);
    ASSERT_TRUE(direct.crossed);
    for (const Solver_policy policy :
         {Solver_policy::bypass, Solver_policy::iterative}) {
        const sram::Read_result r = f.run(policy);
        ASSERT_TRUE(r.crossed);
        EXPECT_LE(util::rel_diff(direct.td, r.td), 5e-3)
            << "policy " << static_cast<int>(policy);
        EXPECT_LE(std::fabs(direct.bl_final - r.bl_final), 5e-3);
    }
}

TEST(SolverPolicy, DirectCountersFactorEveryIteration)
{
    Read_fixture f(8);
    const sram::Read_result r = f.run(Solver_policy::direct);
    ASSERT_GT(r.steps.newton_iterations, 0);
    EXPECT_EQ(r.steps.lu_factorizations, r.steps.newton_iterations);
    EXPECT_EQ(r.steps.bypass_hits, 0);
}

TEST(SolverPolicy, BypassCountersProveFactorizationsAvoided)
{
    // 64 cells: long enough for quiet waveform stretches, where the
    // staleness envelope actually admits reuse (a tiny column spends
    // most steps moving, so the drift trigger keeps refreshing).
    Read_fixture f(64);
    const sram::Read_result direct = f.run(Solver_policy::direct);
    const sram::Read_result r = f.run(Solver_policy::bypass);
    ASSERT_GT(r.steps.newton_iterations, 0);
    // Every reuse-path iteration either refactors or bypasses — and the
    // point of the tier is factoring far less than the per-iteration
    // oracle on the same workload.
    EXPECT_EQ(r.steps.lu_factorizations + r.steps.bypass_hits,
              r.steps.newton_iterations);
    EXPECT_GT(r.steps.bypass_hits, 0);
    EXPECT_LT(r.steps.lu_factorizations * 2, direct.steps.lu_factorizations);
}

TEST(SolverPolicy, IterativeCountersShowPreconditionerReuse)
{
    Read_fixture f(8);
    const sram::Read_result r = f.run(Solver_policy::iterative);
    ASSERT_GT(r.steps.newton_iterations, 0);
    EXPECT_GT(r.steps.bypass_hits, 0);
    // Breakdown fallbacks may add factorizations beyond the per-iteration
    // refreshes, never remove them.
    EXPECT_GE(r.steps.lu_factorizations + r.steps.bypass_hits,
              r.steps.newton_iterations);
    EXPECT_LT(r.steps.lu_factorizations, r.steps.newton_iterations);
}

TEST(SolverPolicy, LinearCircuitTiersMatchTightly)
{
    // On a linear RC ladder the Jacobian is constant, so the delta-
    // residual reuse path iterates the SAME exact factorization as the
    // direct tier — the waveforms must agree to rounding, not just to
    // the calibration budget.
    spice::Circuit c;
    const spice::Node in = c.node("in");
    spice::Node prev = in;
    for (int i = 0; i < 20; ++i) {
        const spice::Node n = c.node("n" + std::to_string(i));
        c.add_resistor("R" + std::to_string(i), prev, n, 500.0);
        c.add_capacitor("C" + std::to_string(i), n, spice::ground_node,
                        2e-15);
        prev = n;
    }
    c.add_voltage_source("Vin", in, spice::ground_node,
                         spice::Waveform::pulse(0.0, 0.7, 20e-12, 5e-12));

    auto run = [&](Solver_policy policy) {
        spice::Transient_options opts;
        opts.tstop = 500e-12;
        opts.nominal_steps = 500;
        opts.newton.solver = policy;
        return spice::run_transient(c, {prev}, opts);
    };
    const auto direct = run(Solver_policy::direct);
    const auto bypass = run(Solver_policy::bypass);
    const std::string probe = c.node_name(prev);
    EXPECT_NEAR(direct.final_value(probe), bypass.final_value(probe),
                1e-9);
}

} // namespace
