#include "util/histogram.h"

#include <gtest/gtest.h>

#include "util/contracts.h"

namespace {

using mpsram::util::Histogram;

TEST(Histogram, BinsAndCenters)
{
    Histogram h(0.0, 10.0, 5);
    EXPECT_EQ(h.bin_count(), 5u);
    EXPECT_DOUBLE_EQ(h.bin_width(), 2.0);
    EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
    EXPECT_DOUBLE_EQ(h.bin_center(4), 9.0);
}

TEST(Histogram, CountsSamplesIntoCorrectBins)
{
    Histogram h(0.0, 10.0, 5);
    h.add(0.5);   // bin 0
    h.add(1.99);  // bin 0
    h.add(2.0);   // bin 1
    h.add(9.99);  // bin 4
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(1), 1u);
    EXPECT_EQ(h.count(4), 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, TracksUnderAndOverflow)
{
    Histogram h(0.0, 1.0, 2);
    h.add(-0.1);
    h.add(1.0);  // hi edge is exclusive -> overflow
    h.add(0.5);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, TotalIsConserved)
{
    Histogram h(-1.0, 1.0, 7);
    std::size_t binned = 0;
    for (int i = -20; i <= 20; ++i) h.add(0.1 * i);
    for (std::size_t b = 0; b < h.bin_count(); ++b) binned += h.count(b);
    EXPECT_EQ(binned + h.underflow() + h.overflow(), h.total());
    EXPECT_EQ(h.total(), 41u);
}

TEST(Histogram, FromSamplesCoversRange)
{
    const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
    const Histogram h = Histogram::from_samples(xs, 4);
    EXPECT_EQ(h.total(), xs.size());
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);  // top edge stretched past the max
}

TEST(Histogram, FromConstantSamples)
{
    const Histogram h = Histogram::from_samples({2.0, 2.0, 2.0}, 3);
    EXPECT_EQ(h.total(), 3u);
    EXPECT_EQ(h.underflow() + h.overflow(), 0u);
}

TEST(Histogram, RenderContainsBars)
{
    Histogram h(0.0, 2.0, 2);
    h.add(0.5);
    h.add(0.6);
    h.add(1.5);
    const std::string out = h.render(10);
    EXPECT_NE(out.find('#'), std::string::npos);
    EXPECT_NE(out.find('2'), std::string::npos);  // the peak count
}

TEST(Histogram, RejectsBadConstruction)
{
    EXPECT_THROW(Histogram(1.0, 1.0, 3), mpsram::util::Precondition_error);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), mpsram::util::Precondition_error);
    EXPECT_THROW(Histogram::from_samples({}, 3),
                 mpsram::util::Precondition_error);
}

TEST(Histogram, BinIndexOutOfRangeThrows)
{
    Histogram h(0.0, 1.0, 2);
    EXPECT_THROW(h.count(2), mpsram::util::Precondition_error);
    EXPECT_THROW(h.bin_center(5), mpsram::util::Precondition_error);
}

} // namespace
