#include "core/runner.h"

#include <atomic>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "util/contracts.h"
#include "util/thread_pool.h"

namespace {

using namespace mpsram;
using core::Run_context;
using core::Run_plan;
using core::Runner_options;

TEST(RunnerOptions, ResolvesThreadCounts)
{
    EXPECT_EQ(Runner_options{1}.resolved_threads(), 1);
    EXPECT_EQ(Runner_options{5}.resolved_threads(), 5);
    EXPECT_EQ(Runner_options{0}.resolved_threads(),
              util::Thread_pool::hardware_threads());
    EXPECT_EQ(Runner_options{-2}.resolved_threads(),
              util::Thread_pool::hardware_threads());
    EXPECT_EQ(Runner_options::parallel().resolved_threads(),
              util::Thread_pool::hardware_threads());
}

TEST(RunPlan, EmptyPlanIsANoop)
{
    const Run_plan plan;
    EXPECT_TRUE(plan.empty());
    EXPECT_NO_THROW(core::run(plan, Runner_options{1}));
    EXPECT_NO_THROW(core::run(plan, Runner_options{4}));
}

TEST(RunPlan, RejectsNullJobs)
{
    Run_plan plan;
    EXPECT_THROW(plan.add(Run_plan::Job{}), util::Precondition_error);
}

TEST(RunPlan, ExecutesEveryJobOnceSerialAndParallel)
{
    for (const int threads : {1, 4}) {
        constexpr std::size_t count = 200;
        std::vector<std::atomic<int>> hits(count);

        Run_plan plan;
        for (std::size_t i = 0; i < count; ++i) {
            plan.add([&hits, i](const Run_context& ctx) {
                EXPECT_EQ(ctx.job_index, i);
                hits[i].fetch_add(1, std::memory_order_relaxed);
            });
        }
        EXPECT_EQ(plan.size(), count);

        core::run(plan, Runner_options{threads});
        for (std::size_t i = 0; i < count; ++i) {
            ASSERT_EQ(hits[i].load(), 1)
                << "threads=" << threads << " job " << i;
        }
    }
}

TEST(RunPlan, AddIndexedOffsetsAreLocalAndContextIsGlobal)
{
    Run_plan plan;
    plan.add([](const Run_context& ctx) { EXPECT_EQ(ctx.job_index, 0u); });

    std::vector<std::atomic<int>> hits(5);
    plan.add_indexed(5, [&](std::size_t i, const Run_context& ctx) {
        EXPECT_EQ(ctx.job_index, i + 1);  // one job precedes this batch
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(plan.size(), 6u);

    core::run(plan, Runner_options{2});
    for (std::size_t i = 0; i < hits.size(); ++i) {
        ASSERT_EQ(hits[i].load(), 1);
    }
}

TEST(Runner, RunIndexedMatchesSerialBitwise)
{
    constexpr std::size_t count = 3000;
    const auto f = [](std::size_t i) {
        return 1.0 / (static_cast<double>(i) + 0.25);
    };

    std::vector<double> serial(count);
    core::run_indexed(
        count,
        [&](std::size_t i, const Run_context&) { serial[i] = f(i); },
        Runner_options{1});

    std::vector<double> parallel(count);
    core::run_indexed(
        count,
        [&](std::size_t i, const Run_context&) { parallel[i] = f(i); },
        Runner_options{4});

    EXPECT_EQ(serial, parallel);
}

TEST(Runner, ExceptionFromAJobPropagates)
{
    Run_plan plan;
    plan.add_indexed(100, [](std::size_t i, const Run_context&) {
        if (i == 42) throw std::runtime_error("job failed");
    });
    EXPECT_THROW(core::run(plan, Runner_options{1}), std::runtime_error);
    EXPECT_THROW(core::run(plan, Runner_options{4}), std::runtime_error);
}

TEST(Runner, MoreThreadsThanJobs)
{
    std::vector<std::atomic<int>> hits(3);
    core::run_indexed(
        3,
        [&](std::size_t i, const Run_context&) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        },
        Runner_options{8});
    for (std::size_t i = 0; i < hits.size(); ++i) {
        ASSERT_EQ(hits[i].load(), 1);
    }
}

} // namespace
