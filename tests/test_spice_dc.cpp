#include "spice/analysis.h"

#include <gtest/gtest.h>

#include "spice/exceptions.h"
#include "spice/mosfet_model.h"

namespace {

using namespace mpsram::spice;

Mosfet_params nmos()
{
    Mosfet_params p;
    p.type = Mosfet_type::nmos;
    return calibrate_beta(p, 0.7, 40e-6);
}

Mosfet_params pmos()
{
    Mosfet_params p;
    p.type = Mosfet_type::pmos;
    return calibrate_beta(p, 0.7, 30e-6);
}

TEST(Dc, VoltageDivider)
{
    Circuit c;
    const Node vin = c.node("in");
    const Node mid = c.node("mid");
    c.add_voltage_source("V1", vin, ground_node, Waveform::dc(1.0));
    c.add_resistor("R1", vin, mid, 1000.0);
    c.add_resistor("R2", mid, ground_node, 3000.0);

    const Dc_result r = dc_operating_point(c);
    EXPECT_NEAR(r.v(mid), 0.75, 1e-9);
    EXPECT_DOUBLE_EQ(r.v(vin), 1.0);
}

TEST(Dc, CurrentSourceIntoResistor)
{
    Circuit c;
    const Node n1 = c.node("n1");
    c.add_current_source("I1", ground_node, n1, Waveform::dc(1e-3));
    c.add_resistor("R1", n1, ground_node, 2000.0);
    const Dc_result r = dc_operating_point(c);
    // gmin (1e-12 S) to ground shaves a few nV off the ideal 2 V.
    EXPECT_NEAR(r.v(n1), 2.0, 1e-7);
}

TEST(Dc, FloatingVoltageSourceBranch)
{
    // 1V grounded source, then a floating 0.3V source stacked on top.
    Circuit c;
    const Node a = c.node("a");
    const Node b = c.node("b");
    c.add_voltage_source("V1", a, ground_node, Waveform::dc(1.0));
    c.add_voltage_source("V2", b, a, Waveform::dc(0.3));
    c.add_resistor("RL", b, ground_node, 1000.0);
    const Dc_result r = dc_operating_point(c);
    EXPECT_NEAR(r.v(b), 1.3, 1e-9);
}

TEST(Dc, SeriesFloatingSourcesAndLoads)
{
    Circuit c;
    const Node a = c.node("a");
    const Node b = c.node("b");
    const Node m = c.node("m");
    c.add_voltage_source("V1", a, ground_node, Waveform::dc(2.0));
    c.add_resistor("R1", a, m, 1000.0);
    c.add_voltage_source("V2", m, b, Waveform::dc(0.5));
    c.add_resistor("R2", b, ground_node, 1000.0);
    const Dc_result r = dc_operating_point(c);
    // Current: (2 - 0.5) / 2k = 0.75 mA; v(b) = 0.75, v(m) = 1.25
    // (to within the gmin leakage).
    EXPECT_NEAR(r.v(b), 0.75, 1e-7);
    EXPECT_NEAR(r.v(m), 1.25, 1e-7);
}

TEST(Dc, DiodeConnectedMosfetSettlesNearThreshold)
{
    Circuit c;
    const Node vdd = c.node("vdd");
    const Node d = c.node("d");
    c.add_voltage_source("V1", vdd, ground_node, Waveform::dc(0.7));
    c.add_resistor("R1", vdd, d, 50e3);
    c.add_mosfet("M1", d, d, ground_node, nmos());

    const Dc_result r = dc_operating_point(c);
    // Diode-connected: v(d) a bit above vth, well below vdd.
    EXPECT_GT(r.v(d), 0.2);
    EXPECT_LT(r.v(d), 0.55);
}

TEST(Dc, CmosInverterTransfersLogicLevels)
{
    Circuit c;
    const Node vdd = c.node("vdd");
    const Node in = c.node("in");
    const Node out = c.node("out");
    c.add_voltage_source("Vdd", vdd, ground_node, Waveform::dc(0.7));
    c.add_voltage_source("Vin", in, ground_node, Waveform::dc(0.0));
    c.add_mosfet("Mp", out, in, vdd, pmos());
    c.add_mosfet("Mn", out, in, ground_node, nmos());
    const Dc_result low_in = dc_operating_point(c);
    EXPECT_GT(low_in.v(out), 0.65);  // output high
}

TEST(Dc, SramLatchHoldsForcedState)
{
    // Cross-coupled inverters with forces picking the (q=0, qb=1) state.
    Circuit c;
    const Node vdd = c.node("vdd");
    const Node q = c.node("q");
    const Node qb = c.node("qb");
    c.add_voltage_source("Vdd", vdd, ground_node, Waveform::dc(0.7));
    c.add_mosfet("Mpu_q", q, qb, vdd, pmos());
    c.add_mosfet("Mpd_q", q, qb, ground_node, nmos());
    c.add_mosfet("Mpu_qb", qb, q, vdd, pmos());
    c.add_mosfet("Mpd_qb", qb, q, ground_node, nmos());

    Dc_options opts;
    opts.forces = {{q, 0.0, 1.0}, {qb, 0.7, 1.0}};
    const Dc_result r = dc_operating_point(c, opts);
    EXPECT_LT(r.v(q), 0.05);
    EXPECT_GT(r.v(qb), 0.65);

    // And the mirrored forcing picks the other stable state.
    Dc_options flipped;
    flipped.forces = {{q, 0.7, 1.0}, {qb, 0.0, 1.0}};
    const Dc_result r2 = dc_operating_point(c, flipped);
    EXPECT_GT(r2.v(q), 0.65);
    EXPECT_LT(r2.v(qb), 0.05);
}

TEST(Dc, MultipleSourcesOnOneNodeRejected)
{
    Circuit c;
    const Node a = c.node("a");
    c.add_voltage_source("V1", a, ground_node, Waveform::dc(1.0));
    c.add_voltage_source("V2", a, ground_node, Waveform::dc(2.0));
    EXPECT_THROW(dc_operating_point(c), Netlist_error);
}

TEST(Dc, FloatingNodeHeldByGmin)
{
    // A node connected only through a capacitor is floating in DC; gmin
    // must keep the matrix solvable and park it at ground.
    Circuit c;
    const Node a = c.node("a");
    const Node f = c.node("float");
    c.add_voltage_source("V1", a, ground_node, Waveform::dc(1.0));
    c.add_capacitor("C1", a, f, 1e-15);
    const Dc_result r = dc_operating_point(c);
    EXPECT_NEAR(r.v(f), 0.0, 1e-6);
}

TEST(Circuit, NodeNamesAndLookup)
{
    Circuit c;
    EXPECT_EQ(c.node("0"), ground_node);
    EXPECT_EQ(c.node("gnd"), ground_node);
    const Node a = c.node("a");
    EXPECT_EQ(c.node("a"), a);  // idempotent
    EXPECT_EQ(c.find_node("a"), a);
    EXPECT_THROW(c.find_node("missing"), Netlist_error);
    EXPECT_EQ(c.node_name(a), "a");
}

TEST(Circuit, DuplicateDeviceNamesRejected)
{
    Circuit c;
    const Node a = c.node("a");
    c.add_resistor("R1", a, ground_node, 1.0);
    EXPECT_THROW(c.add_resistor("R1", a, ground_node, 2.0), Netlist_error);
}

TEST(Circuit, NodeCapacitanceSums)
{
    Circuit c;
    const Node a = c.node("a");
    const Node b = c.node("b");
    c.add_capacitor("C1", a, ground_node, 1e-15);
    c.add_capacitor("C2", a, b, 2e-15);
    c.add_capacitor("C3", b, ground_node, 4e-15);
    EXPECT_DOUBLE_EQ(c.node_capacitance(a), 3e-15);
    EXPECT_DOUBLE_EQ(c.node_capacitance(b), 6e-15);
}

} // namespace
