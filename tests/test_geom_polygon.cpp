#include "geom/polygon.h"

#include <gtest/gtest.h>

#include "util/contracts.h"

namespace {

using mpsram::geom::Point;
using mpsram::geom::Polygon;
using mpsram::geom::Rect;

TEST(Polygon, RectangleArea)
{
    const Polygon p = Polygon::from_rect({0.0, 0.0, 4.0, 3.0});
    EXPECT_DOUBLE_EQ(p.area(), 12.0);
    EXPECT_DOUBLE_EQ(p.signed_area(), 12.0);  // CCW construction
}

TEST(Polygon, TriangleSignedArea)
{
    const Polygon ccw({{0.0, 0.0}, {2.0, 0.0}, {0.0, 2.0}});
    EXPECT_DOUBLE_EQ(ccw.signed_area(), 2.0);
    const Polygon cw({{0.0, 0.0}, {0.0, 2.0}, {2.0, 0.0}});
    EXPECT_DOUBLE_EQ(cw.signed_area(), -2.0);
    EXPECT_DOUBLE_EQ(cw.area(), 2.0);
}

TEST(Polygon, BoundingBox)
{
    const Polygon p({{1.0, -2.0}, {5.0, 0.0}, {3.0, 4.0}});
    const Rect bb = p.bounding_box();
    EXPECT_DOUBLE_EQ(bb.x0, 1.0);
    EXPECT_DOUBLE_EQ(bb.y0, -2.0);
    EXPECT_DOUBLE_EQ(bb.x1, 5.0);
    EXPECT_DOUBLE_EQ(bb.y1, 4.0);
}

TEST(Polygon, ContainsInteriorAndExterior)
{
    const Polygon p = Polygon::from_rect({0.0, 0.0, 2.0, 2.0});
    EXPECT_TRUE(p.contains({1.0, 1.0}));
    EXPECT_FALSE(p.contains({3.0, 1.0}));
    EXPECT_FALSE(p.contains({-0.1, 1.0}));
}

TEST(Polygon, ContainsBoundary)
{
    const Polygon p = Polygon::from_rect({0.0, 0.0, 2.0, 2.0});
    EXPECT_TRUE(p.contains({0.0, 1.0}));
    EXPECT_TRUE(p.contains({2.0, 2.0}));
    EXPECT_TRUE(p.contains({1.0, 0.0}));
}

TEST(Polygon, ContainsConcaveShape)
{
    // L-shape: the notch at (2.5, 2.5) is outside.
    const Polygon l({{0, 0}, {4, 0}, {4, 2}, {2, 2}, {2, 4}, {0, 4}});
    EXPECT_TRUE(l.contains({1.0, 3.0}));
    EXPECT_TRUE(l.contains({3.0, 1.0}));
    EXPECT_FALSE(l.contains({3.0, 3.0}));
    EXPECT_DOUBLE_EQ(l.area(), 12.0);
}

TEST(Polygon, TranslatedPreservesAreaAndShiftsBox)
{
    const Polygon p = Polygon::from_rect({0.0, 0.0, 2.0, 1.0});
    const Polygon moved = p.translated(10.0, -5.0);
    EXPECT_DOUBLE_EQ(moved.area(), p.area());
    EXPECT_DOUBLE_EQ(moved.bounding_box().x0, 10.0);
    EXPECT_DOUBLE_EQ(moved.bounding_box().y1, -4.0);
}

TEST(Polygon, RejectsDegenerate)
{
    EXPECT_THROW(Polygon({{0.0, 0.0}, {1.0, 1.0}}),
                 mpsram::util::Precondition_error);
    EXPECT_THROW(Polygon::from_rect({2.0, 0.0, 1.0, 1.0}),
                 mpsram::util::Precondition_error);
}

TEST(Rect, BasicGeometry)
{
    const Rect r{0.0, 0.0, 4.0, 2.0};
    EXPECT_DOUBLE_EQ(r.width(), 4.0);
    EXPECT_DOUBLE_EQ(r.height(), 2.0);
    EXPECT_DOUBLE_EQ(r.area(), 8.0);
    EXPECT_EQ(r.center(), (Point{2.0, 1.0}));
    EXPECT_TRUE(r.contains({4.0, 2.0}));
    EXPECT_FALSE(r.contains({4.1, 2.0}));
}

TEST(Rect, OverlapAndIntersection)
{
    const Rect a{0.0, 0.0, 2.0, 2.0};
    const Rect b{1.0, 1.0, 3.0, 3.0};
    const Rect c{5.0, 5.0, 6.0, 6.0};
    EXPECT_TRUE(a.overlaps(b));
    EXPECT_FALSE(a.overlaps(c));
    const Rect i = a.intersect(b);
    EXPECT_DOUBLE_EQ(i.area(), 1.0);
    EXPECT_FALSE(a.intersect(c).valid());
}

} // namespace
