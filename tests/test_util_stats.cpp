#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "util/contracts.h"

namespace {

using mpsram::util::correlation;
using mpsram::util::P2_quantile;
using mpsram::util::quantile_sorted;
using mpsram::util::Running_stats;
using mpsram::util::Sample_summary;
using mpsram::util::summarize;

TEST(RunningStats, SingleSample)
{
    Running_stats s;
    s.add(3.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 3.5);
    EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, KnownMoments)
{
    Running_stats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Unbiased variance of this classic set is 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyThrows)
{
    const Running_stats s;
    EXPECT_THROW(s.mean(), mpsram::util::Precondition_error);
    EXPECT_THROW(s.min(), mpsram::util::Precondition_error);
    EXPECT_THROW(s.max(), mpsram::util::Precondition_error);
}

TEST(RunningStats, VarianceOfConstantSeriesIsZero)
{
    Running_stats s;
    for (int i = 0; i < 100; ++i) s.add(42.0);
    EXPECT_NEAR(s.variance(), 0.0, 1e-18);
}

TEST(RunningStats, NumericallyStableAroundLargeOffset)
{
    // Welford must not cancel catastrophically with a large common offset.
    Running_stats s;
    const double offset = 1e12;
    for (double x : {offset + 1.0, offset + 2.0, offset + 3.0}) s.add(x);
    EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

class RunningStatsMergeTest : public ::testing::TestWithParam<int> {};

TEST_P(RunningStatsMergeTest, MergeMatchesCombined)
{
    // Property: splitting a stream at any point and merging must equal the
    // single-stream accumulation.
    std::mt19937_64 rng(99);
    std::normal_distribution<double> dist(1.0, 2.0);
    std::vector<double> xs(64);
    for (double& x : xs) x = dist(rng);

    const int split = GetParam();
    Running_stats all;
    Running_stats a;
    Running_stats b;
    for (int i = 0; i < static_cast<int>(xs.size()); ++i) {
        all.add(xs[static_cast<std::size_t>(i)]);
        (i < split ? a : b).add(xs[static_cast<std::size_t>(i)]);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

INSTANTIATE_TEST_SUITE_P(SplitPoints, RunningStatsMergeTest,
                         ::testing::Values(0, 1, 7, 32, 63, 64));

TEST(Quantile, InterpolatesBetweenSamples)
{
    const std::vector<double> sorted = {0.0, 1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 1.0), 3.0);
    EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.5), 1.5);
    EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 1.0 / 3.0), 1.0);
}

TEST(Quantile, RejectsBadInput)
{
    EXPECT_THROW(quantile_sorted({}, 0.5), mpsram::util::Precondition_error);
    EXPECT_THROW(quantile_sorted({1.0}, 1.5),
                 mpsram::util::Precondition_error);
}

TEST(Summarize, EmptyIsAllZero)
{
    const Sample_summary s = summarize({});
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.mean, 0.0);
    EXPECT_EQ(s.stddev, 0.0);
}

TEST(Summarize, GaussianSampleMoments)
{
    std::mt19937_64 rng(7);
    std::normal_distribution<double> dist(5.0, 0.5);
    std::vector<double> xs(20000);
    for (double& x : xs) x = dist(rng);

    const Sample_summary s = summarize(xs);
    EXPECT_EQ(s.count, xs.size());
    EXPECT_NEAR(s.mean, 5.0, 0.02);
    EXPECT_NEAR(s.stddev, 0.5, 0.02);
    EXPECT_NEAR(s.median, 5.0, 0.02);
    // ~2.33 sigma for the 1%/99% points.
    EXPECT_NEAR(s.p01, 5.0 - 2.326 * 0.5, 0.06);
    EXPECT_NEAR(s.p99, 5.0 + 2.326 * 0.5, 0.06);
}

TEST(Correlation, PerfectlyCorrelatedSeries)
{
    const std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
    const std::vector<double> b = {2.0, 4.0, 6.0, 8.0};
    EXPECT_NEAR(correlation(a, b), 1.0, 1e-12);
}

TEST(Correlation, AntiCorrelatedSeries)
{
    const std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
    const std::vector<double> b = {4.0, 3.0, 2.0, 1.0};
    EXPECT_NEAR(correlation(a, b), -1.0, 1e-12);
}

TEST(Correlation, IndependentSeriesNearZero)
{
    std::mt19937_64 rng(3);
    std::normal_distribution<double> dist;
    std::vector<double> a(5000);
    std::vector<double> b(5000);
    for (std::size_t i = 0; i < a.size(); ++i) {
        a[i] = dist(rng);
        b[i] = dist(rng);
    }
    EXPECT_NEAR(correlation(a, b), 0.0, 0.05);
}

TEST(Correlation, RejectsDegenerateInput)
{
    EXPECT_THROW(correlation({1.0}, {1.0}),
                 mpsram::util::Precondition_error);
    EXPECT_THROW(correlation({1.0, 2.0}, {1.0}),
                 mpsram::util::Precondition_error);
    EXPECT_THROW(correlation({1.0, 1.0}, {1.0, 2.0}),
                 mpsram::util::Precondition_error);
}

TEST(QuantileSelect, BitwiseMatchesSortedQuantile)
{
    std::mt19937_64 rng(11);
    std::normal_distribution<double> dist;
    std::vector<double> samples(4001);
    for (double& x : samples) x = dist(rng);
    std::vector<double> sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    for (const double q : {0.0, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0}) {
        std::vector<double> scratch = samples;
        EXPECT_TRUE(mpsram::util::bits_equal(
            mpsram::util::quantile(scratch, q), quantile_sorted(sorted, q)))
            << "q = " << q;
    }
}

TEST(QuantileSelect, ReusedScratchStaysConsistent)
{
    // The doc promises several quantiles can be issued against one
    // partially reordered buffer: selection never loses elements.
    std::mt19937_64 rng(12);
    std::uniform_real_distribution<double> dist;
    std::vector<double> samples(513);
    for (double& x : samples) x = dist(rng);
    std::vector<double> sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    std::vector<double> scratch = samples;
    for (const double q : {0.99, 0.5, 0.01, 0.75}) {
        EXPECT_DOUBLE_EQ(mpsram::util::quantile(scratch, q),
                         quantile_sorted(sorted, q));
    }
}

TEST(QuantileSelect, RejectsBadInput)
{
    std::vector<double> empty;
    std::vector<double> one = {1.0};
    EXPECT_THROW(mpsram::util::quantile(empty, 0.5),
                 mpsram::util::Precondition_error);
    EXPECT_THROW(mpsram::util::quantile(one, -0.1),
                 mpsram::util::Precondition_error);
    EXPECT_THROW(mpsram::util::quantile(one, 1.1),
                 mpsram::util::Precondition_error);
}

TEST(P2Quantile, ExactUpToFiveSamples)
{
    P2_quantile median(0.5);
    median.add(5.0);
    EXPECT_DOUBLE_EQ(median.result(), 5.0);
    for (double x : {1.0, 3.0, 2.0, 4.0}) median.add(x);
    EXPECT_EQ(median.count(), 5u);
    EXPECT_DOUBLE_EQ(median.result(),
                     quantile_sorted({1.0, 2.0, 3.0, 4.0, 5.0}, 0.5));
}

TEST(P2Quantile, TracksGaussianQuantiles)
{
    std::mt19937_64 rng(7);
    std::normal_distribution<double> dist(10.0, 2.0);
    P2_quantile median(0.5);
    P2_quantile p99(0.99);
    std::vector<double> samples(200000);
    for (double& x : samples) {
        x = dist(rng);
        median.add(x);
        p99.add(x);
    }
    std::sort(samples.begin(), samples.end());
    // A few tenths of a percent of sigma on a smooth distribution.
    EXPECT_NEAR(median.result(), quantile_sorted(samples, 0.5), 0.02);
    EXPECT_NEAR(p99.result(), quantile_sorted(samples, 0.99), 0.05);
}

TEST(P2Quantile, DeterministicOverReplay)
{
    std::mt19937_64 rng(21);
    std::uniform_real_distribution<double> dist;
    std::vector<double> stream(10000);
    for (double& x : stream) x = dist(rng);
    P2_quantile a(0.9);
    P2_quantile b(0.9);
    for (double x : stream) a.add(x);
    for (double x : stream) b.add(x);
    EXPECT_TRUE(mpsram::util::bits_equal(a.result(), b.result()));
}

TEST(P2Quantile, RejectsBadUse)
{
    EXPECT_THROW(P2_quantile(0.0), mpsram::util::Precondition_error);
    EXPECT_THROW(P2_quantile(1.0), mpsram::util::Precondition_error);
    EXPECT_THROW(P2_quantile(0.5).result(),
                 mpsram::util::Precondition_error);
}

} // namespace
