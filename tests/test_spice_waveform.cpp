#include "spice/waveform.h"

#include <gtest/gtest.h>

#include "util/contracts.h"

namespace {

using mpsram::spice::Waveform;

TEST(Waveform, DcIsConstant)
{
    const Waveform w = Waveform::dc(0.7);
    EXPECT_DOUBLE_EQ(w.value(0.0), 0.7);
    EXPECT_DOUBLE_EQ(w.value(1e-9), 0.7);
    std::vector<double> bp;
    w.breakpoints(1e-9, bp);
    EXPECT_TRUE(bp.empty());
}

TEST(Waveform, PulseRampsLinearly)
{
    const Waveform w = Waveform::pulse(0.0, 0.7, 10e-12, 4e-12);
    EXPECT_DOUBLE_EQ(w.value(0.0), 0.0);
    EXPECT_DOUBLE_EQ(w.value(10e-12), 0.0);
    EXPECT_NEAR(w.value(12e-12), 0.35, 1e-12);
    EXPECT_DOUBLE_EQ(w.value(14e-12), 0.7);
    EXPECT_DOUBLE_EQ(w.value(1e-9), 0.7);  // holds forever
}

TEST(Waveform, FinitePulseFallsBack)
{
    const Waveform w =
        Waveform::pulse(0.1, 0.9, 10e-12, 2e-12, 20e-12, 4e-12);
    EXPECT_DOUBLE_EQ(w.value(0.0), 0.1);
    EXPECT_DOUBLE_EQ(w.value(20e-12), 0.9);           // inside the flat top
    EXPECT_NEAR(w.value(34e-12), 0.5, 1e-9);           // mid-fall
    EXPECT_DOUBLE_EQ(w.value(50e-12), 0.1);            // back to v0
}

TEST(Waveform, PulseBreakpointsAtAllCorners)
{
    const Waveform w =
        Waveform::pulse(0.0, 1.0, 10e-12, 2e-12, 20e-12, 4e-12);
    std::vector<double> bp;
    w.breakpoints(100e-12, bp);
    // delay, delay+rise, delay+rise+width, delay+rise+width+fall.
    ASSERT_EQ(bp.size(), 4u);
    EXPECT_DOUBLE_EQ(bp[0], 10e-12);
    EXPECT_DOUBLE_EQ(bp[1], 12e-12);
    EXPECT_DOUBLE_EQ(bp[2], 32e-12);
    EXPECT_DOUBLE_EQ(bp[3], 36e-12);
}

TEST(Waveform, BreakpointsClippedToWindow)
{
    const Waveform w = Waveform::pulse(0.0, 1.0, 10e-12, 2e-12);
    std::vector<double> bp;
    w.breakpoints(11e-12, bp);
    ASSERT_EQ(bp.size(), 1u);
    EXPECT_DOUBLE_EQ(bp[0], 10e-12);
}

TEST(Waveform, PwlInterpolatesAndClamps)
{
    const Waveform w = Waveform::pwl({0.0, 1.0, 3.0}, {0.0, 2.0, -2.0});
    EXPECT_DOUBLE_EQ(w.value(-1.0), 0.0);
    EXPECT_DOUBLE_EQ(w.value(0.5), 1.0);
    EXPECT_DOUBLE_EQ(w.value(2.0), 0.0);
    EXPECT_DOUBLE_EQ(w.value(5.0), -2.0);
}

TEST(Waveform, PwlValidation)
{
    EXPECT_THROW(Waveform::pwl({}, {}), mpsram::util::Precondition_error);
    EXPECT_THROW(Waveform::pwl({0.0, 0.0}, {1.0, 2.0}),
                 mpsram::util::Precondition_error);
    EXPECT_THROW(Waveform::pwl({0.0}, {1.0, 2.0}),
                 mpsram::util::Precondition_error);
}

TEST(Waveform, PulseValidation)
{
    EXPECT_THROW(Waveform::pulse(0.0, 1.0, -1.0, 1.0),
                 mpsram::util::Precondition_error);
    EXPECT_THROW(Waveform::pulse(0.0, 1.0, 0.0, 0.0),
                 mpsram::util::Precondition_error);
    // Finite width needs a fall time.
    EXPECT_THROW(Waveform::pulse(0.0, 1.0, 0.0, 1.0, 5.0, 0.0),
                 mpsram::util::Precondition_error);
}

} // namespace
