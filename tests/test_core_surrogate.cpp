// The surrogate engine tier through the session layer: the promise-backed
// calibration memo (one fit per key, concurrent callers included), the
// held-out gate refusing bad fits, and bitwise thread determinism of
// surrogate-engine queries on the memoized surfaces.
#include "core/session.h"

#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/query.h"
#include "util/contracts.h"

namespace {

using namespace mpsram;
using core::Metric;
using core::Query;

// Small array so each calibration's SPICE design set stays cheap.
constexpr int kWordLines = 8;

TEST(SurrogateMemo, ConcurrentQueriesFitOncePerKey)
{
    const core::Study_session session;
    ASSERT_EQ(session.surface_fit_count(), 0u);

    std::vector<std::shared_ptr<const analytic::Yield_surfaces>> results(4);
    std::vector<std::thread> threads;
    for (std::size_t i = 0; i < results.size(); ++i) {
        threads.emplace_back([&session, &results, i] {
            results[i] = session.calibrated_surfaces(
                Metric::mc_tdp, tech::Patterning_option::euv, kWordLines);
        });
    }
    for (auto& t : threads) t.join();

    EXPECT_EQ(session.surface_fit_count(), 1u);
    for (const auto& r : results) {
        ASSERT_TRUE(r);
        EXPECT_EQ(r.get(), results[0].get());  // one shared surface
        EXPECT_LE(r->holdout_rel, session.options().surrogate.budget_rel);
        EXPECT_GT(r->design_points, 0u);
    }
    // A repeat on the same key is a memo hit, not a refit.
    (void)session.calibrated_surfaces(Metric::mc_tdp,
                                      tech::Patterning_option::euv,
                                      kWordLines);
    EXPECT_EQ(session.surface_fit_count(), 1u);
}

TEST(SurrogateMemo, DistinctKeysFitSeparately)
{
    const core::Study_session session;
    (void)session.calibrated_surfaces(
        Metric::mc_tdp, tech::Patterning_option::euv, kWordLines);
    EXPECT_EQ(session.surface_fit_count(), 1u);
    // Different accuracy policy: its own key, its own fit.  Pin the
    // opposite of the session default so the test holds on both policy
    // legs (MPSRAM_SIM_ACCURACY may flip the default).
    const sram::Sim_accuracy other =
        session.options().read.accuracy == sram::Sim_accuracy::fast
            ? sram::Sim_accuracy::reference
            : sram::Sim_accuracy::fast;
    (void)session.calibrated_surfaces(
        Metric::mc_tdp, tech::Patterning_option::euv, kWordLines, -1.0,
        other);
    EXPECT_EQ(session.surface_fit_count(), 2u);
    // The write metric calibrates its own surfaces.
    (void)session.calibrated_surfaces(
        Metric::mc_twp, tech::Patterning_option::euv, kWordLines);
    EXPECT_EQ(session.surface_fit_count(), 3u);
}

TEST(SurrogateMemo, RejectsNonDistributionMetrics)
{
    const core::Study_session session;
    EXPECT_THROW(session.calibrated_surfaces(Metric::read_td,
                                             tech::Patterning_option::euv,
                                             kWordLines),
                 util::Precondition_error);
}

TEST(SurrogateMemo, GateThrowsAndUnpublishesOnBadBudget)
{
    core::Study_options opts;
    opts.surrogate.budget_rel = 1e-9;  // no real fit can meet this
    const core::Study_session session(tech::n10(), opts);

    EXPECT_THROW(session.calibrated_surfaces(Metric::mc_tdp,
                                             tech::Patterning_option::euv,
                                             kWordLines),
                 util::Postcondition_error);
    // The failed fit must un-publish its memo slot: the retry fits again
    // (and throws again) instead of deadlocking on a dead future.
    EXPECT_THROW(session.calibrated_surfaces(Metric::mc_tdp,
                                             tech::Patterning_option::euv,
                                             kWordLines),
                 util::Postcondition_error);
    EXPECT_EQ(session.surface_fit_count(), 2u);
}

TEST(SurrogateQuery, BitwiseIdenticalAcrossThreadCounts)
{
    // One session: the calibration memo serves every run the same
    // surfaces, so the whole query path — calibration included — must be
    // bitwise identical at 1/2/8 threads, stored and streaming.
    const core::Study_session session;
    for (const bool store : {true, false}) {
        core::Result_table reference;
        for (const int threads : {1, 2, 8}) {
            Query q(Metric::mc_tdp);
            q.with_case({tech::Patterning_option::euv, kWordLines})
                .with_tdp_engine(core::Tdp_engine::surrogate);
            q.mc.samples = 5000;
            q.mc.store_samples = store;
            q.mc.runner = core::Runner_options{threads};
            const core::Result_table table = session.run(q);
            if (threads == 1) {
                reference = table;
            } else {
                EXPECT_TRUE(table == reference)
                    << "threads " << threads << " store " << store;
            }
        }
    }
    EXPECT_EQ(session.surface_fit_count(), 1u);
}

TEST(SurrogateQuery, TracksTheSpiceEngineDistribution)
{
    // Same seed, same samples: the engines draw identical process
    // samples, so the surrogate must agree with the SPICE engine it was
    // calibrated against on mean/sigma to the model-error level — a
    // loose functional check (the tight gate lives in bench_ext_yield).
    const core::Study_session session;
    Query q(Metric::mc_tdp);
    q.with_case({tech::Patterning_option::euv, kWordLines})
        .with_tdp_engine(core::Tdp_engine::spice);
    q.mc.samples = 400;

    const auto spice = session.run(q).as<mc::Tdp_distribution>(0).summary;
    q.with_tdp_engine(core::Tdp_engine::surrogate);
    const auto surrogate =
        session.run(q).as<mc::Tdp_distribution>(0).summary;

    EXPECT_GT(surrogate.stddev, 0.0);
    EXPECT_NEAR(surrogate.mean, spice.mean, 0.1 * spice.stddev);
    EXPECT_NEAR(surrogate.stddev, spice.stddev, 0.1 * spice.stddev);
}

TEST(SurrogateQuery, WriteMetricServesSurrogate)
{
    const core::Study_session session;
    Query q(Metric::mc_twp);
    q.with_case({tech::Patterning_option::euv, kWordLines})
        .with_twp_engine(core::Twp_engine::surrogate);
    q.mc.samples = 1000;

    const auto dist = session.run(q).as<mc::Tdp_distribution>(0);
    EXPECT_EQ(dist.summary.count, 1000u);
    EXPECT_GT(dist.summary.stddev, 0.0);
    EXPECT_EQ(session.surface_fit_count(), 1u);
}

} // namespace
