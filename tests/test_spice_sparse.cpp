#include "spice/sparse.h"

#include <random>

#include <gtest/gtest.h>

#include "spice/exceptions.h"
#include "util/contracts.h"

namespace {

using mpsram::spice::Sparse_lu;
using mpsram::spice::Sparse_matrix;

Sparse_matrix dense_pattern(std::size_t n)
{
    std::vector<std::pair<int, int>> entries;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            entries.push_back({static_cast<int>(i), static_cast<int>(j)});
        }
    }
    return Sparse_matrix(n, entries);
}

TEST(SparseMatrix, PatternMergesDuplicatesAndAddsDiagonal)
{
    const Sparse_matrix m(3, {{0, 1}, {0, 1}, {2, 0}});
    // Diagonal (3) + (0,1) + (2,0).
    EXPECT_EQ(m.nonzeros(), 5u);
    EXPECT_GE(m.slot(0, 0), 0);
    EXPECT_GE(m.slot(0, 1), 0);
    EXPECT_EQ(m.slot(0, 2), -1);
}

TEST(SparseMatrix, AddAccumulates)
{
    Sparse_matrix m(2, {{0, 1}});
    m.add(0, 1, 2.0);
    m.add(0, 1, 3.0);
    const auto row = m.dense_row(0);
    EXPECT_DOUBLE_EQ(row[1], 5.0);
    m.clear_values();
    EXPECT_DOUBLE_EQ(m.dense_row(0)[1], 0.0);
}

TEST(SparseMatrix, AddOutsidePatternThrows)
{
    Sparse_matrix m(2, {});
    EXPECT_THROW(m.add(0, 1, 1.0), mpsram::util::Precondition_error);
}

TEST(SparseLu, Solves2x2)
{
    Sparse_matrix m = dense_pattern(2);
    m.add(0, 0, 4.0);
    m.add(0, 1, 1.0);
    m.add(1, 0, 2.0);
    m.add(1, 1, 3.0);

    Sparse_lu lu(m);
    lu.factor(m);
    std::vector<double> b = {9.0, 13.0};  // solution: x = (1.4, 3.4)
    lu.solve(b);
    EXPECT_NEAR(b[0], 1.4, 1e-12);
    EXPECT_NEAR(b[1], 3.4, 1e-12);
}

TEST(SparseLu, SolvesTridiagonalLadder)
{
    // Classic conductance ladder: -1 2 -1 tridiagonal.
    const std::size_t n = 50;
    std::vector<std::pair<int, int>> entries;
    for (std::size_t i = 0; i + 1 < n; ++i) {
        entries.push_back({static_cast<int>(i), static_cast<int>(i + 1)});
        entries.push_back({static_cast<int>(i + 1), static_cast<int>(i)});
    }
    Sparse_matrix m(n, entries);
    for (std::size_t i = 0; i < n; ++i) {
        m.add(static_cast<int>(i), static_cast<int>(i), 2.0);
        if (i + 1 < n) {
            m.add(static_cast<int>(i), static_cast<int>(i + 1), -1.0);
            m.add(static_cast<int>(i + 1), static_cast<int>(i), -1.0);
        }
    }
    Sparse_lu lu(m);
    lu.factor(m);

    // Known solution: with b = A*x for x_i = i.
    std::vector<double> x_ref(n);
    for (std::size_t i = 0; i < n; ++i) x_ref[i] = static_cast<double>(i);
    std::vector<double> b(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        b[i] = 2.0 * x_ref[i];
        if (i > 0) b[i] -= x_ref[i - 1];
        if (i + 1 < n) b[i] -= x_ref[i + 1];
    }
    lu.solve(b);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(b[i], x_ref[i], 1e-9) << "row " << i;
    }
}

TEST(SparseLu, TridiagonalHasNoFill)
{
    const std::size_t n = 100;
    std::vector<std::pair<int, int>> entries;
    for (std::size_t i = 0; i + 1 < n; ++i) {
        entries.push_back({static_cast<int>(i), static_cast<int>(i + 1)});
        entries.push_back({static_cast<int>(i + 1), static_cast<int>(i)});
    }
    const Sparse_matrix m(n, entries);
    const Sparse_lu lu(m);
    // L has n-1 entries, U has n diag + n-1 upper = fill-free.
    EXPECT_EQ(lu.fill_nonzeros(), (n - 1) + (2 * n - 1));
}

TEST(SparseLu, SingularMatrixThrows)
{
    Sparse_matrix m = dense_pattern(2);
    m.add(0, 0, 1.0);
    m.add(0, 1, 1.0);
    m.add(1, 0, 1.0);
    m.add(1, 1, 1.0);  // rank 1
    Sparse_lu lu(m);
    EXPECT_THROW(lu.factor(m), mpsram::spice::Singular_matrix_error);
}

TEST(SparseLu, ZeroDiagonalResolvedByFill)
{
    // MNA-style: [0 1; 1 0] has zero diagonals but is perfectly solvable
    // once elimination creates fill... with diagonal pivoting and no row
    // swap this specific matrix is NOT factorizable -> must throw, and
    // callers (the MNA layer) must order equations to avoid it.
    Sparse_matrix m = dense_pattern(2);
    m.add(0, 1, 1.0);
    m.add(1, 0, 1.0);
    Sparse_lu lu(m);
    EXPECT_THROW(lu.factor(m), mpsram::spice::Singular_matrix_error);
}

class RandomSpdTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomSpdTest, FactorSolveResidualSmall)
{
    // Property: for random diagonally dominant sparse systems, the
    // LU-solve residual ||Ax - b|| stays tiny.
    const int seed = GetParam();
    std::mt19937_64 rng(static_cast<std::uint64_t>(seed));
    std::uniform_real_distribution<double> val(0.1, 2.0);
    std::uniform_int_distribution<int> pick(0, 39);

    const std::size_t n = 40;
    std::vector<std::pair<int, int>> entries;
    std::vector<std::tuple<int, int, double>> offdiag;
    for (int k = 0; k < 120; ++k) {
        const int i = pick(rng);
        const int j = pick(rng);
        if (i == j) continue;
        const double g = val(rng);
        entries.push_back({i, j});
        entries.push_back({j, i});
        offdiag.push_back({i, j, g});
    }
    Sparse_matrix m(n, entries);
    std::vector<double> diag(n, 1e-3);  // gmin-style floor
    for (const auto& [i, j, g] : offdiag) {
        m.add(i, j, -g);
        m.add(j, i, -g);
        diag[static_cast<std::size_t>(i)] += g;
        diag[static_cast<std::size_t>(j)] += g;
    }
    for (std::size_t i = 0; i < n; ++i) {
        m.add(static_cast<int>(i), static_cast<int>(i), diag[i]);
    }

    Sparse_lu lu(m);
    lu.factor(m);

    std::vector<double> b(n);
    for (double& x : b) x = val(rng);
    std::vector<double> x = b;
    lu.solve(x);

    // Residual check against the dense rows.
    for (std::size_t i = 0; i < n; ++i) {
        const auto row = m.dense_row(static_cast<int>(i));
        double acc = 0.0;
        for (std::size_t j = 0; j < n; ++j) acc += row[j] * x[j];
        EXPECT_NEAR(acc, b[i], 1e-9) << "row " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSpdTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

} // namespace
