#include "sram/cell.h"

#include <gtest/gtest.h>

#include "spice/mosfet_model.h"
#include "tech/technology.h"
#include "util/contracts.h"

namespace {

using namespace mpsram;

TEST(Cell, DrivesCalibratedToFeolTargets)
{
    const tech::Feol_params feol = tech::n10().feol;
    const sram::Cell_electrical cell = sram::Cell_electrical::n10(feol);

    EXPECT_NEAR(spice::drive_current(cell.pull_down, feol.vdd),
                feol.nmos_ion, 1e-12);
    EXPECT_NEAR(spice::drive_current(cell.pull_up, feol.vdd), feol.pmos_ion,
                1e-12);
    // Pass gate weaker than pull-down for read stability.
    EXPECT_LT(spice::drive_current(cell.pass_gate, feol.vdd),
              spice::drive_current(cell.pull_down, feol.vdd));
}

TEST(Cell, DeviceTypesAreCorrect)
{
    const sram::Cell_electrical cell =
        sram::Cell_electrical::n10(tech::n10().feol);
    EXPECT_EQ(cell.pull_down.type, spice::Mosfet_type::nmos);
    EXPECT_EQ(cell.pass_gate.type, spice::Mosfet_type::nmos);
    EXPECT_EQ(cell.pull_up.type, spice::Mosfet_type::pmos);
}

TEST(Cell, CapacitanceRollups)
{
    const tech::Feol_params feol = tech::n10().feol;
    const sram::Cell_electrical cell = sram::Cell_electrical::n10(feol);
    EXPECT_DOUBLE_EQ(cell.bitline_junction_cap(),
                     feol.c_junction * cell.m_pass_gate);
    EXPECT_GT(cell.storage_node_cap(), cell.bitline_junction_cap());
}

TEST(Precharge, MultiplicityScalesInBanks)
{
    EXPECT_DOUBLE_EQ(sram::precharge_multiplicity(16), 1.0);
    EXPECT_DOUBLE_EQ(sram::precharge_multiplicity(64), 1.0);
    EXPECT_DOUBLE_EQ(sram::precharge_multiplicity(65), 2.0);
    EXPECT_DOUBLE_EQ(sram::precharge_multiplicity(256), 4.0);
    EXPECT_DOUBLE_EQ(sram::precharge_multiplicity(1024), 16.0);
    EXPECT_THROW(sram::precharge_multiplicity(0),
                 util::Precondition_error);
}

TEST(Precharge, CapHasConstantFloorAndGrowsWithN)
{
    const sram::Cell_electrical cell =
        sram::Cell_electrical::n10(tech::n10().feol);
    const double c16 = sram::precharge_cap(16, cell);
    const double c64 = sram::precharge_cap(64, cell);
    const double c1024 = sram::precharge_cap(1024, cell);
    EXPECT_DOUBLE_EQ(c16, c64);  // same bank count
    EXPECT_GT(c1024, c64);
    // Constant periphery share: 2 junctions.
    EXPECT_GT(c16, 2.0 * cell.c_junction);
}

TEST(Precharge, PerCellShareVanishesForLongArrays)
{
    // Cpre(n)/n must shrink with n: the trend-bending property the paper's
    // eq. (5) relies on.
    const sram::Cell_electrical cell =
        sram::Cell_electrical::n10(tech::n10().feol);
    const double share16 = sram::precharge_cap(16, cell) / 16.0;
    const double share1024 = sram::precharge_cap(1024, cell) / 1024.0;
    EXPECT_GT(share16, 4.0 * share1024);
}

} // namespace
