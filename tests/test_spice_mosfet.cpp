#include "spice/mosfet_model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/contracts.h"

namespace {

using namespace mpsram::spice;

Mosfet_params nmos()
{
    Mosfet_params p;
    p.type = Mosfet_type::nmos;
    return calibrate_beta(p, 0.7, 40e-6);
}

Mosfet_params pmos()
{
    Mosfet_params p;
    p.type = Mosfet_type::pmos;
    return calibrate_beta(p, 0.7, 30e-6);
}

TEST(MosfetModel, CalibrationHitsDriveTarget)
{
    const Mosfet_params n = nmos();
    EXPECT_NEAR(drive_current(n, 0.7), 40e-6, 1e-12);
    const Mosfet_params p = pmos();
    EXPECT_NEAR(drive_current(p, 0.7), 30e-6, 1e-12);
}

TEST(MosfetModel, OffDeviceLeaksOrdersOfMagnitudeBelowOn)
{
    const Mosfet_params p = nmos();
    const double on = evaluate_mosfet(p, 0.7, 0.7, 0.0).ids;
    const double off = evaluate_mosfet(p, 0.7, 0.0, 0.0).ids;
    EXPECT_GT(on / off, 1e3);
    EXPECT_GT(off, 0.0);  // still finite subthreshold leakage
}

TEST(MosfetModel, SubthresholdSlopeMatchesN)
{
    // In weak inversion Ids ~ exp(vgs / (n Vt)): one decade per
    // n * Vt * ln(10) volts of gate drive.
    const Mosfet_params p = nmos();
    const double v1 = 0.05;
    const double v2 = 0.10;
    const double i1 = evaluate_mosfet(p, 0.7, v1, 0.0).ids;
    const double i2 = evaluate_mosfet(p, 0.7, v2, 0.0).ids;
    const double slope_mv_per_dec =
        (v2 - v1) / std::log10(i2 / i1) * 1e3;
    const double expected = p.n * p.v_t * std::log(10.0) * 1e3;  // ~77 mV
    EXPECT_NEAR(slope_mv_per_dec, expected, 0.1 * expected);
}

TEST(MosfetModel, SourceDrainSymmetry)
{
    // EKV is symmetric: swapping D and S negates the current.
    const Mosfet_params p = nmos();
    const double fwd = evaluate_mosfet(p, 0.5, 0.7, 0.1).ids;
    const double rev = evaluate_mosfet(p, 0.1, 0.7, 0.5).ids;
    EXPECT_NEAR(fwd, -rev, 1e-9 * std::fabs(fwd));
}

TEST(MosfetModel, ZeroVdsZeroCurrent)
{
    const Mosfet_params p = nmos();
    EXPECT_NEAR(evaluate_mosfet(p, 0.3, 0.7, 0.3).ids, 0.0, 1e-15);
}

TEST(MosfetModel, PmosMirrorsNmos)
{
    Mosfet_params n;
    n.type = Mosfet_type::nmos;
    Mosfet_params p = n;
    p.type = Mosfet_type::pmos;

    // PMOS at mirrored bias must carry the negated NMOS current.
    const Mosfet_eval en = evaluate_mosfet(n, 0.7, 0.7, 0.0);
    const Mosfet_eval ep = evaluate_mosfet(p, -0.7, -0.7, 0.0);
    EXPECT_NEAR(ep.ids, -en.ids, 1e-12);
    EXPECT_NEAR(ep.gm, en.gm, 1e-9);
    EXPECT_NEAR(ep.gds, en.gds, 1e-9);
}

TEST(MosfetModel, MultiplicityScalesCurrentLinearly)
{
    const Mosfet_params p = nmos();
    const double i1 = evaluate_mosfet(p, 0.7, 0.7, 0.0, 1.0).ids;
    const double i3 = evaluate_mosfet(p, 0.7, 0.7, 0.0, 3.0).ids;
    EXPECT_NEAR(i3, 3.0 * i1, 1e-12);
}

TEST(MosfetModel, SaturationCurrentNearlyFlatInVds)
{
    const Mosfet_params p = nmos();
    const double i1 = evaluate_mosfet(p, 0.5, 0.7, 0.0).ids;
    const double i2 = evaluate_mosfet(p, 0.7, 0.7, 0.0).ids;
    // Only CLM separates them: a few percent.
    EXPECT_NEAR(i2 / i1, 1.0 + p.lambda * 0.2, 0.02);
}

struct Bias {
    double vd;
    double vg;
    double vs;
};

class MosfetDerivativeTest : public ::testing::TestWithParam<Bias> {};

TEST_P(MosfetDerivativeTest, AnalyticMatchesFiniteDifference)
{
    // Property: gm, gds, gms agree with central finite differences at
    // every bias corner (this is what Newton convergence rests on).
    const Bias b = GetParam();
    const Mosfet_params p = nmos();
    const double h = 1e-6;

    const Mosfet_eval e = evaluate_mosfet(p, b.vd, b.vg, b.vs);

    const double gm_fd = (evaluate_mosfet(p, b.vd, b.vg + h, b.vs).ids -
                          evaluate_mosfet(p, b.vd, b.vg - h, b.vs).ids) /
                         (2.0 * h);
    const double gds_fd = (evaluate_mosfet(p, b.vd + h, b.vg, b.vs).ids -
                           evaluate_mosfet(p, b.vd - h, b.vg, b.vs).ids) /
                          (2.0 * h);
    const double gms_fd = (evaluate_mosfet(p, b.vd, b.vg, b.vs + h).ids -
                           evaluate_mosfet(p, b.vd, b.vg, b.vs - h).ids) /
                          (2.0 * h);

    const double scale = std::max(
        {std::fabs(gm_fd), std::fabs(gds_fd), std::fabs(gms_fd), 1e-9});
    EXPECT_NEAR(e.gm, gm_fd, 1e-4 * scale);
    EXPECT_NEAR(e.gds, gds_fd, 1e-4 * scale);
    EXPECT_NEAR(e.gms, gms_fd, 1e-4 * scale);
}

INSTANTIATE_TEST_SUITE_P(
    BiasGrid, MosfetDerivativeTest,
    ::testing::Values(Bias{0.7, 0.7, 0.0},   // strong on
                      Bias{0.1, 0.7, 0.0},   // triode
                      Bias{0.7, 0.2, 0.0},   // subthreshold
                      Bias{0.7, 0.0, 0.0},   // off
                      Bias{0.0, 0.7, 0.7},   // source-follower style
                      Bias{0.35, 0.5, 0.2},  // mid-bias
                      Bias{0.2, 0.7, 0.5},   // reverse-ish
                      Bias{0.7, 0.35, 0.35}));

TEST(MosfetModel, ValidatesParameters)
{
    Mosfet_params p = nmos();
    EXPECT_THROW(evaluate_mosfet(p, 0.0, 0.0, 0.0, -1.0),
                 mpsram::util::Precondition_error);
    p.n = 0.5;
    EXPECT_THROW(evaluate_mosfet(p, 0.0, 0.0, 0.0),
                 mpsram::util::Precondition_error);
    EXPECT_THROW(calibrate_beta(nmos(), 0.7, -1.0),
                 mpsram::util::Precondition_error);
}

} // namespace
