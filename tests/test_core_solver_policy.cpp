// Solver-tier contract at the query/session layer: the reuse tiers
// (bypass, iterative) must stay inside the paper-row calibration budget
// against the reference+direct oracle, stay bitwise deterministic across
// thread counts, and be rejected loudly when combined with the reference
// accuracy tier (sram/solver_policy.h).
#include "sram/solver_policy.h"

#include <cmath>
#include <optional>

#include <gtest/gtest.h>

#include "core/query.h"
#include "core/session.h"
#include "extract/extractor.h"
#include "sram/disturb_sim.h"
#include "sram/read_sim.h"
#include "sram/write_sim.h"
#include "util/contracts.h"
#include "util/numeric.h"

namespace {

using namespace mpsram;
using core::Metric;
using core::Query;
using spice::Solver_policy;

constexpr int kSizes[] = {8, 16, 24, 32};
constexpr Solver_policy kReuseTiers[] = {Solver_policy::bypass,
                                         Solver_policy::iterative};

// --- resolution contract -----------------------------------------------------

TEST(SolverPolicyContract, ReferenceRejectsExplicitReuseTiers)
{
    for (const Solver_policy policy : kReuseTiers) {
        EXPECT_THROW(sram::resolve_solver_policy(
                         sram::Sim_accuracy::reference, policy),
                     util::Precondition_error);
    }
    // Defaulted and explicit-direct requests resolve to the oracle.
    EXPECT_EQ(sram::resolve_solver_policy(sram::Sim_accuracy::reference,
                                          std::nullopt),
              Solver_policy::direct);
    EXPECT_EQ(sram::resolve_solver_policy(sram::Sim_accuracy::reference,
                                          Solver_policy::direct),
              Solver_policy::direct);
}

TEST(SolverPolicyContract, FastHonorsExplicitRequests)
{
    for (const Solver_policy policy :
         {Solver_policy::direct, Solver_policy::bypass,
          Solver_policy::iterative}) {
        EXPECT_EQ(sram::resolve_solver_policy(sram::Sim_accuracy::fast,
                                              policy),
                  policy);
    }
}

TEST(SolverPolicyContract, AllThreeWorkloadPathsEnforceIt)
{
    // The check must live on every sim path, not just read: a reference
    // validation run that silently ran a reuse tier on one workload would
    // poison the oracle side of the agreement gates.
    const core::Study_session session;
    constexpr int sizes[] = {8};
    for (const Metric metric :
         {Metric::read_td, Metric::write_tw, Metric::disturb}) {
        EXPECT_THROW(
            session.run(Query(metric)
                            .over_word_lines(tech::Patterning_option::le3,
                                             sizes)
                            .with_accuracy(sram::Sim_accuracy::reference)
                            .with_solver(Solver_policy::bypass)),
            util::Precondition_error)
            << "metric " << static_cast<int>(metric);
    }
}

// --- paper-row agreement -----------------------------------------------------

TEST(SolverPolicyAgreement, ReuseTiersStayInCalibrationBudget)
{
    // Fig. 4 read rows (small prefix; bench_perf_solver gates the full
    // set to 10x1024): fast+bypass and fast+iterative vs the
    // reference+direct oracle, held to the same 0.5% budget as the
    // accuracy tier itself.
    const core::Study_session session;
    constexpr int sizes[] = {16, 64};
    const Query base = Query(Metric::read_td)
                           .over_word_lines(tech::Patterning_option::le3,
                                            sizes);
    const core::Result_table reference = session.run(
        Query(base).with_accuracy(sram::Sim_accuracy::reference));
    for (const Solver_policy policy : kReuseTiers) {
        const core::Result_table fast =
            session.run(Query(base)
                            .with_accuracy(sram::Sim_accuracy::fast)
                            .with_solver(policy));
        ASSERT_EQ(fast.size(), reference.size());
        for (std::size_t i = 0; i < reference.size(); ++i) {
            const auto& ref = reference.as<core::Read_row>(i);
            const auto& fst = fast.as<core::Read_row>(i);
            EXPECT_LE(util::rel_diff(ref.td_nominal, fst.td_nominal), 5e-3);
            EXPECT_LE(util::rel_diff(ref.td_varied, fst.td_varied), 5e-3);
            EXPECT_LE(std::fabs(ref.tdp_percent - fst.tdp_percent), 0.5);
        }
    }
}

// --- thread determinism ------------------------------------------------------

TEST(SolverPolicyDeterminism, BitwiseIdenticalAcrossThreadsPerTier)
{
    // The factorization state of the reuse tiers evolves only from solve
    // inputs, so the 1/2/8-thread bitwise contract must hold per tier
    // exactly as it does for direct.
    for (const Solver_policy policy :
         {Solver_policy::direct, Solver_policy::bypass,
          Solver_policy::iterative}) {
        auto run = [&](int threads) {
            const core::Study_session session;
            return session.run(
                Query(Metric::read_td)
                    .over_word_lines(tech::Patterning_option::le3, kSizes)
                    .with_accuracy(sram::Sim_accuracy::fast)
                    .with_solver(policy)
                    .on(core::Runner_options{threads}));
        };
        const core::Result_table serial = run(1);
        for (const int threads : {2, 8}) {
            EXPECT_TRUE(run(threads) == serial)
                << "policy " << sram::to_string(policy) << " threads "
                << threads;
        }
    }
}

// --- large-array smoke -------------------------------------------------------

struct Column_fixture {
    tech::Technology t = tech::n10();
    sram::Cell_electrical cell = sram::Cell_electrical::n10(t.feol);
    extract::Extractor ex{t.metal1};
    sram::Array_config cfg;
    sram::Bitline_electrical wires;

    explicit Column_fixture(int n)
    {
        cfg.word_lines = n;
        cfg.victim_pair = 2;
        const geom::Wire_array arr = sram::build_metal1_array(t, cfg);
        wires = sram::roll_up_nominal(ex, arr, t, cfg);
    }
};

TEST(SolverPolicyLargeArray, ReferenceTransientSmokeAt4096)
{
    // The 4k-row tier the iterative path targets must also stay solvable
    // by the fixed-step reference oracle.  A 4096-cell bitline is past
    // the paper's measurable range (the differential does not reach the
    // sense threshold inside any sane window), so this is a solver smoke
    // test: the transient must complete with healthy counters and
    // physical voltages, not produce a td.  Reduced step count and no
    // window retries keep it a smoke test, not a benchmark.
    Column_fixture f(4096);
    sram::Read_netlist net =
        sram::build_read_netlist(f.t, f.cell, f.wires, f.cfg);
    sram::Read_options opts;
    opts.accuracy = sram::Sim_accuracy::reference;
    opts.nominal_steps = 400;
    opts.max_retries = 0;
    const sram::Read_result r = sram::simulate_read(net, opts);
    ASSERT_GT(r.steps.accepted, 0);
    EXPECT_EQ(r.steps.bypass_hits, 0);  // reference resolves to direct
    EXPECT_EQ(r.steps.lu_factorizations, r.steps.newton_iterations);
    // The accessed bitline discharges below its complement; both stay
    // inside the rail.
    EXPECT_LE(r.bl_final, r.blb_final);
    EXPECT_LE(r.blb_final, f.t.feol.vdd + 1e-6);
    EXPECT_GE(r.bl_final, -1e-6);
}

TEST(SolverPolicyLargeArray, IterativeTransientSmokeAt4096)
{
    Column_fixture f(4096);
    sram::Read_netlist net =
        sram::build_read_netlist(f.t, f.cell, f.wires, f.cfg);
    sram::Read_options opts;
    opts.accuracy = sram::Sim_accuracy::fast;
    opts.solver = Solver_policy::iterative;
    opts.nominal_steps = 400;
    opts.max_retries = 0;
    const sram::Read_result r = sram::simulate_read(net, opts);
    ASSERT_GT(r.steps.accepted, 0);
    EXPECT_GT(r.steps.bypass_hits, 0);
    EXPECT_LT(r.steps.lu_factorizations, r.steps.newton_iterations);
    EXPECT_LE(r.bl_final, r.blb_final);
}

// --- counters surface through the batch layer --------------------------------

TEST(SolverPolicyCounters, SessionOptionDefaultsFlowToSims)
{
    // A session whose read options pin the bypass tier must produce reads
    // whose Step_stats show bypass activity — the option plumbed through
    // core::Study_session, not just the direct sim call.
    core::Study_options sopts;
    sopts.read.solver = Solver_policy::bypass;
    sopts.read.accuracy = sram::Sim_accuracy::fast;
    const core::Study_session session(tech::n10(), sopts);
    constexpr int sizes[] = {8};
    const core::Result_table table = session.run(
        Query(Metric::read_td)
            .over_word_lines(tech::Patterning_option::le3, sizes));
    ASSERT_EQ(table.size(), 1u);
    EXPECT_GT(table.as<core::Read_row>(0).td_nominal, 0.0);
}

} // namespace
