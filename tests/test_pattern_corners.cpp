#include "pattern/corners.h"

#include <cmath>

#include <gtest/gtest.h>

#include "pattern/euv.h"
#include "pattern/le3.h"
#include "pattern/sadp.h"
#include "tech/technology.h"
#include "util/contracts.h"

namespace {

using namespace mpsram;

TEST(Corners, EnumeratesThreeLevelsPerAxis)
{
    const tech::Technology t = tech::n10();
    const pattern::Sadp_engine engine(t);  // 2 axes
    const auto search = pattern::enumerate_corners(
        engine, [](const pattern::Process_sample&) { return 0.0; }, 3.0, 3);
    EXPECT_EQ(search.all.size(), 9u);  // 3^2
}

TEST(Corners, EnumeratesTwoLevelsPerAxis)
{
    const tech::Technology t = tech::n10();
    const pattern::Le3_engine engine(t);  // 5 axes
    const auto search = pattern::enumerate_corners(
        engine, [](const pattern::Process_sample&) { return 0.0; }, 3.0, 2);
    EXPECT_EQ(search.all.size(), 32u);  // 2^5
}

TEST(Corners, FindsTheMaximizerOfAKnownMetric)
{
    const tech::Technology t = tech::n10();
    const pattern::Sadp_engine engine(t);
    // Metric maximized at cd = +3s, spacer = -3s.
    const auto metric = [](const pattern::Process_sample& s) {
        return s[0] - 2.0 * s[1];
    };
    const auto search = pattern::enumerate_corners(engine, metric, 3.0, 3);
    const auto& axes = engine.axes();
    EXPECT_NEAR(search.worst.sample[0], 3.0 * axes[0].sigma, 1e-18);
    EXPECT_NEAR(search.worst.sample[1], -3.0 * axes[1].sigma, 1e-18);
    // Every enumerated corner scores <= the winner.
    for (const auto& c : search.all) {
        EXPECT_LE(c.metric, search.worst.metric + 1e-18);
    }
}

TEST(Corners, ZeroLevelsIncludedWithThreeLevels)
{
    const tech::Technology t = tech::n10();
    const pattern::Euv_engine engine(t);
    const auto search = pattern::enumerate_corners(
        engine, [](const pattern::Process_sample& s) { return -std::fabs(s[0]); },
        3.0, 3);
    // Best metric is the all-zeros corner.
    EXPECT_NEAR(search.worst.sample[0], 0.0, 1e-18);
    EXPECT_EQ(search.all.size(), 3u);
}

TEST(Corners, DescribeRendersSignedSigmas)
{
    const tech::Technology t = tech::n10();
    const pattern::Sadp_engine engine(t);
    pattern::Corner c;
    c.sample = {3.0 * engine.axes()[0].sigma, -3.0 * engine.axes()[1].sigma};
    const std::string text = c.describe(engine);
    EXPECT_NE(text.find("cd_core=+3s"), std::string::npos);
    EXPECT_NE(text.find("spacer=-3s"), std::string::npos);
}

TEST(Corners, DescribeNominal)
{
    const tech::Technology t = tech::n10();
    const pattern::Euv_engine engine(t);
    pattern::Corner c;
    c.sample = {0.0};
    EXPECT_EQ(c.describe(engine), "nominal");
}

TEST(Corners, ValidatesArguments)
{
    const tech::Technology t = tech::n10();
    const pattern::Euv_engine engine(t);
    const auto metric = [](const pattern::Process_sample&) { return 0.0; };
    EXPECT_THROW(pattern::enumerate_corners(engine, metric, 3.0, 4),
                 util::Precondition_error);
    EXPECT_THROW(pattern::enumerate_corners(engine, metric, -1.0, 3),
                 util::Precondition_error);
    pattern::Corner bad;
    bad.sample = {0.0, 0.0};
    EXPECT_THROW(bad.describe(engine), util::Precondition_error);
}

} // namespace
