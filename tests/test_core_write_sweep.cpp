// The column-simulation write layer (PR 4): thread determinism of the
// write batch APIs, Write_sim_context reuse, the shared worst-case memo
// under concurrent write callers, and the metric-functor generalization of
// the mc:: code against the original read paths.
#include "core/study.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "analytic/params.h"
#include "core/runner.h"
#include "mc/distribution.h"
#include "mc/worst_case.h"
#include "pattern/engine.h"
#include "sram/bitline_model.h"
#include "sram/write_sim.h"
#include "util/numeric.h"

namespace {

using namespace mpsram;

// Cheap-but-real sweep, same sizes as the read-sweep tests.
constexpr int kSizes[] = {8, 16, 24};

// The satellite contract asks for determinism at 1/2/8 threads.
constexpr int kThreadCounts[] = {2, 8};

struct Sim_fixture {
    tech::Technology t = tech::n10();
    sram::Cell_electrical cell = sram::Cell_electrical::n10(t.feol);
    extract::Extractor ex{t.metal1};
    sram::Array_config cfg;
    sram::Bitline_electrical wires;

    explicit Sim_fixture(int n)
    {
        cfg.word_lines = n;
        cfg.victim_pair = 6;
        const geom::Wire_array arr = sram::build_metal1_array(t, cfg);
        wires = sram::roll_up_nominal(ex, arr, t, cfg);
    }
};

TEST(WriteSweep, IdenticalAtAnyThreadCount)
{
    // Fresh study per thread count: no memo crosstalk between runs.
    const core::Variability_study serial_study;
    const auto serial = serial_study.write_sweep(
        tech::Patterning_option::sadp, kSizes, core::Runner_options{1});
    ASSERT_EQ(serial.size(), std::size(kSizes));

    for (const int threads : kThreadCounts) {
        const core::Variability_study study;
        const auto parallel = study.write_sweep(
            tech::Patterning_option::sadp, kSizes,
            core::Runner_options{threads});
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            EXPECT_EQ(serial[i].tw_nominal, parallel[i].tw_nominal)
                << "threads=" << threads << " size=" << kSizes[i];
            EXPECT_EQ(serial[i].tw_varied, parallel[i].tw_varied);
            EXPECT_EQ(serial[i].twp_percent, parallel[i].twp_percent);
        }
    }
}

TEST(WriteSweep, MatchesSingleCalls)
{
    const core::Variability_study batch_study;
    const auto rows = batch_study.write_sweep(tech::Patterning_option::euv,
                                              kSizes,
                                              core::Runner_options{8});

    const core::Variability_study single_study;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto single = single_study.worst_case_tw(
            tech::Patterning_option::euv, kSizes[i]);
        EXPECT_EQ(rows[i].tw_nominal, single.tw_nominal);
        EXPECT_EQ(rows[i].tw_varied, single.tw_varied);
        EXPECT_EQ(rows[i].twp_percent, single.twp_percent);
        EXPECT_GT(rows[i].tw_nominal, 0.0);
    }
}

TEST(NominalTwBatch, IdenticalAtAnyThreadCountAndMatchesSingles)
{
    const core::Variability_study serial_study;
    const auto serial =
        serial_study.nominal_tw_batch(kSizes, core::Runner_options{1});
    ASSERT_EQ(serial.size(), std::size(kSizes));

    for (const int threads : kThreadCounts) {
        const core::Variability_study study;
        const auto parallel =
            study.nominal_tw_batch(kSizes, core::Runner_options{threads});
        for (std::size_t i = 0; i < serial.size(); ++i) {
            EXPECT_EQ(serial[i], parallel[i])
                << "threads=" << threads << " size=" << kSizes[i];
        }
    }

    const core::Variability_study single_study;
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i], single_study.nominal_tw(kSizes[i]));
    }
    // tw grows with the array (the driver discharges a longer ladder).
    EXPECT_GT(serial[2], serial[0]);
}

void expect_bitwise_equal(const mc::Tdp_distribution& a,
                          const mc::Tdp_distribution& b)
{
    EXPECT_EQ(a.tdp, b.tdp);
    EXPECT_EQ(a.rvar, b.rvar);
    EXPECT_EQ(a.cvar, b.cvar);
    EXPECT_EQ(a.summary.mean, b.summary.mean);
    EXPECT_EQ(a.summary.stddev, b.summary.stddev);
}

TEST(McTwpBatch, IdenticalAtAnyThreadCountAndMatchesSingles)
{
    // Every sample is a SPICE transient, so the counts stay small.
    mc::Distribution_options mo;
    mo.samples = 24;
    mo.seed = 7;

    const std::vector<core::Variability_study::Mc_case> cases = {
        {tech::Patterning_option::le3, 8, -1.0},
        {tech::Patterning_option::euv, 8, -1.0},
    };

    mc::Distribution_options serial_mo = mo;
    serial_mo.runner.threads = 1;
    const core::Variability_study serial_study;
    const auto serial = serial_study.mc_twp_batch(cases, serial_mo);
    ASSERT_EQ(serial.size(), cases.size());

    for (const int threads : kThreadCounts) {
        mc::Distribution_options par_mo = mo;
        par_mo.runner.threads = threads;
        const core::Variability_study study;
        const auto parallel = study.mc_twp_batch(cases, par_mo);
        for (std::size_t i = 0; i < cases.size(); ++i) {
            expect_bitwise_equal(serial[i], parallel[i]);
        }
    }

    const core::Variability_study single_study;
    for (std::size_t i = 0; i < cases.size(); ++i) {
        const auto single =
            single_study.mc_twp(cases[i].option, cases[i].word_lines,
                                serial_mo, cases[i].ol_3sigma);
        expect_bitwise_equal(serial[i], single);
    }

    // The distribution is real: LE3 spreads twp wider than EUV.
    EXPECT_GT(serial[0].summary.stddev, serial[1].summary.stddev);
}

TEST(WriteSimContext, ReuseMatchesFreshBuilds)
{
    Sim_fixture f(8);
    sram::Bitline_electrical heavier = f.wires;
    heavier.c_bl_cell *= 1.4;
    heavier.c_blb_cell *= 1.4;

    sram::Write_sim_context ctx;
    const auto r_nom = ctx.simulate(f.t, f.cell, f.wires, f.cfg);
    const auto r_heavy = ctx.simulate(f.t, f.cell, heavier, f.cfg);
    // Same array config: the second run re-points the ladder in place.
    EXPECT_EQ(ctx.netlist_builds(), 1u);
    ASSERT_TRUE(r_nom.flipped);
    ASSERT_TRUE(r_heavy.flipped);

    // Back to the first wires on the reused netlist: bitwise repeatable.
    const auto r_nom_again = ctx.simulate(f.t, f.cell, f.wires, f.cfg);
    EXPECT_EQ(ctx.netlist_builds(), 1u);
    EXPECT_EQ(r_nom.tw, r_nom_again.tw);

    // Fresh single-shot builds must agree bitwise with the reused context.
    sram::Write_netlist fresh_nom =
        sram::build_write_netlist(f.t, f.cell, f.wires, f.cfg);
    EXPECT_EQ(sram::simulate_write(fresh_nom).tw, r_nom.tw);
    sram::Write_netlist fresh_heavy =
        sram::build_write_netlist(f.t, f.cell, heavier, f.cfg);
    EXPECT_EQ(sram::simulate_write(fresh_heavy).tw, r_heavy.tw);
    EXPECT_GT(r_heavy.tw, r_nom.tw);

    // A different word-line count rebuilds netlist and workspace.
    Sim_fixture f16(16);
    const auto r16 = ctx.simulate(f16.t, f16.cell, f16.wires, f16.cfg);
    EXPECT_EQ(ctx.netlist_builds(), 2u);
    sram::Write_netlist fresh16 =
        sram::build_write_netlist(f16.t, f16.cell, f16.wires, f16.cfg);
    EXPECT_EQ(sram::simulate_write(fresh16).tw, r16.tw);

    // A different schedule is a different netlist, too.
    sram::Write_timing slow;
    slow.t_drive_on = 60e-12;
    const auto r_slow =
        ctx.simulate(f16.t, f16.cell, f16.wires, f16.cfg, slow);
    EXPECT_EQ(ctx.netlist_builds(), 3u);
    ASSERT_TRUE(r_slow.flipped);
}

TEST(WorstCaseMemo, SingleEnumerationUnderConcurrentTwCallers)
{
    const core::Variability_study study;
    EXPECT_EQ(study.corner_search_count(), 0u);

    // Eight concurrent worst_case_tw callers of one (option, n) key: the
    // promise-backed memo runs exactly one corner enumeration.
    constexpr std::size_t jobs = 8;
    std::vector<core::Variability_study::Write_row> results(jobs);
    core::run_indexed(
        jobs,
        [&](std::size_t i, const core::Run_context&) {
            results[i] =
                study.worst_case_tw(tech::Patterning_option::sadp, 8);
        },
        core::Runner_options{8});
    EXPECT_EQ(study.corner_search_count(), 1u);
    for (std::size_t i = 1; i < jobs; ++i) {
        EXPECT_EQ(results[i].tw_nominal, results[0].tw_nominal);
        EXPECT_EQ(results[i].tw_varied, results[0].tw_varied);
        EXPECT_EQ(results[i].twp_percent, results[0].twp_percent);
    }

    // The read paths share the same key: no second enumeration.
    study.worst_case_tdp(tech::Patterning_option::sadp, 8);
    study.worst_case_read(tech::Patterning_option::sadp, 8);
    EXPECT_EQ(study.corner_search_count(), 1u);

    // A new word-line count is a new key for the write path, too.
    study.worst_case_tw(tech::Patterning_option::sadp, 16);
    EXPECT_EQ(study.corner_search_count(), 2u);
}

// --- metric-functor regressions on the original read paths -------------------

struct Mc_fixture {
    tech::Technology t = tech::n10();
    extract::Extractor ex{t.metal1};
    sram::Array_config cfg;
    std::unique_ptr<pattern::Patterning_engine> engine;
    geom::Wire_array nominal;
    sram::Victim_wires victims;
    analytic::Td_params params;

    explicit Mc_fixture(tech::Patterning_option option)
    {
        cfg.word_lines = 32;
        cfg.victim_pair = 6;
        engine = pattern::make_engine(option, t);
        nominal = engine->decompose(sram::build_metal1_array(t, cfg));
        victims = sram::find_victim_wires(nominal, cfg);
        const auto cell = sram::Cell_electrical::n10(t.feol);
        const auto wires = sram::roll_up_nominal(ex, nominal, t, cfg);
        params = analytic::derive_params(t, cell, wires);
    }
};

TEST(MetricFunctor, GeneralizedWorstCaseMatchesCblDefault)
{
    for (const auto option : tech::all_patterning_options) {
        Mc_fixture f(option);
        const auto legacy =
            mc::find_worst_case(*f.engine, f.ex, f.nominal, f.victims.bl,
                                f.victims.vss, 3, core::Runner_options{2});
        const auto general = mc::find_worst_case(
            *f.engine, f.ex, f.nominal, f.victims.bl, f.victims.vss,
            [&](const geom::Wire_array& realized, const core::Run_context&) {
                return f.ex.wire_rc(realized, f.victims.bl).c_total();
            },
            3, core::Runner_options{2});
        EXPECT_EQ(legacy.corner.sample, general.corner.sample);
        EXPECT_EQ(legacy.corner.metric, general.corner.metric);
        EXPECT_EQ(legacy.variation.r_factor, general.variation.r_factor);
        EXPECT_EQ(legacy.variation.c_factor, general.variation.c_factor);
        EXPECT_EQ(legacy.vss_r_factor, general.vss_r_factor);
    }
}

TEST(MetricFunctor, NanSampleMetricPoisonsTheWholeSummary)
{
    // The NaN-safety contract of the write MC: one failed sample (e.g. a
    // write that never flips) must surface in every summary statistic —
    // quantiles and min/max included — not just the moments.
    Mc_fixture f(tech::Patterning_option::euv);
    mc::Distribution_options mo;
    mo.samples = 50;
    mo.runner.threads = 2;

    const auto dist = mc::metric_distribution(
        *f.engine, f.ex, f.nominal, f.victims.bl,
        [&](const geom::Wire_array&, const extract::Rc_variation& v,
            const core::Run_context&) {
            return v.c_factor > 0.0
                       ? std::numeric_limits<double>::quiet_NaN()
                       : 0.0;  // c_factor is always positive: all NaN
        },
        mo);
    EXPECT_EQ(dist.summary.count, 50u);
    EXPECT_TRUE(std::isnan(dist.summary.mean));
    EXPECT_TRUE(std::isnan(dist.summary.stddev));
    EXPECT_TRUE(std::isnan(dist.summary.median));
    EXPECT_TRUE(std::isnan(dist.summary.p01));
    EXPECT_TRUE(std::isnan(dist.summary.p99));
    EXPECT_TRUE(std::isnan(dist.summary.min));
    EXPECT_TRUE(std::isnan(dist.summary.max));
}

TEST(MetricFunctor, MetricDistributionMatchesTdpDistribution)
{
    Mc_fixture f(tech::Patterning_option::le3);
    for (const auto sampling :
         {mc::Sampling::pseudo_random, mc::Sampling::latin_hypercube}) {
        mc::Distribution_options mo;
        mo.samples = 400;
        mo.seed = 42;
        mo.sampling = sampling;
        mo.runner.threads = 4;

        const auto legacy = mc::tdp_distribution(
            *f.engine, f.ex, f.nominal, f.victims.bl, f.params, 32, mo);
        const auto general = mc::metric_distribution(
            *f.engine, f.ex, f.nominal, f.victims.bl,
            [&](const geom::Wire_array&, const extract::Rc_variation& v,
                const core::Run_context&) {
                return analytic::tdp_percent(f.params, 32, v.r_factor,
                                             v.c_factor);
            },
            mo);
        expect_bitwise_equal(legacy, general);
    }
}

// --- accuracy policy ---------------------------------------------------------

core::Study_options opts_with(sram::Sim_accuracy accuracy)
{
    core::Study_options opts;
    opts.read.accuracy = accuracy;
    opts.write.accuracy = accuracy;
    return opts;
}

TEST(WriteAccuracy, AdaptiveMatchesReferenceAcrossWriteSweep)
{
    // The write leg of the calibration contract: adaptive tw within 0.5%
    // of the fixed-step reference on every write sweep row for every
    // patterning option.  (bench_ext_write_impact enforces the same gate
    // on the full n up to 256 sweep on every run.)
    for (const auto option : tech::all_patterning_options) {
        const core::Variability_study reference(
            tech::n10(), opts_with(sram::Sim_accuracy::reference));
        const core::Variability_study fast(
            tech::n10(), opts_with(sram::Sim_accuracy::fast));

        const auto ref_rows = reference.write_sweep(option, kSizes);
        const auto fast_rows = fast.write_sweep(option, kSizes);
        ASSERT_EQ(ref_rows.size(), fast_rows.size());

        for (std::size_t i = 0; i < ref_rows.size(); ++i) {
            EXPECT_LT(util::rel_diff(ref_rows[i].tw_nominal,
                                     fast_rows[i].tw_nominal),
                      5e-3)
                << tech::to_string(option) << " n=" << kSizes[i];
            EXPECT_LT(util::rel_diff(ref_rows[i].tw_varied,
                                     fast_rows[i].tw_varied),
                      5e-3);
            EXPECT_NEAR(ref_rows[i].twp_percent, fast_rows[i].twp_percent,
                        0.05);
        }
    }
}

} // namespace
