// Persistence layer (core/serialize.h + core/result_cache.h): canonical
// round-trips, the canonical-hash contract, and the on-disk cache's
// correctness properties — version-bump invalidation, corruption
// degrading to a miss, concurrent writers leaving one valid entry, and a
// warm session served entirely from disk.
#include "core/result_cache.h"
#include "core/serialize.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "core/query.h"
#include "core/runner.h"
#include "core/session.h"
#include "util/atomic_file.h"
#include "util/contracts.h"
#include "util/hash.h"
#include "util/json.h"

namespace {

using namespace mpsram;

/// Fresh per-test scratch directory under the ctest working directory.
std::string scratch_dir(const std::string& name)
{
    const std::string dir = "cache_test_scratch/" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

std::string entry_file(const std::string& dir, std::uint64_t version,
                       const std::string& kind, std::uint64_t key)
{
    return dir + "/v" + std::to_string(version) + "/" + kind + "/" +
           util::hex16(key) + ".json";
}

TEST(CoreCache, QueryJsonRoundTripsEveryField)
{
    core::Query q(core::Metric::mc_twp);
    q.cases = {{tech::Patterning_option::le3, 24, 0.5},
               {tech::Patterning_option::sadp, 0, -1.0}};
    q.accuracy = sram::Sim_accuracy::reference;
    q.mc.samples = 123;
    q.mc.seed = 0xdeadbeefcafef00dULL;  // > 2^53: needs the u64 kind
    q.mc.truncate_k = 2.5;
    q.mc.sampling = mc::Sampling::latin_hypercube;
    q.mc.store_samples = false;
    q.twp_engine = core::Twp_engine::surrogate;

    const core::Query back =
        core::query_of_json(core::json_of_query(q));
    EXPECT_EQ(core::json_of_query(back).dump(),
              core::json_of_query(q).dump());
    EXPECT_EQ(back.metric, q.metric);
    EXPECT_EQ(back.cases, q.cases);
    EXPECT_EQ(back.accuracy, q.accuracy);
    EXPECT_EQ(back.mc.seed, q.mc.seed);
    EXPECT_EQ(back.mc.sampling, q.mc.sampling);
    EXPECT_EQ(back.twp_engine, q.twp_engine);
}

TEST(CoreCache, QueryKeyIgnoresExecutionPolicy)
{
    const core::Study_session session;
    const core::Query base =
        core::Query(core::Metric::read_td)
            .with_case({tech::Patterning_option::le3, 16, -1.0});

    // Thread counts are execution policy: bitwise-identical results at
    // any count is the determinism contract, so the key must not move.
    core::Query threaded = base;
    threaded.runner.threads = 8;
    threaded.mc.runner.threads = 8;
    EXPECT_EQ(core::query_key(session, base),
              core::query_key(session, threaded));
}

TEST(CoreCache, QueryKeyResolvesSessionDefaults)
{
    const core::Study_session session;
    // word_lines <= 0 resolves to the session's array default (64) and
    // any negative overlay budget normalizes to -1: different spellings
    // of the same resolved case share one entry.
    const core::Query spelled =
        core::Query(core::Metric::read_td)
            .with_case({tech::Patterning_option::le3, 0, -5.0});
    const core::Query resolved =
        core::Query(core::Metric::read_td)
            .with_case({tech::Patterning_option::le3,
                        session.options().array.word_lines, -1.0});
    EXPECT_EQ(core::query_key(session, spelled),
              core::query_key(session, resolved));
}

TEST(CoreCache, QueryKeySeparatesResultChangingFields)
{
    const core::Study_session session;
    const core::Query base =
        core::Query(core::Metric::mc_tdp)
            .with_case({tech::Patterning_option::le3, 16, -1.0});
    const std::uint64_t base_key = core::query_key(session, base);

    core::Query other_seed = base;
    other_seed.mc.seed += 1;
    EXPECT_NE(core::query_key(session, other_seed), base_key);

    core::Query other_metric = base;
    other_metric.metric = core::Metric::mc_twp;
    EXPECT_NE(core::query_key(session, other_metric), base_key);

    core::Query other_engine = base;
    other_engine.tdp_engine = core::Tdp_engine::surrogate;
    EXPECT_NE(core::query_key(session, other_engine), base_key);

    core::Query other_accuracy = base;
    other_accuracy.accuracy = sram::Sim_accuracy::reference;
    EXPECT_NE(core::query_key(session, other_accuracy), base_key);
}

TEST(CoreCache, NanPoisonedTableRoundTripsBitwise)
{
    // A non-flipping write sample poisons its row with NaN; IEEE ==
    // cannot compare such tables, so the bitwise check is dump equality.
    constexpr double nan = std::numeric_limits<double>::quiet_NaN();
    constexpr double inf = std::numeric_limits<double>::infinity();
    const core::Result_table table(
        core::Metric::write_tw,
        {{tech::Patterning_option::le3, 16, -1.0},
         {tech::Patterning_option::euv, 16, -1.0}},
        {core::Write_row{nan, -0.0, inf}, core::Write_row{1e-9, 2e-9, 3.5}});

    const util::Json encoded = core::json_of_result_table(table);
    const core::Result_table back = core::result_table_of_json(
        util::Json::parse(encoded.dump()));
    EXPECT_EQ(core::json_of_result_table(back).dump(), encoded.dump());
    EXPECT_TRUE(std::isnan(back.as<core::Write_row>(0).tw_nominal));
    EXPECT_TRUE(std::signbit(back.as<core::Write_row>(0).tw_varied));
    EXPECT_TRUE(std::isinf(back.as<core::Write_row>(0).twp_percent));
}

TEST(CoreCache, WarmSessionIsServedEntirelyFromDisk)
{
    const std::string dir = scratch_dir("warm");
    core::Study_options opts;
    opts.cache.mode = core::Cache_mode::readwrite;
    opts.cache.directory = dir;
    const core::Query query =
        core::Query(core::Metric::read_td)
            .with_case({tech::Patterning_option::le3, 16, -1.0});

    core::Result_table cold_table;
    {
        const core::Study_session cold(tech::n10(), opts);
        cold_table = cold.run(query);
        EXPECT_EQ(cold.cache_hit_count(), 0u);
        EXPECT_GT(cold.cache_store_count(), 0u);
        EXPECT_EQ(cold.corner_search_count(), 1u);
    }
    {
        const core::Study_session warm(tech::n10(), opts);
        const core::Result_table warm_table = warm.run(query);
        // The acceptance gate: zero SPICE work, served from disk,
        // bitwise identical.
        EXPECT_GT(warm.cache_hit_count(), 0u);
        EXPECT_EQ(warm.corner_search_count(), 0u);
        EXPECT_EQ(warm.surface_fit_count(), 0u);
        EXPECT_EQ(warm_table, cold_table);
        EXPECT_EQ(core::json_of_result_table(warm_table).dump(),
                  core::json_of_result_table(cold_table).dump());
    }
}

TEST(CoreCache, VersionBumpOrphansOldEntries)
{
    const std::string dir = scratch_dir("version");
    util::Json payload;
    payload.set("value", 42.0);

    core::Result_cache v1(dir, core::Cache_mode::readwrite, 1);
    v1.store("query", 7, payload);
    ASSERT_TRUE(v1.load("query", 7).has_value());

    core::Result_cache v2(dir, core::Cache_mode::readwrite, 2);
    EXPECT_FALSE(v2.load("query", 7).has_value());
    EXPECT_EQ(v2.miss_count(), 1u);
}

TEST(CoreCache, CorruptedEntriesDegradeToMisses)
{
    const std::string dir = scratch_dir("corrupt");
    util::Json payload;
    payload.set("value", 42.0);
    core::Result_cache cache(dir, core::Cache_mode::readwrite, 1);
    cache.store("query", 9, payload);
    const std::string path = entry_file(dir, 1, "query", 9);
    ASSERT_TRUE(std::filesystem::exists(path));

    // Truncated file: not even JSON.
    util::write_file_atomic(path, "{\"version\":1,\"kind\":\"qu");
    EXPECT_FALSE(cache.load("query", 9).has_value());

    // Tampered payload: parses, but the checksum no longer matches.
    const std::optional<std::string> original = util::read_file(path);
    cache.store("query", 9, payload);
    util::Json envelope =
        util::Json::parse(*util::read_file(path));
    envelope.set("payload", [] {
        util::Json j;
        j.set("value", 43.0);
        return j;
    }());
    util::write_file_atomic(path, envelope.dump());
    EXPECT_FALSE(cache.load("query", 9).has_value());

    // A wrong-kind hit (file renamed across kind directories) misses too.
    cache.store("query", 9, payload);
    const std::string corner_path = entry_file(dir, 1, "corner", 9);
    std::filesystem::create_directories(
        std::filesystem::path(corner_path).parent_path());
    std::filesystem::copy_file(
        path, corner_path,
        std::filesystem::copy_options::overwrite_existing);
    EXPECT_FALSE(cache.load("corner", 9).has_value());

    // The intact entry still hits.
    EXPECT_TRUE(cache.load("query", 9).has_value());
    (void)original;
}

TEST(CoreCache, ConcurrentWritersLeaveOneValidEntry)
{
    const std::string dir = scratch_dir("concurrent");
    util::Json payload;
    payload.set("rows", util::Json_array{util::Json(1.25), util::Json(2.5)});
    const std::string expected = payload.dump();

    // Every writer stores the same bytes (the determinism contract is
    // what makes that true for real results); whichever rename wins must
    // leave a loadable, checksum-valid entry.
    core::run_indexed(
        16,
        [&dir, &payload](std::size_t, const core::Run_context&) {
            core::Result_cache writer(dir, core::Cache_mode::readwrite, 1);
            writer.store("query", 11, payload);
        },
        core::Runner_options{8});

    core::Result_cache reader(dir, core::Cache_mode::readwrite, 1);
    const auto loaded = reader.load("query", 11);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->dump(), expected);
    EXPECT_EQ(reader.hit_count(), 1u);
}

TEST(CoreCache, ReadModeNeverWrites)
{
    const std::string dir = scratch_dir("readonly");
    util::Json payload;
    payload.set("value", 1.0);
    core::Result_cache reader(dir, core::Cache_mode::read, 1);
    reader.store("query", 3, payload);
    EXPECT_EQ(reader.store_count(), 0u);
    EXPECT_FALSE(std::filesystem::exists(entry_file(dir, 1, "query", 3)));
    EXPECT_FALSE(reader.load("query", 3).has_value());
    EXPECT_EQ(reader.miss_count(), 1u);
}

TEST(CoreCacheGc, DeletesCorruptEntriesAndKeepsValidOnes)
{
    const std::string dir = scratch_dir("gc_corrupt");
    util::Json payload;
    payload.set("value", 42.0);
    core::Result_cache cache(dir, core::Cache_mode::readwrite, 1);
    cache.store("query", 1, payload);
    cache.store("query", 2, payload);
    cache.store("corner", 3, payload);

    // Damage one entry (truncation) and plant a key/path mismatch (a
    // valid envelope copied under the wrong name).
    util::write_file_atomic(entry_file(dir, 1, "query", 2),
                            "{\"version\":1,\"ki");
    std::filesystem::copy_file(
        entry_file(dir, 1, "query", 1), entry_file(dir, 1, "query", 4),
        std::filesystem::copy_options::overwrite_existing);

    const core::Gc_stats stats = core::gc_result_cache(dir);
    EXPECT_EQ(stats.corrupt_deleted, 2u);
    EXPECT_EQ(stats.evicted, 0u);
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_GT(stats.bytes_before, stats.bytes_after);

    // The survivors still load; the damaged files are gone.
    EXPECT_TRUE(cache.load("query", 1).has_value());
    EXPECT_TRUE(cache.load("corner", 3).has_value());
    EXPECT_FALSE(std::filesystem::exists(entry_file(dir, 1, "query", 2)));
    EXPECT_FALSE(std::filesystem::exists(entry_file(dir, 1, "query", 4)));
}

TEST(CoreCacheGc, EvictsOldestFirstUnderAByteBound)
{
    const std::string dir = scratch_dir("gc_evict");
    util::Json payload;
    payload.set("value", 42.0);
    core::Result_cache cache(dir, core::Cache_mode::readwrite, 1);
    cache.store("query", 1, payload);
    cache.store("query", 2, payload);
    cache.store("query", 3, payload);

    // Pin distinct mtimes so "oldest" is unambiguous: 1 oldest, 3 newest.
    namespace fs = std::filesystem;
    const auto now = fs::last_write_time(entry_file(dir, 1, "query", 3));
    fs::last_write_time(entry_file(dir, 1, "query", 1),
                        now - std::chrono::hours(2));
    fs::last_write_time(entry_file(dir, 1, "query", 2),
                        now - std::chrono::hours(1));

    const std::uint64_t each =
        fs::file_size(entry_file(dir, 1, "query", 1));
    core::Gc_options options;
    options.max_bytes = 2 * each;  // room for exactly two entries
    const core::Gc_stats stats = core::gc_result_cache(dir, options);

    EXPECT_EQ(stats.evicted, 1u);
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_LE(stats.bytes_after, *options.max_bytes);
    EXPECT_FALSE(std::filesystem::exists(entry_file(dir, 1, "query", 1)));
    EXPECT_TRUE(cache.load("query", 2).has_value());
    EXPECT_TRUE(cache.load("query", 3).has_value());
}

TEST(CoreCacheGc, ZeroBoundEvictsEverythingValid)
{
    const std::string dir = scratch_dir("gc_zero");
    util::Json payload;
    payload.set("value", 1.0);
    core::Result_cache cache(dir, core::Cache_mode::readwrite, 1);
    cache.store("query", 1, payload);
    cache.store("surface", 2, payload);

    core::Gc_options options;
    options.max_bytes = 0;
    const core::Gc_stats stats = core::gc_result_cache(dir, options);
    EXPECT_EQ(stats.evicted, 2u);
    EXPECT_EQ(stats.entries, 0u);
    EXPECT_EQ(stats.bytes_after, 0u);
}

TEST(CoreCacheGc, MissingDirectoryIsRejected)
{
    EXPECT_THROW(core::gc_result_cache("cache_test_scratch/nope_gc"),
                 util::Precondition_error);
}

TEST(CoreCache, UncachedSessionReportsZeroTrafficAndOffMode)
{
    core::Study_options opts;
    opts.cache.mode = core::Cache_mode::off;
    // `off` wins even with a directory configured (also sidesteps GCC
    // 12's optional<string> maybe-uninitialized false positive at -O3).
    opts.cache.directory = scratch_dir("off");
    const core::Study_session session(tech::n10(), opts);
    EXPECT_EQ(session.cache_mode(), core::Cache_mode::off);
    EXPECT_EQ(session.cache_hit_count(), 0u);
    EXPECT_EQ(session.cache_miss_count(), 0u);
    EXPECT_EQ(session.cache_store_count(), 0u);
}

} // namespace
