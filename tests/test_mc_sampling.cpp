// Tests for the sampling schemes of the Monte-Carlo engine (pseudo-random
// vs Latin hypercube) and the normal-quantile utility they rest on.
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "analytic/params.h"
#include "mc/distribution.h"
#include "pattern/engine.h"
#include "sram/bitline_model.h"
#include "tech/technology.h"
#include "util/contracts.h"
#include "util/numeric.h"

namespace {

using namespace mpsram;

TEST(NormalQuantile, InvertsTheCdf)
{
    for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
        const double z = util::normal_quantile(p);
        EXPECT_NEAR(util::normal_cdf(z), p, 1e-12) << "p = " << p;
    }
}

TEST(NormalQuantile, KnownValues)
{
    EXPECT_NEAR(util::normal_quantile(0.5), 0.0, 1e-12);
    EXPECT_NEAR(util::normal_quantile(0.975), 1.959963985, 1e-7);
    EXPECT_NEAR(util::normal_quantile(0.8413447461), 1.0, 1e-7);
    EXPECT_NEAR(util::normal_quantile(0.0013498980), -3.0, 1e-6);
}

TEST(NormalQuantile, ValidatesDomain)
{
    EXPECT_THROW(util::normal_quantile(0.0), util::Precondition_error);
    EXPECT_THROW(util::normal_quantile(1.0), util::Precondition_error);
}

struct Fixture {
    tech::Technology t = tech::n10();
    extract::Extractor ex{t.metal1};
    sram::Array_config cfg;
    std::unique_ptr<pattern::Patterning_engine> engine;
    geom::Wire_array nominal;
    std::size_t victim = 0;
    analytic::Td_params params;

    Fixture()
    {
        cfg.word_lines = 64;
        cfg.victim_pair = 6;
        engine = pattern::make_engine(tech::Patterning_option::le3, t);
        nominal = engine->decompose(sram::build_metal1_array(t, cfg));
        victim = sram::find_victim_wires(nominal, cfg).bl;
        const auto cell = sram::Cell_electrical::n10(t.feol);
        const auto wires = sram::roll_up_nominal(ex, nominal, t, cfg);
        params = analytic::derive_params(t, cell, wires);
    }

    mc::Tdp_distribution run(mc::Sampling sampling, int samples,
                             std::uint64_t seed = 11)
    {
        mc::Distribution_options mo;
        mo.samples = samples;
        mo.seed = seed;
        mo.sampling = sampling;
        return mc::tdp_distribution(*engine, ex, nominal, victim, params,
                                    64, mo);
    }
};

TEST(Lhs, DeterministicPerSeed)
{
    Fixture f;
    const auto a = f.run(mc::Sampling::latin_hypercube, 300);
    const auto b = f.run(mc::Sampling::latin_hypercube, 300);
    ASSERT_EQ(a.tdp.size(), b.tdp.size());
    for (std::size_t i = 0; i < a.tdp.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.tdp[i], b.tdp[i]);
    }
}

TEST(Lhs, AgreesWithRandomSamplingOnSigma)
{
    // Both estimators target the same distribution.
    Fixture f;
    const auto lhs = f.run(mc::Sampling::latin_hypercube, 4000);
    const auto rnd = f.run(mc::Sampling::pseudo_random, 4000);
    EXPECT_NEAR(lhs.summary.stddev, rnd.summary.stddev,
                0.12 * rnd.summary.stddev);
    EXPECT_NEAR(lhs.summary.mean, rnd.summary.mean, 0.15);
}

TEST(Lhs, LowerSigmaEstimatorVarianceThanRandom)
{
    // The point of LHS: across seeds, the sigma estimate scatters less.
    Fixture f;
    constexpr int samples = 250;
    constexpr int repeats = 12;

    auto spread = [&](mc::Sampling sampling) {
        std::vector<double> sigmas;
        for (int s = 0; s < repeats; ++s) {
            sigmas.push_back(
                f.run(sampling, samples, 1000 + static_cast<unsigned>(s))
                    .summary.stddev);
        }
        const auto [lo, hi] =
            std::minmax_element(sigmas.begin(), sigmas.end());
        return *hi - *lo;
    };

    EXPECT_LT(spread(mc::Sampling::latin_hypercube),
              spread(mc::Sampling::pseudo_random));
}

TEST(Lhs, SamplesRespectTruncation)
{
    Fixture f;
    mc::Distribution_options mo;
    mo.samples = 500;
    mo.sampling = mc::Sampling::latin_hypercube;
    mo.truncate_k = 3.0;
    const auto d = mc::tdp_distribution(*f.engine, f.ex, f.nominal,
                                        f.victim, f.params, 64, mo);
    // Indirect check: rvar of every sample stays within what a 3-sigma CD
    // excursion can produce (the +/-3 nm bound on the victim width).
    for (double r : d.rvar) {
        EXPECT_GT(r, 0.85);
        EXPECT_LT(r, 1.20);
    }
}

} // namespace
