#include "sram/read_sim.h"

#include <gtest/gtest.h>

#include "extract/extractor.h"
#include "util/contracts.h"
#include "spice/analysis.h"

namespace {

using namespace mpsram;

struct Fixture {
    tech::Technology t = tech::n10();
    sram::Cell_electrical cell = sram::Cell_electrical::n10(t.feol);
    extract::Extractor ex{t.metal1};
    sram::Array_config cfg;
    sram::Bitline_electrical wires;

    explicit Fixture(int n)
    {
        cfg.word_lines = n;
        cfg.victim_pair = 6;
        const geom::Wire_array arr = sram::build_metal1_array(t, cfg);
        wires = sram::roll_up_nominal(ex, arr, t, cfg);
    }
};

TEST(ReadSim, SmallArrayReadCompletes)
{
    Fixture f(8);
    sram::Read_netlist net =
        sram::build_read_netlist(f.t, f.cell, f.wires, f.cfg);
    const sram::Read_result r = sram::simulate_read(net);
    ASSERT_TRUE(r.crossed);
    EXPECT_GT(r.td, 0.0);
    EXPECT_LT(r.td, 50e-12);
    EXPECT_GT(r.t_cross, net.timing.wl_mid());
}

TEST(ReadSim, BitLineDischargesBelowComplement)
{
    Fixture f(8);
    sram::Read_netlist net =
        sram::build_read_netlist(f.t, f.cell, f.wires, f.cfg);
    const sram::Read_result r = sram::simulate_read(net);
    ASSERT_TRUE(r.crossed);
    // BL (storing 0) discharges; BLB stays near vdd.
    EXPECT_LT(r.bl_final, r.blb_final);
    EXPECT_GT(r.blb_final, f.t.feol.vdd - 0.1);
}

TEST(ReadSim, ReadTimeGrowsWithArrayLength)
{
    Fixture f8(8);
    sram::Read_netlist n8 =
        sram::build_read_netlist(f8.t, f8.cell, f8.wires, f8.cfg);
    Fixture f32(32);
    sram::Read_netlist n32 =
        sram::build_read_netlist(f32.t, f32.cell, f32.wires, f32.cfg);

    const double td8 = sram::simulate_read(n8).td;
    const double td32 = sram::simulate_read(n32).td;
    EXPECT_GT(td32, 2.0 * td8);
}

TEST(ReadSim, ReadIsNonDestructive)
{
    // After the read window the accessed cell must still store its data:
    // the canonical read-stability requirement.
    Fixture f(8);
    sram::Read_netlist net =
        sram::build_read_netlist(f.t, f.cell, f.wires, f.cfg);

    spice::Transient_options topts;
    topts.tstop = net.timing.wl_mid() + 200e-12;
    topts.dc = net.dc;
    const auto waves = spice::run_transient(
        net.circuit, {net.q, net.qb}, topts);
    EXPECT_LT(waves.final_value(net.circuit.node_name(net.q)), 0.25);
    EXPECT_GT(waves.final_value(net.circuit.node_name(net.qb)), 0.5);
}

TEST(ReadSim, HigherBitlineCapacitanceSlowsRead)
{
    Fixture f(8);
    sram::Read_netlist nominal =
        sram::build_read_netlist(f.t, f.cell, f.wires, f.cfg);
    const double td_nom = sram::simulate_read(nominal).td;

    sram::Bitline_electrical heavier = f.wires;
    heavier.c_bl_cell *= 1.6;
    heavier.c_blb_cell *= 1.6;
    sram::Read_netlist loaded =
        sram::build_read_netlist(f.t, f.cell, heavier, f.cfg);
    const double td_loaded = sram::simulate_read(loaded).td;

    EXPECT_GT(td_loaded, 1.1 * td_nom);
}

TEST(ReadSim, HigherVssRailResistanceSlowsRead)
{
    // The Section III-A mechanism in isolation.
    Fixture f(32);
    sram::Read_netlist nominal =
        sram::build_read_netlist(f.t, f.cell, f.wires, f.cfg);
    const double td_nom = sram::simulate_read(nominal).td;

    sram::Bitline_electrical degraded = f.wires;
    degraded.r_vss_cell *= 2.0;
    sram::Read_netlist slow =
        sram::build_read_netlist(f.t, f.cell, degraded, f.cfg);
    const double td_slow = sram::simulate_read(slow).td;
    EXPECT_GT(td_slow, td_nom);
}

TEST(ReadSim, ValidatesOptions)
{
    Fixture f(4);
    sram::Read_netlist net =
        sram::build_read_netlist(f.t, f.cell, f.wires, f.cfg);
    sram::Read_options opts;
    opts.nominal_steps = 0;
    EXPECT_THROW(sram::simulate_read(net, opts), util::Precondition_error);
}

} // namespace
