#include "mc/distribution.h"
#include "mc/worst_case.h"

#include <gtest/gtest.h>

#include "analytic/params.h"
#include "pattern/engine.h"
#include "sram/bitline_model.h"
#include "tech/technology.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace {

using namespace mpsram;

struct Fixture {
    tech::Technology t = tech::n10();
    extract::Extractor ex{t.metal1};
    sram::Array_config cfg;
    std::unique_ptr<pattern::Patterning_engine> engine;
    geom::Wire_array nominal;
    sram::Victim_wires victims;
    analytic::Td_params params;

    explicit Fixture(tech::Patterning_option option)
    {
        cfg.word_lines = 64;
        cfg.victim_pair = 6;
        engine = pattern::make_engine(option, t);
        nominal = engine->decompose(sram::build_metal1_array(t, cfg));
        victims = sram::find_victim_wires(nominal, cfg);
        const auto cell = sram::Cell_electrical::n10(t.feol);
        const auto wires = sram::roll_up_nominal(ex, nominal, t, cfg);
        params = analytic::derive_params(t, cell, wires);
    }
};

TEST(WorstCase, CornerBeatsRandomSamples)
{
    // Property: the enumerated worst corner's Cbl is an upper bound for
    // random in-spec samples (3-sigma truncated).
    for (const auto option : tech::all_patterning_options) {
        Fixture f(option);
        const auto wc = mc::find_worst_case(*f.engine, f.ex, f.nominal,
                                            f.victims.bl, f.victims.vss);
        util::Rng rng(5);
        for (int i = 0; i < 300; ++i) {
            const auto s = f.engine->sample_gaussian(rng, 3.0);
            const auto realized = f.engine->realize(f.nominal, s);
            const double cbl =
                f.ex.wire_rc(realized, f.victims.bl).c_total();
            EXPECT_LE(cbl, wc.corner.metric * (1.0 + 1e-9))
                << tech::to_string(option) << " sample " << i;
        }
    }
}

TEST(WorstCase, Le3CornerSignatureMatchesPaper)
{
    // Table I row 1: all CDs +3s, opposing overlay signs.
    Fixture f(tech::Patterning_option::le3);
    const auto wc = mc::find_worst_case(*f.engine, f.ex, f.nominal,
                                        f.victims.bl, f.victims.vss);
    const auto& axes = f.engine->axes();
    // CDs all at +3 sigma.
    for (int a : {0, 1, 2}) {
        EXPECT_NEAR(wc.corner.sample[static_cast<std::size_t>(a)],
                    3.0 * axes[static_cast<std::size_t>(a)].sigma, 1e-15);
    }
    // Overlays maxed out with opposite signs.
    const double ol_b = wc.corner.sample[3];
    const double ol_c = wc.corner.sample[4];
    EXPECT_NEAR(std::abs(ol_b), 3.0 * axes[3].sigma, 1e-15);
    EXPECT_NEAR(std::abs(ol_c), 3.0 * axes[4].sigma, 1e-15);
    EXPECT_LT(ol_b * ol_c, 0.0);
}

TEST(WorstCase, SadpShowsRvssAntiCorrelation)
{
    Fixture f(tech::Patterning_option::sadp);
    const auto wc = mc::find_worst_case(*f.engine, f.ex, f.nominal,
                                        f.victims.bl, f.victims.vss);
    // Bit line gets wider (R down); the mandrel rail narrower (R up).
    EXPECT_LT(wc.variation.r_factor, 0.9);
    EXPECT_GT(wc.vss_r_factor, 1.1);
}

TEST(WorstCase, Le3DwarfsSadpAndEuvInCbl)
{
    Fixture le3(tech::Patterning_option::le3);
    Fixture sadp(tech::Patterning_option::sadp);
    Fixture euv(tech::Patterning_option::euv);
    const auto wc_le3 = mc::find_worst_case(
        *le3.engine, le3.ex, le3.nominal, le3.victims.bl, le3.victims.vss);
    const auto wc_sadp =
        mc::find_worst_case(*sadp.engine, sadp.ex, sadp.nominal,
                            sadp.victims.bl, sadp.victims.vss);
    const auto wc_euv = mc::find_worst_case(
        *euv.engine, euv.ex, euv.nominal, euv.victims.bl, euv.victims.vss);

    EXPECT_GT(wc_le3.variation.c_percent(),
              5.0 * wc_euv.variation.c_percent());
    EXPECT_GT(wc_euv.variation.c_percent(),
              wc_sadp.variation.c_percent());
}

TEST(Distribution, DeterministicForAGivenSeed)
{
    Fixture f(tech::Patterning_option::le3);
    mc::Distribution_options mo;
    mo.samples = 200;
    mo.seed = 77;
    const auto d1 = mc::tdp_distribution(*f.engine, f.ex, f.nominal,
                                         f.victims.bl, f.params, 64, mo);
    const auto d2 = mc::tdp_distribution(*f.engine, f.ex, f.nominal,
                                         f.victims.bl, f.params, 64, mo);
    ASSERT_EQ(d1.tdp.size(), d2.tdp.size());
    for (std::size_t i = 0; i < d1.tdp.size(); ++i) {
        EXPECT_DOUBLE_EQ(d1.tdp[i], d2.tdp[i]);
    }
}

TEST(Distribution, DifferentSeedsDiffer)
{
    Fixture f(tech::Patterning_option::le3);
    mc::Distribution_options a;
    a.samples = 50;
    a.seed = 1;
    mc::Distribution_options b = a;
    b.seed = 2;
    const auto d1 = mc::tdp_distribution(*f.engine, f.ex, f.nominal,
                                         f.victims.bl, f.params, 64, a);
    const auto d2 = mc::tdp_distribution(*f.engine, f.ex, f.nominal,
                                         f.victims.bl, f.params, 64, b);
    EXPECT_NE(d1.tdp[0], d2.tdp[0]);
}

TEST(Distribution, SampleVectorsAligned)
{
    Fixture f(tech::Patterning_option::sadp);
    mc::Distribution_options mo;
    mo.samples = 500;
    const auto d = mc::tdp_distribution(*f.engine, f.ex, f.nominal,
                                        f.victims.bl, f.params, 64, mo);
    EXPECT_EQ(d.tdp.size(), 500u);
    EXPECT_EQ(d.rvar.size(), 500u);
    EXPECT_EQ(d.cvar.size(), 500u);
    EXPECT_EQ(d.summary.count, 500u);
    // Each tdp sample reproducible from its factors.
    for (std::size_t i = 0; i < 20; ++i) {
        EXPECT_NEAR(d.tdp[i],
                    analytic::tdp_percent(f.params, 64, d.rvar[i],
                                          d.cvar[i]),
                    1e-9);
    }
}

TEST(Distribution, Le3WiderThanSadp)
{
    // The paper's Table IV headline at MC level.
    Fixture le3(tech::Patterning_option::le3);
    Fixture sadp(tech::Patterning_option::sadp);
    mc::Distribution_options mo;
    mo.samples = 4000;
    const auto d_le3 =
        mc::tdp_distribution(*le3.engine, le3.ex, le3.nominal,
                             le3.victims.bl, le3.params, 64, mo);
    const auto d_sadp =
        mc::tdp_distribution(*sadp.engine, sadp.ex, sadp.nominal,
                             sadp.victims.bl, sadp.params, 64, mo);
    EXPECT_GT(d_le3.summary.stddev, 2.0 * d_sadp.summary.stddev);
}

TEST(Distribution, MeanTdpIsSmallComparedToWorstCase)
{
    // Worst case is a tail event: the MC mean must sit far below it.
    Fixture f(tech::Patterning_option::le3);
    mc::Distribution_options mo;
    mo.samples = 4000;
    const auto d = mc::tdp_distribution(*f.engine, f.ex, f.nominal,
                                        f.victims.bl, f.params, 64, mo);
    EXPECT_LT(d.summary.mean, 2.0);  // vs ~18% at the worst corner
}

TEST(Distribution, Validation)
{
    Fixture f(tech::Patterning_option::euv);
    mc::Distribution_options mo;
    mo.samples = 0;
    EXPECT_THROW(mc::tdp_distribution(*f.engine, f.ex, f.nominal,
                                      f.victims.bl, f.params, 64, mo),
                 util::Precondition_error);
}

} // namespace
