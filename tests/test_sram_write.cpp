#include "sram/write_sim.h"

#include <cmath>

#include <gtest/gtest.h>

#include "extract/extractor.h"
#include "pattern/engine.h"
#include "util/contracts.h"

namespace {

using namespace mpsram;

struct Fixture {
    tech::Technology t = tech::n10();
    sram::Cell_electrical cell = sram::Cell_electrical::n10(t.feol);
    extract::Extractor ex{t.metal1};
    sram::Array_config cfg;
    sram::Bitline_electrical wires;

    explicit Fixture(int n)
    {
        cfg.word_lines = n;
        cfg.victim_pair = 6;
        const geom::Wire_array arr = sram::build_metal1_array(t, cfg);
        wires = sram::roll_up_nominal(ex, arr, t, cfg);
    }
};

TEST(WriteSim, CellFlipsAndWriteTimeIsPositive)
{
    Fixture f(8);
    sram::Write_netlist net =
        sram::build_write_netlist(f.t, f.cell, f.wires, f.cfg);
    const sram::Write_result r = sram::simulate_write(net);
    ASSERT_TRUE(r.flipped);
    EXPECT_GT(r.tw, 0.0);
    EXPECT_LT(r.tw, 300e-12);
    // Post-write data: q high, qb low.
    EXPECT_GT(r.q_final, 0.6);
    EXPECT_LT(r.qb_final, 0.1);
}

TEST(WriteSim, OnlyTheAccessedCellFlips)
{
    Fixture f(6);
    sram::Write_netlist net =
        sram::build_write_netlist(f.t, f.cell, f.wires, f.cfg);
    sram::simulate_write(net);

    // Re-run to inspect every cell's final state.
    spice::Transient_options topts;
    topts.tstop = net.timing.wl_mid() + 400e-12;
    topts.dc = net.dc;
    std::vector<spice::Node> probes;
    for (int i = 0; i < 6; ++i) {
        probes.push_back(net.circuit.find_node("q" + std::to_string(i)));
    }
    const auto waves = spice::run_transient(net.circuit, probes, topts);
    for (int i = 0; i < 6; ++i) {
        const double q = waves.final_value("q" + std::to_string(i));
        if (i == 5) {
            EXPECT_GT(q, 0.6) << "accessed cell must flip";
        } else {
            EXPECT_LT(q, 0.1) << "idle cell " << i << " must hold";
        }
    }
}

TEST(WriteSim, WriteTimeGrowsWithArrayLength)
{
    Fixture f8(8);
    sram::Write_netlist n8 =
        sram::build_write_netlist(f8.t, f8.cell, f8.wires, f8.cfg);
    Fixture f32(32);
    sram::Write_netlist n32 =
        sram::build_write_netlist(f32.t, f32.cell, f32.wires, f32.cfg);
    const double tw8 = sram::simulate_write(n8).tw;
    const double tw32 = sram::simulate_write(n32).tw;
    ASSERT_GT(tw8, 0.0);
    ASSERT_GT(tw32, 0.0);
    EXPECT_GT(tw32, tw8);
}

TEST(WriteSim, WorstCaseBitlineVariabilitySlowsTheWrite)
{
    // The LE3 worst corner raises the BLB ladder's RC, which the write
    // driver must discharge: tw degrades, same mechanism as the read.
    const int n = 16;
    Fixture f(n);

    sram::Write_netlist nominal =
        sram::build_write_netlist(f.t, f.cell, f.wires, f.cfg);
    const double tw_nom = sram::simulate_write(nominal).tw;

    const auto engine =
        pattern::make_engine(tech::Patterning_option::le3, f.t);
    const geom::Wire_array dec =
        engine->decompose(sram::build_metal1_array(f.t, f.cfg));
    // Worst corner from the Table I search: all CDs +3s, opposing OL.
    pattern::Process_sample s(5, 0.0);
    const auto& axes = engine->axes();
    s[0] = 3.0 * axes[0].sigma;
    s[1] = 3.0 * axes[1].sigma;
    s[2] = 3.0 * axes[2].sigma;
    s[3] = -3.0 * axes[3].sigma;
    s[4] = 3.0 * axes[4].sigma;
    const geom::Wire_array realized = engine->realize(dec, s);
    const auto varied =
        sram::roll_up_bitline(f.ex, dec, realized, f.t, f.cfg);

    sram::Write_netlist worst =
        sram::build_write_netlist(f.t, f.cell, varied, f.cfg);
    const double tw_worst = sram::simulate_write(worst).tw;

    ASSERT_GT(tw_nom, 0.0);
    ASSERT_GT(tw_worst, 0.0);
    EXPECT_GT(tw_worst, tw_nom);
}

TEST(WriteSim, AdaptivePolicyAgreesWithReference)
{
    Fixture f(8);
    sram::Write_netlist ref_net =
        sram::build_write_netlist(f.t, f.cell, f.wires, f.cfg);
    sram::Write_options ref_opts;
    ref_opts.accuracy = sram::Sim_accuracy::reference;
    const auto ref = sram::simulate_write(ref_net, ref_opts);

    sram::Write_netlist fast_net =
        sram::build_write_netlist(f.t, f.cell, f.wires, f.cfg);
    sram::Write_options fast_opts;
    fast_opts.accuracy = sram::Sim_accuracy::fast;
    const auto fast = sram::simulate_write(fast_net, fast_opts);

    ASSERT_TRUE(ref.flipped);
    ASSERT_TRUE(fast.flipped);
    EXPECT_NEAR(fast.tw, ref.tw, 0.005 * ref.tw);
    EXPECT_NEAR(fast.q_final, ref.q_final, 2e-3);
    EXPECT_NEAR(fast.qb_final, ref.qb_final, 2e-3);
    // The adaptive engine must be meaningfully cheaper even on this small
    // column (the write waveform settles early in the window).
    EXPECT_LT(fast.steps.total_attempts(), ref.steps.total_attempts());
}

TEST(WriteSim, ValidatesInputs)
{
    Fixture f(4);
    sram::Write_netlist net =
        sram::build_write_netlist(f.t, f.cell, f.wires, f.cfg);
    sram::Write_options no_steps;
    no_steps.nominal_steps = 0;
    EXPECT_THROW(sram::simulate_write(net, no_steps),
                 util::Precondition_error);
    sram::Write_options bad_window;
    bad_window.nominal_steps = 100;
    bad_window.window = -1.0;
    EXPECT_THROW(sram::simulate_write(net, bad_window),
                 util::Precondition_error);
    sram::Write_options bad_padding;
    bad_padding.window_per_cell = -1.0;
    EXPECT_THROW(sram::simulate_write(net, bad_padding),
                 util::Precondition_error);
}

TEST(WriteSim, ValidatesTiming)
{
    Fixture f(4);
    // The drive must fire after the precharge releases...
    sram::Write_timing drive_first;
    drive_first.t_precharge_off = 50e-12;
    drive_first.t_drive_on = 20e-12;
    EXPECT_THROW(
        sram::build_write_netlist(f.t, f.cell, f.wires, f.cfg, drive_first),
        util::Precondition_error);
    // ... and control edges need a positive rise/fall time.
    sram::Write_timing no_edge;
    no_edge.edge_time = 0.0;
    EXPECT_THROW(
        sram::build_write_netlist(f.t, f.cell, f.wires, f.cfg, no_edge),
        util::Precondition_error);
}

TEST(WriteSim, NonFlipReportsNanNotNegativeSentinel)
{
    Fixture f(8);
    sram::Write_netlist net =
        sram::build_write_netlist(f.t, f.cell, f.wires, f.cfg);
    // A window far too short for the flip: a legitimate failed write.
    sram::Write_options blink;
    blink.window = 1e-12;
    blink.window_per_cell = 0.0;
    const sram::Write_result r = sram::simulate_write(net, blink);
    EXPECT_FALSE(r.flipped);
    EXPECT_TRUE(std::isnan(r.tw));
    // Penalty arithmetic on a failed write poisons the result instead of
    // producing a plausible-looking negative percentage.
    const double twp = (r.tw / 20e-12 - 1.0) * 100.0;
    EXPECT_TRUE(std::isnan(twp));
}

} // namespace
