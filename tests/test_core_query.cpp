// The query layer (PR 5): every legacy Variability_study batch API must
// be bitwise equal to its Query equivalent at 1/2/8 threads, the disturb
// metric must run deterministically through the same generic run() path,
// and Result_table's typed access must round-trip.
#include "core/query.h"

#include <cmath>
#include <stdexcept>
#include <variant>

#include <gtest/gtest.h>

#include "core/session.h"
#include "core/study.h"
#include "util/contracts.h"

namespace {

using namespace mpsram;
using core::Metric;
using core::Query;
using core::Query_case;

// Cheap-but-real sweep, same sizes as the read/write-sweep tests.
constexpr int kSizes[] = {8, 16, 24};

// The parity contract asks for bitwise equality at 1/2/8 threads.
constexpr int kThreadCounts[] = {1, 2, 8};

// --- legacy wrapper parity ---------------------------------------------------
// Each test runs the legacy method and the equivalent query on FRESH
// objects per thread count (no memo crosstalk) and asserts bitwise
// equality of every field.

TEST(QueryParity, WorstCaseRcMatchesLegacy)
{
    for (const int threads : kThreadCounts) {
        const core::Runner_options runner{threads};

        const core::Variability_study study;
        const auto legacy = study.worst_case_all_options(-1.0, runner);

        const core::Study_session session;
        const auto table = session.run(
            Query(Metric::worst_case_rc)
                .over_options(tech::all_patterning_options)
                .on(runner));
        ASSERT_EQ(table.size(), legacy.size());
        for (std::size_t i = 0; i < legacy.size(); ++i) {
            EXPECT_EQ(table.as<core::Worst_case_row>(i), legacy[i])
                << "threads=" << threads << " option=" << i;
        }

        // The single-option wrapper, same session (memo hit, same value).
        const auto single =
            study.worst_case(tech::all_patterning_options[0], -1.0, runner);
        EXPECT_EQ(single, legacy[0]);
    }
}

TEST(QueryParity, ReadSweepMatchesLegacy)
{
    for (const int threads : kThreadCounts) {
        const core::Runner_options runner{threads};

        const core::Variability_study study;
        const auto legacy =
            study.read_sweep(tech::Patterning_option::sadp, kSizes, runner);

        const core::Study_session session;
        const auto table = session.run(
            Query(Metric::read_td)
                .over_word_lines(tech::Patterning_option::sadp, kSizes)
                .on(runner));
        ASSERT_EQ(table.size(), legacy.size());
        for (std::size_t i = 0; i < legacy.size(); ++i) {
            EXPECT_EQ(table.as<core::Read_row>(i), legacy[i])
                << "threads=" << threads << " size=" << kSizes[i];
        }
    }
}

TEST(QueryParity, NominalTdBatchMatchesLegacy)
{
    for (const int threads : kThreadCounts) {
        const core::Runner_options runner{threads};

        const core::Variability_study study;
        const auto legacy = study.nominal_td_batch(kSizes, runner);

        const core::Study_session session;
        const auto table = session.run(
            Query(Metric::nominal_td)
                .over_word_lines(tech::Patterning_option::euv, kSizes)
                .on(runner));
        for (std::size_t i = 0; i < legacy.size(); ++i) {
            EXPECT_EQ(table.as<core::Nominal_td_row>(i), legacy[i])
                << "threads=" << threads << " size=" << kSizes[i];
        }
    }
}

TEST(QueryParity, WorstCaseTdpBatchMatchesLegacy)
{
    const std::vector<core::Variability_study::Tdp_case> cases = {
        {tech::Patterning_option::euv, 8},
        {tech::Patterning_option::sadp, 8},
        {tech::Patterning_option::euv, 16},
        {tech::Patterning_option::sadp, 16},
    };

    for (const int threads : kThreadCounts) {
        const core::Runner_options runner{threads};

        const core::Variability_study study;
        const auto legacy = study.worst_case_tdp_batch(cases, runner);

        const core::Study_session session;
        Query query(Metric::worst_case_tdp);
        query.cases.assign(cases.begin(), cases.end());
        const auto table = session.run(query.on(runner));
        for (std::size_t i = 0; i < legacy.size(); ++i) {
            EXPECT_EQ(table.as<core::Tdp_row>(i), legacy[i])
                << "threads=" << threads << " case=" << i;
        }
    }
}

TEST(QueryParity, McTdpBatchMatchesLegacy)
{
    const std::vector<core::Variability_study::Mc_case> cases = {
        {tech::Patterning_option::le3, 16, 8e-9},
        {tech::Patterning_option::euv, 16},
    };
    mc::Distribution_options mo;
    mo.samples = 400;
    mo.seed = 42;

    for (const int threads : kThreadCounts) {
        mc::Distribution_options threaded = mo;
        threaded.runner.threads = threads;

        const core::Variability_study study;
        const auto legacy = study.mc_tdp_batch(cases, threaded);

        const core::Study_session session;
        Query query(Metric::mc_tdp);
        query.cases.assign(cases.begin(), cases.end());
        const auto table = session.run(query.with_mc(threaded));
        for (std::size_t i = 0; i < legacy.size(); ++i) {
            EXPECT_EQ(table.as<mc::Tdp_distribution>(i), legacy[i])
                << "threads=" << threads << " case=" << i;
        }
    }
}

TEST(QueryParity, WriteSweepAndNominalTwMatchLegacy)
{
    for (const int threads : kThreadCounts) {
        const core::Runner_options runner{threads};

        const core::Variability_study study;
        const auto legacy_rows =
            study.write_sweep(tech::Patterning_option::euv, kSizes, runner);
        const auto legacy_tw = study.nominal_tw_batch(kSizes, runner);

        const core::Study_session session;
        const auto table = session.run(
            Query(Metric::write_tw)
                .over_word_lines(tech::Patterning_option::euv, kSizes)
                .on(runner));
        const auto tw_table = session.run(
            Query(Metric::nominal_tw)
                .over_word_lines(tech::Patterning_option::euv, kSizes)
                .on(runner));
        for (std::size_t i = 0; i < legacy_rows.size(); ++i) {
            EXPECT_EQ(table.as<core::Write_row>(i), legacy_rows[i])
                << "threads=" << threads << " size=" << kSizes[i];
            EXPECT_EQ(tw_table.as<core::Nominal_tw_row>(i).tw_simulation,
                      legacy_tw[i]);
            // The registered write formula underestimates SPICE like the
            // td formula does, but is a real time.
            EXPECT_GT(tw_table.as<core::Nominal_tw_row>(i).tw_formula, 0.0);
            EXPECT_LT(tw_table.as<core::Nominal_tw_row>(i).tw_formula,
                      legacy_tw[i]);
        }
    }
}

TEST(QueryParity, McTwpMatchesLegacySpiceEngine)
{
    // Every sample is a SPICE transient: keep the counts small.
    mc::Distribution_options mo;
    mo.samples = 16;
    mo.seed = 7;
    const Query_case qc{tech::Patterning_option::le3, 8};

    for (const int threads : kThreadCounts) {
        mc::Distribution_options threaded = mo;
        threaded.runner.threads = threads;

        const core::Variability_study study;
        const auto legacy =
            study.mc_twp(qc.option, qc.word_lines, threaded);

        const core::Study_session session;
        const auto table = session.run(
            Query(Metric::mc_twp).with_case(qc).with_mc(threaded));
        EXPECT_EQ(table.as<mc::Tdp_distribution>(0), legacy)
            << "threads=" << threads;
    }
}

// --- the formula twp engine --------------------------------------------------

TEST(QueryTwpFormula, DeterministicCheapAndOrdered)
{
    // The registered analytic tw model as the sample engine: read-MC
    // sample counts with no transient in the loop.
    mc::Distribution_options mo;
    mo.samples = 4000;
    mo.seed = 11;

    const core::Study_session session;
    core::Result_table serial;
    for (const int threads : kThreadCounts) {
        mc::Distribution_options threaded = mo;
        threaded.runner.threads = threads;
        const auto table = session.run(
            Query(Metric::mc_twp)
                .over_options(tech::all_patterning_options, 16)
                .with_mc(threaded)
                .with_twp_engine(core::Twp_engine::formula));
        if (threads == 1) {
            serial = table;
        } else {
            EXPECT_EQ(table, serial) << "threads=" << threads;
        }
    }

    // LE3 spreads twp wider than EUV, like the read penalty.
    const auto& le3 = serial.as<mc::Tdp_distribution>(0);
    const auto& euv = serial.as<mc::Tdp_distribution>(2);
    EXPECT_GT(le3.summary.stddev, euv.summary.stddev);
    EXPECT_GT(le3.summary.stddev, 0.0);
}

// --- the disturb metric ------------------------------------------------------

TEST(QueryDisturb, DeterministicAtAnyThreadCount)
{
    core::Result_table serial;
    for (const int threads : kThreadCounts) {
        const core::Study_session session;
        const auto table = session.run(
            Query(Metric::disturb)
                .over_word_lines(tech::Patterning_option::sadp, kSizes)
                .on(core::Runner_options{threads}));
        if (threads == 1) {
            serial = table;
        } else {
            EXPECT_EQ(table, serial) << "threads=" << threads;
        }
    }

    // The rows are physical: a real, non-destructive bump.
    const double vdd = tech::n10().feol.vdd;
    for (std::size_t i = 0; i < serial.size(); ++i) {
        const auto& row = serial.as<core::Disturb_row>(i);
        EXPECT_GT(row.v_bump_nominal, 0.02 * vdd);
        EXPECT_LT(row.v_bump_nominal, 0.4 * vdd);
        EXPECT_GT(row.v_bump_varied, 0.0);
        EXPECT_TRUE(std::isfinite(row.disturb_percent));
    }
}

TEST(QueryDisturb, SharesTheWorstCaseMemoWithReadAndWrite)
{
    // The disturb metric reuses the same promise-backed corner memo as
    // every other metric: one enumeration per (option, n, ol) key across
    // disturb, read and write queries.
    const core::Study_session session;
    EXPECT_EQ(session.corner_search_count(), 0u);

    const Query_case qc{tech::Patterning_option::sadp, 8};
    session.run(Query(Metric::disturb).with_case(qc));
    EXPECT_EQ(session.corner_search_count(), 1u);
    session.run(Query(Metric::read_td).with_case(qc));
    session.run(Query(Metric::write_tw).with_case(qc));
    EXPECT_EQ(session.corner_search_count(), 1u);
}

// --- accuracy override -------------------------------------------------------

TEST(QueryAccuracy, OverrideMatchesPinnedSessionAndKeepsMemosSeparate)
{
    const Query query = Query(Metric::read_td)
                            .over_word_lines(tech::Patterning_option::euv,
                                             std::vector<int>{8, 16});

    core::Study_options pinned;
    pinned.read.accuracy = sram::Sim_accuracy::reference;
    const core::Study_session reference_session(tech::n10(), pinned);
    const auto pinned_table = reference_session.run(query);

    // One mixed session pinned to the fast engine (explicitly — the
    // reference-policy ctest leg overrides the process default through
    // the environment): a reference-override query must equal the
    // pinned session bitwise, and the fast rows must be unaffected by
    // the reference rows sharing the nominal memo map.
    core::Study_options fast_opts;
    fast_opts.read.accuracy = sram::Sim_accuracy::fast;
    const core::Study_session mixed(tech::n10(), fast_opts);
    const auto fast_before = mixed.run(query);
    const auto overridden = mixed.run(
        Query(query).with_accuracy(sram::Sim_accuracy::reference));
    const auto fast_after = mixed.run(query);

    EXPECT_EQ(overridden, pinned_table);
    EXPECT_EQ(fast_before, fast_after);
    // The engines genuinely differ, so the memo keying is load-bearing.
    EXPECT_NE(overridden.as<core::Read_row>(0).td_nominal,
              fast_before.as<core::Read_row>(0).td_nominal);
}

// --- Result_table typed access -----------------------------------------------

TEST(ResultTable, TypedAccessRoundTripsAndMismatchThrows)
{
    const core::Study_session session;
    const auto table = session.run(
        Query(Metric::nominal_td)
            .over_word_lines(tech::Patterning_option::euv,
                             std::vector<int>{8, 16}));

    ASSERT_EQ(table.size(), 2u);
    EXPECT_EQ(table.metric(), Metric::nominal_td);

    // Axes round-trip, with the default word_lines resolved.
    EXPECT_EQ(table.axes(0).word_lines, 8);
    EXPECT_EQ(table.axes(1).word_lines, 16);

    // as<Row> == raw variant == column<Row> view.
    const auto& row = table.as<core::Nominal_td_row>(1);
    EXPECT_EQ(row, std::get<core::Nominal_td_row>(table.raw(1)));
    const auto rows = table.column<core::Nominal_td_row>();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[1], row);
    EXPECT_GT(rows[1].td_simulation, rows[0].td_simulation);

    // Wrong row type fails loudly, wrong index throws.
    EXPECT_THROW(table.as<core::Read_row>(0), std::bad_variant_access);
    EXPECT_THROW(table.raw(2), util::Precondition_error);
    EXPECT_THROW(table.axes(2), util::Precondition_error);
}

TEST(ResultTable, DefaultWordLinesResolveToSessionDefault)
{
    core::Study_options opts;
    opts.array.word_lines = 8;
    const core::Study_session session(tech::n10(), opts);
    const auto table = session.run(
        Query(Metric::nominal_td)
            .with_case({tech::Patterning_option::euv, 0}));
    EXPECT_EQ(table.axes(0).word_lines, 8);
}

TEST(ResultTable, EmptyQueryYieldsEmptyTable)
{
    const core::Study_session session;
    const auto table = session.run(Query(Metric::read_td));
    EXPECT_TRUE(table.empty());
    EXPECT_EQ(table.size(), 0u);
}

// --- registry sanity ---------------------------------------------------------

TEST(MetricRegistry, DescriptorsMatchTheEnum)
{
    for (const Metric m :
         {Metric::worst_case_rc, Metric::read_td, Metric::nominal_td,
          Metric::worst_case_tdp, Metric::mc_tdp, Metric::write_tw,
          Metric::nominal_tw, Metric::mc_twp, Metric::disturb}) {
        const core::Metric_descriptor& d = core::metric_descriptor(m);
        EXPECT_EQ(d.name, core::to_string(m));
        EXPECT_NE(d.eval, nullptr);
    }
    // The per-case-parallel metrics vs the internally-parallel ones.
    EXPECT_FALSE(core::metric_descriptor(Metric::read_td).serial_cases);
    EXPECT_TRUE(core::metric_descriptor(Metric::mc_tdp).serial_cases);
    EXPECT_TRUE(
        core::metric_descriptor(Metric::worst_case_rc).serial_cases);
}

} // namespace
