// The surrogate Monte-Carlo tier (mc/surrogate.h) on synthetic surfaces:
// cross-tier sample identity, streaming-vs-stored moment parity, bitwise
// thread determinism, and the importance-sampled tail quantiles against
// brute-force order statistics of the same surface.
#include "mc/surrogate.h"

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "mc/distribution.h"
#include "pattern/engine.h"
#include "tech/technology.h"
#include "util/contracts.h"
#include "util/numeric.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using namespace mpsram;

/// Synthetic calibrated surfaces over an engine's axes: a known quadratic
/// metric (exactly representable, so the fit itself adds no error) plus
/// mild factor surfaces — no SPICE involved.
analytic::Yield_surfaces make_surfaces(
    const pattern::Patterning_engine& engine)
{
    const auto& axes = engine.axes();
    std::vector<double> half;
    for (const auto& axis : axes) half.push_back(3.0 * axis.sigma);

    const auto points = analytic::quadratic_design(half);
    std::vector<double> metric;
    std::vector<double> rvar;
    std::vector<double> cvar;
    for (const auto& p : points) {
        double m = 5.0;
        double r = 1.0;
        double c = 1.0;
        for (std::size_t a = 0; a < p.size(); ++a) {
            const double z = p[a] / half[a];
            m += 2.0 * z + 0.5 * z * z;
            r += 0.1 * z;
            c -= 0.05 * z;
        }
        metric.push_back(m);
        rvar.push_back(r);
        cvar.push_back(c);
    }
    analytic::Yield_surfaces s;
    s.metric = analytic::Response_surface::fit(points, metric, half);
    s.rvar = analytic::Response_surface::fit(points, rvar, half);
    s.cvar = analytic::Response_surface::fit(points, cvar, half);
    s.design_points = points.size();
    return s;
}

struct Fixture {
    tech::Technology t = tech::n10();
    std::unique_ptr<pattern::Patterning_engine> engine;
    analytic::Yield_surfaces surfaces;

    explicit Fixture(tech::Patterning_option option)
        : engine(pattern::make_engine(option, t)),
          surfaces(make_surfaces(*engine))
    {
    }
};

TEST(SurrogateDistribution, DrawsTheExactEnginesSamples)
{
    // Sample i must be the identical process sample the exact tiers draw:
    // re-derive the substream by hand and evaluate the surface directly.
    Fixture f(tech::Patterning_option::le3);
    mc::Distribution_options opts;
    opts.samples = 8;
    const auto dist =
        mc::surrogate_distribution(*f.engine, f.surfaces, opts);
    ASSERT_EQ(dist.tdp.size(), 8u);

    const std::uint64_t base_seed =
        util::Rng(opts.seed).child(f.engine->name()).seed();
    for (std::size_t i = 0; i < 8; ++i) {
        util::Rng rng = util::Rng::stream(base_seed, i);
        pattern::Process_sample x;
        for (const auto& axis : f.engine->axes()) {
            x.push_back(
                rng.truncated_normal(0.0, axis.sigma, opts.truncate_k));
        }
        EXPECT_DOUBLE_EQ(dist.tdp[i], f.surfaces.metric.value(x));
        EXPECT_DOUBLE_EQ(dist.rvar[i], f.surfaces.rvar.value(x));
        EXPECT_DOUBLE_EQ(dist.cvar[i], f.surfaces.cvar.value(x));
    }
}

TEST(SurrogateDistribution, StreamingMatchesStoredMoments)
{
    Fixture f(tech::Patterning_option::sadp);
    mc::Distribution_options stored;
    stored.samples = 50000;
    mc::Distribution_options streaming = stored;
    streaming.store_samples = false;

    const auto a = mc::surrogate_distribution(*f.engine, f.surfaces, stored);
    const auto b =
        mc::surrogate_distribution(*f.engine, f.surfaces, streaming);

    EXPECT_EQ(a.tdp.size(), 50000u);
    EXPECT_TRUE(b.tdp.empty());  // memory-flat: no sample vectors
    EXPECT_TRUE(b.rvar.empty());
    EXPECT_EQ(b.summary.count, 50000u);
    EXPECT_TRUE(util::bits_equal(a.summary.mean, b.summary.mean));
    EXPECT_TRUE(util::bits_equal(a.summary.stddev, b.summary.stddev));
    EXPECT_TRUE(util::bits_equal(a.summary.min, b.summary.min));
    EXPECT_TRUE(util::bits_equal(a.summary.max, b.summary.max));
    // The streamed quantiles are P-squared estimates: close, not exact.
    EXPECT_NEAR(b.summary.median, a.summary.median,
                0.02 * a.summary.stddev);
}

TEST(SurrogateDistribution, BitwiseIdenticalAcrossThreadCounts)
{
    Fixture f(tech::Patterning_option::le3);
    mc::Distribution_options base;
    base.samples = 20000;

    for (const bool store : {true, false}) {
        mc::Distribution_options serial = base;
        serial.store_samples = store;
        serial.runner = core::Runner_options{1};
        const auto reference =
            mc::surrogate_distribution(*f.engine, f.surfaces, serial);
        for (const int threads : {2, 8}) {
            mc::Distribution_options parallel = serial;
            parallel.runner = core::Runner_options{threads};
            const auto run = mc::surrogate_distribution(*f.engine,
                                                        f.surfaces, parallel);
            EXPECT_TRUE(run == reference)
                << "threads " << threads << " store " << store;
        }
    }
}

TEST(SurrogateDistribution, LatinHypercubeConvergesTighter)
{
    Fixture f(tech::Patterning_option::euv);
    mc::Distribution_options pr;
    pr.samples = 2000;
    mc::Distribution_options lhs = pr;
    lhs.sampling = mc::Sampling::latin_hypercube;

    const auto a = mc::surrogate_distribution(*f.engine, f.surfaces, pr);
    const auto b = mc::surrogate_distribution(*f.engine, f.surfaces, lhs);
    EXPECT_EQ(b.summary.count, 2000u);
    // Both see the same distribution; LHS just stratifies the draws.
    EXPECT_NEAR(b.summary.mean, a.summary.mean, 0.1 * a.summary.stddev);
}

TEST(SurrogateDistribution, RejectsMismatchedDimensions)
{
    Fixture euv(tech::Patterning_option::euv);
    Fixture le3(tech::Patterning_option::le3);
    mc::Distribution_options opts;
    opts.samples = 4;
    EXPECT_THROW(
        mc::surrogate_distribution(*le3.engine, euv.surfaces, opts),
        util::Precondition_error);
}

TEST(ImportanceTail, BitwiseIdenticalAcrossThreadCounts)
{
    Fixture f(tech::Patterning_option::le3);
    mc::Tail_options topts;
    topts.samples = 5000;

    mc::Distribution_options serial;
    serial.runner = core::Runner_options{1};
    const auto reference =
        mc::importance_tail(*f.engine, f.surfaces.metric, serial, topts);
    for (const int threads : {2, 8}) {
        mc::Distribution_options parallel;
        parallel.runner = core::Runner_options{threads};
        const auto run = mc::importance_tail(*f.engine, f.surfaces.metric,
                                             parallel, topts);
        ASSERT_EQ(run.quantiles.size(), reference.quantiles.size());
        EXPECT_TRUE(util::bits_equal(run.quantiles, reference.quantiles))
            << "threads " << threads;
        EXPECT_TRUE(util::bits_equal(run.ess, reference.ess));
        EXPECT_TRUE(util::bits_equal(run.weight_sum, reference.weight_sum));
    }
}

TEST(ImportanceTail, MatchesBruteForceOrderStatistics)
{
    // Same surface on both sides: the IS quantiles must agree with the
    // exact order statistics of a large plain Monte-Carlo run.
    Fixture f(tech::Patterning_option::sadp);
    mc::Distribution_options brute;
    brute.samples = 200000;
    auto dist = mc::surrogate_distribution(*f.engine, f.surfaces, brute);

    mc::Tail_options topts;
    topts.sigma_levels = {3.0, 4.0};
    const auto tail = mc::importance_tail(*f.engine, f.surfaces.metric,
                                          mc::Distribution_options{}, topts);

    // A defensively mixed proposal keeps the ESS a large fraction of the
    // draw count and the self-normalization near 1.
    EXPECT_GT(tail.ess, 0.25 * tail.samples);
    EXPECT_NEAR(tail.weight_sum / tail.samples, 1.0, 0.05);

    const double spread = dist.summary.stddev;
    const double exact3 =
        util::quantile(dist.tdp, util::normal_cdf(3.0));
    EXPECT_NEAR(tail.quantiles[0], exact3, 0.05 * spread);
}

TEST(ImportanceTail, Preconditions)
{
    Fixture f(tech::Patterning_option::euv);
    const mc::Distribution_options base;

    mc::Tail_options bad;
    bad.samples = 1;
    EXPECT_THROW(
        mc::importance_tail(*f.engine, f.surfaces.metric, base, bad),
        util::Precondition_error);

    bad = mc::Tail_options{};
    bad.sigma_levels.clear();
    EXPECT_THROW(
        mc::importance_tail(*f.engine, f.surfaces.metric, base, bad),
        util::Precondition_error);

    bad = mc::Tail_options{};
    bad.shift_sigma = base.truncate_k;  // shift outside the box
    EXPECT_THROW(
        mc::importance_tail(*f.engine, f.surfaces.metric, base, bad),
        util::Precondition_error);
}

} // namespace
