// Query service (core/service.h + util/socket.h): protocol envelopes,
// malformed-input rejection, the bitwise identity of daemon-served
// results, warm memo serving, backpressure, graceful-shutdown drain, and
// N concurrent clients receiving identical tables from one daemon.
//
// The protocol core is exercised socket-free through handle_line (the
// designed seam); the daemon loop end to end through a forked server
// child, mirroring the mpsram_shard exec pattern.  The fork happens
// while this process is single-threaded (pools join between uses), so
// the suite stays TSan-clean.
#include "core/service.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "core/query.h"
#include "core/runner.h"
#include "core/serialize.h"
#include "core/session.h"
#include "util/hash.h"
#include "util/json.h"
#include "util/socket.h"

namespace {

using namespace mpsram;

/// Session used by every test: cache off, so results come from compute
/// and the daemon's memo — no test scratch leaks into a shared cache.
core::Study_options uncached()
{
    core::Study_options opts;
    opts.cache.mode = core::Cache_mode::off;
    return opts;
}

/// The cheapest real query: one nominal-td SPICE transient.
core::Query small_query()
{
    return core::Query(core::Metric::nominal_td)
        .with_case({tech::Patterning_option::euv, 8, -1.0});
}

std::string query_line(const core::Query& q, std::uint64_t id)
{
    util::Json request;
    request.set("v", core::service_protocol_version);
    request.set("op", "query");
    request.set("id", id);
    request.set("query", core::json_of_query(q));
    return request.dump();
}

std::string op_line(const std::string& op)
{
    util::Json request;
    request.set("v", core::service_protocol_version);
    request.set("op", op);
    return request.dump();
}

// --- protocol core (socket-free) ---------------------------------------------

TEST(CoreService, MalformedRequestsGetStructuredErrors)
{
    const core::Study_session session(tech::n10(), uncached());
    core::Query_service service(session, {});

    const auto code_of = [&](const std::string& line) {
        const util::Json response =
            util::Json::parse(service.handle_line(line));
        EXPECT_FALSE(response.at("ok").as_bool());
        return response.at("error").at("code").as_string();
    };

    EXPECT_EQ(code_of("this is not json"), "malformed");
    EXPECT_EQ(code_of("[1,2,3]"), "malformed");
    EXPECT_EQ(code_of("{\"op\":\"status\"}"), "malformed");  // no version
    EXPECT_EQ(code_of("{\"v\":\"x\",\"op\":\"status\"}"), "malformed");
    EXPECT_EQ(code_of("{\"v\":99,\"op\":\"status\"}"), "bad_version");
    EXPECT_EQ(code_of("{\"v\":1}"), "malformed");  // no op
    EXPECT_EQ(code_of("{\"v\":1,\"op\":\"frobnicate\"}"), "unsupported_op");
    EXPECT_EQ(code_of("{\"v\":1,\"op\":\"query\"}"), "malformed");
    EXPECT_EQ(code_of("{\"v\":1,\"op\":\"query\",\"query\":{\"bad\":1}}"),
              "malformed");

    // Every rejection produced a response; none touched the session.
    EXPECT_EQ(service.stats().requests, 9u);
    EXPECT_EQ(service.stats().errors, 9u);
    EXPECT_EQ(service.stats().queries, 0u);
    EXPECT_EQ(session.query_run_count(), 0u);
    EXPECT_FALSE(service.shutdown_requested());
}

TEST(CoreService, ErrorEnvelopeEchoesTheRequestId)
{
    const core::Study_session session(tech::n10(), uncached());
    core::Query_service service(session, {});
    const util::Json response = util::Json::parse(service.handle_line(
        "{\"v\":1,\"op\":\"nope\",\"id\":\"req-17\"}"));
    EXPECT_EQ(response.at("id").as_string(), "req-17");
    EXPECT_EQ(response.at("error").at("code").as_string(),
              "unsupported_op");
}

TEST(CoreService, QueryIsServedBitwiseIdenticalAndMemoized)
{
    const core::Study_session session(tech::n10(), uncached());
    core::Query_service service(session, {});
    const core::Query query = small_query();

    // The reference bytes: an in-process run on the same session.
    const std::string expected =
        core::json_of_result_table(session.run(query)).dump();

    const util::Json cold =
        util::Json::parse(service.handle_line(query_line(query, 1)));
    ASSERT_TRUE(cold.at("ok").as_bool());
    EXPECT_EQ(cold.at("op").as_string(), "query");
    EXPECT_EQ(cold.at("id").as_u64(), 1u);
    EXPECT_EQ(cold.at("result").dump(), expected);
    EXPECT_FALSE(cold.at("serve").at("memo_hit").as_bool());
    EXPECT_EQ(cold.at("serve").at("query_hash").as_string(),
              util::hex16(core::query_key(session, query)));

    // Same query again: served from the daemon memo, same bytes, no new
    // session run.
    const std::size_t runs_after_cold = session.query_run_count();
    const util::Json warm =
        util::Json::parse(service.handle_line(query_line(query, 2)));
    ASSERT_TRUE(warm.at("ok").as_bool());
    EXPECT_EQ(warm.at("result").dump(), expected);
    EXPECT_TRUE(warm.at("serve").at("memo_hit").as_bool());
    EXPECT_EQ(warm.at("serve").at("corner_searches").as_u64(), 0u);
    EXPECT_EQ(warm.at("serve").at("surface_fits").as_u64(), 0u);
    EXPECT_EQ(session.query_run_count(), runs_after_cold);

    EXPECT_EQ(service.stats().queries, 2u);
    EXPECT_EQ(service.stats().memo_hits, 1u);
    EXPECT_EQ(service.memo_entries(), 1u);
}

TEST(CoreService, StatusAndCacheStatsReportTheCounters)
{
    const core::Study_session session(tech::n10(), uncached());
    core::Query_service service(session, {});
    (void)service.handle_line(query_line(small_query(), 1));

    const util::Json status =
        util::Json::parse(service.handle_line(op_line("status")));
    ASSERT_TRUE(status.at("ok").as_bool());
    const util::Json& s = status.at("status");
    EXPECT_EQ(s.at("queries").as_u64(), 1u);
    EXPECT_EQ(s.at("memo_entries").as_u64(), 1u);
    EXPECT_EQ(s.at("query_runs").as_u64(), session.query_run_count());
    EXPECT_EQ(s.at("cache_mode").as_string(), "off");
    EXPECT_EQ(s.at("protocol_version").as_u64(),
              core::service_protocol_version);
    EXPECT_EQ(s.at("config_fingerprint").as_string(),
              util::hex16(session.config_fingerprint()));

    const util::Json cache =
        util::Json::parse(service.handle_line(op_line("cache_stats")));
    ASSERT_TRUE(cache.at("ok").as_bool());
    EXPECT_EQ(cache.at("cache_stats").at("session").at("hits").as_u64(),
              0u);
    EXPECT_EQ(cache.at("cache_stats").at("session").at("mode").as_string(),
              "off");
}

TEST(CoreService, ShutdownAcksAndSetsTheFlag)
{
    const core::Study_session session(tech::n10(), uncached());
    core::Query_service service(session, {});
    const util::Json ack =
        util::Json::parse(service.handle_line(op_line("shutdown")));
    ASSERT_TRUE(ack.at("ok").as_bool());
    EXPECT_EQ(ack.at("op").as_string(), "shutdown");
    EXPECT_EQ(ack.at("draining").as_u64(), 0u);
    EXPECT_TRUE(service.shutdown_requested());
}

TEST(CoreService, BusyLineIsAStructuredRejection)
{
    const core::Study_session session(tech::n10(), uncached());
    core::Service_options opts;
    opts.max_pending = 1;
    core::Query_service service(session, opts);

    const util::Json busy = util::Json::parse(service.busy_line(
        "{\"v\":1,\"op\":\"query\",\"id\":7,\"query\":{}}"));
    EXPECT_FALSE(busy.at("ok").as_bool());
    EXPECT_EQ(busy.at("error").at("code").as_string(), "busy");
    EXPECT_EQ(busy.at("id").as_u64(), 7u);  // id salvaged for correlation
    EXPECT_EQ(service.stats().busy, 1u);
    // busy is backpressure, not a protocol error.
    EXPECT_EQ(service.stats().errors, 0u);
}

TEST(CoreService, MemoIsBoundedWithLruEviction)
{
    const core::Study_session session(tech::n10(), uncached());
    core::Service_options opts;
    opts.max_memo_entries = 2;
    core::Query_service service(session, opts);

    const auto serve = [&](int word_lines) {
        const core::Query query =
            core::Query(core::Metric::nominal_td)
                .with_case(
                    {tech::Patterning_option::euv, word_lines, -1.0});
        return util::Json::parse(
            service.handle_line(query_line(query, word_lines)));
    };

    EXPECT_FALSE(serve(8).at("serve").at("memo_hit").as_bool());
    EXPECT_FALSE(serve(16).at("serve").at("memo_hit").as_bool());
    EXPECT_EQ(service.memo_entries(), 2u);

    // Touch 8 so 16 becomes least recently served, then force an
    // eviction with a third distinct query.
    EXPECT_TRUE(serve(8).at("serve").at("memo_hit").as_bool());
    EXPECT_FALSE(serve(32).at("serve").at("memo_hit").as_bool());
    EXPECT_EQ(service.memo_entries(), 2u);
    EXPECT_EQ(service.stats().memo_evictions, 1u);

    // 8 survived (recently served); 16 was the eviction victim.
    EXPECT_TRUE(serve(8).at("serve").at("memo_hit").as_bool());
    EXPECT_FALSE(serve(16).at("serve").at("memo_hit").as_bool());
}

TEST(CoreService, MemoBoundOfZeroDisablesMemoization)
{
    const core::Study_session session(tech::n10(), uncached());
    core::Service_options opts;
    opts.max_memo_entries = 0;
    core::Query_service service(session, opts);

    const std::string line = query_line(small_query(), 1);
    EXPECT_TRUE(
        util::Json::parse(service.handle_line(line)).at("ok").as_bool());
    const util::Json repeat = util::Json::parse(service.handle_line(line));
    EXPECT_FALSE(repeat.at("serve").at("memo_hit").as_bool());
    EXPECT_EQ(service.memo_entries(), 0u);
}

// --- listener path safety ----------------------------------------------------

TEST(UtilSocket, ListenerRefusesALiveDaemonPath)
{
    const std::string path = "service_test_takeover.sock";
    std::filesystem::remove(path);
    util::Unix_listener listener(path);

    // A second daemon on the same path fails loudly instead of silently
    // deleting the live daemon's socket and taking over...
    EXPECT_THROW({ util::Unix_listener usurper(path); },
                 std::runtime_error);

    // ...and the first is untouched: the file is still its socket and
    // still accepts connections.
    EXPECT_TRUE(std::filesystem::is_socket(path));
    EXPECT_TRUE(util::Socket::connect_unix(path).valid());
}

TEST(UtilSocket, ListenerRefusesToDeleteANonSocketFile)
{
    const std::string path = "service_test_not_a_socket";
    { std::ofstream(path) << "precious bytes\n"; }
    EXPECT_THROW({ util::Unix_listener listener(path); },
                 std::runtime_error);
    EXPECT_TRUE(std::filesystem::exists(path));
    std::filesystem::remove(path);
}

TEST(UtilSocket, ListenerReclaimsAStaleSocketFile)
{
    const std::string path = "service_test_stale.sock";
    std::filesystem::remove(path);

    // A daemon that died uncleanly: the child binds, then _Exits without
    // running destructors, leaving a socket file nobody listens on.
    const pid_t pid = ::fork();
    if (pid == 0) {
        try {
            util::Unix_listener stale(path);
            std::_Exit(0);
        } catch (...) {
            std::_Exit(3);
        }
    }
    ASSERT_GT(pid, 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_EQ(WIFEXITED(status) ? WEXITSTATUS(status) : -1, 0);
    ASSERT_TRUE(std::filesystem::is_socket(path));

    // The connect probe finds no listener, so the stale file is
    // reclaimed and the new daemon binds.
    util::Unix_listener listener(path);
    EXPECT_TRUE(util::Socket::connect_unix(path).valid());
}

// --- daemon loop (forked server) ---------------------------------------------

/// Forked mpsram-serve-alike: runs Query_service::serve() over a fresh
/// uncached session in a child process; the destructor reaps it (SIGKILL
/// only if a test failed before the graceful shutdown).
struct Server {
    explicit Server(const core::Service_options& opts)
    {
        std::filesystem::remove(opts.socket_path);
        pid = ::fork();
        if (pid == 0) {
            try {
                const core::Study_session session(tech::n10(), uncached());
                core::Query_service service(session, opts);
                std::_Exit(service.serve());
            } catch (...) {
                std::_Exit(3);
            }
        }
    }

    /// Wait for the daemon to exit and return its status (-1 on reap
    /// failure).  The graceful-shutdown contract is exit code 0.
    int wait()
    {
        int status = 0;
        if (::waitpid(pid, &status, 0) < 0) return -1;
        pid = -1;
        return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    }

    ~Server()
    {
        if (pid > 0) {
            ::kill(pid, SIGKILL);
            int status = 0;
            ::waitpid(pid, &status, 0);
        }
    }

    pid_t pid = -1;
};

/// Connect, retrying until the forked server has bound its socket.
util::Socket connect_with_retry(const std::string& path)
{
    for (int attempt = 0;; ++attempt) {
        try {
            return util::Socket::connect_unix(path);
        } catch (const std::exception&) {
            if (attempt > 100) throw;
            ::usleep(50 * 1000);
        }
    }
}

/// Send `lines` in ONE syscall (AF_UNIX delivers a small write
/// contiguously, so the server admits the whole pipeline in one read
/// pass) and collect exactly `expected` response lines.
std::vector<std::string> exchange(util::Socket& sock,
                                  const std::vector<std::string>& lines,
                                  std::size_t expected)
{
    std::string batch;
    for (const std::string& line : lines) batch += line + "\n";
    sock.write_all(batch, 10000);

    std::vector<std::string> responses;
    util::Line_buffer buffer;
    char buf[4096];
    while (responses.size() < expected) {
        if (auto line = buffer.pop_line()) {
            responses.push_back(std::move(*line));
            continue;
        }
        const auto n = sock.read_some(buf, sizeof buf, 60000);
        if (!n || *n == 0) break;  // timeout or daemon gone
        buffer.append(buf, *n);
    }
    return responses;
}

TEST(CoreServiceDaemon, ConcurrentClientsReceiveIdenticalTables)
{
    const std::string socket_path = "service_test_concurrent.sock";
    core::Service_options opts;
    opts.socket_path = socket_path;
    opts.poll_interval_ms = 10;
    Server server(opts);
    ASSERT_GT(server.pid, 0);
    connect_with_retry(socket_path);  // wait for the bind, then drop

    const core::Query query = small_query();
    const core::Study_session local(tech::n10(), uncached());
    const std::string expected =
        core::json_of_result_table(local.run(query)).dump();

    // >= 4 clients, all connected before any request is sent, hammering
    // one daemon concurrently.  Every response must carry the same bytes
    // as the in-process run.
    constexpr std::size_t clients = 4;
    std::vector<std::string> results(clients);
    core::run_indexed(
        clients,
        [&](std::size_t i, const core::Run_context&) {
            util::Socket sock = connect_with_retry(socket_path);
            const auto responses =
                exchange(sock, {query_line(query, i)}, 1);
            if (responses.size() == 1) results[i] = responses[0];
        },
        core::Runner_options{static_cast<int>(clients)});

    for (std::size_t i = 0; i < clients; ++i) {
        ASSERT_FALSE(results[i].empty()) << "client " << i;
        const util::Json response = util::Json::parse(results[i]);
        ASSERT_TRUE(response.at("ok").as_bool()) << results[i];
        EXPECT_EQ(response.at("result").dump(), expected)
            << "client " << i;
    }

    util::Socket admin = connect_with_retry(socket_path);
    exchange(admin, {op_line("shutdown")}, 1);
    EXPECT_EQ(server.wait(), 0);
    EXPECT_FALSE(std::filesystem::exists(socket_path));
}

TEST(CoreServiceDaemon, QueueOverflowGetsBusyNotAHang)
{
    const std::string socket_path = "service_test_busy.sock";
    core::Service_options opts;
    opts.socket_path = socket_path;
    opts.max_pending = 1;
    opts.poll_interval_ms = 10;
    Server server(opts);
    ASSERT_GT(server.pid, 0);

    // Three pipelined requests against a queue of one: the first is
    // admitted, the other two are rejected immediately with `busy`
    // (emitted at admission time, so they arrive before the executed
    // request's response).
    const core::Query query = small_query();
    util::Socket sock = connect_with_retry(socket_path);
    const auto responses = exchange(sock,
                                    {query_line(query, 1),
                                     query_line(query, 2),
                                     query_line(query, 3)},
                                    3);
    ASSERT_EQ(responses.size(), 3u);

    std::size_t ok = 0, busy = 0;
    for (const std::string& line : responses) {
        const util::Json response = util::Json::parse(line);
        if (response.at("ok").as_bool()) {
            ++ok;
        } else {
            EXPECT_EQ(response.at("error").at("code").as_string(), "busy");
            ++busy;
        }
    }
    EXPECT_EQ(ok, 1u);
    EXPECT_EQ(busy, 2u);

    exchange(sock, {op_line("shutdown")}, 1);
    EXPECT_EQ(server.wait(), 0);
}

TEST(CoreServiceDaemon, ShutdownDrainsAdmittedRequests)
{
    const std::string socket_path = "service_test_drain.sock";
    core::Service_options opts;
    opts.socket_path = socket_path;
    opts.poll_interval_ms = 10;
    Server server(opts);
    ASSERT_GT(server.pid, 0);

    // query / shutdown / query pipelined in one write: ALL THREE were
    // admitted before the shutdown executes, so all three get answered
    // (the drain), then the daemon exits 0 and unlinks its socket.
    const core::Query query = small_query();
    util::Socket sock = connect_with_retry(socket_path);
    const auto responses = exchange(sock,
                                    {query_line(query, 1),
                                     op_line("shutdown"),
                                     query_line(query, 2)},
                                    3);
    ASSERT_EQ(responses.size(), 3u);

    const util::Json first = util::Json::parse(responses[0]);
    const util::Json ack = util::Json::parse(responses[1]);
    const util::Json last = util::Json::parse(responses[2]);
    EXPECT_TRUE(first.at("ok").as_bool());
    EXPECT_EQ(first.at("op").as_string(), "query");
    EXPECT_EQ(ack.at("op").as_string(), "shutdown");
    EXPECT_EQ(ack.at("draining").as_u64(), 1u);  // one request behind it
    EXPECT_TRUE(last.at("ok").as_bool());
    EXPECT_EQ(last.at("result").dump(), first.at("result").dump());

    EXPECT_EQ(server.wait(), 0);
    EXPECT_FALSE(std::filesystem::exists(socket_path));
}

TEST(CoreServiceDaemon, OversizedLineIsRejectedAndDisconnected)
{
    const std::string socket_path = "service_test_oversize.sock";
    core::Service_options opts;
    opts.socket_path = socket_path;
    opts.max_line_bytes = 1024;
    opts.poll_interval_ms = 10;
    Server server(opts);
    ASSERT_GT(server.pid, 0);

    // 4 KiB with no terminator can never become a request; the bounded
    // line buffer rejects it instead of growing forever.
    util::Socket sock = connect_with_retry(socket_path);
    sock.write_all(std::string(4096, 'x'), 10000);

    util::Line_buffer buffer;
    char buf[4096];
    std::string line;
    for (;;) {
        if (auto popped = buffer.pop_line()) {
            line = std::move(*popped);
            break;
        }
        const auto n = sock.read_some(buf, sizeof buf, 60000);
        ASSERT_TRUE(n && *n > 0) << "no rejection envelope arrived";
        buffer.append(buf, *n);
    }
    const util::Json response = util::Json::parse(line);
    EXPECT_FALSE(response.at("ok").as_bool());
    EXPECT_EQ(response.at("error").at("code").as_string(), "malformed");

    // The connection is cut after the one rejection envelope.
    const auto n = sock.read_some(buf, sizeof buf, 60000);
    ASSERT_TRUE(n.has_value());
    EXPECT_EQ(*n, 0u);

    util::Socket admin = connect_with_retry(socket_path);
    exchange(admin, {op_line("shutdown")}, 1);
    EXPECT_EQ(server.wait(), 0);
}

TEST(CoreServiceDaemon, HalfClosedClientStillGetsItsAnswers)
{
    const std::string socket_path = "service_test_halfclose.sock";
    core::Service_options opts;
    opts.socket_path = socket_path;
    opts.poll_interval_ms = 10;
    Server server(opts);
    ASSERT_GT(server.pid, 0);

    // Pipeline two requests, then half-close: the daemon sees the EOF
    // with (or after) the request bytes, but must answer everything the
    // connection admitted before reaping it.
    const core::Query query = small_query();
    util::Socket sock = connect_with_retry(socket_path);
    sock.write_all(query_line(query, 1) + "\n" + query_line(query, 2) +
                       "\n",
                   10000);
    sock.shutdown_write();

    util::Line_buffer buffer;
    char buf[4096];
    std::vector<std::string> responses;
    while (responses.size() < 2) {
        if (auto line = buffer.pop_line()) {
            responses.push_back(std::move(*line));
            continue;
        }
        const auto n = sock.read_some(buf, sizeof buf, 60000);
        if (!n || *n == 0) break;
        buffer.append(buf, *n);
    }
    ASSERT_EQ(responses.size(), 2u);
    for (const std::string& response : responses) {
        EXPECT_TRUE(util::Json::parse(response).at("ok").as_bool())
            << response;
    }

    util::Socket admin = connect_with_retry(socket_path);
    exchange(admin, {op_line("shutdown")}, 1);
    EXPECT_EQ(server.wait(), 0);
}

TEST(CoreServiceDaemon, VanishingBusyClientDoesNotKillTheDaemon)
{
    const std::string socket_path = "service_test_vanish.sock";
    core::Service_options opts;
    opts.socket_path = socket_path;
    opts.max_pending = 1;
    opts.poll_interval_ms = 10;
    Server server(opts);
    ASSERT_GT(server.pid, 0);

    // Overflow the queue, then vanish without reading a byte: the busy
    // rejections hit a dead connection mid-drain (the use-after-free
    // regression scenario — the daemon must survive the failed sends).
    {
        util::Socket burst = connect_with_retry(socket_path);
        std::string lines;
        for (int i = 0; i < 32; ++i) {
            lines += query_line(small_query(), i) + "\n";
        }
        burst.write_all(lines, 10000);
    } // closed here, every response unread

    // The daemon is still alive and answering.  `busy` is admission-time
    // backpressure, so a status racing the burst's drain may transiently
    // be rejected too — retry until an answer lands.
    util::Socket admin = connect_with_retry(socket_path);
    util::Json status;
    for (int attempt = 0;; ++attempt) {
        const auto responses = exchange(admin, {op_line("status")}, 1);
        ASSERT_EQ(responses.size(), 1u) << "daemon stopped answering";
        status = util::Json::parse(responses[0]);
        if (status.at("ok").as_bool()) break;
        ASSERT_EQ(status.at("error").at("code").as_string(), "busy")
            << responses[0];
        ASSERT_LT(attempt, 100);
        ::usleep(10 * 1000);
    }
    EXPECT_GE(status.at("status").at("busy").as_u64(), 1u);

    exchange(admin, {op_line("shutdown")}, 1);
    EXPECT_EQ(server.wait(), 0);
}

} // namespace
