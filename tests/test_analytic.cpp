#include "analytic/td_formula.h"

#include <cmath>

#include <gtest/gtest.h>

#include "analytic/params.h"
#include "extract/extractor.h"
#include "spice/mosfet_model.h"
#include "sram/bitline_model.h"
#include "tech/technology.h"
#include "util/contracts.h"

namespace {

using namespace mpsram;

analytic::Td_params simple_params()
{
    analytic::Td_params p;
    p.a = 0.105;
    p.r_bl_cell = 10.0;
    p.c_bl_cell = 0.02e-15;
    p.r_fe = 10e3;
    p.c_fe = 0.045e-15;
    p.c_pre = [](int) { return 0.15e-15; };
    return p;
}

TEST(Formula, DischargeConstantMatchesEq3)
{
    // Paper eq. (3): 10% discharge -> a ~ 0.105.
    EXPECT_NEAR(analytic::discharge_constant(0.10), 0.10536, 1e-4);
    // 63.2% charge level -> a = 1 (the classic RC time constant).
    EXPECT_NEAR(analytic::discharge_constant(1.0 - std::exp(-1.0)), 1.0,
                1e-12);
    EXPECT_THROW(analytic::discharge_constant(0.0),
                 util::Precondition_error);
    EXPECT_THROW(analytic::discharge_constant(1.0),
                 util::Precondition_error);
}

TEST(Formula, HandComputedTd)
{
    const analytic::Td_params p = simple_params();
    const int n = 64;
    const double r = 64.0 * 10.0 + 10e3;
    const double c = 64.0 * (0.02e-15 + 0.045e-15) + 0.15e-15;
    EXPECT_NEAR(analytic::td_lumped(p, n), 0.105 * r * c, 1e-25);
}

TEST(Formula, VariationMultipliersApplyToWireOnly)
{
    const analytic::Td_params p = simple_params();
    const int n = 64;
    const double base = analytic::td_lumped(p, n);

    // cvar applies to Cbl only, not CFE/Cpre.
    const double c_varied = analytic::td_lumped(p, n, 1.0, 1.5);
    const double expected_c =
        0.105 * (64.0 * 10.0 + 10e3) *
        (64.0 * (0.03e-15 + 0.045e-15) + 0.15e-15);
    EXPECT_NEAR(c_varied, expected_c, 1e-25);
    EXPECT_GT(c_varied, base);

    // rvar applies to Rbl only, not RFE.
    const double r_varied = analytic::td_lumped(p, n, 0.5, 1.0);
    const double expected_r =
        0.105 * (64.0 * 5.0 + 10e3) *
        (64.0 * (0.02e-15 + 0.045e-15) + 0.15e-15);
    EXPECT_NEAR(r_varied, expected_r, 1e-25);
    EXPECT_LT(r_varied, base);
}

TEST(Formula, TdpZeroAtNominal)
{
    const analytic::Td_params p = simple_params();
    EXPECT_DOUBLE_EQ(analytic::tdp_percent(p, 64, 1.0, 1.0), 0.0);
}

TEST(Formula, PolynomialFormMatchesDirectEvaluation)
{
    // Eq. (5) is eq. (4) expanded: with Cpre frozen at its value for a
    // given n, the polynomial evaluated at n must equal td_lumped.
    const analytic::Td_params p = simple_params();
    for (int n : {16, 64, 256, 1024}) {
        const auto poly =
            analytic::td_polynomial(p, p.c_pre(n), 1.1, 1.2);
        const double nn = static_cast<double>(n);
        const double via_poly = poly.quadratic * nn * nn +
                                poly.linear * nn + poly.constant;
        EXPECT_NEAR(via_poly, analytic::td_lumped(p, n, 1.1, 1.2),
                    1e-22);
    }
}

TEST(Formula, QuadraticTermTakesOverForLongArrays)
{
    const analytic::Td_params p = simple_params();
    const auto poly = analytic::td_polynomial(p, p.c_pre(1024));
    const double n = 1024.0;
    const double quad = poly.quadratic * n * n;
    const double lin = poly.linear * n;
    EXPECT_GT(quad, 0.2 * lin);  // no longer negligible
    const double n16 = 16.0;
    EXPECT_LT(poly.quadratic * n16 * n16, 0.05 * poly.linear * n16);
}

class TdpMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(TdpMonotoneTest, TdpIncreasesWithCvarDecreasesWithSmallerRvar)
{
    // Property: tdp is strictly increasing in cvar and in rvar at any n.
    const int n = GetParam();
    const analytic::Td_params p = simple_params();
    double prev = -1e9;
    for (double cvar = 0.9; cvar <= 1.6; cvar += 0.1) {
        const double tdp = analytic::tdp_percent(p, n, 1.0, cvar);
        EXPECT_GT(tdp, prev);
        prev = tdp;
    }
    prev = -1e9;
    for (double rvar = 0.8; rvar <= 1.2; rvar += 0.05) {
        const double tdp = analytic::tdp_percent(p, n, rvar, 1.0);
        EXPECT_GT(tdp, prev);
        prev = tdp;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TdpMonotoneTest,
                         ::testing::Values(16, 64, 256, 1024));

TEST(Formula, RvarMattersMoreForLongArrays)
{
    // The n*Rbl term grows with n, so an Rbl drop helps more at n=1024
    // than at n=16 — the mechanism behind the EUV sign flip in Table III.
    const analytic::Td_params p = simple_params();
    const double tdp16 = analytic::tdp_percent(p, 16, 0.9, 1.0);
    const double tdp1024 = analytic::tdp_percent(p, 1024, 0.9, 1.0);
    EXPECT_LT(tdp1024, tdp16);
    EXPECT_LT(tdp1024, 0.0);
}

TEST(Formula, Validation)
{
    analytic::Td_params p = simple_params();
    EXPECT_THROW(analytic::td_lumped(p, 0), util::Precondition_error);
    EXPECT_THROW(analytic::td_lumped(p, 64, -1.0, 1.0),
                 util::Precondition_error);
    p.c_pre = nullptr;
    EXPECT_THROW(analytic::td_lumped(p, 64), util::Precondition_error);
}

TEST(Params, EffectiveSwitchResistance)
{
    EXPECT_NEAR(analytic::effective_switch_resistance(0.7, 40e-6),
                0.7 / 80e-6, 1e-9);
    EXPECT_THROW(analytic::effective_switch_resistance(0.0, 1.0),
                 util::Precondition_error);
}

TEST(Params, DerivedFromModelsAreConsistent)
{
    const tech::Technology t = tech::n10();
    const sram::Cell_electrical cell = sram::Cell_electrical::n10(t.feol);
    const extract::Extractor ex(t.metal1);
    sram::Array_config cfg;
    cfg.word_lines = 64;
    cfg.victim_pair = 6;
    const geom::Wire_array arr = sram::build_metal1_array(t, cfg);
    const auto wires = sram::roll_up_nominal(ex, arr, t, cfg);

    const analytic::Td_params p = analytic::derive_params(t, cell, wires);
    EXPECT_NEAR(p.a, 0.10536, 1e-4);  // 70 mV of 0.7 V = 10%
    EXPECT_DOUBLE_EQ(p.r_bl_cell, wires.r_bl_cell);
    EXPECT_DOUBLE_EQ(p.c_bl_cell, wires.c_bl_cell);
    EXPECT_DOUBLE_EQ(p.c_fe, cell.bitline_junction_cap());
    EXPECT_GT(p.r_fe, 5e3);
    EXPECT_LT(p.r_fe, 50e3);
    EXPECT_DOUBLE_EQ(p.c_pre(64), sram::precharge_cap(64, cell));
}

// --- the write formula (tw analogue of the td model) -------------------------

analytic::Tw_params derived_tw_params()
{
    const tech::Technology t = tech::n10();
    const sram::Cell_electrical cell = sram::Cell_electrical::n10(t.feol);
    const extract::Extractor ex(t.metal1);
    sram::Array_config cfg;
    cfg.word_lines = 64;
    cfg.victim_pair = 6;
    const geom::Wire_array arr = sram::build_metal1_array(t, cfg);
    return analytic::derive_tw_params(
        t, cell, sram::roll_up_nominal(ex, arr, t, cfg));
}

TEST(TwFormula, DerivedFromModelsAreConsistent)
{
    const tech::Technology t = tech::n10();
    const sram::Cell_electrical cell = sram::Cell_electrical::n10(t.feol);
    const analytic::Tw_params p = derived_tw_params();

    EXPECT_NEAR(p.a, std::log(2.0), 1e-12);  // vdd/2 trip level
    EXPECT_GT(p.r_bl_cell, 0.0);
    EXPECT_GT(p.c_bl_cell, 0.0);
    EXPECT_DOUBLE_EQ(p.c_fe, cell.bitline_junction_cap());
    EXPECT_DOUBLE_EQ(p.c_pre(64), sram::precharge_cap(64, cell));
    // The n-scaled driver beats any single cell's pull-down and gets
    // stronger (smaller R) with the array.
    const double ion_pd =
        spice::drive_current(cell.pull_down, t.feol.vdd) * cell.m_pull_down;
    EXPECT_LT(p.r_driver(16),
              analytic::effective_switch_resistance(t.feol.vdd, ion_pd));
    EXPECT_LE(p.r_driver(1024), p.r_driver(16));
}

TEST(TwFormula, GrowsWithArrayAndNominalPenaltyIsZero)
{
    const analytic::Tw_params p = derived_tw_params();
    EXPECT_GT(analytic::tw_lumped(p, 16), 0.0);
    EXPECT_GT(analytic::tw_lumped(p, 256), analytic::tw_lumped(p, 16));
    EXPECT_DOUBLE_EQ(analytic::twp_percent(p, 64, 1.0, 1.0), 0.0);
}

TEST(TwFormula, PenaltyTracksWireVariation)
{
    const analytic::Tw_params p = derived_tw_params();
    // More wire C slows the write; less wire R speeds it up.  The driver
    // term dilutes the R sensitivity relative to the read formula, which
    // has the much larger cell RFE in its place.
    EXPECT_GT(analytic::twp_percent(p, 64, 1.0, 1.3), 0.0);
    EXPECT_LT(analytic::twp_percent(p, 64, 0.8, 1.0), 0.0);
    EXPECT_THROW(analytic::tw_lumped(p, 64, -1.0, 1.0),
                 util::Precondition_error);
    analytic::Tw_params unset;
    EXPECT_THROW(analytic::tw_lumped(unset, 64),
                 util::Precondition_error);
}

} // namespace
