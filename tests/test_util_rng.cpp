#include "util/rng.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "util/contracts.h"
#include "util/stats.h"

namespace {

using mpsram::util::Rng;
using mpsram::util::Running_stats;

TEST(Rng, SameSeedSameStream)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i) {
        EXPECT_DOUBLE_EQ(a.normal(), b.normal());
    }
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.normal() == b.normal()) ++same;
    }
    EXPECT_LT(same, 5);
}

TEST(Rng, ChildStreamsAreDeterministic)
{
    const Rng parent(42);
    Rng c1 = parent.child("extraction");
    Rng c2 = parent.child("extraction");
    for (int i = 0; i < 50; ++i) {
        EXPECT_DOUBLE_EQ(c1.normal(), c2.normal());
    }
}

TEST(Rng, ChildStreamsWithDifferentNamesDecorrelate)
{
    const Rng parent(42);
    Rng a = parent.child("a");
    Rng b = parent.child("b");

    std::vector<double> xs(4000);
    std::vector<double> ys(4000);
    for (std::size_t i = 0; i < xs.size(); ++i) {
        xs[i] = a.normal();
        ys[i] = b.normal();
    }
    EXPECT_NEAR(mpsram::util::correlation(xs, ys), 0.0, 0.06);
}

TEST(Rng, NormalMoments)
{
    Rng rng(5);
    Running_stats s;
    for (int i = 0; i < 40000; ++i) s.add(rng.normal(2.0, 3.0));
    EXPECT_NEAR(s.mean(), 2.0, 0.06);
    EXPECT_NEAR(s.stddev(), 3.0, 0.06);
}

TEST(Rng, NormalZeroSigmaIsDeterministic)
{
    Rng rng(5);
    EXPECT_DOUBLE_EQ(rng.normal(7.0, 0.0), 7.0);
}

TEST(Rng, NormalRejectsNegativeSigma)
{
    Rng rng(5);
    EXPECT_THROW(rng.normal(0.0, -1.0), mpsram::util::Precondition_error);
}

class TruncatedNormalTest : public ::testing::TestWithParam<double> {};

TEST_P(TruncatedNormalTest, SamplesStayWithinBounds)
{
    const double k = GetParam();
    Rng rng(17);
    const double mean = 1.0;
    const double sigma = 0.5;
    for (int i = 0; i < 5000; ++i) {
        const double x = rng.truncated_normal(mean, sigma, k);
        EXPECT_GE(x, mean - k * sigma);
        EXPECT_LE(x, mean + k * sigma);
    }
}

INSTANTIATE_TEST_SUITE_P(TruncationWidths, TruncatedNormalTest,
                         ::testing::Values(1.0, 2.0, 3.0, 4.0));

TEST(Rng, TruncatedNormalZeroSigma)
{
    Rng rng(17);
    EXPECT_DOUBLE_EQ(rng.truncated_normal(3.0, 0.0, 3.0), 3.0);
}

TEST(Rng, UniformRange)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniform(-2.0, 5.0);
        EXPECT_GE(x, -2.0);
        EXPECT_LT(x, 5.0);
    }
    EXPECT_THROW(rng.uniform(1.0, 1.0), mpsram::util::Precondition_error);
}

TEST(Rng, IndexRange)
{
    Rng rng(11);
    std::vector<int> seen(10, 0);
    for (int i = 0; i < 5000; ++i) {
        const auto idx = rng.index(10);
        ASSERT_LT(idx, 10u);
        ++seen[static_cast<std::size_t>(idx)];
    }
    for (int count : seen) EXPECT_GT(count, 300);  // roughly uniform
    EXPECT_THROW(rng.index(0), mpsram::util::Precondition_error);
}

TEST(RngStream, BitwiseDeterministicAtLargeIndices)
{
    // The counter-based substream contract the million-sample Monte-Carlo
    // tiers rely on: re-deriving the stream of any index — including far
    // past 10^6 — reproduces the identical draw sequence, independent of
    // what any other substream did in between.
    constexpr std::uint64_t seed = 20150609;
    for (const std::uint64_t index :
         {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{999999},
          std::uint64_t{1000000}, std::uint64_t{10000000},
          std::uint64_t{1} << 40}) {
        Rng a = Rng::stream(seed, index);
        // Interleave unrelated work: burn draws on another substream.
        Rng noise = Rng::stream(seed, index + 7);
        for (int i = 0; i < 13; ++i) (void)noise.normal();
        Rng b = Rng::stream(seed, index);
        for (int i = 0; i < 20; ++i) {
            EXPECT_DOUBLE_EQ(a.normal(), b.normal()) << "index " << index;
        }
    }
}

TEST(RngStream, NeighborSubstreamsDecorrelateAtMillionIndices)
{
    // Substreams around index 10^6 behave like independent streams: the
    // first draw of stream i is uncorrelated with the first draw of
    // stream i+1, and their ensemble looks standard normal.
    constexpr std::uint64_t base = 1000000;
    constexpr int count = 4096;
    std::vector<double> first(count);
    Running_stats stats;
    for (int i = 0; i < count; ++i) {
        Rng rng = Rng::stream(42, base + static_cast<std::uint64_t>(i));
        first[static_cast<std::size_t>(i)] = rng.normal();
        stats.add(first[static_cast<std::size_t>(i)]);
    }
    EXPECT_NEAR(stats.mean(), 0.0, 0.06);
    EXPECT_NEAR(stats.stddev(), 1.0, 0.06);
    std::vector<double> lagged(first.begin() + 1, first.end());
    first.pop_back();
    EXPECT_NEAR(mpsram::util::correlation(first, lagged), 0.0, 0.06);
}

TEST(RngStream, SeedsSeparateSubstreamFamilies)
{
    // Two different master seeds must not share substream draws even at
    // matching indices deep into the counter space.
    int same = 0;
    for (std::uint64_t i = 1000000; i < 1000100; ++i) {
        Rng a = Rng::stream(1, i);
        Rng b = Rng::stream(2, i);
        if (a.normal() == b.normal()) ++same;
    }
    EXPECT_EQ(same, 0);
}

} // namespace
