// The parallel SPICE sweep layer: determinism of the batch Fig. 4 /
// Table II / Table III APIs at any thread count, the one-enumeration
// contract of the worst-case memo, and bitwise-identical results under
// netlist/workspace reuse.
#include "core/study.h"

#include <gtest/gtest.h>

#include "core/runner.h"
#include "pattern/engine.h"
#include "sram/bitline_model.h"
#include "sram/read_sim.h"
#include "util/numeric.h"
#include "util/rng.h"

namespace {

using namespace mpsram;

// Cheap-but-real sweep: EUV (3 corners) and SADP (9 corners) keep the
// corner searches small while the transients still exercise the full
// netlist/workspace reuse path.
constexpr int kSizes[] = {8, 16, 24};

struct Sim_fixture {
    tech::Technology t = tech::n10();
    sram::Cell_electrical cell = sram::Cell_electrical::n10(t.feol);
    extract::Extractor ex{t.metal1};
    sram::Array_config cfg;
    sram::Bitline_electrical wires;

    explicit Sim_fixture(int n)
    {
        cfg.word_lines = n;
        cfg.victim_pair = 6;
        const geom::Wire_array arr = sram::build_metal1_array(t, cfg);
        wires = sram::roll_up_nominal(ex, arr, t, cfg);
    }
};

TEST(ReadSweep, IdenticalAtAnyThreadCount)
{
    // Fresh study per thread count: no memo crosstalk between runs.
    const core::Variability_study serial_study;
    const auto serial = serial_study.read_sweep(
        tech::Patterning_option::sadp, kSizes, core::Runner_options{1});
    ASSERT_EQ(serial.size(), std::size(kSizes));

    for (const int threads : {2, 4}) {
        const core::Variability_study study;
        const auto parallel = study.read_sweep(
            tech::Patterning_option::sadp, kSizes,
            core::Runner_options{threads});
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            EXPECT_EQ(serial[i].td_nominal, parallel[i].td_nominal)
                << "threads=" << threads << " size=" << kSizes[i];
            EXPECT_EQ(serial[i].td_varied, parallel[i].td_varied);
            EXPECT_EQ(serial[i].tdp_percent, parallel[i].tdp_percent);
        }
    }
}

TEST(ReadSweep, MatchesSingleCalls)
{
    const core::Variability_study batch_study;
    const auto rows = batch_study.read_sweep(tech::Patterning_option::euv,
                                             kSizes,
                                             core::Runner_options{4});

    const core::Variability_study single_study;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto single = single_study.worst_case_read(
            tech::Patterning_option::euv, kSizes[i]);
        EXPECT_EQ(rows[i].td_nominal, single.td_nominal);
        EXPECT_EQ(rows[i].td_varied, single.td_varied);
        EXPECT_EQ(rows[i].tdp_percent, single.tdp_percent);
    }
}

TEST(NominalTdBatch, IdenticalAtAnyThreadCountAndMatchesSingles)
{
    const core::Variability_study serial_study;
    const auto serial =
        serial_study.nominal_td_batch(kSizes, core::Runner_options{1});
    ASSERT_EQ(serial.size(), std::size(kSizes));

    for (const int threads : {2, 4}) {
        const core::Variability_study study;
        const auto parallel =
            study.nominal_td_batch(kSizes, core::Runner_options{threads});
        for (std::size_t i = 0; i < serial.size(); ++i) {
            EXPECT_EQ(serial[i].td_simulation, parallel[i].td_simulation)
                << "threads=" << threads << " size=" << kSizes[i];
            EXPECT_EQ(serial[i].td_formula, parallel[i].td_formula);
        }
    }

    const core::Variability_study single_study;
    for (std::size_t i = 0; i < serial.size(); ++i) {
        const auto single = single_study.nominal_td(kSizes[i]);
        EXPECT_EQ(serial[i].td_simulation, single.td_simulation);
        EXPECT_EQ(serial[i].td_formula, single.td_formula);
    }
}

TEST(WorstCaseTdpBatch, IdenticalAtAnyThreadCount)
{
    const std::vector<core::Variability_study::Tdp_case> cases = {
        {tech::Patterning_option::euv, 8},
        {tech::Patterning_option::sadp, 8},
        {tech::Patterning_option::euv, 16},
        {tech::Patterning_option::sadp, 16},
    };

    const core::Variability_study serial_study;
    const auto serial =
        serial_study.worst_case_tdp_batch(cases, core::Runner_options{1});
    ASSERT_EQ(serial.size(), cases.size());

    for (const int threads : {2, 4}) {
        const core::Variability_study study;
        const auto parallel =
            study.worst_case_tdp_batch(cases,
                                       core::Runner_options{threads});
        for (std::size_t i = 0; i < serial.size(); ++i) {
            EXPECT_EQ(serial[i].tdp_simulation, parallel[i].tdp_simulation)
                << "threads=" << threads << " case=" << i;
            EXPECT_EQ(serial[i].tdp_formula, parallel[i].tdp_formula);
        }
    }
}

TEST(WorstCaseMemo, OneEnumerationPerKey)
{
    const core::Variability_study study;
    EXPECT_EQ(study.corner_search_count(), 0u);

    // worst_case_tdp needs the corner result twice (simulated read at the
    // worst geometry + formula factors): one enumeration, not two.
    study.worst_case_tdp(tech::Patterning_option::euv, 8);
    EXPECT_EQ(study.corner_search_count(), 1u);

    // Repeats and same-key sibling APIs hit the memo.
    study.worst_case_tdp(tech::Patterning_option::euv, 8);
    study.worst_case_read(tech::Patterning_option::euv, 8);
    study.worst_case_full(tech::Patterning_option::euv, 8);
    EXPECT_EQ(study.corner_search_count(), 1u);

    // A new word-line count is a new key.
    study.worst_case_full(tech::Patterning_option::euv, 16);
    EXPECT_EQ(study.corner_search_count(), 2u);

    // All "technology default" overlay spellings share one slot; a real
    // budget is its own key.
    study.worst_case_full(tech::Patterning_option::euv, 16, -7.0);
    EXPECT_EQ(study.corner_search_count(), 2u);
    study.worst_case_full(tech::Patterning_option::euv, 16, 3e-9);
    EXPECT_EQ(study.corner_search_count(), 3u);
}

TEST(WorstCaseMemo, ConcurrentCallersShareOneEnumeration)
{
    const core::Variability_study study;

    constexpr std::size_t jobs = 8;
    std::vector<mc::Worst_case_result> results(jobs);
    core::run_indexed(
        jobs,
        [&](std::size_t i, const core::Run_context&) {
            results[i] =
                study.worst_case_full(tech::Patterning_option::sadp, 8);
        },
        core::Runner_options{4});

    EXPECT_EQ(study.corner_search_count(), 1u);
    for (std::size_t i = 1; i < jobs; ++i) {
        EXPECT_EQ(results[i].corner.sample, results[0].corner.sample);
        EXPECT_EQ(results[i].corner.metric, results[0].corner.metric);
        EXPECT_EQ(results[i].variation.r_factor,
                  results[0].variation.r_factor);
        EXPECT_EQ(results[i].variation.c_factor,
                  results[0].variation.c_factor);
        EXPECT_EQ(results[i].vss_r_factor, results[0].vss_r_factor);
    }
}

// --- accuracy policy ---------------------------------------------------------

core::Study_options opts_with(sram::Sim_accuracy accuracy)
{
    core::Study_options opts;
    opts.read.accuracy = accuracy;
    return opts;
}

TEST(SimAccuracy, AdaptiveMatchesReferenceAcrossFig4Sweep)
{
    // The calibration contract: adaptive td and tdp agree with the
    // fixed-step reference to <= 0.5% for every patterning option across
    // the Fig. 4 word-line progression.  (The full set tops out at 1024;
    // 256 keeps the reference sweeps affordable here — bench_perf_spice
    // checks the complete Fig. 4 rows including 10x1024 on every run and
    // fails outside the budget.)
    constexpr int fig4_sizes[] = {16, 64, 256};

    for (const auto option : tech::all_patterning_options) {
        const core::Variability_study reference(
            tech::n10(), opts_with(sram::Sim_accuracy::reference));
        const core::Variability_study fast(
            tech::n10(), opts_with(sram::Sim_accuracy::fast));

        const auto ref_rows = reference.read_sweep(option, fig4_sizes);
        const auto fast_rows = fast.read_sweep(option, fig4_sizes);
        ASSERT_EQ(ref_rows.size(), fast_rows.size());

        for (std::size_t i = 0; i < ref_rows.size(); ++i) {
            EXPECT_LT(util::rel_diff(ref_rows[i].td_nominal,
                                     fast_rows[i].td_nominal),
                      5e-3)
                << tech::to_string(option) << " n=" << fig4_sizes[i];
            EXPECT_LT(util::rel_diff(ref_rows[i].td_varied,
                                     fast_rows[i].td_varied),
                      5e-3);
            // tdp is itself a percentage; 0.05 percentage points is far
            // below the paper's quoted resolution.
            EXPECT_NEAR(ref_rows[i].tdp_percent, fast_rows[i].tdp_percent,
                        0.05);
        }
    }
}

TEST(SimAccuracy, AdaptiveMatchesReferenceTdBatchesAndFinals)
{
    constexpr int sizes[] = {16, 64};

    const core::Variability_study reference(
        tech::n10(), opts_with(sram::Sim_accuracy::reference));
    const core::Variability_study fast(
        tech::n10(), opts_with(sram::Sim_accuracy::fast));

    // Table II rows.
    const auto ref_td = reference.nominal_td_batch(sizes);
    const auto fast_td = fast.nominal_td_batch(sizes);
    for (std::size_t i = 0; i < ref_td.size(); ++i) {
        EXPECT_LT(util::rel_diff(ref_td[i].td_simulation,
                                 fast_td[i].td_simulation),
                  5e-3);
        // The formula does not depend on the transient engine.
        EXPECT_EQ(ref_td[i].td_formula, fast_td[i].td_formula);
    }

    // Table III rows.
    const std::vector<core::Variability_study::Tdp_case> cases = {
        {tech::Patterning_option::le3, 16},
        {tech::Patterning_option::euv, 64},
    };
    const auto ref_tdp = reference.worst_case_tdp_batch(cases);
    const auto fast_tdp = fast.worst_case_tdp_batch(cases);
    for (std::size_t i = 0; i < cases.size(); ++i) {
        EXPECT_NEAR(ref_tdp[i].tdp_simulation, fast_tdp[i].tdp_simulation,
                    0.05);
        EXPECT_EQ(ref_tdp[i].tdp_formula, fast_tdp[i].tdp_formula);
    }

    // Waveform endpoints (bl/blb finals) of the raw read, plus the cost
    // contract that motivates the policy: the adaptive engine must solve
    // at least 2x fewer steps.
    Sim_fixture f(64);
    sram::Read_options ref_opts;
    ref_opts.accuracy = sram::Sim_accuracy::reference;
    sram::Read_options fast_opts;
    fast_opts.accuracy = sram::Sim_accuracy::fast;

    sram::Read_sim_context ref_ctx;
    const auto ref_read = ref_ctx.simulate(f.t, f.cell, f.wires, f.cfg,
                                           sram::Read_timing{},
                                           sram::Netlist_options{}, ref_opts);
    sram::Read_sim_context fast_ctx;
    const auto fast_read =
        fast_ctx.simulate(f.t, f.cell, f.wires, f.cfg, sram::Read_timing{},
                          sram::Netlist_options{}, fast_opts);
    ASSERT_TRUE(ref_read.crossed);
    ASSERT_TRUE(fast_read.crossed);
    EXPECT_LT(util::rel_diff(ref_read.td, fast_read.td), 5e-3);
    EXPECT_NEAR(ref_read.bl_final, fast_read.bl_final, 2e-3);
    EXPECT_NEAR(ref_read.blb_final, fast_read.blb_final, 2e-3);
    EXPECT_LT(fast_read.steps.total_attempts(),
              ref_read.steps.total_attempts() / 2);
}

TEST(SimAccuracy, AdaptiveBatchesBitwiseIdenticalAtAnyThreadCount)
{
    // The determinism contract under the production (adaptive) policy:
    // step selection is input-deterministic, so the batch APIs stay
    // bitwise identical at any thread count.
    const core::Variability_study serial_study(
        tech::n10(), opts_with(sram::Sim_accuracy::fast));
    const auto serial = serial_study.read_sweep(
        tech::Patterning_option::le3, kSizes, core::Runner_options{1});

    for (const int threads : {2, 4}) {
        const core::Variability_study study(
            tech::n10(), opts_with(sram::Sim_accuracy::fast));
        const auto parallel =
            study.read_sweep(tech::Patterning_option::le3, kSizes,
                             core::Runner_options{threads});
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            EXPECT_EQ(serial[i].td_nominal, parallel[i].td_nominal)
                << "threads=" << threads << " size=" << kSizes[i];
            EXPECT_EQ(serial[i].td_varied, parallel[i].td_varied);
            EXPECT_EQ(serial[i].tdp_percent, parallel[i].tdp_percent);
        }
    }

    const std::vector<core::Variability_study::Tdp_case> cases = {
        {tech::Patterning_option::euv, 8},
        {tech::Patterning_option::sadp, 16},
    };
    const core::Variability_study serial_tdp(
        tech::n10(), opts_with(sram::Sim_accuracy::fast));
    const auto tdp1 =
        serial_tdp.worst_case_tdp_batch(cases, core::Runner_options{1});
    const core::Variability_study parallel_tdp(
        tech::n10(), opts_with(sram::Sim_accuracy::fast));
    const auto tdp4 =
        parallel_tdp.worst_case_tdp_batch(cases, core::Runner_options{4});
    for (std::size_t i = 0; i < cases.size(); ++i) {
        EXPECT_EQ(tdp1[i].tdp_simulation, tdp4[i].tdp_simulation);
        EXPECT_EQ(tdp1[i].tdp_formula, tdp4[i].tdp_formula);
    }
}

// --- netlist/workspace reuse -------------------------------------------------

TEST(ReadSimContext, ReuseMatchesFreshBuilds)
{
    Sim_fixture f(8);
    sram::Bitline_electrical heavier = f.wires;
    heavier.c_bl_cell *= 1.4;
    heavier.c_blb_cell *= 1.4;

    sram::Read_sim_context ctx;
    const auto r_nom = ctx.simulate(f.t, f.cell, f.wires, f.cfg);
    const auto r_heavy = ctx.simulate(f.t, f.cell, heavier, f.cfg);
    // Same array config: the second run re-points the ladder in place.
    EXPECT_EQ(ctx.netlist_builds(), 1u);

    // Back to the first wires on the reused netlist: bitwise repeatable.
    const auto r_nom_again = ctx.simulate(f.t, f.cell, f.wires, f.cfg);
    EXPECT_EQ(ctx.netlist_builds(), 1u);
    EXPECT_EQ(r_nom.td, r_nom_again.td);

    // Fresh single-shot builds must agree bitwise with the reused context.
    sram::Read_netlist fresh_nom =
        sram::build_read_netlist(f.t, f.cell, f.wires, f.cfg);
    EXPECT_EQ(sram::simulate_read(fresh_nom).td, r_nom.td);
    sram::Read_netlist fresh_heavy =
        sram::build_read_netlist(f.t, f.cell, heavier, f.cfg);
    EXPECT_EQ(sram::simulate_read(fresh_heavy).td, r_heavy.td);
    EXPECT_GT(r_heavy.td, r_nom.td);

    // A different word-line count rebuilds netlist and workspace.
    Sim_fixture f16(16);
    const auto r16 = ctx.simulate(f16.t, f16.cell, f16.wires, f16.cfg);
    EXPECT_EQ(ctx.netlist_builds(), 2u);
    sram::Read_netlist fresh16 =
        sram::build_read_netlist(f16.t, f16.cell, f16.wires, f16.cfg);
    EXPECT_EQ(sram::simulate_read(fresh16).td, r16.td);
}

TEST(ReadSimContext, WindowDoublingRetryUnderWorkspaceReuse)
{
    Sim_fixture f(8);

    // Force the window-doubling path: the first window is far too small to
    // reach the sense margin, so simulate_read retries with 2x, 4x, ...
    // windows on the *same* netlist and workspace.
    sram::Read_options tight;
    tight.min_window = 8e-12;
    tight.window_per_cell = 0.0;
    tight.max_retries = 5;

    sram::Read_sim_context ctx;
    const auto retried =
        ctx.simulate(f.t, f.cell, f.wires, f.cfg, sram::Read_timing{},
                     sram::Netlist_options{}, tight);
    ASSERT_TRUE(retried.crossed);

    // Same answer as a fresh one-shot run with the same options...
    sram::Read_netlist fresh =
        sram::build_read_netlist(f.t, f.cell, f.wires, f.cfg);
    const auto fresh_result = sram::simulate_read(fresh, tight);
    EXPECT_EQ(retried.td, fresh_result.td);
    EXPECT_EQ(retried.t_cross, fresh_result.t_cross);

    // ... and the retry path leaves no state behind: an immediate re-run
    // on the reused context reproduces it bitwise.
    const auto again =
        ctx.simulate(f.t, f.cell, f.wires, f.cfg, sram::Read_timing{},
                     sram::Netlist_options{}, tight);
    EXPECT_EQ(retried.td, again.td);
    EXPECT_EQ(ctx.netlist_builds(), 1u);
}

TEST(RealizeInto, BitwiseMatchesRealizeForEveryEngine)
{
    const tech::Technology t = tech::n10();
    sram::Array_config cfg;
    cfg.word_lines = 16;
    cfg.victim_pair = 6;

    for (const auto option : tech::all_patterning_options) {
        const auto engine = pattern::make_engine(option, t);
        const geom::Wire_array nominal =
            engine->decompose(sram::build_metal1_array(t, cfg));

        util::Rng rng(7);
        geom::Wire_array scratch;  // reused across samples, like the loops
        for (int s = 0; s < 8; ++s) {
            const auto sample = engine->sample_gaussian(rng);
            const geom::Wire_array fresh = engine->realize(nominal, sample);
            engine->realize_into(nominal, sample, scratch);

            ASSERT_EQ(scratch.size(), fresh.size());
            for (std::size_t i = 0; i < fresh.size(); ++i) {
                EXPECT_EQ(scratch[i].width, fresh[i].width)
                    << tech::to_string(option) << " sample " << s;
                EXPECT_EQ(scratch[i].y_center, fresh[i].y_center);
                EXPECT_EQ(scratch[i].net, fresh[i].net);
                EXPECT_EQ(scratch[i].color, fresh[i].color);
                EXPECT_EQ(scratch[i].sadp, fresh[i].sadp);
            }
        }
    }
}

} // namespace
