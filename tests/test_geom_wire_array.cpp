#include "geom/wire_array.h"

#include <gtest/gtest.h>

#include "util/contracts.h"
#include "util/units.h"

namespace {

using mpsram::geom::Wire;
using mpsram::geom::Wire_array;
namespace units = mpsram::units;

Wire make_wire(const std::string& net, double y_nm, double w_nm = 26.0)
{
    Wire w;
    w.net = net;
    w.y_center = y_nm * units::nm;
    w.width = w_nm * units::nm;
    w.length = 1.0 * units::um;
    return w;
}

TEST(WireArray, ConstructorSortsByY)
{
    const Wire_array arr({make_wire("b", 45.0), make_wire("a", 0.0)});
    EXPECT_EQ(arr[0].net, "a");
    EXPECT_EQ(arr[1].net, "b");
}

TEST(WireArray, AddRequiresAscendingY)
{
    Wire_array arr;
    arr.add(make_wire("a", 0.0));
    arr.add(make_wire("b", 45.0));
    EXPECT_THROW(arr.add(make_wire("c", 10.0)),
                 mpsram::util::Precondition_error);
}

TEST(WireArray, DuplicateTrackPositionRejected)
{
    EXPECT_THROW(Wire_array({make_wire("a", 0.0), make_wire("b", 0.0)}),
                 mpsram::util::Precondition_error);
}

TEST(WireArray, SpacingIsEdgeToEdge)
{
    // Centers 45 nm apart, widths 26 nm -> spacing = 45 - 26 = 19 nm.
    const Wire_array arr({make_wire("a", 0.0), make_wire("b", 45.0)});
    EXPECT_NEAR(arr.spacing_above(0), 19.0 * units::nm, 1e-18);
    EXPECT_NEAR(arr.spacing_below(1), 19.0 * units::nm, 1e-18);
}

TEST(WireArray, SpacingCanBeNegativeForOverlaps)
{
    const Wire_array arr({make_wire("a", 0.0, 30.0), make_wire("b", 25.0, 30.0)});
    EXPECT_LT(arr.spacing_above(0), 0.0);
}

TEST(WireArray, SpacingQueriesValidateIndices)
{
    const Wire_array arr({make_wire("a", 0.0), make_wire("b", 45.0)});
    EXPECT_THROW(arr.spacing_above(1), mpsram::util::Precondition_error);
    EXPECT_THROW(arr.spacing_below(0), mpsram::util::Precondition_error);
}

TEST(WireArray, FindNetAndAllWithNet)
{
    const Wire_array arr({make_wire("BL0", 0.0), make_wire("VSS", 45.0),
                          make_wire("BL1", 90.0), make_wire("VSS", 135.0)});
    EXPECT_EQ(arr.find_net("BL1").value(), 2u);
    EXPECT_FALSE(arr.find_net("BLX").has_value());
    EXPECT_EQ(arr.find_net("VSS", 2).value(), 3u);
    EXPECT_EQ(arr.all_with_net("VSS").size(), 2u);
}

TEST(WireArray, CenterWireOfNetPicksClosestToMiddle)
{
    std::vector<Wire> wires;
    for (int i = 0; i < 9; ++i) {
        wires.push_back(make_wire(i % 2 == 0 ? "BL" : "VSS",
                                  45.0 * static_cast<double>(i)));
    }
    const Wire_array arr(std::move(wires));
    // Middle is track 4 (y=180); BL wires sit on even tracks, so track 4.
    EXPECT_EQ(arr.center_wire_of_net("BL"), 4u);
    // VSS on odd tracks: 3 or 5 both 45 nm away; the first found wins.
    const std::size_t vss = arr.center_wire_of_net("VSS");
    EXPECT_TRUE(vss == 3u || vss == 5u);
    EXPECT_THROW(arr.center_wire_of_net("nope"),
                 mpsram::util::Precondition_error);
}

TEST(WireArray, InteriorExcludesEdges)
{
    const Wire_array arr({make_wire("a", 0.0), make_wire("b", 45.0),
                          make_wire("c", 90.0)});
    EXPECT_FALSE(arr.interior(0));
    EXPECT_TRUE(arr.interior(1));
    EXPECT_FALSE(arr.interior(2));
}

TEST(WireArray, RejectsInvalidWires)
{
    Wire bad = make_wire("x", 0.0);
    bad.width = 0.0;
    EXPECT_THROW(Wire_array({bad}), mpsram::util::Precondition_error);

    bad = make_wire("x", 0.0);
    bad.length = -1.0;
    EXPECT_THROW(Wire_array({bad}), mpsram::util::Precondition_error);

    bad = make_wire("", 0.0);
    EXPECT_THROW(Wire_array({bad}), mpsram::util::Precondition_error);
}

TEST(WireArray, IndexingValidates)
{
    const Wire_array arr({make_wire("a", 0.0)});
    EXPECT_EQ(arr[0].net, "a");
    EXPECT_THROW(arr[1], mpsram::util::Precondition_error);
}

} // namespace
