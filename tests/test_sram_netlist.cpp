#include "sram/netlist_builder.h"

#include <gtest/gtest.h>

#include "extract/extractor.h"
#include "spice/analysis.h"
#include "util/contracts.h"

namespace {

using namespace mpsram;

struct Fixture {
    tech::Technology t = tech::n10();
    sram::Cell_electrical cell = sram::Cell_electrical::n10(t.feol);
    extract::Extractor ex{t.metal1};
    sram::Array_config cfg;
    sram::Bitline_electrical wires;

    explicit Fixture(int n)
    {
        cfg.word_lines = n;
        cfg.victim_pair = 6;
        const geom::Wire_array arr = sram::build_metal1_array(t, cfg);
        wires = sram::roll_up_nominal(ex, arr, t, cfg);
    }
};

TEST(Netlist, DeviceAndNodeCountsScaleWithN)
{
    for (int n : {4, 16}) {
        Fixture f(n);
        const sram::Read_netlist net =
            sram::build_read_netlist(f.t, f.cell, f.wires, f.cfg);
        // Nodes: ground + vdd + prechb + wl + 2 heads + 5 per cell.
        EXPECT_EQ(net.circuit.node_count(),
                  static_cast<std::size_t>(6 + 5 * n));
        // Devices: 3 sources + 3 precharge FETs + 2 Cpre + per cell
        // (3 R + 7 C + 6 FET = 16).
        EXPECT_EQ(net.circuit.device_count(),
                  static_cast<std::size_t>(8 + 16 * n));
    }
}

TEST(Netlist, RollupMatchesExtraction)
{
    Fixture f(8);
    EXPECT_GT(f.wires.r_bl_cell, 0.0);
    EXPECT_GT(f.wires.c_bl_cell, 0.0);
    // Uniform nominal track plan: BL and BLB see identical surroundings.
    EXPECT_DOUBLE_EQ(f.wires.r_bl_cell, f.wires.r_blb_cell);
    EXPECT_NEAR(f.wires.c_bl_cell, f.wires.c_blb_cell,
                1e-3 * f.wires.c_bl_cell);
    EXPECT_DOUBLE_EQ(f.wires.bl_variation.r_factor, 1.0);
    EXPECT_DOUBLE_EQ(f.wires.bl_variation.c_factor, 1.0);
}

TEST(Netlist, DcOperatingPointPrechargesBitlines)
{
    Fixture f(8);
    sram::Read_netlist net =
        sram::build_read_netlist(f.t, f.cell, f.wires, f.cfg);
    const spice::Dc_result dc =
        spice::dc_operating_point(net.circuit, net.dc);

    // Precharge is on at t=0: bit lines within a few mV of vdd.
    EXPECT_NEAR(dc.v(net.bl_sense), f.t.feol.vdd, 5e-3);
    EXPECT_NEAR(dc.v(net.blb_sense), f.t.feol.vdd, 5e-3);
    EXPECT_NEAR(dc.v(net.bl_far), f.t.feol.vdd, 5e-3);
    // The accessed cell stores 0 on the BL side.
    EXPECT_LT(dc.v(net.q), 0.05);
    EXPECT_GT(dc.v(net.qb), f.t.feol.vdd - 0.05);
}

TEST(Netlist, AllCellsInitializedToSameData)
{
    Fixture f(6);
    sram::Read_netlist net =
        sram::build_read_netlist(f.t, f.cell, f.wires, f.cfg);
    const spice::Dc_result dc =
        spice::dc_operating_point(net.circuit, net.dc);
    for (int i = 0; i < 6; ++i) {
        const spice::Node q =
            net.circuit.find_node("q" + std::to_string(i));
        const spice::Node qb =
            net.circuit.find_node("qb" + std::to_string(i));
        EXPECT_LT(dc.v(q), 0.05) << "cell " << i;
        EXPECT_GT(dc.v(qb), 0.65) << "cell " << i;
    }
}

TEST(Netlist, StrapsAppearAtRequestedInterval)
{
    Fixture f(8);
    sram::Netlist_options nopts;
    nopts.vss_strap_interval = 4;
    const sram::Read_netlist net = sram::build_read_netlist(
        f.t, f.cell, f.wires, f.cfg, sram::Read_timing{}, nopts);
    // Straps at i=3 and i=7: two extra resistors vs the default build.
    const sram::Read_netlist plain =
        sram::build_read_netlist(f.t, f.cell, f.wires, f.cfg);
    EXPECT_EQ(net.circuit.device_count(),
              plain.circuit.device_count() + 2);
}

TEST(Netlist, TimingDefaultsAreOrdered)
{
    const sram::Read_timing timing;
    EXPECT_GT(timing.t_wl_on, timing.t_precharge_off);
    EXPECT_GT(timing.wl_mid(), timing.t_wl_on);
}

TEST(Netlist, ValidatesInputs)
{
    Fixture f(4);
    sram::Bitline_electrical bad = f.wires;
    bad.c_bl_cell = 0.0;
    EXPECT_THROW(
        sram::build_read_netlist(f.t, f.cell, bad, f.cfg),
        util::Precondition_error);

    sram::Netlist_options nopts;
    nopts.vss_rail_sharing = 0.5;
    EXPECT_THROW(sram::build_read_netlist(f.t, f.cell, f.wires, f.cfg,
                                          sram::Read_timing{}, nopts),
                 util::Precondition_error);
}

} // namespace
