// The quadratic response surface behind the surrogate engine tier: exact
// recovery of polynomial targets, the shell-clamped design-set geometry,
// weighted least squares, and the held-out error the calibration gate
// compares against its budget.
#include "analytic/response_surface.h"

#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "util/contracts.h"

namespace {

using mpsram::analytic::holdout_error;
using mpsram::analytic::quadratic_design;
using mpsram::analytic::Response_surface;

/// A full quadratic in standardized coordinates z_i = x_i / half_i; the
/// fit must reproduce it to round-off.
double target(const std::vector<double>& x, const std::vector<double>& half)
{
    const double z0 = x[0] / half[0];
    const double z1 = x[1] / half[1];
    return 2.0 + 0.5 * z0 - 1.25 * z1 + 0.3 * z0 * z0 + 0.7 * z0 * z1 -
           0.2 * z1 * z1;
}

TEST(ResponseSurface, CoefficientCount)
{
    EXPECT_EQ(Response_surface::coefficient_count(1), 3u);
    EXPECT_EQ(Response_surface::coefficient_count(2), 6u);
    EXPECT_EQ(Response_surface::coefficient_count(3), 10u);
    EXPECT_EQ(Response_surface::coefficient_count(5), 21u);
}

TEST(ResponseSurface, RecoversQuadraticExactly)
{
    const std::vector<double> half = {2e-9, 5e-10};
    const auto points = quadratic_design(half);
    std::vector<double> values;
    for (const auto& p : points) values.push_back(target(p, half));
    const Response_surface s = Response_surface::fit(points, values, half);

    EXPECT_EQ(s.dimension(), 2u);
    EXPECT_FALSE(s.empty());
    std::mt19937_64 rng(5);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    for (int i = 0; i < 50; ++i) {
        const std::vector<double> x = {u(rng) * half[0], u(rng) * half[1]};
        EXPECT_NEAR(s.value(x), target(x, half), 1e-9);
    }
}

TEST(ResponseSurface, GradientAtZeroMatchesLinearTerms)
{
    const std::vector<double> half = {2e-9, 5e-10};
    const auto points = quadratic_design(half);
    std::vector<double> values;
    for (const auto& p : points) values.push_back(target(p, half));
    const Response_surface s = Response_surface::fit(points, values, half);

    const std::vector<double> g = s.gradient_at_zero();
    ASSERT_EQ(g.size(), 2u);
    EXPECT_NEAR(g[0], 0.5 / half[0], 1e-3 / half[0]);
    EXPECT_NEAR(g[1], -1.25 / half[1], 1e-3 / half[1]);
}

TEST(ResponseSurface, UnitWeightsMatchUnweightedFit)
{
    const std::vector<double> half = {1.0, 1.0};
    const auto points = quadratic_design(half);
    std::vector<double> values;
    for (const auto& p : points) values.push_back(target(p, half));
    const Response_surface plain =
        Response_surface::fit(points, values, half);
    const Response_surface weighted = Response_surface::fit(
        points, values, half, std::vector<double>(points.size(), 1.0));
    ASSERT_EQ(plain.coefficients().size(), weighted.coefficients().size());
    for (std::size_t i = 0; i < plain.coefficients().size(); ++i) {
        EXPECT_DOUBLE_EQ(plain.coefficients()[i],
                         weighted.coefficients()[i]);
    }
}

TEST(ResponseSurface, WeightsSteerTheFit)
{
    // An over-determined 1-D fit of data a quadratic cannot interpolate:
    // upweighting the inner points must shrink the inner-point residuals
    // relative to the uniform fit.
    const std::vector<double> half = {1.0};
    std::vector<std::vector<double>> points;
    std::vector<double> values;
    for (const double z : {-1.0, -0.6, -0.2, 0.2, 0.6, 1.0}) {
        points.push_back({z});
        values.push_back(std::sin(3.0 * z));  // strongly non-quadratic
    }
    const Response_surface uniform =
        Response_surface::fit(points, values, half);
    std::vector<double> weights(points.size(), 1e-3);
    weights[2] = 1.0;
    weights[3] = 1.0;
    const Response_surface inner =
        Response_surface::fit(points, values, half, weights);
    const double uniform_inner_err =
        std::fabs(uniform.value(points[2]) - values[2]) +
        std::fabs(uniform.value(points[3]) - values[3]);
    const double inner_inner_err =
        std::fabs(inner.value(points[2]) - values[2]) +
        std::fabs(inner.value(points[3]) - values[3]);
    EXPECT_LT(inner_inner_err, uniform_inner_err);
}

TEST(ResponseSurface, FitPreconditions)
{
    const std::vector<double> half = {1.0};
    const std::vector<std::vector<double>> two = {{0.0}, {1.0}};
    const std::vector<double> values = {0.0, 1.0};
    // Fewer points than the 3 quadratic coefficients of d = 1.
    EXPECT_THROW(Response_surface::fit(two, values, half),
                 mpsram::util::Precondition_error);
    // Mismatched / non-positive weights.
    const auto points = quadratic_design(half);
    std::vector<double> ok(points.size(), 0.5);
    std::vector<double> vals(points.size(), 1.0);
    EXPECT_THROW(
        Response_surface::fit(points, vals, half, {1.0}),
        mpsram::util::Precondition_error);
    ok[0] = 0.0;
    EXPECT_THROW(Response_surface::fit(points, vals, half, ok),
                 mpsram::util::Precondition_error);
}

TEST(QuadraticDesign, StaysInsideTheStandardizedBall)
{
    for (const std::size_t d : {std::size_t{1}, std::size_t{2},
                                std::size_t{3}, std::size_t{4},
                                std::size_t{5}}) {
        const std::vector<double> half(d, 2.0);
        const auto points = quadratic_design(half);
        EXPECT_GT(points.size(), Response_surface::coefficient_count(d))
            << "d = " << d;
        bool has_origin = false;
        for (const auto& p : points) {
            ASSERT_EQ(p.size(), d);
            double r2 = 0.0;
            for (std::size_t a = 0; a < d; ++a) {
                const double z = p[a] / half[a];
                r2 += z * z;
            }
            EXPECT_LE(r2, 1.0 + 1e-12) << "d = " << d;
            has_origin = has_origin || r2 == 0.0;
        }
        EXPECT_TRUE(has_origin) << "d = " << d;
    }
}

TEST(QuadraticDesign, Deterministic)
{
    const std::vector<double> half = {1.0, 3.0, 0.5};
    EXPECT_EQ(quadratic_design(half), quadratic_design(half));
}

TEST(HoldoutError, MeasuresNormalizedMaxDeviation)
{
    const std::vector<double> half = {1.0};
    const auto points = quadratic_design(half);
    std::vector<double> values;
    for (const auto& p : points) values.push_back(3.0 * p[0]);
    const Response_surface s = Response_surface::fit(points, values, half);

    // Exact on points the linear target generates...
    EXPECT_NEAR(holdout_error(s, {{0.5}}, {1.5}, 2.0), 0.0, 1e-12);
    // ...and |prediction - exact| / scale when the exact value is off.
    EXPECT_NEAR(holdout_error(s, {{0.5}}, {2.5}, 2.0), 0.5, 1e-12);
}

} // namespace
