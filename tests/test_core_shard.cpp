// Shard executor (core/shard.h): plan tiling, part-envelope round-trip,
// the k=1/2/4 merge-equals-single-process contract, and the merge
// preconditions that keep a bad part file from producing a wrong table.
#include "core/shard.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <utility>
#include <vector>

#include "core/query.h"
#include "core/serialize.h"
#include "core/session.h"
#include "util/contracts.h"
#include "util/json.h"

namespace {

using namespace mpsram;

TEST(CoreShard, PlanTilesTheCaseListContiguously)
{
    for (const auto& [count, shards] :
         {std::pair<std::size_t, std::size_t>{10, 3},
          {7, 7},
          {5, 8},
          {0, 2},
          {12, 1}}) {
        const std::vector<core::Shard_range> plan =
            core::shard_plan(count, shards);
        ASSERT_EQ(plan.size(), shards);
        std::size_t next = 0;
        std::size_t max_size = 0;
        std::size_t min_size = count + 1;
        for (const core::Shard_range& r : plan) {
            EXPECT_EQ(r.begin, next);
            EXPECT_LE(r.begin, r.end);
            next = r.end;
            max_size = std::max(max_size, r.size());
            min_size = std::min(min_size, r.size());
        }
        EXPECT_EQ(next, count);
        // Near-equal split: sizes differ by at most one.
        EXPECT_LE(max_size - min_size, 1u);
    }
}

TEST(CoreShard, PlanRejectsZeroShards)
{
    EXPECT_THROW(core::shard_plan(4, 0), util::Precondition_error);
}

TEST(CoreShard, PartEnvelopeRoundTrips)
{
    core::Shard_part part;
    part.query_hash = 0x0123456789abcdefULL;
    part.index = 1;
    part.count = 3;
    part.range = {2, 4};
    part.table = core::Result_table(
        core::Metric::nominal_td,
        {{tech::Patterning_option::euv, 16, -1.0},
         {tech::Patterning_option::euv, 24, -1.0}},
        {core::Nominal_td_row{1e-9, 1.1e-9},
         core::Nominal_td_row{2e-9, 2.1e-9}});

    const util::Json encoded = core::json_of_shard_part(part);
    const core::Shard_part back = core::shard_part_of_json(
        util::Json::parse(encoded.dump()));
    EXPECT_EQ(back.query_hash, part.query_hash);
    EXPECT_EQ(back.index, part.index);
    EXPECT_EQ(back.count, part.count);
    EXPECT_EQ(back.range, part.range);
    EXPECT_EQ(back.table, part.table);
}

TEST(CoreShard, MergedShardsMatchSingleProcessBitwise)
{
    // One session: the per-(option, word_lines) memos mean the SPICE work
    // runs once and every shard split reuses it, so the test stays cheap
    // while still exercising run_shard's sub-query path end to end.
    const core::Study_session session;
    static constexpr int sizes[] = {16, 24, 32, 48};
    const core::Query query =
        core::Query(core::Metric::read_td)
            .over_word_lines(tech::Patterning_option::le3, sizes);

    const core::Result_table full = session.run(query);
    const std::uint64_t hash = core::query_key(session, query);

    for (const std::size_t k : {std::size_t{1}, std::size_t{2},
                                std::size_t{4}}) {
        const std::vector<core::Shard_range> plan =
            core::shard_plan(query.cases.size(), k);
        std::vector<core::Shard_part> parts;
        // Reverse submission order: merge must reassemble by range.
        for (std::size_t i = k; i-- > 0;) {
            parts.push_back(
                core::run_shard(session, query, plan[i], i, k));
        }
        const core::Result_table merged = core::merge_shard_parts(
            hash, query.cases.size(), std::move(parts));
        EXPECT_EQ(merged, full) << "k=" << k;
        EXPECT_EQ(core::json_of_result_table(merged).dump(),
                  core::json_of_result_table(full).dump())
            << "k=" << k;
    }
}

TEST(CoreShard, MergeRejectsInvalidPartSets)
{
    const core::Study_session session;
    static constexpr int sizes[] = {16, 24};
    const core::Query query =
        core::Query(core::Metric::nominal_td)
            .over_word_lines(tech::Patterning_option::euv, sizes);
    const std::uint64_t hash = core::query_key(session, query);
    const std::vector<core::Shard_range> plan =
        core::shard_plan(query.cases.size(), 2);

    const auto parts = [&] {
        std::vector<core::Shard_part> p;
        p.push_back(core::run_shard(session, query, plan[0], 0, 2));
        p.push_back(core::run_shard(session, query, plan[1], 1, 2));
        return p;
    };

    // A part answering a different canonical query.
    {
        std::vector<core::Shard_part> p = parts();
        p[0].query_hash ^= 1;
        EXPECT_THROW(core::merge_shard_parts(hash, query.cases.size(),
                                             std::move(p)),
                     util::Precondition_error);
    }
    // A gap: one range missing.
    {
        std::vector<core::Shard_part> p = parts();
        p.pop_back();
        EXPECT_THROW(core::merge_shard_parts(hash, query.cases.size(),
                                             std::move(p)),
                     util::Precondition_error);
    }
    // An overlap: the same range twice.
    {
        std::vector<core::Shard_part> p = parts();
        p[1] = p[0];
        EXPECT_THROW(core::merge_shard_parts(hash, query.cases.size(),
                                             std::move(p)),
                     util::Precondition_error);
    }
    // Zero parts.
    EXPECT_THROW(core::merge_shard_parts(hash, query.cases.size(), {}),
                 util::Precondition_error);
    // The valid set still merges.
    EXPECT_EQ(core::merge_shard_parts(hash, query.cases.size(), parts())
                  .size(),
              query.cases.size());
}

} // namespace
