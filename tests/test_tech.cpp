#include "tech/technology.h"

#include <gtest/gtest.h>

#include "tech/patterning_option.h"
#include "util/contracts.h"
#include "util/units.h"

namespace {

using namespace mpsram;
namespace units = mpsram::units;

TEST(PatterningOption, NamesMatchPaper)
{
    EXPECT_EQ(tech::to_string(tech::Patterning_option::le3), "LELELE");
    EXPECT_EQ(tech::to_string(tech::Patterning_option::sadp), "SADP");
    EXPECT_EQ(tech::to_string(tech::Patterning_option::euv), "EUV");
    EXPECT_EQ(tech::all_patterning_options.size(), 3u);
}

TEST(Materials, CopperSizeEffectRaisesResistivity)
{
    const tech::Conductor cu = tech::damascene_copper();
    const double rho_wide = cu.effective_resistivity(1.0 * units::um);
    const double rho_narrow = cu.effective_resistivity(20.0 * units::nm);
    EXPECT_GT(rho_narrow, rho_wide);
    // Near-bulk for wide lines.
    EXPECT_NEAR(rho_wide, cu.rho_bulk, 0.05 * cu.rho_bulk);
    // Roughly 2-4x bulk at 20 nm (published sub-30nm Cu data).
    EXPECT_GT(rho_narrow, 2.0 * cu.rho_bulk);
    EXPECT_LT(rho_narrow, 4.0 * cu.rho_bulk);
}

TEST(Materials, PermittivityScalesWithK)
{
    const tech::Dielectric ild = tech::low_k_ild();
    EXPECT_NEAR(ild.permittivity(), ild.k * units::eps0, 1e-22);
    EXPECT_GT(ild.k, 1.0);
    EXPECT_LT(ild.k, 4.0);  // low-k by definition
}

TEST(TechnologyN10, PaperVariabilityAssumptions)
{
    const tech::Technology t = tech::n10();
    // Section II-A, verbatim inputs.
    EXPECT_DOUBLE_EQ(t.variability.cd_3sigma, 3.0 * units::nm);
    EXPECT_DOUBLE_EQ(t.variability.sadp_spacer_3sigma, 1.5 * units::nm);
    EXPECT_DOUBLE_EQ(t.variability.le3_ol_3sigma, 8.0 * units::nm);
    EXPECT_DOUBLE_EQ(t.feol.vdd, 0.7);
    EXPECT_DOUBLE_EQ(t.feol.sense_margin, 0.07);
}

TEST(TechnologyN10, Metal1TrackPlanIsConsistent)
{
    const tech::Technology t = tech::n10();
    EXPECT_GT(t.metal1.pitch, t.metal1.nominal_width);
    EXPECT_GT(t.metal1.nominal_space(), 0.0);
    EXPECT_GT(t.metal1.thickness, 0.0);
    EXPECT_GE(t.metal1.taper_angle, 0.0);
    // DRC rules leave headroom around nominal.
    EXPECT_LT(t.metal1.drc.min_width, t.metal1.nominal_width);
    EXPECT_LT(t.metal1.drc.min_space, t.metal1.nominal_space());
}

TEST(TechnologyN10, SadpSpacerFillsThePeriod)
{
    const tech::Technology t = tech::n10();
    const double spacer = t.sadp_spacer_nominal();
    // One SADP period: mandrel + gap + 2 spacers == 2 pitches.
    EXPECT_NEAR(2.0 * t.metal1.nominal_width + 2.0 * spacer,
                2.0 * t.metal1.pitch, 1e-18);
    EXPECT_GT(spacer, 0.0);
}

TEST(TechnologyN10, Metal2CarriedForWordLines)
{
    const tech::Technology t = tech::n10();
    EXPECT_EQ(t.metal2.name, "metal2");
    EXPECT_GT(t.metal2.pitch, t.metal1.pitch);  // relaxed upper layer
}

TEST(TechnologyN10, CellGeometry)
{
    const tech::Technology t = tech::n10();
    EXPECT_EQ(t.cell.tracks_per_cell, 4);
    EXPECT_GT(t.cell.cell_length, 50.0 * units::nm);
    EXPECT_LT(t.cell.cell_length, 300.0 * units::nm);
}

TEST(TechnologyN10, DriveCurrentsAreNmosDominant)
{
    const tech::Technology t = tech::n10();
    EXPECT_GT(t.feol.nmos_ion, t.feol.pmos_ion);
    EXPECT_GT(t.feol.vth, 0.0);
    EXPECT_LT(t.feol.vth, t.feol.vdd);
}

TEST(Materials, EffectiveResistivityValidatesInput)
{
    const tech::Conductor cu = tech::damascene_copper();
    EXPECT_THROW(cu.effective_resistivity(0.0),
                 mpsram::util::Precondition_error);
}

} // namespace
