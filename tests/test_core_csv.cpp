// CSV export (core/csv.h): header/record layout per metric family,
// shortest-round-trip numeric cells (byte-stable exports), RFC-4180
// escaping of text cells, distribution summaries, and the empty table.
#include "core/csv.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "core/query.h"
#include "util/stats.h"

namespace {

using namespace mpsram;

TEST(CoreCsv, ScalarMetricExportsAxesAndRowFields)
{
    const core::Result_table table(
        core::Metric::nominal_td,
        {{tech::Patterning_option::euv, 16, -1.0},
         {tech::Patterning_option::le3, 24, 0.5}},
        {core::Nominal_td_row{1.5e-9, 2e-9},
         core::Nominal_td_row{0.25, 4.0}});

    EXPECT_EQ(core::to_csv(table),
              "option,word_lines,ol_3sigma,td_simulation,td_formula\n"
              "EUV,16,-1,1.5e-09,2e-09\n"
              "LELELE,24,0.5,0.25,4\n");
}

TEST(CoreCsv, ExportIsByteStable)
{
    const core::Result_table table(
        core::Metric::read_td,
        {{tech::Patterning_option::sadp, 32, -1.0}},
        {core::Read_row{1.0 / 3.0, 2.0 / 3.0, 12.5}});
    const std::string once = core::to_csv(table);
    EXPECT_EQ(core::to_csv(table), once);
    // Shortest-round-trip: the cell parses back to the identical bits.
    EXPECT_NE(once.find("0.3333333333333333"), std::string::npos);
}

TEST(CoreCsv, WorstCaseCornerTextIsEscaped)
{
    core::Worst_case_row row;
    row.option = tech::Patterning_option::le3;
    row.corner = "mask A +1, mask B -1";  // comma forces RFC-4180 quoting
    row.cbl_percent = 10.0;
    row.rbl_percent = -2.5;
    row.vss_r_percent = 1.25;
    const core::Result_table table(
        core::Metric::worst_case_rc,
        {{tech::Patterning_option::le3, 16, -1.0}}, {row});

    const std::string csv = core::to_csv(table);
    EXPECT_NE(csv.find("\"mask A +1, mask B -1\""), std::string::npos);
    EXPECT_NE(csv.find("corner,cbl_percent"), std::string::npos);
}

TEST(CoreCsv, DistributionMetricExportsTheSummary)
{
    mc::Tdp_distribution dist;
    dist.tdp = {1.0, 2.0, 3.0};
    dist.summary.count = 3;
    dist.summary.mean = 2.0;
    dist.summary.stddev = 1.0;
    dist.summary.min = 1.0;
    dist.summary.max = 3.0;
    dist.summary.median = 2.0;
    dist.summary.p01 = 1.0;
    dist.summary.p99 = 3.0;
    const core::Result_table table(
        core::Metric::mc_tdp, {{tech::Patterning_option::euv, 16, -1.0}},
        {dist});

    EXPECT_EQ(core::to_csv(table),
              "option,word_lines,ol_3sigma,samples,mean,stddev,min,max,"
              "median,p01,p99\n"
              "EUV,16,-1,3,2,1,1,3,2,1,3\n");
}

TEST(CoreCsv, NonFiniteCellsRenderAsText)
{
    constexpr double nan = std::numeric_limits<double>::quiet_NaN();
    constexpr double inf = std::numeric_limits<double>::infinity();
    const core::Result_table table(
        core::Metric::write_tw, {{tech::Patterning_option::le3, 16, -1.0}},
        {core::Write_row{nan, inf, -inf}});

    const std::string csv = core::to_csv(table);
    EXPECT_NE(csv.find("nan,inf,-inf"), std::string::npos);
}

TEST(CoreCsv, EmptyTableIsAxesHeaderOnly)
{
    const core::Result_table table(core::Metric::read_td, {}, {});
    EXPECT_EQ(core::to_csv(table), "option,word_lines,ol_3sigma\n");
}

} // namespace
