#include "extract/resistance.h"

#include <gtest/gtest.h>

#include "tech/technology.h"
#include "util/contracts.h"
#include "util/units.h"

namespace {

using namespace mpsram;
namespace units = mpsram::units;

tech::Beol_layer m1() { return tech::n10().metal1; }

TEST(Resistance, HandComputedRectangularWire)
{
    // Strip the refinements: no taper, no barrier, no size effect.
    tech::Beol_layer layer = m1();
    layer.taper_angle = 0.0;
    layer.thickness = 20.0 * units::nm;
    layer.conductor.size_coeff = 0.0;
    layer.conductor.rho_bulk = 2.0 * units::uohm_cm;

    extract::Extraction_options opts;
    opts.include_barrier = false;

    const double w = 25.0 * units::nm;
    const double r = extract::resistance_per_length(layer, w, opts);
    const double expected =
        layer.conductor.rho_bulk / (w * layer.thickness);
    EXPECT_NEAR(r, expected, 1e-9 * expected);
}

TEST(Resistance, BarrierRaisesResistance)
{
    const tech::Beol_layer layer = m1();
    extract::Extraction_options with;
    with.include_barrier = true;
    extract::Extraction_options without;
    without.include_barrier = false;

    const double w = 26.0 * units::nm;
    EXPECT_GT(extract::resistance_per_length(layer, w, with),
              extract::resistance_per_length(layer, w, without));
}

TEST(Resistance, SizeEffectRaisesNarrowWireResistance)
{
    tech::Beol_layer with = m1();
    tech::Beol_layer bulk = m1();
    bulk.conductor.size_coeff = 0.0;

    const extract::Extraction_options opts;
    const double w = 20.0 * units::nm;
    EXPECT_GT(extract::resistance_per_length(with, w, opts),
              extract::resistance_per_length(bulk, w, opts));
}

class ResistanceMonotoneTest : public ::testing::TestWithParam<double> {};

TEST_P(ResistanceMonotoneTest, StrictlyDecreasingInWidth)
{
    // Property: wider wires always conduct better, at any taper.
    tech::Beol_layer layer = m1();
    layer.taper_angle = GetParam();
    const extract::Extraction_options opts;

    double prev = 1e18;
    for (double w = 18.0; w <= 40.0; w += 1.0) {
        const double r =
            extract::resistance_per_length(layer, w * units::nm, opts);
        EXPECT_LT(r, prev) << "width " << w;
        prev = r;
    }
}

INSTANTIATE_TEST_SUITE_P(Tapers, ResistanceMonotoneTest,
                         ::testing::Values(0.0, 0.05, 0.0869));

TEST(Resistance, PaperRblSensitivity)
{
    // Table I: +3 nm CD on the 26 nm bit line -> Rbl ~ -10.4%.
    const tech::Beol_layer layer = m1();
    const extract::Extraction_options opts;
    const double r_nom =
        extract::resistance_per_length(layer, layer.nominal_width, opts);
    const double r_plus3 = extract::resistance_per_length(
        layer, layer.nominal_width + 3.0 * units::nm, opts);
    const double change = (r_plus3 / r_nom - 1.0) * 100.0;
    EXPECT_NEAR(change, -10.36, 1.0);
}

TEST(Resistance, PaperSadpRblSensitivity)
{
    // Table I SADP: +6 nm on the gap-defined bit line -> Rbl ~ -18.2%.
    const tech::Beol_layer layer = m1();
    const extract::Extraction_options opts;
    const double r_nom =
        extract::resistance_per_length(layer, layer.nominal_width, opts);
    const double r_plus6 = extract::resistance_per_length(
        layer, layer.nominal_width + 6.0 * units::nm, opts);
    const double change = (r_plus6 / r_nom - 1.0) * 100.0;
    EXPECT_NEAR(change, -18.19, 1.5);
}

TEST(Resistance, ConductingCoreReflectsBarrierInset)
{
    const tech::Beol_layer layer = m1();
    extract::Extraction_options opts;
    const auto core =
        extract::conducting_core(layer, layer.nominal_width, opts);
    EXPECT_NEAR(core.height(),
                layer.thickness - layer.conductor.barrier_thickness, 1e-18);
    EXPECT_NEAR(core.bottom_width(),
                layer.nominal_width - 2.0 * layer.conductor.barrier_thickness,
                1e-18);
}

TEST(Resistance, RejectsNonPositiveWidth)
{
    EXPECT_THROW(extract::resistance_per_length(m1(), 0.0, {}),
                 util::Precondition_error);
}

} // namespace
