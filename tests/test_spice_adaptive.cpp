// Tests for the LTE-based adaptive time-step control.
#include <cmath>

#include <gtest/gtest.h>

#include "spice/analysis.h"
#include "spice/mosfet_model.h"

namespace {

using namespace mpsram::spice;

struct Rc_fixture {
    Circuit circuit;
    Node in = 0;
    Node out = 0;
    double r = 1000.0;
    double c = 1e-12;  // tau = 1 ns

    Rc_fixture()
    {
        in = circuit.node("in");
        out = circuit.node("out");
        circuit.add_voltage_source(
            "Vin", in, ground_node,
            Waveform::pulse(0.0, 1.0, 0.2e-9, 1e-12));
        circuit.add_resistor("R1", in, out, r);
        circuit.add_capacitor("C1", out, ground_node, c);
    }
};

double max_rc_error(const Transient_result& res, double tau)
{
    const auto wave = res.waveform("out");
    double worst = 0.0;
    for (double t = 0.3e-9; t < 5e-9; t += 0.05e-9) {
        const double expected = 1.0 - std::exp(-(t - 0.2e-9) / tau);
        worst = std::max(worst, std::fabs(wave.at(t) - expected));
    }
    return worst;
}

TEST(Adaptive, MeetsAccuracyWithCoarseNominalStep)
{
    // With only 50 nominal steps over 5 tau, fixed stepping is visibly
    // wrong early in the exponential; adaptive stepping must refine
    // itself there and beat it.
    Rc_fixture fixed_f;
    Transient_options fixed;
    fixed.tstop = 5e-9;
    fixed.nominal_steps = 50;
    const double err_fixed =
        max_rc_error(run_transient(fixed_f.circuit, {fixed_f.out}, fixed),
                     1e-9);

    Rc_fixture adapt_f;
    Transient_options adapt = fixed;
    adapt.adaptive = true;
    adapt.lte_rel = 1e-4;
    adapt.lte_abs = 1e-5;
    const double err_adapt =
        max_rc_error(run_transient(adapt_f.circuit, {adapt_f.out}, adapt),
                     1e-9);

    EXPECT_LT(err_adapt, err_fixed);
    EXPECT_LT(err_adapt, 2e-3);
}

TEST(Adaptive, GrowsStepsOnFlatWaveforms)
{
    // Long flat tail: the controller should take fewer steps than the
    // fixed grid while staying accurate.
    Rc_fixture f;
    Transient_options opts;
    opts.tstop = 20e-9;  // mostly settled after ~5 ns
    opts.nominal_steps = 2000;
    opts.adaptive = true;
    const auto res = run_transient(f.circuit, {f.out}, opts);
    EXPECT_LT(res.sample_count(), 1600u);
    EXPECT_NEAR(res.final_value("out"), 1.0, 1e-4);
}

TEST(Adaptive, StillLandsOnBreakpoints)
{
    Rc_fixture f;
    Transient_options opts;
    opts.tstop = 2e-9;
    opts.adaptive = true;
    const auto res = run_transient(f.circuit, {f.out}, opts);
    bool found = false;
    for (double t : res.time()) {
        if (std::fabs(t - 0.2e-9) < 1e-18) found = true;
    }
    EXPECT_TRUE(found);
}

TEST(Adaptive, ImprovesChargeConservationOnStiffHandoff)
{
    // A full-drive pass gate snapping on transfers charge in ~10 fs —
    // far below the fixed step — and the one-step linearized current
    // overshoots, manufacturing charge from nothing.  Conservation is
    // checked as a before/after delta so DC leak equilibria don't enter.
    Mosfet_params nm;
    nm.type = Mosfet_type::nmos;
    nm.vth = 0.4;  // cold device: negligible off-state leakage
    nm = calibrate_beta(nm, 0.7, 40e-6);

    auto build = [&](Circuit& c) {
        const Node a = c.node("a");
        const Node b = c.node("b");
        const Node g = c.node("g");
        const Node supply = c.node("supply");
        c.add_voltage_source("Vg", g, ground_node,
                             Waveform::pulse(0.0, 0.7, 10e-12, 4e-12));
        c.add_voltage_source("Vs", supply, ground_node,
                             Waveform::pulse(0.7, 0.0, 5e-12, 2e-12));
        c.add_resistor("Riso", supply, a, 1e7);
        c.add_resistor("Rb", b, ground_node, 1e9);  // pins b low at DC
        c.add_capacitor("Ca", a, ground_node, 2e-15);
        c.add_capacitor("Cb", b, ground_node, 1e-15);
        c.add_mosfet("Mpass", a, g, b, nm);
        return std::pair{a, b};
    };

    // |q(end) - q(0)| beyond the known resistive drain budget.
    auto charge_delta = [&](bool adaptive) {
        Circuit c;
        const auto [a, b] = build(c);
        Transient_options opts;
        opts.tstop = 200e-12;
        opts.nominal_steps = 200;
        opts.adaptive = adaptive;
        opts.lte_rel = 1e-3;
        const auto res = run_transient(c, {a, b}, opts);
        const auto wa = res.waveform("a");
        const auto wb = res.waveform("b");
        const double q0 = 2e-15 * wa.at(0.0) + 1e-15 * wb.at(0.0);
        const double q1 =
            2e-15 * res.final_value("a") + 1e-15 * res.final_value("b");
        return std::fabs(q1 - q0);
    };

    const double err_adaptive = charge_delta(true);
    const double err_fixed = charge_delta(false);
    // Resistive drain budget over the window: ~0.02 fF*V.
    EXPECT_LT(err_adaptive, 0.03e-15);
    EXPECT_LE(err_adaptive, err_fixed + 1e-18);
}

TEST(Adaptive, StepStatsCountAcceptsAndRejects)
{
    Rc_fixture f;
    Transient_options opts;
    opts.tstop = 5e-9;
    opts.nominal_steps = 100;
    opts.adaptive = true;
    opts.lte_rel = 1e-5;  // tight: force LTE rejections
    opts.lte_abs = 1e-6;
    const auto res = run_transient(f.circuit, {f.out}, opts);

    const Step_stats& s = res.steps();
    // Every recorded sample after t=0 is one accepted step.
    EXPECT_EQ(static_cast<std::size_t>(s.accepted) + 1, res.sample_count());
    // The tight tolerance must actually reject steps, and an RC circuit
    // never fails Newton (it is linear).
    EXPECT_GT(s.lte_rejected, 0);
    EXPECT_EQ(s.newton_rejected, 0);
    EXPECT_EQ(s.total_attempts(),
              s.accepted + s.lte_rejected + s.newton_rejected);
}

TEST(Adaptive, FixedModeStatsMatchNominalGrid)
{
    // Fixed stepping on a smooth circuit: no rejections, and the accepted
    // count is the nominal grid plus the extra breakpoint landings.
    Rc_fixture f;
    Transient_options opts;
    opts.tstop = 1e-9;
    opts.nominal_steps = 100;
    const auto res = run_transient(f.circuit, {f.out}, opts);
    EXPECT_EQ(res.steps().lte_rejected, 0);
    EXPECT_EQ(res.steps().newton_rejected, 0);
    EXPECT_GE(res.steps().accepted, opts.nominal_steps);
    EXPECT_LE(res.steps().accepted, opts.nominal_steps + 4);
}

TEST(Adaptive, LteRejectionDoesNotRestartTheController)
{
    // Regression for the corner/LTE conflation: an LTE-rejected step used
    // to be treated like a waveform corner, which forced a backward-Euler
    // step, a dt_nominal/100 restart, and a predictor-history reset after
    // every rejection.  The reset skips the next step's LTE check and the
    // controller then regrows blindly (2x per step), so it overshoots the
    // tolerance again and again — a rejection cascade.  With the fix a
    // rejection just halves the step and the controller converges onto the
    // error target: on this smooth RC problem it rejects a handful of
    // times (6 when this was calibrated), where the conflating controller
    // rejected ~4x more (23).
    Rc_fixture f;
    Transient_options opts;
    opts.tstop = 10e-9;
    opts.nominal_steps = 200;
    opts.adaptive = true;
    opts.lte_rel = 1e-5;
    opts.lte_abs = 1e-6;
    const auto res = run_transient(f.circuit, {f.out}, opts);

    EXPECT_GT(res.steps().lte_rejected, 0);
    EXPECT_LE(res.steps().lte_rejected, 12);
    // A linear circuit never fails Newton, so nothing here may take the
    // true corner path.
    EXPECT_EQ(res.steps().newton_rejected, 0);
    EXPECT_LT(max_rc_error(res, 1e-9), 1e-3);
}

TEST(Adaptive, MatchesFixedResultOnSmoothProblem)
{
    // Same physical answer from both stepping modes.
    Rc_fixture f1;
    Transient_options fixed;
    fixed.tstop = 3e-9;
    fixed.nominal_steps = 3000;
    const auto r1 = run_transient(f1.circuit, {f1.out}, fixed);

    Rc_fixture f2;
    Transient_options adapt = fixed;
    adapt.nominal_steps = 300;
    adapt.adaptive = true;
    adapt.lte_rel = 1e-4;
    const auto r2 = run_transient(f2.circuit, {f2.out}, adapt);

    for (double t = 0.3e-9; t < 3e-9; t += 0.3e-9) {
        EXPECT_NEAR(r2.waveform("out").at(t), r1.waveform("out").at(t),
                    1e-3);
    }
}

} // namespace
