// Cross-module integration tests: the full pattern -> extract -> SPICE ->
// formula pipeline at experiment scale (small n to keep the suite fast).
#include <gtest/gtest.h>

#include "core/study.h"
#include "geom/drc.h"

namespace {

using namespace mpsram;

core::Variability_study& study()
{
    static core::Variability_study instance;
    return instance;
}

TEST(Integration, NominalTdSimulationExceedsLumpedFormula)
{
    // Table II's qualitative content at small n.
    const auto row = study().nominal_td(16);
    EXPECT_GT(row.td_simulation, row.td_formula);
    EXPECT_LT(row.td_simulation, 6.0 * row.td_formula);
    // Magnitudes in the paper's ballpark (sim 5.59 ps at 10x16).
    EXPECT_GT(row.td_simulation, 2e-12);
    EXPECT_LT(row.td_simulation, 20e-12);
}

TEST(Integration, WorstCaseReadPenaltyLe3)
{
    // Fig. 4 / Table III at 10x16: LE3 in the 12-22% band.
    const auto row =
        study().worst_case_read(tech::Patterning_option::le3, 16);
    EXPECT_GT(row.td_varied, row.td_nominal);
    EXPECT_GT(row.tdp_percent, 10.0);
    EXPECT_LT(row.tdp_percent, 25.0);
}

TEST(Integration, WorstCaseReadPenaltySadpAndEuvAreSmall)
{
    const auto sadp =
        study().worst_case_read(tech::Patterning_option::sadp, 16);
    const auto euv =
        study().worst_case_read(tech::Patterning_option::euv, 16);
    EXPECT_LT(std::abs(sadp.tdp_percent), 3.0);
    EXPECT_LT(std::abs(euv.tdp_percent), 3.0);
}

TEST(Integration, FormulaTracksSimulationAtSmallN)
{
    // Table III: formula vs simulation agree within a few points at
    // small n for every option.
    for (const auto option : tech::all_patterning_options) {
        const auto row = study().worst_case_tdp(option, 16);
        EXPECT_NEAR(row.tdp_formula, row.tdp_simulation, 6.0)
            << tech::to_string(option);
    }
}

TEST(Integration, SadpSimDivergesAboveFormulaAtLargeN)
{
    // The Section III-A observation: RVSS anti-correlation pushes the
    // simulated SADP penalty above the formula for longer arrays.
    const auto row =
        study().worst_case_tdp(tech::Patterning_option::sadp, 128);
    EXPECT_GT(row.tdp_simulation, row.tdp_formula);
}

TEST(Integration, Le3WorstCaseGeometryViolatesDrc)
{
    // An 8 nm overlay error on a 19 nm space is not manufacturable; the
    // DRC checker must say so (the study prices it anyway, like the
    // paper's worst-case analysis).
    const auto wc =
        study().worst_case_full(tech::Patterning_option::le3, 16);
    const auto violations =
        geom::check_drc(wc.realized, study().technology().metal1.drc);
    EXPECT_FALSE(violations.empty());
}

TEST(Integration, SadpWorstCaseGeometryIsManufacturable)
{
    const auto wc =
        study().worst_case_full(tech::Patterning_option::sadp, 16);
    const auto violations =
        geom::check_drc(wc.realized, study().technology().metal1.drc);
    EXPECT_TRUE(violations.empty());
}

TEST(Integration, McPipelineEndToEnd)
{
    // Fig. 5 in miniature: distribution through the whole pipeline.
    mc::Distribution_options mo;
    mo.samples = 1500;
    const auto d = study().mc_tdp(tech::Patterning_option::le3, 64, mo);
    EXPECT_EQ(d.summary.count, 1500u);
    // Worst case dominates the MC right tail.
    const auto wc = study().worst_case(tech::Patterning_option::le3);
    const auto formula = study().formula_params(64);
    const double tdp_wc = analytic::tdp_percent(
        formula, 64, 1.0 + wc.rbl_percent / 100.0,
        1.0 + wc.cbl_percent / 100.0);
    EXPECT_GT(tdp_wc, d.summary.p99);
}

TEST(Integration, SimulatedTdMatchesExplicitPipeline)
{
    // simulate_td with hand-rolled nominal wires equals nominal_td.
    const auto nominal =
        study().decomposed_array(tech::Patterning_option::euv, 16);
    sram::Array_config cfg = study().options().array;
    cfg.word_lines = 16;
    const auto wires = sram::roll_up_nominal(
        study().extractor(), nominal, study().technology(), cfg);
    const double td = study().simulate_td(wires, 16);
    EXPECT_NEAR(td, study().nominal_td(16).td_simulation, 1e-15);
}

} // namespace
