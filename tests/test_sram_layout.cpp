#include "sram/layout.h"

#include <gtest/gtest.h>

#include "pattern/engine.h"
#include "tech/technology.h"
#include "util/contracts.h"

namespace {

using namespace mpsram;

sram::Array_config paper_config(int n = 64)
{
    sram::Array_config cfg;
    cfg.word_lines = n;
    cfg.bl_pairs = 10;
    return cfg;
}

TEST(Layout, TrackCountAndOrder)
{
    const tech::Technology t = tech::n10();
    const geom::Wire_array arr =
        sram::build_metal1_array(t, paper_config());
    ASSERT_EQ(arr.size(), 40u);  // 10 pairs x 4 tracks
    EXPECT_EQ(arr[0].net, "BL0");
    EXPECT_EQ(arr[1].net, "VSS0");
    EXPECT_EQ(arr[2].net, "BLB0");
    EXPECT_EQ(arr[3].net, "VDD0");
    EXPECT_EQ(arr[36].net, "BL9");
}

TEST(Layout, UniformPitchAndWidth)
{
    const tech::Technology t = tech::n10();
    const geom::Wire_array arr =
        sram::build_metal1_array(t, paper_config());
    for (std::size_t i = 0; i < arr.size(); ++i) {
        EXPECT_DOUBLE_EQ(arr[i].width, t.metal1.nominal_width);
        EXPECT_DOUBLE_EQ(arr[i].y_center,
                         static_cast<double>(i) * t.metal1.pitch);
    }
}

TEST(Layout, WireLengthTracksWordLines)
{
    const tech::Technology t = tech::n10();
    const geom::Wire_array a16 =
        sram::build_metal1_array(t, paper_config(16));
    const geom::Wire_array a1024 =
        sram::build_metal1_array(t, paper_config(1024));
    EXPECT_DOUBLE_EQ(a16[0].length, 16.0 * t.cell.cell_length);
    EXPECT_DOUBLE_EQ(a1024[0].length, 1024.0 * t.cell.cell_length);
}

TEST(Layout, VictimPairDefaultsToCenter)
{
    EXPECT_EQ(sram::victim_pair_index(paper_config()), 5);
    sram::Array_config cfg = paper_config();
    cfg.victim_pair = 6;
    EXPECT_EQ(sram::victim_pair_index(cfg), 6);
    cfg.victim_pair = 10;
    EXPECT_THROW(sram::victim_pair_index(cfg), util::Precondition_error);
}

TEST(Layout, FindVictimWires)
{
    const tech::Technology t = tech::n10();
    sram::Array_config cfg = paper_config();
    cfg.victim_pair = 6;
    const geom::Wire_array arr = sram::build_metal1_array(t, cfg);
    const sram::Victim_wires v = sram::find_victim_wires(arr, cfg);
    EXPECT_EQ(arr[v.bl].net, "BL6");
    EXPECT_EQ(arr[v.vss].net, "VSS6");
    EXPECT_EQ(arr[v.blb].net, "BLB6");
    EXPECT_EQ(v.vss, v.bl + 1);
    EXPECT_TRUE(arr.interior(v.bl));
}

TEST(Layout, MaskAVictimPairHasLe3ColorA)
{
    // Pair 6's BL track (index 24) is on mask A after LE3 decomposition —
    // the paper's Table I victim (only OL(B)/OL(C) perturb its corner).
    const tech::Technology t = tech::n10();
    sram::Array_config cfg = paper_config();
    cfg.victim_pair = 6;
    const auto engine = pattern::make_engine(tech::Patterning_option::le3, t);
    const geom::Wire_array arr =
        engine->decompose(sram::build_metal1_array(t, cfg));
    const sram::Victim_wires v = sram::find_victim_wires(arr, cfg);
    EXPECT_EQ(arr[v.bl].color, geom::Mask_color::mask_a);
}

TEST(Layout, SadpMandrelsLandOnPowerRails)
{
    const tech::Technology t = tech::n10();
    const auto engine =
        pattern::make_engine(tech::Patterning_option::sadp, t);
    const geom::Wire_array arr =
        engine->decompose(sram::build_metal1_array(t, paper_config()));
    for (std::size_t i = 0; i < arr.size(); ++i) {
        const bool rail = arr[i].net.rfind("VSS", 0) == 0 ||
                          arr[i].net.rfind("VDD", 0) == 0;
        EXPECT_EQ(arr[i].sadp == geom::Sadp_class::mandrel, rail)
            << arr[i].net;
    }
}

TEST(Layout, NetNameHelpers)
{
    EXPECT_EQ(sram::bl_net(3), "BL3");
    EXPECT_EQ(sram::blb_net(3), "BLB3");
}

TEST(Layout, ValidatesConfig)
{
    const tech::Technology t = tech::n10();
    sram::Array_config cfg = paper_config();
    cfg.word_lines = 0;
    EXPECT_THROW(sram::build_metal1_array(t, cfg),
                 util::Precondition_error);
    cfg = paper_config();
    cfg.bl_pairs = 0;
    EXPECT_THROW(sram::build_metal1_array(t, cfg),
                 util::Precondition_error);
}

} // namespace
