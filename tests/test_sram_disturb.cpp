// The half-select disturb measurement (disturb_sim.h): physics of the
// storage bump, netlist reuse through the trait-bound context, and the
// accuracy-policy agreement of the new transient path.
#include "sram/disturb_sim.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "extract/extractor.h"
#include "sram/bitline_model.h"
#include "sram/layout.h"
#include "sram/read_sim.h"
#include "spice/measure.h"
#include "util/numeric.h"

namespace {

using namespace mpsram;

struct Sim_fixture {
    tech::Technology t = tech::n10();
    sram::Cell_electrical cell = sram::Cell_electrical::n10(t.feol);
    extract::Extractor ex{t.metal1};
    sram::Array_config cfg;
    sram::Bitline_electrical wires;

    explicit Sim_fixture(int n)
    {
        cfg.word_lines = n;
        cfg.victim_pair = 6;
        const geom::Wire_array arr = sram::build_metal1_array(t, cfg);
        wires = sram::roll_up_nominal(ex, arr, t, cfg);
    }
};

TEST(DisturbSim, BumpIsRealButNonDestructive)
{
    Sim_fixture f(16);
    sram::Disturb_netlist net =
        sram::build_disturb_netlist(f.t, f.cell, f.wires, f.cfg);
    const sram::Disturb_result r = sram::simulate_disturb(net);

    // The pass-gate / pull-down divider lifts q well off ground but a
    // read-stable cell keeps it clear of the vdd/2 trip point.
    EXPECT_GT(r.v_bump, 0.02 * f.t.feol.vdd);
    EXPECT_LT(r.v_bump, 0.4 * f.t.feol.vdd);
    EXPECT_FALSE(r.flipped);
    EXPECT_DOUBLE_EQ(r.bump_fraction, r.v_bump / (0.5 * f.t.feol.vdd));
    // qb stays high: the latch holds.
    EXPECT_GT(r.qb_final, 0.8 * f.t.feol.vdd);
    EXPECT_GT(r.steps.accepted, 0);
}

TEST(DisturbSim, PrechargeHeldOnKeepsBitLinesHigh)
{
    // The defining difference to the read: with the precharge never
    // releasing, the far-end bit lines stay near vdd instead of
    // discharging through the accessed cell.
    Sim_fixture f(8);
    sram::Disturb_netlist net =
        sram::build_disturb_netlist(f.t, f.cell, f.wires, f.cfg);
    const sram::Disturb_result r = sram::simulate_disturb(net);
    ASSERT_FALSE(r.flipped);

    sram::Read_netlist read_net =
        sram::build_read_netlist(f.t, f.cell, f.wires, f.cfg);
    const sram::Read_result read = sram::simulate_read(read_net);
    ASSERT_TRUE(read.crossed);
    // The read develops a differential; the half-selected column must not
    // (both heads held by the precharge/equalizer).
    EXPECT_GT(std::abs(read.bl_final - read.blb_final),
              0.5 * f.t.feol.sense_margin);
}

TEST(DisturbSimContext, ReuseMatchesFreshBuilds)
{
    Sim_fixture f(8);
    sram::Bitline_electrical heavier = f.wires;
    heavier.c_bl_cell *= 1.4;
    heavier.c_blb_cell *= 1.4;

    sram::Disturb_sim_context ctx;
    const auto r_nom = ctx.simulate(f.t, f.cell, f.wires, f.cfg);
    const auto r_heavy = ctx.simulate(f.t, f.cell, heavier, f.cfg);
    // Same array config: the second run re-points the ladder in place.
    EXPECT_EQ(ctx.netlist_builds(), 1u);

    // Back to the first wires on the reused netlist: bitwise repeatable.
    const auto r_again = ctx.simulate(f.t, f.cell, f.wires, f.cfg);
    EXPECT_EQ(ctx.netlist_builds(), 1u);
    EXPECT_EQ(r_nom.v_bump, r_again.v_bump);

    // Fresh single-shot builds must agree bitwise with the reused context.
    sram::Disturb_netlist fresh_nom =
        sram::build_disturb_netlist(f.t, f.cell, f.wires, f.cfg);
    EXPECT_EQ(sram::simulate_disturb(fresh_nom).v_bump, r_nom.v_bump);
    sram::Disturb_netlist fresh_heavy =
        sram::build_disturb_netlist(f.t, f.cell, heavier, f.cfg);
    EXPECT_EQ(sram::simulate_disturb(fresh_heavy).v_bump, r_heavy.v_bump);

    // A different word-line count rebuilds netlist and workspace.
    Sim_fixture f16(16);
    const auto r16 = ctx.simulate(f16.t, f16.cell, f16.wires, f16.cfg);
    EXPECT_EQ(ctx.netlist_builds(), 2u);
    sram::Disturb_netlist fresh16 =
        sram::build_disturb_netlist(f16.t, f16.cell, f16.wires, f16.cfg);
    EXPECT_EQ(sram::simulate_disturb(fresh16).v_bump, r16.v_bump);
}

TEST(DisturbSim, AdaptiveMatchesReference)
{
    for (const int n : {8, 24}) {
        Sim_fixture f(n);
        sram::Disturb_options fast;
        fast.accuracy = sram::Sim_accuracy::fast;
        sram::Disturb_options reference;
        reference.accuracy = sram::Sim_accuracy::reference;

        sram::Disturb_netlist net =
            sram::build_disturb_netlist(f.t, f.cell, f.wires, f.cfg);
        const auto r_fast = sram::simulate_disturb(net, fast);
        const auto r_ref = sram::simulate_disturb(net, reference);
        EXPECT_LT(util::rel_diff(r_ref.v_bump, r_fast.v_bump), 5e-3)
            << "n=" << n;
        // The cost contract that motivates the policy.
        EXPECT_LT(r_fast.steps.total_attempts(),
                  r_ref.steps.total_attempts() / 2);
    }
}

TEST(DisturbSim, PeakValueMeasuresTheWaveformMaximum)
{
    // peak_value on a known ramp-and-decay shape (append indexes the
    // voltage vector by probe node id, so probe node 0).
    spice::Transient_result result({0}, {"probe"});
    result.append(0.0, {0.0});
    result.append(1.0, {0.5});
    result.append(2.0, {0.8});
    result.append(3.0, {0.3});
    EXPECT_DOUBLE_EQ(spice::peak_value(result, "probe"), 0.8);
    EXPECT_DOUBLE_EQ(spice::peak_value(result, "probe", 2.5), 0.3);
    EXPECT_EQ(spice::peak_value(result, "probe", 10.0),
              -std::numeric_limits<double>::infinity());
}

} // namespace
