#include "extract/extractor.h"

#include <gtest/gtest.h>

#include "pattern/engine.h"
#include "sram/layout.h"
#include "tech/technology.h"
#include "util/contracts.h"
#include "util/units.h"

namespace {

using namespace mpsram;
namespace units = mpsram::units;

geom::Wire_array uniform_array(int wires, double pitch_nm = 45.0,
                               double width_nm = 26.0)
{
    geom::Wire_array arr;
    for (int i = 0; i < wires; ++i) {
        geom::Wire w;
        w.net = "n" + std::to_string(i);
        w.y_center = i * pitch_nm * units::nm;
        w.width = width_nm * units::nm;
        w.length = 1.0 * units::um;
        arr.add(std::move(w));
    }
    return arr;
}

TEST(Extractor, InteriorWiresOfUniformArrayAreIdentical)
{
    const extract::Extractor ex(tech::n10().metal1);
    const geom::Wire_array arr = uniform_array(7);
    const auto rc2 = ex.wire_rc(arr, 2);
    const auto rc4 = ex.wire_rc(arr, 4);
    EXPECT_DOUBLE_EQ(rc2.r, rc4.r);
    EXPECT_DOUBLE_EQ(rc2.c_total(), rc4.c_total());
    // Symmetric neighbors -> symmetric coupling.
    EXPECT_DOUBLE_EQ(rc2.c_couple_below, rc2.c_couple_above);
}

TEST(Extractor, EdgeWiresHaveLessCouplingMoreFringe)
{
    const extract::Extractor ex(tech::n10().metal1);
    const geom::Wire_array arr = uniform_array(5);
    const auto edge = ex.wire_rc(arr, 0);
    const auto mid = ex.wire_rc(arr, 2);
    EXPECT_EQ(edge.c_couple_below, 0.0);
    EXPECT_GT(edge.c_couple_above, 0.0);
    EXPECT_GT(edge.c_fringe, mid.c_fringe);   // unshielded open side
    EXPECT_LT(edge.c_total(), mid.c_total()); // coupling dominates
}

TEST(Extractor, ComponentsSumToTotal)
{
    const extract::Extractor ex(tech::n10().metal1);
    const geom::Wire_array arr = uniform_array(5);
    const auto rc = ex.wire_rc(arr, 2);
    EXPECT_DOUBLE_EQ(rc.c_total(), rc.c_plate + rc.c_fringe +
                                       rc.c_couple_below +
                                       rc.c_couple_above);
    EXPECT_DOUBLE_EQ(rc.c_ground(), rc.c_plate + rc.c_fringe);
}

TEST(Extractor, NetRcScalesWithLength)
{
    const extract::Extractor ex(tech::n10().metal1);
    geom::Wire_array arr = uniform_array(3);
    const auto net1 = ex.net_rc(arr, 1);

    // Double every wire's length: absolute RC doubles.
    geom::Wire_array arr2;
    for (std::size_t i = 0; i < arr.size(); ++i) {
        geom::Wire w = arr[i];
        w.length *= 2.0;
        arr2.add(std::move(w));
    }
    const auto net2 = ex.net_rc(arr2, 1);
    EXPECT_NEAR(net2.resistance, 2.0 * net1.resistance, 1e-9);
    EXPECT_NEAR(net2.capacitance, 2.0 * net1.capacitance, 1e-24);
}

TEST(Extractor, VariationIsUnityAtNominal)
{
    const extract::Extractor ex(tech::n10().metal1);
    const geom::Wire_array arr = uniform_array(5);
    const auto v = ex.variation(arr, arr, 2);
    EXPECT_DOUBLE_EQ(v.r_factor, 1.0);
    EXPECT_DOUBLE_EQ(v.c_factor, 1.0);
    EXPECT_DOUBLE_EQ(v.r_percent(), 0.0);
    EXPECT_DOUBLE_EQ(v.c_percent(), 0.0);
}

TEST(Extractor, VariationSeesNeighborMovement)
{
    // Moving a neighbor closer must raise the victim's C but not its R.
    const extract::Extractor ex(tech::n10().metal1);
    const geom::Wire_array nominal = uniform_array(5);

    geom::Wire_array shifted;
    for (std::size_t i = 0; i < nominal.size(); ++i) {
        geom::Wire w = nominal[i];
        if (i == 1) w.y_center += 6.0 * units::nm;  // toward wire 2
        shifted.add(std::move(w));
    }
    const auto v = ex.variation(nominal, shifted, 2);
    EXPECT_GT(v.c_factor, 1.0);
    EXPECT_DOUBLE_EQ(v.r_factor, 1.0);
}

TEST(Extractor, VariationSeesOwnWidthChange)
{
    const extract::Extractor ex(tech::n10().metal1);
    const geom::Wire_array nominal = uniform_array(5);

    geom::Wire_array wider;
    for (std::size_t i = 0; i < nominal.size(); ++i) {
        geom::Wire w = nominal[i];
        if (i == 2) w.width += 3.0 * units::nm;
        wider.add(std::move(w));
    }
    const auto v = ex.variation(nominal, wider, 2);
    EXPECT_LT(v.r_factor, 1.0);  // wider -> less resistive
    EXPECT_GT(v.c_factor, 1.0);  // wider + closer edges -> more capacitive
}

TEST(Extractor, VariationValidatesInputs)
{
    const extract::Extractor ex(tech::n10().metal1);
    const geom::Wire_array a = uniform_array(5);
    const geom::Wire_array b = uniform_array(4);
    EXPECT_THROW(ex.variation(a, b, 1), util::Precondition_error);
    EXPECT_THROW(ex.variation(a, a, 9), util::Precondition_error);
}

TEST(Extractor, WireRcValidatesIndex)
{
    const extract::Extractor ex(tech::n10().metal1);
    const geom::Wire_array arr = uniform_array(3);
    EXPECT_THROW(ex.wire_rc(arr, 3), util::Precondition_error);
}

TEST(Extractor, BitlineShieldedByRailsFromOtherBitlines)
{
    // In the SRAM track plan, BL and BLB never neighbor each other: their
    // coupling partners are always rails.  (This is what lets the read
    // netlist fold all bit-line coupling to ground.)
    sram::Array_config cfg;
    cfg.word_lines = 8;
    cfg.bl_pairs = 10;
    const geom::Wire_array arr =
        sram::build_metal1_array(tech::n10(), cfg);
    for (std::size_t i = 0; i < arr.size(); ++i) {
        if (arr[i].net.rfind("BL", 0) != 0) continue;  // BLx and BLBx
        if (i > 0) {
            EXPECT_TRUE(arr[i - 1].net.rfind("VSS", 0) == 0 ||
                        arr[i - 1].net.rfind("VDD", 0) == 0);
        }
        if (i + 1 < arr.size()) {
            EXPECT_TRUE(arr[i + 1].net.rfind("VSS", 0) == 0 ||
                        arr[i + 1].net.rfind("VDD", 0) == 0);
        }
    }
}

} // namespace
