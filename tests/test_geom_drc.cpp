#include "geom/drc.h"

#include <gtest/gtest.h>

#include "util/units.h"

namespace {

using namespace mpsram::geom;
namespace units = mpsram::units;

Wire make_wire(double y_nm, double w_nm)
{
    Wire w;
    w.net = "n";
    w.y_center = y_nm * units::nm;
    w.width = w_nm * units::nm;
    w.length = 1.0 * units::um;
    return w;
}

Drc_rules rules()
{
    Drc_rules r;
    r.min_width = 18.0 * units::nm;
    r.min_space = 12.0 * units::nm;
    return r;
}

TEST(Drc, CleanArrayHasNoViolations)
{
    const Wire_array arr({make_wire(0.0, 26.0), make_wire(45.0, 26.0),
                          make_wire(90.0, 26.0)});
    EXPECT_TRUE(check_drc(arr, rules()).empty());
}

TEST(Drc, DetectsNarrowWire)
{
    const Wire_array arr({make_wire(0.0, 26.0), make_wire(45.0, 15.0)});
    const auto v = check_drc(arr, rules());
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].kind, Drc_violation_kind::min_width);
    EXPECT_EQ(v[0].wire_index, 1u);
    EXPECT_NEAR(v[0].actual, 15.0 * units::nm, 1e-18);
}

TEST(Drc, DetectsTightSpacing)
{
    // Centers 45 apart, widths 35 -> spacing 10 < 12.
    const Wire_array arr({make_wire(0.0, 35.0), make_wire(45.0, 35.0)});
    const auto v = check_drc(arr, rules());
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].kind, Drc_violation_kind::min_space);
    EXPECT_EQ(v[0].wire_index, 0u);
}

TEST(Drc, DetectsShort)
{
    // Centers 20 apart, widths 26 -> spacing -6: merged wires.
    const Wire_array arr({make_wire(0.0, 26.0), make_wire(20.0, 26.0)});
    const auto v = check_drc(arr, rules());
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].kind, Drc_violation_kind::short_circuit);
    EXPECT_LT(v[0].actual, 0.0);
}

TEST(Drc, ReportsMultipleViolations)
{
    const Wire_array arr({make_wire(0.0, 10.0), make_wire(45.0, 40.0),
                          make_wire(85.0, 40.0)});
    const auto v = check_drc(arr, rules());
    // wire0 narrow + spacing(0,1) = 45-25 = 20 ok... spacing(1,2) = 40-40 = 0
    ASSERT_EQ(v.size(), 2u);
    EXPECT_EQ(v[0].kind, Drc_violation_kind::min_width);
    EXPECT_EQ(v[1].kind, Drc_violation_kind::short_circuit);
}

TEST(Drc, DescribeMentionsKindAndNanometers)
{
    const Wire_array arr({make_wire(0.0, 10.0)});
    const auto v = check_drc(arr, rules());
    ASSERT_EQ(v.size(), 1u);
    const std::string text = v[0].describe();
    EXPECT_NE(text.find("min-width"), std::string::npos);
    EXPECT_NE(text.find("10"), std::string::npos);
    EXPECT_NE(text.find("nm"), std::string::npos);
}

TEST(Drc, EmptyArrayIsClean)
{
    EXPECT_TRUE(check_drc(Wire_array{}, rules()).empty());
}

} // namespace
