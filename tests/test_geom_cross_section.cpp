#include "geom/cross_section.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/contracts.h"
#include "util/units.h"

namespace {

using mpsram::geom::Cross_section;
namespace units = mpsram::units;

TEST(CrossSection, RectangleWhenNoTaper)
{
    const auto xs = Cross_section::from_taper(26 * units::nm, 30 * units::nm,
                                              0.0);
    EXPECT_DOUBLE_EQ(xs.top_width(), xs.bottom_width());
    EXPECT_DOUBLE_EQ(xs.area(), 26 * units::nm * 30 * units::nm);
    EXPECT_DOUBLE_EQ(xs.sidewall_length(), 30 * units::nm);
}

TEST(CrossSection, TrenchFlaresTowardTop)
{
    const double h = 30 * units::nm;
    const double taper = 0.1;
    const auto xs = Cross_section::from_taper(26 * units::nm, h, taper);
    EXPECT_DOUBLE_EQ(xs.bottom_width(), 26 * units::nm);
    EXPECT_NEAR(xs.top_width(),
                26 * units::nm + 2.0 * h * std::tan(taper), 1e-18);
    EXPECT_GT(xs.top_width(), xs.bottom_width());
}

TEST(CrossSection, WidthAtInterpolatesLinearly)
{
    const Cross_section xs(30 * units::nm, 20 * units::nm, 10 * units::nm);
    EXPECT_DOUBLE_EQ(xs.width_at(0.0), 20 * units::nm);
    EXPECT_DOUBLE_EQ(xs.width_at(1.0), 30 * units::nm);
    EXPECT_DOUBLE_EQ(xs.width_at(0.5), 25 * units::nm);
    EXPECT_DOUBLE_EQ(xs.mean_width(), 25 * units::nm);
    EXPECT_THROW(xs.width_at(1.5), mpsram::util::Precondition_error);
}

TEST(CrossSection, AreaIsTrapezoidFormula)
{
    const Cross_section xs(30.0, 20.0, 10.0);
    EXPECT_DOUBLE_EQ(xs.area(), 0.5 * (30.0 + 20.0) * 10.0);
}

TEST(CrossSection, SidewallLongerThanHeightWhenTapered)
{
    const Cross_section xs(30.0, 20.0, 10.0);
    // run = 5, height = 10 -> length = sqrt(125)
    EXPECT_NEAR(xs.sidewall_length(), std::sqrt(125.0), 1e-12);
}

TEST(CrossSection, InsetRemovesLinerFromSidesAndBottom)
{
    const Cross_section xs(30.0, 24.0, 10.0);
    const Cross_section core = xs.inset(2.0);
    EXPECT_DOUBLE_EQ(core.top_width(), 26.0);
    EXPECT_DOUBLE_EQ(core.bottom_width(), 20.0);
    EXPECT_DOUBLE_EQ(core.height(), 8.0);
    EXPECT_LT(core.area(), xs.area());
}

TEST(CrossSection, InsetZeroIsIdentity)
{
    const Cross_section xs(30.0, 24.0, 10.0);
    const Cross_section same = xs.inset(0.0);
    EXPECT_DOUBLE_EQ(same.area(), xs.area());
}

TEST(CrossSection, InsetConsumingConductorThrows)
{
    const Cross_section xs(10.0, 8.0, 5.0);
    EXPECT_THROW(xs.inset(4.5), mpsram::util::Precondition_error);
}

TEST(CrossSection, RejectsDegenerateShapes)
{
    EXPECT_THROW(Cross_section(0.0, 1.0, 1.0),
                 mpsram::util::Precondition_error);
    EXPECT_THROW(Cross_section(1.0, -1.0, 1.0),
                 mpsram::util::Precondition_error);
    EXPECT_THROW(Cross_section(1.0, 1.0, 0.0),
                 mpsram::util::Precondition_error);
    EXPECT_THROW(Cross_section::from_taper(1.0, 1.0, 0.6),
                 mpsram::util::Precondition_error);
}

class TaperAreaMonotoneTest : public ::testing::TestWithParam<double> {};

TEST_P(TaperAreaMonotoneTest, AreaGrowsWithDrawnWidth)
{
    // Property: at any taper, area is strictly monotone in drawn width.
    const double taper = GetParam();
    double prev = 0.0;
    for (double w = 10.0; w <= 40.0; w += 2.0) {
        const double area =
            Cross_section::from_taper(w * units::nm, 25 * units::nm, taper)
                .area();
        EXPECT_GT(area, prev);
        prev = area;
    }
}

INSTANTIATE_TEST_SUITE_P(Tapers, TaperAreaMonotoneTest,
                         ::testing::Values(0.0, 0.03, 0.0869, 0.15));

} // namespace
