#include "pattern/le3.h"

#include <gtest/gtest.h>

#include "sram/layout.h"
#include "tech/technology.h"
#include "util/contracts.h"
#include "util/units.h"

namespace {

using namespace mpsram;
namespace units = mpsram::units;

geom::Wire_array nominal_array(int pairs = 4)
{
    sram::Array_config cfg;
    cfg.word_lines = 8;
    cfg.bl_pairs = pairs;
    return sram::build_metal1_array(tech::n10(), cfg);
}

TEST(Le3, FiveVariationAxes)
{
    const pattern::Le3_engine engine(tech::n10());
    const auto& axes = engine.axes();
    ASSERT_EQ(axes.size(), 5u);
    EXPECT_EQ(axes[pattern::Le3_engine::cd_a].name, "cd_mask_a");
    EXPECT_EQ(axes[pattern::Le3_engine::ol_c].name, "overlay_c");
    // CD sigma = 3sigma/3 = 1 nm; OL sigma = 8/3 nm.
    EXPECT_NEAR(axes[0].sigma, 1.0 * units::nm, 1e-15);
    EXPECT_NEAR(axes[3].sigma, 8.0 / 3.0 * units::nm, 1e-15);
}

TEST(Le3, DecomposeAssignsCyclicColors)
{
    const pattern::Le3_engine engine(tech::n10());
    const geom::Wire_array arr = engine.decompose(nominal_array());
    for (std::size_t i = 0; i < arr.size(); ++i) {
        const auto expected = static_cast<geom::Mask_color>(
            static_cast<int>(geom::Mask_color::mask_a) + i % 3);
        EXPECT_EQ(arr[i].color, expected) << "wire " << i;
    }
}

TEST(Le3, AdjacentWiresNeverShareAMask)
{
    const pattern::Le3_engine engine(tech::n10());
    const geom::Wire_array arr = engine.decompose(nominal_array());
    for (std::size_t i = 0; i + 1 < arr.size(); ++i) {
        EXPECT_NE(arr[i].color, arr[i + 1].color);
    }
}

TEST(Le3, NominalSampleIsIdentity)
{
    const pattern::Le3_engine engine(tech::n10());
    const geom::Wire_array arr = engine.decompose(nominal_array());
    const geom::Wire_array realized =
        engine.realize(arr, engine.nominal_sample());
    for (std::size_t i = 0; i < arr.size(); ++i) {
        EXPECT_DOUBLE_EQ(realized[i].width, arr[i].width);
        EXPECT_DOUBLE_EQ(realized[i].y_center, arr[i].y_center);
    }
}

TEST(Le3, CdBiasAppliesPerMask)
{
    const pattern::Le3_engine engine(tech::n10());
    const geom::Wire_array arr = engine.decompose(nominal_array());

    pattern::Process_sample s = engine.nominal_sample();
    s[pattern::Le3_engine::cd_b] = 2.0 * units::nm;
    const geom::Wire_array realized = engine.realize(arr, s);

    for (std::size_t i = 0; i < arr.size(); ++i) {
        const double dw = realized[i].width - arr[i].width;
        if (arr[i].color == geom::Mask_color::mask_b) {
            EXPECT_NEAR(dw, 2.0 * units::nm, 1e-18);
        } else {
            EXPECT_NEAR(dw, 0.0, 1e-18);
        }
    }
}

TEST(Le3, OverlayShiftsOnlyMaskBAndC)
{
    const pattern::Le3_engine engine(tech::n10());
    const geom::Wire_array arr = engine.decompose(nominal_array());

    pattern::Process_sample s = engine.nominal_sample();
    s[pattern::Le3_engine::ol_b] = 3.0 * units::nm;
    s[pattern::Le3_engine::ol_c] = -2.0 * units::nm;
    const geom::Wire_array realized = engine.realize(arr, s);

    for (std::size_t i = 0; i < arr.size(); ++i) {
        const double dy = realized[i].y_center - arr[i].y_center;
        switch (arr[i].color) {
        case geom::Mask_color::mask_a:
            EXPECT_NEAR(dy, 0.0, 1e-18);  // alignment reference
            break;
        case geom::Mask_color::mask_b:
            EXPECT_NEAR(dy, 3.0 * units::nm, 1e-18);
            break;
        case geom::Mask_color::mask_c:
            EXPECT_NEAR(dy, -2.0 * units::nm, 1e-18);
            break;
        default:
            FAIL() << "undecomposed wire";
        }
    }
}

TEST(Le3, WorstCornerCrunchesBothSidesOfMaskAVictim)
{
    // CD +3s on all masks and opposing overlay shifts must reduce both
    // spacings of a mask-A wire by CD + OL.
    const tech::Technology t = tech::n10();
    const pattern::Le3_engine engine(t);
    const geom::Wire_array arr = engine.decompose(nominal_array());

    pattern::Process_sample s = engine.nominal_sample();
    const double cd = 3.0 * units::nm;
    const double ol = 8.0 * units::nm;
    s[pattern::Le3_engine::cd_a] = cd;
    s[pattern::Le3_engine::cd_b] = cd;
    s[pattern::Le3_engine::cd_c] = cd;
    // Wire 6 is mask_a (6 % 3 == 0); below neighbor 5 is mask_c, above
    // neighbor 7 is mask_b.  Shift C up and B down.
    s[pattern::Le3_engine::ol_c] = ol;
    s[pattern::Le3_engine::ol_b] = -ol;
    const geom::Wire_array realized = engine.realize(arr, s);

    const double nominal_space = t.metal1.nominal_space();
    EXPECT_NEAR(realized.spacing_below(6), nominal_space - cd - ol, 1e-17);
    EXPECT_NEAR(realized.spacing_above(6), nominal_space - cd - ol, 1e-17);
}

TEST(Le3, RealizeValidatesSampleSizeAndDecomposition)
{
    const pattern::Le3_engine engine(tech::n10());
    const geom::Wire_array undecomposed = nominal_array();
    const geom::Wire_array arr = engine.decompose(undecomposed);

    EXPECT_THROW(engine.realize(arr, std::vector<double>(3, 0.0)),
                 util::Precondition_error);
    EXPECT_THROW(engine.realize(undecomposed, engine.nominal_sample()),
                 util::Precondition_error);
}

TEST(Le3, PinchOffThrows)
{
    const pattern::Le3_engine engine(tech::n10());
    const geom::Wire_array arr = engine.decompose(nominal_array());
    pattern::Process_sample s = engine.nominal_sample();
    s[pattern::Le3_engine::cd_a] = -30.0 * units::nm;
    EXPECT_THROW(engine.realize(arr, s), util::Postcondition_error);
}

} // namespace
