#include "extract/capacitance.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tech/technology.h"
#include "util/contracts.h"
#include "util/units.h"

namespace {

using namespace mpsram;
namespace units = mpsram::units;

tech::Beol_layer m1() { return tech::n10().metal1; }

TEST(Coupling, ParallelPlateLimitWithoutTaper)
{
    // With zero taper and no fringe constant the Simpson integral must
    // reduce to the textbook eps * t / s plate formula.
    tech::Beol_layer layer = m1();
    layer.taper_angle = 0.0;
    extract::Extraction_options opts;
    opts.k_fringe_coupling = 0.0;

    const double s = 20.0 * units::nm;
    const double c = extract::coupling_per_length(layer, s, opts);
    const double expected =
        layer.ild.permittivity() * layer.thickness / s;
    EXPECT_NEAR(c, expected, 1e-6 * expected);
}

class CouplingMonotoneTest : public ::testing::TestWithParam<double> {};

TEST_P(CouplingMonotoneTest, DecreasesWithSpacing)
{
    tech::Beol_layer layer = m1();
    layer.taper_angle = GetParam();
    const extract::Extraction_options opts;

    double prev = 1e18;
    for (double s = 8.0; s <= 40.0; s += 1.0) {
        const double c =
            extract::coupling_per_length(layer, s * units::nm, opts);
        EXPECT_LT(c, prev) << "spacing " << s;
        prev = c;
    }
}

INSTANTIATE_TEST_SUITE_P(Tapers, CouplingMonotoneTest,
                         ::testing::Values(0.0, 0.05, 0.0869));

TEST(Coupling, SuperlinearGrowthAtSmallGaps)
{
    // The trench flare makes coupling grow faster than 1/s: compare the
    // relative gains of two equal spacing cuts.
    const tech::Beol_layer layer = m1();
    const extract::Extraction_options opts;

    const double c19 = extract::coupling_per_length(layer, 19e-9, opts);
    const double c14 = extract::coupling_per_length(layer, 14e-9, opts);
    const double c9 = extract::coupling_per_length(layer, 9e-9, opts);
    const double first_gain = c14 / c19;
    const double second_gain = c9 / c14;
    EXPECT_GT(second_gain, first_gain);
}

TEST(Coupling, MinGapClampKeepsItFinite)
{
    const tech::Beol_layer layer = m1();
    const extract::Extraction_options opts;
    const double c = extract::coupling_per_length(layer, 0.1e-9, opts);
    EXPECT_TRUE(std::isfinite(c));
    EXPECT_GT(c, 0.0);
    // Negative drawn spacing (overlap corner) also stays finite.
    const double c_neg = extract::coupling_per_length(layer, -2e-9, opts);
    EXPECT_TRUE(std::isfinite(c_neg));
    EXPECT_GE(c_neg, c);
}

TEST(Coupling, SimpsonPointsValidated)
{
    extract::Extraction_options opts;
    opts.integration_points = 4;  // must be odd
    EXPECT_THROW(extract::coupling_per_length(m1(), 20e-9, opts),
                 util::Precondition_error);
}

TEST(Plate, GrowsWithWidth)
{
    const tech::Beol_layer layer = m1();
    const extract::Extraction_options opts;
    const double narrow = extract::plate_per_length(layer, 20e-9, opts);
    const double wide = extract::plate_per_length(layer, 30e-9, opts);
    EXPECT_GT(wide, narrow);
    // Approximately linear in width.
    const double mid = extract::plate_per_length(layer, 25e-9, opts);
    EXPECT_NEAR(mid, 0.5 * (narrow + wide), 0.01 * mid);
}

TEST(Plate, CloserPlanesMoreCapacitance)
{
    tech::Beol_layer near = m1();
    near.below_plane_dist = 30e-9;
    near.above_plane_dist = 30e-9;
    tech::Beol_layer far = m1();
    far.below_plane_dist = 90e-9;
    far.above_plane_dist = 90e-9;
    const extract::Extraction_options opts;
    EXPECT_GT(extract::plate_per_length(near, 26e-9, opts),
              extract::plate_per_length(far, 26e-9, opts));
}

TEST(Fringe, ShieldedByCloseNeighbors)
{
    const tech::Beol_layer layer = m1();
    const extract::Extraction_options opts;
    const double open =
        extract::fringe_per_length(layer, std::nullopt, opts);
    const double far = extract::fringe_per_length(layer, 40e-9, opts);
    const double close = extract::fringe_per_length(layer, 10e-9, opts);
    EXPECT_GT(open, far);
    EXPECT_GT(far, close);
    EXPECT_GT(close, 0.0);
}

TEST(Fringe, UnshieldedEqualsCoefficientTimesTwoPlanes)
{
    const tech::Beol_layer layer = m1();
    extract::Extraction_options opts;
    const double open =
        extract::fringe_per_length(layer, std::nullopt, opts);
    EXPECT_NEAR(open,
                layer.ild.permittivity() * opts.k_fringe_ground * 2.0,
                1e-6 * open);
}

TEST(Fringe, MonotoneInSpacing)
{
    const tech::Beol_layer layer = m1();
    const extract::Extraction_options opts;
    double prev = 0.0;
    for (double s = 5.0; s <= 60.0; s += 5.0) {
        const double f =
            extract::fringe_per_length(layer, s * units::nm, opts);
        EXPECT_GT(f, prev);
        prev = f;
    }
}

} // namespace
