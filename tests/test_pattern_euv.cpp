#include "pattern/euv.h"

#include <gtest/gtest.h>

#include "sram/layout.h"
#include "tech/technology.h"
#include "util/contracts.h"
#include "util/units.h"

namespace {

using namespace mpsram;
namespace units = mpsram::units;

geom::Wire_array nominal_array()
{
    sram::Array_config cfg;
    cfg.word_lines = 8;
    cfg.bl_pairs = 4;
    return sram::build_metal1_array(tech::n10(), cfg);
}

TEST(Euv, SingleVariationAxis)
{
    const pattern::Euv_engine engine(tech::n10());
    ASSERT_EQ(engine.axes().size(), 1u);
    EXPECT_EQ(engine.axes()[0].name, "cd");
    EXPECT_NEAR(engine.axes()[0].sigma, 1.0 * units::nm, 1e-15);
}

TEST(Euv, DecomposeAssignsSingleMask)
{
    const pattern::Euv_engine engine(tech::n10());
    const geom::Wire_array arr = engine.decompose(nominal_array());
    for (std::size_t i = 0; i < arr.size(); ++i) {
        EXPECT_EQ(arr[i].color, geom::Mask_color::mask_a);
        EXPECT_EQ(arr[i].sadp, geom::Sadp_class::none);
    }
}

TEST(Euv, UniformCdBiasMovesAllWidthsTogether)
{
    const pattern::Euv_engine engine(tech::n10());
    const geom::Wire_array arr = engine.decompose(nominal_array());

    pattern::Process_sample s = {2.5 * units::nm};
    const geom::Wire_array realized = engine.realize(arr, s);
    for (std::size_t i = 0; i < arr.size(); ++i) {
        EXPECT_NEAR(realized[i].width - arr[i].width, 2.5 * units::nm,
                    1e-18);
        EXPECT_DOUBLE_EQ(realized[i].y_center, arr[i].y_center);
    }
}

TEST(Euv, SpacingShrinksByExactlyTheCd)
{
    const tech::Technology t = tech::n10();
    const pattern::Euv_engine engine(t);
    const geom::Wire_array arr = engine.decompose(nominal_array());

    pattern::Process_sample s = {3.0 * units::nm};
    const geom::Wire_array realized = engine.realize(arr, s);
    for (std::size_t i = 0; i + 1 < realized.size(); ++i) {
        EXPECT_NEAR(realized.spacing_above(i),
                    t.metal1.nominal_space() - 3.0 * units::nm, 1e-17);
    }
}

TEST(Euv, NominalSampleIsIdentity)
{
    const pattern::Euv_engine engine(tech::n10());
    const geom::Wire_array arr = engine.decompose(nominal_array());
    const geom::Wire_array realized =
        engine.realize(arr, engine.nominal_sample());
    for (std::size_t i = 0; i < arr.size(); ++i) {
        EXPECT_DOUBLE_EQ(realized[i].width, arr[i].width);
    }
}

TEST(Euv, ValidatesSampleAndPinchOff)
{
    const pattern::Euv_engine engine(tech::n10());
    const geom::Wire_array arr = engine.decompose(nominal_array());
    EXPECT_THROW(engine.realize(arr, std::vector<double>{}),
                 util::Precondition_error);
    EXPECT_THROW(engine.realize(arr, std::vector<double>{-30e-9}),
                 util::Postcondition_error);
}

TEST(EngineFactory, BuildsEveryOption)
{
    const tech::Technology t = tech::n10();
    for (const auto option : tech::all_patterning_options) {
        const auto engine = pattern::make_engine(option, t);
        ASSERT_NE(engine, nullptr);
        EXPECT_EQ(engine->option(), option);
        EXPECT_EQ(engine->name(), tech::to_string(option));
        EXPECT_FALSE(engine->axes().empty());
    }
}

TEST(EngineFactory, GaussianSamplesRespectTruncation)
{
    const tech::Technology t = tech::n10();
    const auto engine = pattern::make_engine(tech::Patterning_option::le3, t);
    util::Rng rng(3);
    for (int i = 0; i < 200; ++i) {
        const auto s = engine->sample_gaussian(rng, 3.0);
        ASSERT_EQ(s.size(), engine->axes().size());
        for (std::size_t a = 0; a < s.size(); ++a) {
            EXPECT_LE(std::abs(s[a]), 3.0 * engine->axes()[a].sigma + 1e-18);
        }
    }
}

} // namespace
