// Determinism of the parallel execution engine at the analysis level: the
// Monte-Carlo distribution, the corner search, and the study batch APIs
// must return bitwise-identical results at any thread count.
#include "mc/distribution.h"
#include "mc/worst_case.h"

#include <gtest/gtest.h>

#include "analytic/params.h"
#include "core/runner.h"
#include "core/study.h"
#include "pattern/engine.h"
#include "sram/bitline_model.h"
#include "tech/technology.h"
#include "util/rng.h"

namespace {

using namespace mpsram;

struct Fixture {
    tech::Technology t = tech::n10();
    extract::Extractor ex{t.metal1};
    sram::Array_config cfg;
    std::unique_ptr<pattern::Patterning_engine> engine;
    geom::Wire_array nominal;
    sram::Victim_wires victims;
    analytic::Td_params params;

    explicit Fixture(tech::Patterning_option option)
    {
        cfg.word_lines = 64;
        cfg.victim_pair = 6;
        engine = pattern::make_engine(option, t);
        nominal = engine->decompose(sram::build_metal1_array(t, cfg));
        victims = sram::find_victim_wires(nominal, cfg);
        const auto cell = sram::Cell_electrical::n10(t.feol);
        const auto wires = sram::roll_up_nominal(ex, nominal, t, cfg);
        params = analytic::derive_params(t, cell, wires);
    }

    mc::Tdp_distribution run(int threads, mc::Sampling sampling,
                             int samples = 600)
    {
        mc::Distribution_options mo;
        mo.samples = samples;
        mo.seed = 99;
        mo.sampling = sampling;
        mo.runner.threads = threads;
        return mc::tdp_distribution(*engine, ex, nominal, victims.bl,
                                    params, 64, mo);
    }
};

void expect_bitwise_equal(const mc::Tdp_distribution& a,
                          const mc::Tdp_distribution& b)
{
    // vector<double>::operator== is exact value comparison — the bitwise
    // identity the engine promises.
    EXPECT_EQ(a.tdp, b.tdp);
    EXPECT_EQ(a.rvar, b.rvar);
    EXPECT_EQ(a.cvar, b.cvar);
    EXPECT_EQ(a.summary.mean, b.summary.mean);
    EXPECT_EQ(a.summary.stddev, b.summary.stddev);
}

TEST(ParallelMc, PseudoRandomIdenticalAtAnyThreadCount)
{
    for (const auto option : tech::all_patterning_options) {
        Fixture f(option);
        const auto serial = f.run(1, mc::Sampling::pseudo_random);
        for (const int threads : {2, 3, 4, 0}) {
            expect_bitwise_equal(serial,
                                 f.run(threads,
                                       mc::Sampling::pseudo_random));
        }
    }
}

TEST(ParallelMc, LatinHypercubeIdenticalAtAnyThreadCount)
{
    Fixture f(tech::Patterning_option::le3);
    const auto serial = f.run(1, mc::Sampling::latin_hypercube);
    for (const int threads : {2, 4}) {
        expect_bitwise_equal(serial,
                             f.run(threads, mc::Sampling::latin_hypercube));
    }
}

TEST(ParallelMc, SubstreamsPreserveStatistics)
{
    // The counter-based substream refactor must not distort the
    // distribution: the paper's LE3-widest ordering still holds.
    Fixture le3(tech::Patterning_option::le3);
    Fixture sadp(tech::Patterning_option::sadp);
    const auto d_le3 = le3.run(4, mc::Sampling::pseudo_random, 4000);
    const auto d_sadp = sadp.run(4, mc::Sampling::pseudo_random, 4000);
    EXPECT_GT(d_le3.summary.stddev, 2.0 * d_sadp.summary.stddev);
}

TEST(ParallelWorstCase, IdenticalAtAnyThreadCount)
{
    for (const auto option : tech::all_patterning_options) {
        Fixture f(option);
        const auto serial =
            mc::find_worst_case(*f.engine, f.ex, f.nominal, f.victims.bl,
                                f.victims.vss, 3, core::Runner_options{1});
        for (const int threads : {2, 4}) {
            const auto parallel = mc::find_worst_case(
                *f.engine, f.ex, f.nominal, f.victims.bl, f.victims.vss, 3,
                core::Runner_options{threads});
            EXPECT_EQ(serial.corner.sample, parallel.corner.sample);
            EXPECT_EQ(serial.corner.metric, parallel.corner.metric);
            EXPECT_EQ(serial.variation.r_factor,
                      parallel.variation.r_factor);
            EXPECT_EQ(serial.variation.c_factor,
                      parallel.variation.c_factor);
            EXPECT_EQ(serial.vss_r_factor, parallel.vss_r_factor);
        }
    }
}

TEST(StudyBatch, McTdpBatchMatchesSingleCalls)
{
    const core::Variability_study study;
    mc::Distribution_options mo;
    mo.samples = 300;
    mo.runner.threads = 4;

    const std::vector<core::Variability_study::Mc_case> cases = {
        {tech::Patterning_option::le3, 64, 8e-9},
        {tech::Patterning_option::sadp, 64, -1.0},
        {tech::Patterning_option::euv, 32, -1.0},
    };

    const auto batch = study.mc_tdp_batch(cases, mo);
    ASSERT_EQ(batch.size(), cases.size());

    for (std::size_t i = 0; i < cases.size(); ++i) {
        mc::Distribution_options serial = mo;
        serial.runner.threads = 1;
        const auto single = study.mc_tdp(cases[i].option,
                                         cases[i].word_lines, serial,
                                         cases[i].ol_3sigma);
        expect_bitwise_equal(batch[i], single);
    }
}

TEST(StudyBatch, WorstCaseAllOptionsMatchesPerOption)
{
    const core::Variability_study study;
    // Canonical parameter order since PR 5: value axes first, runner last.
    const auto rows =
        study.worst_case_all_options(-1.0, core::Runner_options{4});
    ASSERT_EQ(rows.size(), tech::all_patterning_options.size());

    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto single = study.worst_case(tech::all_patterning_options[i]);
        EXPECT_EQ(rows[i].option, single.option);
        EXPECT_EQ(rows[i].corner, single.corner);
        EXPECT_EQ(rows[i].cbl_percent, single.cbl_percent);
        EXPECT_EQ(rows[i].rbl_percent, single.rbl_percent);
        EXPECT_EQ(rows[i].vss_r_percent, single.vss_r_percent);
    }
}

TEST(StudyBatch, NominalTdCacheIsThreadSafe)
{
    // Hammer the td_nominal_cache_ from several workers: same word_lines
    // from four jobs plus two distinct lengths.  All six must agree with
    // the serial values (the cache is deterministic, so redundant compute
    // on a race still lands on one value).
    const core::Variability_study study;
    const double expected_16 = study.nominal_td(16).td_simulation;
    const double expected_32 = study.nominal_td(32).td_simulation;

    std::vector<double> results(6, 0.0);
    core::Run_plan plan;
    plan.add_indexed(6, [&](std::size_t i, const core::Run_context&) {
        const int word_lines = i < 4 ? 16 : 32;
        results[i] = study.nominal_td(word_lines).td_simulation;
    });
    core::run(plan, core::Runner_options{4});

    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(results[i], expected_16);
    }
    EXPECT_EQ(results[4], expected_32);
    EXPECT_EQ(results[5], expected_32);
}

} // namespace
