// Fixed-size worker pool with a chunked parallel_for.
//
// The pool is the low-level execution primitive under core::Runner: callers
// describe *what* is independent (a range of job indices), the pool decides
// *who* runs it.  Design rules that keep results deterministic:
//
//   - parallel_for(count, ...) always invokes the body exactly once per
//     index in [0, count); each invocation must write only to its own
//     output slot.  Under that contract results are bitwise independent of
//     the thread count and of chunk scheduling.
//   - The calling thread participates as worker 0, so a pool constructed
//     with `threads == 1` runs everything inline with zero synchronization.
//   - The first exception thrown by any body is captured and rethrown on
//     the calling thread after the loop quiesces; remaining chunks are
//     abandoned.
#ifndef MPSRAM_UTIL_THREAD_POOL_H
#define MPSRAM_UTIL_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mpsram::util {

class Thread_pool {
public:
    /// Body of a parallel loop: (job index, worker id in [0, threads)).
    using Loop_body = std::function<void(std::size_t, int)>;

    /// A pool of `threads` workers (the constructing thread counts as one,
    /// so `threads - 1` OS threads are spawned).  `threads <= 0` resolves
    /// to hardware_threads().
    explicit Thread_pool(int threads = 0);

    /// Joins the workers.  Must not be called while a parallel_for is in
    /// flight on another thread.
    ~Thread_pool();

    Thread_pool(const Thread_pool&) = delete;
    Thread_pool& operator=(const Thread_pool&) = delete;

    /// Total worker count including the calling thread.
    int thread_count() const { return static_cast<int>(workers_.size()) + 1; }

    /// Run body(i, worker) exactly once for every i in [0, count), split
    /// into chunks of `chunk` consecutive indices (0 picks a chunk size
    /// that gives each worker several chunks for load balancing).  Blocks
    /// until every index is done or an exception aborts the loop; the
    /// first exception is rethrown here.  Not reentrant: the body must not
    /// call parallel_for on the same pool.
    void parallel_for(std::size_t count, std::size_t chunk,
                      const Loop_body& body);

    /// std::thread::hardware_concurrency with a floor of 1.
    static int hardware_threads();

private:
    void worker_main(int worker);
    void drain(int worker);

    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    std::uint64_t epoch_ = 0;         ///< bumped per parallel_for call
    std::size_t busy_workers_ = 0;    ///< spawned workers still in drain()
    bool stopping_ = false;

    // State of the in-flight loop (written under mutex_ before the epoch
    // bump, read by workers after they observe the new epoch).
    const Loop_body* body_ = nullptr;
    std::size_t count_ = 0;
    std::size_t chunk_ = 1;
    std::atomic<std::size_t> next_{0};
    std::atomic<bool> aborted_{false};
    std::exception_ptr error_;
};

} // namespace mpsram::util

#endif // MPSRAM_UTIL_THREAD_POOL_H
