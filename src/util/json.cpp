#include "util/json.h"

#include <bit>
#include <charconv>
#include <cmath>

#include "util/contracts.h"
#include "util/hash.h"

namespace mpsram::util {

namespace {

[[noreturn]] void kind_error(const char* wanted)
{
    throw Precondition_error(std::string("json value is not ") + wanted);
}

} // namespace

bool Json::as_bool() const
{
    const bool* b = std::get_if<bool>(&value_);
    if (!b) kind_error("a boolean");
    return *b;
}

double Json::as_double() const
{
    if (const double* d = std::get_if<double>(&value_)) return *d;
    if (const std::uint64_t* u = std::get_if<std::uint64_t>(&value_)) {
        return static_cast<double>(*u);
    }
    kind_error("a number");
}

std::uint64_t Json::as_u64() const
{
    if (const std::uint64_t* u = std::get_if<std::uint64_t>(&value_)) {
        return *u;
    }
    if (const double* d = std::get_if<double>(&value_)) {
        // Canonical dumps never take this path (integral doubles dump
        // without a decimal point and re-parse as u64), but hand-written
        // input like `{"samples": 100.0}` should still be accepted when
        // the value is exactly representable.
        expects(*d >= 0.0 && *d <= 9007199254740992.0 &&
                    *d == std::floor(*d),
                "json number is not an exact unsigned integer");
        return static_cast<std::uint64_t>(*d);
    }
    kind_error("an unsigned integer");
}

const std::string& Json::as_string() const
{
    const std::string* s = std::get_if<std::string>(&value_);
    if (!s) kind_error("a string");
    return *s;
}

const Json_array& Json::as_array() const
{
    const Json_array* a = std::get_if<Json_array>(&value_);
    if (!a) kind_error("an array");
    return *a;
}

const Json_object& Json::as_object() const
{
    const Json_object* o = std::get_if<Json_object>(&value_);
    if (!o) kind_error("an object");
    return *o;
}

Json_array& Json::as_array()
{
    Json_array* a = std::get_if<Json_array>(&value_);
    if (!a) kind_error("an array");
    return *a;
}

Json_object& Json::as_object()
{
    Json_object* o = std::get_if<Json_object>(&value_);
    if (!o) kind_error("an object");
    return *o;
}

const Json* Json::find(std::string_view key) const
{
    const Json_object* o = std::get_if<Json_object>(&value_);
    if (!o) return nullptr;
    // Last writer wins on (non-canonical) duplicate keys.
    const Json* found = nullptr;
    for (const auto& [k, v] : *o) {
        if (k == key) found = &v;
    }
    return found;
}

const Json& Json::at(std::string_view key) const
{
    const Json* found = find(key);
    if (!found) {
        throw Precondition_error("json object is missing key '" +
                                 std::string(key) + "'");
    }
    return *found;
}

void Json::set(std::string_view key, Json value)
{
    if (is_null()) value_ = Json_object{};
    Json_object& o = as_object();
    for (auto& [k, v] : o) {
        if (k == key) {
            v = std::move(value);
            return;
        }
    }
    o.emplace_back(std::string(key), std::move(value));
}

// --- dump --------------------------------------------------------------------

namespace {

void dump_string(const std::string& s, std::string& out)
{
    static constexpr char hex[] = "0123456789abcdef";
    out += '"';
    for (const char raw : s) {
        const auto c = static_cast<unsigned char>(raw);
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (c < 0x20) {
                out += "\\u00";
                out += hex[c >> 4];
                out += hex[c & 0xf];
            } else {
                out += raw;
            }
        }
    }
    out += '"';
}

void dump_number(double v, std::string& out)
{
    // Shortest decimal that round-trips to the identical bit pattern —
    // the property that makes dump() content-addressable.  Non-finite
    // values have no JSON form; callers encode them via json_of_double.
    expects(std::isfinite(v), "json cannot dump a non-finite number "
                              "(use json_of_double)");
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    out.append(buf, res.ptr);
}

void dump_value(const Json& j, std::string& out)
{
    switch (j.kind()) {
    case Json::Kind::null: out += "null"; break;
    case Json::Kind::boolean: out += j.as_bool() ? "true" : "false"; break;
    case Json::Kind::number: dump_number(j.as_double(), out); break;
    case Json::Kind::u64: {
        char buf[24];
        const auto res = std::to_chars(buf, buf + sizeof buf, j.as_u64());
        out.append(buf, res.ptr);
        break;
    }
    case Json::Kind::string: dump_string(j.as_string(), out); break;
    case Json::Kind::array: {
        out += '[';
        const Json_array& a = j.as_array();
        for (std::size_t i = 0; i < a.size(); ++i) {
            if (i) out += ',';
            dump_value(a[i], out);
        }
        out += ']';
        break;
    }
    case Json::Kind::object: {
        out += '{';
        const Json_object& o = j.as_object();
        for (std::size_t i = 0; i < o.size(); ++i) {
            if (i) out += ',';
            dump_string(o[i].first, out);
            out += ':';
            dump_value(o[i].second, out);
        }
        out += '}';
        break;
    }
    }
}

} // namespace

std::string Json::dump() const
{
    std::string out;
    dump_value(*this, out);
    return out;
}

// --- parse -------------------------------------------------------------------

namespace {

class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    Json run()
    {
        const Json value = parse_value();
        skip_ws();
        if (pos_ != text_.size()) fail("trailing characters");
        return value;
    }

private:
    [[noreturn]] void fail(const std::string& what) const
    {
        throw Precondition_error("json parse error at offset " +
                                 std::to_string(pos_) + ": " + what);
    }

    void skip_ws()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
            ++pos_;
        }
    }

    char peek()
    {
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c)
    {
        if (peek() != c) fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consume_literal(std::string_view lit)
    {
        if (text_.substr(pos_, lit.size()) != lit) return false;
        pos_ += lit.size();
        return true;
    }

    Json parse_value()
    {
        skip_ws();
        switch (peek()) {
        case '{': return parse_object();
        case '[': return parse_array();
        case '"': return Json(parse_string());
        case 't':
            if (!consume_literal("true")) fail("bad literal");
            return Json(true);
        case 'f':
            if (!consume_literal("false")) fail("bad literal");
            return Json(false);
        case 'n':
            if (!consume_literal("null")) fail("bad literal");
            return Json(nullptr);
        default: return parse_number();
        }
    }

    Json parse_object()
    {
        expect('{');
        Json_object members;
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return Json(std::move(members));
        }
        while (true) {
            skip_ws();
            std::string key = parse_string();
            skip_ws();
            expect(':');
            members.emplace_back(std::move(key), parse_value());
            skip_ws();
            const char c = peek();
            ++pos_;
            if (c == '}') return Json(std::move(members));
            if (c != ',') fail("expected ',' or '}'");
        }
    }

    Json parse_array()
    {
        expect('[');
        Json_array items;
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return Json(std::move(items));
        }
        while (true) {
            items.push_back(parse_value());
            skip_ws();
            const char c = peek();
            ++pos_;
            if (c == ']') return Json(std::move(items));
            if (c != ',') fail("expected ',' or ']'");
        }
    }

    unsigned parse_hex4()
    {
        unsigned value = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = peek();
            ++pos_;
            value <<= 4;
            if (c >= '0' && c <= '9') {
                value |= static_cast<unsigned>(c - '0');
            } else if (c >= 'a' && c <= 'f') {
                value |= static_cast<unsigned>(c - 'a' + 10);
            } else if (c >= 'A' && c <= 'F') {
                value |= static_cast<unsigned>(c - 'A' + 10);
            } else {
                fail("bad \\u escape");
            }
        }
        return value;
    }

    void append_utf8(unsigned cp, std::string& out)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            out += static_cast<char>(0xf0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        }
    }

    std::string parse_string()
    {
        expect('"');
        std::string out;
        while (true) {
            const char c = peek();
            ++pos_;
            if (c == '"') return out;
            if (c == '\\') {
                const char esc = peek();
                ++pos_;
                switch (esc) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    unsigned cp = parse_hex4();
                    if (cp >= 0xd800 && cp <= 0xdbff &&
                        text_.substr(pos_, 2) == "\\u") {
                        pos_ += 2;
                        const unsigned lo = parse_hex4();
                        if (lo < 0xdc00 || lo > 0xdfff) {
                            fail("bad surrogate pair");
                        }
                        cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                    }
                    append_utf8(cp, out);
                    break;
                }
                default: fail("bad escape");
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                fail("unescaped control character in string");
            } else {
                out += c;
            }
        }
    }

    Json parse_number()
    {
        const std::size_t start = pos_;
        bool integral = true;
        if (peek() == '-') {
            integral = false;
            ++pos_;
        }
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c >= '0' && c <= '9') {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                integral = false;
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start) fail("expected a value");
        const char* first = text_.data() + start;
        const char* last = text_.data() + pos_;
        if (integral) {
            // Unsigned integer tokens keep 64-bit precision (seeds exceed
            // a double's 2^53 exact range); overflow falls back to double.
            std::uint64_t u = 0;
            const auto res = std::from_chars(first, last, u);
            if (res.ec == std::errc{} && res.ptr == last) return Json(u);
        }
        double d = 0.0;
        const auto res = std::from_chars(first, last, d);
        if (res.ec != std::errc{} || res.ptr != last) fail("bad number");
        return Json(d);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

} // namespace

Json Json::parse(std::string_view text)
{
    return Parser(text).run();
}

// --- non-finite double tagging -----------------------------------------------

Json json_of_double(double v)
{
    if (std::isfinite(v)) return Json(v);
    return Json("f64:" + hex16(std::bit_cast<std::uint64_t>(v)));
}

double double_of_json(const Json& j)
{
    if (j.is_string()) {
        const std::string& s = j.as_string();
        expects(s.size() == 20 && s.compare(0, 4, "f64:") == 0,
                "expected an 'f64:<16 hex digits>' tagged double");
        std::uint64_t bits = 0;
        const auto res =
            std::from_chars(s.data() + 4, s.data() + s.size(), bits, 16);
        expects(res.ec == std::errc{} && res.ptr == s.data() + s.size(),
                "bad hex digits in tagged double");
        return std::bit_cast<double>(bits);
    }
    if (j.kind() == Json::Kind::u64) {
        // Integral doubles dump without a decimal point and re-parse as
        // u64; values that took that path are exactly representable, but
        // 2^64-1 itself would round up on the cast, so go through the
        // text form only for in-range values.
        const std::uint64_t u = j.as_u64();
        const double d = static_cast<double>(u);
        // Guard the cast-back: 2^64-1 rounds UP to 2^64, whose conversion
        // to u64 would be undefined, not merely inexact.
        expects(d < 18446744073709551616.0 &&
                    static_cast<std::uint64_t>(d) == u,
                "integer is too large for an exact double");
        return d;
    }
    return j.as_double();
}

} // namespace mpsram::util
