// SI unit multipliers and physical constants.
//
// The whole library computes in SI base units (meters, seconds, ohms,
// farads, volts).  These constexpr multipliers make call sites read like the
// paper: `26 * units::nm`, `0.7 * units::volt`, `5.59 * units::ps`.
#ifndef MPSRAM_UTIL_UNITS_H
#define MPSRAM_UTIL_UNITS_H

namespace mpsram::units {

// --- length ---------------------------------------------------------------
inline constexpr double m  = 1.0;
inline constexpr double cm = 1e-2;
inline constexpr double mm = 1e-3;
inline constexpr double um = 1e-6;
inline constexpr double nm = 1e-9;

// --- time -----------------------------------------------------------------
inline constexpr double s  = 1.0;
inline constexpr double ms = 1e-3;
inline constexpr double us = 1e-6;
inline constexpr double ns = 1e-9;
inline constexpr double ps = 1e-12;
inline constexpr double fs = 1e-15;

// --- electrical -----------------------------------------------------------
inline constexpr double volt  = 1.0;
inline constexpr double mV    = 1e-3;
inline constexpr double amp   = 1.0;
inline constexpr double mA    = 1e-3;
inline constexpr double uA    = 1e-6;
inline constexpr double nA    = 1e-9;
inline constexpr double ohm   = 1.0;
inline constexpr double kohm  = 1e3;
inline constexpr double farad = 1.0;
inline constexpr double pF    = 1e-12;
inline constexpr double fF    = 1e-15;
inline constexpr double aF    = 1e-18;

// --- resistivity ----------------------------------------------------------
inline constexpr double ohm_m  = 1.0;
/// micro-ohm centimeter, the customary unit for metal resistivity.
inline constexpr double uohm_cm = 1e-8;

// --- physical constants ----------------------------------------------------
/// Vacuum permittivity [F/m].
inline constexpr double eps0 = 8.8541878128e-12;
/// Boltzmann constant [J/K].
inline constexpr double kb = 1.380649e-23;
/// Elementary charge [C].
inline constexpr double q_e = 1.602176634e-19;
/// Thermal voltage kT/q at 300 K [V].
inline constexpr double vt_300k = kb * 300.0 / q_e;

} // namespace mpsram::units

#endif // MPSRAM_UTIL_UNITS_H
