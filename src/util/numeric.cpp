#include "util/numeric.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"

namespace mpsram::util {

double lerp(double x0, double y0, double x1, double y1, double x)
{
    expects(x1 != x0, "lerp endpoints must differ in x");
    const double t = (x - x0) / (x1 - x0);
    return y0 + t * (y1 - y0);
}

Piecewise_linear::Piecewise_linear(std::vector<double> xs,
                                   std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys))
{
    expects(xs_.size() == ys_.size(),
            "Piecewise_linear needs equal x/y lengths");
    for (std::size_t i = 1; i < xs_.size(); ++i) {
        expects(xs_[i] > xs_[i - 1],
                "Piecewise_linear x samples must be strictly increasing");
    }
}

void Piecewise_linear::append(double x, double y)
{
    expects(xs_.empty() || x > xs_.back(),
            "Piecewise_linear::append x must increase");
    xs_.push_back(x);
    ys_.push_back(y);
}

double Piecewise_linear::at(double x) const
{
    expects(!xs_.empty(), "Piecewise_linear::at on empty waveform");
    if (x <= xs_.front()) return ys_.front();
    if (x >= xs_.back()) return ys_.back();
    const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
    const auto hi = static_cast<std::size_t>(it - xs_.begin());
    const auto lo = hi - 1;
    return lerp(xs_[lo], ys_[lo], xs_[hi], ys_[hi], x);
}

double Piecewise_linear::first_crossing(double level, double from) const
{
    if (xs_.size() == 1) {
        return (ys_[0] == level && xs_[0] >= from) ? xs_[0] : -1.0;
    }
    for (std::size_t i = 1; i < xs_.size(); ++i) {
        if (xs_[i] < from) continue;
        const double y0 = ys_[i - 1] - level;
        const double y1 = ys_[i] - level;
        if (y0 == 0.0) {
            if (xs_[i - 1] >= from) return xs_[i - 1];
            // Segment starts exactly at the level but before `from`.  A
            // flat-at-level segment is at the level everywhere, so the
            // first qualifying point is `from` itself; a non-flat segment
            // leaves the level immediately and cannot cross again before
            // xs_[i] (linear), so fall through to the next segment.
            if (y1 == 0.0) return from;
            continue;
        }
        if ((y0 < 0.0 && y1 >= 0.0) || (y0 > 0.0 && y1 <= 0.0)) {
            // Interpolate the crossing inside this segment.
            const double t = y0 / (y0 - y1);
            const double x = xs_[i - 1] + t * (xs_[i] - xs_[i - 1]);
            if (x >= from) return x;
        }
    }
    return -1.0;
}

double polyval(const std::vector<double>& coeffs, double x)
{
    double acc = 0.0;
    for (auto it = coeffs.rbegin(); it != coeffs.rend(); ++it) {
        acc = acc * x + *it;
    }
    return acc;
}

double bisect(const std::function<double(double)>& f, double lo, double hi,
              double tol, int max_iter)
{
    expects(hi > lo, "bisect needs a non-empty interval");
    double flo = f(lo);
    double fhi = f(hi);
    if (flo == 0.0) return lo;
    if (fhi == 0.0) return hi;
    expects(std::signbit(flo) != std::signbit(fhi),
            "bisect requires a sign change on the interval");

    for (int i = 0; i < max_iter && (hi - lo) > tol; ++i) {
        const double mid = 0.5 * (lo + hi);
        const double fmid = f(mid);
        if (fmid == 0.0) return mid;
        if (std::signbit(fmid) == std::signbit(flo)) {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    return 0.5 * (lo + hi);
}

double rel_diff(double a, double b, double floor)
{
    const double scale = std::max({std::fabs(a), std::fabs(b), floor});
    return std::fabs(a - b) / scale;
}

double normal_cdf(double z)
{
    return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double normal_quantile(double p)
{
    expects(p > 0.0 && p < 1.0, "normal_quantile needs p in (0,1)");

    // Acklam's rational approximation.
    static constexpr double a[] = {-3.969683028665376e+01,
                                   2.209460984245205e+02,
                                   -2.759285104469687e+02,
                                   1.383577518672690e+02,
                                   -3.066479806614716e+01,
                                   2.506628277459239e+00};
    static constexpr double b[] = {-5.447609879822406e+01,
                                   1.615858368580409e+02,
                                   -1.556989798598866e+02,
                                   6.680131188771972e+01,
                                   -1.328068155288572e+01};
    static constexpr double c[] = {-7.784894002430293e-03,
                                   -3.223964580411365e-01,
                                   -2.400758277161838e+00,
                                   -2.549732539343734e+00,
                                   4.374664141464968e+00,
                                   2.938163982698783e+00};
    static constexpr double d[] = {7.784695709041462e-03,
                                   3.224671290700398e-01,
                                   2.445134137142996e+00,
                                   3.754408661907416e+00};
    constexpr double p_low = 0.02425;

    double z = 0.0;
    if (p < p_low) {
        const double q = std::sqrt(-2.0 * std::log(p));
        z = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    } else if (p <= 1.0 - p_low) {
        const double q = p - 0.5;
        const double r = q * q;
        z = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
             a[5]) *
            q /
            (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
             1.0);
    } else {
        const double q = std::sqrt(-2.0 * std::log(1.0 - p));
        z = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
              c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }

    // One Newton refinement against the exact CDF.  In the extreme tails
    // (|z| beyond ~38) the pdf underflows to 0 and the correction would be
    // NaN/Inf; the rational approximation is already the best available
    // there, so skip the refinement when the pdf underflows.
    const double pdf =
        std::exp(-0.5 * z * z) / std::sqrt(2.0 * 3.14159265358979323846);
    if (pdf > 0.0) {
        const double e = normal_cdf(z) - p;
        z -= e / pdf;
    }
    return z;
}

} // namespace mpsram::util
