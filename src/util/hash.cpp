#include "util/hash.h"

namespace mpsram::util {

std::uint64_t fnv1a(std::string_view text)
{
    return Fnv1a{}.update(text).digest();
}

std::string hex16(std::uint64_t v)
{
    static constexpr char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[v & 0xf];
        v >>= 4;
    }
    return out;
}

} // namespace mpsram::util
