// Minimal CSV writer so benches can dump raw series (Fig. 4 curves, Fig. 5
// samples) for external plotting in addition to the console rendering.
#ifndef MPSRAM_UTIL_CSV_H
#define MPSRAM_UTIL_CSV_H

#include <ostream>
#include <string>
#include <vector>

namespace mpsram::util {

/// Streaming CSV writer with RFC-4180 quoting for text cells.
class Csv_writer {
public:
    /// Writes to an externally owned stream; the stream must outlive this.
    explicit Csv_writer(std::ostream& out) : out_(&out) {}

    void write_header(const std::vector<std::string>& names);
    void write_row(const std::vector<std::string>& cells);
    void write_row(const std::vector<double>& values);

private:
    void write_cells(const std::vector<std::string>& cells);
    static std::string escape(const std::string& cell);

    std::ostream* out_;
};

} // namespace mpsram::util

#endif // MPSRAM_UTIL_CSV_H
