// Stable content hashing for the persistence layer (core/result_cache.h).
//
// FNV-1a over 64 bits: a fixed, platform-independent byte-stream hash, so
// a cache key computed on one machine or in one process is the same key
// everywhere.  std::hash is deliberately NOT used anywhere near the cache
// — its value is unspecified per platform/STL and may change between
// library versions, which would silently orphan every stored entry.
//
// Multi-byte inputs (u64, double) are folded little-endian-style by
// explicit shifts, so the digest does not depend on host endianness.
// Doubles hash their IEEE bit pattern (std::bit_cast), which makes the
// digest total over NaNs: a NaN-poisoned value hashes reproducibly
// instead of poisoning the key.
#ifndef MPSRAM_UTIL_HASH_H
#define MPSRAM_UTIL_HASH_H

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>

namespace mpsram::util {

/// Incremental FNV-1a (64-bit) hasher.
class Fnv1a {
public:
    Fnv1a& update(std::string_view text)
    {
        for (const char c : text) step(static_cast<unsigned char>(c));
        return *this;
    }

    Fnv1a& update(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            step(static_cast<unsigned char>(v >> (8 * i)));
        }
        return *this;
    }

    /// Hash the IEEE-754 bit pattern (total over NaN payloads and -0.0).
    Fnv1a& update(double v)
    {
        return update(std::bit_cast<std::uint64_t>(v));
    }

    std::uint64_t digest() const { return state_; }

private:
    void step(unsigned char byte)
    {
        state_ ^= byte;
        state_ *= 1099511628211ull;  // FNV prime (64-bit)
    }

    std::uint64_t state_ = 14695981039346656037ull;  // FNV offset basis
};

/// One-shot convenience.
std::uint64_t fnv1a(std::string_view text);

/// Fixed-width lowercase hex rendering of a digest ("00ab...", 16 chars)
/// — the cache's file-name form of a key.
std::string hex16(std::uint64_t v);

} // namespace mpsram::util

#endif // MPSRAM_UTIL_HASH_H
