#include "util/atomic_file.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "util/contracts.h"

namespace mpsram::util {

std::optional<std::string> read_file(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) return std::nullopt;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    expects(!in.bad(), "read error on '" + path + "'");
    return buffer.str();
}

void write_file_atomic(const std::string& path, std::string_view contents)
{
    // Unique within the process by counter, across processes by pid; both
    // are deterministic inputs (no clocks, no RNG).
    static std::atomic<unsigned long> serial{0};
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid()) + "." +
        std::to_string(serial.fetch_add(1, std::memory_order_relaxed));

    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        expects(static_cast<bool>(out),
                "cannot create temporary file '" + tmp + "'");
        out.write(contents.data(),
                  static_cast<std::streamsize>(contents.size()));
        out.flush();
        expects(static_cast<bool>(out), "write error on '" + tmp + "'");
    }

    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw Precondition_error("cannot rename '" + tmp + "' over '" +
                                 path + "'");
    }
}

} // namespace mpsram::util
