// Streaming and batch statistics used by the Monte-Carlo engine and the
// benchmark harnesses (Table IV reports standard deviations of tdp).
#ifndef MPSRAM_UTIL_STATS_H
#define MPSRAM_UTIL_STATS_H

#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace mpsram::util {

/// True when two doubles carry the same bit pattern.  This is the
/// equality the determinism contract promises ("bitwise identical at any
/// thread count"): unlike IEEE ==, a NaN-poisoned result equals itself,
/// so parity/determinism gates don't spuriously fail on the documented
/// NaN paths (e.g. a non-flipping write sample).
inline bool bits_equal(double a, double b)
{
    return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

inline bool bits_equal(const std::vector<double>& a,
                       const std::vector<double>& b)
{
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (!bits_equal(a[i], b[i])) return false;
    }
    return true;
}

/// Numerically stable streaming accumulator (Welford's algorithm).
///
/// Tracks count, mean, variance, min and max of a stream of samples without
/// storing them.  Suitable for millions of Monte-Carlo samples.
class Running_stats {
public:
    void add(double x);

    /// Merge another accumulator into this one (parallel reduction).
    void merge(const Running_stats& other);

    std::size_t count() const { return n_; }
    double mean() const;
    /// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 samples.
    double variance() const;
    double stddev() const;
    double min() const;
    double max() const;

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/// Streaming quantile estimator (Jain & Chlamtac's P-squared algorithm):
/// five markers track the target quantile of a stream in O(1) memory.
/// The first five observations are exact; afterwards the middle marker is
/// adjusted with parabolic (or linear) interpolation toward its desired
/// position.  The estimate is a few tenths of a percent off the exact
/// order statistic for smooth distributions — the memory-flat alternative
/// summarize() cannot be at 10^7 samples.  Purely sequential arithmetic:
/// feeding the same stream in the same order always yields the same bits.
class P2_quantile {
public:
    explicit P2_quantile(double p);

    void add(double x);

    /// Current estimate.  Exact (interpolated order statistic) while the
    /// stream holds at most five samples; requires at least one.
    double result() const;

    std::size_t count() const { return n_; }

private:
    double p_ = 0.5;
    std::size_t n_ = 0;
    double q_[5] = {};     ///< marker heights
    double pos_[5] = {};   ///< marker positions (0-based counts)
    double frac_[5] = {};  ///< desired-position fractions {0, p/2, p, ...}
};

/// Batch summary of a stored sample vector, including quantiles.
struct Sample_summary {
    std::size_t count = 0;
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
    double median = 0.0;
    double p01 = 0.0;   ///< 1st percentile
    double p99 = 0.0;   ///< 99th percentile

    /// Bit-pattern comparison (see bits_equal) — the thread-determinism
    /// check of the parity tests; NaN-poisoned summaries compare equal to
    /// identical NaN-poisoned summaries.
    bool operator==(const Sample_summary& o) const
    {
        return count == o.count && bits_equal(mean, o.mean) &&
               bits_equal(stddev, o.stddev) && bits_equal(min, o.min) &&
               bits_equal(max, o.max) && bits_equal(median, o.median) &&
               bits_equal(p01, o.p01) && bits_equal(p99, o.p99);
    }
};

/// Compute a full summary of `samples`.  Empty input yields a zero summary.
/// Quantiles are order-statistic selections (util::quantile), not a full
/// sort — O(n) per quantile, measurable from ~10^6 samples up.
Sample_summary summarize(const std::vector<double>& samples);

/// Linear-interpolated quantile (q in [0,1]) of `sorted` ascending samples.
double quantile_sorted(const std::vector<double>& sorted, double q);

/// Linear-interpolated quantile of an UNSORTED sample set via
/// std::nth_element selection — O(n) instead of a full O(n log n) sort,
/// bitwise identical to quantile_sorted on the sorted copy.  `scratch` is
/// partially reordered (callers owning a throwaway copy can issue several
/// quantiles against the same buffer).
double quantile(std::vector<double>& scratch, double q);

/// Pearson correlation coefficient of two equally sized vectors.
double correlation(const std::vector<double>& a, const std::vector<double>& b);

} // namespace mpsram::util

#endif // MPSRAM_UTIL_STATS_H
