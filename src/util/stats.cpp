#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"

namespace mpsram::util {

void Running_stats::add(double x)
{
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void Running_stats::merge(const Running_stats& other)
{
    if (other.n_ == 0) return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double Running_stats::mean() const
{
    expects(n_ > 0, "Running_stats::mean requires at least one sample");
    return mean_;
}

double Running_stats::variance() const
{
    if (n_ < 2) return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double Running_stats::stddev() const
{
    return std::sqrt(variance());
}

double Running_stats::min() const
{
    expects(n_ > 0, "Running_stats::min requires at least one sample");
    return min_;
}

double Running_stats::max() const
{
    expects(n_ > 0, "Running_stats::max requires at least one sample");
    return max_;
}

P2_quantile::P2_quantile(double p) : p_(p)
{
    expects(p > 0.0 && p < 1.0, "P2 quantile p must be in (0,1)");
    frac_[0] = 0.0;
    frac_[1] = p / 2.0;
    frac_[2] = p;
    frac_[3] = (1.0 + p) / 2.0;
    frac_[4] = 1.0;
}

void P2_quantile::add(double x)
{
    if (n_ < 5) {
        // Exact phase: keep the first five observations sorted in q_.
        std::size_t i = n_;
        while (i > 0 && q_[i - 1] > x) {
            q_[i] = q_[i - 1];
            --i;
        }
        q_[i] = x;
        ++n_;
        for (int m = 0; m < 5; ++m) pos_[m] = static_cast<double>(m);
        return;
    }

    // Find the marker cell of x, clamping the extremes.
    int k = 0;
    if (x < q_[0]) {
        q_[0] = x;
        k = 0;
    } else if (x >= q_[4]) {
        q_[4] = std::max(q_[4], x);
        k = 3;
    } else {
        for (k = 0; k < 3; ++k) {
            if (x < q_[k + 1]) break;
        }
    }

    ++n_;
    for (int m = k + 1; m < 5; ++m) pos_[m] += 1.0;

    // Nudge the three interior markers toward their desired positions.
    const double last = static_cast<double>(n_ - 1);
    for (int m = 1; m < 4; ++m) {
        const double desired = last * frac_[m];
        const double d = desired - pos_[m];
        const bool room_up = pos_[m + 1] - pos_[m] > 1.0;
        const bool room_down = pos_[m - 1] - pos_[m] < -1.0;
        if ((d >= 1.0 && room_up) || (d <= -1.0 && room_down)) {
            const double s = d >= 1.0 ? 1.0 : -1.0;
            // Piecewise-parabolic (P2) height prediction.
            const double np = pos_[m + 1];
            const double nc = pos_[m];
            const double nm = pos_[m - 1];
            const double parabolic =
                q_[m] + s / (np - nm) *
                            ((nc - nm + s) * (q_[m + 1] - q_[m]) / (np - nc) +
                             (np - nc - s) * (q_[m] - q_[m - 1]) / (nc - nm));
            if (q_[m - 1] < parabolic && parabolic < q_[m + 1]) {
                q_[m] = parabolic;
            } else {
                // Fall back to linear interpolation toward the neighbor.
                const int j = s > 0.0 ? m + 1 : m - 1;
                q_[m] += s * (q_[j] - q_[m]) / (pos_[j] - nc);
            }
            pos_[m] += s;
        }
    }
}

double P2_quantile::result() const
{
    expects(n_ > 0, "P2 quantile of an empty stream");
    if (n_ <= 5) {
        const std::vector<double> sorted(q_, q_ + n_);
        return quantile_sorted(sorted, p_);
    }
    return q_[2];
}

double quantile_sorted(const std::vector<double>& sorted, double q)
{
    expects(!sorted.empty(), "quantile of empty sample set");
    expects(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");
    if (sorted.size() == 1) return sorted.front();
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const auto hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double quantile(std::vector<double>& scratch, double q)
{
    expects(!scratch.empty(), "quantile of empty sample set");
    expects(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");
    if (scratch.size() == 1) return scratch.front();

    // Same order statistics and interpolation arithmetic as
    // quantile_sorted, obtained by selection instead of a full sort.
    const double pos = q * static_cast<double>(scratch.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(lo);

    const auto lo_it = scratch.begin() + static_cast<std::ptrdiff_t>(lo);
    std::nth_element(scratch.begin(), lo_it, scratch.end());
    const double v_lo = *lo_it;
    // quantile_sorted clamps hi to the last element; after nth_element the
    // upper partition holds every element >= v_lo, so its minimum is the
    // (lo+1)-th order statistic.
    const double v_hi = lo + 1 < scratch.size()
                            ? *std::min_element(lo_it + 1, scratch.end())
                            : v_lo;
    return v_lo * (1.0 - frac) + v_hi * frac;
}

Sample_summary summarize(const std::vector<double>& samples)
{
    Sample_summary s;
    if (samples.empty()) return s;

    Running_stats acc;
    for (double x : samples) acc.add(x);

    std::vector<double> scratch = samples;

    s.count = acc.count();
    s.mean = acc.mean();
    s.stddev = acc.stddev();
    s.min = acc.min();
    s.max = acc.max();
    s.median = quantile(scratch, 0.5);
    s.p01 = quantile(scratch, 0.01);
    s.p99 = quantile(scratch, 0.99);
    return s;
}

double correlation(const std::vector<double>& a, const std::vector<double>& b)
{
    expects(a.size() == b.size(), "correlation requires equal sizes");
    expects(a.size() >= 2, "correlation requires at least two samples");

    Running_stats sa;
    Running_stats sb;
    for (double x : a) sa.add(x);
    for (double x : b) sb.add(x);

    const double ma = sa.mean();
    const double mb = sb.mean();
    double cov = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        cov += (a[i] - ma) * (b[i] - mb);
    }
    cov /= static_cast<double>(a.size() - 1);

    const double denom = sa.stddev() * sb.stddev();
    expects(denom > 0.0, "correlation undefined for constant series");
    return cov / denom;
}

} // namespace mpsram::util
