#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"

namespace mpsram::util {

void Running_stats::add(double x)
{
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void Running_stats::merge(const Running_stats& other)
{
    if (other.n_ == 0) return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double Running_stats::mean() const
{
    expects(n_ > 0, "Running_stats::mean requires at least one sample");
    return mean_;
}

double Running_stats::variance() const
{
    if (n_ < 2) return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double Running_stats::stddev() const
{
    return std::sqrt(variance());
}

double Running_stats::min() const
{
    expects(n_ > 0, "Running_stats::min requires at least one sample");
    return min_;
}

double Running_stats::max() const
{
    expects(n_ > 0, "Running_stats::max requires at least one sample");
    return max_;
}

double quantile_sorted(const std::vector<double>& sorted, double q)
{
    expects(!sorted.empty(), "quantile of empty sample set");
    expects(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");
    if (sorted.size() == 1) return sorted.front();
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const auto hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Sample_summary summarize(const std::vector<double>& samples)
{
    Sample_summary s;
    if (samples.empty()) return s;

    Running_stats acc;
    for (double x : samples) acc.add(x);

    std::vector<double> sorted = samples;
    std::sort(sorted.begin(), sorted.end());

    s.count = acc.count();
    s.mean = acc.mean();
    s.stddev = acc.stddev();
    s.min = acc.min();
    s.max = acc.max();
    s.median = quantile_sorted(sorted, 0.5);
    s.p01 = quantile_sorted(sorted, 0.01);
    s.p99 = quantile_sorted(sorted, 0.99);
    return s;
}

double correlation(const std::vector<double>& a, const std::vector<double>& b)
{
    expects(a.size() == b.size(), "correlation requires equal sizes");
    expects(a.size() >= 2, "correlation requires at least two samples");

    Running_stats sa;
    Running_stats sb;
    for (double x : a) sa.add(x);
    for (double x : b) sb.add(x);

    const double ma = sa.mean();
    const double mb = sb.mean();
    double cov = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        cov += (a[i] - ma) * (b[i] - mb);
    }
    cov /= static_cast<double>(a.size() - 1);

    const double denom = sa.stddev() * sb.stddev();
    expects(denom > 0.0, "correlation undefined for constant series");
    return cov / denom;
}

} // namespace mpsram::util
