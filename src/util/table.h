// Console table formatting for the benchmark harnesses.
//
// Every bench binary prints the same rows the paper's tables report; this
// helper keeps those tables aligned and consistent across binaries.
#ifndef MPSRAM_UTIL_TABLE_H
#define MPSRAM_UTIL_TABLE_H

#include <string>
#include <vector>

namespace mpsram::util {

/// Column-aligned text table.  Cells are strings; numeric helpers format
/// with fixed or scientific precision.
class Table {
public:
    explicit Table(std::vector<std::string> headers);

    /// Append a full row; must match the header width.
    void add_row(std::vector<std::string> cells);

    std::size_t rows() const { return rows_.size(); }
    std::size_t columns() const { return headers_.size(); }

    /// Render with a header rule and 2-space column gutters.
    std::string render() const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// Fixed-point formatting, e.g. fmt_fixed(20.601, 2) == "20.60".
std::string fmt_fixed(double value, int precision);

/// Scientific formatting in the paper's style, e.g. "5.59E-12".
std::string fmt_sci(double value, int precision);

/// Percentage with sign, e.g. "+61.56%".
std::string fmt_percent(double fraction, int precision);

/// Engineering time formatting, e.g. "5.59 ps".
std::string fmt_time(double seconds, int precision);

} // namespace mpsram::util

#endif // MPSRAM_UTIL_TABLE_H
