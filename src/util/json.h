// Canonical JSON for the persistence layer (core/serialize.h,
// core/result_cache.h).
//
// A deliberately small value type + parser + dumper with the properties a
// content-addressed cache needs and a general-purpose library would not
// promise:
//
//   * Deterministic compact dump: no whitespace, object members in
//     insertion order (objects are ordered vectors, never hash maps), and
//     doubles rendered by std::to_chars shortest-round-trip — the same
//     value always produces the same bytes, so dump() output is hashable.
//   * Bitwise numeric round-trip: a finite double dumps to the shortest
//     decimal that parses back to the identical bit pattern; integers up
//     to 2^64-1 (seeds) keep full precision through a dedicated u64 kind
//     (a plain double kind would truncate above 2^53).
//   * Non-finite doubles (NaN-poisoned rows, infinities) have no JSON
//     number form; json_of_double encodes them as the tagged string
//     "f64:<16 hex digits>" of their bit pattern and double_of_json
//     decodes it, so a NaN payload round-trips bitwise (see the
//     Result_table serialization contract, core/serialize.h).
//
// Parsing is strict: malformed input throws util::Precondition_error with
// the byte offset.  Duplicate object keys are accepted (last one wins via
// find(); canonical producers never emit them).
#ifndef MPSRAM_UTIL_JSON_H
#define MPSRAM_UTIL_JSON_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace mpsram::util {

class Json;
/// Ordered members — canonical dumps must not depend on a hash order.
using Json_object = std::vector<std::pair<std::string, Json>>;
using Json_array = std::vector<Json>;

class Json {
public:
    enum class Kind { null, boolean, number, u64, string, array, object };

    Json() = default;
    Json(std::nullptr_t) {}
    Json(bool b) : value_(b) {}
    Json(double v) : value_(v) {}
    Json(std::uint64_t v) : value_(v) {}
    Json(int v) : value_(static_cast<double>(v)) {}
    Json(const char* s) : value_(std::string(s)) {}
    Json(std::string s) : value_(std::move(s)) {}
    Json(std::string_view s) : value_(std::string(s)) {}
    Json(Json_array a) : value_(std::move(a)) {}
    Json(Json_object o) : value_(std::move(o)) {}

    Kind kind() const { return static_cast<Kind>(value_.index()); }
    bool is_null() const { return kind() == Kind::null; }
    bool is_object() const { return kind() == Kind::object; }
    bool is_array() const { return kind() == Kind::array; }
    bool is_string() const { return kind() == Kind::string; }

    /// Typed access; throws util::Precondition_error on a kind mismatch.
    bool as_bool() const;
    /// Accepts both numeric kinds (an integral double dumps without a
    /// decimal point and parses back as u64; the cast is exact for every
    /// value that took that path).
    double as_double() const;
    /// Accepts u64, and a non-negative integral double (<= 2^53).
    std::uint64_t as_u64() const;
    const std::string& as_string() const;
    const Json_array& as_array() const;
    const Json_object& as_object() const;
    Json_array& as_array();
    Json_object& as_object();

    /// Object member lookup; nullptr when absent (or not an object).
    const Json* find(std::string_view key) const;
    /// Object member access; throws naming the missing key.
    const Json& at(std::string_view key) const;
    /// Append (or replace) an object member, keeping insertion order.
    void set(std::string_view key, Json value);

    /// Canonical compact rendering (see the header comment).
    std::string dump() const;

    /// Strict parse; throws util::Precondition_error on malformed input.
    static Json parse(std::string_view text);

private:
    std::variant<std::nullptr_t, bool, double, std::uint64_t, std::string,
                 Json_array, Json_object>
        value_ = nullptr;
};

/// Encode a double for JSON: finite values as numbers (shortest
/// round-trip), non-finite as the tagged string "f64:<16 hex digits>" of
/// the IEEE bit pattern.  Always round-trips bitwise via double_of_json.
Json json_of_double(double v);

/// Decode json_of_double's output (number, u64, or "f64:..." string).
double double_of_json(const Json& j);

} // namespace mpsram::util

#endif // MPSRAM_UTIL_JSON_H
