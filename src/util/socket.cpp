#include "util/socket.h"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

namespace mpsram::util {

namespace {

[[noreturn]] void raise(const std::string& what)
{
    throw std::runtime_error("socket: " + what + ": " +
                             std::strerror(errno));
}

sockaddr_un address_of(const std::string& path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        throw std::runtime_error("socket: path too long for a Unix-domain "
                                 "socket: '" +
                                 path + "'");
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

} // namespace

// --- Socket ------------------------------------------------------------------

Socket::~Socket()
{
    close();
}

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_)
{
    other.fd_ = -1;
}

Socket& Socket::operator=(Socket&& other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

void Socket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

Socket Socket::connect_unix(const std::string& path)
{
    const sockaddr_un addr = address_of(path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) raise("socket()");
    Socket sock(fd);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        raise("connect('" + path + "')");
    }
    return sock;
}

std::optional<std::size_t> Socket::read_some(char* buf, std::size_t size,
                                             int timeout_ms)
{
    if (!poll_readable(fd_, timeout_ms)) return std::nullopt;
    for (;;) {
        const ssize_t n = ::recv(fd_, buf, size, 0);
        if (n >= 0) return static_cast<std::size_t>(n);
        if (errno == EINTR) continue;
        raise("recv()");
    }
}

std::optional<std::size_t> Socket::try_read(char* buf, std::size_t size)
{
    for (;;) {
        const ssize_t n = ::recv(fd_, buf, size, MSG_DONTWAIT);
        if (n >= 0) return static_cast<std::size_t>(n);
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return std::nullopt;
        raise("recv()");
    }
}

void Socket::write_all(std::string_view data, int timeout_ms)
{
    std::size_t written = 0;
    while (written < data.size()) {
        const ssize_t n = ::send(fd_, data.data() + written,
                                 data.size() - written, MSG_NOSIGNAL);
        if (n > 0) {
            written += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            if (!poll_writable(fd_, timeout_ms)) {
                throw std::runtime_error(
                    "socket: send() stalled past its timeout");
            }
            continue;
        }
        raise("send()");
    }
}

void Socket::shutdown_write()
{
    if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

// --- Unix_listener -----------------------------------------------------------

Unix_listener::Unix_listener(std::string path, int backlog)
    : path_(std::move(path))
{
    const sockaddr_un addr = address_of(path_);
    // A stale socket file from a daemon that died uncleanly would make
    // bind() fail with EADDRINUSE even though nobody is listening — but
    // only a PROVEN-stale file may be reclaimed: a live listener must
    // not be usurped (its clients would silently land on us), and a
    // non-socket file at the path is someone else's data, not ours to
    // delete.
    struct stat st{};
    if (::lstat(path_.c_str(), &st) == 0) {
        if (!S_ISSOCK(st.st_mode)) {
            throw std::runtime_error(
                "socket: refusing to replace non-socket file '" + path_ +
                "'");
        }
        const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (probe < 0) raise("socket()");
        const bool live =
            ::connect(probe, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)) == 0;
        ::close(probe);
        if (live) {
            throw std::runtime_error(
                "socket: a daemon is already listening on '" + path_ +
                "'");
        }
        ::unlink(path_.c_str());
    }
    fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (fd_ < 0) raise("socket()");
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
        const int saved = errno;
        ::close(fd_);
        fd_ = -1;
        errno = saved;
        raise("bind('" + path_ + "')");
    }
    if (::listen(fd_, backlog) != 0) {
        const int saved = errno;
        ::close(fd_);
        ::unlink(path_.c_str());
        fd_ = -1;
        errno = saved;
        raise("listen('" + path_ + "')");
    }
}

Unix_listener::~Unix_listener()
{
    if (fd_ >= 0) {
        ::close(fd_);
        ::unlink(path_.c_str());
    }
}

std::optional<Socket> Unix_listener::accept_client()
{
    for (;;) {
        const int fd = ::accept4(fd_, nullptr, nullptr, SOCK_NONBLOCK);
        if (fd >= 0) return Socket(fd);
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK ||
            errno == ECONNABORTED) {
            return std::nullopt;
        }
        raise("accept()");
    }
}

// --- poll helpers ------------------------------------------------------------

namespace {

bool poll_one(int fd, short events, int timeout_ms)
{
    pollfd p{};
    p.fd = fd;
    p.events = events;
    for (;;) {
        const int n = ::poll(&p, 1, timeout_ms);
        if (n > 0) return true;
        if (n == 0) return false;
        if (errno == EINTR) continue;
        raise("poll()");
    }
}

} // namespace

bool poll_readable(int fd, int timeout_ms)
{
    return poll_one(fd, POLLIN, timeout_ms);
}

bool poll_writable(int fd, int timeout_ms)
{
    return poll_one(fd, POLLOUT, timeout_ms);
}

std::vector<std::size_t> poll_readable_set(const std::vector<int>& fds,
                                           int timeout_ms)
{
    std::vector<pollfd> set(fds.size());
    for (std::size_t i = 0; i < fds.size(); ++i) {
        set[i].fd = fds[i];
        set[i].events = POLLIN;
    }
    for (;;) {
        const int n = ::poll(set.data(),
                             static_cast<nfds_t>(set.size()), timeout_ms);
        if (n < 0) {
            if (errno == EINTR) continue;
            raise("poll()");
        }
        std::vector<std::size_t> ready;
        if (n == 0) return ready;
        for (std::size_t i = 0; i < set.size(); ++i) {
            if (set[i].revents & (POLLIN | POLLHUP | POLLERR)) {
                ready.push_back(i);
            }
        }
        return ready;
    }
}

// --- Line_buffer -------------------------------------------------------------

std::optional<std::string> Line_buffer::pop_line()
{
    const std::size_t nl = buffer_.find('\n');
    if (nl == std::string::npos) return std::nullopt;
    std::string line = buffer_.substr(0, nl);
    buffer_.erase(0, nl + 1);
    return line;
}

} // namespace mpsram::util
