// Unix-domain socket primitives for the query service tier
// (core/service.h): RAII fd wrappers, poll-based readiness with timeouts,
// and newline framing for the line-delimited JSON protocol.
//
// This file and src/core/service.cpp are the ONLY places allowed to touch
// the raw socket/accept/poll syscalls — the determinism lint
// (tools/lint_determinism.py, rule `raw-socket`) enforces that the I/O
// surface stays confined to this audited layer.  Design rules:
//
//   - No hidden threads: everything here is synchronous, poll-driven I/O
//     with explicit millisecond timeouts.  Concurrency is the caller's
//     problem (the service daemon multiplexes clients on one poll loop;
//     util::Thread_pool remains the only threading primitive).
//   - No signals: writes use MSG_NOSIGNAL, so a vanished peer surfaces as
//     an exception (EPIPE), never as a process-killing SIGPIPE.
//   - Errors throw std::runtime_error naming the syscall and errno text;
//     orderly EOF and timeouts are values, not exceptions.
#ifndef MPSRAM_UTIL_SOCKET_H
#define MPSRAM_UTIL_SOCKET_H

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mpsram::util {

/// RAII wrapper of a connected stream-socket fd (client side, or an
/// accepted peer on the server side).  Move-only; the fd closes on
/// destruction.
class Socket {
public:
    Socket() = default;
    /// Adopt an already-open fd (ownership transfers).
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket();

    Socket(const Socket&) = delete;
    Socket& operator=(const Socket&) = delete;
    Socket(Socket&& other) noexcept;
    Socket& operator=(Socket&& other) noexcept;

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }
    void close();

    /// Connect to a listening Unix-domain socket at `path`.  Throws
    /// std::runtime_error when the path is too long for sockaddr_un or
    /// the connect fails (no listener, refused, ...).
    static Socket connect_unix(const std::string& path);

    /// Wait up to `timeout_ms` for readability, then read once into
    /// `buf`.  Returns the byte count (> 0), 0 on orderly EOF, or nullopt
    /// on timeout.  Throws on I/O errors.
    std::optional<std::size_t> read_some(char* buf, std::size_t size,
                                         int timeout_ms);

    /// Nonblocking read: byte count (> 0), 0 on orderly EOF, nullopt when
    /// the read would block.  Throws on I/O errors.
    std::optional<std::size_t> try_read(char* buf, std::size_t size);

    /// Write all of `data`, polling for writability (up to `timeout_ms`
    /// per stall) when the send buffer is full.  Throws on timeout, EPIPE
    /// (peer gone) or any other error — a partial write never returns.
    void write_all(std::string_view data, int timeout_ms);

    /// Half-close: shut down the write side (the peer's next read sees
    /// EOF) while the read side stays open for pending responses.
    void shutdown_write();

private:
    int fd_ = -1;
};

/// A bound + listening Unix-domain socket.  The constructor reclaims a
/// STALE socket file at `path` (a previous daemon that died without
/// cleanup — the file exists but nobody answers a connect probe); a path
/// with a live listener throws ("already listening"), so a second daemon
/// can never silently usurp a running one, and a path holding anything
/// other than a socket is refused rather than deleted.  It then binds
/// and listens; the destructor closes and unlinks, so a graceful
/// shutdown leaves no socket file behind.  Accepted fds are nonblocking.
class Unix_listener {
public:
    explicit Unix_listener(std::string path, int backlog = 64);
    ~Unix_listener();

    Unix_listener(const Unix_listener&) = delete;
    Unix_listener& operator=(const Unix_listener&) = delete;

    int fd() const { return fd_; }
    const std::string& path() const { return path_; }

    /// Accept one pending connection; nullopt when none is waiting.
    /// Throws on real accept errors (EMFILE, ...).
    std::optional<Socket> accept_client();

private:
    std::string path_;
    int fd_ = -1;
};

/// True when `fd` becomes readable within `timeout_ms` (POLLIN, or a
/// hang-up/error the next read will surface); false on timeout.
bool poll_readable(int fd, int timeout_ms);

/// True when `fd` becomes writable within `timeout_ms`; false on timeout.
bool poll_writable(int fd, int timeout_ms);

/// Indices (into `fds`, in input order — a deterministic iteration order
/// for the service loop) of the fds that are readable or hung up within
/// `timeout_ms`.  Empty on timeout.
std::vector<std::size_t> poll_readable_set(const std::vector<int>& fds,
                                           int timeout_ms);

/// Newline framing for the line-delimited protocol: append raw reads,
/// pop complete '\n'-terminated lines (terminator stripped).  Bytes after
/// the last newline stay buffered until their terminator arrives.
class Line_buffer {
public:
    void append(const char* data, std::size_t size)
    {
        buffer_.append(data, size);
    }

    /// The next complete line, or nullopt when none is buffered.
    std::optional<std::string> pop_line();

    /// Bytes buffered but not yet terminated.
    std::size_t pending_bytes() const { return buffer_.size(); }

private:
    std::string buffer_;
};

} // namespace mpsram::util

#endif // MPSRAM_UTIL_SOCKET_H
