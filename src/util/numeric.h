// Small numeric toolkit: interpolation, bracketing root search, and
// polynomial evaluation.  Shared by the waveform measurement code (threshold
// crossing times) and the analytical model.
#ifndef MPSRAM_UTIL_NUMERIC_H
#define MPSRAM_UTIL_NUMERIC_H

#include <functional>
#include <vector>

namespace mpsram::util {

/// Linear interpolation between (x0, y0) and (x1, y1) at x.
double lerp(double x0, double y0, double x1, double y1, double x);

/// Piecewise-linear sampled waveform y(x) with strictly increasing x.
class Piecewise_linear {
public:
    Piecewise_linear() = default;
    Piecewise_linear(std::vector<double> xs, std::vector<double> ys);

    std::size_t size() const { return xs_.size(); }
    bool empty() const { return xs_.empty(); }
    const std::vector<double>& xs() const { return xs_; }
    const std::vector<double>& ys() const { return ys_; }

    void append(double x, double y);

    /// Interpolated value; clamps outside the sampled range.
    double at(double x) const;

    /// First x >= from where y crosses `level` (any direction), linearly
    /// interpolated inside the bracketing segment.  A sample sitting exactly
    /// at the level counts as a crossing; a flat-at-level segment spanning
    /// `from` reports `from` itself.  Returns negative if the waveform never
    /// crosses.
    double first_crossing(double level, double from = 0.0) const;

private:
    std::vector<double> xs_;
    std::vector<double> ys_;
};

/// Evaluate a polynomial with coefficients c[0] + c[1]*x + ... (Horner).
double polyval(const std::vector<double>& coeffs, double x);

/// Bisection root of f on [lo, hi]; requires a sign change.  `tol` is the
/// absolute x tolerance.
double bisect(const std::function<double(double)>& f, double lo, double hi,
              double tol = 1e-12, int max_iter = 200);

/// Relative difference |a - b| / max(|a|, |b|, floor).
double rel_diff(double a, double b, double floor = 1e-30);

/// Standard normal cumulative distribution function.
double normal_cdf(double z);

/// Inverse standard normal CDF (Acklam's rational approximation, refined
/// with one Newton step; |error| < 1e-13 where the refinement applies).
/// In the extreme tails (|z| beyond ~38, e.g. p ~ 1e-300) the normal pdf
/// underflows and the Newton step is skipped, leaving the ~1e-9-relative
/// rational approximation.
double normal_quantile(double p);

} // namespace mpsram::util

#endif // MPSRAM_UTIL_NUMERIC_H
