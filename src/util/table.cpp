#include "util/table.h"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "util/contracts.h"

namespace mpsram::util {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    expects(!headers_.empty(), "Table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells)
{
    expects(cells.size() == headers_.size(),
            "Table row width must match header width");
    rows_.push_back(std::move(cells));
}

std::string Table::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
            if (c + 1 < row.size()) out << "  ";
        }
        out << '\n';
    };

    emit_row(headers_);
    std::size_t rule = 0;
    for (std::size_t c = 0; c < widths.size(); ++c) {
        rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    }
    out << std::string(rule, '-') << '\n';
    for (const auto& row : rows_) emit_row(row);
    return out.str();
}

std::string fmt_fixed(double value, int precision)
{
    std::ostringstream out;
    out << std::fixed << std::setprecision(precision) << value;
    return out.str();
}

std::string fmt_sci(double value, int precision)
{
    std::ostringstream out;
    out << std::scientific << std::setprecision(precision) << std::uppercase
        << value;
    return out.str();
}

std::string fmt_percent(double fraction, int precision)
{
    std::ostringstream out;
    out << std::showpos << std::fixed << std::setprecision(precision)
        << fraction * 100.0 << '%';
    return out.str();
}

std::string fmt_time(double seconds, int precision)
{
    struct Scale {
        double factor;
        const char* suffix;
    };
    static constexpr Scale scales[] = {
        {1.0, "s"}, {1e-3, "ms"}, {1e-6, "us"}, {1e-9, "ns"},
        {1e-12, "ps"}, {1e-15, "fs"},
    };
    const double mag = std::fabs(seconds);
    for (const auto& s : scales) {
        if (mag >= s.factor) {
            return fmt_fixed(seconds / s.factor, precision) + " " + s.suffix;
        }
    }
    return fmt_fixed(seconds / 1e-15, precision) + " fs";
}

} // namespace mpsram::util
