#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

#include "util/contracts.h"

namespace mpsram::util {

int Thread_pool::hardware_threads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

Thread_pool::Thread_pool(int threads)
{
    if (threads <= 0) threads = hardware_threads();
    workers_.reserve(static_cast<std::size_t>(threads - 1));
    for (int w = 1; w < threads; ++w) {
        workers_.emplace_back([this, w] { worker_main(w); });
    }
}

Thread_pool::~Thread_pool()
{
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread& t : workers_) t.join();
}

void Thread_pool::parallel_for(std::size_t count, std::size_t chunk,
                               const Loop_body& body)
{
    if (count == 0) return;

    if (chunk == 0) {
        // Aim for ~4 chunks per worker so stragglers can be rebalanced,
        // without paying one atomic fetch per index.
        const auto workers = static_cast<std::size_t>(thread_count());
        chunk = std::max<std::size_t>(1, count / (4 * workers));
    }

    // Inline fast path: no spawned workers, or too little work to share.
    if (workers_.empty() || count <= chunk) {
        for (std::size_t i = 0; i < count; ++i) body(i, 0);
        return;
    }

    {
        const std::lock_guard<std::mutex> lock(mutex_);
        util::invariant(busy_workers_ == 0,
                        "parallel_for is not reentrant on one pool");
        body_ = &body;
        count_ = count;
        chunk_ = chunk;
        next_.store(0, std::memory_order_relaxed);
        aborted_.store(false, std::memory_order_relaxed);
        error_ = nullptr;
        busy_workers_ = workers_.size();
        ++epoch_;
    }
    wake_.notify_all();

    drain(0);  // the calling thread is worker 0

    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [this] { return busy_workers_ == 0; });
    body_ = nullptr;
    if (error_) std::rethrow_exception(std::exchange(error_, nullptr));
}

void Thread_pool::worker_main(int worker)
{
    std::uint64_t seen_epoch = 0;
    for (;;) {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [&] { return stopping_ || epoch_ != seen_epoch; });
        if (stopping_) return;
        seen_epoch = epoch_;
        lock.unlock();

        drain(worker);

        lock.lock();
        if (--busy_workers_ == 0) {
            lock.unlock();
            done_.notify_one();
        }
    }
}

void Thread_pool::drain(int worker)
{
    const Loop_body& body = *body_;
    for (;;) {
        if (aborted_.load(std::memory_order_relaxed)) return;
        const std::size_t begin =
            next_.fetch_add(chunk_, std::memory_order_relaxed);
        if (begin >= count_) return;
        const std::size_t end = std::min(begin + chunk_, count_);
        try {
            for (std::size_t i = begin; i < end; ++i) body(i, worker);
        } catch (...) {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (!error_) error_ = std::current_exception();
            aborted_.store(true, std::memory_order_relaxed);
            return;
        }
    }
}

} // namespace mpsram::util
