#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/contracts.h"

namespace mpsram::util {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    expects(hi > lo, "Histogram range must be non-empty");
    expects(bins > 0, "Histogram needs at least one bin");
}

Histogram Histogram::from_samples(const std::vector<double>& samples,
                                  std::size_t bins)
{
    expects(!samples.empty(), "Histogram::from_samples on empty input");
    const auto [lo_it, hi_it] = std::minmax_element(samples.begin(), samples.end());
    double lo = *lo_it;
    double hi = *hi_it;
    if (lo == hi) {
        // Degenerate sample set: widen artificially so the constructor's
        // non-empty-range contract holds.
        lo -= 0.5;
        hi += 0.5;
    } else {
        // Stretch the top edge so the max sample falls inside [lo, hi).
        hi += (hi - lo) * 1e-9;
    }
    Histogram h(lo, hi, bins);
    h.add_all(samples);
    return h;
}

void Histogram::add(double x)
{
    ++total_;
    if (x < lo_) {
        ++underflow_;
        return;
    }
    if (x >= hi_) {
        ++overflow_;
        return;
    }
    const double frac = (x - lo_) / (hi_ - lo_);
    auto bin = static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
    bin = std::min(bin, counts_.size() - 1);
    ++counts_[bin];
}

void Histogram::add_all(const std::vector<double>& samples)
{
    for (double x : samples) add(x);
}

std::size_t Histogram::count(std::size_t bin) const
{
    expects(bin < counts_.size(), "Histogram bin out of range");
    return counts_[bin];
}

double Histogram::bin_width() const
{
    return (hi_ - lo_) / static_cast<double>(counts_.size());
}

double Histogram::bin_center(std::size_t bin) const
{
    expects(bin < counts_.size(), "Histogram bin out of range");
    return lo_ + (static_cast<double>(bin) + 0.5) * bin_width();
}

std::string Histogram::render(std::size_t width) const
{
    const std::size_t peak = counts_.empty()
        ? 0
        : *std::max_element(counts_.begin(), counts_.end());

    std::ostringstream out;
    out.setf(std::ios::fixed);
    out.precision(4);
    for (std::size_t b = 0; b < counts_.size(); ++b) {
        const std::size_t len = peak == 0
            ? 0
            : (counts_[b] * width + peak / 2) / peak;
        out << std::showpos << bin_center(b) << std::noshowpos << " |";
        out << std::string(len, '#');
        out << "  " << counts_[b] << '\n';
    }
    if (underflow_ > 0) out << "(underflow: " << underflow_ << ")\n";
    if (overflow_ > 0) out << "(overflow: " << overflow_ << ")\n";
    return out.str();
}

} // namespace mpsram::util
