#include "util/csv.h"

#include <sstream>

namespace mpsram::util {

void Csv_writer::write_header(const std::vector<std::string>& names)
{
    write_cells(names);
}

void Csv_writer::write_row(const std::vector<std::string>& cells)
{
    write_cells(cells);
}

void Csv_writer::write_row(const std::vector<double>& values)
{
    std::vector<std::string> cells;
    cells.reserve(values.size());
    for (double v : values) {
        std::ostringstream s;
        s.precision(12);
        s << v;
        cells.push_back(s.str());
    }
    write_cells(cells);
}

void Csv_writer::write_cells(const std::vector<std::string>& cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i > 0) *out_ << ',';
        *out_ << escape(cells[i]);
    }
    *out_ << '\n';
}

std::string Csv_writer::escape(const std::string& cell)
{
    const bool needs_quotes =
        cell.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes) return cell;
    std::string quoted = "\"";
    for (char c : cell) {
        if (c == '"') quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

} // namespace mpsram::util
