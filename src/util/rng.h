// Deterministic random number generation for Monte-Carlo studies.
//
// Reproducibility rule: every stochastic experiment takes an explicit seed,
// and named child streams derived from one master seed stay independent of
// the order in which modules draw from them.
#ifndef MPSRAM_UTIL_RNG_H
#define MPSRAM_UTIL_RNG_H

#include <cstdint>
#include <random>
#include <string_view>

namespace mpsram::util {

/// Seedable random stream wrapping std::mt19937_64 with the distribution
/// helpers the variability models need.
class Rng {
public:
    explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

    /// Derive an independent child stream from this stream's seed and a
    /// name.  Uses splitmix64-style mixing of the hashed name so children
    /// with different names are decorrelated.
    Rng child(std::string_view name) const;

    /// Counter-based substream: the stream for element `index` of the
    /// experiment rooted at `seed`.  Depends only on (seed, index) — not
    /// on how many draws any other substream made — so a loop that gives
    /// sample i the stream `Rng::stream(seed, i)` produces bitwise
    /// identical results at any thread count and in any execution order.
    static Rng stream(std::uint64_t seed, std::uint64_t index);

    /// Standard normal draw (mean 0, sigma 1).
    double normal();

    /// Normal draw with given mean and sigma (sigma >= 0).
    double normal(double mean, double sigma);

    /// Normal draw truncated to [mean - k*sigma, mean + k*sigma] by
    /// rejection; models bounded process variation (a fab screens outliers).
    double truncated_normal(double mean, double sigma, double k);

    /// Uniform draw in [lo, hi).
    double uniform(double lo, double hi);

    /// Uniform integer in [0, n).
    std::uint64_t index(std::uint64_t n);

    std::uint64_t seed() const { return seed_; }

private:
    std::mt19937_64 engine_;
    std::uint64_t seed_ = 0;
    std::normal_distribution<double> std_normal_{0.0, 1.0};
};

} // namespace mpsram::util

#endif // MPSRAM_UTIL_RNG_H
