// Atomic whole-file I/O for the result cache (core/result_cache.h).
//
// Concurrent cache writers — two processes, or two sessions in one
// process, racing to store the same key — must never let a reader observe
// a half-written entry.  write_file_atomic gets POSIX rename atomicity:
// the contents land in a uniquely-named temporary in the SAME directory
// (rename is only atomic within a filesystem) and are renamed over the
// destination, so the destination path either holds the old bytes or the
// complete new bytes, never a prefix.  Racing writers of one key both
// succeed; last rename wins, and with content-addressed keys both wrote
// the same bytes anyway.
//
// Temp names derive from the process id and a process-wide counter — not
// from timestamps or randomness, which the determinism lint bans in src/.
#ifndef MPSRAM_UTIL_ATOMIC_FILE_H
#define MPSRAM_UTIL_ATOMIC_FILE_H

#include <optional>
#include <string>
#include <string_view>

namespace mpsram::util {

/// Entire contents of `path`, or nullopt when the file cannot be opened
/// (absent, unreadable).  Read errors after open throw.
std::optional<std::string> read_file(const std::string& path);

/// Write `contents` to `path` atomically (temp file + rename).  Parent
/// directories must exist.  Throws util::Precondition_error when the
/// temporary cannot be written or the rename fails.
void write_file_atomic(const std::string& path, std::string_view contents);

} // namespace mpsram::util

#endif // MPSRAM_UTIL_ATOMIC_FILE_H
