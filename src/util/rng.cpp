#include "util/rng.h"

#include <functional>

#include "util/contracts.h"

namespace mpsram::util {

namespace {

/// splitmix64 finalizer: a cheap, well-distributed 64-bit mixer.
std::uint64_t mix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

Rng Rng::child(std::string_view name) const
{
    const std::uint64_t name_hash = std::hash<std::string_view>{}(name);
    return Rng(mix64(seed_ ^ mix64(name_hash)));
}

Rng Rng::stream(std::uint64_t seed, std::uint64_t index)
{
    // Two rounds of the finalizer decorrelate consecutive indices; the
    // constant offsets index 0 away from the plain `Rng(seed)` stream.
    return Rng(mix64(mix64(seed) ^ mix64(index + 0x6a09e667f3bcc909ULL)));
}

double Rng::normal()
{
    return std_normal_(engine_);
}

double Rng::normal(double mean, double sigma)
{
    expects(sigma >= 0.0, "normal() sigma must be non-negative");
    return mean + sigma * std_normal_(engine_);
}

double Rng::truncated_normal(double mean, double sigma, double k)
{
    expects(sigma >= 0.0, "truncated_normal() sigma must be non-negative");
    expects(k > 0.0, "truncated_normal() needs a positive truncation width");
    if (sigma == 0.0) return mean;
    // Rejection sampling: for k >= 1 the acceptance rate is > 68%, so this
    // terminates quickly; guard with a generous iteration cap anyway.
    for (int i = 0; i < 10000; ++i) {
        const double z = std_normal_(engine_);
        if (z >= -k && z <= k) return mean + sigma * z;
    }
    // Statistically unreachable for any k >= 0.01.
    throw Invariant_error("truncated_normal rejection loop failed to accept");
}

double Rng::uniform(double lo, double hi)
{
    expects(hi > lo, "uniform() range must be non-empty");
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::uint64_t Rng::index(std::uint64_t n)
{
    expects(n > 0, "index() needs a non-empty range");
    return std::uniform_int_distribution<std::uint64_t>(0, n - 1)(engine_);
}

} // namespace mpsram::util
