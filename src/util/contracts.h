// Lightweight contract checking in the spirit of the C++ Core Guidelines
// (I.6 "Prefer Expects() for expressing preconditions", I.8 Ensures()).
//
// Contracts are always on: the library is a measurement tool and a silently
// out-of-domain model parameter is worse than a stopped run.  Violations
// throw, so tests can assert on them and callers can recover if they choose.
#ifndef MPSRAM_UTIL_CONTRACTS_H
#define MPSRAM_UTIL_CONTRACTS_H

#include <stdexcept>
#include <string>
#include <string_view>

namespace mpsram::util {

/// Thrown when a function precondition is violated.
class Precondition_error : public std::logic_error {
public:
    explicit Precondition_error(const std::string& what_arg)
        : std::logic_error("precondition violated: " + what_arg) {}
};

/// Thrown when a function postcondition is violated.
class Postcondition_error : public std::logic_error {
public:
    explicit Postcondition_error(const std::string& what_arg)
        : std::logic_error("postcondition violated: " + what_arg) {}
};

/// Thrown when an internal invariant no longer holds.
class Invariant_error : public std::logic_error {
public:
    explicit Invariant_error(const std::string& what_arg)
        : std::logic_error("invariant violated: " + what_arg) {}
};

/// Precondition check: call at function entry.
inline void expects(bool condition, std::string_view message)
{
    if (!condition) throw Precondition_error(std::string(message));
}

/// Postcondition check: call before returning a computed result.
inline void ensures(bool condition, std::string_view message)
{
    if (!condition) throw Postcondition_error(std::string(message));
}

/// Invariant check: call where a class/algorithm invariant must hold.
inline void invariant(bool condition, std::string_view message)
{
    if (!condition) throw Invariant_error(std::string(message));
}

} // namespace mpsram::util

#endif // MPSRAM_UTIL_CONTRACTS_H
