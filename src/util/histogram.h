// Fixed-bin histogram with ASCII rendering.
//
// Used to reproduce Fig. 5 of the paper (Monte-Carlo tdp distribution): the
// bench binaries print the distribution directly on the console, the same way
// the paper plots it.
#ifndef MPSRAM_UTIL_HISTOGRAM_H
#define MPSRAM_UTIL_HISTOGRAM_H

#include <cstddef>
#include <string>
#include <vector>

namespace mpsram::util {

/// Equal-width binning histogram over [lo, hi); under/overflow tracked
/// separately so no sample is silently dropped.
class Histogram {
public:
    /// Construct with `bins` equal-width bins spanning [lo, hi).
    Histogram(double lo, double hi, std::size_t bins);

    /// Convenience: build a histogram spanning the sample range.
    static Histogram from_samples(const std::vector<double>& samples,
                                  std::size_t bins);

    void add(double x);
    void add_all(const std::vector<double>& samples);

    double lo() const { return lo_; }
    double hi() const { return hi_; }
    std::size_t bin_count() const { return counts_.size(); }
    std::size_t count(std::size_t bin) const;
    std::size_t underflow() const { return underflow_; }
    std::size_t overflow() const { return overflow_; }
    std::size_t total() const { return total_; }

    /// Center x-value of a bin.
    double bin_center(std::size_t bin) const;
    /// Width of each bin.
    double bin_width() const;

    /// Render a horizontal-bar ASCII chart, one row per bin.
    /// `width` is the maximum bar length in characters.
    std::string render(std::size_t width = 60) const;

private:
    double lo_;
    double hi_;
    std::vector<std::size_t> counts_;
    std::size_t underflow_ = 0;
    std::size_t overflow_ = 0;
    std::size_t total_ = 0;
};

} // namespace mpsram::util

#endif // MPSRAM_UTIL_HISTOGRAM_H
