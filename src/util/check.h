// Checked-build contract macros for hot-path invariants.
//
// Two contract layers coexist in this codebase:
//
//   * util/contracts.h (`expects`/`ensures`/`invariant`) — ALWAYS-ON
//     argument validation at API boundaries, where the cost is one branch
//     per call and a silent out-of-domain parameter would corrupt a
//     measurement.
//   * this header (`MPSRAM_ASSERT` / `MPSRAM_REQUIRE` / `MPSRAM_ENSURE`)
//     — hot-loop invariants (per-stamp finiteness, per-sample slot
//     bounds, per-iteration solver state) that are too expensive to
//     check on every Release run.  They are compiled to nothing unless
//     the build defines MPSRAM_CHECKED (CMake: -DMPSRAM_CHECKED=ON), in
//     which case a violation throws Contract_error with the expression,
//     source location, message, and the values captured via MPSRAM_VAL.
//
// Semantics:
//
//   MPSRAM_REQUIRE(cond, msg, MPSRAM_VAL(x)...)   precondition
//   MPSRAM_ENSURE(cond, msg, MPSRAM_VAL(x)...)    postcondition
//   MPSRAM_ASSERT(cond, msg, MPSRAM_VAL(x)...)    internal invariant
//
// In unchecked builds the condition and value expressions are NOT
// evaluated (they sit in the dead branch of a constant conditional, which
// still odr-uses the operands, so no unused-variable warnings appear
// under -Werror).  Checks must therefore never carry side effects.
#ifndef MPSRAM_UTIL_CHECK_H
#define MPSRAM_UTIL_CHECK_H

#include <cmath>
#include <initializer_list>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace mpsram::util {

/// Thrown by a failed MPSRAM_* contract macro in a checked build.
class Contract_error : public std::logic_error {
public:
    explicit Contract_error(const std::string& what_arg)
        : std::logic_error(what_arg) {}
};

/// True when every element is finite — the poison detector the checked
/// build runs over device stamps, solver vectors, and Newton updates.
inline bool all_finite(const std::vector<double>& v)
{
    for (const double x : v) {
        if (!std::isfinite(x)) return false;
    }
    return true;
}

namespace check_detail {

template <class T>
std::string display(const T& v)
{
    std::ostringstream os;
    if constexpr (std::is_same_v<T, bool>) {
        os << (v ? "true" : "false");
    } else if constexpr (std::is_floating_point_v<T>) {
        os.precision(std::numeric_limits<T>::max_digits10);
        os << v;
    } else {
        os << v;
    }
    return os.str();
}

/// One `name = value` capture of MPSRAM_VAL, formatted at failure time
/// (captures are only constructed on the failing path).
struct Named_value {
    const char* name;
    std::string value;

    template <class T>
    Named_value(const char* n, const T& v) : name(n), value(display(v))
    {
    }
};

[[noreturn]] inline void fail(const char* macro, const char* expr,
                              const char* file, int line,
                              std::string_view message,
                              std::initializer_list<Named_value> values)
{
    std::string what;
    what += macro;
    what += "(";
    what += expr;
    what += ") failed at ";
    what += file;
    what += ":";
    what += std::to_string(line);
    what += ": ";
    what += message;
    if (values.size() != 0) {
        what += " [";
        bool first = true;
        for (const Named_value& nv : values) {
            if (!first) what += ", ";
            first = false;
            what += nv.name;
            what += " = ";
            what += nv.value;
        }
        what += "]";
    }
    throw Contract_error(what);
}

/// Swallows the check operands in unchecked builds (never called; lives
/// in the dead branch of a constant conditional to keep the operands
/// odr-used and warning-free).
template <class... Args>
inline void sink(Args&&...)
{
}

} // namespace check_detail

} // namespace mpsram::util

/// Capture an expression for the failure message: MPSRAM_VAL(x) renders
/// as `x = <value>` when the surrounding check fires.
#define MPSRAM_VAL(expr) \
    ::mpsram::util::check_detail::Named_value { #expr, (expr) }

#ifdef MPSRAM_CHECKED

#define MPSRAM_CHECK_IMPL_(macro, cond, msg, ...)                            \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::mpsram::util::check_detail::fail(macro, #cond, __FILE__,       \
                                               __LINE__, (msg),              \
                                               {__VA_ARGS__});               \
        }                                                                    \
    } while (false)

#else

#define MPSRAM_CHECK_IMPL_(macro, cond, msg, ...)                            \
    ((void)(true ? (void)0                                                   \
                 : ::mpsram::util::check_detail::sink(                       \
                       (cond), (msg)__VA_OPT__(, ) __VA_ARGS__)))

#endif // MPSRAM_CHECKED

#define MPSRAM_ASSERT(cond, ...) \
    MPSRAM_CHECK_IMPL_("MPSRAM_ASSERT", cond, __VA_ARGS__)
#define MPSRAM_REQUIRE(cond, ...) \
    MPSRAM_CHECK_IMPL_("MPSRAM_REQUIRE", cond, __VA_ARGS__)
#define MPSRAM_ENSURE(cond, ...) \
    MPSRAM_CHECK_IMPL_("MPSRAM_ENSURE", cond, __VA_ARGS__)

/// Bounds form of MPSRAM_REQUIRE for the write-own-slot contracts.
#define MPSRAM_REQUIRE_INDEX(index, bound)                                   \
    MPSRAM_REQUIRE((index) < (bound), "index out of range",                  \
                   MPSRAM_VAL(index), MPSRAM_VAL(bound))

#endif // MPSRAM_UTIL_CHECK_H
