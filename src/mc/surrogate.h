// The surrogate Monte-Carlo tier: sample a calibrated response surface
// (analytic/response_surface.h) instead of realizing geometry, extracting
// parasitics, and running SPICE per sample.  Two entry points:
//
//   - surrogate_distribution: the drop-in fast engine behind
//     Tdp_engine::surrogate / Twp_engine::surrogate.  Sample i draws the
//     IDENTICAL process sample as the exact engines (same substream
//     derivation), so a same-seed surrogate-vs-SPICE comparison cancels
//     the sampling noise and exposes pure model error — the property the
//     bench_ext_yield mean/sigma agreement gate relies on.  Per-sample
//     cost is a handful of truncated-normal draws plus one quadratic
//     evaluation: ~10^6 samples/s/core, 10^4-10^5x the SPICE tier.
//
//   - importance_tail: Table IV sigma-tail quantiles by importance
//     sampling — a defensive mixture proposal (half the truncated target
//     itself, half a shifted-mean Gaussian along the surface's dominant
//     fitted direction) with likelihood-ratio weights, so the 5-6-sigma
//     tdp quantiles converge with ~10^4 weighted samples instead of the
//     10^7+ a naive sweep needs to populate the tail.  The mixture
//     bounds every weight at 2, keeping the effective sample size a
//     large fraction of the draw count.
#ifndef MPSRAM_MC_SURROGATE_H
#define MPSRAM_MC_SURROGATE_H

#include <vector>

#include "analytic/response_surface.h"
#include "mc/distribution.h"
#include "pattern/engine.h"

namespace mpsram::mc {

/// Monte-Carlo over the calibrated surfaces: the metric surface feeds the
/// recorded distribution, the rvar/cvar surfaces reproduce the per-sample
/// variation factors of the exact engines (stored mode only).  Honors
/// every Distribution_options knob, including streaming accumulation and
/// Latin-hypercube sampling; bitwise identical at any thread count.
Tdp_distribution surrogate_distribution(
    const pattern::Patterning_engine& engine,
    const analytic::Yield_surfaces& surfaces,
    const Distribution_options& opts);

struct Tail_options {
    /// Upper-tail quantile targets in sigma units: level z means the
    /// p = normal_cdf(z) quantile of the metric under the (truncated)
    /// process measure.  Note the process axes are truncated at
    /// Distribution_options::truncate_k, so extreme levels converge
    /// toward the truncation-bounded maximum — exactly what the modeled
    /// (outlier-screened) process yields.
    std::vector<double> sigma_levels = {3.0, 4.0, 5.0, 6.0};
    int samples = 20000;
    /// Proposal mean shift along the fitted dominant direction, in
    /// standardized (per-axis sigma) units.  Kept inside the truncation
    /// box: shifting past truncate_k would throw most proposal draws into
    /// the zero-weight region.
    double shift_sigma = 2.5;
};

struct Tail_result {
    std::vector<double> sigma_levels;  ///< as requested
    std::vector<double> quantiles;     ///< metric value per level
    /// Effective sample size (sum w)^2 / sum w^2 — the convergence
    /// diagnostic: an ESS far below `samples` means the proposal shift
    /// fights the target and the quantiles are noisy.
    double ess = 0.0;
    int samples = 0;
    double weight_sum = 0.0;  ///< estimates 1 (self-normalized check)
};

/// Importance-sampled upper-tail quantiles of the metric surface under
/// the engine's truncated-Gaussian process measure.  Deterministic: the
/// per-sample substreams derive from (base.seed, index) and the weighted
/// quantile walk breaks value ties by sample index, so the result is
/// bitwise identical at any thread count.
Tail_result importance_tail(const pattern::Patterning_engine& engine,
                            const analytic::Response_surface& surface,
                            const Distribution_options& base,
                            const Tail_options& topts);

} // namespace mpsram::mc

#endif // MPSRAM_MC_SURROGATE_H
