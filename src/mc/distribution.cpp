#include "mc/distribution.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/contracts.h"
#include "util/numeric.h"
#include "util/rng.h"

namespace mpsram::mc {

namespace {

/// Build all samples up front for Latin-hypercube sampling: each axis is
/// cut into `samples` equal-probability strata of the truncated normal;
/// every stratum is hit exactly once, in an axis-independent random order.
std::vector<pattern::Process_sample> lhs_samples(
    const pattern::Patterning_engine& engine, util::Rng& rng,
    const Distribution_options& opts)
{
    const auto& axes = engine.axes();
    const auto n = static_cast<std::size_t>(opts.samples);

    // Truncation in probability space.
    const double p_lo = util::normal_cdf(-opts.truncate_k);
    const double p_hi = util::normal_cdf(opts.truncate_k);

    std::vector<pattern::Process_sample> out(
        n, pattern::Process_sample(axes.size(), 0.0));

    std::vector<std::size_t> perm(n);
    for (std::size_t a = 0; a < axes.size(); ++a) {
        std::iota(perm.begin(), perm.end(), 0);
        // Fisher-Yates with the study RNG (deterministic per seed).
        for (std::size_t i = n; i > 1; --i) {
            std::swap(perm[i - 1], perm[rng.index(i)]);
        }
        for (std::size_t i = 0; i < n; ++i) {
            const double u = rng.uniform(0.0, 1.0);
            const double p =
                p_lo + (p_hi - p_lo) *
                           ((static_cast<double>(perm[i]) + u) /
                            static_cast<double>(n));
            out[i][a] = axes[a].sigma * util::normal_quantile(p);
        }
    }
    return out;
}

} // namespace

Tdp_distribution metric_distribution(const pattern::Patterning_engine& engine,
                                     const extract::Extractor& extractor,
                                     const geom::Wire_array& nominal,
                                     std::size_t victim,
                                     const Sample_metric& metric,
                                     const Distribution_options& opts)
{
    util::expects(opts.samples > 0, "sample count must be positive");
    util::expects(victim < nominal.size(), "victim index out of range");
    util::expects(static_cast<bool>(metric), "sample metric must be set");

    // Root of this experiment's stream tree: per-sample substreams branch
    // off (base_seed, i), so the loop body is order-independent.
    const std::uint64_t base_seed =
        util::Rng(opts.seed).child(engine.name()).seed();

    // Latin-hypercube stratification couples samples across the whole set,
    // so its (cheap) sample construction stays serial; only the expensive
    // realization/extraction below is parallel.
    std::vector<pattern::Process_sample> pregen;
    if (opts.sampling == Sampling::latin_hypercube) {
        util::Rng rng(base_seed);
        pregen = lhs_samples(engine, rng, opts);
    }

    const auto count = static_cast<std::size_t>(opts.samples);
    Tdp_distribution dist;
    dist.tdp.resize(count);
    dist.rvar.resize(count);
    dist.cvar.resize(count);

    // Per-worker geometry scratch: realize_into overwrites one buffer per
    // worker instead of allocating a Wire_array (nets, colors, strings)
    // for every sample.  Worker assignment never reaches the results, so
    // the determinism contract is untouched.
    std::vector<geom::Wire_array> scratch(
        static_cast<std::size_t>(opts.runner.resolved_threads()));

    core::run_indexed(
        count,
        [&](std::size_t i, const core::Run_context& ctx) {
            pattern::Process_sample s;
            if (opts.sampling == Sampling::latin_hypercube) {
                s = pregen[i];
            } else {
                util::Rng rng = util::Rng::stream(base_seed, i);
                s = engine.sample_gaussian(rng, opts.truncate_k);
            }
            geom::Wire_array& realized =
                scratch[static_cast<std::size_t>(ctx.worker)];
            engine.realize_into(nominal, s, realized);
            const extract::Rc_variation v =
                extractor.variation(nominal, realized, victim);
            dist.rvar[i] = v.r_factor;
            dist.cvar[i] = v.c_factor;
            dist.tdp[i] = metric(realized, v, ctx);
        },
        opts.runner);

    // A failed sample (NaN metric) must poison the whole summary, not just
    // the moments: sorting a NaN-containing vector for the quantiles is
    // undefined and min/max would silently drop the failure, so the NaN
    // path never reaches util::summarize.
    const bool any_nan =
        std::any_of(dist.tdp.begin(), dist.tdp.end(),
                    [](double x) { return std::isnan(x); });
    if (any_nan) {
        constexpr double nan = std::numeric_limits<double>::quiet_NaN();
        dist.summary = util::Sample_summary{dist.tdp.size(), nan, nan,
                                            nan,  nan, nan, nan, nan};
    } else {
        dist.summary = util::summarize(dist.tdp);
    }
    return dist;
}

Tdp_distribution tdp_distribution(const pattern::Patterning_engine& engine,
                                  const extract::Extractor& extractor,
                                  const geom::Wire_array& nominal,
                                  std::size_t victim,
                                  const analytic::Td_params& params, int n,
                                  const Distribution_options& opts)
{
    return metric_distribution(
        engine, extractor, nominal, victim,
        [&](const geom::Wire_array&, const extract::Rc_variation& v,
            const core::Run_context&) {
            return analytic::tdp_percent(params, n, v.r_factor, v.c_factor);
        },
        opts);
}

} // namespace mpsram::mc
