#include "mc/distribution.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/check.h"
#include "util/contracts.h"
#include "util/numeric.h"
#include "util/rng.h"

namespace mpsram::mc {

std::vector<pattern::Process_sample> lhs_samples(
    const pattern::Patterning_engine& engine, util::Rng& rng,
    const Distribution_options& opts)
{
    const auto& axes = engine.axes();
    const auto n = static_cast<std::size_t>(opts.samples);

    // Truncation in probability space.
    const double p_lo = util::normal_cdf(-opts.truncate_k);
    const double p_hi = util::normal_cdf(opts.truncate_k);

    std::vector<pattern::Process_sample> out(
        n, pattern::Process_sample(axes.size(), 0.0));

    std::vector<std::size_t> perm(n);
    for (std::size_t a = 0; a < axes.size(); ++a) {
        std::iota(perm.begin(), perm.end(), 0);
        // Fisher-Yates with the study RNG (deterministic per seed).
        for (std::size_t i = n; i > 1; --i) {
            std::swap(perm[i - 1], perm[rng.index(i)]);
        }
        for (std::size_t i = 0; i < n; ++i) {
            const double u = rng.uniform(0.0, 1.0);
            const double p =
                p_lo + (p_hi - p_lo) *
                           ((static_cast<double>(perm[i]) + u) /
                            static_cast<double>(n));
            out[i][a] = axes[a].sigma * util::normal_quantile(p);
        }
    }
    return out;
}

namespace {

/// Samples per streaming block: the eval fan-out runs one block at a time
/// (parallel, write-own-slot) and the accumulators consume it serially in
/// sample order, so the block partition — a constant — never depends on
/// the thread count and the streamed summary stays bitwise deterministic.
constexpr std::size_t streaming_block = 8192;

util::Sample_summary poisoned_summary(std::size_t count)
{
    constexpr double nan = std::numeric_limits<double>::quiet_NaN();
    return util::Sample_summary{count, nan, nan, nan, nan, nan, nan, nan};
}

} // namespace

Tdp_distribution accumulate_distribution(const Sample_eval& eval,
                                         const Distribution_options& opts)
{
    util::expects(opts.samples > 0, "sample count must be positive");
    util::expects(static_cast<bool>(eval), "sample evaluator must be set");
    const auto count = static_cast<std::size_t>(opts.samples);

    Tdp_distribution dist;
    if (opts.store_samples) {
        dist.tdp.resize(count);
        dist.rvar.resize(count);
        dist.cvar.resize(count);
        core::run_indexed(
            count,
            [&](std::size_t i, const core::Run_context& ctx) {
                const Sample_values v = eval(i, ctx);
                const std::size_t slot = core::checked_slot(ctx, count);
                dist.tdp[slot] = v.metric;
                dist.rvar[slot] = v.rvar;
                dist.cvar[slot] = v.cvar;
            },
            opts.runner);

        // A failed sample (NaN metric) must poison the whole summary, not
        // just the moments: selecting quantiles of a NaN-containing vector
        // is undefined and min/max would silently drop the failure, so the
        // NaN path never reaches util::summarize.
        const bool any_nan =
            std::any_of(dist.tdp.begin(), dist.tdp.end(),
                        [](double x) { return std::isnan(x); });
        dist.summary = any_nan ? poisoned_summary(dist.tdp.size())
                               : util::summarize(dist.tdp);
        return dist;
    }

    // Streaming mode: evaluate one fixed-size block at a time in parallel,
    // then fold it into the accumulators serially in sample order.  Memory
    // is O(streaming_block) regardless of the sample count.
    util::expects(opts.sampling == Sampling::pseudo_random,
                  "streaming accumulation requires pseudo-random sampling "
                  "(Latin-hypercube pregenerates every sample)");

    util::Running_stats stats;
    util::P2_quantile median(0.5);
    util::P2_quantile p01(0.01);
    util::P2_quantile p99(0.99);
    bool any_nan = false;

    std::vector<double> block(std::min(streaming_block, count));
    for (std::size_t begin = 0; begin < count; begin += streaming_block) {
        const std::size_t size = std::min(streaming_block, count - begin);
        core::run_indexed(
            size,
            [&](std::size_t i, const core::Run_context& ctx) {
                // Block-local slot; the SAMPLE index handed to eval is
                // begin + i, which is what its substream derives from.
                block[core::checked_slot(ctx, size)] =
                    eval(begin + i, ctx).metric;
            },
            opts.runner);
        for (std::size_t i = 0; i < size; ++i) {
            if (std::isnan(block[i])) {
                any_nan = true;
                continue;
            }
            stats.add(block[i]);
            median.add(block[i]);
            p01.add(block[i]);
            p99.add(block[i]);
        }
    }

    if (any_nan) {
        dist.summary = poisoned_summary(count);
    } else {
        dist.summary =
            util::Sample_summary{stats.count(), stats.mean(), stats.stddev(),
                                 stats.min(),   stats.max(),  median.result(),
                                 p01.result(),  p99.result()};
    }
    return dist;
}

Tdp_distribution metric_distribution(const pattern::Patterning_engine& engine,
                                     const extract::Extractor& extractor,
                                     const geom::Wire_array& nominal,
                                     std::size_t victim,
                                     const Sample_metric& metric,
                                     const Distribution_options& opts)
{
    util::expects(opts.samples > 0, "sample count must be positive");
    util::expects(victim < nominal.size(), "victim index out of range");
    util::expects(static_cast<bool>(metric), "sample metric must be set");

    // Root of this experiment's stream tree: per-sample substreams branch
    // off (base_seed, i), so the loop body is order-independent.
    const std::uint64_t base_seed =
        util::Rng(opts.seed).child(engine.name()).seed();

    // Latin-hypercube stratification couples samples across the whole set,
    // so its (cheap) sample construction stays serial; only the expensive
    // realization/extraction below is parallel.
    std::vector<pattern::Process_sample> pregen;
    if (opts.sampling == Sampling::latin_hypercube) {
        util::Rng rng(base_seed);
        pregen = lhs_samples(engine, rng, opts);
    }

    // Per-worker geometry scratch: realize_into overwrites one buffer per
    // worker instead of allocating a Wire_array (nets, colors, strings)
    // for every sample.  Worker assignment never reaches the results, so
    // the determinism contract is untouched.
    std::vector<geom::Wire_array> scratch(
        static_cast<std::size_t>(opts.runner.resolved_threads()));

    return accumulate_distribution(
        [&](std::size_t i, const core::Run_context& ctx) {
            // Substream contract: sample i draws from (base_seed, i) and
            // nothing else, so i must stay inside the experiment.
            MPSRAM_REQUIRE_INDEX(i, static_cast<std::size_t>(opts.samples));
            pattern::Process_sample s;
            if (opts.sampling == Sampling::latin_hypercube) {
                s = pregen[i];
            } else {
                util::Rng rng = util::Rng::stream(base_seed, i);
                s = engine.sample_gaussian(rng, opts.truncate_k);
            }
            geom::Wire_array& realized =
                scratch[core::checked_worker(ctx, scratch.size())];
            engine.realize_into(nominal, s, realized);
            const extract::Rc_variation v =
                extractor.variation(nominal, realized, victim);
            return Sample_values{metric(realized, v, ctx), v.r_factor,
                                 v.c_factor};
        },
        opts);
}

Tdp_distribution tdp_distribution(const pattern::Patterning_engine& engine,
                                  const extract::Extractor& extractor,
                                  const geom::Wire_array& nominal,
                                  std::size_t victim,
                                  const analytic::Td_params& params, int n,
                                  const Distribution_options& opts)
{
    return metric_distribution(
        engine, extractor, nominal, victim,
        [&](const geom::Wire_array&, const extract::Rc_variation& v,
            const core::Run_context&) {
            return analytic::tdp_percent(params, n, v.r_factor, v.c_factor);
        },
        opts);
}

} // namespace mpsram::mc
