// Worst-case variability search (Section II-B): enumerate the +/-3-sigma
// corners of a patterning option and report the corner that maximizes a
// caller-chosen metric of the realized geometry, with its R/C impact
// (Table I).  The default metric is the victim bit line's extracted
// capacitance, the paper's criterion.
#ifndef MPSRAM_MC_WORST_CASE_H
#define MPSRAM_MC_WORST_CASE_H

#include <functional>

#include "core/runner.h"
#include "extract/extractor.h"
#include "geom/wire_array.h"
#include "pattern/corners.h"
#include "pattern/engine.h"

namespace mpsram::mc {

struct Worst_case_result {
    pattern::Corner corner;            ///< maximizing corner
    extract::Rc_variation variation;   ///< victim BL R/C factors
    double vss_r_factor = 1.0;         ///< VSS rail resistance factor
    geom::Wire_array realized;         ///< geometry at the worst corner
};

/// Corner metric over the realized geometry.  Receives the runner context
/// so implementations can key per-worker scratch (extractor caches, SPICE
/// sim contexts) on Run_context::worker; the context must never influence
/// the returned value — worker assignment is nondeterministic.  Must be
/// safe to call concurrently from several threads.
using Worst_case_metric = std::function<double(
    const geom::Wire_array& realized, const core::Run_context& ctx)>;

/// Find the metric-maximizing corner.  `nominal` must already be
/// decomposed by the engine; `victim` / `vss` are wire indices in that
/// array (they feed the reported R/C and rail factors regardless of the
/// metric).  The corner evaluations run on `runner`; the result is
/// identical at any thread count.
Worst_case_result find_worst_case(const pattern::Patterning_engine& engine,
                                  const extract::Extractor& extractor,
                                  const geom::Wire_array& nominal,
                                  std::size_t victim, std::size_t vss,
                                  const Worst_case_metric& metric,
                                  int levels_per_axis = 3,
                                  const core::Runner_options& runner = {});

/// The paper's criterion: maximize the victim wire's extracted Cbl.
Worst_case_result find_worst_case(const pattern::Patterning_engine& engine,
                                  const extract::Extractor& extractor,
                                  const geom::Wire_array& nominal,
                                  std::size_t victim, std::size_t vss,
                                  int levels_per_axis = 3,
                                  const core::Runner_options& runner = {});

} // namespace mpsram::mc

#endif // MPSRAM_MC_WORST_CASE_H
