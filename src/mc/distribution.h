// Monte-Carlo tdp distribution (Section III-B): sample the patterning
// process, extract the victim's RC variation, evaluate the analytic
// formula, collect the tdp statistics (Fig. 5, Table IV).
#ifndef MPSRAM_MC_DISTRIBUTION_H
#define MPSRAM_MC_DISTRIBUTION_H

#include <cstdint>
#include <functional>
#include <vector>

#include "analytic/td_formula.h"
#include "core/runner.h"
#include "extract/extractor.h"
#include "geom/wire_array.h"
#include "pattern/engine.h"
#include "util/stats.h"

namespace mpsram::mc {

/// Sampling scheme for the Monte-Carlo loop.
enum class Sampling {
    pseudo_random,    ///< independent Gaussian draws per sample
    latin_hypercube,  ///< per-axis stratified quantiles, permuted
};

struct Distribution_options {
    int samples = 10000;
    std::uint64_t seed = 20150609;  ///< DATE 2015 vintage default
    /// Gaussian truncation of each variation axis (in sigmas); the paper
    /// quotes its process assumptions as 3-sigma bounds.
    double truncate_k = 3.0;
    /// Latin-hypercube sampling converges the sigma estimates of Table IV
    /// with ~10x fewer samples; pseudo-random remains the default for
    /// like-for-like comparison with the paper's Monte-Carlo method.
    Sampling sampling = Sampling::pseudo_random;
    /// Execution backend for the sample loop.  Sample i draws from the
    /// counter-based substream (seed, i), so the tdp/rvar/cvar vectors are
    /// bitwise identical at any thread count.
    core::Runner_options runner;
    /// Stored mode (default) materializes the per-sample tdp/rvar/cvar
    /// vectors and summarizes with exact order-statistic quantiles.
    /// Streaming mode (false) keeps the run memory-flat — no sample
    /// vectors, Running_stats moments plus P-squared quantile estimates
    /// accumulated blockwise in sample order — so 10^7-sample yield
    /// screens fit in O(block) memory.  Moments (count/mean/stddev/
    /// min/max) are bitwise identical between the two modes and at any
    /// thread count; the streamed median/p01/p99 are P-squared estimates,
    /// not exact order statistics.  Requires pseudo-random sampling
    /// (Latin-hypercube pregenerates every sample, defeating the point).
    bool store_samples = true;
};

struct Tdp_distribution {
    /// Metric value per sample.  For the read study this is tdp [%]; the
    /// generalized sampler records whatever the metric returns (the write
    /// study records twp), keeping the field name of the original
    /// workload.
    std::vector<double> tdp;
    std::vector<double> rvar;  ///< R factor per sample
    std::vector<double> cvar;  ///< C factor per sample
    util::Sample_summary summary;  ///< of tdp

    /// Bit-pattern comparison (util::bits_equal), so a deterministic run
    /// containing NaN samples (a non-flipping write) still equals its
    /// bitwise-identical re-run.
    bool operator==(const Tdp_distribution& o) const
    {
        return util::bits_equal(tdp, o.tdp) &&
               util::bits_equal(rvar, o.rvar) &&
               util::bits_equal(cvar, o.cvar) && summary == o.summary;
    }
};

/// Per-sample metric of the generalized sampler: maps a realized process
/// sample (geometry plus the victim's extracted R/C variation) to the
/// recorded value.  The read path evaluates the analytic tdp formula; the
/// write path runs a SPICE transient on a per-worker context.  Receives
/// the run context to key per-worker scratch on Run_context::worker; the
/// context must never influence the returned value.  May return NaN (a
/// failed sample poisons the summary instead of aborting the sweep).
using Sample_metric = std::function<double(
    const geom::Wire_array& realized, const extract::Rc_variation& v,
    const core::Run_context& ctx)>;

/// One evaluated sample of the generic accumulation loop.
struct Sample_values {
    double metric = 0.0;
    double rvar = 1.0;
    double cvar = 1.0;
};

/// Per-index sample evaluator: maps the sample's substream index (and the
/// run context, for per-worker scratch only) to its values.  Must depend
/// on the index alone — never on the worker or execution order.
using Sample_eval =
    std::function<Sample_values(std::size_t, const core::Run_context&)>;

/// Pregenerate the full Latin-hypercube sample set of the engine's axes:
/// each axis cut into opts.samples equal-probability strata of the
/// truncated normal, every stratum hit exactly once in an
/// axis-independent random order.  Shared by the exact and surrogate
/// samplers; the stratification couples samples across the whole set, so
/// construction is serial (and incompatible with streaming accumulation).
std::vector<pattern::Process_sample> lhs_samples(
    const pattern::Patterning_engine& engine, util::Rng& rng,
    const Distribution_options& opts);

/// The accumulation machinery shared by the exact samplers above and the
/// surrogate tier (mc/surrogate.h): evaluates `eval(i, ctx)` for every
/// sample index on `opts.runner` and produces the distribution — stored
/// or streaming per `opts.store_samples` (streaming discards the
/// per-sample rvar/cvar).  A NaN metric value poisons the summary in
/// either mode.  Bitwise identical at any thread count.
Tdp_distribution accumulate_distribution(const Sample_eval& eval,
                                         const Distribution_options& opts);

/// Generalized Monte-Carlo sampler: one metric value per process sample,
/// sharing the pseudo-random / Latin-hypercube sampling machinery and the
/// per-worker geometry scratch across every workload.  `nominal` must be
/// decomposed by the engine.  Sample i draws from the counter-based
/// substream (seed, i), so the result is bitwise identical at any thread
/// count.
Tdp_distribution metric_distribution(const pattern::Patterning_engine& engine,
                                     const extract::Extractor& extractor,
                                     const geom::Wire_array& nominal,
                                     std::size_t victim,
                                     const Sample_metric& metric,
                                     const Distribution_options& opts);

/// Run the Monte-Carlo read study for one option at array length n: the
/// generalized sampler with the analytic tdp formula as the metric.
Tdp_distribution tdp_distribution(const pattern::Patterning_engine& engine,
                                  const extract::Extractor& extractor,
                                  const geom::Wire_array& nominal,
                                  std::size_t victim,
                                  const analytic::Td_params& params, int n,
                                  const Distribution_options& opts);

} // namespace mpsram::mc

#endif // MPSRAM_MC_DISTRIBUTION_H
