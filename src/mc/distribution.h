// Monte-Carlo tdp distribution (Section III-B): sample the patterning
// process, extract the victim's RC variation, evaluate the analytic
// formula, collect the tdp statistics (Fig. 5, Table IV).
#ifndef MPSRAM_MC_DISTRIBUTION_H
#define MPSRAM_MC_DISTRIBUTION_H

#include <cstdint>
#include <vector>

#include "analytic/td_formula.h"
#include "core/runner.h"
#include "extract/extractor.h"
#include "geom/wire_array.h"
#include "pattern/engine.h"
#include "util/stats.h"

namespace mpsram::mc {

/// Sampling scheme for the Monte-Carlo loop.
enum class Sampling {
    pseudo_random,    ///< independent Gaussian draws per sample
    latin_hypercube,  ///< per-axis stratified quantiles, permuted
};

struct Distribution_options {
    int samples = 10000;
    std::uint64_t seed = 20150609;  ///< DATE 2015 vintage default
    /// Gaussian truncation of each variation axis (in sigmas); the paper
    /// quotes its process assumptions as 3-sigma bounds.
    double truncate_k = 3.0;
    /// Latin-hypercube sampling converges the sigma estimates of Table IV
    /// with ~10x fewer samples; pseudo-random remains the default for
    /// like-for-like comparison with the paper's Monte-Carlo method.
    Sampling sampling = Sampling::pseudo_random;
    /// Execution backend for the sample loop.  Sample i draws from the
    /// counter-based substream (seed, i), so the tdp/rvar/cvar vectors are
    /// bitwise identical at any thread count.
    core::Runner_options runner;
};

struct Tdp_distribution {
    std::vector<double> tdp;   ///< [%] per sample
    std::vector<double> rvar;  ///< R factor per sample
    std::vector<double> cvar;  ///< C factor per sample
    util::Sample_summary summary;  ///< of tdp
};

/// Run the Monte-Carlo study for one option at array length n.
/// `nominal` must be decomposed by the engine.
Tdp_distribution tdp_distribution(const pattern::Patterning_engine& engine,
                                  const extract::Extractor& extractor,
                                  const geom::Wire_array& nominal,
                                  std::size_t victim,
                                  const analytic::Td_params& params, int n,
                                  const Distribution_options& opts);

} // namespace mpsram::mc

#endif // MPSRAM_MC_DISTRIBUTION_H
