#include "mc/surrogate.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"
#include "util/contracts.h"
#include "util/numeric.h"
#include "util/rng.h"

namespace mpsram::mc {

Tdp_distribution surrogate_distribution(
    const pattern::Patterning_engine& engine,
    const analytic::Yield_surfaces& surfaces,
    const Distribution_options& opts)
{
    util::expects(opts.samples > 0, "sample count must be positive");
    util::expects(surfaces.metric.dimension() == engine.axes().size(),
                  "surrogate surface dimension must match the engine axes");

    // Identical stream derivation to metric_distribution: sample i of a
    // given seed draws the same process sample under either engine tier.
    const std::uint64_t base_seed =
        util::Rng(opts.seed).child(engine.name()).seed();

    std::vector<pattern::Process_sample> pregen;
    if (opts.sampling == Sampling::latin_hypercube) {
        util::Rng rng(base_seed);
        pregen = lhs_samples(engine, rng, opts);
    }

    // The exact engines keep per-worker geometry scratch here; the
    // surrogate's "scratch" is one Process_sample per worker, reused so
    // the hot loop never allocates.
    std::vector<pattern::Process_sample> scratch(
        static_cast<std::size_t>(opts.runner.resolved_threads()));

    const bool fill_factors = opts.store_samples;
    return accumulate_distribution(
        [&](std::size_t i, const core::Run_context& ctx) {
            MPSRAM_REQUIRE_INDEX(i, static_cast<std::size_t>(opts.samples));
            const pattern::Process_sample* s = nullptr;
            if (opts.sampling == Sampling::latin_hypercube) {
                s = &pregen[i];
            } else {
                pattern::Process_sample& own =
                    scratch[core::checked_worker(ctx, scratch.size())];
                util::Rng rng = util::Rng::stream(base_seed, i);
                own.clear();
                for (const pattern::Variation_axis& axis : engine.axes()) {
                    own.push_back(rng.truncated_normal(0.0, axis.sigma,
                                                       opts.truncate_k));
                }
                s = &own;
            }
            Sample_values v;
            v.metric = surfaces.metric.value(*s);
            if (fill_factors) {
                v.rvar = surfaces.rvar.value(*s);
                v.cvar = surfaces.cvar.value(*s);
            }
            return v;
        },
        opts);
}

Tail_result importance_tail(const pattern::Patterning_engine& engine,
                            const analytic::Response_surface& surface,
                            const Distribution_options& base,
                            const Tail_options& topts)
{
    const auto& axes = engine.axes();
    const std::size_t d = axes.size();
    util::expects(surface.dimension() == d,
                  "tail surface dimension must match the engine axes");
    util::expects(topts.samples > 1, "tail sampling needs > 1 sample");
    util::expects(topts.shift_sigma > 0.0 &&
                      topts.shift_sigma < base.truncate_k,
                  "the proposal shift must sit inside the truncation box");
    util::expects(!topts.sigma_levels.empty(),
                  "tail sampling needs at least one sigma level");

    // Dominant fitted direction in standardized coordinates z_a = x_a /
    // sigma_a: the gradient of the surface pulled back through the axis
    // sigmas.  The proposal mean shifts shift_sigma along it.
    const std::vector<double> grad = surface.gradient_at_zero();
    std::vector<double> mu(d, 0.0);
    double norm2 = 0.0;
    for (std::size_t a = 0; a < d; ++a) {
        mu[a] = grad[a] * axes[a].sigma;
        norm2 += mu[a] * mu[a];
    }
    util::ensures(norm2 > 0.0,
                  "importance sampling needs a non-flat fitted surface");
    const double inv_norm = topts.shift_sigma / std::sqrt(norm2);
    for (double& m : mu) m *= inv_norm;

    // Per-axis truncation normalization of the target density.
    const double c_axis = 2.0 * util::normal_cdf(base.truncate_k) - 1.0;
    const double log_c =
        static_cast<double>(d) * std::log(c_axis);

    const std::uint64_t tail_seed = util::Rng(base.seed)
                                        .child(engine.name())
                                        .child("importance-tail")
                                        .seed();

    const auto count = static_cast<std::size_t>(topts.samples);
    std::vector<double> values(count, 0.0);
    std::vector<double> weights(count, 0.0);

    std::vector<pattern::Process_sample> scratch(
        static_cast<std::size_t>(base.runner.resolved_threads()),
        pattern::Process_sample(d, 0.0));

    core::run_indexed(
        count,
        [&](std::size_t i, const core::Run_context& ctx) {
            util::Rng rng = util::Rng::stream(tail_seed, i);
            pattern::Process_sample& x =
                scratch[core::checked_worker(ctx, scratch.size())];
            // Defensive mixture proposal: with probability 1/2 draw from
            // the target itself (the truncated process measure), else
            // from the shifted normal N(mu, I).  The likelihood ratio
            //   w = p / (p/2 + q/2),  q/p = exp(mu.z - |mu|^2/2) * c^d
            // is bounded by 2, so the bulk never starves the effective
            // sample size the way a pure shifted proposal does
            // (ESS ~ n / exp(|mu|^2)), while the shifted half still
            // populates the tail.
            const bool from_target = rng.uniform(0.0, 1.0) < 0.5;
            double log_qp = log_c;  // log(q/p), up to the box indicator
            bool inside = true;
            for (std::size_t a = 0; a < d; ++a) {
                const double z =
                    from_target
                        ? rng.truncated_normal(0.0, 1.0, base.truncate_k)
                        : rng.normal(mu[a], 1.0);
                inside = inside && std::fabs(z) <= base.truncate_k;
                log_qp += mu[a] * z - 0.5 * mu[a] * mu[a];
                x[a] = z * axes[a].sigma;
            }
            const std::size_t slot = core::checked_slot(ctx, count);
            values[slot] = surface.value(x);
            // Outside the box (possible only for shifted draws) the
            // target density is zero.
            weights[slot] =
                inside ? 1.0 / (0.5 + 0.5 * std::exp(log_qp)) : 0.0;
        },
        base.runner);

    // Serial reductions in fixed orders keep the result independent of
    // the thread count: weight sums in index order, the quantile walk in
    // (value, index) order.
    double w_sum = 0.0;
    double w_sq = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
        w_sum += weights[i];
        w_sq += weights[i] * weights[i];
    }
    util::ensures(w_sum > 0.0,
                  "importance sampling: every proposal draw fell outside "
                  "the truncation box");

    std::vector<std::size_t> order(count);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  if (values[a] != values[b]) return values[a] < values[b];
                  return a < b;
              });

    Tail_result result;
    result.sigma_levels = topts.sigma_levels;
    result.samples = topts.samples;
    result.weight_sum = w_sum;
    result.ess = w_sum * w_sum / w_sq;
    result.quantiles.reserve(topts.sigma_levels.size());
    for (const double level : topts.sigma_levels) {
        const double target = util::normal_cdf(level) * w_sum;
        double cum = 0.0;
        double q = values[order.back()];
        for (const std::size_t i : order) {
            cum += weights[i];
            if (cum >= target) {
                q = values[i];
                break;
            }
        }
        result.quantiles.push_back(q);
    }
    return result;
}

} // namespace mpsram::mc
