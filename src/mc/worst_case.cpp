#include "mc/worst_case.h"

#include "util/check.h"
#include "util/contracts.h"

namespace mpsram::mc {

Worst_case_result find_worst_case(const pattern::Patterning_engine& engine,
                                  const extract::Extractor& extractor,
                                  const geom::Wire_array& nominal,
                                  std::size_t victim, std::size_t vss,
                                  const Worst_case_metric& metric,
                                  int levels_per_axis,
                                  const core::Runner_options& runner)
{
    util::expects(victim < nominal.size() && vss < nominal.size(),
                  "victim/vss indices out of range");
    util::expects(static_cast<bool>(metric), "corner metric must be set");

    // One geometry buffer per worker: corner evaluations on the same
    // worker overwrite it in place instead of allocating a fresh array.
    std::vector<geom::Wire_array> scratch(
        static_cast<std::size_t>(runner.resolved_threads()));
    const auto corner_metric = [&](const pattern::Process_sample& s,
                                   const core::Run_context& ctx) {
        geom::Wire_array& realized =
            scratch[core::checked_worker(ctx, scratch.size())];
        engine.realize_into(nominal, s, realized);
        return metric(realized, ctx);
    };

    const pattern::Corner_search search = pattern::enumerate_corners(
        engine, pattern::Corner_metric_ctx(corner_metric), 3.0,
        levels_per_axis, runner);

    Worst_case_result result{search.worst,
                             extract::Rc_variation{},
                             1.0,
                             engine.realize(nominal, search.worst.sample)};
    result.variation =
        extractor.variation(nominal, result.realized, victim);

    const double r_vss_nom = extractor.wire_rc(nominal, vss).r;
    const double r_vss_real = extractor.wire_rc(result.realized, vss).r;
    result.vss_r_factor = r_vss_real / r_vss_nom;
    return result;
}

Worst_case_result find_worst_case(const pattern::Patterning_engine& engine,
                                  const extract::Extractor& extractor,
                                  const geom::Wire_array& nominal,
                                  std::size_t victim, std::size_t vss,
                                  int levels_per_axis,
                                  const core::Runner_options& runner)
{
    return find_worst_case(
        engine, extractor, nominal, victim, vss,
        [&](const geom::Wire_array& realized, const core::Run_context&) {
            return extractor.wire_rc(realized, victim).c_total();
        },
        levels_per_axis, runner);
}

} // namespace mpsram::mc
