// Analysis drivers: DC operating point and transient simulation.
//
// Two orthogonal execution tiers select how much exactness a run buys:
//
//  * Accuracy tier (`sram::Sim_accuracy`, applied to Transient_options):
//    fixed-step reference integration vs the calibrated adaptive-LTE
//    controller.  Decides WHICH time points are solved.
//
//  * Solver tier (`spice::Solver_policy` on Newton_options.solver):
//    decides HOW each Newton linear system is solved.
//      - `direct`: factor the sparse LU every Newton iteration.  The
//        bitwise oracle; pair with Sim_accuracy::reference for golden
//        waveforms, and use it whenever a discrepancy needs a ground
//        truth to bisect against.
//      - `bypass`: delta-residual Newton on a reused factorization,
//        refreshed on operating-point drift (`bypass_vtol`), dt-band
//        exit (`bypass_dt_band`), stall (`bypass_stall_iters`), step
//        rejection, or any forcing stamps — plus device-level bypass
//        (`device_bypass_vtol`): quiet MOSFETs replay cached stamp
//        entries instead of re-running the compact model, which is
//        where the wall time actually goes (assembly dominates each
//        iteration; the banded LU is linear in n).  Acceptance requires
//        a final sub-tolerance step against a fresh factorization, so
//        the accepted point passes the direct tier's own criterion;
//        the residual model error is bounded by g * device_bypass_vtol
//        per quiet device and gated at 0.5% end to end.  This is the
//        production default under the fast accuracy tier.
//      - `iterative`: the same reuse discipline caching an ILU(0)
//        preconditioner for BiCGSTAB instead of an exact LU.  The
//        big-array tier (4k-8k rows): factor cost grows superlinearly
//        with word lines while SpMV + triangular sweeps stay linear, so
//        its advantage widens with n.  Falls back to exact LU on Krylov
//        breakdown, so robustness matches bypass.
//    DC operating points keep their own Newton_options (Dc_options below)
//    and default to `direct`, which pins identical initial conditions
//    under every policy.  Per-run factorization/bypass work is observable
//    in Step_stats.
#ifndef MPSRAM_SPICE_ANALYSIS_H
#define MPSRAM_SPICE_ANALYSIS_H

#include <string>
#include <vector>

#include "spice/circuit.h"
#include "spice/system.h"
#include "spice/workspace.h"
#include "util/numeric.h"

namespace mpsram::spice {

struct Dc_options {
    Newton_options newton;
    /// Nodes pinned during a first solve pass and released for a second,
    /// warm-started pass — the supported way to pick a stable state of a
    /// bistable circuit (SRAM latch).
    std::vector<Forced_node> forces;
    /// Plain initial guesses (no pinning).
    std::vector<std::pair<Node, double>> initial_guesses;
};

struct Dc_result {
    std::vector<double> voltages;  ///< full node-indexed vector
    int iterations = 0;

    double v(Node n) const { return voltages[static_cast<std::size_t>(n)]; }
};

/// Solve the DC operating point (caps open).  Applies gmin stepping if the
/// direct solve fails to converge.  The one-shot form compiles the circuit
/// into a throwaway workspace; pass a Transient_workspace to reuse the
/// compiled system across repeated solves.
Dc_result dc_operating_point(Circuit& circuit, const Dc_options& opts = {});
Dc_result dc_operating_point(Circuit& circuit, const Dc_options& opts,
                             Transient_workspace& workspace);

struct Transient_options {
    double tstop = 0.0;
    /// Nominal step = tstop / nominal_steps; the engine additionally lands
    /// exactly on every source breakpoint and halves the step on Newton
    /// failure.
    int nominal_steps = 1200;
    Integration_method method = Integration_method::trapezoidal;
    /// Use one backward-Euler step right after each breakpoint to damp the
    /// trapezoidal ringing a slope discontinuity would excite.
    bool be_after_breakpoint = true;
    int max_step_halvings = 20;
    Newton_options newton;
    Dc_options dc;  ///< options for the t=0 operating point

    // --- local-truncation-error step control ---------------------------------
    /// When true, each step's solution is compared against a forward
    /// predictor built from the previous slope; steps whose normalized
    /// error exceeds 1 are rejected and retried smaller, and accepted
    /// steps grow/shrink the next step toward the error target.  The
    /// nominal step acts as the reference size; growth is capped at
    /// `lte_max_growth` times it.
    bool adaptive = false;
    /// Per-node LTE tolerance: |v - predictor| <= lte_abs + lte_rel * |v|.
    double lte_rel = 2e-3;
    double lte_abs = 2e-4;
    /// Growth cap relative to the nominal step.
    double lte_max_growth = 4.0;
    /// Smallest allowed step relative to the nominal step.
    double lte_min_shrink = 1e-4;
};

/// Per-run step-control counters (filled by run_transient).  `accepted` is
/// the number of committed time steps; the reject counters distinguish the
/// two retry causes so adaptive-vs-fixed cost comparisons and step-control
/// regressions have an observable.  The solver counters are the per-run
/// delta of the system's cumulative Solver_counters (DC operating-point
/// work included): `lu_factorizations + bypass_hits == newton_iterations`,
/// and a growing bypass share is the direct observable of the
/// factorization-reuse tiers.
struct Step_stats {
    int accepted = 0;
    int lte_rejected = 0;     ///< predictor error exceeded tolerance
    int newton_rejected = 0;  ///< Newton failed to converge at the step

    long long newton_iterations = 0;
    long long lu_factorizations = 0;  ///< LU factors + ILU(0) refreshes
    long long bypass_hits = 0;        ///< solves on a reused factorization

    int total_attempts() const
    {
        return accepted + lte_rejected + newton_rejected;
    }

    Step_stats& operator+=(const Step_stats& other)
    {
        accepted += other.accepted;
        lte_rejected += other.lte_rejected;
        newton_rejected += other.newton_rejected;
        newton_iterations += other.newton_iterations;
        lu_factorizations += other.lu_factorizations;
        bypass_hits += other.bypass_hits;
        return *this;
    }
};

/// Recorded transient waveforms at the probed nodes.
class Transient_result {
public:
    Transient_result(std::vector<Node> probes,
                     std::vector<std::string> names);

    void append(double t, const std::vector<double>& voltages);

    std::size_t sample_count() const { return time_.size(); }
    const std::vector<double>& time() const { return time_; }

    /// Step-control counters of the run that produced this result.
    const Step_stats& steps() const { return steps_; }
    void set_steps(const Step_stats& s) { steps_ = s; }

    /// Waveform of a probed node (by name used at probe registration).
    util::Piecewise_linear waveform(const std::string& name) const;

    /// Differential waveform |v(a) - v(b)| of two probed nodes.
    util::Piecewise_linear differential(const std::string& a,
                                        const std::string& b) const;

    double final_value(const std::string& name) const;

private:
    std::size_t probe_index(const std::string& name) const;

    std::vector<Node> probes_;
    std::vector<std::string> names_;
    std::vector<double> time_;
    std::vector<std::vector<double>> samples_;  ///< per probe
    Step_stats steps_;
};

/// Run a transient from the DC operating point.  `probes` are circuit
/// nodes whose waveforms are recorded (keep the list small: memory is
/// samples x probes).  The workspace form reuses the compiled MNA system
/// and the solver vectors across runs (bitwise-identical results); the
/// one-shot form forwards through a local workspace.
Transient_result run_transient(Circuit& circuit,
                               const std::vector<Node>& probes,
                               const Transient_options& opts);
Transient_result run_transient(Circuit& circuit,
                               const std::vector<Node>& probes,
                               const Transient_options& opts,
                               Transient_workspace& workspace);

} // namespace mpsram::spice

#endif // MPSRAM_SPICE_ANALYSIS_H
