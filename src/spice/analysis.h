// Analysis drivers: DC operating point and transient simulation.
#ifndef MPSRAM_SPICE_ANALYSIS_H
#define MPSRAM_SPICE_ANALYSIS_H

#include <string>
#include <vector>

#include "spice/circuit.h"
#include "spice/system.h"
#include "spice/workspace.h"
#include "util/numeric.h"

namespace mpsram::spice {

struct Dc_options {
    Newton_options newton;
    /// Nodes pinned during a first solve pass and released for a second,
    /// warm-started pass — the supported way to pick a stable state of a
    /// bistable circuit (SRAM latch).
    std::vector<Forced_node> forces;
    /// Plain initial guesses (no pinning).
    std::vector<std::pair<Node, double>> initial_guesses;
};

struct Dc_result {
    std::vector<double> voltages;  ///< full node-indexed vector
    int iterations = 0;

    double v(Node n) const { return voltages[static_cast<std::size_t>(n)]; }
};

/// Solve the DC operating point (caps open).  Applies gmin stepping if the
/// direct solve fails to converge.  The one-shot form compiles the circuit
/// into a throwaway workspace; pass a Transient_workspace to reuse the
/// compiled system across repeated solves.
Dc_result dc_operating_point(Circuit& circuit, const Dc_options& opts = {});
Dc_result dc_operating_point(Circuit& circuit, const Dc_options& opts,
                             Transient_workspace& workspace);

struct Transient_options {
    double tstop = 0.0;
    /// Nominal step = tstop / nominal_steps; the engine additionally lands
    /// exactly on every source breakpoint and halves the step on Newton
    /// failure.
    int nominal_steps = 1200;
    Integration_method method = Integration_method::trapezoidal;
    /// Use one backward-Euler step right after each breakpoint to damp the
    /// trapezoidal ringing a slope discontinuity would excite.
    bool be_after_breakpoint = true;
    int max_step_halvings = 20;
    Newton_options newton;
    Dc_options dc;  ///< options for the t=0 operating point

    // --- local-truncation-error step control ---------------------------------
    /// When true, each step's solution is compared against a forward
    /// predictor built from the previous slope; steps whose normalized
    /// error exceeds 1 are rejected and retried smaller, and accepted
    /// steps grow/shrink the next step toward the error target.  The
    /// nominal step acts as the reference size; growth is capped at
    /// `lte_max_growth` times it.
    bool adaptive = false;
    /// Per-node LTE tolerance: |v - predictor| <= lte_abs + lte_rel * |v|.
    double lte_rel = 2e-3;
    double lte_abs = 2e-4;
    /// Growth cap relative to the nominal step.
    double lte_max_growth = 4.0;
    /// Smallest allowed step relative to the nominal step.
    double lte_min_shrink = 1e-4;
};

/// Per-run step-control counters (filled by run_transient).  `accepted` is
/// the number of committed time steps; the reject counters distinguish the
/// two retry causes so adaptive-vs-fixed cost comparisons and step-control
/// regressions have an observable.
struct Step_stats {
    int accepted = 0;
    int lte_rejected = 0;     ///< predictor error exceeded tolerance
    int newton_rejected = 0;  ///< Newton failed to converge at the step

    int total_attempts() const
    {
        return accepted + lte_rejected + newton_rejected;
    }

    Step_stats& operator+=(const Step_stats& other)
    {
        accepted += other.accepted;
        lte_rejected += other.lte_rejected;
        newton_rejected += other.newton_rejected;
        return *this;
    }
};

/// Recorded transient waveforms at the probed nodes.
class Transient_result {
public:
    Transient_result(std::vector<Node> probes,
                     std::vector<std::string> names);

    void append(double t, const std::vector<double>& voltages);

    std::size_t sample_count() const { return time_.size(); }
    const std::vector<double>& time() const { return time_; }

    /// Step-control counters of the run that produced this result.
    const Step_stats& steps() const { return steps_; }
    void set_steps(const Step_stats& s) { steps_ = s; }

    /// Waveform of a probed node (by name used at probe registration).
    util::Piecewise_linear waveform(const std::string& name) const;

    /// Differential waveform |v(a) - v(b)| of two probed nodes.
    util::Piecewise_linear differential(const std::string& a,
                                        const std::string& b) const;

    double final_value(const std::string& name) const;

private:
    std::size_t probe_index(const std::string& name) const;

    std::vector<Node> probes_;
    std::vector<std::string> names_;
    std::vector<double> time_;
    std::vector<std::vector<double>> samples_;  ///< per probe
    Step_stats steps_;
};

/// Run a transient from the DC operating point.  `probes` are circuit
/// nodes whose waveforms are recorded (keep the list small: memory is
/// samples x probes).  The workspace form reuses the compiled MNA system
/// and the solver vectors across runs (bitwise-identical results); the
/// one-shot form forwards through a local workspace.
Transient_result run_transient(Circuit& circuit,
                               const std::vector<Node>& probes,
                               const Transient_options& opts);
Transient_result run_transient(Circuit& circuit,
                               const std::vector<Node>& probes,
                               const Transient_options& opts,
                               Transient_workspace& workspace);

} // namespace mpsram::spice

#endif // MPSRAM_SPICE_ANALYSIS_H
