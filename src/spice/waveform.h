// Source waveforms: DC, pulse and piecewise-linear, with breakpoint
// reporting so the transient engine never integrates across a corner.
#ifndef MPSRAM_SPICE_WAVEFORM_H
#define MPSRAM_SPICE_WAVEFORM_H

#include <vector>

namespace mpsram::spice {

/// Value-semantic waveform: v(t) plus the list of slope discontinuities.
class Waveform {
public:
    /// Constant value for all t.
    static Waveform dc(double value);

    /// Single pulse: `v0` until `delay`, linear rise over `rise` to `v1`,
    /// hold for `width`, linear fall over `fall` back to `v0`.
    /// A non-positive `width` means the pulse never falls.
    static Waveform pulse(double v0, double v1, double delay, double rise,
                          double width = -1.0, double fall = 0.0);

    /// Piecewise linear through (t, v) points (t strictly increasing);
    /// clamps outside the range.
    static Waveform pwl(std::vector<double> times, std::vector<double> values);

    double value(double t) const;

    /// Slope-discontinuity times within [0, tstop], appended to `out`.
    void breakpoints(double tstop, std::vector<double>& out) const;

    /// True if the waveform is a single constant value.
    bool is_dc() const { return times_.size() == 1; }

    /// Internal PWL corners (for serialization / inspection).
    const std::vector<double>& corner_times() const { return times_; }
    const std::vector<double>& corner_values() const { return values_; }

private:
    Waveform() = default;

    // Internal representation: sorted PWL corners; DC is a single corner.
    std::vector<double> times_;
    std::vector<double> values_;
    bool hold_last_ = true;
};

} // namespace mpsram::spice

#endif // MPSRAM_SPICE_WAVEFORM_H
