// Reusable solver scratch for repeated analyses on one circuit.
//
// Compiling a circuit into an Mna_system is the expensive, allocation-heavy
// part of an analysis: node classification, sparse-pattern assembly, and the
// symbolic LU (fill-in) all happen in the constructor.  The seed code paid
// that cost twice per transient (once for the operating point, once for the
// time loop) and rebuilt everything on every run of a sweep.
//
// A Transient_workspace owns that scratch across calls: it caches the
// compiled system plus the solution vectors of the time loop, and rebuilds
// them only when the bound circuit's identity or structure changes.  Device
// *value* edits (Resistor::set_resistance, Capacitor::set_capacitance) do
// not change the sparse pattern, so a sweep that re-points a netlist at new
// extracted parasitics keeps the symbolic factorization.
//
// A workspace is single-threaded state: give each worker of a parallel
// sweep its own (see sram::Read_sim_context and the core:: batch APIs).
// Results are bitwise identical with and without reuse — every buffer is
// fully re-initialized by the analysis drivers before use.
#ifndef MPSRAM_SPICE_WORKSPACE_H
#define MPSRAM_SPICE_WORKSPACE_H

#include <cstddef>
#include <memory>
#include <vector>

#include "spice/system.h"

namespace mpsram::spice {

class Transient_workspace {
public:
    Transient_workspace() = default;

    Transient_workspace(const Transient_workspace&) = delete;
    Transient_workspace& operator=(const Transient_workspace&) = delete;
    Transient_workspace(Transient_workspace&&) = default;
    Transient_workspace& operator=(Transient_workspace&&) = default;

    /// Compiled system for `circuit`, rebuilt only when the circuit is not
    /// the one already bound or its node/device structure changed.
    // lint:allow(raw-socket) -- binds a workspace, not a socket
    Mna_system& bind(Circuit& circuit);

    /// Drop the bound system (next bind() rebuilds).  Call after replacing
    /// the circuit object itself.
    void invalidate();

    /// Number of Mna_system compilations this workspace has performed
    /// (tests assert reuse through this).
    std::size_t build_count() const { return builds_; }

    // Solution-vector scratch of the analysis drivers.  Contents are
    // overwritten by every run; only the capacity is carried across calls.
    std::vector<double>& voltages() { return voltages_; }
    std::vector<double>& prev_voltages() { return prev_voltages_; }
    std::vector<double>& attempt() { return attempt_; }

private:
    std::unique_ptr<Mna_system> system_;
    const Circuit* bound_ = nullptr;
    std::size_t bound_nodes_ = 0;
    std::size_t bound_devices_ = 0;
    std::size_t builds_ = 0;

    std::vector<double> voltages_;
    std::vector<double> prev_voltages_;
    std::vector<double> attempt_;
};

} // namespace mpsram::spice

#endif // MPSRAM_SPICE_WORKSPACE_H
