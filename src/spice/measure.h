// Waveform measurements on transient results (the paper's figure of merit
// is the time for |Vbl - Vblb| to reach the sense-amplifier sensitivity).
#ifndef MPSRAM_SPICE_MEASURE_H
#define MPSRAM_SPICE_MEASURE_H

#include <string>

#include "spice/analysis.h"

namespace mpsram::spice {

/// First time (>= from) the probed node crosses `level`; negative if never.
double crossing_time(const Transient_result& result, const std::string& probe,
                     double level, double from = 0.0);

/// First time (>= from) |v(a) - v(b)| reaches `level`; negative if never.
double differential_time(const Transient_result& result, const std::string& a,
                         const std::string& b, double level,
                         double from = 0.0);

/// Maximum sampled value of the probed node at times >= from (the
/// disturb study's figure of merit is the peak storage-node excursion).
/// Returns -infinity if no sample lies at or after `from`.
double peak_value(const Transient_result& result, const std::string& probe,
                  double from = 0.0);

} // namespace mpsram::spice

#endif // MPSRAM_SPICE_MEASURE_H
