// MOSFET circuit device wrapping the EKV-style compact model.
#ifndef MPSRAM_SPICE_MOSFET_H
#define MPSRAM_SPICE_MOSFET_H

#include "spice/device.h"
#include "spice/mosfet_model.h"

namespace mpsram::spice {

/// Three-terminal MOSFET (drain, gate, source); the bulk is implicitly
/// tied to the rail appropriate for the type (model is bulk-referenced).
class Mosfet final : public Device {
public:
    Mosfet(std::string name, Node drain, Node gate, Node source,
           Mosfet_params params, double multiplicity = 1.0);

    Node drain() const { return nodes()[0]; }
    Node gate() const { return nodes()[1]; }
    Node source() const { return nodes()[2]; }
    const Mosfet_params& params() const { return params_; }
    double multiplicity() const { return m_; }

    bool is_nonlinear() const override { return true; }
    /// The EKV stamp reads only the drain/gate/source voltages, so the
    /// reuse solver may replay it across steps while the terminals are
    /// quiet.
    bool stamp_voltage_only() const override { return true; }

    void stamp(Stamper& s, const Eval_context& ctx) const override;

    /// Drain current at the given context's voltages (diagnostics).
    double current(const Eval_context& ctx) const;

private:
    Mosfet_params params_;
    double m_;
};

} // namespace mpsram::spice

#endif // MPSRAM_SPICE_MOSFET_H
