#include "spice/mosfet.h"

#include "util/contracts.h"

namespace mpsram::spice {

Mosfet::Mosfet(std::string name, Node drain, Node gate, Node source,
               Mosfet_params params, double multiplicity)
    : Device(std::move(name), {drain, gate, source}),
      params_(params),
      m_(multiplicity)
{
    util::expects(multiplicity > 0.0, "multiplicity must be positive");
}

void Mosfet::stamp(Stamper& s, const Eval_context& ctx) const
{
    const Node d = drain();
    const Node g = gate();
    const Node src = source();

    const double vd = ctx.v(d);
    const double vg = ctx.v(g);
    const double vs = ctx.v(src);

    const Mosfet_eval e = evaluate_mosfet(params_, vd, vg, vs, m_);

    // Newton companion: ids(v) ~ ids0 + gds*dvd + gm*dvg + gms*dvs.
    // ids flows d -> s inside the device, i.e. leaves node d and enters
    // node s.
    s.jacobian(d, d, e.gds);
    s.jacobian(d, g, e.gm);
    s.jacobian(d, src, e.gms);
    s.jacobian(src, d, -e.gds);
    s.jacobian(src, g, -e.gm);
    s.jacobian(src, src, -e.gms);

    const double i_const =
        e.ids - (e.gds * vd + e.gm * vg + e.gms * vs);
    s.rhs(d, -i_const);
    s.rhs(src, i_const);
}

double Mosfet::current(const Eval_context& ctx) const
{
    return evaluate_mosfet(params_, ctx.v(drain()), ctx.v(gate()),
                           ctx.v(source()), m_)
        .ids;
}

} // namespace mpsram::spice
