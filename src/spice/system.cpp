#include "spice/system.h"

#include <algorithm>
#include <cmath>

#include "spice/exceptions.h"
#include "util/check.h"
#include "util/contracts.h"

namespace mpsram::spice {

// --- stampers ----------------------------------------------------------------

/// Pattern pass: records which (eq, wrt) matrix positions devices touch.
class Mna_system::Pattern_stamper final : public Stamper {
public:
    Pattern_stamper(const std::vector<int>& solve_index,
                    std::vector<std::pair<int, int>>& entries)
        : solve_index_(&solve_index), entries_(&entries)
    {
    }

    void jacobian(Node eq, Node wrt, double) override
    {
        const int row = (*solve_index_)[static_cast<std::size_t>(eq)];
        const int col = (*solve_index_)[static_cast<std::size_t>(wrt)];
        if (row >= 0 && col >= 0) entries_->push_back({row, col});
    }

    void rhs(Node, double) override {}

private:
    const std::vector<int>* solve_index_;
    std::vector<std::pair<int, int>>* entries_;
};

/// Numeric pass: writes values into the matrix / RHS, routing known-voltage
/// columns to the RHS.
class Mna_system::Assembly_stamper final : public Stamper {
public:
    Assembly_stamper(const std::vector<int>& solve_index,
                     Sparse_matrix& m, std::vector<double>& rhs,
                     const std::vector<double>& voltages)
        : solve_index_(&solve_index),
          matrix_(&m),
          rhs_(&rhs),
          voltages_(&voltages)
    {
    }

    void jacobian(Node eq, Node wrt, double g) override
    {
        // A NaN-poisoned stamp caught here names the exact (eq, wrt)
        // entry; downstream it would surface as an unrelated
        // Convergence_error (NaN never satisfies the pivot floor or the
        // tolerance test) long after the cause.
        MPSRAM_ASSERT(std::isfinite(g), "non-finite Jacobian stamp",
                      MPSRAM_VAL(g), MPSRAM_VAL(eq), MPSRAM_VAL(wrt));
        const int row = (*solve_index_)[static_cast<std::size_t>(eq)];
        if (row < 0) return;  // ground or driven equation: dropped
        const int col = (*solve_index_)[static_cast<std::size_t>(wrt)];
        if (col >= 0) {
            matrix_->add(row, col, g);
        } else {
            // Known voltage (ground contributes 0): move to the RHS.
            (*rhs_)[static_cast<std::size_t>(row)] -=
                g * (*voltages_)[static_cast<std::size_t>(wrt)];
        }
    }

    void rhs(Node eq, double value) override
    {
        MPSRAM_ASSERT(std::isfinite(value), "non-finite RHS stamp",
                      MPSRAM_VAL(value), MPSRAM_VAL(eq));
        const int row = (*solve_index_)[static_cast<std::size_t>(eq)];
        if (row >= 0) (*rhs_)[static_cast<std::size_t>(row)] += value;
    }

private:
    const std::vector<int>* solve_index_;
    Sparse_matrix* matrix_;
    std::vector<double>* rhs_;
    const std::vector<double>* voltages_;
};

/// Numeric pass that also records the routed entries into a Device_cache,
/// so quiet devices can later replay them without re-running the compact
/// model.  Routing is identical to Assembly_stamper; matrix entries are
/// recorded by slot so replay is one add per entry.
class Mna_system::Caching_stamper final : public Stamper {
public:
    Caching_stamper(const std::vector<int>& solve_index,
                    Sparse_matrix& m, std::vector<double>& rhs,
                    const std::vector<double>& voltages)
        : solve_index_(&solve_index),
          matrix_(&m),
          rhs_(&rhs),
          voltages_(&voltages)
    {
    }

    void begin(Device_cache& cache)
    {
        cache_ = &cache;
        cache_->matrix_adds.clear();
        cache_->rhs_adds.clear();
    }

    void jacobian(Node eq, Node wrt, double g) override
    {
        // Same poison guard as Assembly_stamper: a cached NaN would be
        // replayed on every bypass hit until the envelope invalidates.
        MPSRAM_ASSERT(std::isfinite(g), "non-finite Jacobian stamp (cached)",
                      MPSRAM_VAL(g), MPSRAM_VAL(eq), MPSRAM_VAL(wrt));
        const int row = (*solve_index_)[static_cast<std::size_t>(eq)];
        if (row < 0) return;
        const int col = (*solve_index_)[static_cast<std::size_t>(wrt)];
        if (col >= 0) {
            const int s = matrix_->slot(row, col);
            matrix_->add_at_slot(s, g);
            cache_->matrix_adds.emplace_back(s, g);
        } else {
            const double v =
                -g * (*voltages_)[static_cast<std::size_t>(wrt)];
            (*rhs_)[static_cast<std::size_t>(row)] += v;
            cache_->rhs_adds.emplace_back(row, v);
        }
    }

    void rhs(Node eq, double value) override
    {
        MPSRAM_ASSERT(std::isfinite(value), "non-finite RHS stamp (cached)",
                      MPSRAM_VAL(value), MPSRAM_VAL(eq));
        const int row = (*solve_index_)[static_cast<std::size_t>(eq)];
        if (row < 0) return;
        (*rhs_)[static_cast<std::size_t>(row)] += value;
        cache_->rhs_adds.emplace_back(row, value);
    }

private:
    const std::vector<int>* solve_index_;
    Sparse_matrix* matrix_;
    std::vector<double>* rhs_;
    const std::vector<double>* voltages_;
    Device_cache* cache_ = nullptr;
};

// --- Mna_system ---------------------------------------------------------------

Mna_system::Mna_system(Circuit& circuit) : circuit_(&circuit)
{
    classify();
    build_pattern();
}

void Mna_system::classify()
{
    const std::size_t n_nodes = circuit_->node_count();
    solve_index_.assign(n_nodes, -2);  // -2: unclassified
    solve_index_[ground_node] = -1;

    // Driven nodes from grounded sources.
    for (const Voltage_source* src : circuit_->voltage_sources()) {
        if (!src->grounded()) continue;
        const Node pos = src->pos();
        if (pos == ground_node) {
            throw Netlist_error("voltage source " + src->name() +
                                " shorts ground to ground");
        }
        if (solve_index_[static_cast<std::size_t>(pos)] == -1) {
            throw Netlist_error("node " + circuit_->node_name(pos) +
                                " driven by multiple voltage sources");
        }
        solve_index_[static_cast<std::size_t>(pos)] = -1;
        driven_.push_back({pos, src});
    }

    // Remaining nodes become unknowns, in node order (which follows the
    // netlist build order and therefore the physical structure).
    for (std::size_t n = 0; n < n_nodes; ++n) {
        if (solve_index_[n] == -2) {
            solve_index_[n] = static_cast<int>(unknown_nodes_.size());
            unknown_nodes_.push_back(static_cast<Node>(n));
        }
    }

    // Floating sources get branch unknowns after the node unknowns.
    int next = static_cast<int>(unknown_nodes_.size());
    for (const Voltage_source* src : circuit_->voltage_sources()) {
        if (src->grounded()) continue;
        branches_.push_back({src, next++});
    }

    total_unknowns_ =
        unknown_nodes_.size() + branches_.size();
    util::ensures(total_unknowns_ > 0, "circuit has no unknowns to solve");

    nonlinear_ = std::any_of(
        circuit_->devices().begin(), circuit_->devices().end(),
        [](const auto& d) { return d->is_nonlinear(); });

    branch_currents_.assign(branches_.size(), 0.0);
}

void Mna_system::build_pattern()
{
    std::vector<std::pair<int, int>> entries;

    // Device entries: one structural pass with zeroed voltages.
    Pattern_stamper ps(solve_index_, entries);
    std::vector<double> zeros(circuit_->node_count(), 0.0);
    Eval_context ctx;
    ctx.mode = Analysis_mode::transient;
    ctx.method = Integration_method::backward_euler;
    ctx.time = 0.0;
    ctx.dt = 1.0;  // any positive value: pattern only
    ctx.voltages = zeros.data();
    for (const auto& dev : circuit_->devices()) dev->stamp(ps, ctx);

    // Branch rows/columns for floating sources.
    for (const Branch& b : branches_) {
        const int prow = solve_index_[static_cast<std::size_t>(b.source->pos())];
        const int nrow = solve_index_[static_cast<std::size_t>(b.source->neg())];
        if (prow >= 0) {
            entries.push_back({prow, b.index});
            entries.push_back({b.index, prow});
        }
        if (nrow >= 0) {
            entries.push_back({nrow, b.index});
            entries.push_back({b.index, nrow});
        }
    }

    matrix_ = std::make_unique<Sparse_matrix>(total_unknowns_, entries);
    lu_ = std::make_unique<Sparse_lu>(*matrix_);
    rhs_.assign(total_unknowns_, 0.0);
    solution_.assign(total_unknowns_, 0.0);
}

void Mna_system::apply_driven(double t, std::vector<double>& voltages) const
{
    util::expects(voltages.size() == circuit_->node_count(),
                  "voltage vector size mismatch");
    voltages[ground_node] = 0.0;
    for (const Driven& d : driven_) {
        voltages[static_cast<std::size_t>(d.node)] = d.source->value(t);
    }
}

void Mna_system::assemble(const Eval_context& ctx,
                          const std::vector<double>& voltages,
                          const Newton_options& opts,
                          std::span<const Forced_node> forces)
{
    matrix_->clear_values();
    std::fill(rhs_.begin(), rhs_.end(), 0.0);

    Assembly_stamper stamper(solve_index_, *matrix_, rhs_, voltages);
    for (const auto& dev : circuit_->devices()) {
        dev->stamp(stamper, ctx);
    }

    stamp_fixed(ctx, voltages, opts, forces);
}

/// Reuse-tier assembly.  Voltage-only devices (MOSFETs, resistors) whose
/// terminals are all within device_bypass_vtol of their last evaluation
/// replay cached stamps across steps; time/history devices (capacitor
/// companions, sources) re-evaluate on the first iteration of each solve
/// — where t, dt, and history change — and replay on the rest.  Cache
/// replay follows device order, so the per-slot add sequence — and
/// therefore the assembled doubles — match a fresh assembly of the same
/// linearizations exactly.
void Mna_system::assemble_reuse(const Eval_context& ctx,
                                const std::vector<double>& voltages,
                                const Newton_options& opts, bool new_step,
                                std::span<const Forced_node> forces)
{
    matrix_->clear_values();
    std::fill(rhs_.begin(), rhs_.end(), 0.0);

    const double vtol = opts.device_bypass_vtol;
    const auto& devices = circuit_->devices();
    if (device_cache_.size() != devices.size()) {
        device_cache_.assign(devices.size(), {});
    }

    Assembly_stamper fresh(solve_index_, *matrix_, rhs_, voltages);
    Caching_stamper caching(solve_index_, *matrix_, rhs_, voltages);
    for (std::size_t i = 0; i < devices.size(); ++i) {
        const Device& dev = *devices[i];
        if (vtol <= 0.0) {
            dev.stamp(fresh, ctx);
            continue;
        }
        Device_cache& cache = device_cache_[i];
        bool quiet;
        if (dev.stamp_voltage_only()) {
            const auto& nodes = dev.nodes();
            quiet = cache.valid && cache.v_at_eval.size() == nodes.size();
            for (std::size_t k = 0; quiet && k < nodes.size(); ++k) {
                const auto n = static_cast<std::size_t>(nodes[k]);
                quiet = std::fabs(voltages[n] - cache.v_at_eval[k]) <= vtol;
            }
        } else {
            // Within-solve replay assumes an iterate-independent stamp,
            // which only holds for linear companions and sources.
            quiet = cache.valid && !new_step && !dev.is_nonlinear();
        }
        if (quiet) {
            for (const auto& [slot, g] : cache.matrix_adds) {
                matrix_->add_at_slot(slot, g);
            }
            for (const auto& [row, v] : cache.rhs_adds) {
                rhs_[static_cast<std::size_t>(row)] += v;
            }
            continue;
        }
        caching.begin(cache);
        dev.stamp(caching, ctx);
        if (dev.stamp_voltage_only()) {
            const auto& nodes = dev.nodes();
            cache.v_at_eval.resize(nodes.size());
            for (std::size_t k = 0; k < nodes.size(); ++k) {
                cache.v_at_eval[k] =
                    voltages[static_cast<std::size_t>(nodes[k])];
            }
        }
        cache.valid = true;
    }

    stamp_fixed(ctx, voltages, opts, forces);
}

/// Voltage-independent tail shared by both assembly passes: gmin,
/// initial-condition forcing, and the floating-source branch equations.
void Mna_system::stamp_fixed(const Eval_context& ctx,
                             const std::vector<double>& voltages,
                             const Newton_options& opts,
                             std::span<const Forced_node> forces)
{
    // gmin on every node diagonal.
    for (std::size_t u = 0; u < unknown_nodes_.size(); ++u) {
        matrix_->add(static_cast<int>(u), static_cast<int>(u), opts.gmin);
    }

    // Initial-condition forcing.
    for (const Forced_node& f : forces) {
        const int row = solve_index_[static_cast<std::size_t>(f.node)];
        if (row < 0) continue;
        matrix_->add(row, row, f.conductance);
        rhs_[static_cast<std::size_t>(row)] += f.conductance * f.voltage;
    }

    // Floating-source branch equations.
    for (const Branch& b : branches_) {
        const Node pos = b.source->pos();
        const Node neg = b.source->neg();
        const int prow = solve_index_[static_cast<std::size_t>(pos)];
        const int nrow = solve_index_[static_cast<std::size_t>(neg)];
        double v_rhs = b.source->value(ctx.time);
        // KCL columns: branch current flows into pos, out of neg.
        if (prow >= 0) {
            matrix_->add(prow, b.index, -1.0);
            matrix_->add(b.index, prow, 1.0);
        } else {
            v_rhs -= voltages[static_cast<std::size_t>(pos)];
        }
        if (nrow >= 0) {
            matrix_->add(nrow, b.index, 1.0);
            matrix_->add(b.index, nrow, -1.0);
        } else {
            v_rhs += voltages[static_cast<std::size_t>(neg)];
        }
        rhs_[static_cast<std::size_t>(b.index)] += v_rhs;
    }
}

int Mna_system::solve(const Eval_context& ctx_in,
                      std::vector<double>& voltages,
                      const Newton_options& opts,
                      std::span<const Forced_node> forces)
{
    util::expects(voltages.size() == circuit_->node_count(),
                  "voltage vector size mismatch");

    Eval_context ctx = ctx_in;
    apply_driven(ctx.time, voltages);

    if (opts.solver == Solver_policy::direct) {
        return solve_direct(ctx, voltages, opts, forces);
    }
    return solve_reuse(ctx, voltages, opts, forces);
}

int Mna_system::solve_direct(Eval_context ctx, std::vector<double>& voltages,
                             const Newton_options& opts,
                             std::span<const Forced_node> forces)
{
    // The reference path: every operation here predates the solver tiers
    // and must stay bitwise identical to them.  Direct factors leave no
    // reusable state (no operating point is recorded for them).
    factored_ = false;

    const int max_iter = opts.max_iterations;

    for (int iter = 1; iter <= max_iter; ++iter) {
        ctx.voltages = voltages.data();
        assemble(ctx, voltages, opts, forces);

        lu_->factor(*matrix_, opts.pivot_floor);
        ++counters_.lu_factorizations;
        ++counters_.newton_iterations;
        solution_ = rhs_;
        lu_->solve(solution_);
        // NaN/Inf in the update vector would pass the tolerance test
        // below (every comparison with NaN is false) and be accepted as
        // "converged" — the solver-vector guard closes that hole.
        MPSRAM_ASSERT(util::all_finite(solution_),
                      "non-finite direct Newton update",
                      MPSRAM_VAL(ctx.time), MPSRAM_VAL(iter));

        // Damped update + convergence check.
        bool converged = true;
        for (std::size_t u = 0; u < unknown_nodes_.size(); ++u) {
            const auto node = static_cast<std::size_t>(unknown_nodes_[u]);
            double dv = solution_[u] - voltages[node];
            if (dv > opts.vstep_limit) dv = opts.vstep_limit;
            if (dv < -opts.vstep_limit) dv = -opts.vstep_limit;
            voltages[node] += dv;
            const double tol =
                opts.abstol + opts.reltol * std::fabs(voltages[node]);
            if (std::fabs(dv) > tol) converged = false;
        }
        for (std::size_t b = 0; b < branches_.size(); ++b) {
            branch_currents_[b] =
                solution_[unknown_nodes_.size() + b];
        }

        if (converged && iter > 1) return iter;
    }

    throw Convergence_error(
        "Newton did not converge in " + std::to_string(max_iter) +
        " iterations (t = " + std::to_string(ctx.time) + " s)");
}

bool Mna_system::factor_stale(const Eval_context& ctx,
                              const std::vector<double>& voltages,
                              const Newton_options& opts) const
{
    if (!factored_ || factored_policy_ != opts.solver) return true;
    if (mode_at_factor_ != ctx.mode || method_at_factor_ != ctx.method) {
        return true;
    }
    if (gmin_at_factor_ != opts.gmin) return true;
    if (ctx.mode == Analysis_mode::transient) {
        if (dt_at_factor_ <= 0.0 || ctx.dt <= 0.0) return true;
        const double ratio = ctx.dt / dt_at_factor_;
        if (ratio > opts.bypass_dt_band ||
            ratio * opts.bypass_dt_band < 1.0) {
            return true;
        }
    } else if (ctx.dt != dt_at_factor_) {
        return true;
    }
    // Drift over the FULL node vector: driven nodes are not unknowns, but
    // a moving word line changes every linearization it gates.
    for (std::size_t n = 0; n < voltages.size(); ++n) {
        if (std::fabs(voltages[n] - v_at_factor_[n]) > opts.bypass_vtol) {
            return true;
        }
    }
    return false;
}

void Mna_system::factor_current(const Newton_options& opts)
{
    if (opts.solver == Solver_policy::iterative) {
        if (!ilu_) ilu_ = std::make_unique<Ilu0>(*matrix_);
        ilu_->factor(*matrix_, opts.pivot_floor);
    } else {
        lu_->factor(*matrix_, opts.pivot_floor);
    }
    ++counters_.lu_factorizations;
}

void Mna_system::solve_delta(const Newton_options& opts)
{
    if (opts.solver != Solver_policy::iterative) {
        delta_ = residual_;
        lu_->solve(delta_);
        return;
    }
    if (bicgstab(*matrix_, *ilu_, residual_, delta_, opts.iterative_tol,
                 opts.iterative_max_iters, krylov_scratch_) >= 0) {
        return;
    }
    // Krylov breakdown or exhaustion under a stale preconditioner:
    // refresh it once, then fall back to an exact factorization.
    ilu_->factor(*matrix_, opts.pivot_floor);
    ++counters_.lu_factorizations;
    if (bicgstab(*matrix_, *ilu_, residual_, delta_, opts.iterative_tol,
                 opts.iterative_max_iters, krylov_scratch_) >= 0) {
        return;
    }
    lu_->factor(*matrix_, opts.pivot_floor);
    ++counters_.lu_factorizations;
    delta_ = residual_;
    lu_->solve(delta_);
}

int Mna_system::solve_reuse(Eval_context ctx, std::vector<double>& voltages,
                            const Newton_options& opts,
                            std::span<const Forced_node> forces)
{
    // Delta-residual (chord) Newton.  The Jacobian and linearization RHS
    // are assembled every iteration — with quiet nonlinear devices served
    // from their stamp caches (assemble_reuse) — and only the linear
    // solve runs on a possibly stale factorization:
    //
    //     r = rhs - J x      (assembled J and rhs, SpMV)
    //     M delta = r        (M = stale LU or ILU-preconditioned Krylov)
    //     x += clamp(delta)
    //
    // The fixed point satisfies r = 0 for the assembled system, so a
    // stale M only slows convergence — it cannot change the answer.  This
    // is what makes bypass safe for the nonlinear MOSFET stamps, where
    // pairing a stale factorization with a fresh absolute RHS would
    // converge to the wrong point.  Device-level bypass does perturb the
    // fixed point, by at most g * device_bypass_vtol per quiet device;
    // the 0.5% agreement gate holds that end to end.
    const int max_iter = opts.max_iterations;
    const std::size_t n_node = unknown_nodes_.size();

    // Set when the loop converged under a stale operator: the next
    // iteration refreshes and recomputes a TRUE Newton step, so the
    // accepted point passes the same fresh-Jacobian tolerance test as
    // the direct tier (a small chord step under a slowly contracting
    // stale M does not bound the true step).
    bool confirm = false;
    // Consecutive iterations served by the current factorization in this
    // solve: the stall trigger refreshes a factor that has worked this
    // long without converging, rather than abandoning reuse wholesale.
    int stale_iters = 0;

    for (int iter = 1; iter <= max_iter; ++iter) {
        ctx.voltages = voltages.data();
        assemble_reuse(ctx, voltages, opts, iter == 1, forces);
        ++counters_.newton_iterations;

        const bool refresh = !forces.empty() || confirm ||
                             stale_iters >= opts.bypass_stall_iters ||
                             factor_stale(ctx, voltages, opts);
        if (refresh) {
            factor_current(opts);
            factored_policy_ = opts.solver;
            mode_at_factor_ = ctx.mode;
            method_at_factor_ = ctx.method;
            dt_at_factor_ = ctx.dt;
            gmin_at_factor_ = opts.gmin;
            v_at_factor_ = voltages;
            // Factors taken with forcing stamps in the matrix are never
            // valid for an unforced solve.
            factored_ = forces.empty();
            stale_iters = 0;
        } else {
            ++counters_.bypass_hits;
            ++stale_iters;
        }

        x_.resize(total_unknowns_);
        for (std::size_t u = 0; u < n_node; ++u) {
            x_[u] = voltages[static_cast<std::size_t>(unknown_nodes_[u])];
        }
        for (std::size_t b = 0; b < branches_.size(); ++b) {
            x_[n_node + b] = branch_currents_[b];
        }
        matrix_->multiply(x_, residual_);
        for (std::size_t i = 0; i < total_unknowns_; ++i) {
            residual_[i] = rhs_[i] - residual_[i];
        }

        solve_delta(opts);
        // The residual is assembled fresh each iteration, so a poisoned
        // delta means either a poisoned stamp slipped through or the
        // stale factorization/preconditioner produced garbage.
        MPSRAM_ASSERT(util::all_finite(delta_),
                      "non-finite reuse-tier Newton delta",
                      MPSRAM_VAL(ctx.time), MPSRAM_VAL(iter),
                      MPSRAM_VAL(static_cast<int>(opts.solver)));

        bool converged = true;
        for (std::size_t u = 0; u < n_node; ++u) {
            const auto node = static_cast<std::size_t>(unknown_nodes_[u]);
            double dv = delta_[u];
            if (dv > opts.vstep_limit) dv = opts.vstep_limit;
            if (dv < -opts.vstep_limit) dv = -opts.vstep_limit;
            voltages[node] += dv;
            const double tol =
                opts.abstol + opts.reltol * std::fabs(voltages[node]);
            if (std::fabs(dv) > tol) converged = false;
        }
        for (std::size_t b = 0; b < branches_.size(); ++b) {
            branch_currents_[b] += delta_[n_node + b];
        }

        // Acceptance: the final sub-tolerance step must be measured
        // against an operator that is current for the accepted point —
        // either refreshed this iteration, or still inside the
        // (dt-exact, bypass_vtol) staleness envelope of the final
        // iterate.  That criterion is meaningful from iteration 1 on
        // (unlike the direct path's two-iteration minimum, which guards
        // an absolute-RHS solve, a sub-tolerance DELTA against a current
        // operator is already a converged Newton test — quiet waveform
        // stretches accept in one cache-replay iteration).  A solve that
        // converged outside the envelope gets one confirmation iteration
        // on a fresh factorization instead; device bypass keeps that
        // cheap, since every nonlinear device is quiet after a
        // sub-tolerance update.
        if (converged) {
            if (refresh || !factor_stale(ctx, voltages, opts)) {
                // Stale-LU acceptance contract: an accepted point was
                // measured against a current operator — refreshed this
                // iteration or still inside the (dt-band, bypass_vtol)
                // envelope of the final iterate.  `factored_` may only be
                // down when this solve carried forcing stamps, whose
                // factors are deliberately never kept.
                MPSRAM_ASSERT(factored_ || !forces.empty(),
                              "reuse-tier solve accepted without a live "
                              "factorization",
                              MPSRAM_VAL(ctx.time), MPSRAM_VAL(iter));
                return iter;
            }
            confirm = true;
        }
    }

    // A failed step is about to be rejected and retried smaller — do not
    // let its factorization leak into the retry.
    factored_ = false;
    throw Convergence_error(
        "Newton did not converge in " + std::to_string(max_iter) +
        " iterations (t = " + std::to_string(ctx.time) + " s)");
}

void Mna_system::reset_reuse_state()
{
    factored_ = false;
    for (Device_cache& c : device_cache_) c.valid = false;
}

void Mna_system::accept(const Eval_context& ctx)
{
    for (const auto& dev : circuit_->devices()) dev->accept_step(ctx);
}

std::vector<double> Mna_system::breakpoints(double tstop) const
{
    std::vector<double> out;
    for (const auto& dev : circuit_->devices()) {
        dev->add_breakpoints(tstop, out);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end(),
                          [](double a, double b) {
                              return std::fabs(a - b) < 1e-18;
                          }),
              out.end());
    return out;
}

double Mna_system::branch_current(std::size_t i) const
{
    util::expects(i < branch_currents_.size(), "branch index out of range");
    return branch_currents_[i];
}

} // namespace mpsram::spice
