#include "spice/system.h"

#include <algorithm>
#include <cmath>

#include "spice/exceptions.h"
#include "util/contracts.h"

namespace mpsram::spice {

// --- stampers ----------------------------------------------------------------

/// Pattern pass: records which (eq, wrt) matrix positions devices touch.
class Mna_system::Pattern_stamper final : public Stamper {
public:
    Pattern_stamper(const std::vector<int>& solve_index,
                    std::vector<std::pair<int, int>>& entries)
        : solve_index_(&solve_index), entries_(&entries)
    {
    }

    void jacobian(Node eq, Node wrt, double) override
    {
        const int row = (*solve_index_)[static_cast<std::size_t>(eq)];
        const int col = (*solve_index_)[static_cast<std::size_t>(wrt)];
        if (row >= 0 && col >= 0) entries_->push_back({row, col});
    }

    void rhs(Node, double) override {}

private:
    const std::vector<int>* solve_index_;
    std::vector<std::pair<int, int>>* entries_;
};

/// Numeric pass: writes values into the matrix / RHS, routing known-voltage
/// columns to the RHS.
class Mna_system::Assembly_stamper final : public Stamper {
public:
    Assembly_stamper(const std::vector<int>& solve_index,
                     Sparse_matrix& m, std::vector<double>& rhs,
                     const std::vector<double>& voltages)
        : solve_index_(&solve_index),
          matrix_(&m),
          rhs_(&rhs),
          voltages_(&voltages)
    {
    }

    void jacobian(Node eq, Node wrt, double g) override
    {
        const int row = (*solve_index_)[static_cast<std::size_t>(eq)];
        if (row < 0) return;  // ground or driven equation: dropped
        const int col = (*solve_index_)[static_cast<std::size_t>(wrt)];
        if (col >= 0) {
            matrix_->add(row, col, g);
        } else {
            // Known voltage (ground contributes 0): move to the RHS.
            (*rhs_)[static_cast<std::size_t>(row)] -=
                g * (*voltages_)[static_cast<std::size_t>(wrt)];
        }
    }

    void rhs(Node eq, double value) override
    {
        const int row = (*solve_index_)[static_cast<std::size_t>(eq)];
        if (row >= 0) (*rhs_)[static_cast<std::size_t>(row)] += value;
    }

private:
    const std::vector<int>* solve_index_;
    Sparse_matrix* matrix_;
    std::vector<double>* rhs_;
    const std::vector<double>* voltages_;
};

// --- Mna_system ---------------------------------------------------------------

Mna_system::Mna_system(Circuit& circuit) : circuit_(&circuit)
{
    classify();
    build_pattern();
}

void Mna_system::classify()
{
    const std::size_t n_nodes = circuit_->node_count();
    solve_index_.assign(n_nodes, -2);  // -2: unclassified
    solve_index_[ground_node] = -1;

    // Driven nodes from grounded sources.
    for (const Voltage_source* src : circuit_->voltage_sources()) {
        if (!src->grounded()) continue;
        const Node pos = src->pos();
        if (pos == ground_node) {
            throw Netlist_error("voltage source " + src->name() +
                                " shorts ground to ground");
        }
        if (solve_index_[static_cast<std::size_t>(pos)] == -1) {
            throw Netlist_error("node " + circuit_->node_name(pos) +
                                " driven by multiple voltage sources");
        }
        solve_index_[static_cast<std::size_t>(pos)] = -1;
        driven_.push_back({pos, src});
    }

    // Remaining nodes become unknowns, in node order (which follows the
    // netlist build order and therefore the physical structure).
    for (std::size_t n = 0; n < n_nodes; ++n) {
        if (solve_index_[n] == -2) {
            solve_index_[n] = static_cast<int>(unknown_nodes_.size());
            unknown_nodes_.push_back(static_cast<Node>(n));
        }
    }

    // Floating sources get branch unknowns after the node unknowns.
    int next = static_cast<int>(unknown_nodes_.size());
    for (const Voltage_source* src : circuit_->voltage_sources()) {
        if (src->grounded()) continue;
        branches_.push_back({src, next++});
    }

    total_unknowns_ =
        unknown_nodes_.size() + branches_.size();
    util::ensures(total_unknowns_ > 0, "circuit has no unknowns to solve");

    nonlinear_ = std::any_of(
        circuit_->devices().begin(), circuit_->devices().end(),
        [](const auto& d) { return d->is_nonlinear(); });

    branch_currents_.assign(branches_.size(), 0.0);
}

void Mna_system::build_pattern()
{
    std::vector<std::pair<int, int>> entries;

    // Device entries: one structural pass with zeroed voltages.
    Pattern_stamper ps(solve_index_, entries);
    std::vector<double> zeros(circuit_->node_count(), 0.0);
    Eval_context ctx;
    ctx.mode = Analysis_mode::transient;
    ctx.method = Integration_method::backward_euler;
    ctx.time = 0.0;
    ctx.dt = 1.0;  // any positive value: pattern only
    ctx.voltages = zeros.data();
    for (const auto& dev : circuit_->devices()) dev->stamp(ps, ctx);

    // Branch rows/columns for floating sources.
    for (const Branch& b : branches_) {
        const int prow = solve_index_[static_cast<std::size_t>(b.source->pos())];
        const int nrow = solve_index_[static_cast<std::size_t>(b.source->neg())];
        if (prow >= 0) {
            entries.push_back({prow, b.index});
            entries.push_back({b.index, prow});
        }
        if (nrow >= 0) {
            entries.push_back({nrow, b.index});
            entries.push_back({b.index, nrow});
        }
    }

    matrix_ = std::make_unique<Sparse_matrix>(total_unknowns_, entries);
    lu_ = std::make_unique<Sparse_lu>(*matrix_);
    rhs_.assign(total_unknowns_, 0.0);
    solution_.assign(total_unknowns_, 0.0);
}

void Mna_system::apply_driven(double t, std::vector<double>& voltages) const
{
    util::expects(voltages.size() == circuit_->node_count(),
                  "voltage vector size mismatch");
    voltages[ground_node] = 0.0;
    for (const Driven& d : driven_) {
        voltages[static_cast<std::size_t>(d.node)] = d.source->value(t);
    }
}

int Mna_system::solve(const Eval_context& ctx_in,
                      std::vector<double>& voltages,
                      const Newton_options& opts,
                      std::span<const Forced_node> forces)
{
    util::expects(voltages.size() == circuit_->node_count(),
                  "voltage vector size mismatch");

    Eval_context ctx = ctx_in;
    apply_driven(ctx.time, voltages);

    const int max_iter = opts.max_iterations;

    for (int iter = 1; iter <= max_iter; ++iter) {
        matrix_->clear_values();
        std::fill(rhs_.begin(), rhs_.end(), 0.0);

        ctx.voltages = voltages.data();
        Assembly_stamper stamper(solve_index_, *matrix_, rhs_, voltages);
        for (const auto& dev : circuit_->devices()) {
            dev->stamp(stamper, ctx);
        }

        // gmin on every node diagonal.
        for (std::size_t u = 0; u < unknown_nodes_.size(); ++u) {
            matrix_->add(static_cast<int>(u), static_cast<int>(u), opts.gmin);
        }

        // Initial-condition forcing.
        for (const Forced_node& f : forces) {
            const int row = solve_index_[static_cast<std::size_t>(f.node)];
            if (row < 0) continue;
            matrix_->add(row, row, f.conductance);
            rhs_[static_cast<std::size_t>(row)] += f.conductance * f.voltage;
        }

        // Floating-source branch equations.
        for (const Branch& b : branches_) {
            const Node pos = b.source->pos();
            const Node neg = b.source->neg();
            const int prow = solve_index_[static_cast<std::size_t>(pos)];
            const int nrow = solve_index_[static_cast<std::size_t>(neg)];
            double v_rhs = b.source->value(ctx.time);
            // KCL columns: branch current flows into pos, out of neg.
            if (prow >= 0) {
                matrix_->add(prow, b.index, -1.0);
                matrix_->add(b.index, prow, 1.0);
            } else {
                v_rhs -= voltages[static_cast<std::size_t>(pos)];
            }
            if (nrow >= 0) {
                matrix_->add(nrow, b.index, 1.0);
                matrix_->add(b.index, nrow, -1.0);
            } else {
                v_rhs += voltages[static_cast<std::size_t>(neg)];
            }
            rhs_[static_cast<std::size_t>(b.index)] += v_rhs;
        }

        lu_->factor(*matrix_, opts.pivot_floor);
        solution_ = rhs_;
        lu_->solve(solution_);

        // Damped update + convergence check.
        bool converged = true;
        for (std::size_t u = 0; u < unknown_nodes_.size(); ++u) {
            const auto node = static_cast<std::size_t>(unknown_nodes_[u]);
            double dv = solution_[u] - voltages[node];
            if (dv > opts.vstep_limit) dv = opts.vstep_limit;
            if (dv < -opts.vstep_limit) dv = -opts.vstep_limit;
            voltages[node] += dv;
            const double tol =
                opts.abstol + opts.reltol * std::fabs(voltages[node]);
            if (std::fabs(dv) > tol) converged = false;
        }
        for (std::size_t b = 0; b < branches_.size(); ++b) {
            branch_currents_[b] =
                solution_[unknown_nodes_.size() + b];
        }

        if (converged && iter > 1) return iter;
    }

    throw Convergence_error(
        "Newton did not converge in " + std::to_string(max_iter) +
        " iterations (t = " + std::to_string(ctx.time) + " s)");
}

void Mna_system::accept(const Eval_context& ctx)
{
    for (const auto& dev : circuit_->devices()) dev->accept_step(ctx);
}

std::vector<double> Mna_system::breakpoints(double tstop) const
{
    std::vector<double> out;
    for (const auto& dev : circuit_->devices()) {
        dev->add_breakpoints(tstop, out);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end(),
                          [](double a, double b) {
                              return std::fabs(a - b) < 1e-18;
                          }),
              out.end());
    return out;
}

double Mna_system::branch_current(std::size_t i) const
{
    util::expects(i < branch_currents_.size(), "branch index out of range");
    return branch_currents_[i];
}

} // namespace mpsram::spice
