#include "spice/analysis.h"

#include <algorithm>
#include <cmath>

#include "spice/exceptions.h"
#include "util/contracts.h"

namespace mpsram::spice {

namespace {

Eval_context dc_context(const std::vector<double>& voltages)
{
    Eval_context ctx;
    ctx.mode = Analysis_mode::dc;
    ctx.time = 0.0;
    ctx.dt = 0.0;
    ctx.voltages = voltages.data();
    return ctx;
}

/// One DC Newton solve with optional forces, trying progressively larger
/// gmin values on failure and walking gmin back down (gmin stepping).
int dc_solve(Mna_system& system, std::vector<double>& voltages,
             const Dc_options& opts, std::span<const Forced_node> forces)
{
    try {
        return system.solve(dc_context(voltages), voltages, opts.newton,
                            forces);
    } catch (const Convergence_error&) {
        // fall through to gmin stepping
    }

    const double gmin_start = 1e-2;
    Newton_options stepped = opts.newton;
    int iters = 0;
    for (double g = gmin_start; g >= opts.newton.gmin; g *= 1e-2) {
        stepped.gmin = g;
        iters = system.solve(dc_context(voltages), voltages, stepped, forces);
    }
    stepped.gmin = opts.newton.gmin;
    return iters + system.solve(dc_context(voltages), voltages, stepped,
                                forces);
}

/// Full DC flow on an already-compiled system, writing into `voltages`
/// (resized and re-initialized here).  Returns the free-solve iterations.
int dc_into(Mna_system& system, std::size_t node_count,
            const Dc_options& opts, std::vector<double>& voltages)
{
    voltages.assign(node_count, 0.0);
    system.apply_driven(0.0, voltages);
    for (const auto& [node, v] : opts.initial_guesses) {
        voltages[static_cast<std::size_t>(node)] = v;
    }
    for (const Forced_node& f : opts.forces) {
        voltages[static_cast<std::size_t>(f.node)] = f.voltage;
    }

    if (!opts.forces.empty()) {
        // Phase 1: pinned solve selects the basin of attraction.
        dc_solve(system, voltages, opts, opts.forces);
    }
    // Phase 2 (or only phase): free solve.
    const int iterations = dc_solve(system, voltages, opts, {});

    // Let dynamic devices latch their DC state.
    system.accept(dc_context(voltages));
    return iterations;
}

} // namespace

Dc_result dc_operating_point(Circuit& circuit, const Dc_options& opts,
                             Transient_workspace& workspace)
{
    Mna_system& system = workspace.bind(circuit);
    system.reset_reuse_state();

    Dc_result result;
    result.iterations =
        dc_into(system, circuit.node_count(), opts, result.voltages);
    return result;
}

Dc_result dc_operating_point(Circuit& circuit, const Dc_options& opts)
{
    Transient_workspace workspace;
    return dc_operating_point(circuit, opts, workspace);
}

// --- Transient_result ---------------------------------------------------------

Transient_result::Transient_result(std::vector<Node> probes,
                                   std::vector<std::string> names)
    : probes_(std::move(probes)), names_(std::move(names))
{
    util::expects(probes_.size() == names_.size(),
                  "probe/name count mismatch");
    samples_.resize(probes_.size());
}

void Transient_result::append(double t, const std::vector<double>& voltages)
{
    util::expects(time_.empty() || t > time_.back(),
                  "transient samples must advance in time");
    time_.push_back(t);
    for (std::size_t i = 0; i < probes_.size(); ++i) {
        samples_[i].push_back(
            voltages[static_cast<std::size_t>(probes_[i])]);
    }
}

std::size_t Transient_result::probe_index(const std::string& name) const
{
    for (std::size_t i = 0; i < names_.size(); ++i) {
        if (names_[i] == name) return i;
    }
    throw Netlist_error("no probe named " + name);
}

util::Piecewise_linear Transient_result::waveform(
    const std::string& name) const
{
    return util::Piecewise_linear(time_, samples_[probe_index(name)]);
}

util::Piecewise_linear Transient_result::differential(
    const std::string& a, const std::string& b) const
{
    const auto& sa = samples_[probe_index(a)];
    const auto& sb = samples_[probe_index(b)];
    std::vector<double> diff(sa.size());
    for (std::size_t i = 0; i < sa.size(); ++i) {
        diff[i] = std::fabs(sa[i] - sb[i]);
    }
    return util::Piecewise_linear(time_, std::move(diff));
}

double Transient_result::final_value(const std::string& name) const
{
    const auto& s = samples_[probe_index(name)];
    util::expects(!s.empty(), "no samples recorded");
    return s.back();
}

// --- run_transient -------------------------------------------------------------

Transient_result run_transient(Circuit& circuit,
                               const std::vector<Node>& probes,
                               const Transient_options& opts,
                               Transient_workspace& workspace)
{
    util::expects(opts.tstop > 0.0, "tstop must be positive");
    util::expects(opts.nominal_steps > 0, "nominal_steps must be positive");

    Mna_system& system = workspace.bind(circuit);
    system.reset_reuse_state();
    const Solver_counters counters_before = system.counters();

    // Operating point (also latches capacitor DC state).  Shares the
    // compiled system with the time loop below.
    std::vector<double>& voltages = workspace.voltages();
    dc_into(system, circuit.node_count(), opts.dc, voltages);

    std::vector<std::string> names;
    names.reserve(probes.size());
    for (Node p : probes) names.push_back(circuit.node_name(p));
    Transient_result result(probes, std::move(names));
    result.append(0.0, voltages);

    std::vector<double> breakpoints = system.breakpoints(opts.tstop);
    breakpoints.push_back(opts.tstop);
    std::size_t next_bp = 0;

    const double dt_nominal =
        opts.tstop / static_cast<double>(opts.nominal_steps);
    const double dt_max = dt_nominal * opts.lte_max_growth;
    const double dt_min = dt_nominal * opts.lte_min_shrink;

    // Slope history for the LTE predictor.
    std::vector<double>& prev_voltages = workspace.prev_voltages();
    prev_voltages = voltages;
    std::vector<double>& attempt = workspace.attempt();
    double prev_dt = 0.0;

    double t = 0.0;
    double dt_next = dt_nominal;
    Step_stats stats;
    bool after_breakpoint = true;  // t=0 counts as a corner
    while (t < opts.tstop - 1e-18) {
        // Advance the breakpoint cursor past times we already passed.
        while (next_bp < breakpoints.size() &&
               breakpoints[next_bp] <= t + 1e-18) {
            ++next_bp;
        }
        double dt_wish = opts.adaptive ? dt_next : dt_nominal;
        if (opts.adaptive && after_breakpoint) {
            // Restart small after every waveform corner: the first step has
            // no slope history for the LTE predictor, and corners are where
            // stiff hand-offs (e.g. a pass gate snapping on) live.
            dt_wish = std::max(dt_nominal * 1e-2, dt_min);
        }
        double t_target = std::min(t + dt_wish, opts.tstop);
        if (next_bp < breakpoints.size()) {
            t_target = std::min(t_target, breakpoints[next_bp]);
        }

        Eval_context ctx;
        ctx.mode = Analysis_mode::transient;
        ctx.method = (after_breakpoint && opts.be_after_breakpoint)
                         ? Integration_method::backward_euler
                         : opts.method;

        // Try the step; shrink on Newton failure or excessive LTE.  The two
        // causes are tracked separately: only a Newton failure marks the
        // step as a waveform corner (below), because an LTE rejection just
        // means the step was too ambitious for a perfectly smooth solution.
        double dt = t_target - t;
        int halvings = 0;
        int newton_failures = 0;
        double lte = 0.0;
        for (;;) {
            attempt = voltages;
            ctx.time = t + dt;
            ctx.dt = dt;
            bool converged = true;
            try {
                system.solve(ctx, attempt, opts.newton);
            } catch (const Convergence_error&) {
                converged = false;
                ++newton_failures;
                ++stats.newton_rejected;
            }

            if (converged && opts.adaptive && prev_dt > 0.0 &&
                !after_breakpoint) {
                // Normalized predictor error: forward-Euler extrapolation
                // of the last accepted slope vs the implicit solution.
                lte = 0.0;
                for (std::size_t i = 0; i < attempt.size(); ++i) {
                    const double slope =
                        (voltages[i] - prev_voltages[i]) / prev_dt;
                    const double predicted = voltages[i] + slope * dt;
                    const double tol = opts.lte_abs +
                                       opts.lte_rel * std::fabs(attempt[i]);
                    lte = std::max(lte,
                                   std::fabs(attempt[i] - predicted) / tol);
                }
                if (lte > 1.0 && dt > dt_min) {
                    converged = false;  // reject: retry smaller
                    ++stats.lte_rejected;
                }
            }

            if (converged) break;
            if (++halvings > opts.max_step_halvings) {
                throw Convergence_error(
                    "transient step kept failing at t = " +
                    std::to_string(t) + " s");
            }
            dt *= 0.5;
        }

        prev_voltages = voltages;
        prev_dt = dt;
        // Swap instead of move: `attempt` keeps a full-sized buffer for the
        // next step's copy-assign, and the workspace vectors stay usable
        // across runs.
        std::swap(voltages, attempt);
        ctx.voltages = voltages.data();
        system.accept(ctx);
        t += dt;
        ++stats.accepted;
        result.append(t, voltages);

        if (opts.adaptive) {
            // Grow toward the error target (cube-root law for a
            // second-order method), clamped to the configured band.
            double factor = 2.0;
            if (lte > 0.0) {
                factor = 0.9 * std::pow(1.0 / lte, 1.0 / 3.0);
                factor = std::clamp(factor, 0.3, 2.0);
            }
            dt_next = std::clamp(dt * factor, dt_min, dt_max);
        }

        // Only true waveform corners restart the controller: source
        // breakpoints and Newton failures (a stiff hand-off the
        // linearization could not follow).  An LTE rejection must NOT land
        // here — it is ordinary error control, and flagging it as a corner
        // would force a backward-Euler step, a tiny restart step, and a
        // predictor-history reset after every rejected step.
        const bool hit_breakpoint =
            next_bp < breakpoints.size() &&
            std::fabs(t - breakpoints[next_bp]) < 1e-18;
        after_breakpoint = hit_breakpoint || newton_failures > 0;
    }

    const Solver_counters& counters_after = system.counters();
    stats.newton_iterations =
        counters_after.newton_iterations - counters_before.newton_iterations;
    stats.lu_factorizations =
        counters_after.lu_factorizations - counters_before.lu_factorizations;
    stats.bypass_hits =
        counters_after.bypass_hits - counters_before.bypass_hits;

    result.set_steps(stats);
    return result;
}

Transient_result run_transient(Circuit& circuit,
                               const std::vector<Node>& probes,
                               const Transient_options& opts)
{
    Transient_workspace workspace;
    return run_transient(circuit, probes, opts, workspace);
}

} // namespace mpsram::spice
