#include "spice/sparse.h"

#include <algorithm>
#include <cmath>

#include "spice/exceptions.h"
#include "util/check.h"
#include "util/contracts.h"

namespace mpsram::spice {

// --- Sparse_matrix -----------------------------------------------------------

Sparse_matrix::Sparse_matrix(std::size_t n,
                             const std::vector<std::pair<int, int>>& entries)
    : n_(n)
{
    util::expects(n > 0, "matrix must be non-empty");

    // Gather per-row column sets (including the full diagonal).
    std::vector<std::vector<int>> row_cols(n);
    for (std::size_t i = 0; i < n; ++i) {
        row_cols[i].push_back(static_cast<int>(i));
    }
    for (const auto& [r, c] : entries) {
        util::expects(r >= 0 && static_cast<std::size_t>(r) < n &&
                          c >= 0 && static_cast<std::size_t>(c) < n,
                      "pattern entry out of range");
        row_cols[static_cast<std::size_t>(r)].push_back(c);
    }

    row_ptr_.assign(n + 1, 0);
    for (std::size_t i = 0; i < n; ++i) {
        auto& rc = row_cols[i];
        std::sort(rc.begin(), rc.end());
        rc.erase(std::unique(rc.begin(), rc.end()), rc.end());
        row_ptr_[i + 1] = row_ptr_[i] + static_cast<int>(rc.size());
    }
    cols_.reserve(static_cast<std::size_t>(row_ptr_[n]));
    for (std::size_t i = 0; i < n; ++i) {
        cols_.insert(cols_.end(), row_cols[i].begin(), row_cols[i].end());
    }
    values_.assign(cols_.size(), 0.0);
}

void Sparse_matrix::clear_values()
{
    std::fill(values_.begin(), values_.end(), 0.0);
}

int Sparse_matrix::slot(int row, int col) const
{
    const auto lo = cols_.begin() + row_ptr_[static_cast<std::size_t>(row)];
    const auto hi =
        cols_.begin() + row_ptr_[static_cast<std::size_t>(row) + 1];
    const auto it = std::lower_bound(lo, hi, col);
    if (it == hi || *it != col) return -1;
    return static_cast<int>(it - cols_.begin());
}

void Sparse_matrix::add(int row, int col, double v)
{
    const int s = slot(row, col);
    util::expects(s >= 0, "stamp outside the assembled pattern");
    values_[static_cast<std::size_t>(s)] += v;
}

void Sparse_matrix::multiply(const std::vector<double>& x,
                             std::vector<double>& y) const
{
    util::expects(x.size() == n_, "multiply operand size mismatch");
    y.assign(n_, 0.0);
    for (std::size_t i = 0; i < n_; ++i) {
        double acc = 0.0;
        for (int s = row_ptr_[i]; s < row_ptr_[i + 1]; ++s) {
            acc += values_[static_cast<std::size_t>(s)] *
                   x[static_cast<std::size_t>(cols_[static_cast<std::size_t>(s)])];
        }
        y[i] = acc;
    }
}

std::vector<double> Sparse_matrix::dense_row(int row) const
{
    std::vector<double> out(n_, 0.0);
    for (int s = row_ptr_[static_cast<std::size_t>(row)];
         s < row_ptr_[static_cast<std::size_t>(row) + 1]; ++s) {
        out[static_cast<std::size_t>(cols_[static_cast<std::size_t>(s)])] =
            values_[static_cast<std::size_t>(s)];
    }
    return out;
}

// --- Sparse_lu ---------------------------------------------------------------

Sparse_lu::Sparse_lu(const Sparse_matrix& pattern) : n_(pattern.size())
{
    // Symbolic factorization by row merging: the filled pattern of row i is
    // its original pattern united with the U-patterns of every L column it
    // touches, processed in ascending column order.
    std::vector<std::vector<int>> u_rows(n_);  // cols >= row, sorted
    std::vector<std::vector<int>> l_rows(n_);  // cols < row, sorted

    std::vector<char> in_row(n_, 0);
    std::vector<int> work;

    const auto& rp = pattern.row_ptr();
    const auto& pc = pattern.cols();

    for (std::size_t i = 0; i < n_; ++i) {
        work.clear();
        for (int s = rp[i]; s < rp[i + 1]; ++s) {
            const int c = pc[static_cast<std::size_t>(s)];
            if (!in_row[static_cast<std::size_t>(c)]) {
                in_row[static_cast<std::size_t>(c)] = 1;
                work.push_back(c);
            }
        }
        std::sort(work.begin(), work.end());

        // Process L columns in ascending order, merging fill as we go.
        // `work` stays sorted; we walk it with an index since it grows.
        for (std::size_t wi = 0; wi < work.size(); ++wi) {
            const int k = work[wi];
            if (k >= static_cast<int>(i)) break;
            bool added = false;
            for (int c : u_rows[static_cast<std::size_t>(k)]) {
                if (c <= k) continue;
                if (!in_row[static_cast<std::size_t>(c)]) {
                    in_row[static_cast<std::size_t>(c)] = 1;
                    work.push_back(c);
                    added = true;
                }
            }
            if (added) {
                std::sort(work.begin() + static_cast<std::ptrdiff_t>(wi) + 1,
                          work.end());
            }
        }

        for (int c : work) {
            in_row[static_cast<std::size_t>(c)] = 0;
            if (c < static_cast<int>(i)) {
                l_rows[i].push_back(c);
            } else {
                u_rows[i].push_back(c);
            }
        }
        util::invariant(!u_rows[i].empty() &&
                            u_rows[i].front() == static_cast<int>(i),
                        "diagonal entry missing from filled pattern");
    }

    // Flatten.
    l_row_ptr_.assign(n_ + 1, 0);
    u_row_ptr_.assign(n_ + 1, 0);
    for (std::size_t i = 0; i < n_; ++i) {
        l_row_ptr_[i + 1] = l_row_ptr_[i] + static_cast<int>(l_rows[i].size());
        u_row_ptr_[i + 1] = u_row_ptr_[i] + static_cast<int>(u_rows[i].size());
    }
    l_cols_flat_.reserve(static_cast<std::size_t>(l_row_ptr_[n_]));
    u_cols_flat_.reserve(static_cast<std::size_t>(u_row_ptr_[n_]));
    for (std::size_t i = 0; i < n_; ++i) {
        l_cols_flat_.insert(l_cols_flat_.end(), l_rows[i].begin(),
                            l_rows[i].end());
        u_cols_flat_.insert(u_cols_flat_.end(), u_rows[i].begin(),
                            u_rows[i].end());
    }
    l_values_.assign(l_cols_flat_.size(), 0.0);
    u_values_.assign(u_cols_flat_.size(), 0.0);
    diag_inv_.assign(n_, 0.0);
}

void Sparse_lu::factor(const Sparse_matrix& a, double pivot_floor)
{
    util::expects(a.size() == n_, "matrix size mismatch");

    std::vector<double> work(n_, 0.0);

    const auto& rp = a.row_ptr();
    const auto& pc = a.cols();
    const auto& pv = a.values();

    for (std::size_t i = 0; i < n_; ++i) {
        // Scatter row i of A into the dense workspace.
        for (int s = rp[i]; s < rp[i + 1]; ++s) {
            work[static_cast<std::size_t>(pc[static_cast<std::size_t>(s)])] =
                pv[static_cast<std::size_t>(s)];
        }

        // Eliminate with previous rows along the filled L pattern
        // (ascending column order by construction).
        for (int ls = l_row_ptr_[i]; ls < l_row_ptr_[i + 1]; ++ls) {
            const int k = l_cols_flat_[static_cast<std::size_t>(ls)];
            const double f =
                work[static_cast<std::size_t>(k)] *
                diag_inv_[static_cast<std::size_t>(k)];
            l_values_[static_cast<std::size_t>(ls)] = f;
            work[static_cast<std::size_t>(k)] = 0.0;
            // Subtract f * U_row(k) (skipping the diagonal, handled above).
            const std::size_t ku = static_cast<std::size_t>(k);
            for (int us = u_row_ptr_[ku] + 1; us < u_row_ptr_[ku + 1]; ++us) {
                work[static_cast<std::size_t>(
                    u_cols_flat_[static_cast<std::size_t>(us)])] -=
                    f * u_values_[static_cast<std::size_t>(us)];
            }
        }

        // Gather the U part.
        for (int us = u_row_ptr_[i]; us < u_row_ptr_[i + 1]; ++us) {
            const int c = u_cols_flat_[static_cast<std::size_t>(us)];
            u_values_[static_cast<std::size_t>(us)] =
                work[static_cast<std::size_t>(c)];
            work[static_cast<std::size_t>(c)] = 0.0;
        }

        const double piv =
            u_values_[static_cast<std::size_t>(u_row_ptr_[i])];
        // NaN slips past the floor test below (every NaN comparison is
        // false) and would poison the whole back-substitution.
        MPSRAM_ASSERT(std::isfinite(piv), "non-finite LU pivot",
                      MPSRAM_VAL(piv), MPSRAM_VAL(i));
        if (std::fabs(piv) < pivot_floor) {
            throw Singular_matrix_error(
                "near-zero pivot at row " + std::to_string(i));
        }
        diag_inv_[i] = 1.0 / piv;
    }
}

void Sparse_lu::solve(std::vector<double>& b) const
{
    util::expects(b.size() == n_, "rhs size mismatch");

    // Forward: L y = b (unit diagonal).
    for (std::size_t i = 0; i < n_; ++i) {
        double acc = b[i];
        for (int ls = l_row_ptr_[i]; ls < l_row_ptr_[i + 1]; ++ls) {
            acc -= l_values_[static_cast<std::size_t>(ls)] *
                   b[static_cast<std::size_t>(
                       l_cols_flat_[static_cast<std::size_t>(ls)])];
        }
        b[i] = acc;
    }

    // Backward: U x = y.
    for (std::size_t ii = n_; ii-- > 0;) {
        double acc = b[ii];
        for (int us = u_row_ptr_[ii] + 1; us < u_row_ptr_[ii + 1]; ++us) {
            acc -= u_values_[static_cast<std::size_t>(us)] *
                   b[static_cast<std::size_t>(
                       u_cols_flat_[static_cast<std::size_t>(us)])];
        }
        b[ii] = acc * diag_inv_[ii];
    }
}

// --- Ilu0 --------------------------------------------------------------------

Ilu0::Ilu0(const Sparse_matrix& pattern)
    : n_(pattern.size()),
      row_ptr_(pattern.row_ptr()),
      cols_(pattern.cols()),
      values_(pattern.nonzeros(), 0.0),
      diag_inv_(pattern.size(), 0.0)
{
    diag_slot_.assign(n_, -1);
    for (std::size_t i = 0; i < n_; ++i) {
        const int s = pattern.slot(static_cast<int>(i), static_cast<int>(i));
        util::invariant(s >= 0, "pattern misses a diagonal entry");
        diag_slot_[i] = s;
    }
}

void Ilu0::factor(const Sparse_matrix& a, double pivot_floor)
{
    util::expects(a.size() == n_, "matrix size mismatch");
    values_ = a.values();

    // Slot map of the row being factored: col -> slot, -1 outside the
    // pattern (the ILU(0) drop rule).
    std::vector<int> slot_of(n_, -1);

    for (std::size_t i = 0; i < n_; ++i) {
        for (int s = row_ptr_[i]; s < row_ptr_[i + 1]; ++s) {
            slot_of[static_cast<std::size_t>(cols_[static_cast<std::size_t>(s)])] = s;
        }

        // Columns are sorted, so L entries (col < i) come first and are
        // processed in ascending order as IKJ elimination requires.
        for (int s = row_ptr_[i]; s < row_ptr_[i + 1]; ++s) {
            const int k = cols_[static_cast<std::size_t>(s)];
            if (k >= static_cast<int>(i)) break;
            const double f = values_[static_cast<std::size_t>(s)] *
                             diag_inv_[static_cast<std::size_t>(k)];
            values_[static_cast<std::size_t>(s)] = f;
            const std::size_t ku = static_cast<std::size_t>(k);
            for (int us = diag_slot_[ku] + 1; us < row_ptr_[ku + 1]; ++us) {
                const int target =
                    slot_of[static_cast<std::size_t>(cols_[static_cast<std::size_t>(us)])];
                if (target >= 0) {
                    values_[static_cast<std::size_t>(target)] -=
                        f * values_[static_cast<std::size_t>(us)];
                }
            }
        }

        const double piv = values_[static_cast<std::size_t>(diag_slot_[i])];
        MPSRAM_ASSERT(std::isfinite(piv), "non-finite ILU(0) pivot",
                      MPSRAM_VAL(piv), MPSRAM_VAL(i));
        if (std::fabs(piv) < pivot_floor) {
            throw Singular_matrix_error("near-zero ILU(0) pivot at row " +
                                        std::to_string(i));
        }
        diag_inv_[i] = 1.0 / piv;

        for (int s = row_ptr_[i]; s < row_ptr_[i + 1]; ++s) {
            slot_of[static_cast<std::size_t>(cols_[static_cast<std::size_t>(s)])] = -1;
        }
    }
}

void Ilu0::apply(std::vector<double>& x) const
{
    util::expects(x.size() == n_, "rhs size mismatch");

    // Forward: L y = x (unit diagonal, entries with col < row).
    for (std::size_t i = 0; i < n_; ++i) {
        double acc = x[i];
        for (int s = row_ptr_[i]; s < row_ptr_[i + 1]; ++s) {
            const int c = cols_[static_cast<std::size_t>(s)];
            if (c >= static_cast<int>(i)) break;
            acc -= values_[static_cast<std::size_t>(s)] *
                   x[static_cast<std::size_t>(c)];
        }
        x[i] = acc;
    }

    // Backward: U x = y (entries with col > row, then the diagonal).
    for (std::size_t ii = n_; ii-- > 0;) {
        double acc = x[ii];
        for (int s = diag_slot_[ii] + 1; s < row_ptr_[ii + 1]; ++s) {
            acc -= values_[static_cast<std::size_t>(s)] *
                   x[static_cast<std::size_t>(cols_[static_cast<std::size_t>(s)])];
        }
        x[ii] = acc * diag_inv_[ii];
    }
}

// --- bicgstab ----------------------------------------------------------------

namespace {

double dot(const std::vector<double>& a, const std::vector<double>& b)
{
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
    return acc;
}

double norm2(const std::vector<double>& a) { return std::sqrt(dot(a, a)); }

} // namespace

int bicgstab(const Sparse_matrix& a, const Ilu0& m,
             const std::vector<double>& b, std::vector<double>& x,
             double rel_tol, int max_iters, Bicgstab_scratch& w)
{
    const std::size_t n = a.size();
    util::expects(b.size() == n && m.size() == n,
                  "bicgstab operand size mismatch");

    x.assign(n, 0.0);
    const double bnorm = norm2(b);
    if (bnorm == 0.0) return 0;  // zero RHS: zero solution, exactly
    const double target = rel_tol * bnorm;

    w.r = b;  // r = b - A*0
    w.r0 = w.r;
    w.p.assign(n, 0.0);
    w.v.assign(n, 0.0);

    double rho = 1.0, alpha = 1.0, omega = 1.0;
    // Breakdown guard scaled to the problem: inner products below this
    // are noise and the recurrence coefficients would be garbage.
    const double tiny = 1e-300;

    for (int k = 1; k <= max_iters; ++k) {
        const double rho_next = dot(w.r0, w.r);
        // A non-finite recurrence coefficient means the residual is
        // already poisoned; the breakdown test below would miss NaN
        // (fabs(NaN) < tiny is false) and keep iterating on garbage.
        MPSRAM_ASSERT(std::isfinite(rho_next),
                      "non-finite BiCGSTAB residual correlation",
                      MPSRAM_VAL(rho_next), MPSRAM_VAL(k));
        if (std::fabs(rho_next) < tiny) return -1;
        const double beta = (rho_next / rho) * (alpha / omega);
        for (std::size_t i = 0; i < n; ++i) {
            w.p[i] = w.r[i] + beta * (w.p[i] - omega * w.v[i]);
        }
        w.phat = w.p;
        m.apply(w.phat);
        a.multiply(w.phat, w.v);
        const double r0v = dot(w.r0, w.v);
        if (std::fabs(r0v) < tiny) return -1;
        alpha = rho_next / r0v;

        w.s.resize(n);
        for (std::size_t i = 0; i < n; ++i) w.s[i] = w.r[i] - alpha * w.v[i];
        if (norm2(w.s) <= target) {
            for (std::size_t i = 0; i < n; ++i) x[i] += alpha * w.phat[i];
            return k;
        }

        w.shat = w.s;
        m.apply(w.shat);
        a.multiply(w.shat, w.t);
        const double tt = dot(w.t, w.t);
        if (tt < tiny) return -1;
        omega = dot(w.t, w.s) / tt;

        for (std::size_t i = 0; i < n; ++i) {
            x[i] += alpha * w.phat[i] + omega * w.shat[i];
        }
        w.r.resize(n);
        for (std::size_t i = 0; i < n; ++i) w.r[i] = w.s[i] - omega * w.t[i];
        if (norm2(w.r) <= target) return k;
        if (std::fabs(omega) < tiny) return -1;
        rho = rho_next;
    }
    return -1;
}

} // namespace mpsram::spice
