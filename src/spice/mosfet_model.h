// EKV-style compact MOSFET model.
//
// A smooth single-expression charge-sheet model covering weak to strong
// inversion, adequate for the N10-class read-path transistors of the study
// (drive strength, pass-gate conduction, subthreshold leakage).  The model
// is source/drain-symmetric: forward and reverse normalized currents are
// evaluated against the bulk-referenced pinch-off voltage, so vds < 0 needs
// no terminal swapping.  Channel-length modulation uses a smooth |vds|.
//
// Terminal capacitances are deliberately NOT part of this device: the SRAM
// netlist builder instantiates explicit linear capacitors (gate, junction)
// so each energy-storage element is visible and testable on its own.
#ifndef MPSRAM_SPICE_MOSFET_MODEL_H
#define MPSRAM_SPICE_MOSFET_MODEL_H

namespace mpsram::spice {

enum class Mosfet_type { nmos, pmos };

struct Mosfet_params {
    Mosfet_type type = Mosfet_type::nmos;
    /// Threshold voltage magnitude [V].
    double vth = 0.25;
    /// Subthreshold slope factor (n * 60 mV/dec at room temperature).
    double n = 1.3;
    /// Transconductance factor [A/V^2] of a unit device.
    double beta = 5.0e-4;
    /// Channel-length modulation [1/V] (applied with a smooth |vds|).
    double lambda = 0.05;
    /// Thermal voltage kT/q [V].
    double v_t = 0.02585;
};

/// Drain current and its derivatives at a bias point (NMOS convention:
/// ids flows drain -> source for vgs > vth, vds > 0).
struct Mosfet_eval {
    double ids = 0.0;  ///< [A]
    double gm = 0.0;   ///< d ids / d vg  [S]
    double gds = 0.0;  ///< d ids / d vd  [S]
    double gms = 0.0;  ///< d ids / d vs  [S]
};

/// Evaluate the model at absolute terminal voltages (bulk at ground for
/// NMOS, at the most positive rail for PMOS — the model is referenced
/// internally, callers pass plain node voltages).  `m` is the device
/// multiplicity (parallel fins/fingers).
Mosfet_eval evaluate_mosfet(const Mosfet_params& p, double vd, double vg,
                            double vs, double m = 1.0);

/// Saturation drive current at vgs = vds = vdd (unit multiplicity).
double drive_current(const Mosfet_params& p, double vdd);

/// Calibrate `beta` so drive_current(p, vdd) == ion.  Returns the adjusted
/// parameter set.
Mosfet_params calibrate_beta(Mosfet_params p, double vdd, double ion);

} // namespace mpsram::spice

#endif // MPSRAM_SPICE_MOSFET_MODEL_H
