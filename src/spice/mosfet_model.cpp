#include "spice/mosfet_model.h"

#include <cmath>

#include "util/contracts.h"
#include "util/numeric.h"

namespace mpsram::spice {

namespace {

/// softplus(u) = ln(1 + e^u) with overflow guards.
double softplus(double u)
{
    if (u > 40.0) return u;
    if (u < -40.0) return std::exp(u);
    return std::log1p(std::exp(u));
}

/// d softplus / du = logistic(u).
double logistic(double u)
{
    if (u > 40.0) return 1.0;
    if (u < -40.0) return std::exp(u);
    return 1.0 / (1.0 + std::exp(-u));
}

struct Half_current {
    double i = 0.0;    ///< normalized current component
    double di_dv = 0.0; ///< derivative w.r.t. the channel-end voltage
    double di_dvp = 0.0; ///< derivative w.r.t. the pinch-off voltage
};

/// EKV normalized current for one channel end:
///   i = [softplus((vp - v_end) / (2 vt))]^2
Half_current half_current(double vp, double v_end, double v_t)
{
    const double denom = 2.0 * v_t;
    const double u = (vp - v_end) / denom;
    const double l = softplus(u);
    const double sig = logistic(u);
    Half_current h;
    h.i = l * l;
    h.di_dvp = 2.0 * l * sig / denom;
    h.di_dv = -h.di_dvp;
    return h;
}

} // namespace

Mosfet_eval evaluate_mosfet(const Mosfet_params& p, double vd, double vg,
                            double vs, double m)
{
    util::expects(m > 0.0, "device multiplicity must be positive");
    util::expects(p.n >= 1.0, "slope factor n must be >= 1");
    util::expects(p.v_t > 0.0, "thermal voltage must be positive");

    // PMOS: mirror all voltages, evaluate as NMOS, mirror the current.
    // (For a PMOS the source sits at the high rail; mirroring maps it onto
    // the NMOS picture exactly.)
    if (p.type == Mosfet_type::pmos) {
        Mosfet_params np = p;
        np.type = Mosfet_type::nmos;
        const Mosfet_eval e = evaluate_mosfet(np, -vd, -vg, -vs, m);
        // i' = -i(-v): first derivatives are unchanged in sign.
        return Mosfet_eval{-e.ids, e.gm, e.gds, e.gms};
    }

    const double is = 2.0 * p.n * p.beta * p.v_t * p.v_t * m;
    const double vp = (vg - p.vth) / p.n;

    const Half_current fwd = half_current(vp, vs, p.v_t);
    const Half_current rev = half_current(vp, vd, p.v_t);

    const double i_norm = fwd.i - rev.i;

    // Smooth channel-length modulation: 1 + lambda * smooth|vd - vs|.
    constexpr double eps = 1e-3;  // 1 mV smoothing
    const double vds = vd - vs;
    const double sabs = std::sqrt(vds * vds + eps * eps);
    const double clm = 1.0 + p.lambda * sabs;
    const double dclm_dvds = p.lambda * vds / sabs;

    Mosfet_eval e;
    e.ids = is * i_norm * clm;

    const double di_dvg = (fwd.di_dvp - rev.di_dvp) / p.n;
    e.gm = is * di_dvg * clm;

    // half_current's di_dv is d i / d v_end.  i_norm = fwd.i - rev.i, so
    // d i_norm / d vd = -rev.di_dv and d i_norm / d vs = fwd.di_dv.
    const double dnorm_dvd = -rev.di_dv;
    const double dnorm_dvs = fwd.di_dv;
    e.gds = is * (dnorm_dvd * clm + i_norm * dclm_dvds);
    e.gms = is * (dnorm_dvs * clm - i_norm * dclm_dvds);

    return e;
}

double drive_current(const Mosfet_params& p, double vdd)
{
    util::expects(vdd > 0.0, "vdd must be positive");
    if (p.type == Mosfet_type::pmos) {
        return -evaluate_mosfet(p, 0.0, 0.0, vdd).ids;
    }
    return evaluate_mosfet(p, vdd, vdd, 0.0).ids;
}

Mosfet_params calibrate_beta(Mosfet_params p, double vdd, double ion)
{
    util::expects(ion > 0.0, "target drive current must be positive");
    // drive_current is linear in beta, so one division calibrates exactly.
    p.beta = 1.0;
    const double base = drive_current(p, vdd);
    util::invariant(base > 0.0, "unit drive current must be positive");
    p.beta = ion / base;
    util::ensures(util::rel_diff(drive_current(p, vdd), ion) < 1e-9,
                  "beta calibration failed to hit the drive target");
    return p;
}

} // namespace mpsram::spice
