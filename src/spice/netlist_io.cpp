#include "spice/netlist_io.h"

#include <ostream>
#include <sstream>

namespace mpsram::spice {

namespace {

void write_waveform(std::ostream& out, const Waveform& w)
{
    if (w.is_dc()) {
        out << "DC " << w.corner_values().front();
        return;
    }
    out << "PWL(";
    const auto& ts = w.corner_times();
    const auto& vs = w.corner_values();
    for (std::size_t i = 0; i < ts.size(); ++i) {
        if (i > 0) out << ' ';
        out << ts[i] << ' ' << vs[i];
    }
    out << ')';
}

} // namespace

void write_spice(const Circuit& circuit, std::ostream& out,
                 const std::string& title)
{
    out << "* " << title << '\n';
    out << "* nodes: " << circuit.node_count()
        << ", devices: " << circuit.device_count() << '\n';

    const auto node = [&](Node n) -> const std::string& {
        return circuit.node_name(n);
    };

    for (const auto& dev : circuit.devices()) {
        if (const auto* r = dynamic_cast<const Resistor*>(dev.get())) {
            out << r->name() << ' ' << node(r->nodes()[0]) << ' '
                << node(r->nodes()[1]) << ' ' << r->resistance() << '\n';
        } else if (const auto* c =
                       dynamic_cast<const Capacitor*>(dev.get())) {
            out << c->name() << ' ' << node(c->nodes()[0]) << ' '
                << node(c->nodes()[1]) << ' ' << c->capacitance() << '\n';
        } else if (const auto* v =
                       dynamic_cast<const Voltage_source*>(dev.get())) {
            out << v->name() << ' ' << node(v->pos()) << ' '
                << node(v->neg()) << ' ';
            write_waveform(out, v->wave());
            out << '\n';
        } else if (const auto* i =
                       dynamic_cast<const Current_source*>(dev.get())) {
            out << i->name() << ' ' << node(i->nodes()[0]) << ' '
                << node(i->nodes()[1]) << ' ';
            write_waveform(out, i->wave());
            out << '\n';
        } else if (const auto* m = dynamic_cast<const Mosfet*>(dev.get())) {
            const char* model =
                m->params().type == Mosfet_type::nmos ? "nmos_ekv"
                                                      : "pmos_ekv";
            out << m->name() << ' ' << node(m->drain()) << ' '
                << node(m->gate()) << ' ' << node(m->source()) << ' '
                << node(ground_node) << ' ' << model
                << " m=" << m->multiplicity() << '\n';
        }
    }

    out << ".end\n";
}

std::string to_spice(const Circuit& circuit, const std::string& title)
{
    std::ostringstream out;
    write_spice(circuit, out, title);
    return out.str();
}

} // namespace mpsram::spice
