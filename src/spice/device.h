// Device-model interface of the MNA engine.
//
// Devices are stamped once per Newton iteration.  The engine hands each
// device a Stamper (matrix/RHS access with ground- and driven-node handling
// folded in) and an Eval_context (current iterate, time step, integration
// method).  Dynamic devices keep their own history state and are told when
// a step is accepted.
#ifndef MPSRAM_SPICE_DEVICE_H
#define MPSRAM_SPICE_DEVICE_H

#include <string>
#include <vector>

namespace mpsram::spice {

/// Node handle: index into the circuit's node table; 0 is ground.
using Node = int;
inline constexpr Node ground_node = 0;

enum class Integration_method { backward_euler, trapezoidal };

enum class Analysis_mode { dc, transient };

/// Per-iteration evaluation context.
struct Eval_context {
    Analysis_mode mode = Analysis_mode::dc;
    Integration_method method = Integration_method::trapezoidal;
    /// Target time of this solve [s] (0 in DC).
    double time = 0.0;
    /// Current step size [s] (0 in DC).
    double dt = 0.0;
    /// Full-length node voltage vector of the current iterate (indexed by
    /// Node, ground and driven nodes included and kept up to date).
    const double* voltages = nullptr;

    double v(Node n) const { return voltages[n]; }
};

/// Matrix/RHS access handed to devices.  Implementations route entries for
/// ground and driven (known-voltage) nodes automatically: stamping a
/// conductance toward a driven node lands on the RHS with the driven value.
class Stamper {
public:
    virtual ~Stamper() = default;

    /// J[eq][wrt] += g   (KCL equation of node `eq`, unknown `wrt`).
    virtual void jacobian(Node eq, Node wrt, double g) = 0;

    /// rhs[eq] += value.
    virtual void rhs(Node eq, double value) = 0;

    /// Two-terminal conductance g between nodes a and b.
    void conductance(Node a, Node b, double g)
    {
        jacobian(a, a, g);
        jacobian(b, b, g);
        jacobian(a, b, -g);
        jacobian(b, a, -g);
    }

    /// Independent current `i` flowing into node n.
    void current_into(Node n, double i) { rhs(n, i); }
};

class Device {
public:
    explicit Device(std::string name, std::vector<Node> nodes)
        : name_(std::move(name)), nodes_(std::move(nodes)) {}
    virtual ~Device() = default;

    Device(const Device&) = delete;
    Device& operator=(const Device&) = delete;

    const std::string& name() const { return name_; }
    const std::vector<Node>& nodes() const { return nodes_; }

    virtual bool is_nonlinear() const { return false; }

    /// True when stamp() depends only on the terminal voltages — no
    /// time, dt, waveform, or history state.  The reuse solver may then
    /// replay a cached stamp across steps while every terminal stays
    /// within its bypass tolerance (parameter edits between runs are
    /// covered by the per-run reuse reset).  Devices that keep the
    /// default are replayed within a single Newton solve only, where t,
    /// dt, and history are fixed.
    virtual bool stamp_voltage_only() const { return false; }

    /// Contribute linearized equations at the current iterate.
    virtual void stamp(Stamper& s, const Eval_context& ctx) const = 0;

    /// Called once after a DC solution or an accepted transient step so
    /// dynamic devices can update their history state.
    virtual void accept_step(const Eval_context& ctx) { (void)ctx; }

    /// Report waveform corner times in (0, tstop) for breakpoint handling.
    virtual void add_breakpoints(double tstop,
                                 std::vector<double>& out) const
    {
        (void)tstop;
        (void)out;
    }

private:
    std::string name_;
    std::vector<Node> nodes_;
};

} // namespace mpsram::spice

#endif // MPSRAM_SPICE_DEVICE_H
