#include "spice/circuit.h"

#include "spice/exceptions.h"
#include "util/contracts.h"

namespace mpsram::spice {

Circuit::Circuit()
{
    node_names_.push_back("0");
    node_index_["0"] = ground_node;
    node_index_["gnd"] = ground_node;
}

Node Circuit::node(const std::string& name)
{
    util::expects(!name.empty(), "node name must be non-empty");
    const auto it = node_index_.find(name);
    if (it != node_index_.end()) return it->second;
    const Node n = static_cast<Node>(node_names_.size());
    node_names_.push_back(name);
    node_index_[name] = n;
    return n;
}

Node Circuit::find_node(const std::string& name) const
{
    const auto it = node_index_.find(name);
    if (it == node_index_.end()) {
        throw Netlist_error("unknown node: " + name);
    }
    return it->second;
}

const std::string& Circuit::node_name(Node n) const
{
    util::expects(n >= 0 && static_cast<std::size_t>(n) < node_names_.size(),
                  "node id out of range");
    return node_names_[static_cast<std::size_t>(n)];
}

void Circuit::check_node(Node n) const
{
    util::expects(n >= 0 && static_cast<std::size_t>(n) < node_names_.size(),
                  "device references an unknown node");
}

void Circuit::check_name(const std::string& name)
{
    util::expects(!name.empty(), "device name must be non-empty");
    if (!device_names_.insert(name).second) {
        throw Netlist_error("duplicate device name: " + name);
    }
}

template <typename T, typename... Args>
T& Circuit::add_device(Args&&... args)
{
    auto dev = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *dev;
    for (Node n : ref.nodes()) check_node(n);
    devices_.push_back(std::move(dev));
    return ref;
}

Resistor& Circuit::add_resistor(std::string name, Node a, Node b, double ohms)
{
    check_name(name);
    return add_device<Resistor>(std::move(name), a, b, ohms);
}

Capacitor& Circuit::add_capacitor(std::string name, Node a, Node b,
                                  double farads)
{
    check_name(name);
    return add_device<Capacitor>(std::move(name), a, b, farads);
}

Current_source& Circuit::add_current_source(std::string name, Node from,
                                            Node to, Waveform w)
{
    check_name(name);
    return add_device<Current_source>(std::move(name), from, to, std::move(w));
}

Voltage_source& Circuit::add_voltage_source(std::string name, Node pos,
                                            Node neg, Waveform w)
{
    check_name(name);
    auto& src =
        add_device<Voltage_source>(std::move(name), pos, neg, std::move(w));
    vsources_.push_back(&src);
    return src;
}

Mosfet& Circuit::add_mosfet(std::string name, Node drain, Node gate,
                            Node source, Mosfet_params params,
                            double multiplicity)
{
    check_name(name);
    return add_device<Mosfet>(std::move(name), drain, gate, source, params,
                              multiplicity);
}

double Circuit::node_capacitance(Node n) const
{
    double total = 0.0;
    for (const auto& dev : devices_) {
        const auto* cap = dynamic_cast<const Capacitor*>(dev.get());
        if (cap == nullptr) continue;
        for (Node dn : cap->nodes()) {
            if (dn == n) total += cap->capacitance();
        }
    }
    return total;
}

} // namespace mpsram::spice
