// Error types of the circuit simulation engine.
#ifndef MPSRAM_SPICE_EXCEPTIONS_H
#define MPSRAM_SPICE_EXCEPTIONS_H

#include <stdexcept>
#include <string>

namespace mpsram::spice {

/// Newton-Raphson failed to converge (DC or one transient step).
class Convergence_error : public std::runtime_error {
public:
    explicit Convergence_error(const std::string& what_arg)
        : std::runtime_error("convergence failure: " + what_arg) {}
};

/// The MNA matrix factorization hit a (near-)zero pivot.
class Singular_matrix_error : public std::runtime_error {
public:
    explicit Singular_matrix_error(const std::string& what_arg)
        : std::runtime_error("singular matrix: " + what_arg) {}
};

/// The netlist is malformed (dangling nodes, conflicting sources, ...).
class Netlist_error : public std::runtime_error {
public:
    explicit Netlist_error(const std::string& what_arg)
        : std::runtime_error("netlist error: " + what_arg) {}
};

} // namespace mpsram::spice

#endif // MPSRAM_SPICE_EXCEPTIONS_H
