// Linear circuit elements: resistor, capacitor, independent sources.
#ifndef MPSRAM_SPICE_LINEAR_DEVICES_H
#define MPSRAM_SPICE_LINEAR_DEVICES_H

#include "spice/device.h"
#include "spice/waveform.h"

namespace mpsram::spice {

class Resistor final : public Device {
public:
    Resistor(std::string name, Node a, Node b, double ohms);

    double resistance() const { return ohms_; }

    /// Re-point the element at a new value (sweep reuse).  Values do not
    /// affect the MNA sparsity pattern, so a compiled system stays valid.
    void set_resistance(double ohms);

    bool stamp_voltage_only() const override { return true; }
    void stamp(Stamper& s, const Eval_context& ctx) const override;

private:
    double ohms_;
};

/// Capacitor with trapezoidal / backward-Euler companion models.  Holds
/// its own history (voltage and current at the last accepted time point).
class Capacitor final : public Device {
public:
    Capacitor(std::string name, Node a, Node b, double farads);

    double capacitance() const { return farads_; }

    /// Re-point the element at a new value (sweep reuse).  Clears the
    /// companion-model history; the next DC operating point re-latches it.
    void set_capacitance(double farads);

    void stamp(Stamper& s, const Eval_context& ctx) const override;
    void accept_step(const Eval_context& ctx) override;

private:
    double companion_g(const Eval_context& ctx) const;
    double history_current(const Eval_context& ctx) const;

    double farads_;
    double v_prev_ = 0.0;  ///< branch voltage v(a) - v(b) at last accepted point
    double i_prev_ = 0.0;  ///< branch current a->b at last accepted point
};

/// Independent current source: `value(t)` amps flow from `from` to `to`
/// through the source (i.e. injected into `to`).
class Current_source final : public Device {
public:
    Current_source(std::string name, Node from, Node to, Waveform w);

    void stamp(Stamper& s, const Eval_context& ctx) const override;
    void add_breakpoints(double tstop, std::vector<double>& out) const override;

    double value(double t) const { return wave_.value(t); }
    const Waveform& wave() const { return wave_; }

private:
    Waveform wave_;
};

/// Ideal independent voltage source, v(pos) - v(neg) = value(t).
///
/// The MNA system special-cases these: a source whose `neg` is ground
/// turns `pos` into a driven node (no extra unknown); a floating source
/// gets a branch-current unknown.  stamp() is therefore a no-op.
class Voltage_source final : public Device {
public:
    Voltage_source(std::string name, Node pos, Node neg, Waveform w);

    Node pos() const { return nodes()[0]; }
    Node neg() const { return nodes()[1]; }
    bool grounded() const { return neg() == ground_node; }

    void stamp(Stamper& s, const Eval_context& ctx) const override;
    void add_breakpoints(double tstop, std::vector<double>& out) const override;

    double value(double t) const { return wave_.value(t); }
    const Waveform& wave() const { return wave_; }

private:
    Waveform wave_;
};

} // namespace mpsram::spice

#endif // MPSRAM_SPICE_LINEAR_DEVICES_H
