#include "spice/workspace.h"

namespace mpsram::spice {

Mna_system& Transient_workspace::bind(Circuit& circuit)
{
    const bool reusable = system_ && bound_ == &circuit &&
                          bound_nodes_ == circuit.node_count() &&
                          bound_devices_ == circuit.device_count();
    if (!reusable) {
        system_ = std::make_unique<Mna_system>(circuit);
        bound_ = &circuit;
        bound_nodes_ = circuit.node_count();
        bound_devices_ = circuit.device_count();
        ++builds_;
    }
    return *system_;
}

void Transient_workspace::invalidate()
{
    system_.reset();
    bound_ = nullptr;
    bound_nodes_ = 0;
    bound_devices_ = 0;
}

} // namespace mpsram::spice
