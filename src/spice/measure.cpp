#include "spice/measure.h"

#include <algorithm>
#include <limits>

namespace mpsram::spice {

double crossing_time(const Transient_result& result, const std::string& probe,
                     double level, double from)
{
    return result.waveform(probe).first_crossing(level, from);
}

double differential_time(const Transient_result& result, const std::string& a,
                         const std::string& b, double level, double from)
{
    return result.differential(a, b).first_crossing(level, from);
}

double peak_value(const Transient_result& result, const std::string& probe,
                  double from)
{
    const util::Piecewise_linear wave = result.waveform(probe);
    double peak = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < wave.size(); ++i) {
        if (wave.xs()[i] < from) continue;
        peak = std::max(peak, wave.ys()[i]);
    }
    return peak;
}

} // namespace mpsram::spice
