#include "spice/measure.h"

namespace mpsram::spice {

double crossing_time(const Transient_result& result, const std::string& probe,
                     double level, double from)
{
    return result.waveform(probe).first_crossing(level, from);
}

double differential_time(const Transient_result& result, const std::string& a,
                         const std::string& b, double level, double from)
{
    return result.differential(a, b).first_crossing(level, from);
}

} // namespace mpsram::spice
