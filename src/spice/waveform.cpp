#include "spice/waveform.h"

#include <algorithm>

#include "util/contracts.h"
#include "util/numeric.h"

namespace mpsram::spice {

Waveform Waveform::dc(double value)
{
    Waveform w;
    w.times_ = {0.0};
    w.values_ = {value};
    return w;
}

Waveform Waveform::pulse(double v0, double v1, double delay, double rise,
                         double width, double fall)
{
    util::expects(delay >= 0.0, "pulse delay must be non-negative");
    util::expects(rise > 0.0, "pulse rise time must be positive");

    Waveform w;
    w.times_ = {0.0, delay, delay + rise};
    w.values_ = {v0, v0, v1};
    if (width > 0.0) {
        util::expects(fall > 0.0,
                      "a finite-width pulse needs a positive fall time");
        w.times_.push_back(delay + rise + width);
        w.values_.push_back(v1);
        w.times_.push_back(delay + rise + width + fall);
        w.values_.push_back(v0);
    }
    return w;
}

Waveform Waveform::pwl(std::vector<double> times, std::vector<double> values)
{
    util::expects(!times.empty(), "pwl needs at least one point");
    util::expects(times.size() == values.size(),
                  "pwl needs matching time/value lengths");
    for (std::size_t i = 1; i < times.size(); ++i) {
        util::expects(times[i] > times[i - 1],
                      "pwl times must be strictly increasing");
    }
    Waveform w;
    w.times_ = std::move(times);
    w.values_ = std::move(values);
    return w;
}

double Waveform::value(double t) const
{
    if (t <= times_.front()) return values_.front();
    if (t >= times_.back()) return values_.back();
    const auto it = std::upper_bound(times_.begin(), times_.end(), t);
    const auto hi = static_cast<std::size_t>(it - times_.begin());
    return util::lerp(times_[hi - 1], values_[hi - 1], times_[hi],
                      values_[hi], t);
}

void Waveform::breakpoints(double tstop, std::vector<double>& out) const
{
    for (double t : times_) {
        if (t > 0.0 && t < tstop) out.push_back(t);
    }
}

} // namespace mpsram::spice
