// Netlist serialization: dump a Circuit as SPICE-compatible text.
//
// Lets a user cross-check any generated netlist (e.g. the SRAM read path)
// in an external simulator, and doubles as a human-readable debug view.
// MOSFETs are emitted as .MODEL-referencing M-cards with the EKV-style
// parameters recorded as a comment (external simulators will need their
// own model binding; geometry and connectivity carry over verbatim).
#ifndef MPSRAM_SPICE_NETLIST_IO_H
#define MPSRAM_SPICE_NETLIST_IO_H

#include <iosfwd>
#include <string>

#include "spice/circuit.h"

namespace mpsram::spice {

/// Write the circuit in SPICE card format.
void write_spice(const Circuit& circuit, std::ostream& out,
                 const std::string& title = "mpsram netlist");

/// Convenience string form.
std::string to_spice(const Circuit& circuit,
                     const std::string& title = "mpsram netlist");

} // namespace mpsram::spice

#endif // MPSRAM_SPICE_NETLIST_IO_H
