// Circuit database: named nodes plus an owned list of devices.
#ifndef MPSRAM_SPICE_CIRCUIT_H
#define MPSRAM_SPICE_CIRCUIT_H

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "spice/device.h"
#include "spice/linear_devices.h"
#include "spice/mosfet.h"

namespace mpsram::spice {

class Circuit {
public:
    Circuit();

    /// Get-or-create a named node.  "0" and "gnd" are the ground node.
    Node node(const std::string& name);

    /// Look up an existing node; throws if absent.
    Node find_node(const std::string& name) const;

    const std::string& node_name(Node n) const;
    std::size_t node_count() const { return node_names_.size(); }

    // --- builder API --------------------------------------------------------
    Resistor& add_resistor(std::string name, Node a, Node b, double ohms);
    Capacitor& add_capacitor(std::string name, Node a, Node b, double farads);
    Current_source& add_current_source(std::string name, Node from, Node to,
                                       Waveform w);
    Voltage_source& add_voltage_source(std::string name, Node pos, Node neg,
                                       Waveform w);
    Mosfet& add_mosfet(std::string name, Node drain, Node gate, Node source,
                       Mosfet_params params, double multiplicity = 1.0);

    const std::vector<std::unique_ptr<Device>>& devices() const
    {
        return devices_;
    }
    std::vector<std::unique_ptr<Device>>& devices() { return devices_; }

    const std::vector<Voltage_source*>& voltage_sources() const
    {
        return vsources_;
    }

    std::size_t device_count() const { return devices_.size(); }

    /// Total capacitance attached to a node (diagnostics/tests).
    double node_capacitance(Node n) const;

private:
    template <typename T, typename... Args>
    T& add_device(Args&&... args);

    void check_node(Node n) const;
    void check_name(const std::string& name);

    std::vector<std::string> node_names_;
    std::unordered_map<std::string, Node> node_index_;
    std::vector<std::unique_ptr<Device>> devices_;
    std::unordered_set<std::string> device_names_;
    std::vector<Voltage_source*> vsources_;
};

} // namespace mpsram::spice

#endif // MPSRAM_SPICE_CIRCUIT_H
