#include "spice/linear_devices.h"

#include "util/contracts.h"

namespace mpsram::spice {

// --- Resistor ---------------------------------------------------------------

Resistor::Resistor(std::string name, Node a, Node b, double ohms)
    : Device(std::move(name), {a, b}), ohms_(ohms)
{
    util::expects(ohms > 0.0, "resistance must be positive");
}

void Resistor::set_resistance(double ohms)
{
    util::expects(ohms > 0.0, "resistance must be positive");
    ohms_ = ohms;
}

void Resistor::stamp(Stamper& s, const Eval_context&) const
{
    s.conductance(nodes()[0], nodes()[1], 1.0 / ohms_);
}

// --- Capacitor --------------------------------------------------------------

Capacitor::Capacitor(std::string name, Node a, Node b, double farads)
    : Device(std::move(name), {a, b}), farads_(farads)
{
    util::expects(farads > 0.0, "capacitance must be positive");
}

void Capacitor::set_capacitance(double farads)
{
    util::expects(farads > 0.0, "capacitance must be positive");
    farads_ = farads;
    v_prev_ = 0.0;
    i_prev_ = 0.0;
}

double Capacitor::companion_g(const Eval_context& ctx) const
{
    util::expects(ctx.dt > 0.0, "companion model needs a positive step");
    switch (ctx.method) {
    case Integration_method::backward_euler:
        return farads_ / ctx.dt;
    case Integration_method::trapezoidal:
        return 2.0 * farads_ / ctx.dt;
    }
    throw util::Invariant_error("unknown integration method");
}

double Capacitor::history_current(const Eval_context& ctx) const
{
    // Branch current a->b at the new point:
    //   i_new = geq * v_new - hist
    // BE:   hist = geq * v_prev
    // TRAP: hist = geq * v_prev + i_prev
    const double geq = companion_g(ctx);
    double hist = geq * v_prev_;
    if (ctx.method == Integration_method::trapezoidal) hist += i_prev_;
    return hist;
}

void Capacitor::stamp(Stamper& s, const Eval_context& ctx) const
{
    if (ctx.mode == Analysis_mode::dc) return;  // open in DC
    const double geq = companion_g(ctx);
    const double hist = history_current(ctx);
    s.conductance(nodes()[0], nodes()[1], geq);
    // i = geq*v - hist flows a->b; the "hist" part is an equivalent source
    // pushing current into a (and out of b).
    s.current_into(nodes()[0], hist);
    s.current_into(nodes()[1], -hist);
}

void Capacitor::accept_step(const Eval_context& ctx)
{
    const double v_now = ctx.v(nodes()[0]) - ctx.v(nodes()[1]);
    if (ctx.mode == Analysis_mode::dc) {
        v_prev_ = v_now;
        i_prev_ = 0.0;
        return;
    }
    const double hist = history_current(ctx);
    i_prev_ = companion_g(ctx) * v_now - hist;
    v_prev_ = v_now;
}

// --- Current_source ----------------------------------------------------------

Current_source::Current_source(std::string name, Node from, Node to,
                               Waveform w)
    : Device(std::move(name), {from, to}), wave_(std::move(w))
{
}

void Current_source::stamp(Stamper& s, const Eval_context& ctx) const
{
    const double i = wave_.value(ctx.time);
    s.current_into(nodes()[1], i);
    s.current_into(nodes()[0], -i);
}

void Current_source::add_breakpoints(double tstop,
                                     std::vector<double>& out) const
{
    wave_.breakpoints(tstop, out);
}

// --- Voltage_source ----------------------------------------------------------

Voltage_source::Voltage_source(std::string name, Node pos, Node neg,
                               Waveform w)
    : Device(std::move(name), {pos, neg}), wave_(std::move(w))
{
    util::expects(pos != neg, "voltage source terminals must differ");
}

void Voltage_source::stamp(Stamper&, const Eval_context&) const
{
    // Handled structurally by the MNA system (driven node or branch row).
}

void Voltage_source::add_breakpoints(double tstop,
                                     std::vector<double>& out) const
{
    wave_.breakpoints(tstop, out);
}

} // namespace mpsram::spice
