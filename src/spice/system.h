// Compiled MNA system: node classification, pattern assembly, and the
// Newton-Raphson solve shared by DC and transient analyses.
//
// Classification: a voltage source with its negative terminal on ground
// makes its positive node "driven" (known voltage, no unknown — the common
// case for rails and clocks, and what keeps the matrix a pure conductance
// matrix).  Floating voltage sources get a branch-current unknown appended
// after the node unknowns, where elimination fill guarantees their pivots.
#ifndef MPSRAM_SPICE_SYSTEM_H
#define MPSRAM_SPICE_SYSTEM_H

#include <memory>
#include <span>
#include <vector>

#include "spice/circuit.h"
#include "spice/sparse.h"

namespace mpsram::spice {

struct Newton_options {
    int max_iterations = 100;
    /// Per-node voltage convergence: |dv| <= abstol + reltol * |v|.
    double abstol = 1e-6;
    double reltol = 1e-4;
    /// Per-iteration voltage step clamp [V] (Newton damping).
    double vstep_limit = 0.3;
    /// Conductance to ground added on every node diagonal [S].
    double gmin = 1e-12;
    double pivot_floor = 1e-13;
};

/// A node temporarily pinned toward a voltage through a conductance
/// (initial-condition support for bistable circuits).
struct Forced_node {
    Node node = ground_node;
    double voltage = 0.0;
    double conductance = 1.0;
};

class Mna_system {
public:
    explicit Mna_system(Circuit& circuit);

    std::size_t unknown_count() const { return total_unknowns_; }
    std::size_t node_unknown_count() const { return unknown_nodes_.size(); }
    std::size_t branch_count() const { return branches_.size(); }

    /// Fill driven-node voltages for time t into the full voltage vector.
    void apply_driven(double t, std::vector<double>& voltages) const;

    /// Newton-solve the system at the given context.  `voltages` (full
    /// node-indexed vector) is both the initial guess and the result.
    /// Returns the iteration count; throws Convergence_error on failure.
    int solve(const Eval_context& ctx, std::vector<double>& voltages,
              const Newton_options& opts,
              std::span<const Forced_node> forces = {});

    /// Notify every device that the step at `ctx` was accepted.
    void accept(const Eval_context& ctx);

    /// Union of breakpoints of all sources in (0, tstop), sorted unique.
    std::vector<double> breakpoints(double tstop) const;

    bool nonlinear() const { return nonlinear_; }

    /// Branch current of floating source `i` from the last solve [A].
    double branch_current(std::size_t i) const;

private:
    class Assembly_stamper;
    class Pattern_stamper;

    void classify();
    void build_pattern();

    Circuit* circuit_;
    std::vector<int> solve_index_;    ///< node -> unknown index or -1
    std::vector<Node> unknown_nodes_; ///< unknown index -> node

    struct Driven {
        Node node;
        const Voltage_source* source;
    };
    std::vector<Driven> driven_;

    struct Branch {
        const Voltage_source* source;
        int index;  ///< unknown index of the branch current
    };
    std::vector<Branch> branches_;

    std::size_t total_unknowns_ = 0;
    bool nonlinear_ = false;

    std::unique_ptr<Sparse_matrix> matrix_;
    std::unique_ptr<Sparse_lu> lu_;
    std::vector<double> rhs_;
    std::vector<double> solution_;
    std::vector<double> branch_currents_;
};

} // namespace mpsram::spice

#endif // MPSRAM_SPICE_SYSTEM_H
