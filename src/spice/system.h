// Compiled MNA system: node classification, pattern assembly, and the
// Newton-Raphson solve shared by DC and transient analyses.
//
// Classification: a voltage source with its negative terminal on ground
// makes its positive node "driven" (known voltage, no unknown — the common
// case for rails and clocks, and what keeps the matrix a pure conductance
// matrix).  Floating voltage sources get a branch-current unknown appended
// after the node unknowns, where elimination fill guarantees their pivots.
#ifndef MPSRAM_SPICE_SYSTEM_H
#define MPSRAM_SPICE_SYSTEM_H

#include <memory>
#include <span>
#include <vector>

#include "spice/circuit.h"
#include "spice/sparse.h"

namespace mpsram::spice {

/// Linear-solver tier inside the Newton loop (full semantics in
/// analysis.h, next to the accuracy tier it composes with).
///
///   direct    — factor the Jacobian on every Newton iteration.  The
///               bitwise oracle; every other tier is gated against it.
///   bypass    — delta-residual (chord) Newton with device-level bypass:
///               the Jacobian and RHS are assembled every iteration, with
///               quiet nonlinear devices (terminal movement below
///               device_bypass_vtol) replaying cached stamps instead of
///               re-running the compact model, and the linear solve
///               reuses the last LU factorization until the operating
///               point drifts, dt leaves the factor-time band, or
///               convergence stalls.  Converged solutions satisfy the
///               assembled residual — exact up to g * device_bypass_vtol
///               per quiet device, held to the 0.5% agreement budget.
///   iterative — same reuse discipline applied to an ILU(0)
///               preconditioner driving BiCGSTAB; the big-array tier
///               where refactorization dominates wall time.
enum class Solver_policy { direct, bypass, iterative };

struct Newton_options {
    int max_iterations = 100;
    /// Per-node voltage convergence: |dv| <= abstol + reltol * |v|.
    double abstol = 1e-6;
    double reltol = 1e-4;
    /// Per-iteration voltage step clamp [V] (Newton damping).
    double vstep_limit = 0.3;
    /// Conductance to ground added on every node diagonal [S].
    double gmin = 1e-12;
    double pivot_floor = 1e-13;

    Solver_policy solver = Solver_policy::direct;
    /// bypass/iterative: refresh the factorization when any node voltage
    /// (driven nodes included — word-line ramps move the MOSFET
    /// linearizations) drifts more than this from the factor-time
    /// operating point [V].  Kept tight: a near-current operator keeps
    /// chord steps Newton-quality AND lets a converged solve accept on a
    /// still-valid factor without a confirmation iteration.
    double bypass_vtol = 5e-3;
    /// bypass/iterative: refresh when dt leaves [dt_f / band, dt_f * band]
    /// around the factor-time step (capacitor companion conductances
    /// scale as C/dt).  Default 1.0 = dt-exact reuse: the adaptive
    /// controller parks at dt_max through quiet stretches, which is
    /// where reuse pays; reusing across a dt change perturbs every
    /// companion conductance and stalls the chord iteration.
    double bypass_dt_band = 1.0;
    /// bypass/iterative: refresh once a factorization has served this
    /// many consecutive Newton iterations within a solve (convergence
    /// stall under a stale operator).
    int bypass_stall_iters = 5;
    /// bypass/iterative: device-level bypass (the classic SPICE BYPASS
    /// lever).  A nonlinear device whose terminal voltages — driven
    /// terminals included — all moved less than this [V] since its last
    /// evaluation replays its cached stamp entries instead of re-running
    /// the compact model.  The replayed linearization is off by at most
    /// g * vtol, which the 0.5% agreement gate bounds end to end; the
    /// direct tier never uses it.  0 disables.
    double device_bypass_vtol = 1e-4;
    /// iterative: BiCGSTAB relative-residual target and iteration cap.
    /// The Krylov solve only has to deliver a Newton DELTA good to the
    /// convergence tolerances — far looser than machine precision.
    double iterative_tol = 1e-8;
    int iterative_max_iters = 400;
};

/// Cumulative linear-solver work counters (monotone over the life of the
/// system; analysis drivers snapshot-and-diff them into per-run
/// Step_stats).  `bypass_hits` counts Newton iterations whose linear
/// solve was served by a reused factorization/preconditioner —
/// factorization-avoidance made observable.
struct Solver_counters {
    long long newton_iterations = 0;
    long long lu_factorizations = 0;  ///< LU factors + ILU(0) refreshes
    long long bypass_hits = 0;
};

/// A node temporarily pinned toward a voltage through a conductance
/// (initial-condition support for bistable circuits).
struct Forced_node {
    Node node = ground_node;
    double voltage = 0.0;
    double conductance = 1.0;
};

class Mna_system {
public:
    explicit Mna_system(Circuit& circuit);

    std::size_t unknown_count() const { return total_unknowns_; }
    std::size_t node_unknown_count() const { return unknown_nodes_.size(); }
    std::size_t branch_count() const { return branches_.size(); }

    /// Fill driven-node voltages for time t into the full voltage vector.
    void apply_driven(double t, std::vector<double>& voltages) const;

    /// Newton-solve the system at the given context.  `voltages` (full
    /// node-indexed vector) is both the initial guess and the result.
    /// Returns the iteration count; throws Convergence_error on failure.
    int solve(const Eval_context& ctx, std::vector<double>& voltages,
              const Newton_options& opts,
              std::span<const Forced_node> forces = {});

    /// Notify every device that the step at `ctx` was accepted.
    // lint:allow(raw-socket) -- a stepper callback, not the syscall
    void accept(const Eval_context& ctx);

    /// Union of breakpoints of all sources in (0, tstop), sorted unique.
    std::vector<double> breakpoints(double tstop) const;

    bool nonlinear() const { return nonlinear_; }

    /// Branch current of floating source `i` from the last solve [A].
    double branch_current(std::size_t i) const;

    /// Cumulative solver work counters (never reset; diff snapshots).
    const Solver_counters& counters() const { return counters_; }

    /// Drop all cross-solve reuse state (stale factorization, device
    /// stamp caches).  Analyses call this once per run so a result is a
    /// function of that run's inputs alone — never of what a reused
    /// workspace solved before.  Load-bearing for MC: samples change
    /// device parameters without moving the voltages the staleness
    /// checks watch.
    void reset_reuse_state();

private:
    class Assembly_stamper;
    class Pattern_stamper;
    class Caching_stamper;

    void classify();
    void build_pattern();

    void assemble(const Eval_context& ctx, const std::vector<double>& voltages,
                  const Newton_options& opts,
                  std::span<const Forced_node> forces);
    void assemble_reuse(const Eval_context& ctx,
                        const std::vector<double>& voltages,
                        const Newton_options& opts, bool new_step,
                        std::span<const Forced_node> forces);
    void stamp_fixed(const Eval_context& ctx,
                     const std::vector<double>& voltages,
                     const Newton_options& opts,
                     std::span<const Forced_node> forces);
    int solve_direct(Eval_context ctx, std::vector<double>& voltages,
                     const Newton_options& opts,
                     std::span<const Forced_node> forces);
    int solve_reuse(Eval_context ctx, std::vector<double>& voltages,
                    const Newton_options& opts,
                    std::span<const Forced_node> forces);
    bool factor_stale(const Eval_context& ctx,
                      const std::vector<double>& voltages,
                      const Newton_options& opts) const;
    void factor_current(const Newton_options& opts);
    void solve_delta(const Newton_options& opts);

    Circuit* circuit_;
    std::vector<int> solve_index_;    ///< node -> unknown index or -1
    std::vector<Node> unknown_nodes_; ///< unknown index -> node

    struct Driven {
        Node node;
        const Voltage_source* source;
    };
    std::vector<Driven> driven_;

    struct Branch {
        const Voltage_source* source;
        int index;  ///< unknown index of the branch current
    };
    std::vector<Branch> branches_;

    std::size_t total_unknowns_ = 0;
    bool nonlinear_ = false;

    std::unique_ptr<Sparse_matrix> matrix_;
    std::unique_ptr<Sparse_lu> lu_;
    std::vector<double> rhs_;
    std::vector<double> solution_;
    std::vector<double> branch_currents_;

    // Factorization-reuse state (bypass / iterative tiers).  The reuse
    // validity conditions live in factor_stale(); `v_at_factor_` is the
    // full node-indexed voltage vector at factor time.
    Solver_counters counters_;
    bool factored_ = false;
    Solver_policy factored_policy_ = Solver_policy::direct;
    Analysis_mode mode_at_factor_ = Analysis_mode::dc;
    Integration_method method_at_factor_ = Integration_method::backward_euler;
    double dt_at_factor_ = 0.0;
    double gmin_at_factor_ = 0.0;
    std::vector<double> v_at_factor_;

    std::unique_ptr<Ilu0> ilu_;       ///< lazy; lives with the workspace
    Bicgstab_scratch krylov_scratch_;
    std::vector<double> x_, residual_, delta_;

    // Device-level bypass state (reuse tiers only; see
    // Newton_options::device_bypass_vtol).  One cache per device, indexed
    // by position in circuit_->devices(); replay preserves the stamp
    // order of a fresh assembly, so per-tier bitwise determinism holds.
    // Validity rests on the nonlinear-device contract that stamps depend
    // only on terminal voltages (true for the EKV MOSFET) — the drift
    // check against `v_at_eval` is the sole invalidation trigger.
    struct Device_cache {
        std::vector<std::pair<int, double>> matrix_adds;  ///< (slot, g)
        std::vector<std::pair<int, double>> rhs_adds;     ///< (row, v)
        std::vector<double> v_at_eval;  ///< terminal voltages at eval
        bool valid = false;
    };
    std::vector<Device_cache> device_cache_;
};

} // namespace mpsram::spice

#endif // MPSRAM_SPICE_SYSTEM_H
