// Sparse linear algebra for the MNA engine.
//
// Row-compressed matrix with a split symbolic/numeric LU:
//   * the nonzero pattern is fixed once per analysis (device connectivity
//     does not change between Newton iterations), so fill-in is computed
//     a single time and every refactorization reuses the structure;
//   * factorization is up-looking row LU with diagonal pivoting.  MNA
//     conductance matrices with gmin on every diagonal are close to
//     diagonally dominant, so diagonal pivoting is numerically safe;
//     voltage-source branch rows are ordered last, where elimination fill
//     has already populated their diagonal.  A near-zero pivot throws
//     Singular_matrix_error rather than silently producing garbage.
//
// Natural ordering is used: netlist builders create nodes along the
// physical structure (e.g. down a bit line), which keeps the profile
// banded without a separate ordering pass.
#ifndef MPSRAM_SPICE_SPARSE_H
#define MPSRAM_SPICE_SPARSE_H

#include <cstddef>
#include <vector>

namespace mpsram::spice {

/// Fixed-pattern sparse square matrix in CSR form with value access by
/// (row, col) binary search.
class Sparse_matrix {
public:
    /// Build the pattern from (row, col) pairs; duplicates are merged and
    /// all diagonal entries are added unconditionally.
    Sparse_matrix(std::size_t n,
                  const std::vector<std::pair<int, int>>& entries);

    std::size_t size() const { return n_; }
    std::size_t nonzeros() const { return cols_.size(); }

    /// Zero all stored values (pattern kept).
    void clear_values();

    /// values[slot(row,col)] += v.  (row, col) must be in the pattern.
    void add(int row, int col, double v);

    /// Slot index of (row, col), or -1 if not in pattern.
    int slot(int row, int col) const;

    double value_at_slot(int s) const { return values_[s]; }
    void add_at_slot(int s, double v) { values_[s] += v; }

    /// y = A x (serial, deterministic).  The residual kernel of the
    /// factorization-reuse Newton path and the iterative solver.
    void multiply(const std::vector<double>& x, std::vector<double>& y) const;

    const std::vector<int>& row_ptr() const { return row_ptr_; }
    const std::vector<int>& cols() const { return cols_; }
    const std::vector<double>& values() const { return values_; }

    /// Dense row extraction (tests/diagnostics).
    std::vector<double> dense_row(int row) const;

private:
    std::size_t n_;
    std::vector<int> row_ptr_;   ///< size n+1
    std::vector<int> cols_;      ///< sorted within each row
    std::vector<double> values_;
};

/// Symbolic + numeric LU of a Sparse_matrix pattern.
class Sparse_lu {
public:
    /// Compute fill-in for the given pattern (one-time cost).
    explicit Sparse_lu(const Sparse_matrix& pattern);

    /// Numeric factorization of the matrix values (same pattern as the
    /// constructor argument).  Throws Singular_matrix_error on a pivot
    /// whose magnitude falls below `pivot_floor`.
    void factor(const Sparse_matrix& a, double pivot_floor = 1e-13);

    /// Solve L U x = b in place.
    void solve(std::vector<double>& b) const;

    std::size_t fill_nonzeros() const { return u_cols_flat_.size() + l_cols_flat_.size(); }

private:
    std::size_t n_;

    // Filled pattern, per row: L columns (< row) and U columns (>= row).
    std::vector<int> l_row_ptr_;
    std::vector<int> l_cols_flat_;
    std::vector<int> u_row_ptr_;
    std::vector<int> u_cols_flat_;

    // Numeric values aligned with the flat column arrays.
    std::vector<double> l_values_;
    std::vector<double> u_values_;
    std::vector<double> diag_inv_;

    // First U slot per row is the diagonal (enforced during symbolic).
};

/// Incomplete LU with zero fill — ILU(0) — on a Sparse_matrix pattern.
///
/// The factorization is restricted to the original nonzero pattern
/// (every update landing outside it is dropped), so the factor costs
/// O(nnz * row width) with no symbolic fill pass, and apply() is two
/// triangular sweeps over the original pattern.  On the MNA ladders this
/// engine assembles (near-banded with natural ordering) ILU(0) is exact
/// or nearly so, which makes it the preconditioner of the big-array
/// iterative solver tier rather than a solver of its own.
///
/// The pattern (row pointers, columns, per-row diagonal slot) is copied
/// at construction; factor() may be called repeatedly with new values of
/// a matrix sharing that pattern.
class Ilu0 {
public:
    explicit Ilu0(const Sparse_matrix& pattern);

    /// Numeric ILU(0) of the matrix values (same pattern as the
    /// constructor argument).  Throws Singular_matrix_error on a pivot
    /// whose magnitude falls below `pivot_floor`.
    void factor(const Sparse_matrix& a, double pivot_floor = 1e-13);

    /// x := (L U)^-1 x (forward then backward sweep, in place).
    void apply(std::vector<double>& x) const;

    std::size_t size() const { return n_; }

private:
    std::size_t n_;
    std::vector<int> row_ptr_;    ///< copy of the pattern row pointers
    std::vector<int> cols_;       ///< copy of the pattern columns
    std::vector<int> diag_slot_;  ///< slot of (i, i) per row
    std::vector<double> values_;  ///< factored values, pattern-aligned
    std::vector<double> diag_inv_;
};

/// Reusable vector scratch of bicgstab(); keep one per solver context so
/// repeated Newton iterations do not reallocate.
struct Bicgstab_scratch {
    std::vector<double> r, r0, p, v, s, t, phat, shat;
};

/// Preconditioned BiCGSTAB: solve A x = b with right preconditioner M
/// (x starts from the zero vector; `x` is overwritten).  Converges when
/// ||r||_2 <= rel_tol * ||b||_2.  Returns the iteration count on
/// success, -1 on breakdown or iteration exhaustion — the caller decides
/// whether to refresh the preconditioner or fall back to a direct
/// factorization.  Strictly serial and deterministic.
int bicgstab(const Sparse_matrix& a, const Ilu0& m,
             const std::vector<double>& b, std::vector<double>& x,
             double rel_tol, int max_iters, Bicgstab_scratch& scratch);

} // namespace mpsram::spice

#endif // MPSRAM_SPICE_SPARSE_H
