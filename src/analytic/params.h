// Derivation of the formula parameters from the reproduction's own models,
// the way a designer would fill eq. (4) in first-order: extracted per-cell
// wire RC, effective switch resistances from the drive currents, junction
// loads from the cell spec, and the same Cpre(n) rule the netlist uses.
#ifndef MPSRAM_ANALYTIC_PARAMS_H
#define MPSRAM_ANALYTIC_PARAMS_H

#include "analytic/td_formula.h"
#include "analytic/tw_formula.h"
#include "sram/bitline_model.h"
#include "sram/cell.h"
#include "tech/technology.h"

namespace mpsram::analytic {

/// Effective large-signal switch resistance of a MOSFET driven at vdd:
/// the classic vdd / (2 * Ion) estimate.
double effective_switch_resistance(double vdd, double ion);

/// Build Td_params from the technology, cell and extracted wire values.
/// The discharge level is sense_margin / vdd (the paper's 10%).
Td_params derive_params(const tech::Technology& tech,
                        const sram::Cell_electrical& cell,
                        const sram::Bitline_electrical& wires);

/// Build Tw_params the same way: BLB-leg wire values, the n-scaled write
/// driver's switch resistance, and the shared Cpre(n) rule.  The trip
/// level is vdd/2 (a = ln 2).
Tw_params derive_tw_params(const tech::Technology& tech,
                           const sram::Cell_electrical& cell,
                           const sram::Bitline_electrical& wires);

} // namespace mpsram::analytic

#endif // MPSRAM_ANALYTIC_PARAMS_H
