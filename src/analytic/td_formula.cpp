#include "analytic/td_formula.h"

#include <cmath>

#include "util/contracts.h"

namespace mpsram::analytic {

double discharge_constant(double level)
{
    util::expects(level > 0.0 && level < 1.0,
                  "discharge level must be in (0,1)");
    return -std::log(1.0 - level);
}

double td_lumped(const Td_params& p, int n, double rvar, double cvar)
{
    util::expects(n > 0, "array length must be positive");
    util::expects(p.c_pre != nullptr, "Td_params::c_pre must be set");
    util::expects(rvar > 0.0 && cvar > 0.0,
                  "variation multipliers must be positive");

    const double nn = static_cast<double>(n);
    const double r = nn * p.r_bl_cell * rvar + p.r_fe;
    const double c = nn * (p.c_bl_cell * cvar + p.c_fe) + p.c_pre(n);
    return p.a * r * c;
}

double tdp_percent(const Td_params& p, int n, double rvar, double cvar)
{
    const double nominal = td_lumped(p, n, 1.0, 1.0);
    const double varied = td_lumped(p, n, rvar, cvar);
    return (varied / nominal - 1.0) * 100.0;
}

Td_polynomial td_polynomial(const Td_params& p, double c_pre_value,
                            double rvar, double cvar)
{
    Td_polynomial poly;
    const double c_cell = p.c_bl_cell * cvar + p.c_fe;
    poly.quadratic = p.a * p.r_bl_cell * rvar * c_cell;
    poly.linear = p.a * (p.r_fe * c_cell + p.r_bl_cell * rvar * c_pre_value);
    poly.constant = p.a * p.r_fe * c_pre_value;
    return poly;
}

} // namespace mpsram::analytic
