#include "analytic/response_surface.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"

namespace mpsram::analytic {

namespace {

/// Quadratic basis at a z-scaled point: [1, z_i..., z_i z_j (i<=j)...].
void basis_at(std::span<const double> z, std::vector<double>& phi)
{
    const std::size_t d = z.size();
    phi.clear();
    phi.push_back(1.0);
    for (std::size_t i = 0; i < d; ++i) phi.push_back(z[i]);
    for (std::size_t i = 0; i < d; ++i) {
        for (std::size_t j = i; j < d; ++j) phi.push_back(z[i] * z[j]);
    }
}

/// Solve the dense symmetric system a*x = b in place (Gaussian elimination
/// with partial pivoting; m <= 21 for any engine in this study).
std::vector<double> solve_dense(std::vector<std::vector<double>>& a,
                                std::vector<double>& b)
{
    const std::size_t m = b.size();
    for (std::size_t col = 0; col < m; ++col) {
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < m; ++r) {
            if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
        }
        util::ensures(std::fabs(a[pivot][col]) > 0.0,
                      "response-surface fit: singular normal equations "
                      "(design set is rank-deficient)");
        std::swap(a[col], a[pivot]);
        std::swap(b[col], b[pivot]);
        for (std::size_t r = col + 1; r < m; ++r) {
            const double f = a[r][col] / a[col][col];
            if (f == 0.0) continue;
            for (std::size_t c = col; c < m; ++c) a[r][c] -= f * a[col][c];
            b[r] -= f * b[col];
        }
    }
    std::vector<double> x(m, 0.0);
    for (std::size_t ri = m; ri > 0; --ri) {
        const std::size_t r = ri - 1;
        double acc = b[r];
        for (std::size_t c = r + 1; c < m; ++c) acc -= a[r][c] * x[c];
        x[r] = acc / a[r][r];
    }
    return x;
}

} // namespace

std::size_t Response_surface::coefficient_count(std::size_t dim)
{
    return 1 + dim + dim * (dim + 1) / 2;
}

Response_surface Response_surface::fit(
    const std::vector<std::vector<double>>& points,
    const std::vector<double>& values, std::vector<double> scales,
    const std::vector<double>& weights)
{
    const std::size_t d = scales.size();
    const std::size_t m = coefficient_count(d);
    util::expects(points.size() == values.size(),
                  "response-surface fit: points/values size mismatch");
    util::expects(weights.empty() || weights.size() == points.size(),
                  "response-surface fit: points/weights size mismatch");
    util::expects(points.size() >= m,
                  "response-surface fit: fewer design points than "
                  "quadratic coefficients");
    for (const double s : scales) {
        util::expects(s > 0.0, "response-surface scales must be positive");
    }
    for (const double w : weights) {
        util::expects(w > 0.0, "response-surface weights must be positive");
    }

    // Normal equations (A^T W A) c = A^T W y on the z-scaled basis.
    std::vector<std::vector<double>> ata(m, std::vector<double>(m, 0.0));
    std::vector<double> aty(m, 0.0);
    std::vector<double> z(d, 0.0);
    std::vector<double> phi;
    phi.reserve(m);
    for (std::size_t r = 0; r < points.size(); ++r) {
        util::expects(points[r].size() == d,
                      "response-surface fit: point dimension mismatch");
        for (std::size_t i = 0; i < d; ++i) z[i] = points[r][i] / scales[i];
        basis_at(z, phi);
        const double w = weights.empty() ? 1.0 : weights[r];
        for (std::size_t i = 0; i < m; ++i) {
            aty[i] += w * phi[i] * values[r];
            for (std::size_t j = 0; j < m; ++j) {
                ata[i][j] += w * phi[i] * phi[j];
            }
        }
    }

    Response_surface surface;
    surface.scales_ = std::move(scales);
    surface.coeffs_ = solve_dense(ata, aty);
    return surface;
}

Response_surface Response_surface::restore(std::vector<double> scales,
                                           std::vector<double> coeffs)
{
    util::expects(!scales.empty(),
                  "restoring a response surface needs scales");
    for (const double s : scales) {
        util::expects(s > 0.0, "response-surface scales must be positive");
    }
    util::expects(coeffs.size() == coefficient_count(scales.size()),
                  "restored coefficient count does not match the "
                  "surface dimension");
    Response_surface surface;
    surface.scales_ = std::move(scales);
    surface.coeffs_ = std::move(coeffs);
    return surface;
}

double Response_surface::value(std::span<const double> x) const
{
    const std::size_t d = scales_.size();
    util::expects(x.size() == d,
                  "response-surface evaluation: dimension mismatch");
    util::expects(!coeffs_.empty(), "evaluating an unfitted surface");

    // Inline Horner-free accumulation — this is the per-sample hot path of
    // million-sample yield screens, so no scratch allocation.
    double acc = coeffs_[0];
    std::size_t k = 1 + d;
    for (std::size_t i = 0; i < d; ++i) {
        const double zi = x[i] / scales_[i];
        acc += coeffs_[1 + i] * zi;
        for (std::size_t j = i; j < d; ++j) {
            acc += coeffs_[k++] * zi * (x[j] / scales_[j]);
        }
    }
    return acc;
}

std::vector<double> Response_surface::gradient_at_zero() const
{
    util::expects(!coeffs_.empty(), "gradient of an unfitted surface");
    std::vector<double> g(scales_.size(), 0.0);
    for (std::size_t i = 0; i < g.size(); ++i) {
        g[i] = coeffs_[1 + i] / scales_[i];
    }
    return g;
}

namespace {

/// Base design in normalized u-space (u_i = x_i / half_width_i): full
/// 3-level factorial for d <= 3, central composite (center + 2d axial +
/// 2^d corners) for larger d.
std::vector<std::vector<double>> base_design_u(std::size_t d)
{
    std::vector<std::vector<double>> u;
    if (d <= 3) {
        std::size_t total = 1;
        for (std::size_t i = 0; i < d; ++i) total *= 3;
        u.reserve(total);
        for (std::size_t code = 0; code < total; ++code) {
            std::vector<double> p(d, 0.0);
            std::size_t rest = code;
            for (std::size_t i = 0; i < d; ++i) {
                p[i] = static_cast<double>(rest % 3) - 1.0;
                rest /= 3;
            }
            u.push_back(std::move(p));
        }
        return u;
    }

    u.emplace_back(d, 0.0);
    for (std::size_t i = 0; i < d; ++i) {
        for (const double sign : {-1.0, 1.0}) {
            std::vector<double> p(d, 0.0);
            p[i] = sign;
            u.push_back(std::move(p));
        }
    }
    const std::size_t corners = std::size_t{1} << d;
    for (std::size_t code = 0; code < corners; ++code) {
        std::vector<double> p(d, 0.0);
        for (std::size_t i = 0; i < d; ++i) {
            p[i] = (code >> i) & 1 ? 1.0 : -1.0;
        }
        u.push_back(std::move(p));
    }
    return u;
}

} // namespace

std::vector<std::vector<double>> quadratic_design(
    std::span<const double> half_width)
{
    const std::size_t d = half_width.size();
    util::expects(d > 0, "quadratic design needs at least one dimension");
    for (const double h : half_width) {
        util::expects(h > 0.0, "design half-widths must be positive");
    }

    // Three shells of the base design (full, 2/3 and 1/3 scale), every
    // point radially clamped onto the |u| <= 1 ball.  The clamp is what
    // makes the fit serve million-sample yield: unclamped factorial
    // corners sit at standardized radius sqrt(d) — ~6.7 sigma for d = 5 —
    // where the true response is strongly non-quadratic, and least
    // squares over those corners distorts the surface exactly where the
    // Monte-Carlo mass lives.  Clamped, every design point stays inside
    // the radius the (per-axis truncated) samples and the shifted-mean
    // tail sampler actually reach; the inner shells restore the radial
    // resolution the clamp takes from the corners.
    const std::vector<std::vector<double>> base = base_design_u(d);
    std::vector<std::vector<double>> points;
    points.reserve(3 * base.size());
    for (const double shell : {1.0, 2.0 / 3.0, 1.0 / 3.0}) {
        for (const auto& u : base) {
            double r2 = 0.0;
            for (const double c : u) r2 += c * c;
            if (r2 == 0.0) {
                // One center point only; the second shell's duplicate
                // would double-weight it.
                if (shell == 1.0) points.emplace_back(d, 0.0);
                continue;
            }
            const double r = shell * std::sqrt(r2);
            const double clamp = r > 1.0 ? 1.0 / std::sqrt(r2) : shell;
            std::vector<double> p(d, 0.0);
            for (std::size_t i = 0; i < d; ++i) {
                p[i] = u[i] * clamp * half_width[i];
            }
            points.push_back(std::move(p));
        }
    }
    return points;
}

double holdout_error(const Response_surface& surface,
                     const std::vector<std::vector<double>>& points,
                     const std::vector<double>& exact, double scale)
{
    util::expects(points.size() == exact.size(),
                  "holdout error: points/values size mismatch");
    util::expects(scale > 0.0, "holdout error needs a positive scale");
    double worst = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
        const double err =
            std::fabs(surface.value(points[i]) - exact[i]) / scale;
        worst = std::max(worst, err);
    }
    return worst;
}

} // namespace mpsram::analytic
