#include "analytic/tw_formula.h"

#include "util/contracts.h"

namespace mpsram::analytic {

double tw_lumped(const Tw_params& p, int n, double rvar, double cvar)
{
    util::expects(n > 0, "array length must be positive");
    util::expects(p.r_driver != nullptr && p.c_pre != nullptr,
                  "Tw_params::r_driver and c_pre must be set");
    util::expects(rvar > 0.0 && cvar > 0.0,
                  "variation multipliers must be positive");

    const double nn = static_cast<double>(n);
    const double r = p.r_driver(n) + nn * p.r_bl_cell * rvar;
    const double c = nn * (p.c_bl_cell * cvar + p.c_fe) + p.c_pre(n);
    return p.a * r * c;
}

double twp_percent(const Tw_params& p, int n, double rvar, double cvar)
{
    const double nominal = tw_lumped(p, n, 1.0, 1.0);
    const double varied = tw_lumped(p, n, rvar, cvar);
    return (varied / nominal - 1.0) * 100.0;
}

} // namespace mpsram::analytic
