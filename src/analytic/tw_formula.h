// First-order analytical write-time model: the tw analogue of the td
// formula (td_formula.h), in the same lumped-RC family as eq. (4).
//
//   tw = a_w * (Rdrv(n) + n*Rblb*Rvar) * (n*(Cblb*Cvar + CFE) + Cpre(n))
//
// The write driver must discharge the BLB ladder below the cell's trip
// point before the latch regenerates; a_w is the discharge constant of
// that trip level (vdd/2 -> ln 2), Rdrv(n) the effective switch
// resistance of the n-scaled driver NMOS, and the parenthesized terms the
// same lumped wire R and C the td model uses — evaluated on the BLB leg,
// which is the wire the driver actually discharges.
//
// Deliberately lumped, like the td model: no distributed (Elmore) term,
// no cell regeneration time, no word-line edge interaction.  It exists so
// variability *ratios* (twp) are cheap — the registry binds it as the
// formula sample engine of mc_twp queries, putting 10k-sample write
// distributions at read-MC cost — not to predict absolute tw, where it
// systematically underestimates SPICE exactly as td_lumped does.
#ifndef MPSRAM_ANALYTIC_TW_FORMULA_H
#define MPSRAM_ANALYTIC_TW_FORMULA_H

#include <functional>

namespace mpsram::analytic {

struct Tw_params {
    double a = 0.693;        ///< discharge constant (vdd/2 trip level)
    double r_bl_cell = 0.0;  ///< per-cell BLB resistance [ohm]
    double c_bl_cell = 0.0;  ///< per-cell BLB capacitance [F]
    double c_fe = 0.0;       ///< per-cell pass-gate junction load [F]
    /// Effective driver resistance as a function of array length n (the
    /// write driver scales with the array like the precharge) [ohm].
    std::function<double(int)> r_driver;
    /// Precharge-circuit capacitance per bit line vs n [F].
    std::function<double(int)> c_pre;
};

/// Lumped write time.  rvar/cvar are the "1 + x%" multipliers of the
/// varied BLB wire.
double tw_lumped(const Tw_params& p, int n, double rvar = 1.0,
                 double cvar = 1.0);

/// Write-time penalty in percent: (tw(rvar,cvar) / tw(1,1) - 1) * 100.
double twp_percent(const Tw_params& p, int n, double rvar, double cvar);

} // namespace mpsram::analytic

#endif // MPSRAM_ANALYTIC_TW_FORMULA_H
