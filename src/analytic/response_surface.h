// Auto-calibrated response surfaces: the surrogate engine tier behind
// Tdp_engine::surrogate / Twp_engine::surrogate (core/query.h).
//
// A Response_surface is a full quadratic polynomial in the patterning
// process-sample space (one dimension per Variation_axis),
//
//   y(x) = c0 + sum_i b_i z_i + sum_{i<=j} c_ij z_i z_j,   z_i = x_i / s_i
//
// least-squares fitted against a small design set of exact (SPICE-backed)
// evaluations.  The internal z-scaling by the per-axis design half-width
// s_i keeps the normal equations conditioned: raw axis deviations are
// ~1e-9 m, whose fourth powers would otherwise drown the constant column.
//
// The fit is deliberately quadratic — the paper's own td model (eq. 4) is
// a product of two terms linear in the variation factors, and the factors
// are near-linear in the axis deviations over the +/-3-sigma design box,
// so a quadratic captures the SPICE response to a fraction of a percent.
// The held-out gate (core::Study_session::calibrated_surfaces) measures
// exactly that and refuses to serve a surface that misses its budget.
#ifndef MPSRAM_ANALYTIC_RESPONSE_SURFACE_H
#define MPSRAM_ANALYTIC_RESPONSE_SURFACE_H

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace mpsram::analytic {

class Response_surface {
public:
    Response_surface() = default;

    /// Least-squares fit of a full quadratic over `points` (each of
    /// dimension scales.size(), in physical units) against `values`.
    /// `scales` are the per-dimension normalization half-widths (> 0).
    /// `weights` (optional, per point, > 0) turn the fit into weighted
    /// least squares — the calibration passes the Gaussian process
    /// density so the surface is most faithful where the Monte-Carlo
    /// mass lives, not uniformly over the design ball.  Requires at
    /// least coefficient_count(d) points in general position.
    static Response_surface fit(
        const std::vector<std::vector<double>>& points,
        const std::vector<double>& values, std::vector<double> scales,
        const std::vector<double>& weights = {});

    /// Rebuild a fitted surface from its serialized state (`scales()` and
    /// `coefficients()`, see core/serialize.h).  Requires scales > 0 and
    /// coeffs.size() == coefficient_count(scales.size()); the restored
    /// surface evaluates bitwise identically to the original (value() is
    /// pure arithmetic over these two vectors).
    static Response_surface restore(std::vector<double> scales,
                                    std::vector<double> coeffs);

    /// 1 (constant) + d (linear) + d(d+1)/2 (quadratic) terms.
    static std::size_t coefficient_count(std::size_t dim);

    std::size_t dimension() const { return scales_.size(); }
    bool empty() const { return scales_.empty(); }

    /// Evaluate at a physical-unit point of dimension().
    double value(std::span<const double> x) const;

    /// Gradient at the origin, in physical units (the fitted linear
    /// coefficients un-scaled) — the dominant directions the importance
    /// sampler shifts along (mc/surrogate.h).
    std::vector<double> gradient_at_zero() const;

    const std::vector<double>& coefficients() const { return coeffs_; }
    /// Per-dimension normalization half-widths (the serialized state next
    /// to coefficients()).
    const std::vector<double>& scales() const { return scales_; }

private:
    std::vector<double> scales_;
    std::vector<double> coeffs_;  ///< [c0, b_0..b_{d-1}, c_ij row-major i<=j]
};

/// Design set for a quadratic fit: three shells (full, 2/3, 1/3 scale)
/// of a base design — full 3-level factorial for d <= 3, central-composite
/// (center + 2d axial + 2^d corners) for larger d — with every point
/// radially clamped onto the standardized |x/half_width| <= 1 ball, so
/// the fit is anchored inside the region truncated Monte-Carlo sampling
/// actually reaches instead of at sqrt(d)-radius corners.  Strictly
/// oversamples the quadratic coefficient count; deterministic order.
std::vector<std::vector<double>> quadratic_design(
    std::span<const double> half_width);

/// Max |prediction - exact| over the held-out points, normalized by
/// `scale` (the design-set value span): the relative error the
/// calibration gate compares against its budget.
double holdout_error(const Response_surface& surface,
                     const std::vector<std::vector<double>>& points,
                     const std::vector<double>& exact, double scale);

/// Calibration policy of the surrogate tier (core::Study_options).
struct Surrogate_options {
    /// Design box half-width per axis, in sigmas.  Matches the default
    /// Monte-Carlo truncation (mc::Distribution_options::truncate_k) so
    /// the surface is fitted exactly over the region it will be sampled.
    double design_span_k = 3.0;
    /// Gaussian held-out validation draws (truncated at design_span_k),
    /// from a dedicated substream so they never collide with MC samples.
    int holdout_points = 12;
    /// Held-out error budget: the max |prediction - exact| over the
    /// held-out draws, relative to the design value span, above which the
    /// calibration throws instead of serving garbage quantiles.  This is
    /// a pointwise-max gate — far stricter than the distribution-level
    /// mean/sigma agreement it protects (a healthy quadratic fit lands at
    /// 0.5-3% pointwise while agreeing on mean/sigma within a few tenths
    /// of a percent; a broken fit lands at 10%+).
    double budget_rel = 0.05;
};

/// One calibrated surrogate: the metric surface plus the victim R/C
/// factor surfaces (fitted from the same design extractions for free),
/// with the fit diagnostics the benches report and gate on.
struct Yield_surfaces {
    Response_surface metric;  ///< tdp or twp [%] vs axis deviations
    Response_surface rvar;    ///< victim R factor
    Response_surface cvar;    ///< victim C factor
    double holdout_rel = 0.0;       ///< held-out error of `metric`
    double design_span = 0.0;       ///< value span of the design set
    std::size_t design_points = 0;
    std::size_t holdout_points = 0;
};

} // namespace mpsram::analytic

#endif // MPSRAM_ANALYTIC_RESPONSE_SURFACE_H
