#include "analytic/params.h"

#include "spice/mosfet_model.h"
#include "util/contracts.h"

namespace mpsram::analytic {

double effective_switch_resistance(double vdd, double ion)
{
    util::expects(vdd > 0.0 && ion > 0.0,
                  "vdd and drive current must be positive");
    return vdd / (2.0 * ion);
}

Td_params derive_params(const tech::Technology& tech,
                        const sram::Cell_electrical& cell,
                        const sram::Bitline_electrical& wires)
{
    const double vdd = tech.feol.vdd;

    Td_params p;
    p.a = discharge_constant(tech.feol.sense_margin / vdd);
    p.r_bl_cell = wires.r_bl_cell;
    p.c_bl_cell = wires.c_bl_cell;

    // RFE: pass gate and pull-down in series (the discharge path through
    // the accessed cell), each at its effective switch resistance.
    const double ion_pg =
        spice::drive_current(cell.pass_gate, vdd) * cell.m_pass_gate;
    const double ion_pd =
        spice::drive_current(cell.pull_down, vdd) * cell.m_pull_down;
    p.r_fe = effective_switch_resistance(vdd, ion_pg) +
             effective_switch_resistance(vdd, ion_pd);

    p.c_fe = cell.bitline_junction_cap();

    // Same precharge scaling rule as the netlist builder.
    p.c_pre = [cell](int n) { return sram::precharge_cap(n, cell); };

    return p;
}

Tw_params derive_tw_params(const tech::Technology& tech,
                           const sram::Cell_electrical& cell,
                           const sram::Bitline_electrical& wires)
{
    const double vdd = tech.feol.vdd;

    Tw_params p;
    p.a = discharge_constant(0.5);
    p.r_bl_cell = wires.r_blb_cell;
    p.c_bl_cell = wires.c_blb_cell;
    p.c_fe = cell.bitline_junction_cap();

    // The write driver is the 2x-precharge-strength NMOS pull-down of the
    // netlist builder, sized with the array.
    const double ion_pd_unit = spice::drive_current(cell.pull_down, vdd);
    p.r_driver = [vdd, ion_pd_unit](int n) {
        return effective_switch_resistance(
            vdd, ion_pd_unit * 2.0 * sram::precharge_multiplicity(n));
    };
    p.c_pre = [cell](int n) { return sram::precharge_cap(n, cell); };

    return p;
}

} // namespace mpsram::analytic
