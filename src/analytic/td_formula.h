// The paper's analytical read-time model (Section III-A, eqs. 1-5).
//
//   td = a * (n*Rbl*Rvar + RFE) * (n*(Cbl*Cvar + CFE) + Cpre(n))     (4)
//
// with a set by the target discharge level (eq. 3: a ~ 0.105 for 10%),
// n the bit-line length in cells, Rvar/Cvar the patterning-induced
// variation multipliers, RFE the lumped front-end discharge resistance and
// CFE the per-cell pass-gate junction load.  tdp is the ratio of the
// varied td over the nominal td, expressed in percent.
//
// The model is deliberately lumped: it ignores the distributed nature of
// the line (no Elmore term), via resistance, leakage, and the VSS-rail
// resistance change that anti-correlates with Rbl under SADP — the paper
// documents exactly these blind spots (Tables II and III), and the
// reproduction keeps them.
#ifndef MPSRAM_ANALYTIC_TD_FORMULA_H
#define MPSRAM_ANALYTIC_TD_FORMULA_H

#include <functional>

namespace mpsram::analytic {

/// Discharge-level constant `a` of eq. (3): solving 1 - e^(-t/RC) = level
/// for t gives t = -ln(1 - level) * RC.
double discharge_constant(double level);

struct Td_params {
    double a = 0.105;        ///< discharge constant (10% level)
    double r_bl_cell = 0.0;  ///< per-cell bit-line resistance [ohm]
    double c_bl_cell = 0.0;  ///< per-cell bit-line capacitance [F]
    double r_fe = 0.0;       ///< lumped front-end resistance RFE [ohm]
    double c_fe = 0.0;       ///< per-cell front-end capacitance CFE [F]
    /// Precharge-circuit capacitance as a function of the array length n.
    std::function<double(int)> c_pre;
};

/// Eq. (4).  rvar/cvar are the "1 + x%" multipliers.
double td_lumped(const Td_params& p, int n, double rvar = 1.0,
                 double cvar = 1.0);

/// Read-time penalty in percent: (td(rvar,cvar) / td(1,1) - 1) * 100.
double tdp_percent(const Td_params& p, int n, double rvar, double cvar);

/// Eq. (5): the polynomial-in-n view for a frozen Cpre value.
struct Td_polynomial {
    double quadratic = 0.0;  ///< coefficient of n^2
    double linear = 0.0;     ///< coefficient of n
    double constant = 0.0;
};
Td_polynomial td_polynomial(const Td_params& p, double c_pre_value,
                            double rvar = 1.0, double cvar = 1.0);

} // namespace mpsram::analytic

#endif // MPSRAM_ANALYTIC_TD_FORMULA_H
