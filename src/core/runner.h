// Execution engine: a Run_plan of independent jobs, executed serially or
// in parallel under one API.
//
// The analysis layers (mc::, pattern::, core::) describe work as plans —
// Monte-Carlo samples, corner evaluations, study rows — and stay ignorant
// of threading.  The backend is selected per call by Runner_options:
//
//     core::run(plan, {});                       // serial (default)
//     core::run(plan, core::Runner_options::parallel());  // all cores
//     core::run_indexed(n, body, {.threads = 4});
//
// Determinism contract: a job receives its own index and writes only to
// its own output slot, so results are bitwise identical at any thread
// count.  Randomized jobs must derive their stream from the job index
// (util::Rng::stream), never from a shared engine.
#ifndef MPSRAM_CORE_RUNNER_H
#define MPSRAM_CORE_RUNNER_H

#include <cstddef>
#include <functional>
#include <vector>

#include "util/check.h"

namespace mpsram::core {

struct Runner_options {
    /// Worker count: 1 = serial (in the calling thread), <= 0 = one per
    /// hardware thread, otherwise the exact count requested.
    int threads = 1;
    /// Consecutive jobs handed to a worker at a time; 0 = auto.
    std::size_t chunk = 0;

    /// Shorthand for "use every hardware thread".
    static Runner_options parallel() { return Runner_options{0, 0}; }

    /// `threads` with <= 0 resolved to the hardware thread count.
    int resolved_threads() const;
};

/// Context handed to every job: where it sits in the plan and which worker
/// runs it.  `worker` is only for per-thread scratch (never for results —
/// worker assignment is nondeterministic).
struct Run_context {
    std::size_t job_index = 0;
    int worker = 0;
};

/// The checked form of the write-own-slot contract: a job's output slot
/// is its plan index, verified against the output size in checked builds
/// (a mis-sized result vector silently truncates or scribbles otherwise).
/// Usage: `rows[checked_slot(ctx, rows.size())] = ...`.
inline std::size_t checked_slot(const Run_context& ctx, std::size_t bound)
{
    MPSRAM_REQUIRE(ctx.job_index < bound, "Run_plan slot out of range",
                   MPSRAM_VAL(ctx.job_index), MPSRAM_VAL(bound));
    return ctx.job_index;
}

/// Checked per-worker scratch access: worker ids are only valid below the
/// resolved thread count the scratch was sized for.
inline std::size_t checked_worker(const Run_context& ctx, std::size_t bound)
{
    const auto worker = static_cast<std::size_t>(ctx.worker);
    MPSRAM_REQUIRE(ctx.worker >= 0 && worker < bound,
                   "worker id outside the scratch pool",
                   MPSRAM_VAL(ctx.worker), MPSRAM_VAL(bound));
    return worker;
}

/// An ordered list of independent jobs.  Jobs must not depend on each
/// other's side effects; the runner may execute them in any order.
class Run_plan {
public:
    using Job = std::function<void(const Run_context&)>;

    Run_plan() = default;

    /// Append one job.
    void add(Job job);

    /// Append `count` jobs sharing one body; the body distinguishes them
    /// by ctx.job_index offset (0-based within this add_indexed call).
    void add_indexed(std::size_t count,
                     std::function<void(std::size_t, const Run_context&)> body);

    std::size_t size() const { return jobs_.size(); }
    bool empty() const { return jobs_.empty(); }

    const std::vector<Job>& jobs() const { return jobs_; }

private:
    std::vector<Job> jobs_;
};

/// Execute every job in the plan.  Serial when opts.resolved_threads() is
/// 1; otherwise chunks the plan over a fixed worker pool.  The first
/// exception thrown by a job is rethrown here after the plan quiesces.
void run(const Run_plan& plan, const Runner_options& opts = {});

/// Chunked loop over [0, count) without materializing per-job closures:
/// the workhorse for large sample loops.  Same semantics as run().
void run_indexed(std::size_t count,
                 const std::function<void(std::size_t, const Run_context&)>& body,
                 const Runner_options& opts = {});

} // namespace mpsram::core

#endif // MPSRAM_CORE_RUNNER_H
