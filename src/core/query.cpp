#include "core/query.h"

#include "util/contracts.h"

namespace mpsram::core {

std::string_view to_string(Metric metric)
{
    switch (metric) {
    case Metric::worst_case_rc: return "worst_case_rc";
    case Metric::read_td: return "read_td";
    case Metric::nominal_td: return "nominal_td";
    case Metric::worst_case_tdp: return "worst_case_tdp";
    case Metric::mc_tdp: return "mc_tdp";
    case Metric::write_tw: return "write_tw";
    case Metric::nominal_tw: return "nominal_tw";
    case Metric::mc_twp: return "mc_twp";
    case Metric::disturb: return "disturb";
    }
    return "unknown";
}

std::string_view to_string(Tdp_engine engine)
{
    switch (engine) {
    case Tdp_engine::formula: return "formula";
    case Tdp_engine::spice: return "spice";
    case Tdp_engine::surrogate: return "surrogate";
    }
    return "unknown";
}

std::string_view to_string(Twp_engine engine)
{
    switch (engine) {
    case Twp_engine::spice: return "spice";
    case Twp_engine::formula: return "formula";
    case Twp_engine::surrogate: return "surrogate";
    }
    return "unknown";
}

Result_table::Result_table(Metric metric, std::vector<Query_case> cases,
                           std::vector<Row_value> rows)
    : metric_(metric), cases_(std::move(cases)), rows_(std::move(rows))
{
    util::expects(cases_.size() == rows_.size(),
                  "result table rows must match the query cases");
}

const Query_case& Result_table::axes(std::size_t i) const
{
    util::expects(i < cases_.size(), "result row index out of range");
    return cases_[i];
}

const Row_value& Result_table::raw(std::size_t i) const
{
    util::expects(i < rows_.size(), "result row index out of range");
    return rows_[i];
}

} // namespace mpsram::core
