// Content-addressed on-disk result cache (the persistence tier of the
// tentpole: compute once, reuse across processes).
//
// Layout: one JSON file per entry,
//
//     <dir>/v<serialization_version>/<kind>/<hex16-key>.json
//
// where <kind> names the artifact family ("query", "corner",
// "nominal_td", "nominal_tw", "nominal_disturb", "surface") and the key
// is the FNV-1a canonical hash from core/serialize.h.  Versioning the
// directory means a format bump orphans every old entry wholesale — stale
// entries are never misread, only ignored.
//
// Every file is an envelope {"version", "kind", "key", "checksum",
// "payload"}: load() re-verifies all four against the request and the
// FNV-1a digest of the payload's canonical dump, so a truncated,
// corrupted, renamed or cross-kind file degrades to a miss (recompute),
// never to a wrong result.
//
// Concurrency: writers go through util::write_file_atomic (unique temp +
// POSIX rename), so concurrent stores of the same key — including from
// independent shard processes — leave exactly one valid entry and readers
// never observe a torn file.  Results are safe to share this way because
// of the determinism contract (core/session.h): a result is a pure
// function of the canonical key material, bitwise identical at any thread
// count, so whichever writer wins the rename race wrote the same bytes.
//
// Mode policy (MPSRAM_CACHE): `off` disables the cache entirely, `read`
// consumes existing entries but never writes (shared read-only caches,
// e.g. a CI artifact), `readwrite` (default) does both.  The directory
// comes from Cache_options or the MPSRAM_CACHE_DIR pin; with no directory
// configured the cache is off regardless of mode.
#ifndef MPSRAM_CORE_RESULT_CACHE_H
#define MPSRAM_CORE_RESULT_CACHE_H

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/json.h"

namespace mpsram::core {

enum class Cache_mode { off, read, readwrite };

/// Parse a cache-mode token ('off', 'read' or 'readwrite').  Any other
/// value throws util::Precondition_error naming the offending value and
/// the accepted set.  Exposed separately from default_cache_mode() so the
/// rejection path is unit-testable (the default is memoized per process).
Cache_mode parse_cache_mode(std::string_view text);

/// Process-wide default cache mode: Cache_mode::readwrite, overridable
/// once per process with MPSRAM_CACHE=off|read|readwrite.  Invalid values
/// throw via parse_cache_mode.
Cache_mode default_cache_mode();

/// Validate a cache-directory pin.  An empty value throws
/// util::Precondition_error naming MPSRAM_CACHE_DIR (an empty pin is a
/// configuration bug, not "no cache" — unset the variable for that).
std::string parse_cache_dir(std::string_view text);

/// Process-wide default cache directory from MPSRAM_CACHE_DIR; nullopt
/// when the variable is unset (no cache unless Cache_options names one).
const std::optional<std::string>& default_cache_dir();

const char* to_string(Cache_mode mode);

/// Per-session cache policy (core::Study_options).  Unset fields fall
/// back to the environment pins above.  Deliberately NOT part of the
/// configuration fingerprint: a cached and an uncached run of the same
/// study must produce the same canonical keys.
///
/// `directory` is a plain string with "" meaning unset (fall back to
/// MPSRAM_CACHE_DIR) — deliberately not optional<string>: an engaged
/// empty pin is rejected by parse_cache_dir anyway, and GCC 12 raises a
/// maybe-uninitialized false positive at -O3 on every by-value copy of a
/// struct holding an unengaged optional<string>.
struct Cache_options {
    std::optional<Cache_mode> mode;
    std::string directory;
};

/// Monotonic cache traffic counters.  A process-wide aggregate (across
/// every session, for bench metadata) is kept alongside the per-instance
/// ones; see process_cache_stats().
struct Cache_stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;
};

class Result_cache {
public:
    /// `directory` is created lazily on first store.  `version` selects
    /// the layout subdirectory (tests bump it to prove invalidation).
    Result_cache(std::string directory, Cache_mode mode,
                 std::uint64_t version);

    Cache_mode mode() const { return mode_; }
    const std::string& directory() const { return directory_; }

    /// Fetch the payload stored under (kind, key); nullopt on any miss —
    /// absent, unreadable, malformed, wrong version/kind/key, or checksum
    /// mismatch.  Counts exactly one hit or one miss per call (except in
    /// Cache_mode::off, where nothing is counted).
    std::optional<util::Json> load(std::string_view kind,
                                   std::uint64_t key);

    /// Persist `payload` under (kind, key).  No-op in Cache_mode::read
    /// (not counted); atomic (temp + rename) in readwrite, so concurrent
    /// writers of one key leave one valid entry.
    void store(std::string_view kind, std::uint64_t key,
               const util::Json& payload);

    std::uint64_t hit_count() const { return hits_.load(); }
    std::uint64_t miss_count() const { return misses_.load(); }
    std::uint64_t store_count() const { return stores_.load(); }

private:
    std::string entry_path(std::string_view kind, std::uint64_t key) const;

    std::string directory_;
    Cache_mode mode_;
    std::uint64_t version_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> stores_{0};
};

/// Aggregate cache traffic of every Result_cache in this process (bench
/// metadata: BENCH_*.json report these next to their timings).
Cache_stats process_cache_stats();

// --- offline garbage collection ----------------------------------------------
// `mpsram_shard cache-gc` drives this: a cache directory grows without
// bound (every new query key is a new file), so long-lived caches need an
// offline sweep.  GC never touches entry CONTENT — an entry is either
// kept verbatim or unlinked — so a post-GC cache serves exactly the bytes
// a pre-GC cache would have.

struct Gc_options {
    /// Size bound on the surviving entries.  Unset: no eviction, the
    /// sweep only deletes corrupt envelopes.
    std::optional<std::uint64_t> max_bytes;
};

struct Gc_stats {
    std::size_t entries = 0;          ///< valid entries surviving the GC
    std::size_t corrupt_deleted = 0;  ///< damaged envelopes unlinked
    std::size_t evicted = 0;          ///< valid entries unlinked for size
    std::uint64_t bytes_before = 0;   ///< entry bytes found (corrupt incl.)
    std::uint64_t bytes_after = 0;    ///< entry bytes surviving
};

/// Sweep a cache directory (every version/kind subdirectory):
///
///   1. Delete corrupt envelopes on sight — unparseable, checksum
///      mismatch, or a key/kind disagreeing with the file's own path.
///      (load() would treat each as a miss forever; the file is pure
///      waste.)
///   2. When `max_bytes` is set, evict valid entries oldest-mtime-first
///      (path as the deterministic tie-break) until the survivors fit.
///
/// Concurrent writers stay safe: stores are atomic renames, so the sweep
/// sees each entry either complete or not at all, and deleting an entry
/// a session holds open cannot tear it (POSIX unlink).  A directory with
/// no entries is fine (zero stats); a nonexistent directory throws.
Gc_stats gc_result_cache(const std::string& directory,
                         const Gc_options& options = {});

} // namespace mpsram::core

#endif // MPSRAM_CORE_RESULT_CACHE_H
