#include "core/runner.h"

#include <memory>
#include <utility>

#include "util/contracts.h"
#include "util/thread_pool.h"

namespace mpsram::core {

int Runner_options::resolved_threads() const
{
    return threads <= 0 ? util::Thread_pool::hardware_threads() : threads;
}

void Run_plan::add(Job job)
{
    util::expects(static_cast<bool>(job), "Run_plan jobs must be callable");
    jobs_.push_back(std::move(job));
}

void Run_plan::add_indexed(
    std::size_t count,
    std::function<void(std::size_t, const Run_context&)> body)
{
    util::expects(static_cast<bool>(body), "Run_plan jobs must be callable");
    const auto shared =
        std::make_shared<std::function<void(std::size_t, const Run_context&)>>(
            std::move(body));
    for (std::size_t i = 0; i < count; ++i) {
        jobs_.push_back([shared, i](const Run_context& ctx) {
            (*shared)(i, ctx);
        });
    }
}

void run_indexed(
    std::size_t count,
    const std::function<void(std::size_t, const Run_context&)>& body,
    const Runner_options& opts)
{
    if (count == 0) return;
    const int threads = opts.resolved_threads();

    if (threads == 1) {
        Run_context ctx;
        for (std::size_t i = 0; i < count; ++i) {
            ctx.job_index = i;
            body(i, ctx);
        }
        return;
    }

    // One cached pool per calling thread, rebuilt only when the requested
    // width changes: repeated runner calls (a sweep of batch cases, one
    // corner search per option) reuse the same OS threads instead of
    // spawning and joining a fresh pool each time.  thread_local keeps
    // the non-reentrant pool off workers of an enclosing parallel loop.
    thread_local std::unique_ptr<util::Thread_pool> pool;
    if (!pool || pool->thread_count() != threads) {
        pool = std::make_unique<util::Thread_pool>(threads);
    }
    pool->parallel_for(count, opts.chunk,
                       [&body](std::size_t i, int worker) {
                           body(i, Run_context{i, worker});
                       });
}

void run(const Run_plan& plan, const Runner_options& opts)
{
    const auto& jobs = plan.jobs();
    run_indexed(
        jobs.size(),
        [&jobs](std::size_t i, const Run_context& ctx) { jobs[i](ctx); },
        opts);
}

} // namespace mpsram::core
