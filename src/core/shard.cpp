#include "core/shard.h"

#include <algorithm>
#include <utility>

#include "core/serialize.h"
#include "util/contracts.h"
#include "util/hash.h"

namespace mpsram::core {

std::vector<Shard_range> shard_plan(std::size_t case_count,
                                    std::size_t shards)
{
    util::expects(shards > 0, "a shard plan needs at least one shard");
    std::vector<Shard_range> plan;
    plan.reserve(shards);
    const std::size_t base = case_count / shards;
    const std::size_t extra = case_count % shards;
    std::size_t begin = 0;
    for (std::size_t i = 0; i < shards; ++i) {
        const std::size_t size = base + (i < extra ? 1 : 0);
        plan.push_back({begin, begin + size});
        begin += size;
    }
    return plan;
}

Shard_part run_shard(const Study_session& session, const Query& query,
                     Shard_range range, std::size_t index,
                     std::size_t count)
{
    util::expects(range.begin <= range.end &&
                      range.end <= query.cases.size(),
                  "shard range exceeds the query's case list");
    util::expects(index < count, "shard index exceeds the shard count");

    Query sub = query;
    sub.cases.assign(query.cases.begin() +
                         static_cast<std::ptrdiff_t>(range.begin),
                     query.cases.begin() +
                         static_cast<std::ptrdiff_t>(range.end));

    Shard_part part;
    part.query_hash = query_key(session, query);
    part.index = index;
    part.count = count;
    part.range = range;
    part.table = session.run(sub);
    return part;
}

util::Json json_of_shard_part(const Shard_part& part)
{
    util::Json j;
    j.set("kind", "shard_part");
    j.set("version", serialization_version);
    j.set("query_hash", util::hex16(part.query_hash));
    j.set("index", static_cast<std::uint64_t>(part.index));
    j.set("count", static_cast<std::uint64_t>(part.count));
    j.set("begin", static_cast<std::uint64_t>(part.range.begin));
    j.set("end", static_cast<std::uint64_t>(part.range.end));
    j.set("table", json_of_result_table(part.table));
    return j;
}

Shard_part shard_part_of_json(const util::Json& j)
{
    util::expects(j.at("kind").as_string() == "shard_part",
                  "not a shard-part envelope");
    util::expects(j.at("version").as_u64() == serialization_version,
                  "shard-part serialization version mismatch");
    Shard_part part;
    std::uint64_t hash = 0;
    const std::string& hex = j.at("query_hash").as_string();
    util::expects(hex.size() == 16, "malformed shard-part query hash");
    for (const char c : hex) {
        const int digit = c >= '0' && c <= '9'   ? c - '0'
                          : c >= 'a' && c <= 'f' ? c - 'a' + 10
                                                 : -1;
        util::expects(digit >= 0, "malformed shard-part query hash");
        hash = hash << 4 | static_cast<std::uint64_t>(digit);
    }
    part.query_hash = hash;
    part.index = static_cast<std::size_t>(j.at("index").as_u64());
    part.count = static_cast<std::size_t>(j.at("count").as_u64());
    part.range.begin = static_cast<std::size_t>(j.at("begin").as_u64());
    part.range.end = static_cast<std::size_t>(j.at("end").as_u64());
    part.table = result_table_of_json(j.at("table"));
    return part;
}

Result_table merge_shard_parts(std::uint64_t query_hash,
                               std::size_t case_count,
                               std::vector<Shard_part> parts)
{
    util::expects(!parts.empty(), "merging zero shard parts");
    std::sort(parts.begin(), parts.end(),
              [](const Shard_part& a, const Shard_part& b) {
                  return a.range.begin < b.range.begin;
              });

    const Metric metric = parts.front().table.metric();
    std::vector<Query_case> cases;
    std::vector<Row_value> rows;
    cases.reserve(case_count);
    rows.reserve(case_count);

    std::size_t next = 0;
    for (const Shard_part& part : parts) {
        util::expects(part.query_hash == query_hash,
                      "shard part answers a different query (canonical "
                      "hash mismatch)");
        util::expects(part.table.metric() == metric,
                      "shard parts disagree on the metric");
        util::expects(part.range.begin == next,
                      "shard ranges do not tile the case list (gap or "
                      "overlap)");
        util::expects(part.table.size() == part.range.size(),
                      "shard table size does not match its range");
        for (std::size_t i = 0; i < part.table.size(); ++i) {
            cases.push_back(part.table.axes(i));
            rows.push_back(part.table.raw(i));
        }
        next = part.range.end;
    }
    util::expects(next == case_count,
                  "shard ranges do not cover every case");
    return Result_table(metric, std::move(cases), std::move(rows));
}

} // namespace mpsram::core
