#include "core/study.h"

#include "analytic/params.h"
#include "pattern/engine.h"
#include "sram/netlist_builder.h"
#include "util/contracts.h"

namespace mpsram::core {

Variability_study::Variability_study(tech::Technology tech,
                                     Study_options opts)
    : tech_(std::move(tech)),
      opts_(opts),
      extractor_(std::make_unique<extract::Extractor>(tech_.metal1,
                                                      opts.extraction)),
      cell_(sram::Cell_electrical::n10(tech_.feol))
{
    if (opts_.array.victim_pair < 0) {
        // The paper's LE3 worst case (Table I) perturbs only masks B and C:
        // the victim bit line itself is on the alignment reference mask A.
        // With 4 tracks per pair and cyclic 3-coloring, pairs 0/3/6/9 have
        // mask-A bit lines; pick the interior one nearest the center.
        opts_.array.victim_pair = 6;
    }
}

tech::Technology Variability_study::tech_with_ol(double ol_3sigma) const
{
    tech::Technology t = tech_;
    if (ol_3sigma >= 0.0) t.variability.le3_ol_3sigma = ol_3sigma;
    return t;
}

geom::Wire_array Variability_study::decomposed_array(
    tech::Patterning_option option, int word_lines, double ol_3sigma) const
{
    sram::Array_config cfg = opts_.array;
    cfg.word_lines = word_lines;
    const tech::Technology t = tech_with_ol(ol_3sigma);
    const auto engine = pattern::make_engine(option, t);
    return engine->decompose(sram::build_metal1_array(t, cfg));
}

Variability_study::Worst_case_row Variability_study::worst_case(
    tech::Patterning_option option, double ol_3sigma,
    const Runner_options& runner) const
{
    const auto full = worst_case_cached(option, opts_.array.word_lines,
                                        ol_3sigma, runner);

    const tech::Technology t = tech_with_ol(ol_3sigma);
    const auto engine = pattern::make_engine(option, t);

    Worst_case_row row;
    row.option = option;
    row.corner = full->corner.describe(*engine);
    row.cbl_percent = full->variation.c_percent();
    row.rbl_percent = full->variation.r_percent();
    row.vss_r_percent = (full->vss_r_factor - 1.0) * 100.0;
    return row;
}

mc::Worst_case_result Variability_study::worst_case_full(
    tech::Patterning_option option, int word_lines, double ol_3sigma,
    const Runner_options& runner) const
{
    return *worst_case_cached(option, word_lines, ol_3sigma, runner);
}

std::shared_ptr<const mc::Worst_case_result>
Variability_study::worst_case_cached(tech::Patterning_option option,
                                     int word_lines, double ol_3sigma,
                                     const Runner_options& runner) const
{
    // Every "use the technology default" request shares one memo slot.
    const Wc_key key{option, word_lines, ol_3sigma < 0.0 ? -1.0 : ol_3sigma};

    std::promise<std::shared_ptr<const mc::Worst_case_result>> promise;
    Wc_entry entry;
    bool owner = false;
    {
        const std::lock_guard<std::mutex> lock(wc_cache_mutex_);
        const auto it = wc_cache_.find(key);
        if (it != wc_cache_.end()) {
            entry = it->second;
        } else {
            entry = promise.get_future().share();
            wc_cache_.emplace(key, entry);
            owner = true;
        }
    }

    if (owner) {
        // The enumeration runs outside the lock; concurrent callers of the
        // same key block on the shared future instead of duplicating it.
        try {
            corner_searches_.fetch_add(1, std::memory_order_relaxed);

            sram::Array_config cfg = opts_.array;
            cfg.word_lines = word_lines;
            const tech::Technology t = tech_with_ol(ol_3sigma);
            const auto engine = pattern::make_engine(option, t);
            const geom::Wire_array nominal =
                engine->decompose(sram::build_metal1_array(t, cfg));
            const sram::Victim_wires victims =
                sram::find_victim_wires(nominal, cfg);
            promise.set_value(std::make_shared<const mc::Worst_case_result>(
                mc::find_worst_case(*engine, *extractor_, nominal,
                                    victims.bl, victims.vss, 3, runner)));
        } catch (...) {
            // Un-publish the failed slot so a later call can retry, then
            // propagate to every waiter (and to this caller via get()).
            {
                const std::lock_guard<std::mutex> lock(wc_cache_mutex_);
                wc_cache_.erase(key);
            }
            promise.set_exception(std::current_exception());
        }
    }
    return entry.get();
}

std::vector<Variability_study::Worst_case_row>
Variability_study::worst_case_all_options(const Runner_options& runner,
                                          double ol_3sigma) const
{
    std::vector<Worst_case_row> rows;
    rows.reserve(std::size(tech::all_patterning_options));
    for (const tech::Patterning_option option :
         tech::all_patterning_options) {
        rows.push_back(worst_case(option, ol_3sigma, runner));
    }
    return rows;
}

double Variability_study::simulate_td(const sram::Bitline_electrical& wires,
                                      int word_lines) const
{
    sram::Read_sim_context sim;
    return simulate_td_on(wires, word_lines, sim);
}

double Variability_study::simulate_td_on(
    const sram::Bitline_electrical& wires, int word_lines,
    sram::Read_sim_context& sim) const
{
    sram::Array_config cfg = opts_.array;
    cfg.word_lines = word_lines;
    const sram::Read_result r = sim.simulate(
        tech_, cell_, wires, cfg, opts_.timing, opts_.netlist, opts_.read);
    util::ensures(r.crossed,
                  "read simulation never reached the sense margin");
    return r.td;
}

sram::Bitline_electrical Variability_study::nominal_wires(
    int word_lines) const
{
    sram::Array_config cfg = opts_.array;
    cfg.word_lines = word_lines;
    // Nominal geometry needs no patterning engine: use EUV decomposition
    // (single mask) with a zero sample == drawn layout.
    const geom::Wire_array nominal =
        decomposed_array(tech::Patterning_option::euv, word_lines);
    return sram::roll_up_nominal(*extractor_, nominal, tech_, cfg);
}

double Variability_study::nominal_td_spice(int word_lines,
                                           sram::Read_sim_context* sim) const
{
    {
        const std::lock_guard<std::mutex> lock(nominal_cache_mutex_);
        const auto it = td_nominal_cache_.find(word_lines);
        if (it != td_nominal_cache_.end()) return it->second;
    }

    const sram::Bitline_electrical wires = nominal_wires(word_lines);
    // The simulation runs outside the lock: two threads racing on the same
    // word_lines redundantly compute the same deterministic value, which
    // beats serializing every caller behind a SPICE transient.
    const double td = sim ? simulate_td_on(wires, word_lines, *sim)
                          : simulate_td(wires, word_lines);
    const std::lock_guard<std::mutex> lock(nominal_cache_mutex_);
    td_nominal_cache_.emplace(word_lines, td);
    return td;
}

Variability_study::Read_row Variability_study::worst_case_read(
    tech::Patterning_option option, int word_lines) const
{
    sram::Read_sim_context sim;
    return worst_case_read_on(option, word_lines, -1.0, sim);
}

Variability_study::Read_row Variability_study::worst_case_read_on(
    tech::Patterning_option option, int word_lines, double ol_3sigma,
    sram::Read_sim_context& sim) const
{
    sram::Array_config cfg = opts_.array;
    cfg.word_lines = word_lines;

    const auto wc = worst_case_cached(option, word_lines, ol_3sigma, {});
    const geom::Wire_array nominal =
        decomposed_array(option, word_lines, ol_3sigma);
    const sram::Bitline_electrical wires = sram::roll_up_bitline(
        *extractor_, nominal, wc->realized, tech_, cfg);

    Read_row row;
    row.td_nominal = nominal_td_spice(word_lines, &sim);
    row.td_varied = simulate_td_on(wires, word_lines, sim);
    row.tdp_percent = (row.td_varied / row.td_nominal - 1.0) * 100.0;
    return row;
}

template <class Context>
void Variability_study::run_with_sim_contexts(
    std::size_t count, const Runner_options& runner,
    const std::function<void(std::size_t, Context&)>& job) const
{
    // One simulation context per worker: the netlist and solver workspace
    // are rebuilt only when a worker moves to a different array length.
    std::vector<Context> sims(
        static_cast<std::size_t>(runner.resolved_threads()));

    Run_plan plan;
    plan.add_indexed(count, [&](std::size_t i, const Run_context& ctx) {
        job(i, sims[static_cast<std::size_t>(ctx.worker)]);
    });
    run(plan, runner);
}

std::vector<Variability_study::Read_row> Variability_study::read_sweep(
    tech::Patterning_option option, std::span<const int> word_lines,
    const Runner_options& runner) const
{
    std::vector<Read_row> rows(word_lines.size());
    run_with_sim_contexts<sram::Read_sim_context>(
        word_lines.size(), runner,
        [&](std::size_t i, sram::Read_sim_context& sim) {
            rows[i] = worst_case_read_on(option, word_lines[i], -1.0, sim);
        });
    return rows;
}

analytic::Td_params Variability_study::formula_params(int word_lines) const
{
    return analytic::derive_params(tech_, cell_, nominal_wires(word_lines));
}

Variability_study::Nominal_td_row Variability_study::nominal_td(
    int word_lines) const
{
    Nominal_td_row row;
    row.td_simulation = nominal_td_spice(word_lines);
    row.td_formula =
        analytic::td_lumped(formula_params(word_lines), word_lines);
    return row;
}

std::vector<Variability_study::Nominal_td_row>
Variability_study::nominal_td_batch(std::span<const int> word_lines,
                                    const Runner_options& runner) const
{
    std::vector<Nominal_td_row> rows(word_lines.size());
    run_with_sim_contexts<sram::Read_sim_context>(
        word_lines.size(), runner,
        [&](std::size_t i, sram::Read_sim_context& sim) {
            Nominal_td_row row;
            row.td_simulation = nominal_td_spice(word_lines[i], &sim);
            row.td_formula = analytic::td_lumped(
                formula_params(word_lines[i]), word_lines[i]);
            rows[i] = row;
        });
    return rows;
}

Variability_study::Tdp_row Variability_study::worst_case_tdp(
    tech::Patterning_option option, int word_lines) const
{
    sram::Read_sim_context sim;
    return worst_case_tdp_on(option, word_lines, -1.0, sim);
}

Variability_study::Tdp_row Variability_study::worst_case_tdp_on(
    tech::Patterning_option option, int word_lines, double ol_3sigma,
    sram::Read_sim_context& sim) const
{
    // One memoized search serves both the simulated read (worst-corner
    // geometry) and the formula (R/C factors) — the seed enumerated the
    // same corners twice per Table III cell.
    const auto wc = worst_case_cached(option, word_lines, ol_3sigma, {});
    const Read_row read =
        worst_case_read_on(option, word_lines, ol_3sigma, sim);

    Tdp_row row;
    row.tdp_simulation = read.tdp_percent;
    row.tdp_formula = analytic::tdp_percent(
        formula_params(word_lines), word_lines, wc->variation.r_factor,
        wc->variation.c_factor);
    return row;
}

std::vector<Variability_study::Tdp_row>
Variability_study::worst_case_tdp_batch(std::span<const Tdp_case> cases,
                                        const Runner_options& runner) const
{
    std::vector<Tdp_row> rows(cases.size());
    run_with_sim_contexts<sram::Read_sim_context>(
        cases.size(), runner,
        [&](std::size_t i, sram::Read_sim_context& sim) {
            rows[i] = worst_case_tdp_on(cases[i].option,
                                        cases[i].word_lines,
                                        cases[i].ol_3sigma, sim);
        });
    return rows;
}

mc::Tdp_distribution Variability_study::mc_tdp(
    tech::Patterning_option option, int word_lines,
    const mc::Distribution_options& mc_opts, double ol_3sigma) const
{
    sram::Array_config cfg = opts_.array;
    cfg.word_lines = word_lines;
    const tech::Technology t = tech_with_ol(ol_3sigma);
    const auto engine = pattern::make_engine(option, t);
    const geom::Wire_array nominal =
        engine->decompose(sram::build_metal1_array(t, cfg));
    const sram::Victim_wires victims = sram::find_victim_wires(nominal, cfg);

    return mc::tdp_distribution(*engine, *extractor_, nominal, victims.bl,
                                formula_params(word_lines), word_lines,
                                mc_opts);
}

std::vector<mc::Tdp_distribution> Variability_study::mc_tdp_batch(
    std::span<const Mc_case> cases,
    const mc::Distribution_options& mc_opts) const
{
    // Parallelism lives inside each case's sample loop (samples outnumber
    // cases by orders of magnitude), so every case's distribution is the
    // same whether it runs alone or inside a sweep.
    std::vector<mc::Tdp_distribution> results;
    results.reserve(cases.size());
    for (const Mc_case& c : cases) {
        results.push_back(
            mc_tdp(c.option, c.word_lines, mc_opts, c.ol_3sigma));
    }
    return results;
}

// --- write extension ---------------------------------------------------------

double Variability_study::simulate_tw(const sram::Bitline_electrical& wires,
                                      int word_lines) const
{
    sram::Write_sim_context sim;
    return simulate_tw_on(wires, word_lines, sim);
}

double Variability_study::simulate_tw_on(
    const sram::Bitline_electrical& wires, int word_lines,
    sram::Write_sim_context& sim) const
{
    sram::Array_config cfg = opts_.array;
    cfg.word_lines = word_lines;
    const sram::Write_result r =
        sim.simulate(tech_, cell_, wires, cfg, opts_.write_timing,
                     opts_.netlist, opts_.write);
    util::ensures(r.flipped, "write simulation never flipped the cell");
    return r.tw;
}

double Variability_study::nominal_tw_spice(int word_lines,
                                           sram::Write_sim_context* sim) const
{
    {
        const std::lock_guard<std::mutex> lock(nominal_cache_mutex_);
        const auto it = tw_nominal_cache_.find(word_lines);
        if (it != tw_nominal_cache_.end()) return it->second;
    }

    const sram::Bitline_electrical wires = nominal_wires(word_lines);
    // Value-racy-but-deterministic, like the td memo: racing threads
    // redundantly compute one value instead of serializing behind a
    // transient.
    const double tw = sim ? simulate_tw_on(wires, word_lines, *sim)
                          : simulate_tw(wires, word_lines);
    const std::lock_guard<std::mutex> lock(nominal_cache_mutex_);
    tw_nominal_cache_.emplace(word_lines, tw);
    return tw;
}

double Variability_study::nominal_tw(int word_lines) const
{
    return nominal_tw_spice(word_lines);
}

std::vector<double> Variability_study::nominal_tw_batch(
    std::span<const int> word_lines, const Runner_options& runner) const
{
    std::vector<double> rows(word_lines.size());
    run_with_sim_contexts<sram::Write_sim_context>(
        word_lines.size(), runner,
        [&](std::size_t i, sram::Write_sim_context& sim) {
            rows[i] = nominal_tw_spice(word_lines[i], &sim);
        });
    return rows;
}

Variability_study::Write_row Variability_study::worst_case_tw(
    tech::Patterning_option option, int word_lines) const
{
    sram::Write_sim_context sim;
    return worst_case_tw_on(option, word_lines, -1.0, sim);
}

Variability_study::Write_row Variability_study::worst_case_tw_on(
    tech::Patterning_option option, int word_lines, double ol_3sigma,
    sram::Write_sim_context& sim) const
{
    sram::Array_config cfg = opts_.array;
    cfg.word_lines = word_lines;

    // Same memoized enumeration as the read paths: the worst write corner
    // is the RC-maximizing corner of the column the driver must discharge.
    const auto wc = worst_case_cached(option, word_lines, ol_3sigma, {});
    const geom::Wire_array nominal =
        decomposed_array(option, word_lines, ol_3sigma);
    const sram::Bitline_electrical wires = sram::roll_up_bitline(
        *extractor_, nominal, wc->realized, tech_, cfg);

    Write_row row;
    row.tw_nominal = nominal_tw_spice(word_lines, &sim);
    row.tw_varied = simulate_tw_on(wires, word_lines, sim);
    row.twp_percent = (row.tw_varied / row.tw_nominal - 1.0) * 100.0;
    return row;
}

std::vector<Variability_study::Write_row> Variability_study::write_sweep(
    tech::Patterning_option option, std::span<const int> word_lines,
    const Runner_options& runner) const
{
    std::vector<Write_row> rows(word_lines.size());
    run_with_sim_contexts<sram::Write_sim_context>(
        word_lines.size(), runner,
        [&](std::size_t i, sram::Write_sim_context& sim) {
            rows[i] = worst_case_tw_on(option, word_lines[i], -1.0, sim);
        });
    return rows;
}

mc::Tdp_distribution Variability_study::mc_twp(
    tech::Patterning_option option, int word_lines,
    const mc::Distribution_options& mc_opts, double ol_3sigma) const
{
    sram::Array_config cfg = opts_.array;
    cfg.word_lines = word_lines;
    const tech::Technology t = tech_with_ol(ol_3sigma);
    const auto engine = pattern::make_engine(option, t);
    const geom::Wire_array nominal =
        engine->decompose(sram::build_metal1_array(t, cfg));
    const sram::Victim_wires victims = sram::find_victim_wires(nominal, cfg);

    const double tw_nom = nominal_tw_spice(word_lines);

    // SPICE-in-the-loop metric: roll up each sample's realized geometry
    // and simulate its write on the per-worker context.  A non-flipping
    // sample yields tw = NaN, which flows into a NaN twp instead of
    // aborting the sweep.
    std::vector<sram::Write_sim_context> sims(
        static_cast<std::size_t>(mc_opts.runner.resolved_threads()));
    const auto metric = [&](const geom::Wire_array& realized,
                            const extract::Rc_variation&,
                            const core::Run_context& ctx) {
        const sram::Bitline_electrical wires = sram::roll_up_bitline(
            *extractor_, nominal, realized, tech_, cfg);
        const sram::Write_result r =
            sims[static_cast<std::size_t>(ctx.worker)].simulate(
                tech_, cell_, wires, cfg, opts_.write_timing, opts_.netlist,
                opts_.write);
        return (r.tw / tw_nom - 1.0) * 100.0;
    };
    return mc::metric_distribution(*engine, *extractor_, nominal,
                                   victims.bl, metric, mc_opts);
}

std::vector<mc::Tdp_distribution> Variability_study::mc_twp_batch(
    std::span<const Mc_case> cases,
    const mc::Distribution_options& mc_opts) const
{
    // Same shape as mc_tdp_batch: parallelism lives inside each case's
    // sample loop, so every case's distribution is independent of the
    // sweep composition.
    std::vector<mc::Tdp_distribution> results;
    results.reserve(cases.size());
    for (const Mc_case& c : cases) {
        results.push_back(
            mc_twp(c.option, c.word_lines, mc_opts, c.ol_3sigma));
    }
    return results;
}

} // namespace mpsram::core
