#include "core/study.h"

namespace mpsram::core {

Variability_study::Variability_study(tech::Technology tech,
                                     Study_options opts)
    : session_(std::make_unique<Study_session>(std::move(tech), opts))
{
}

template <class Row>
Row Variability_study::run_single(Query query) const
{
    return session_->run(query).as<Row>(0);
}

Variability_study::Worst_case_row Variability_study::worst_case(
    tech::Patterning_option option, double ol_3sigma,
    const Runner_options& runner) const
{
    return run_single<Worst_case_row>(
        Query(Metric::worst_case_rc)
            .with_case({option, 0, ol_3sigma})
            .on(runner));
}

std::vector<Variability_study::Worst_case_row>
Variability_study::worst_case_all_options(double ol_3sigma,
                                          const Runner_options& runner) const
{
    return session_
        ->run(Query(Metric::worst_case_rc)
                  .over_options(tech::all_patterning_options, 0, ol_3sigma)
                  .on(runner))
        .column<Worst_case_row>();
}

Variability_study::Read_row Variability_study::worst_case_read(
    tech::Patterning_option option, int word_lines) const
{
    return run_single<Read_row>(
        Query(Metric::read_td).with_case({option, word_lines}));
}

std::vector<Variability_study::Read_row> Variability_study::read_sweep(
    tech::Patterning_option option, std::span<const int> word_lines,
    const Runner_options& runner) const
{
    return session_
        ->run(Query(Metric::read_td)
                  .over_word_lines(option, word_lines)
                  .on(runner))
        .column<Read_row>();
}

Variability_study::Nominal_td_row Variability_study::nominal_td(
    int word_lines) const
{
    return run_single<Nominal_td_row>(
        Query(Metric::nominal_td)
            .with_case({tech::Patterning_option::euv, word_lines}));
}

std::vector<Variability_study::Nominal_td_row>
Variability_study::nominal_td_batch(std::span<const int> word_lines,
                                    const Runner_options& runner) const
{
    return session_
        ->run(Query(Metric::nominal_td)
                  .over_word_lines(tech::Patterning_option::euv, word_lines)
                  .on(runner))
        .column<Nominal_td_row>();
}

Variability_study::Tdp_row Variability_study::worst_case_tdp(
    tech::Patterning_option option, int word_lines) const
{
    return run_single<Tdp_row>(
        Query(Metric::worst_case_tdp).with_case({option, word_lines}));
}

std::vector<Variability_study::Tdp_row>
Variability_study::worst_case_tdp_batch(std::span<const Tdp_case> cases,
                                        const Runner_options& runner) const
{
    Query query(Metric::worst_case_tdp);
    query.cases.assign(cases.begin(), cases.end());
    return session_->run(query.on(runner)).column<Tdp_row>();
}

mc::Tdp_distribution Variability_study::mc_tdp(
    tech::Patterning_option option, int word_lines,
    const mc::Distribution_options& mc_opts, double ol_3sigma) const
{
    return run_single<mc::Tdp_distribution>(
        Query(Metric::mc_tdp)
            .with_case({option, word_lines, ol_3sigma})
            .with_mc(mc_opts));
}

std::vector<mc::Tdp_distribution> Variability_study::mc_tdp_batch(
    std::span<const Mc_case> cases,
    const mc::Distribution_options& mc_opts) const
{
    Query query(Metric::mc_tdp);
    query.cases.assign(cases.begin(), cases.end());
    return session_->run(query.with_mc(mc_opts))
        .column<mc::Tdp_distribution>();
}

Variability_study::Write_row Variability_study::worst_case_tw(
    tech::Patterning_option option, int word_lines) const
{
    return run_single<Write_row>(
        Query(Metric::write_tw).with_case({option, word_lines}));
}

std::vector<Variability_study::Write_row> Variability_study::write_sweep(
    tech::Patterning_option option, std::span<const int> word_lines,
    const Runner_options& runner) const
{
    return session_
        ->run(Query(Metric::write_tw)
                  .over_word_lines(option, word_lines)
                  .on(runner))
        .column<Write_row>();
}

double Variability_study::nominal_tw(int word_lines) const
{
    return run_single<Nominal_tw_row>(
               Query(Metric::nominal_tw)
                   .with_case({tech::Patterning_option::euv, word_lines}))
        .tw_simulation;
}

std::vector<double> Variability_study::nominal_tw_batch(
    std::span<const int> word_lines, const Runner_options& runner) const
{
    const Result_table table = session_->run(
        Query(Metric::nominal_tw)
            .over_word_lines(tech::Patterning_option::euv, word_lines)
            .on(runner));
    std::vector<double> rows;
    rows.reserve(table.size());
    for (std::size_t i = 0; i < table.size(); ++i) {
        rows.push_back(table.as<Nominal_tw_row>(i).tw_simulation);
    }
    return rows;
}

mc::Tdp_distribution Variability_study::mc_twp(
    tech::Patterning_option option, int word_lines,
    const mc::Distribution_options& mc_opts, double ol_3sigma) const
{
    return run_single<mc::Tdp_distribution>(
        Query(Metric::mc_twp)
            .with_case({option, word_lines, ol_3sigma})
            .with_mc(mc_opts));
}

std::vector<mc::Tdp_distribution> Variability_study::mc_twp_batch(
    std::span<const Mc_case> cases,
    const mc::Distribution_options& mc_opts) const
{
    Query query(Metric::mc_twp);
    query.cases.assign(cases.begin(), cases.end());
    return session_->run(query.with_mc(mc_opts))
        .column<mc::Tdp_distribution>();
}

} // namespace mpsram::core
