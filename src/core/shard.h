// Shard executor: split one query's case list into k contiguous index
// ranges, run each range as an independent process (or session), and
// merge the partial Result_tables back into the single-process answer.
//
// Determinism argument for the merge: run() computes row i as a pure
// function of case i and the session configuration — one job per case,
// each writing only its own slot, randomized metrics keyed on sample
// indices (core/session.h).  A shard therefore computes exactly the rows
// of its range, bit for bit, that the single process would have computed
// at those indices, and merging is pure concatenation in range order —
// no reductions, no reordering, no arithmetic.  merge_shard_parts()
// checks the preconditions that make that argument sound: every part
// answers the same canonical query (query_key match) and the ranges tile
// [0, case_count) exactly.
//
// The process-level driver is tools/mpsram_shard (emit / run / merge /
// exec subcommands); this header is the library seam it and the tests
// share.
#ifndef MPSRAM_CORE_SHARD_H
#define MPSRAM_CORE_SHARD_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/query.h"
#include "core/session.h"
#include "util/json.h"

namespace mpsram::core {

/// Half-open case-index range [begin, end).
struct Shard_range {
    std::size_t begin = 0;
    std::size_t end = 0;

    std::size_t size() const { return end - begin; }
    bool operator==(const Shard_range&) const = default;
};

/// Split [0, case_count) into `shards` contiguous near-equal ranges (the
/// first case_count % shards ranges get one extra case; empty ranges are
/// legal when shards > case_count).  Deterministic tiling: concatenating
/// the ranges in order reproduces [0, case_count).
std::vector<Shard_range> shard_plan(std::size_t case_count,
                                    std::size_t shards);

/// One shard's answer: enough context to validate a merge.
struct Shard_part {
    std::uint64_t query_hash = 0;  ///< query_key of the FULL query
    std::size_t index = 0;         ///< this shard's position, < count
    std::size_t count = 0;         ///< total shards of the split
    Shard_range range;             ///< case indices this part answers
    Result_table table;            ///< rows of exactly that range
};

/// Run the sub-query of `query` restricted to `range` on `session` and
/// wrap it as a merge-ready part.  `index` / `count` document the split.
Shard_part run_shard(const Study_session& session, const Query& query,
                     Shard_range range, std::size_t index,
                     std::size_t count);

/// Envelope round-trip for the part files the process driver exchanges.
util::Json json_of_shard_part(const Shard_part& part);
Shard_part shard_part_of_json(const util::Json& j);

/// Concatenate the parts of one split back into the full Result_table.
/// Parts may arrive in any order; they are assembled by range.  Throws
/// util::Precondition_error unless every part carries `query_hash` and
/// the ranges tile [0, case_count) exactly — the preconditions of the
/// determinism argument above.  The merged table is bitwise identical to
/// a single-process run of the full query.
Result_table merge_shard_parts(std::uint64_t query_hash,
                               std::size_t case_count,
                               std::vector<Shard_part> parts);

} // namespace mpsram::core

#endif // MPSRAM_CORE_SHARD_H
