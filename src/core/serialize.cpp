#include "core/serialize.h"

#include <utility>

#include "sram/solver_policy.h"
#include "util/contracts.h"
#include "util/hash.h"

namespace mpsram::core {

namespace {

using util::Json;
using util::Json_array;
using util::json_of_double;

// --- enum token helpers ------------------------------------------------------
// Dedicated parsers (not the env-pin parse_* functions) so a corrupted
// cache entry reports a serialization error, not a bogus environment
// message.

[[noreturn]] void bad_token(const char* what, const std::string& token)
{
    throw util::Precondition_error(std::string("unknown ") + what +
                                   " token '" + token + "'");
}

Metric metric_of_string(const std::string& s)
{
    for (int i = 0; i < 9; ++i) {
        const auto m = static_cast<Metric>(i);
        if (to_string(m) == s) return m;
    }
    bad_token("metric", s);
}

tech::Patterning_option option_of_string(const std::string& s)
{
    for (const auto option : tech::all_patterning_options) {
        if (tech::to_string(option) == s) return option;
    }
    bad_token("patterning option", s);
}

Tdp_engine tdp_engine_of_string(const std::string& s)
{
    for (const auto e : {Tdp_engine::formula, Tdp_engine::spice,
                         Tdp_engine::surrogate}) {
        if (to_string(e) == s) return e;
    }
    bad_token("tdp engine", s);
}

Twp_engine twp_engine_of_string(const std::string& s)
{
    for (const auto e : {Twp_engine::spice, Twp_engine::formula,
                         Twp_engine::surrogate}) {
        if (to_string(e) == s) return e;
    }
    bad_token("twp engine", s);
}

const char* string_of_sampling(mc::Sampling s)
{
    return s == mc::Sampling::latin_hypercube ? "latin_hypercube"
                                              : "pseudo_random";
}

mc::Sampling sampling_of_string(const std::string& s)
{
    if (s == "pseudo_random") return mc::Sampling::pseudo_random;
    if (s == "latin_hypercube") return mc::Sampling::latin_hypercube;
    bad_token("sampling scheme", s);
}

sram::Sim_accuracy accuracy_of_string(const std::string& s)
{
    if (s == "fast") return sram::Sim_accuracy::fast;
    if (s == "reference") return sram::Sim_accuracy::reference;
    bad_token("sim accuracy", s);
}

spice::Solver_policy solver_of_string(const std::string& s)
{
    for (const auto p : {spice::Solver_policy::direct,
                         spice::Solver_policy::bypass,
                         spice::Solver_policy::iterative}) {
        if (sram::to_string(p) == s) return p;
    }
    bad_token("solver policy", s);
}

const char* string_of_color(geom::Mask_color c)
{
    switch (c) {
    case geom::Mask_color::unassigned: return "unassigned";
    case geom::Mask_color::mask_a: return "mask_a";
    case geom::Mask_color::mask_b: return "mask_b";
    case geom::Mask_color::mask_c: return "mask_c";
    }
    return "unassigned";
}

geom::Mask_color color_of_string(const std::string& s)
{
    for (const auto c : {geom::Mask_color::unassigned,
                         geom::Mask_color::mask_a, geom::Mask_color::mask_b,
                         geom::Mask_color::mask_c}) {
        if (string_of_color(c) == s) return c;
    }
    bad_token("mask color", s);
}

const char* string_of_sadp(geom::Sadp_class c)
{
    switch (c) {
    case geom::Sadp_class::none: return "none";
    case geom::Sadp_class::mandrel: return "mandrel";
    case geom::Sadp_class::gap: return "gap";
    }
    return "none";
}

geom::Sadp_class sadp_of_string(const std::string& s)
{
    for (const auto c : {geom::Sadp_class::none, geom::Sadp_class::mandrel,
                         geom::Sadp_class::gap}) {
        if (string_of_sadp(c) == s) return c;
    }
    bad_token("sadp class", s);
}

int int_of_json(const Json& j)
{
    return static_cast<int>(j.as_double());
}

std::vector<double> doubles_of_json(const Json& j)
{
    std::vector<double> out;
    out.reserve(j.as_array().size());
    for (const Json& v : j.as_array()) out.push_back(double_of_json(v));
    return out;
}

Json json_of_doubles(const std::vector<double>& values)
{
    Json_array out;
    out.reserve(values.size());
    for (const double v : values) out.push_back(json_of_double(v));
    return Json(std::move(out));
}

// --- cases -------------------------------------------------------------------

Json json_of_case(const Query_case& c)
{
    Json j;
    j.set("option", tech::to_string(c.option));
    j.set("word_lines", c.word_lines);
    j.set("ol_3sigma", json_of_double(c.ol_3sigma));
    return j;
}

Query_case case_of_json(const Json& j)
{
    Query_case c;
    c.option = option_of_string(j.at("option").as_string());
    c.word_lines = int_of_json(j.at("word_lines"));
    c.ol_3sigma = double_of_json(j.at("ol_3sigma"));
    return c;
}

// --- rows --------------------------------------------------------------------

Json json_of_summary(const util::Sample_summary& s)
{
    Json j;
    j.set("count", static_cast<std::uint64_t>(s.count));
    j.set("mean", json_of_double(s.mean));
    j.set("stddev", json_of_double(s.stddev));
    j.set("min", json_of_double(s.min));
    j.set("max", json_of_double(s.max));
    j.set("median", json_of_double(s.median));
    j.set("p01", json_of_double(s.p01));
    j.set("p99", json_of_double(s.p99));
    return j;
}

util::Sample_summary summary_of_json(const Json& j)
{
    util::Sample_summary s;
    s.count = static_cast<std::size_t>(j.at("count").as_u64());
    s.mean = double_of_json(j.at("mean"));
    s.stddev = double_of_json(j.at("stddev"));
    s.min = double_of_json(j.at("min"));
    s.max = double_of_json(j.at("max"));
    s.median = double_of_json(j.at("median"));
    s.p01 = double_of_json(j.at("p01"));
    s.p99 = double_of_json(j.at("p99"));
    return s;
}

struct Row_writer {
    Json operator()(const Worst_case_row& r) const
    {
        Json j;
        j.set("type", "worst_case");
        j.set("option", tech::to_string(r.option));
        j.set("corner", r.corner);
        j.set("cbl_percent", json_of_double(r.cbl_percent));
        j.set("rbl_percent", json_of_double(r.rbl_percent));
        j.set("vss_r_percent", json_of_double(r.vss_r_percent));
        return j;
    }
    Json operator()(const Read_row& r) const
    {
        Json j;
        j.set("type", "read");
        j.set("td_nominal", json_of_double(r.td_nominal));
        j.set("td_varied", json_of_double(r.td_varied));
        j.set("tdp_percent", json_of_double(r.tdp_percent));
        return j;
    }
    Json operator()(const Nominal_td_row& r) const
    {
        Json j;
        j.set("type", "nominal_td");
        j.set("td_simulation", json_of_double(r.td_simulation));
        j.set("td_formula", json_of_double(r.td_formula));
        return j;
    }
    Json operator()(const Tdp_row& r) const
    {
        Json j;
        j.set("type", "worst_case_tdp");
        j.set("tdp_simulation", json_of_double(r.tdp_simulation));
        j.set("tdp_formula", json_of_double(r.tdp_formula));
        return j;
    }
    Json operator()(const Write_row& r) const
    {
        Json j;
        j.set("type", "write");
        j.set("tw_nominal", json_of_double(r.tw_nominal));
        j.set("tw_varied", json_of_double(r.tw_varied));
        j.set("twp_percent", json_of_double(r.twp_percent));
        return j;
    }
    Json operator()(const Nominal_tw_row& r) const
    {
        Json j;
        j.set("type", "nominal_tw");
        j.set("tw_simulation", json_of_double(r.tw_simulation));
        j.set("tw_formula", json_of_double(r.tw_formula));
        return j;
    }
    Json operator()(const Disturb_row& r) const
    {
        Json j;
        j.set("type", "disturb");
        j.set("v_bump_nominal", json_of_double(r.v_bump_nominal));
        j.set("v_bump_varied", json_of_double(r.v_bump_varied));
        j.set("disturb_percent", json_of_double(r.disturb_percent));
        return j;
    }
    Json operator()(const mc::Tdp_distribution& d) const
    {
        Json j;
        j.set("type", "distribution");
        j.set("tdp", json_of_doubles(d.tdp));
        j.set("rvar", json_of_doubles(d.rvar));
        j.set("cvar", json_of_doubles(d.cvar));
        j.set("summary", json_of_summary(d.summary));
        return j;
    }
};

Row_value row_of_json(const Json& j)
{
    const std::string& type = j.at("type").as_string();
    if (type == "worst_case") {
        Worst_case_row r;
        r.option = option_of_string(j.at("option").as_string());
        r.corner = j.at("corner").as_string();
        r.cbl_percent = double_of_json(j.at("cbl_percent"));
        r.rbl_percent = double_of_json(j.at("rbl_percent"));
        r.vss_r_percent = double_of_json(j.at("vss_r_percent"));
        return r;
    }
    if (type == "read") {
        Read_row r;
        r.td_nominal = double_of_json(j.at("td_nominal"));
        r.td_varied = double_of_json(j.at("td_varied"));
        r.tdp_percent = double_of_json(j.at("tdp_percent"));
        return r;
    }
    if (type == "nominal_td") {
        Nominal_td_row r;
        r.td_simulation = double_of_json(j.at("td_simulation"));
        r.td_formula = double_of_json(j.at("td_formula"));
        return r;
    }
    if (type == "worst_case_tdp") {
        Tdp_row r;
        r.tdp_simulation = double_of_json(j.at("tdp_simulation"));
        r.tdp_formula = double_of_json(j.at("tdp_formula"));
        return r;
    }
    if (type == "write") {
        Write_row r;
        r.tw_nominal = double_of_json(j.at("tw_nominal"));
        r.tw_varied = double_of_json(j.at("tw_varied"));
        r.twp_percent = double_of_json(j.at("twp_percent"));
        return r;
    }
    if (type == "nominal_tw") {
        Nominal_tw_row r;
        r.tw_simulation = double_of_json(j.at("tw_simulation"));
        r.tw_formula = double_of_json(j.at("tw_formula"));
        return r;
    }
    if (type == "disturb") {
        Disturb_row r;
        r.v_bump_nominal = double_of_json(j.at("v_bump_nominal"));
        r.v_bump_varied = double_of_json(j.at("v_bump_varied"));
        r.disturb_percent = double_of_json(j.at("disturb_percent"));
        return r;
    }
    if (type == "distribution") {
        mc::Tdp_distribution d;
        d.tdp = doubles_of_json(j.at("tdp"));
        d.rvar = doubles_of_json(j.at("rvar"));
        d.cvar = doubles_of_json(j.at("cvar"));
        d.summary = summary_of_json(j.at("summary"));
        return d;
    }
    bad_token("result row type", type);
}

} // namespace

// --- query -------------------------------------------------------------------

util::Json json_of_query(const Query& q)
{
    Json j;
    j.set("metric", to_string(q.metric));
    Json_array cases;
    cases.reserve(q.cases.size());
    for (const Query_case& c : q.cases) cases.push_back(json_of_case(c));
    j.set("cases", std::move(cases));
    if (q.accuracy) j.set("accuracy", sram::to_string(*q.accuracy));
    if (q.solver) j.set("solver", sram::to_string(*q.solver));
    Json mc;
    mc.set("samples", q.mc.samples);
    mc.set("seed", q.mc.seed);
    mc.set("truncate_k", json_of_double(q.mc.truncate_k));
    mc.set("sampling", string_of_sampling(q.mc.sampling));
    mc.set("store_samples", q.mc.store_samples);
    j.set("mc", std::move(mc));
    j.set("tdp_engine", to_string(q.tdp_engine));
    j.set("twp_engine", to_string(q.twp_engine));
    return j;
}

Query query_of_json(const util::Json& j)
{
    Query q(metric_of_string(j.at("metric").as_string()));
    for (const Json& c : j.at("cases").as_array()) {
        q.cases.push_back(case_of_json(c));
    }
    if (const Json* acc = j.find("accuracy")) {
        q.accuracy = accuracy_of_string(acc->as_string());
    }
    if (const Json* sol = j.find("solver")) {
        q.solver = solver_of_string(sol->as_string());
    }
    const Json& mc = j.at("mc");
    q.mc.samples = int_of_json(mc.at("samples"));
    q.mc.seed = mc.at("seed").as_u64();
    q.mc.truncate_k = double_of_json(mc.at("truncate_k"));
    q.mc.sampling = sampling_of_string(mc.at("sampling").as_string());
    q.mc.store_samples = mc.at("store_samples").as_bool();
    q.tdp_engine = tdp_engine_of_string(j.at("tdp_engine").as_string());
    q.twp_engine = twp_engine_of_string(j.at("twp_engine").as_string());
    return q;
}

// --- result table ------------------------------------------------------------

util::Json json_of_result_table(const Result_table& t)
{
    Json j;
    j.set("metric", to_string(t.metric()));
    Json_array cases;
    Json_array rows;
    cases.reserve(t.size());
    rows.reserve(t.size());
    for (std::size_t i = 0; i < t.size(); ++i) {
        cases.push_back(json_of_case(t.axes(i)));
        rows.push_back(std::visit(Row_writer{}, t.raw(i)));
    }
    j.set("cases", std::move(cases));
    j.set("rows", std::move(rows));
    return j;
}

Result_table result_table_of_json(const util::Json& j)
{
    const Metric metric = metric_of_string(j.at("metric").as_string());
    std::vector<Query_case> cases;
    for (const Json& c : j.at("cases").as_array()) {
        cases.push_back(case_of_json(c));
    }
    std::vector<Row_value> rows;
    for (const Json& r : j.at("rows").as_array()) {
        rows.push_back(row_of_json(r));
    }
    return Result_table(metric, std::move(cases), std::move(rows));
}

// --- worst case --------------------------------------------------------------

util::Json json_of_worst_case(const mc::Worst_case_result& wc)
{
    Json corner;
    corner.set("sample", json_of_doubles(wc.corner.sample));
    corner.set("metric", json_of_double(wc.corner.metric));

    Json variation;
    variation.set("r_factor", json_of_double(wc.variation.r_factor));
    variation.set("c_factor", json_of_double(wc.variation.c_factor));

    Json_array wires;
    wires.reserve(wc.realized.size());
    for (const geom::Wire& w : wc.realized.wires()) {
        Json wire;
        wire.set("net", w.net);
        wire.set("y_center", json_of_double(w.y_center));
        wire.set("width", json_of_double(w.width));
        wire.set("length", json_of_double(w.length));
        wire.set("color", string_of_color(w.color));
        wire.set("sadp", string_of_sadp(w.sadp));
        wires.push_back(std::move(wire));
    }

    Json j;
    j.set("corner", std::move(corner));
    j.set("variation", std::move(variation));
    j.set("vss_r_factor", json_of_double(wc.vss_r_factor));
    j.set("realized", std::move(wires));
    return j;
}

mc::Worst_case_result worst_case_of_json(const util::Json& j)
{
    mc::Worst_case_result wc;
    const Json& corner = j.at("corner");
    wc.corner.sample = doubles_of_json(corner.at("sample"));
    wc.corner.metric = double_of_json(corner.at("metric"));
    const Json& variation = j.at("variation");
    wc.variation.r_factor = double_of_json(variation.at("r_factor"));
    wc.variation.c_factor = double_of_json(variation.at("c_factor"));
    wc.vss_r_factor = double_of_json(j.at("vss_r_factor"));

    std::vector<geom::Wire> wires;
    for (const Json& wire : j.at("realized").as_array()) {
        geom::Wire w;
        w.net = wire.at("net").as_string();
        w.y_center = double_of_json(wire.at("y_center"));
        w.width = double_of_json(wire.at("width"));
        w.length = double_of_json(wire.at("length"));
        w.color = color_of_string(wire.at("color").as_string());
        w.sadp = sadp_of_string(wire.at("sadp").as_string());
        wires.push_back(std::move(w));
    }
    wc.realized = geom::Wire_array(std::move(wires));
    return wc;
}

// --- surrogate surfaces ------------------------------------------------------

namespace {

Json json_of_surface(const analytic::Response_surface& s)
{
    Json j;
    j.set("scales", json_of_doubles(s.scales()));
    j.set("coeffs", json_of_doubles(s.coefficients()));
    return j;
}

analytic::Response_surface surface_of_json(const Json& j)
{
    return analytic::Response_surface::restore(
        doubles_of_json(j.at("scales")), doubles_of_json(j.at("coeffs")));
}

} // namespace

util::Json json_of_surfaces(const analytic::Yield_surfaces& s)
{
    Json j;
    j.set("metric", json_of_surface(s.metric));
    j.set("rvar", json_of_surface(s.rvar));
    j.set("cvar", json_of_surface(s.cvar));
    j.set("holdout_rel", json_of_double(s.holdout_rel));
    j.set("design_span", json_of_double(s.design_span));
    j.set("design_points", static_cast<std::uint64_t>(s.design_points));
    j.set("holdout_points", static_cast<std::uint64_t>(s.holdout_points));
    return j;
}

analytic::Yield_surfaces surfaces_of_json(const util::Json& j)
{
    analytic::Yield_surfaces s;
    s.metric = surface_of_json(j.at("metric"));
    s.rvar = surface_of_json(j.at("rvar"));
    s.cvar = surface_of_json(j.at("cvar"));
    s.holdout_rel = double_of_json(j.at("holdout_rel"));
    s.design_span = double_of_json(j.at("design_span"));
    s.design_points =
        static_cast<std::size_t>(j.at("design_points").as_u64());
    s.holdout_points =
        static_cast<std::size_t>(j.at("holdout_points").as_u64());
    return s;
}

// --- canonical cache keys ----------------------------------------------------

namespace {

Json json_of_beol(const tech::Beol_layer& m)
{
    Json j;
    j.set("name", m.name);
    j.set("pitch", json_of_double(m.pitch));
    j.set("nominal_width", json_of_double(m.nominal_width));
    j.set("thickness", json_of_double(m.thickness));
    j.set("taper_angle", json_of_double(m.taper_angle));
    Json conductor;
    conductor.set("name", m.conductor.name);
    conductor.set("rho_bulk", json_of_double(m.conductor.rho_bulk));
    conductor.set("size_coeff", json_of_double(m.conductor.size_coeff));
    conductor.set("barrier_thickness",
                  json_of_double(m.conductor.barrier_thickness));
    conductor.set("rho_barrier", json_of_double(m.conductor.rho_barrier));
    j.set("conductor", std::move(conductor));
    Json ild;
    ild.set("name", m.ild.name);
    ild.set("k", json_of_double(m.ild.k));
    j.set("ild", std::move(ild));
    j.set("below_plane_dist", json_of_double(m.below_plane_dist));
    j.set("above_plane_dist", json_of_double(m.above_plane_dist));
    Json drc;
    drc.set("min_width", json_of_double(m.drc.min_width));
    drc.set("min_space", json_of_double(m.drc.min_space));
    j.set("drc", std::move(drc));
    return j;
}

Json json_of_technology(const tech::Technology& t)
{
    Json j;
    j.set("name", t.name);
    j.set("metal1", json_of_beol(t.metal1));
    j.set("metal2", json_of_beol(t.metal2));
    Json feol;
    feol.set("vdd", json_of_double(t.feol.vdd));
    feol.set("sense_margin", json_of_double(t.feol.sense_margin));
    feol.set("nmos_ion", json_of_double(t.feol.nmos_ion));
    feol.set("pmos_ion", json_of_double(t.feol.pmos_ion));
    feol.set("vth", json_of_double(t.feol.vth));
    feol.set("c_gate", json_of_double(t.feol.c_gate));
    feol.set("c_junction", json_of_double(t.feol.c_junction));
    j.set("feol", std::move(feol));
    Json variability;
    variability.set("cd_3sigma", json_of_double(t.variability.cd_3sigma));
    variability.set("sadp_spacer_3sigma",
                    json_of_double(t.variability.sadp_spacer_3sigma));
    variability.set("le3_ol_3sigma",
                    json_of_double(t.variability.le3_ol_3sigma));
    j.set("variability", std::move(variability));
    Json cell;
    cell.set("cell_length", json_of_double(t.cell.cell_length));
    cell.set("tracks_per_cell", t.cell.tracks_per_cell);
    j.set("cell", std::move(cell));
    return j;
}

Json json_of_study_options(const Study_options& o)
{
    Json j;
    Json array;
    array.set("word_lines", o.array.word_lines);
    array.set("bl_pairs", o.array.bl_pairs);
    array.set("victim_pair", o.array.victim_pair);
    j.set("array", std::move(array));

    Json extraction;
    extraction.set("integration_points", o.extraction.integration_points);
    extraction.set("min_gap", json_of_double(o.extraction.min_gap));
    extraction.set("k_fringe_coupling",
                   json_of_double(o.extraction.k_fringe_coupling));
    extraction.set("k_fringe_ground",
                   json_of_double(o.extraction.k_fringe_ground));
    extraction.set("fringe_shield_power",
                   json_of_double(o.extraction.fringe_shield_power));
    extraction.set("include_barrier", o.extraction.include_barrier);
    j.set("extraction", std::move(extraction));

    Json timing;
    timing.set("t_precharge_off", json_of_double(o.timing.t_precharge_off));
    timing.set("t_wl_on", json_of_double(o.timing.t_wl_on));
    timing.set("edge_time", json_of_double(o.timing.edge_time));
    j.set("timing", std::move(timing));

    Json read;
    read.set("nominal_steps", o.read.nominal_steps);
    read.set("min_window", json_of_double(o.read.min_window));
    read.set("window_per_cell", json_of_double(o.read.window_per_cell));
    read.set("max_retries", o.read.max_retries);
    read.set("method",
             o.read.method == spice::Integration_method::trapezoidal
                 ? "trapezoidal"
                 : "backward_euler");
    read.set("accuracy", sram::to_string(o.read.accuracy));
    if (o.read.solver) read.set("solver", sram::to_string(*o.read.solver));
    j.set("read", std::move(read));

    Json netlist;
    netlist.set("vss_strap_interval", o.netlist.vss_strap_interval);
    netlist.set("vss_strap_resistance",
                json_of_double(o.netlist.vss_strap_resistance));
    netlist.set("vss_rail_sharing",
                json_of_double(o.netlist.vss_rail_sharing));
    j.set("netlist", std::move(netlist));

    Json write_timing;
    write_timing.set("t_precharge_off",
                     json_of_double(o.write_timing.t_precharge_off));
    write_timing.set("t_drive_on",
                     json_of_double(o.write_timing.t_drive_on));
    write_timing.set("edge_time", json_of_double(o.write_timing.edge_time));
    j.set("write_timing", std::move(write_timing));

    Json write;
    write.set("nominal_steps", o.write.nominal_steps);
    write.set("window", json_of_double(o.write.window));
    write.set("window_per_cell", json_of_double(o.write.window_per_cell));
    write.set("accuracy", sram::to_string(o.write.accuracy));
    if (o.write.solver) {
        write.set("solver", sram::to_string(*o.write.solver));
    }
    j.set("write", std::move(write));

    Json disturb;
    disturb.set("nominal_steps", o.disturb.nominal_steps);
    disturb.set("window", json_of_double(o.disturb.window));
    disturb.set("window_per_cell",
                json_of_double(o.disturb.window_per_cell));
    disturb.set("accuracy", sram::to_string(o.disturb.accuracy));
    if (o.disturb.solver) {
        disturb.set("solver", sram::to_string(*o.disturb.solver));
    }
    j.set("disturb", std::move(disturb));

    Json surrogate;
    surrogate.set("design_span_k",
                  json_of_double(o.surrogate.design_span_k));
    surrogate.set("holdout_points", o.surrogate.holdout_points);
    surrogate.set("budget_rel", json_of_double(o.surrogate.budget_rel));
    j.set("surrogate", std::move(surrogate));
    // The cache options (o.cache) are deliberately NOT fingerprinted —
    // see the canonical-hash contract in serialize.h.
    return j;
}

/// Canonical resolved case for key material: session-default word_lines
/// resolved, negative overlay budgets collapsed onto -1 (every "use the
/// technology default" spelling shares one entry).
Json canonical_case(const Query_case& c, int default_word_lines)
{
    Query_case resolved = c;
    if (resolved.word_lines <= 0) resolved.word_lines = default_word_lines;
    if (resolved.ol_3sigma < 0.0) resolved.ol_3sigma = -1.0;
    return json_of_case(resolved);
}

} // namespace

std::uint64_t config_fingerprint(const tech::Technology& tech,
                                 const Study_options& opts)
{
    Json j;
    j.set("kind", "config");
    j.set("version", serialization_version);
    j.set("technology", json_of_technology(tech));
    j.set("options", json_of_study_options(opts));
    return util::fnv1a(j.dump());
}

util::Json canonical_query_json(const Study_session& session,
                                const Query& q)
{
    const Study_options& opts = session.options();

    // Resolved execution policies per measurement path, via the same
    // public contract run() applies (query override, else session option,
    // through sram/solver_policy.h).  All three paths are keyed even for
    // metrics that touch only one — conservative: an irrelevant-option
    // change costs a spurious miss, never a wrong hit.
    const sram::Sim_accuracy read_acc =
        q.accuracy.value_or(opts.read.accuracy);
    const sram::Sim_accuracy write_acc =
        q.accuracy.value_or(opts.write.accuracy);
    const sram::Sim_accuracy disturb_acc =
        q.accuracy.value_or(opts.disturb.accuracy);

    Json j;
    j.set("kind", "query");
    j.set("version", serialization_version);
    j.set("fingerprint",
          util::hex16(config_fingerprint(session.technology(), opts)));
    j.set("metric", to_string(q.metric));
    Json_array cases;
    cases.reserve(q.cases.size());
    for (const Query_case& c : q.cases) {
        cases.push_back(canonical_case(c, opts.array.word_lines));
    }
    j.set("cases", std::move(cases));

    Json accuracy;
    accuracy.set("read", sram::to_string(read_acc));
    accuracy.set("write", sram::to_string(write_acc));
    accuracy.set("disturb", sram::to_string(disturb_acc));
    j.set("accuracy", std::move(accuracy));

    // All three paths resolve through the sram/solver_policy.h contract.
    // An unresolvable combination (an explicit reuse tier under the
    // reference oracle) on a path this query never actually executes must
    // not abort key derivation — key it as the conflict it is; the path
    // that does execute still throws where it always did.
    const auto solver_token =
        [&q](sram::Sim_accuracy acc,
             std::optional<spice::Solver_policy> fallback) -> std::string {
        const std::optional<spice::Solver_policy> requested =
            q.solver ? q.solver : fallback;
        try {
            return std::string(sram::to_string(
                sram::resolve_solver_policy(acc, requested)));
        } catch (const util::Precondition_error&) {
            return "conflict:" +
                   std::string(sram::to_string(*requested));
        }
    };
    Json solver;
    solver.set("read", solver_token(read_acc, opts.read.solver));
    solver.set("write", solver_token(write_acc, opts.write.solver));
    solver.set("disturb", solver_token(disturb_acc, opts.disturb.solver));
    j.set("solver", std::move(solver));

    Json mc;
    mc.set("samples", q.mc.samples);
    mc.set("seed", q.mc.seed);
    mc.set("truncate_k", json_of_double(q.mc.truncate_k));
    mc.set("sampling", string_of_sampling(q.mc.sampling));
    mc.set("store_samples", q.mc.store_samples);
    j.set("mc", std::move(mc));
    j.set("tdp_engine", to_string(q.tdp_engine));
    j.set("twp_engine", to_string(q.twp_engine));
    return j;
}

std::uint64_t query_key(const Study_session& session, const Query& q)
{
    return util::fnv1a(canonical_query_json(session, q).dump());
}

std::uint64_t corner_key(std::uint64_t fingerprint,
                         tech::Patterning_option option, int word_lines,
                         double ol_3sigma)
{
    Json j;
    j.set("kind", "corner");
    j.set("version", serialization_version);
    j.set("fingerprint", util::hex16(fingerprint));
    j.set("option", tech::to_string(option));
    j.set("word_lines", word_lines);
    j.set("ol_3sigma",
          json_of_double(ol_3sigma < 0.0 ? -1.0 : ol_3sigma));
    return util::fnv1a(j.dump());
}

std::uint64_t nominal_key(std::uint64_t fingerprint, std::string_view kind,
                          int word_lines, sram::Sim_accuracy accuracy,
                          spice::Solver_policy solver)
{
    Json j;
    j.set("kind", kind);
    j.set("version", serialization_version);
    j.set("fingerprint", util::hex16(fingerprint));
    j.set("word_lines", word_lines);
    j.set("accuracy", sram::to_string(accuracy));
    j.set("solver", sram::to_string(solver));
    return util::fnv1a(j.dump());
}

std::uint64_t surface_key(std::uint64_t fingerprint, Metric metric,
                          tech::Patterning_option option, int word_lines,
                          double ol_3sigma, sram::Sim_accuracy accuracy,
                          spice::Solver_policy solver)
{
    Json j;
    j.set("kind", "surface");
    j.set("version", serialization_version);
    j.set("fingerprint", util::hex16(fingerprint));
    j.set("metric", to_string(metric));
    j.set("option", tech::to_string(option));
    j.set("word_lines", word_lines);
    j.set("ol_3sigma",
          json_of_double(ol_3sigma < 0.0 ? -1.0 : ol_3sigma));
    j.set("accuracy", sram::to_string(accuracy));
    j.set("solver", sram::to_string(solver));
    return util::fnv1a(j.dump());
}

} // namespace mpsram::core
