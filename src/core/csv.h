// CSV export of a Result_table — the spreadsheet-facing sibling of the
// canonical JSON encoding (core/serialize.h).
//
// Layout: a header row, then one record per case.  The first three
// columns are the case axes (option, word_lines, ol_3sigma); the rest
// are the metric's row fields, named after the row-struct members.
// Distribution-valued metrics (mc_tdp, mc_twp) export the per-case
// sample SUMMARY (count, mean, stddev, min, max, median, p01, p99) —
// the raw sample vectors belong to the JSON encoding, not to a
// row-per-case table.
//
// Determinism: numeric cells render through std::to_chars shortest
// round-trip (the same rule canonical JSON uses), so equal tables
// export byte-identical CSV — `cmp` works on exports exactly like it
// does on dumps.  Non-finite values render as "nan"/"inf"/"-inf"
// (spreadsheet-friendly; the CSV surface is for reading, not for
// re-ingestion — round-trips stay on JSON).
#ifndef MPSRAM_CORE_CSV_H
#define MPSRAM_CORE_CSV_H

#include <string>

#include "core/query.h"

namespace mpsram::core {

/// Render `table` as CSV (header + one record per case, trailing
/// newline after every record, '\n' line endings).
std::string to_csv(const Result_table& table);

} // namespace mpsram::core

#endif // MPSRAM_CORE_CSV_H
