// Canonical, versioned JSON serialization of the query layer — the
// persistence contract behind core::Result_cache and the shard driver
// (tools/mpsram_shard).
//
// Two serialization surfaces live here:
//
//   * Transport round-trips (json_of_* / *_of_json): Query, Result_table,
//     mc::Worst_case_result and analytic::Yield_surfaces to and from
//     util::Json.  Every double goes through util::json_of_double, so
//     NaN-poisoned rows (a non-flipping write sample) and -0.0 round-trip
//     bitwise; a parsed table compares bitwise-equal to the one that was
//     dumped.
//
//   * Canonical cache keys.  A cache entry is addressed by the FNV-1a
//     hash of a canonical JSON encoding.  The canonical-hash contract —
//     what participates in a key:
//
//       - the serialization format version (serialization_version below:
//         bump it whenever any encoding changes and every old entry is
//         invalidated wholesale),
//       - the configuration fingerprint: every field of the technology
//         and of Study_options that influences a result (geometry,
//         materials, variability assumptions, timings, netlist structure,
//         measurement windows, surrogate calibration policy) — but NOT
//         the cache options themselves,
//       - the query's value axes with session defaults RESOLVED
//         (word_lines <= 0 becomes the session's array default, negative
//         overlay budgets normalize to -1), so `{16}` and `{0}` on a
//         16-row session share one entry,
//       - the RESOLVED execution policies: effective Sim_accuracy and
//         resolved Solver_policy per measurement path (query override,
//         else session option, through the sram/solver_policy.h
//         resolution contract) — results differ between engines, so keys
//         must too,
//       - the engine tiers (tdp_engine / twp_engine) and the Monte-Carlo
//         spec (samples, seed, truncation, sampling scheme, stored mode).
//
//     What deliberately does NOT participate: Runner_options anywhere
//     (thread counts are execution policy; results are bitwise identical
//     at any thread count — that determinism contract is exactly what
//     makes results cacheable), and the cache mode/directory (a cached
//     and an uncached run must agree on the key of everything else).
#ifndef MPSRAM_CORE_SERIALIZE_H
#define MPSRAM_CORE_SERIALIZE_H

#include <cstdint>
#include <string_view>

#include "analytic/response_surface.h"
#include "core/query.h"
#include "core/session.h"
#include "mc/worst_case.h"
#include "util/json.h"

namespace mpsram::core {

/// Version of every encoding in this header.  Participates in each cache
/// key and in the cache directory layout, so bumping it orphans all
/// previously stored entries at once (they are never misread).
inline constexpr std::uint64_t serialization_version = 1;

// --- transport round-trips ---------------------------------------------------

/// Query as JSON (metric, cases, policies, MC spec, engine tiers; the
/// runner is execution policy and is not serialized).
util::Json json_of_query(const Query& q);
Query query_of_json(const util::Json& j);

/// Result_table as JSON: metric, resolved case axes, and one typed row
/// object per case.  Bitwise round-trip, NaN rows included.
util::Json json_of_result_table(const Result_table& t);
Result_table result_table_of_json(const util::Json& j);

/// Worst-case search result (corner sample + metric, victim variation,
/// VSS factor, and the full realized geometry).
util::Json json_of_worst_case(const mc::Worst_case_result& wc);
mc::Worst_case_result worst_case_of_json(const util::Json& j);

/// Calibrated surrogate surfaces (scales + coefficients per surface plus
/// the fit diagnostics the gates report).
util::Json json_of_surfaces(const analytic::Yield_surfaces& s);
analytic::Yield_surfaces surfaces_of_json(const util::Json& j);

// --- canonical cache keys ----------------------------------------------------

/// FNV-1a digest over every result-influencing field of the technology
/// and the study options (field-name-salted canonical JSON).  The cache
/// options themselves are excluded — see the contract above.
std::uint64_t config_fingerprint(const tech::Technology& tech,
                                 const Study_options& opts);

/// The canonical (resolved, versioned, fingerprinted) encoding of a query
/// on a session — the preimage of query_key, exposed for tests and the
/// shard driver.
util::Json canonical_query_json(const Study_session& session,
                                const Query& q);

/// Cache key of a full query result on a session.
std::uint64_t query_key(const Study_session& session, const Query& q);

/// Sub-artifact keys (the session's memo granularity).  `fingerprint` is
/// config_fingerprint; negative overlay budgets normalize to -1.
std::uint64_t corner_key(std::uint64_t fingerprint,
                         tech::Patterning_option option, int word_lines,
                         double ol_3sigma);
/// `kind` is "nominal_td", "nominal_tw" or "nominal_disturb".
std::uint64_t nominal_key(std::uint64_t fingerprint, std::string_view kind,
                          int word_lines, sram::Sim_accuracy accuracy,
                          spice::Solver_policy solver);
std::uint64_t surface_key(std::uint64_t fingerprint, Metric metric,
                          tech::Patterning_option option, int word_lines,
                          double ol_3sigma, sram::Sim_accuracy accuracy,
                          spice::Solver_policy solver);

} // namespace mpsram::core

#endif // MPSRAM_CORE_SERIALIZE_H
