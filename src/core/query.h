// Metric-centric query layer (PR 5): one declarative request type for
// every study artifact instead of one method per figure.
//
// A `Query` names a `Metric` (what to measure) and composes the study's
// axes — patterning options x word-line counts x overlay budgets, plus the
// accuracy policy and, for distribution-valued metrics, the Monte-Carlo
// spec.  `Study_session::run(query)` (session.h) executes any query
// through one generic fan-out on `Run_plan` and returns a `Result_table`
// with typed row accessors:
//
//     Study_session session;
//     auto table = session.run(Query(Metric::read_td)
//                                  .over_word_lines(option, sizes)
//                                  .on(Runner_options::parallel()));
//     double tdp = table.as<Read_row>(0).tdp_percent;
//
// Adding a workload is registering a metric descriptor (session.cpp), not
// growing the study surface: the half-select read-disturb metric
// (Metric::disturb) exists purely through the registry.
#ifndef MPSRAM_CORE_QUERY_H
#define MPSRAM_CORE_QUERY_H

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "core/runner.h"
#include "mc/distribution.h"
#include "sram/sim_accuracy.h"
#include "tech/patterning_option.h"

namespace mpsram::core {

/// The measurable quantities of the study.  Each value keys a descriptor
/// in the metric registry (session.cpp) bundling its simulation-context
/// traits, nominal memo, and measurement functor.
enum class Metric {
    worst_case_rc,   ///< Table I row: worst corner + victim R/C impact
    read_td,         ///< Fig. 4 row: nominal td, worst-corner td, tdp
    nominal_td,      ///< Table II row: nominal td, SPICE vs formula
    worst_case_tdp,  ///< Table III row: worst-case tdp, SPICE vs formula
    mc_tdp,          ///< Fig. 5 / Table IV: Monte-Carlo tdp distribution
    write_tw,        ///< write analogue of Fig. 4: tw nominal/varied/twp
    nominal_tw,      ///< nominal tw, SPICE vs formula
    mc_twp,          ///< Monte-Carlo twp distribution
    disturb,         ///< half-select read-disturb bump, nominal vs corner
};

std::string_view to_string(Metric metric);

/// One case (result row request) of a query: a point on the study's axes.
/// Metrics that do not depend on an axis ignore it — `nominal_td` /
/// `nominal_tw` ignore `option` and `ol_3sigma`; single-mask options
/// ignore `ol_3sigma` everywhere.
struct Query_case {
    tech::Patterning_option option = tech::Patterning_option::euv;
    int word_lines = 0;       ///< <= 0: the session's array default
    double ol_3sigma = -1.0;  ///< < 0: technology default (LE3 only)

    bool operator==(const Query_case&) const = default;
};

// --- engine tiers ------------------------------------------------------------
// The distribution-valued metrics (mc_tdp, mc_twp) choose how each sample
// is evaluated.  Three tiers, trading exactness for throughput:
//
//   tier       per-sample work                    cost      fidelity
//   ---------  ---------------------------------  --------  -------------------
//   spice      realize geometry, extract RC,      ~10 ms    exact (the paper's
//              run a SPICE transient                        own method)
//   formula    realize geometry, extract RC,      ~10 us    analytic model
//              evaluate the closed-form td/tw               (eq. 4 / write
//              model on the extracted factors               analogue)
//   surrogate  evaluate a calibrated quadratic    ~1 us     held-out-gated fit
//              response surface, no geometry                of the SPICE
//              (analytic/response_surface.h)                response
//
// The surrogate tier is auto-calibrated per (option, word_lines,
// ol_3sigma) on first use — a small SPICE design set fitted and validated
// behind Study_session's calibration memo — and refuses to serve a fit
// that misses Surrogate_options::budget_rel on held-out points.  All
// tiers draw identical process samples for a given seed, so same-seed
// cross-tier comparisons expose pure model error.

/// Sample-metric engine of the `mc_tdp` metric: `formula` (the paper's
/// Monte-Carlo method and the historical default) extracts each sample's
/// parasitics and evaluates the analytic td model; `spice` runs a read
/// transient per sample on a per-worker context; `surrogate` samples the
/// calibrated response surface — the million-sample yield tier.
enum class Tdp_engine { formula, spice, surrogate };

/// Sample-metric engine of the `mc_twp` metric: `spice` rolls up every
/// sample's geometry and runs a write transient on a per-worker context
/// (exact, expensive — keep sample counts modest); `formula` evaluates
/// the analytic tw model (analytic/tw_formula.h) so 10k-sample write
/// distributions cost what the read MC does; `surrogate` samples the
/// calibrated response surface (see the tier table above).
enum class Twp_engine { spice, formula, surrogate };

std::string_view to_string(Tdp_engine engine);
std::string_view to_string(Twp_engine engine);

/// A declarative study request: metric + cases + execution policy.
/// Execution contract (same as the legacy batch APIs): results are
/// indexed like `cases` and bitwise identical at any thread count.
///
/// Persistence: a query serializes to canonical JSON and its result is
/// cacheable under a canonical hash (core/serialize.h).  The hash covers
/// everything that changes the VALUE of the answer — metric, resolved
/// cases, resolved accuracy/solver, engine tiers, MC spec, and the
/// session's configuration fingerprint — and deliberately excludes pure
/// execution policy (`runner`, `mc.runner`, cache options): the bitwise
/// thread-count determinism above is exactly what makes a thread-count-
/// free key sound.
struct Query {
    Query() = default;
    explicit Query(Metric m) : metric(m) {}

    Metric metric = Metric::read_td;
    std::vector<Query_case> cases;

    /// Backend for the per-case fan-out.  Distribution-valued metrics
    /// (mc_tdp, mc_twp) and worst_case_rc run their cases in plan order
    /// and parallelize inside each case instead (sample loops on
    /// `mc.runner`, corner enumerations on `runner`), so every case's
    /// result is independent of the sweep composition.
    Runner_options runner;

    /// Integration-engine override for every transient of this query;
    /// unset uses the session's Study_options policies.  The nominal
    /// memos are keyed per policy, so mixing accuracies on one session
    /// never crosses results between engines.
    std::optional<sram::Sim_accuracy> accuracy;

    /// Linear-solver tier override for every transient of this query;
    /// unset defers to the session options and ultimately the resolution
    /// contract of sram/solver_policy.h (reference accuracy always runs
    /// direct; an explicit reuse tier under reference throws).  Memos are
    /// keyed on the RESOLVED policy, so mixing solver tiers on one
    /// session never crosses results between them.
    std::optional<spice::Solver_policy> solver;

    /// Monte-Carlo spec (sample count, seed, sampling scheme, sample-loop
    /// runner) for the distribution-valued metrics; ignored otherwise.
    mc::Distribution_options mc;

    /// Sample engine for mc_tdp (see the tier table); ignored otherwise.
    Tdp_engine tdp_engine = Tdp_engine::formula;

    /// Sample engine for mc_twp (see Twp_engine); ignored otherwise.
    Twp_engine twp_engine = Twp_engine::spice;

    // --- fluent axis composition ---------------------------------------------
    Query& with_case(Query_case c)
    {
        cases.push_back(c);
        return *this;
    }
    /// One case per patterning option at a fixed array length.
    Query& over_options(std::span<const tech::Patterning_option> options,
                        int word_lines = 0, double ol_3sigma = -1.0)
    {
        for (const auto option : options) {
            cases.push_back({option, word_lines, ol_3sigma});
        }
        return *this;
    }
    /// One case per word-line count for a fixed option (a sweep).
    Query& over_word_lines(tech::Patterning_option option,
                           std::span<const int> word_lines,
                           double ol_3sigma = -1.0)
    {
        for (const int n : word_lines) {
            cases.push_back({option, n, ol_3sigma});
        }
        return *this;
    }
    /// One case per overlay budget for a fixed option and array length.
    Query& over_ol_budgets(tech::Patterning_option option, int word_lines,
                           std::span<const double> budgets)
    {
        for (const double ol : budgets) {
            cases.push_back({option, word_lines, ol});
        }
        return *this;
    }
    Query& on(const Runner_options& r)
    {
        runner = r;
        return *this;
    }
    Query& with_accuracy(sram::Sim_accuracy a)
    {
        accuracy = a;
        return *this;
    }
    Query& with_solver(spice::Solver_policy p)
    {
        solver = p;
        return *this;
    }
    Query& with_mc(const mc::Distribution_options& m)
    {
        mc = m;
        return *this;
    }
    Query& with_tdp_engine(Tdp_engine engine)
    {
        tdp_engine = engine;
        return *this;
    }
    Query& with_twp_engine(Twp_engine engine)
    {
        twp_engine = engine;
        return *this;
    }
};

// --- result row types --------------------------------------------------------
// One struct per metric family; `Result_table::as<Row>(i)` recovers the
// typed row.  All comparisons are bitwise (IEEE ==), matching the
// determinism contract the parity tests assert.

/// Table I row.
struct Worst_case_row {
    tech::Patterning_option option = tech::Patterning_option::euv;
    std::string corner;        ///< human-readable worst corner
    double cbl_percent = 0.0;  ///< victim Cbl change
    double rbl_percent = 0.0;  ///< victim Rbl change
    double vss_r_percent = 0.0;

    bool operator==(const Worst_case_row&) const = default;
};

/// Fig. 4 row.
struct Read_row {
    double td_nominal = 0.0;  ///< [s] SPICE, no variability
    double td_varied = 0.0;   ///< [s] SPICE at the worst corner
    double tdp_percent = 0.0;

    bool operator==(const Read_row&) const = default;
};

/// Table II row.
struct Nominal_td_row {
    double td_simulation = 0.0;  ///< [s]
    double td_formula = 0.0;     ///< [s]

    bool operator==(const Nominal_td_row&) const = default;
};

/// Table III row.
struct Tdp_row {
    double tdp_simulation = 0.0;  ///< [%]
    double tdp_formula = 0.0;     ///< [%]

    bool operator==(const Tdp_row&) const = default;
};

/// Write analogue of a Fig. 4 row.
struct Write_row {
    double tw_nominal = 0.0;  ///< [s] SPICE, no variability
    double tw_varied = 0.0;   ///< [s] SPICE at the worst corner
    double twp_percent = 0.0;

    bool operator==(const Write_row&) const = default;
};

/// Nominal write time, SPICE vs the analytic tw model.
struct Nominal_tw_row {
    double tw_simulation = 0.0;  ///< [s]
    double tw_formula = 0.0;     ///< [s]

    bool operator==(const Nominal_tw_row&) const = default;
};

/// Half-select read-disturb row: the storage-node bump of a 0-storing
/// cell whose word line fires while its column is held precharged (a
/// read of another column in the same row).
struct Disturb_row {
    double v_bump_nominal = 0.0;  ///< [V] peak q excursion, nominal wires
    double v_bump_varied = 0.0;   ///< [V] at the worst-case corner
    double disturb_percent = 0.0; ///< (varied / nominal - 1) * 100

    bool operator==(const Disturb_row&) const = default;
};

using Row_value =
    std::variant<Worst_case_row, Read_row, Nominal_td_row, Tdp_row,
                 Write_row, Nominal_tw_row, Disturb_row,
                 mc::Tdp_distribution>;

/// The answer to a query: one row per case, indexed like `Query::cases`.
/// Rows are typed — `as<Read_row>(i)` recovers the struct for the row's
/// metric and throws std::bad_variant_access on a metric mismatch, so a
/// driver reading the wrong row type fails loudly, not with garbage.
class Result_table {
public:
    Result_table() = default;
    Result_table(Metric metric, std::vector<Query_case> cases,
                 std::vector<Row_value> rows);

    Metric metric() const { return metric_; }
    std::size_t size() const { return rows_.size(); }
    bool empty() const { return rows_.empty(); }

    /// The axes the row answers (option / word_lines / ol_3sigma, with
    /// word_lines <= 0 resolved to the session default).
    const Query_case& axes(std::size_t i) const;

    /// Typed row access.
    template <class Row>
    const Row& as(std::size_t i) const
    {
        return std::get<Row>(raw(i));
    }

    /// Whole-table view as one row type (sweep consumers).
    template <class Row>
    std::vector<Row> column() const
    {
        std::vector<Row> out;
        out.reserve(rows_.size());
        for (std::size_t i = 0; i < rows_.size(); ++i) {
            out.push_back(std::get<Row>(rows_[i]));
        }
        return out;
    }

    const Row_value& raw(std::size_t i) const;

    /// Bitwise row comparison (IEEE ==; the thread-determinism check of
    /// the benches and parity tests).
    bool operator==(const Result_table&) const = default;

private:
    Metric metric_ = Metric::read_td;
    std::vector<Query_case> cases_;
    std::vector<Row_value> rows_;
};

} // namespace mpsram::core

#endif // MPSRAM_CORE_QUERY_H
