#include "core/session.h"

#include <array>

#include <algorithm>
#include <cmath>
#include <limits>

#include "analytic/td_formula.h"
#include "analytic/tw_formula.h"
#include "core/serialize.h"
#include "mc/distribution.h"
#include "mc/surrogate.h"
#include "pattern/engine.h"
#include "sram/netlist_builder.h"
#include "util/contracts.h"
#include "util/json.h"
#include "util/rng.h"

namespace mpsram::core {

// --- session state -----------------------------------------------------------

Study_session::Study_session(tech::Technology tech, Study_options opts)
    : tech_(std::move(tech)),
      opts_(opts),
      extractor_(std::make_unique<extract::Extractor>(tech_.metal1,
                                                      opts.extraction)),
      cell_(sram::Cell_electrical::n10(tech_.feol))
{
    if (opts_.array.victim_pair < 0) {
        // The paper's LE3 worst case (Table I) perturbs only masks B and C:
        // the victim bit line itself is on the alignment reference mask A.
        // With 4 tracks per pair and cyclic 3-coloring, pairs 0/3/6/9 have
        // mask-A bit lines; pick the interior one nearest the center.
        opts_.array.victim_pair = 6;
    }

    // Fingerprint the resolved configuration (victim_pair included), then
    // bring up the on-disk cache if a directory is configured anywhere.
    fingerprint_ = core::config_fingerprint(tech_, opts_);
    const Cache_mode mode = opts_.cache.mode.value_or(default_cache_mode());
    const std::string dir = !opts_.cache.directory.empty()
                                ? opts_.cache.directory
                                : default_cache_dir().value_or("");
    if (mode != Cache_mode::off && !dir.empty()) {
        cache_ = std::make_shared<Result_cache>(dir, mode,
                                                serialization_version);
    }
}

tech::Technology Study_session::tech_with_ol(double ol_3sigma) const
{
    tech::Technology t = tech_;
    if (ol_3sigma >= 0.0) t.variability.le3_ol_3sigma = ol_3sigma;
    return t;
}

geom::Wire_array Study_session::decomposed_array(
    tech::Patterning_option option, int word_lines, double ol_3sigma) const
{
    sram::Array_config cfg = opts_.array;
    cfg.word_lines = word_lines;
    const tech::Technology t = tech_with_ol(ol_3sigma);
    const auto engine = pattern::make_engine(option, t);
    return engine->decompose(sram::build_metal1_array(t, cfg));
}

sram::Bitline_electrical Study_session::nominal_wires(int word_lines) const
{
    {
        const std::lock_guard<std::mutex> lock(nominal_cache_mutex_);
        const auto it = nominal_wires_cache_.find(word_lines);
        if (it != nominal_wires_cache_.end()) return it->second;
    }

    sram::Array_config cfg = opts_.array;
    cfg.word_lines = word_lines;
    // Nominal geometry needs no patterning engine: use EUV decomposition
    // (single mask) with a zero sample == drawn layout.  Computed outside
    // the lock (value-racy-but-deterministic, like the nominal memos).
    const geom::Wire_array nominal =
        decomposed_array(tech::Patterning_option::euv, word_lines);
    const sram::Bitline_electrical wires =
        sram::roll_up_nominal(*extractor_, nominal, tech_, cfg);
    const std::lock_guard<std::mutex> lock(nominal_cache_mutex_);
    nominal_wires_cache_.emplace(word_lines, wires);
    return wires;
}

Study_session::Case_geometry Study_session::case_geometry(
    tech::Patterning_option option, int word_lines, double ol_3sigma) const
{
    Case_geometry g;
    g.cfg = opts_.array;
    g.cfg.word_lines = word_lines;
    const tech::Technology t = tech_with_ol(ol_3sigma);
    g.engine = pattern::make_engine(option, t);
    g.nominal = g.engine->decompose(sram::build_metal1_array(t, g.cfg));
    g.victims = sram::find_victim_wires(g.nominal, g.cfg);
    return g;
}

sram::Sim_accuracy Study_session::read_accuracy(const Query& q) const
{
    return q.accuracy.value_or(opts_.read.accuracy);
}

sram::Sim_accuracy Study_session::write_accuracy(const Query& q) const
{
    return q.accuracy.value_or(opts_.write.accuracy);
}

sram::Sim_accuracy Study_session::disturb_accuracy(const Query& q) const
{
    return q.accuracy.value_or(opts_.disturb.accuracy);
}

spice::Solver_policy Study_session::read_solver(const Query& q) const
{
    return sram::resolve_solver_policy(
        read_accuracy(q), q.solver.has_value() ? q.solver
                                               : opts_.read.solver);
}

spice::Solver_policy Study_session::write_solver(const Query& q) const
{
    return sram::resolve_solver_policy(
        write_accuracy(q), q.solver.has_value() ? q.solver
                                                : opts_.write.solver);
}

spice::Solver_policy Study_session::disturb_solver(const Query& q) const
{
    return sram::resolve_solver_policy(
        disturb_accuracy(q), q.solver.has_value() ? q.solver
                                                  : opts_.disturb.solver);
}

// --- worst-case memo ---------------------------------------------------------

mc::Worst_case_result Study_session::worst_case_full(
    tech::Patterning_option option, int word_lines, double ol_3sigma,
    const Runner_options& runner) const
{
    return *worst_case_cached(option, word_lines, ol_3sigma, runner);
}

std::shared_ptr<const mc::Worst_case_result>
Study_session::worst_case_cached(tech::Patterning_option option,
                                 int word_lines, double ol_3sigma,
                                 const Runner_options& runner) const
{
    // Every "use the technology default" request shares one memo slot.
    const Wc_key key{option, word_lines, ol_3sigma < 0.0 ? -1.0 : ol_3sigma};

    std::promise<std::shared_ptr<const mc::Worst_case_result>> promise;
    Wc_entry entry;
    bool owner = false;
    {
        const std::lock_guard<std::mutex> lock(wc_cache_mutex_);
        const auto it = wc_cache_.find(key);
        if (it != wc_cache_.end()) {
            entry = it->second;
        } else {
            entry = promise.get_future().share();
            wc_cache_.emplace(key, entry);
            owner = true;
        }
    }

    if (owner) {
        // The enumeration runs outside the lock; concurrent callers of the
        // same key block on the shared future instead of duplicating it.
        try {
            const std::uint64_t disk_key =
                corner_key(fingerprint_, option, word_lines, ol_3sigma);
            std::optional<util::Json> stored =
                cache_ ? cache_->load("corner", disk_key) : std::nullopt;
            if (stored) {
                // Served from disk: no enumeration, the search counter
                // stays flat (the observable the warm-cache tests gate).
                promise.set_value(
                    std::make_shared<const mc::Worst_case_result>(
                        worst_case_of_json(*stored)));
                return entry.get();
            }

            corner_searches_.fetch_add(1, std::memory_order_relaxed);

            const Case_geometry g =
                case_geometry(option, word_lines, ol_3sigma);
            auto result = std::make_shared<const mc::Worst_case_result>(
                mc::find_worst_case(*g.engine, *extractor_, g.nominal,
                                    g.victims.bl, g.victims.vss, 3,
                                    runner));
            if (cache_) {
                cache_->store("corner", disk_key,
                              json_of_worst_case(*result));
            }
            promise.set_value(std::move(result));
        } catch (...) {
            // Un-publish the failed slot so a later call can retry, then
            // propagate to every waiter (and to this caller via get()).
            {
                const std::lock_guard<std::mutex> lock(wc_cache_mutex_);
                wc_cache_.erase(key);
            }
            promise.set_exception(std::current_exception());
        }
    }
    return entry.get();
}

// --- surrogate calibration ---------------------------------------------------

namespace {

/// Root seed of the held-out validation draws.  Deliberately a fixed
/// constant (not the query seed): the calibrated surface is a property of
/// the study point, so the memo key excludes the seed and the validation
/// set must not depend on which query triggered the fit.
constexpr std::uint64_t calibration_seed = 20150609;

} // namespace

std::shared_ptr<const analytic::Yield_surfaces>
Study_session::calibrated_surfaces(Metric metric,
                                   tech::Patterning_option option,
                                   int word_lines, double ol_3sigma,
                                   std::optional<sram::Sim_accuracy> accuracy,
                                   std::optional<spice::Solver_policy> solver,
                                   const Runner_options& runner) const
{
    util::expects(metric == Metric::mc_tdp || metric == Metric::mc_twp,
                  "surrogate surfaces exist only for the distribution "
                  "metrics (mc_tdp, mc_twp)");
    if (word_lines <= 0) word_lines = opts_.array.word_lines;
    const sram::Sim_accuracy acc = accuracy.value_or(
        metric == Metric::mc_tdp ? opts_.read.accuracy
                                 : opts_.write.accuracy);
    const spice::Solver_policy pol = sram::resolve_solver_policy(
        acc, solver.has_value()
                 ? solver
                 : (metric == Metric::mc_tdp ? opts_.read.solver
                                             : opts_.write.solver));
    const Surface_key key{metric, option, word_lines,
                          ol_3sigma < 0.0 ? -1.0 : ol_3sigma, acc, pol};

    std::promise<std::shared_ptr<const analytic::Yield_surfaces>> promise;
    Surface_entry entry;
    bool owner = false;
    {
        const std::lock_guard<std::mutex> lock(surface_cache_mutex_);
        const auto it = surface_cache_.find(key);
        if (it != surface_cache_.end()) {
            entry = it->second;
        } else {
            entry = promise.get_future().share();
            surface_cache_.emplace(key, entry);
            owner = true;
        }
    }

    if (owner) {
        // The design evaluations and fit run outside the lock; concurrent
        // queries of the same key wait on the shared future, so each
        // surface is fitted exactly once per session.
        try {
            const std::uint64_t disk_key =
                surface_key(fingerprint_, metric, option, word_lines,
                            ol_3sigma, acc, pol);
            std::optional<util::Json> stored =
                cache_ ? cache_->load("surface", disk_key) : std::nullopt;
            if (stored) {
                // Served from disk: no design evaluations, no fit — the
                // fit counter stays flat (restored surfaces evaluate
                // bitwise identically, Response_surface::restore).
                promise.set_value(
                    std::make_shared<const analytic::Yield_surfaces>(
                        surfaces_of_json(*stored)));
                return entry.get();
            }

            surface_fits_.fetch_add(1, std::memory_order_relaxed);
            std::shared_ptr<const analytic::Yield_surfaces> fitted =
                calibrate_surfaces(metric, option, word_lines, ol_3sigma,
                                   acc, pol, runner);
            if (cache_) {
                cache_->store("surface", disk_key,
                              json_of_surfaces(*fitted));
            }
            promise.set_value(std::move(fitted));
        } catch (...) {
            // Un-publish the failed slot (a gate miss or a failed design
            // transient) so a later call — e.g. after loosening the
            // budget on another session — can retry; propagate to every
            // waiter.
            {
                const std::lock_guard<std::mutex> lock(surface_cache_mutex_);
                surface_cache_.erase(key);
            }
            promise.set_exception(std::current_exception());
        }
    }
    return entry.get();
}

std::shared_ptr<const analytic::Yield_surfaces>
Study_session::calibrate_surfaces(Metric metric,
                                  tech::Patterning_option option,
                                  int word_lines, double ol_3sigma,
                                  sram::Sim_accuracy accuracy,
                                  spice::Solver_policy solver,
                                  const Runner_options& runner) const
{
    const analytic::Surrogate_options& sopts = opts_.surrogate;
    const Case_geometry g = case_geometry(option, word_lines, ol_3sigma);
    const auto& axes = g.engine->axes();

    // Design box: +/- design_span_k sigmas per axis — the region the
    // Monte-Carlo truncation confines samples to, so the fit covers
    // exactly the space it will be evaluated on.
    std::vector<double> half(axes.size(), 0.0);
    for (std::size_t i = 0; i < axes.size(); ++i) {
        half[i] = sopts.design_span_k * axes[i].sigma;
    }
    std::vector<std::vector<double>> points =
        analytic::quadratic_design(half);

    // Design cloud: deterministic truncated-Gaussian draws appended to
    // the structured skeleton, so the least-squares design empirically
    // matches the measure the surface will be sampled under.  This is
    // what makes the fit serve the distribution's mean and sigma: for
    // d = 5 a per-axis truncated sample exceeds the 3-sigma *ball* 11%
    // of the time, so a ball-bounded structured design alone leaves a
    // tenth of the mass in extrapolation territory.
    const std::uint64_t cloud_seed = util::Rng(calibration_seed)
                                         .child(g.engine->name())
                                         .child("surrogate-design")
                                         .seed();
    // At least 6 points per coefficient, and enough in absolute terms
    // that the cloud's own sampling noise cannot bias the fitted mean by
    // a noticeable fraction of sigma (the residual-mean bias shrinks as
    // 1/sqrt(cloud)).
    const std::size_t cloud_count = std::max<std::size_t>(
        6 * analytic::Response_surface::coefficient_count(axes.size()), 120);
    for (std::size_t i = 0; i < cloud_count; ++i) {
        util::Rng rng = util::Rng::stream(cloud_seed, i);
        points.push_back(
            g.engine->sample_gaussian(rng, sopts.design_span_k));
    }
    const std::size_t design_count = points.size();

    // Held-out validation draws from a dedicated fixed substream (never
    // collides with the design cloud or any query's sample streams).
    util::expects(sopts.holdout_points > 0,
                  "surrogate calibration needs held-out points");
    const std::uint64_t holdout_seed = util::Rng(calibration_seed)
                                           .child(g.engine->name())
                                           .child("surrogate-holdout")
                                           .seed();
    for (int i = 0; i < sopts.holdout_points; ++i) {
        util::Rng rng =
            util::Rng::stream(holdout_seed, static_cast<std::uint64_t>(i));
        points.push_back(
            g.engine->sample_gaussian(rng, sopts.design_span_k));
    }

    // One SPICE evaluation per point (design + held-out in one parallel
    // pass), each writing only its own slot: bitwise identical at any
    // `runner` thread count.
    const double nominal =
        metric == Metric::mc_tdp
            ? nominal_td_spice(word_lines, accuracy, solver, nullptr)
            : nominal_tw_spice(word_lines, accuracy, solver, nullptr);
    std::vector<double> metric_vals(points.size(), 0.0);
    std::vector<double> rvar_vals(points.size(), 0.0);
    std::vector<double> cvar_vals(points.size(), 0.0);
    const auto workers =
        static_cast<std::size_t>(runner.resolved_threads());
    std::vector<geom::Wire_array> geo_scratch(workers);
    std::vector<sram::Read_sim_context> read_sims(
        metric == Metric::mc_tdp ? workers : 0);
    std::vector<sram::Write_sim_context> write_sims(
        metric == Metric::mc_twp ? workers : 0);

    run_indexed(
        points.size(),
        [&](std::size_t i, const Run_context& ctx) {
            const auto w = static_cast<std::size_t>(ctx.worker);
            geom::Wire_array& realized = geo_scratch[w];
            g.engine->realize_into(g.nominal, points[i], realized);
            const extract::Rc_variation v =
                extractor_->variation(g.nominal, realized, g.victims.bl);
            const sram::Bitline_electrical wires = sram::roll_up_bitline(
                *extractor_, g.nominal, realized, tech_, g.cfg);
            const double t =
                metric == Metric::mc_tdp
                    ? simulate_td_on(wires, word_lines, accuracy, solver,
                                     read_sims[w])
                    : simulate_tw_on(wires, word_lines, accuracy, solver,
                                     write_sims[w]);
            metric_vals[i] = (t / nominal - 1.0) * 100.0;
            rvar_vals[i] = v.r_factor;
            cvar_vals[i] = v.c_factor;
        },
        runner);

    // Fit on the design prefix, validate on the held-out tail.
    const std::vector<std::vector<double>> design(
        points.begin(), points.begin() + static_cast<std::ptrdiff_t>(
                                             design_count));
    const std::vector<double> design_metric(
        metric_vals.begin(),
        metric_vals.begin() + static_cast<std::ptrdiff_t>(design_count));

    // Unit weight on the cloud (already distributed per the sampling
    // measure, so unweighted least squares minimizes the sample-weighted
    // error that mean/sigma agreement depends on) and a small weight on
    // the structured skeleton — enough to pin the surface over the whole
    // design ball for the tail sampler, not enough to bias the bulk.
    const std::size_t skeleton_count = design_count - cloud_count;
    std::vector<double> fit_weights(design_count, 1.0);
    for (std::size_t i = 0; i < skeleton_count; ++i) fit_weights[i] = 0.1;

    auto surfaces = std::make_shared<analytic::Yield_surfaces>();
    surfaces->metric = analytic::Response_surface::fit(design, design_metric,
                                                       half, fit_weights);
    surfaces->rvar = analytic::Response_surface::fit(
        design,
        {rvar_vals.begin(),
         rvar_vals.begin() + static_cast<std::ptrdiff_t>(design_count)},
        half, fit_weights);
    surfaces->cvar = analytic::Response_surface::fit(
        design,
        {cvar_vals.begin(),
         cvar_vals.begin() + static_cast<std::ptrdiff_t>(design_count)},
        half, fit_weights);
    surfaces->design_points = design_count;
    surfaces->holdout_points = points.size() - design_count;

    const auto [lo, hi] =
        std::minmax_element(design_metric.begin(), design_metric.end());
    surfaces->design_span = *hi - *lo;
    util::ensures(surfaces->design_span > 0.0,
                  "surrogate calibration: the design set is flat — the "
                  "metric does not respond to this engine's axes");

    const std::vector<std::vector<double>> holdout(
        points.begin() + static_cast<std::ptrdiff_t>(design_count),
        points.end());
    const std::vector<double> holdout_metric(
        metric_vals.begin() + static_cast<std::ptrdiff_t>(design_count),
        metric_vals.end());
    surfaces->holdout_rel = analytic::holdout_error(
        surfaces->metric, holdout, holdout_metric, surfaces->design_span);
    util::ensures(surfaces->holdout_rel <= sopts.budget_rel,
                  "surrogate calibration missed its held-out error "
                  "budget; refusing to serve the fit");
    return surfaces;
}

sram::Bitline_electrical Study_session::worst_case_wires(
    const Query_case& c) const
{
    sram::Array_config cfg = opts_.array;
    cfg.word_lines = c.word_lines;
    const auto wc =
        worst_case_cached(c.option, c.word_lines, c.ol_3sigma, {});
    const geom::Wire_array nominal =
        decomposed_array(c.option, c.word_lines, c.ol_3sigma);
    return sram::roll_up_bitline(*extractor_, nominal, wc->realized, tech_,
                                 cfg);
}

// --- measurement helpers -----------------------------------------------------

double Study_session::simulate_td(const sram::Bitline_electrical& wires,
                                  int word_lines) const
{
    sram::Read_sim_context sim;
    return simulate_td_on(
        wires, word_lines, opts_.read.accuracy,
        sram::resolve_solver_policy(opts_.read.accuracy, opts_.read.solver),
        sim);
}

double Study_session::simulate_td_on(const sram::Bitline_electrical& wires,
                                     int word_lines,
                                     sram::Sim_accuracy accuracy,
                                     spice::Solver_policy solver,
                                     sram::Read_sim_context& sim) const
{
    sram::Array_config cfg = opts_.array;
    cfg.word_lines = word_lines;
    sram::Read_options ropts = opts_.read;
    ropts.accuracy = accuracy;
    ropts.solver = solver;
    const sram::Read_result r = sim.simulate(
        tech_, cell_, wires, cfg, opts_.timing, opts_.netlist, ropts);
    util::ensures(r.crossed,
                  "read simulation never reached the sense margin");
    return r.td;
}

double Study_session::simulate_tw(const sram::Bitline_electrical& wires,
                                  int word_lines) const
{
    sram::Write_sim_context sim;
    return simulate_tw_on(
        wires, word_lines, opts_.write.accuracy,
        sram::resolve_solver_policy(opts_.write.accuracy,
                                    opts_.write.solver),
        sim);
}

double Study_session::simulate_tw_on(const sram::Bitline_electrical& wires,
                                     int word_lines,
                                     sram::Sim_accuracy accuracy,
                                     spice::Solver_policy solver,
                                     sram::Write_sim_context& sim) const
{
    sram::Array_config cfg = opts_.array;
    cfg.word_lines = word_lines;
    sram::Write_options wopts = opts_.write;
    wopts.accuracy = accuracy;
    wopts.solver = solver;
    const sram::Write_result r =
        sim.simulate(tech_, cell_, wires, cfg, opts_.write_timing,
                     opts_.netlist, wopts);
    util::ensures(r.flipped, "write simulation never flipped the cell");
    return r.tw;
}

double Study_session::simulate_disturb_on(
    const sram::Bitline_electrical& wires, int word_lines,
    sram::Sim_accuracy accuracy, spice::Solver_policy solver,
    sram::Disturb_sim_context& sim) const
{
    sram::Array_config cfg = opts_.array;
    cfg.word_lines = word_lines;
    sram::Disturb_options dopts = opts_.disturb;
    dopts.accuracy = accuracy;
    dopts.solver = solver;
    // The disturb shares the read schedule: the word line that half-selects
    // this column is fired by a read elsewhere in the row.
    const sram::Disturb_result r = sim.simulate(
        tech_, cell_, wires, cfg, opts_.timing, opts_.netlist, dopts);
    util::ensures(!r.flipped,
                  "half-select pulse flipped the cell: the column is not "
                  "read-stable");
    return r.v_bump;
}

double Study_session::nominal_td_spice(int word_lines,
                                       sram::Sim_accuracy accuracy,
                                       spice::Solver_policy solver,
                                       sram::Read_sim_context* sim) const
{
    const Nominal_key key{word_lines, accuracy, solver};
    {
        const std::lock_guard<std::mutex> lock(nominal_cache_mutex_);
        const auto it = td_nominal_cache_.find(key);
        if (it != td_nominal_cache_.end()) return it->second;
    }

    // Memory miss: consult the disk cache before paying for a transient.
    const std::uint64_t disk_key = nominal_key(fingerprint_, "nominal_td",
                                               word_lines, accuracy, solver);
    if (cache_) {
        if (const auto stored = cache_->load("nominal_td", disk_key)) {
            const double td = util::double_of_json(stored->at("value"));
            const std::lock_guard<std::mutex> lock(nominal_cache_mutex_);
            td_nominal_cache_.emplace(key, td);
            return td;
        }
    }

    const sram::Bitline_electrical wires = nominal_wires(word_lines);
    // The simulation runs outside the lock: two threads racing on the same
    // key redundantly compute the same deterministic value, which beats
    // serializing every caller behind a SPICE transient.
    double td = 0.0;
    if (sim) {
        td = simulate_td_on(wires, word_lines, accuracy, solver, *sim);
    } else {
        sram::Read_sim_context local;
        td = simulate_td_on(wires, word_lines, accuracy, solver, local);
    }
    if (cache_) {
        util::Json payload;
        payload.set("value", util::json_of_double(td));
        cache_->store("nominal_td", disk_key, payload);
    }
    const std::lock_guard<std::mutex> lock(nominal_cache_mutex_);
    td_nominal_cache_.emplace(key, td);
    return td;
}

double Study_session::nominal_tw_spice(int word_lines,
                                       sram::Sim_accuracy accuracy,
                                       spice::Solver_policy solver,
                                       sram::Write_sim_context* sim) const
{
    const Nominal_key key{word_lines, accuracy, solver};
    {
        const std::lock_guard<std::mutex> lock(nominal_cache_mutex_);
        const auto it = tw_nominal_cache_.find(key);
        if (it != tw_nominal_cache_.end()) return it->second;
    }

    const std::uint64_t disk_key = nominal_key(fingerprint_, "nominal_tw",
                                               word_lines, accuracy, solver);
    if (cache_) {
        if (const auto stored = cache_->load("nominal_tw", disk_key)) {
            const double tw = util::double_of_json(stored->at("value"));
            const std::lock_guard<std::mutex> lock(nominal_cache_mutex_);
            tw_nominal_cache_.emplace(key, tw);
            return tw;
        }
    }

    const sram::Bitline_electrical wires = nominal_wires(word_lines);
    // Value-racy-but-deterministic, like the td memo.
    double tw = 0.0;
    if (sim) {
        tw = simulate_tw_on(wires, word_lines, accuracy, solver, *sim);
    } else {
        sram::Write_sim_context local;
        tw = simulate_tw_on(wires, word_lines, accuracy, solver, local);
    }
    if (cache_) {
        util::Json payload;
        payload.set("value", util::json_of_double(tw));
        cache_->store("nominal_tw", disk_key, payload);
    }
    const std::lock_guard<std::mutex> lock(nominal_cache_mutex_);
    tw_nominal_cache_.emplace(key, tw);
    return tw;
}

double Study_session::nominal_disturb_spice(
    int word_lines, sram::Sim_accuracy accuracy,
    spice::Solver_policy solver, sram::Disturb_sim_context* sim) const
{
    const Nominal_key key{word_lines, accuracy, solver};
    {
        const std::lock_guard<std::mutex> lock(nominal_cache_mutex_);
        const auto it = disturb_nominal_cache_.find(key);
        if (it != disturb_nominal_cache_.end()) return it->second;
    }

    const std::uint64_t disk_key = nominal_key(
        fingerprint_, "nominal_disturb", word_lines, accuracy, solver);
    if (cache_) {
        if (const auto stored = cache_->load("nominal_disturb", disk_key)) {
            const double bump = util::double_of_json(stored->at("value"));
            const std::lock_guard<std::mutex> lock(nominal_cache_mutex_);
            disturb_nominal_cache_.emplace(key, bump);
            return bump;
        }
    }

    const sram::Bitline_electrical wires = nominal_wires(word_lines);
    double bump = 0.0;
    if (sim) {
        bump = simulate_disturb_on(wires, word_lines, accuracy, solver,
                                   *sim);
    } else {
        sram::Disturb_sim_context local;
        bump = simulate_disturb_on(wires, word_lines, accuracy, solver,
                                   local);
    }
    if (cache_) {
        util::Json payload;
        payload.set("value", util::json_of_double(bump));
        cache_->store("nominal_disturb", disk_key, payload);
    }
    const std::lock_guard<std::mutex> lock(nominal_cache_mutex_);
    disturb_nominal_cache_.emplace(key, bump);
    return bump;
}

analytic::Td_params Study_session::formula_params(int word_lines) const
{
    return analytic::derive_params(tech_, cell_, nominal_wires(word_lines));
}

analytic::Tw_params Study_session::tw_formula_params(int word_lines) const
{
    return analytic::derive_tw_params(tech_, cell_,
                                      nominal_wires(word_lines));
}

// --- the metric registry -----------------------------------------------------

/// The evaluators: one per metric, each mapping a case to its row on the
/// worker's scratch contexts.  Friend of Study_session so the registry
/// can reach the memos without widening the public surface.
struct Metric_evaluators {
    using Scratch = Study_session::Worker_scratch;

    static Row_value worst_case_rc(const Study_session& s, const Query& q,
                                   const Query_case& c, Scratch&)
    {
        const auto full =
            s.worst_case_cached(c.option, c.word_lines, c.ol_3sigma,
                                q.runner);
        const tech::Technology t = s.tech_with_ol(c.ol_3sigma);
        const auto engine = pattern::make_engine(c.option, t);

        Worst_case_row row;
        row.option = c.option;
        row.corner = full->corner.describe(*engine);
        row.cbl_percent = full->variation.c_percent();
        row.rbl_percent = full->variation.r_percent();
        row.vss_r_percent = (full->vss_r_factor - 1.0) * 100.0;
        return row;
    }

    static Row_value read_td(const Study_session& s, const Query& q,
                             const Query_case& c, Scratch& scratch)
    {
        const sram::Sim_accuracy acc = s.read_accuracy(q);
        const spice::Solver_policy sol = s.read_solver(q);
        Read_row row;
        row.td_nominal =
            s.nominal_td_spice(c.word_lines, acc, sol, &scratch.read);
        row.td_varied =
            s.simulate_td_on(s.worst_case_wires(c), c.word_lines, acc, sol,
                             scratch.read);
        row.tdp_percent = (row.td_varied / row.td_nominal - 1.0) * 100.0;
        return row;
    }

    static Row_value nominal_td(const Study_session& s, const Query& q,
                                const Query_case& c, Scratch& scratch)
    {
        Nominal_td_row row;
        row.td_simulation =
            s.nominal_td_spice(c.word_lines, s.read_accuracy(q),
                               s.read_solver(q), &scratch.read);
        row.td_formula = analytic::td_lumped(
            s.formula_params(c.word_lines), c.word_lines);
        return row;
    }

    static Row_value worst_case_tdp(const Study_session& s, const Query& q,
                                    const Query_case& c, Scratch& scratch)
    {
        // One memoized search serves both the simulated read (worst-corner
        // geometry) and the formula (R/C factors).
        const auto wc =
            s.worst_case_cached(c.option, c.word_lines, c.ol_3sigma, {});
        const Read_row read = std::get<Read_row>(read_td(s, q, c, scratch));

        Tdp_row row;
        row.tdp_simulation = read.tdp_percent;
        row.tdp_formula = analytic::tdp_percent(
            s.formula_params(c.word_lines), c.word_lines,
            wc->variation.r_factor, wc->variation.c_factor);
        return row;
    }

    static Row_value mc_tdp(const Study_session& s, const Query& q,
                            const Query_case& c, Scratch&)
    {
        const auto g =
            s.case_geometry(c.option, c.word_lines, c.ol_3sigma);

        if (q.tdp_engine == Tdp_engine::surrogate) {
            // The million-sample tier: calibrate (memoized) and sample
            // the quadratic surface — no geometry or SPICE per sample.
            const auto surfaces = s.calibrated_surfaces(
                Metric::mc_tdp, c.option, c.word_lines, c.ol_3sigma,
                q.accuracy, q.solver, q.mc.runner);
            return mc::surrogate_distribution(*g.engine, *surfaces, q.mc);
        }

        if (q.tdp_engine == Tdp_engine::spice) {
            // SPICE-in-the-loop: roll up each sample's realized geometry
            // and run its read transient on the per-worker context.  A
            // never-crossing read yields tdp = NaN (poisons the summary)
            // instead of leaking the -1 s sentinel into the percentages.
            const sram::Sim_accuracy acc = s.read_accuracy(q);
            const spice::Solver_policy sol = s.read_solver(q);
            const double td_nom =
                s.nominal_td_spice(c.word_lines, acc, sol, nullptr);
            sram::Read_options ropts = s.opts_.read;
            ropts.accuracy = acc;
            ropts.solver = sol;

            std::vector<sram::Read_sim_context> sims(
                static_cast<std::size_t>(q.mc.runner.resolved_threads()));
            const auto metric = [&](const geom::Wire_array& realized,
                                    const extract::Rc_variation&,
                                    const Run_context& ctx) {
                const sram::Bitline_electrical wires =
                    sram::roll_up_bitline(*s.extractor_, g.nominal,
                                          realized, s.tech_, g.cfg);
                const sram::Read_result r =
                    sims[static_cast<std::size_t>(ctx.worker)].simulate(
                        s.tech_, s.cell_, wires, g.cfg, s.opts_.timing,
                        s.opts_.netlist, ropts);
                if (!r.crossed) {
                    return std::numeric_limits<double>::quiet_NaN();
                }
                return (r.td / td_nom - 1.0) * 100.0;
            };
            return mc::metric_distribution(*g.engine, *s.extractor_,
                                           g.nominal, g.victims.bl, metric,
                                           q.mc);
        }

        // The paper's own Monte-Carlo method (the historical default):
        // extract each sample's parasitics, evaluate the analytic model.
        return mc::tdp_distribution(*g.engine, *s.extractor_, g.nominal,
                                    g.victims.bl,
                                    s.formula_params(c.word_lines),
                                    c.word_lines, q.mc);
    }

    static Row_value write_tw(const Study_session& s, const Query& q,
                              const Query_case& c, Scratch& scratch)
    {
        const sram::Sim_accuracy acc = s.write_accuracy(q);
        const spice::Solver_policy sol = s.write_solver(q);
        Write_row row;
        row.tw_nominal =
            s.nominal_tw_spice(c.word_lines, acc, sol, &scratch.write);
        row.tw_varied =
            s.simulate_tw_on(s.worst_case_wires(c), c.word_lines, acc, sol,
                             scratch.write);
        row.twp_percent = (row.tw_varied / row.tw_nominal - 1.0) * 100.0;
        return row;
    }

    static Row_value nominal_tw(const Study_session& s, const Query& q,
                                const Query_case& c, Scratch& scratch)
    {
        Nominal_tw_row row;
        row.tw_simulation =
            s.nominal_tw_spice(c.word_lines, s.write_accuracy(q),
                               s.write_solver(q), &scratch.write);
        row.tw_formula = analytic::tw_lumped(
            s.tw_formula_params(c.word_lines), c.word_lines);
        return row;
    }

    static Row_value mc_twp(const Study_session& s, const Query& q,
                            const Query_case& c, Scratch&)
    {
        const auto g =
            s.case_geometry(c.option, c.word_lines, c.ol_3sigma);

        if (q.twp_engine == Twp_engine::surrogate) {
            const auto surfaces = s.calibrated_surfaces(
                Metric::mc_twp, c.option, c.word_lines, c.ol_3sigma,
                q.accuracy, q.solver, q.mc.runner);
            return mc::surrogate_distribution(*g.engine, *surfaces, q.mc);
        }

        if (q.twp_engine == Twp_engine::formula) {
            // The cheap engine: the analytic tw model maps each sample's
            // R/C factors to twp, so 10k-sample write distributions cost
            // what the read MC does (no transient per sample).
            const analytic::Tw_params params =
                s.tw_formula_params(c.word_lines);
            const int n = c.word_lines;
            const auto metric = [&params, n](const geom::Wire_array&,
                                             const extract::Rc_variation& v,
                                             const Run_context&) {
                return analytic::twp_percent(params, n, v.r_factor,
                                             v.c_factor);
            };
            return mc::metric_distribution(*g.engine, *s.extractor_,
                                           g.nominal, g.victims.bl, metric,
                                           q.mc);
        }

        const sram::Sim_accuracy acc = s.write_accuracy(q);
        const spice::Solver_policy sol = s.write_solver(q);
        const double tw_nom =
            s.nominal_tw_spice(c.word_lines, acc, sol, nullptr);
        sram::Write_options wopts = s.opts_.write;
        wopts.accuracy = acc;
        wopts.solver = sol;

        // SPICE-in-the-loop engine: roll up each sample's realized
        // geometry and simulate its write on the per-worker context.  A
        // non-flipping sample yields tw = NaN, which flows into a NaN twp
        // instead of aborting the sweep.
        std::vector<sram::Write_sim_context> sims(
            static_cast<std::size_t>(q.mc.runner.resolved_threads()));
        const auto metric = [&](const geom::Wire_array& realized,
                                const extract::Rc_variation&,
                                const Run_context& ctx) {
            const sram::Bitline_electrical wires = sram::roll_up_bitline(
                *s.extractor_, g.nominal, realized, s.tech_, g.cfg);
            const sram::Write_result r =
                sims[static_cast<std::size_t>(ctx.worker)].simulate(
                    s.tech_, s.cell_, wires, g.cfg, s.opts_.write_timing,
                    s.opts_.netlist, wopts);
            return (r.tw / tw_nom - 1.0) * 100.0;
        };
        return mc::metric_distribution(*g.engine, *s.extractor_, g.nominal,
                                       g.victims.bl, metric, q.mc);
    }

    static Row_value disturb(const Study_session& s, const Query& q,
                             const Query_case& c, Scratch& scratch)
    {
        const sram::Sim_accuracy acc = s.disturb_accuracy(q);
        const spice::Solver_policy sol = s.disturb_solver(q);
        Disturb_row row;
        row.v_bump_nominal =
            s.nominal_disturb_spice(c.word_lines, acc, sol,
                                    &scratch.disturb);
        row.v_bump_varied =
            s.simulate_disturb_on(s.worst_case_wires(c), c.word_lines, acc,
                                  sol, scratch.disturb);
        row.disturb_percent =
            (row.v_bump_varied / row.v_bump_nominal - 1.0) * 100.0;
        return row;
    }
};

const Metric_descriptor& metric_descriptor(Metric metric)
{
    // Index == static_cast<int>(Metric).  worst_case_rc and the MC
    // metrics run their cases serially (parallelism lives inside each
    // case); everything else fans cases out on the query runner.
    static const std::array<Metric_descriptor, 9> registry{{
        {"worst_case_rc", true, &Metric_evaluators::worst_case_rc},
        {"read_td", false, &Metric_evaluators::read_td},
        {"nominal_td", false, &Metric_evaluators::nominal_td},
        {"worst_case_tdp", false, &Metric_evaluators::worst_case_tdp},
        {"mc_tdp", true, &Metric_evaluators::mc_tdp},
        {"write_tw", false, &Metric_evaluators::write_tw},
        {"nominal_tw", false, &Metric_evaluators::nominal_tw},
        {"mc_twp", true, &Metric_evaluators::mc_twp},
        {"disturb", false, &Metric_evaluators::disturb},
    }};
    const auto index = static_cast<std::size_t>(metric);
    util::expects(index < registry.size(), "unknown metric");
    util::expects(registry[index].name == to_string(metric),
                  "metric registry out of sync with the Metric enum");
    return registry[index];
}

// --- the one generic fan-out -------------------------------------------------

Result_table Study_session::run(const Query& query) const
{
    query_runs_.fetch_add(1, std::memory_order_relaxed);
    const Metric_descriptor& d = metric_descriptor(query.metric);

    std::vector<Query_case> cases = query.cases;
    for (Query_case& c : cases) {
        if (c.word_lines <= 0) c.word_lines = opts_.array.word_lines;
        util::expects(c.word_lines > 0, "query case needs word lines");
    }

    // Full-query cache: on a hit the run performs no simulation work at
    // all (no memo traffic, no counter movement) and the rows — rebound
    // onto THIS query's normalized axes — are bitwise identical to a
    // fresh compute, by the determinism contract.
    const std::uint64_t disk_key = cache_ ? query_key(*this, query) : 0;
    if (cache_) {
        if (const auto stored = cache_->load("query", disk_key)) {
            const Result_table cached = result_table_of_json(*stored);
            util::ensures(cached.metric() == query.metric &&
                              cached.size() == cases.size(),
                          "cached query entry does not match its key");
            std::vector<Row_value> rows;
            rows.reserve(cached.size());
            for (std::size_t i = 0; i < cached.size(); ++i) {
                rows.push_back(cached.raw(i));
            }
            return Result_table(query.metric, std::move(cases),
                                std::move(rows));
        }
    }

    // Serial-case metrics keep their per-case results independent of the
    // sweep composition (and of query.runner): the plan runs in order on
    // the calling thread while each case parallelizes internally.
    const Runner_options fan_out =
        d.serial_cases ? Runner_options{1} : query.runner;

    std::vector<Row_value> rows(cases.size());
    std::vector<Worker_scratch> scratch(
        static_cast<std::size_t>(fan_out.resolved_threads()));

    Run_plan plan;
    plan.add_indexed(cases.size(), [&](std::size_t i,
                                       const Run_context& ctx) {
        // Write-own-slot + plan-order contract: row i belongs to case i,
        // and the plan index IS the case index (the reduction into the
        // Result_table relies on that ordering, not on completion order).
        const std::size_t slot = checked_slot(ctx, rows.size());
        MPSRAM_ASSERT(slot == i, "plan order out of sync with case order",
                      MPSRAM_VAL(slot), MPSRAM_VAL(i));
        rows[slot] = d.eval(*this, query, cases[i],
                            scratch[checked_worker(ctx, scratch.size())]);
    });
    core::run(plan, fan_out);

    Result_table table(query.metric, std::move(cases), std::move(rows));
    if (cache_) cache_->store("query", disk_key, json_of_result_table(table));
    return table;
}

} // namespace mpsram::core
