// Study_session: the execution engine behind every study query (PR 5).
//
// A session binds a technology + Study_options and owns the shared state
// a study accumulates — the extractor, the promise-backed worst-case
// memo, and the per-metric nominal memos.  Every artifact of the paper
// (and every extension workload) is obtained the same way:
//
//     Study_session session;
//     Result_table t = session.run(query);
//
// run() executes ANY metric through one generic fan-out: normalize the
// query's cases, allocate one Worker_scratch (read/write/disturb
// simulation contexts) per worker, put one case per job on a Run_plan,
// and dispatch each job to the metric's registered evaluator.  The
// registry (session.cpp) is the extension seam: a new workload registers
// a Metric_descriptor — its context traits, nominal memo, and measurement
// functor — and inherits batching, memoization, accuracy policy, and the
// determinism contract without touching this class.  The half-select
// disturb metric is exactly such a registration.
//
// Determinism contract (unchanged from the legacy batch APIs): one job
// per case, each writing only its own row; randomized metrics derive
// their streams from sample indices; results are bitwise identical at
// any thread count.
#ifndef MPSRAM_CORE_SESSION_H
#define MPSRAM_CORE_SESSION_H

#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "analytic/params.h"
#include "analytic/response_surface.h"
#include "core/query.h"
#include "core/result_cache.h"
#include "core/runner.h"
#include "extract/extractor.h"
#include "mc/worst_case.h"
#include "pattern/engine.h"
#include "sram/disturb_sim.h"
#include "sram/read_sim.h"
#include "sram/write_sim.h"
#include "tech/technology.h"

namespace mpsram::core {

struct Study_options {
    sram::Array_config array;  ///< bl_pairs defaults to the paper's 10
    extract::Extraction_options extraction;
    sram::Read_timing timing;
    /// Read-measurement options, including the integration-engine policy:
    /// `read.accuracy` defaults to the calibrated adaptive-LTE engine
    /// (sram::Sim_accuracy::fast) and governs every read transient the
    /// session runs unless a query overrides it (Query::accuracy).  Pin
    /// sram::Sim_accuracy::reference for the fixed-step oracle.  Either
    /// way results are bitwise identical at any thread count.
    sram::Read_options read;
    sram::Netlist_options netlist;
    sram::Write_timing write_timing;
    /// Write-measurement options; `write.accuracy` governs the write-path
    /// transients exactly like `read.accuracy` does the read's.
    sram::Write_options write;
    /// Half-select measurement options; the disturb schedule itself is
    /// the read timing (`timing`) — the disturb is a read of another
    /// column in the same row.
    sram::Disturb_options disturb;
    /// Calibration policy of the surrogate engine tier: design-box span,
    /// held-out validation size, and the relative-error budget a fitted
    /// surface must meet before the session serves it.
    analytic::Surrogate_options surrogate;
    /// On-disk result cache policy (core/result_cache.h).  Unset fields
    /// fall back to the MPSRAM_CACHE / MPSRAM_CACHE_DIR pins; with no
    /// directory from either source the session runs uncached.  These
    /// options never enter the canonical cache keys — caching is
    /// execution policy, like thread counts.
    Cache_options cache;
};

class Study_session {
public:
    explicit Study_session(tech::Technology tech = tech::n10(),
                           Study_options opts = Study_options{});

    const tech::Technology& technology() const { return tech_; }
    const Study_options& options() const { return opts_; }

    /// Execute a query: one row per case, indexed like `query.cases`,
    /// bitwise identical at any `query.runner` thread count.  Cases with
    /// word_lines <= 0 resolve to `options().array.word_lines`.
    ///
    /// Safe for concurrent callers on one shared session — this is the
    /// entry point the query service daemon (core/service.h) multiplexes
    /// clients onto.  The shared state is either promise-backed (corner
    /// and surface memos: one compute per key, concurrent callers wait)
    /// or mutex-guarded (nominal memos), and the on-disk cache is atomic;
    /// every caller receives the same bitwise-identical rows.
    Result_table run(const Query& query) const;

    /// Queries executed through run() since construction (memoized or
    /// not) — the serve-traffic observable reported by the service
    /// daemon's `status` op.
    std::size_t query_run_count() const
    {
        return query_runs_.load(std::memory_order_relaxed);
    }

    // --- building blocks (exposed for examples, benches and tests) -----------
    /// Nominal metal1 array, decomposed for the option.
    geom::Wire_array decomposed_array(tech::Patterning_option option,
                                      int word_lines,
                                      double ol_3sigma = -1.0) const;

    const extract::Extractor& extractor() const { return *extractor_; }

    /// SPICE td with explicit wire electricals (session accuracy policy).
    double simulate_td(const sram::Bitline_electrical& wires,
                       int word_lines) const;

    /// SPICE tw with explicit wire electricals (throws if the write never
    /// flips the cell).
    double simulate_tw(const sram::Bitline_electrical& wires,
                       int word_lines) const;

    /// Formula parameters at nominal wires for a given array length.
    analytic::Td_params formula_params(int word_lines) const;

    /// Write-formula parameters at nominal wires (analytic/tw_formula.h).
    analytic::Tw_params tw_formula_params(int word_lines) const;

    /// Worst-case search result with full geometry.  Memoized on
    /// (option, word_lines, ol_3sigma): the corner enumeration runs
    /// exactly once per key no matter how many callers — concurrent ones
    /// included — ask for it; every metric shares the same memo.
    /// `runner` only matters for the caller that performs the enumeration.
    mc::Worst_case_result worst_case_full(tech::Patterning_option option,
                                          int word_lines,
                                          double ol_3sigma = -1.0,
                                          const Runner_options& runner = {})
        const;

    /// Corner enumerations actually performed (not memo hits) since
    /// construction — the observable for the one-search-per-key contract.
    std::size_t corner_search_count() const
    {
        return corner_searches_.load(std::memory_order_relaxed);
    }

    /// Calibrated surrogate surfaces of a distribution metric (`mc_tdp`
    /// or `mc_twp`) at a study point: a small SPICE design set evaluated
    /// on `runner` (one job per design point — bitwise identical at any
    /// thread count), least-squares fitted, and validated on held-out
    /// Gaussian draws.  Throws if the held-out relative error misses
    /// `options().surrogate.budget_rel` — the gate that refuses to serve
    /// a bad fit.  Memoized on (metric, option, word_lines, ol_3sigma,
    /// accuracy, resolved solver policy) behind a promise-backed memo
    /// like the worst-case search: concurrent queries of one key fit
    /// exactly once.  `accuracy` defaults to the session's read/write
    /// policy for the metric; `solver` resolves against it
    /// (sram/solver_policy.h).
    std::shared_ptr<const analytic::Yield_surfaces> calibrated_surfaces(
        Metric metric, tech::Patterning_option option, int word_lines,
        double ol_3sigma = -1.0,
        std::optional<sram::Sim_accuracy> accuracy = std::nullopt,
        std::optional<spice::Solver_policy> solver = std::nullopt,
        const Runner_options& runner = {}) const;

    /// Surface calibrations actually performed (not memo hits) since
    /// construction — the observable for the one-fit-per-key contract.
    std::size_t surface_fit_count() const
    {
        return surface_fits_.load(std::memory_order_relaxed);
    }

    // --- on-disk result cache -------------------------------------------------
    // When Study_options::cache (or the MPSRAM_CACHE_DIR pin) names a
    // directory, the session persists its expensive artifacts across
    // processes: full query results in run(), worst-case corners, nominal
    // SPICE transients, and calibrated surrogate fits — each addressed by
    // the canonical-hash contract of core/serialize.h.  The keys cover
    // everything that influences a result (configuration fingerprint,
    // resolved axes, resolved execution policies, MC spec, engine tiers,
    // format version) and deliberately exclude everything that does not
    // (thread counts, cache mode/directory).  That is sound because of
    // the determinism contract above: a result is a pure function of its
    // key material, bitwise identical at any thread count, so an entry
    // written by any process — at any parallelism, in any shard — is THE
    // result.  A warm cache therefore skips the corresponding compute
    // entirely (corner_search_count() / surface_fit_count() stay flat on
    // hits) and returns bitwise-identical rows.

    /// Cache traffic of this session (entries served / missed / written).
    /// All zero when the session runs uncached.
    std::uint64_t cache_hit_count() const
    {
        return cache_ ? cache_->hit_count() : 0;
    }
    std::uint64_t cache_miss_count() const
    {
        return cache_ ? cache_->miss_count() : 0;
    }
    std::uint64_t cache_store_count() const
    {
        return cache_ ? cache_->store_count() : 0;
    }
    /// The resolved cache mode (off when no directory is configured).
    Cache_mode cache_mode() const
    {
        return cache_ ? cache_->mode() : Cache_mode::off;
    }

    /// FNV-1a fingerprint of the session's technology + study options
    /// (core/serialize.h) — the configuration component of every cache
    /// key, exposed for the shard driver and tests.
    std::uint64_t config_fingerprint() const { return fingerprint_; }

    /// Per-worker scratch of a query run: one simulation context per
    /// operation kind.  Contexts build their netlists lazily on first
    /// use, so a metric touching only one kind pays only for that one.
    struct Worker_scratch {
        sram::Read_sim_context read;
        sram::Write_sim_context write;
        sram::Disturb_sim_context disturb;
    };

private:
    // The metric evaluators live in session.cpp and are registered in the
    // descriptor table; they reach the memo helpers through friendship.
    friend struct Metric_evaluators;

    tech::Technology tech_with_ol(double ol_3sigma) const;
    /// Extracted per-cell electricals of the nominal (drawn) array.
    sram::Bitline_electrical nominal_wires(int word_lines) const;

    /// The shared derivation every geometry-sampling metric starts from:
    /// array config at the case's length, the option's patterning engine
    /// (under the case's overlay budget), the decomposed nominal array,
    /// and its victim wire indices.
    struct Case_geometry {
        sram::Array_config cfg;
        std::unique_ptr<pattern::Patterning_engine> engine;
        geom::Wire_array nominal;
        sram::Victim_wires victims;
    };
    Case_geometry case_geometry(tech::Patterning_option option,
                                int word_lines, double ol_3sigma) const;

    /// Effective accuracy of a query for one of the option sets: the
    /// query override when present, the session policy otherwise.
    sram::Sim_accuracy read_accuracy(const Query& q) const;
    sram::Sim_accuracy write_accuracy(const Query& q) const;
    sram::Sim_accuracy disturb_accuracy(const Query& q) const;

    /// Effective (resolved) solver tier of a query: the query override
    /// when present, else the session option, resolved against the
    /// path's effective accuracy (sram/solver_policy.h contract).
    spice::Solver_policy read_solver(const Query& q) const;
    spice::Solver_policy write_solver(const Query& q) const;
    spice::Solver_policy disturb_solver(const Query& q) const;

    double nominal_td_spice(int word_lines, sram::Sim_accuracy accuracy,
                            spice::Solver_policy solver,
                            sram::Read_sim_context* sim = nullptr) const;
    double nominal_tw_spice(int word_lines, sram::Sim_accuracy accuracy,
                            spice::Solver_policy solver,
                            sram::Write_sim_context* sim = nullptr) const;
    double nominal_disturb_spice(int word_lines, sram::Sim_accuracy accuracy,
                                 spice::Solver_policy solver,
                                 sram::Disturb_sim_context* sim) const;
    double simulate_td_on(const sram::Bitline_electrical& wires,
                          int word_lines, sram::Sim_accuracy accuracy,
                          spice::Solver_policy solver,
                          sram::Read_sim_context& sim) const;
    double simulate_tw_on(const sram::Bitline_electrical& wires,
                          int word_lines, sram::Sim_accuracy accuracy,
                          spice::Solver_policy solver,
                          sram::Write_sim_context& sim) const;
    double simulate_disturb_on(const sram::Bitline_electrical& wires,
                               int word_lines, sram::Sim_accuracy accuracy,
                               spice::Solver_policy solver,
                               sram::Disturb_sim_context& sim) const;

    /// Worst-corner wire electricals of a case (memoized corner search +
    /// rollup of the realized geometry).
    sram::Bitline_electrical worst_case_wires(const Query_case& c) const;

    /// The worst-case memo entry for a key, computing it (exactly once,
    /// promise-backed) on a miss.
    std::shared_ptr<const mc::Worst_case_result> worst_case_cached(
        tech::Patterning_option option, int word_lines, double ol_3sigma,
        const Runner_options& runner) const;

    /// The uncached calibration: design + held-out SPICE evaluations,
    /// fit, and the held-out gate.  Called by calibrated_surfaces for the
    /// owning (first) caller of a memo key.
    std::shared_ptr<const analytic::Yield_surfaces> calibrate_surfaces(
        Metric metric, tech::Patterning_option option, int word_lines,
        double ol_3sigma, sram::Sim_accuracy accuracy,
        spice::Solver_policy solver, const Runner_options& runner) const;

    tech::Technology tech_;
    Study_options opts_;
    std::unique_ptr<extract::Extractor> extractor_;
    sram::Cell_electrical cell_;

    /// On-disk cache (null when off or no directory is configured) and
    /// the configuration fingerprint its keys embed.  The cache's own
    /// counters are atomic, so const query paths may use it freely.
    std::shared_ptr<Result_cache> cache_;
    std::uint64_t fingerprint_ = 0;

    // The nominal-metric memos (one per metric: td / tw / disturb bump),
    // keyed on (word_lines, accuracy, resolved solver policy) so queries
    // overriding either execution policy on one session never cross
    // results between engines or solver tiers.  Batch evaluators hit them
    // from pool workers, so all access goes through nominal_cache_mutex_;
    // the values are racy-but-deterministic (redundant computes beat
    // serializing behind a transient).
    using Nominal_key =
        std::tuple<int, sram::Sim_accuracy, spice::Solver_policy>;
    mutable std::mutex nominal_cache_mutex_;
    mutable std::map<Nominal_key, double> td_nominal_cache_;
    mutable std::map<Nominal_key, double> tw_nominal_cache_;
    mutable std::map<Nominal_key, double> disturb_nominal_cache_;
    /// Nominal extraction memo: build_metal1_array + decomposition +
    /// roll-up per word-line count, shared by the formula parameters and
    /// every nominal transient (engine-independent, so keyed on n only).
    mutable std::map<int, sram::Bitline_electrical> nominal_wires_cache_;

    // Worst-case memo: option/word_lines/ol_3sigma (negative budgets
    // normalized to -1) -> shared future of the search result.  The first
    // caller of a key inserts the future and runs the enumeration outside
    // the lock; concurrent callers of the same key wait on the future
    // instead of duplicating the search.
    using Wc_key = std::tuple<tech::Patterning_option, int, double>;
    using Wc_entry =
        std::shared_future<std::shared_ptr<const mc::Worst_case_result>>;
    mutable std::mutex wc_cache_mutex_;
    mutable std::map<Wc_key, Wc_entry> wc_cache_;
    mutable std::atomic<std::size_t> corner_searches_{0};

    // Surrogate calibration memo, same promise-backed shape as the
    // worst-case memo (first caller fits outside the lock, concurrent
    // callers of the key wait on the shared future, a failed fit
    // un-publishes its slot).  Keyed per accuracy policy so mixed-engine
    // sessions never serve a fast-calibrated surface to a reference
    // query.
    using Surface_key = std::tuple<Metric, tech::Patterning_option, int,
                                   double, sram::Sim_accuracy,
                                   spice::Solver_policy>;
    using Surface_entry = std::shared_future<
        std::shared_ptr<const analytic::Yield_surfaces>>;
    mutable std::mutex surface_cache_mutex_;
    mutable std::map<Surface_key, Surface_entry> surface_cache_;
    mutable std::atomic<std::size_t> surface_fits_{0};

    /// run() invocations (query_run_count above).
    mutable std::atomic<std::size_t> query_runs_{0};
};

/// Registry entry of a metric: everything run() needs that differs
/// between metrics.  The evaluator computes one case's row on the
/// worker's scratch contexts; it must not depend on worker assignment.
struct Metric_descriptor {
    std::string_view name;
    /// Case loop runs in plan order on one thread; the metric
    /// parallelizes inside each case instead (MC sample loops, corner
    /// enumerations).  Keeps every case's result independent of the
    /// sweep composition.
    bool serial_cases = false;
    Row_value (*eval)(const Study_session&, const Query&, const Query_case&,
                      Study_session::Worker_scratch&) = nullptr;
};

/// The descriptor registered for a metric (the extension seam: new
/// workloads add a row to the table in session.cpp, not a method here).
const Metric_descriptor& metric_descriptor(Metric metric);

} // namespace mpsram::core

#endif // MPSRAM_CORE_SESSION_H
