#include "core/result_cache.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <utility>
#include <vector>

#include "util/atomic_file.h"
#include "util/contracts.h"
#include "util/hash.h"

namespace mpsram::core {

namespace {

// Process-wide aggregate, fed by every instance's counters as they tick.
std::atomic<std::uint64_t> global_hits{0};
std::atomic<std::uint64_t> global_misses{0};
std::atomic<std::uint64_t> global_stores{0};

} // namespace

Cache_mode parse_cache_mode(std::string_view text)
{
    if (text == "off") return Cache_mode::off;
    if (text == "read") return Cache_mode::read;
    if (text == "readwrite") return Cache_mode::readwrite;
    throw util::Precondition_error(
        "invalid MPSRAM_CACHE value '" + std::string(text) +
        "' (accepted: 'off', 'read', 'readwrite')");
}

Cache_mode default_cache_mode()
{
    static const Cache_mode mode = [] {
        const char* env = std::getenv("MPSRAM_CACHE");
        if (env == nullptr) return Cache_mode::readwrite;
        return parse_cache_mode(env);
    }();
    return mode;
}

std::string parse_cache_dir(std::string_view text)
{
    if (text.empty()) {
        throw util::Precondition_error(
            "invalid MPSRAM_CACHE_DIR value '' (must name a directory; "
            "unset the variable to disable the cache)");
    }
    return std::string(text);
}

const std::optional<std::string>& default_cache_dir()
{
    static const std::optional<std::string> dir =
        []() -> std::optional<std::string> {
        const char* env = std::getenv("MPSRAM_CACHE_DIR");
        if (env == nullptr) return std::nullopt;
        return parse_cache_dir(env);
    }();
    return dir;
}

const char* to_string(Cache_mode mode)
{
    switch (mode) {
    case Cache_mode::off: return "off";
    case Cache_mode::read: return "read";
    case Cache_mode::readwrite: return "readwrite";
    }
    return "off";
}

Result_cache::Result_cache(std::string directory, Cache_mode mode,
                           std::uint64_t version)
    : directory_(std::move(directory)), mode_(mode), version_(version)
{
    util::expects(!directory_.empty(),
                  "a result cache needs a directory");
}

std::string Result_cache::entry_path(std::string_view kind,
                                     std::uint64_t key) const
{
    return directory_ + "/v" + std::to_string(version_) + "/" +
           std::string(kind) + "/" + util::hex16(key) + ".json";
}

std::optional<util::Json> Result_cache::load(std::string_view kind,
                                             std::uint64_t key)
{
    const auto miss = [this]() -> std::optional<util::Json> {
        misses_.fetch_add(1, std::memory_order_relaxed);
        global_misses.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    };
    if (mode_ == Cache_mode::off) return std::nullopt;

    const std::optional<std::string> raw =
        util::read_file(entry_path(kind, key));
    if (!raw) return miss();

    // A damaged entry (torn write outside write_file_atomic, disk fault,
    // manual edit) must degrade to a recompute, never propagate.
    try {
        const util::Json envelope = util::Json::parse(*raw);
        if (envelope.at("version").as_u64() != version_) return miss();
        if (envelope.at("kind").as_string() != kind) return miss();
        if (envelope.at("key").as_string() != util::hex16(key)) {
            return miss();
        }
        const util::Json& payload = envelope.at("payload");
        const std::uint64_t checksum = util::fnv1a(payload.dump());
        if (envelope.at("checksum").as_string() != util::hex16(checksum)) {
            return miss();
        }
        hits_.fetch_add(1, std::memory_order_relaxed);
        global_hits.fetch_add(1, std::memory_order_relaxed);
        return payload;
    } catch (const util::Precondition_error&) {
        return miss();
    }
}

void Result_cache::store(std::string_view kind, std::uint64_t key,
                         const util::Json& payload)
{
    if (mode_ != Cache_mode::readwrite) return;

    util::Json envelope;
    envelope.set("version", version_);
    envelope.set("kind", kind);
    envelope.set("key", util::hex16(key));
    envelope.set("checksum", util::hex16(util::fnv1a(payload.dump())));
    envelope.set("payload", payload);

    const std::string path = entry_path(kind, key);
    std::filesystem::create_directories(
        std::filesystem::path(path).parent_path());
    util::write_file_atomic(path, envelope.dump());
    stores_.fetch_add(1, std::memory_order_relaxed);
    global_stores.fetch_add(1, std::memory_order_relaxed);
}

namespace {

/// A cache entry is self-describing; valid means load() could serve it:
/// parseable envelope whose kind/key agree with the file's own path and
/// whose checksum matches the payload.  Anything else is dead weight.
bool valid_entry(const std::filesystem::path& path, const std::string& raw)
{
    try {
        const util::Json envelope = util::Json::parse(raw);
        envelope.at("version").as_u64();
        if (envelope.at("kind").as_string() !=
            path.parent_path().filename().string()) {
            return false;
        }
        if (envelope.at("key").as_string() != path.stem().string()) {
            return false;
        }
        const std::uint64_t checksum =
            util::fnv1a(envelope.at("payload").dump());
        return envelope.at("checksum").as_string() == util::hex16(checksum);
    } catch (const util::Precondition_error&) {
        return false;
    }
}

} // namespace

Gc_stats gc_result_cache(const std::string& directory,
                         const Gc_options& options)
{
    namespace fs = std::filesystem;
    util::expects(fs::is_directory(directory),
                  "cache-gc needs an existing cache directory");

    struct Entry {
        fs::path path;
        std::uint64_t bytes = 0;
        fs::file_time_type mtime;
    };
    Gc_stats stats;
    std::vector<Entry> survivors;
    for (const auto& item : fs::recursive_directory_iterator(directory)) {
        if (!item.is_regular_file()) continue;
        const fs::path& path = item.path();
        if (path.extension() != ".json") continue;
        const std::uint64_t bytes = item.file_size();
        stats.bytes_before += bytes;
        const std::optional<std::string> raw = util::read_file(path.string());
        if (!raw || !valid_entry(path, *raw)) {
            fs::remove(path);
            ++stats.corrupt_deleted;
            continue;
        }
        survivors.push_back({path, bytes, item.last_write_time()});
    }

    if (options.max_bytes) {
        // Oldest first; path breaks mtime ties so the eviction order is
        // reproducible on filesystems with coarse timestamps.
        std::sort(survivors.begin(), survivors.end(),
                  [](const Entry& a, const Entry& b) {
                      if (a.mtime != b.mtime) return a.mtime < b.mtime;
                      return a.path < b.path;
                  });
        std::uint64_t total = 0;
        for (const Entry& e : survivors) total += e.bytes;
        std::size_t next = 0;
        while (total > *options.max_bytes && next < survivors.size()) {
            fs::remove(survivors[next].path);
            total -= survivors[next].bytes;
            ++stats.evicted;
            ++next;
        }
        survivors.erase(survivors.begin(),
                        survivors.begin() +
                            static_cast<std::ptrdiff_t>(next));
    }

    stats.entries = survivors.size();
    for (const Entry& e : survivors) stats.bytes_after += e.bytes;
    return stats;
}

Cache_stats process_cache_stats()
{
    Cache_stats s;
    s.hits = global_hits.load(std::memory_order_relaxed);
    s.misses = global_misses.load(std::memory_order_relaxed);
    s.stores = global_stores.load(std::memory_order_relaxed);
    return s;
}

} // namespace mpsram::core
