#include "core/service.h"

#include <chrono>
#include <cstdint>
#include <deque>
#include <exception>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/serialize.h"
#include "util/hash.h"
#include "util/socket.h"

namespace mpsram::core {

namespace {

/// Service-side wall time of a request [ms].  Diagnostic metadata only —
/// it rides in the `serve` object, never inside a result payload, so the
/// bitwise-identity contract is untouched.
double wall_ms_since(std::chrono::steady_clock::time_point start)
{
    const auto end = std::chrono::steady_clock::now(); // lint:allow(wall-clock)
    return std::chrono::duration<double, std::milli>(end - start).count();
}

} // namespace

Query_service::Query_service(const Study_session& session,
                             Service_options opts)
    : session_(session), opts_(std::move(opts))
{
}

util::Json Query_service::error_json(std::string_view code,
                                     std::string_view message,
                                     const util::Json* id)
{
    util::Json response;
    response.set("v", service_protocol_version);
    response.set("ok", false);
    if (id != nullptr) response.set("id", *id);
    util::Json error;
    error.set("code", code);
    error.set("message", message);
    response.set("error", std::move(error));
    if (code != "busy") ++stats_.errors;
    return response;
}

util::Json Query_service::ok_json(std::string_view op, const util::Json* id)
{
    util::Json response;
    response.set("v", service_protocol_version);
    response.set("ok", true);
    response.set("op", op);
    if (id != nullptr) response.set("id", *id);
    return response;
}

util::Json Query_service::op_query(const util::Json& request,
                                   const util::Json* id)
{
    const util::Json* payload = request.find("query");
    if (payload == nullptr) {
        return error_json("malformed", "op 'query' requires a 'query' member",
                          id);
    }
    Query query;
    try {
        query = query_of_json(*payload);
    } catch (const std::exception& ex) {
        return error_json("malformed",
                          std::string("undecodable query payload: ") +
                              ex.what(),
                          id);
    }
    // The wire format deliberately carries no runner (execution policy,
    // not key material); the daemon's policy applies to every request.
    query.runner = opts_.runner;
    query.mc.runner = opts_.runner;

    const auto start = std::chrono::steady_clock::now(); // lint:allow(wall-clock)
    const std::uint64_t hits0 = session_.cache_hit_count();
    const std::uint64_t misses0 = session_.cache_miss_count();
    const std::uint64_t stores0 = session_.cache_store_count();
    const std::size_t corners0 = session_.corner_search_count();
    const std::size_t surfaces0 = session_.surface_fit_count();

    std::uint64_t key = 0;
    util::Json table;
    bool memo_hit = false;
    try {
        key = query_key(session_, query);
        const auto memoized = memo_.find(key);
        if (memoized != memo_.end()) {
            table = memoized->second.table;
            memo_lru_.splice(memo_lru_.begin(), memo_lru_,
                             memoized->second.lru);
            memo_hit = true;
            ++stats_.memo_hits;
        } else {
            table = json_of_result_table(session_.run(query));
            if (opts_.max_memo_entries > 0) {
                memo_lru_.push_front(key);
                memo_.emplace(key, Memo_entry{table, memo_lru_.begin()});
                if (memo_.size() > opts_.max_memo_entries) {
                    memo_.erase(memo_lru_.back());
                    memo_lru_.pop_back();
                    ++stats_.memo_evictions;
                }
            }
        }
    } catch (const std::exception& ex) {
        return error_json("failed", ex.what(), id);
    }
    ++stats_.queries;

    util::Json serve;
    serve.set("query_hash", util::hex16(key));
    serve.set("memo_hit", memo_hit);
    serve.set("cache_hits", session_.cache_hit_count() - hits0);
    serve.set("cache_misses", session_.cache_miss_count() - misses0);
    serve.set("cache_stores", session_.cache_store_count() - stores0);
    serve.set("corner_searches", static_cast<std::uint64_t>(
                                     session_.corner_search_count() -
                                     corners0));
    serve.set("surface_fits", static_cast<std::uint64_t>(
                                  session_.surface_fit_count() - surfaces0));
    serve.set("wall_ms", wall_ms_since(start));
    serve.set("queue_depth", static_cast<std::uint64_t>(queue_depth_));

    util::Json response = ok_json("query", id);
    response.set("result", std::move(table));
    response.set("serve", std::move(serve));
    return response;
}

util::Json Query_service::op_status(const util::Json* id)
{
    util::Json status;
    status.set("requests", stats_.requests);
    status.set("queries", stats_.queries);
    status.set("memo_hits", stats_.memo_hits);
    status.set("memo_entries", static_cast<std::uint64_t>(memo_.size()));
    status.set("memo_evictions", stats_.memo_evictions);
    status.set("errors", stats_.errors);
    status.set("busy", stats_.busy);
    status.set("queue_depth", static_cast<std::uint64_t>(queue_depth_));
    status.set("max_pending", static_cast<std::uint64_t>(opts_.max_pending));
    status.set("query_runs",
               static_cast<std::uint64_t>(session_.query_run_count()));
    status.set("corner_searches",
               static_cast<std::uint64_t>(session_.corner_search_count()));
    status.set("surface_fits",
               static_cast<std::uint64_t>(session_.surface_fit_count()));
    status.set("cache_mode", to_string(session_.cache_mode()));
    status.set("config_fingerprint",
               util::hex16(session_.config_fingerprint()));
    status.set("protocol_version", service_protocol_version);
    status.set("serialization_version", serialization_version);

    util::Json response = ok_json("status", id);
    response.set("status", std::move(status));
    return response;
}

util::Json Query_service::op_cache_stats(const util::Json* id)
{
    util::Json session;
    session.set("mode", to_string(session_.cache_mode()));
    session.set("hits", session_.cache_hit_count());
    session.set("misses", session_.cache_miss_count());
    session.set("stores", session_.cache_store_count());

    const Cache_stats aggregate = process_cache_stats();
    util::Json process;
    process.set("hits", aggregate.hits);
    process.set("misses", aggregate.misses);
    process.set("stores", aggregate.stores);

    util::Json stats;
    stats.set("session", std::move(session));
    stats.set("process", std::move(process));

    util::Json response = ok_json("cache_stats", id);
    response.set("cache_stats", std::move(stats));
    return response;
}

util::Json Query_service::handle_request(const util::Json& request)
{
    if (!request.is_object()) {
        return error_json("malformed", "request is not a JSON object",
                          nullptr);
    }
    const util::Json* id = request.find("id");
    const util::Json* version = request.find("v");
    if (version == nullptr) {
        return error_json("malformed", "missing protocol version 'v'", id);
    }
    std::uint64_t v = 0;
    try {
        v = version->as_u64();
    } catch (const std::exception&) {
        return error_json("malformed", "'v' is not an integer", id);
    }
    if (v != service_protocol_version) {
        return error_json("bad_version",
                          "unsupported protocol version " +
                              std::to_string(v) + " (this daemon speaks " +
                              std::to_string(service_protocol_version) + ")",
                          id);
    }
    const util::Json* op = request.find("op");
    if (op == nullptr || !op->is_string()) {
        return error_json("malformed", "missing or non-string 'op'", id);
    }
    const std::string& name = op->as_string();
    if (name == "query") return op_query(request, id);
    if (name == "status") return op_status(id);
    if (name == "cache_stats") return op_cache_stats(id);
    if (name == "shutdown") {
        shutdown_ = true;
        util::Json response = ok_json("shutdown", id);
        response.set("draining", static_cast<std::uint64_t>(queue_depth_));
        return response;
    }
    return error_json("unsupported_op", "unknown op '" + name + "'", id);
}

std::string Query_service::handle_line(const std::string& line)
{
    ++stats_.requests;
    util::Json request;
    try {
        request = util::Json::parse(line);
    } catch (const std::exception& ex) {
        return error_json("malformed", ex.what(), nullptr).dump();
    }
    return handle_request(request).dump();
}

std::string Query_service::busy_line(const std::string& line)
{
    ++stats_.requests;
    ++stats_.busy;
    const util::Json* id = nullptr;
    util::Json request;
    try {
        request = util::Json::parse(line);
        if (request.is_object()) id = request.find("id");
    } catch (const std::exception&) {
        // A malformed line that also hit backpressure still gets `busy`:
        // it was never admitted, so it was never parsed for real.
    }
    return error_json("busy",
                      "request queue is full (max_pending=" +
                          std::to_string(opts_.max_pending) + ")",
                      id)
        .dump();
}

int Query_service::serve()
{
    struct Client {
        util::Socket sock;
        util::Line_buffer lines;
    };
    util::Unix_listener listener(opts_.socket_path,
                                 static_cast<int>(opts_.max_clients));

    std::map<std::uint64_t, Client> clients;
    std::uint64_t next_client = 0;
    struct Pending {
        std::uint64_t client;
        std::string line;
    };
    std::deque<Pending> queue;
    char buf[4096];

    // Deliver one response line.  Returns false when the client is gone
    // or its write failed — a vanished or stalled client costs itself
    // its connection, never the daemon.  NEVER erases from `clients`:
    // callers iterate the map while sending, so removal is always theirs
    // to defer (the high-severity use-after-free this design prevents).
    auto send = [&](std::uint64_t client_id,
                    const std::string& body) -> bool {
        const auto it = clients.find(client_id);
        if (it == clients.end()) return false;
        try {
            it->second.sock.write_all(body + "\n", opts_.write_timeout_ms);
            return true;
        } catch (const std::exception&) {
            return false;
        }
    };

    while (true) {
        // 1. Poll the listener and every client for readability.  Idle
        //    ticks block for poll_interval_ms; with work queued we only
        //    sweep what is already ready.
        std::vector<int> fds;
        std::vector<std::uint64_t> owner; // fds[i] belongs to owner[i-1]
        fds.push_back(listener.fd());
        for (const auto& [cid, client] : clients) {
            fds.push_back(client.sock.fd());
            owner.push_back(cid);
        }
        const auto ready = util::poll_readable_set(
            fds, queue.empty() ? opts_.poll_interval_ms : 0);

        // 2. Admit new connections; beyond max_clients they are closed
        //    on sight (connect succeeds, first read sees EOF).
        for (const std::size_t index : ready) {
            if (index != 0) continue;
            while (auto accepted = listener.accept_client()) {
                if (clients.size() >= opts_.max_clients) continue;
                clients.emplace(next_client++,
                                Client{std::move(*accepted), {}});
            }
        }

        // 3. Drain every readable client and admit ALL complete lines
        //    before executing anything, so a pipelined burst observes the
        //    queue bound atomically (overflow -> immediate busy envelope).
        //    Removal is deferred: `dead` (broken write / oversized line)
        //    is reaped before execution, `eof` (orderly half-close) only
        //    AFTER the execute loop, so a client that pipelines requests
        //    and shuts down its write side still gets every answer.
        std::vector<std::uint64_t> dead;
        std::vector<std::uint64_t> eof;
        for (const std::size_t index : ready) {
            if (index == 0) continue;
            const std::uint64_t cid = owner[index - 1];
            auto it = clients.find(cid);
            if (it == clients.end()) continue;
            Client& client = it->second;
            bool hung_up = false;
            bool broken = false;
            while (auto n = client.sock.try_read(buf, sizeof buf)) {
                if (*n == 0) {
                    hung_up = true;
                    break;
                }
                client.lines.append(buf, *n);
            }
            while (auto line = client.lines.pop_line()) {
                if (queue.size() >= opts_.max_pending) {
                    if (!send(cid, busy_line(*line))) {
                        broken = true;
                        break;
                    }
                } else {
                    queue.push_back(Pending{cid, std::move(*line)});
                }
            }
            if (!broken &&
                client.lines.pending_bytes() > opts_.max_line_bytes) {
                // An unterminated stream past the bound can never become
                // a request; answer once and cut the connection so the
                // buffer cannot grow without limit.
                send(cid,
                     error_json("malformed",
                                "request line exceeds max_line_bytes=" +
                                    std::to_string(opts_.max_line_bytes),
                                nullptr)
                         .dump());
                broken = true;
            }
            if (broken) {
                dead.push_back(cid);
            } else if (hung_up) {
                eof.push_back(cid);
            }
        }
        for (const std::uint64_t cid : dead) clients.erase(cid);

        // 4. Execute the admitted requests in admission order.  Requests
        //    admitted before a shutdown drain normally; the loop then
        //    exits without reading or accepting again.
        while (!queue.empty()) {
            Pending pending = std::move(queue.front());
            queue.pop_front();
            queue_depth_ = queue.size();
            if (!send(pending.client, handle_line(pending.line))) {
                clients.erase(pending.client);
            }
        }
        for (const std::uint64_t cid : eof) clients.erase(cid);
        if (shutdown_) break;
    }
    // ~Unix_listener closes and unlinks the socket file.
    return 0;
}

} // namespace mpsram::core
