// Query service daemon: warm-session serving over a Unix-domain socket —
// step 4 of the ROADMAP serving story.  One long-lived process owns ONE
// warm Study_session (+ its Result_cache and in-memory memos) and
// multiplexes many clients onto it, so corner searches, surrogate
// calibrations, compiled SPICE workspaces, and whole query results
// amortize across REQUESTS instead of across one process's lifetime.  A
// repeated query is served from the daemon's result memo (or the on-disk
// cache) in well under a millisecond of compute.
//
// ## Protocol specification (version `service_protocol_version`)
//
// Transport: a Unix-domain stream socket, line-delimited JSON — every
// request and every response is exactly one canonical-JSON object
// (util::Json) terminated by '\n'.  A connection may pipeline any number
// of requests; responses to EXECUTED requests arrive in request order
// (busy rejections are emitted immediately at admission time, so they may
// overtake the response of an earlier queued request).
//
// ### Requests
//
//     {"v":1, "op":"query", "query":{...}, "id":...}
//     {"v":1, "op":"status", "id":...}
//     {"v":1, "op":"cache_stats", "id":...}
//     {"v":1, "op":"shutdown", "id":...}
//
//   - `v` (required): the protocol version.  The versioning rule: `v`
//     bumps whenever any request or response field changes meaning or
//     disappears (additive response fields do not bump it); a daemon
//     rejects any other version with error code `bad_version`, so a stale
//     client fails loudly instead of misparsing.
//   - `op` (required): one of the four operations above.
//   - `id` (optional): any JSON value; echoed verbatim in the response so
//     pipelining clients can correlate.
//   - `query` (op:query only): a core::Query encoded by json_of_query
//     (core/serialize.h) — the wire format IS the persistence round-trip,
//     verbatim.  The runner is execution policy and is not part of the
//     encoding; the daemon applies its own Service_options::runner.
//
// ### Responses
//
// Success envelope — always `"ok":true`, the echoed `op`/`id`, plus:
//
//   op:query        `"result"`: the Result_table encoded by
//                   json_of_result_table — bitwise identical to an
//                   in-process Study_session::run of the same query (the
//                   canonical-hash + thread-determinism contracts;
//                   `cmp` of the dumped bytes is the CI gate) — and
//                   `"serve"`, the per-request serve metadata:
//                     query_hash      hex16 canonical hash (query_key)
//                     memo_hit        served from the daemon's result memo
//                     cache_hits/_misses/_stores   on-disk cache deltas
//                     corner_searches / surface_fits  session work deltas
//                     wall_ms         service-side wall time (diagnostic
//                                     only — never part of a result)
//                     queue_depth     requests still queued behind this one
//   op:status       `"status"`: daemon + session counters (requests,
//                   queries, memo_hits, memo_entries, memo_evictions,
//                   errors, busy,
//                   queue_depth, max_pending, session query_runs /
//                   corner_searches / surface_fits, cache_mode,
//                   config_fingerprint, protocol + serialization versions).
//   op:cache_stats  `"cache_stats"`: the session's on-disk cache counters
//                   and the process-wide aggregate (process_cache_stats).
//   op:shutdown     `"draining"`: the number of queued requests that will
//                   still be answered before the daemon exits.
//
// Error envelope — `"ok":false`, the echoed `id` when recoverable, and
// `"error":{"code","message"}`.  Codes:
//
//   malformed       not JSON, not an object, missing v/op/query, or an
//                   undecodable query payload
//   bad_version     `v` differs from service_protocol_version
//   unsupported_op  unknown `op`
//   busy            the bounded request queue is full; the request was
//                   NOT executed (backpressure, emitted immediately)
//   failed          the query raised during execution (e.g. a solver-
//                   policy contract violation); the daemon stays up
//
// A connection streaming more than Service_options::max_line_bytes
// without a newline is answered with one `malformed` envelope (no `id` —
// the line never completed, so there is nothing to salvage) and then
// disconnected: the daemon's per-client line buffer is bounded, so an
// unterminated byte stream can never exhaust its memory.
//
// A protocol error NEVER terminates the daemon: every request produces
// exactly one response envelope, and client I/O failures just drop that
// client.
//
// ### Lifecycle
//
// serve() binds the socket (refusing to usurp a live daemon on the same
// path — see util::Unix_listener), then loops: poll listener + clients,
// admit complete lines into the bounded request queue (overflow →
// immediate `busy`), execute queued requests in admission order on the
// shared warm session.  A client that half-closes (shutdown(SHUT_WR))
// after pipelining requests still receives every queued response: EOF'd
// clients are only reaped after the requests they admitted have been
// answered.  op:shutdown is graceful by construction — the ack is sent,
// every request already admitted is drained (executed and answered),
// new reads and connections are refused, the socket file is unlinked,
// and serve() returns 0.
//
// ## Determinism contract
//
// The daemon serializes query execution (one at a time, admission order)
// on a session whose run() is itself safe for concurrent callers — the
// serialization is queueing policy, not a safety requirement.  Because a
// result is a pure function of its canonical key material (core/
// serialize.h) and bitwise identical at any thread count, the bytes a
// daemon serves are the bytes an in-process run produces, cold or warm,
// whatever Service_options::runner says.
#ifndef MPSRAM_CORE_SERVICE_H
#define MPSRAM_CORE_SERVICE_H

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <string>
#include <string_view>

#include "core/runner.h"
#include "core/session.h"
#include "util/json.h"

namespace mpsram::core {

/// Version of the wire protocol above.  Bump on any incompatible request
/// or response change; requests carrying any other `v` are rejected with
/// `bad_version`.
inline constexpr std::uint64_t service_protocol_version = 1;

struct Service_options {
    /// Filesystem path of the Unix-domain socket to serve on.
    std::string socket_path;
    /// Bounded request queue: requests admitted while this many are
    /// already queued are rejected with an immediate `busy` envelope
    /// (backpressure, never a hang).
    std::size_t max_pending = 64;
    /// Connection bound; connections beyond it are accepted and closed.
    std::size_t max_clients = 64;
    /// Per-client line-buffer bound: a connection holding more than this
    /// many unterminated bytes gets a `malformed` envelope and is
    /// disconnected (memory backpressure, never unbounded growth).
    std::size_t max_line_bytes = 16u << 20;
    /// Result-memo bound: at most this many encoded Result_tables are
    /// retained, least-recently-served evicted first.  0 disables the
    /// memo entirely (the on-disk Result_cache still applies).
    std::size_t max_memo_entries = 1024;
    /// Idle poll tick of the serve loop [ms].
    int poll_interval_ms = 100;
    /// Send stall budget per client write [ms]; a slower client is
    /// dropped.
    int write_timeout_ms = 30000;
    /// Execution backend applied to every served query (query.runner and
    /// query.mc.runner — the wire format carries no runner).  Results are
    /// bitwise identical at any thread count, so this is pure policy.
    Runner_options runner;
};

/// Monotonic daemon counters (op:status reports them).
struct Service_stats {
    std::uint64_t requests = 0;   ///< lines received (busy ones included)
    std::uint64_t queries = 0;    ///< op:query executed successfully
    std::uint64_t memo_hits = 0;  ///< queries served from the result memo
    std::uint64_t memo_evictions = 0;  ///< LRU entries dropped at the bound
    std::uint64_t errors = 0;     ///< error envelopes other than busy
    std::uint64_t busy = 0;       ///< backpressure rejections
};

/// The daemon engine.  Construct over a (warm) Study_session, then either
/// call serve() to run the socket loop, or drive the protocol directly
/// through handle_line() — the socket-free seam the unit tests use.
class Query_service {
public:
    Query_service(const Study_session& session, Service_options opts);

    const Service_options& options() const { return opts_; }
    const Service_stats& stats() const { return stats_; }
    bool shutdown_requested() const { return shutdown_; }
    std::size_t memo_entries() const { return memo_.size(); }

    /// Handle one request line (no trailing newline) and return the
    /// response line (no trailing newline).  Never throws on protocol
    /// errors — they come back as error envelopes.
    std::string handle_line(const std::string& line);

    /// Structured form of handle_line for callers that already parsed.
    util::Json handle_request(const util::Json& request);

    /// The backpressure envelope for a request that was NOT admitted
    /// (queue full).  Salvages `id` from the line when it parses.
    std::string busy_line(const std::string& line);

    /// Run the daemon loop on options().socket_path until a shutdown
    /// request completes its drain.  Returns 0 on graceful shutdown.
    /// Protocol errors never exit the loop; socket-setup failures throw.
    int serve();

private:
    util::Json error_json(std::string_view code, std::string_view message,
                          const util::Json* id);
    util::Json ok_json(std::string_view op, const util::Json* id);
    util::Json op_query(const util::Json& request, const util::Json* id);
    util::Json op_status(const util::Json* id);
    util::Json op_cache_stats(const util::Json* id);

    const Study_session& session_;
    Service_options opts_;
    Service_stats stats_;
    bool shutdown_ = false;
    std::size_t queue_depth_ = 0;  ///< behind the request being executed

    /// Daemon-lifetime result memo: canonical query hash -> encoded
    /// Result_table.  This is what turns a repeated query into a
    /// sub-millisecond response even with the on-disk cache off; entries
    /// are sound to share across clients because results are pure
    /// functions of their canonical key material.  Bounded at
    /// Service_options::max_memo_entries with least-recently-served
    /// eviction (memo_lru_ front = most recent), so a long-lived daemon
    /// serving varied queries stays memory-flat.
    struct Memo_entry {
        util::Json table;
        std::list<std::uint64_t>::iterator lru;
    };
    std::map<std::uint64_t, Memo_entry> memo_;
    std::list<std::uint64_t> memo_lru_;
};

} // namespace mpsram::core

#endif // MPSRAM_CORE_SERVICE_H
