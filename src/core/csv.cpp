#include "core/csv.h"

#include <charconv>
#include <cmath>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "util/contracts.h"
#include "util/csv.h"

namespace mpsram::core {

namespace {

/// Shortest-round-trip rendering, the same rule util::Json::dump applies
/// to numbers — equal values always produce equal bytes.
std::string cell_of(double v)
{
    if (std::isnan(v)) return "nan";
    if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
    char buf[32];
    const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
    util::invariant(ec == std::errc{}, "to_chars failed on a double");
    return std::string(buf, end);
}

std::string cell_of(int v)
{
    return std::to_string(v);
}

std::string cell_of(std::uint64_t v)
{
    return std::to_string(v);
}

struct Csv_rows {
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> cells; ///< value columns per row

    void visit(const Worst_case_row& r)
    {
        header = {"corner", "cbl_percent", "rbl_percent", "vss_r_percent"};
        cells.push_back({r.corner, cell_of(r.cbl_percent),
                         cell_of(r.rbl_percent), cell_of(r.vss_r_percent)});
    }
    void visit(const Read_row& r)
    {
        header = {"td_nominal", "td_varied", "tdp_percent"};
        cells.push_back({cell_of(r.td_nominal), cell_of(r.td_varied),
                         cell_of(r.tdp_percent)});
    }
    void visit(const Nominal_td_row& r)
    {
        header = {"td_simulation", "td_formula"};
        cells.push_back({cell_of(r.td_simulation), cell_of(r.td_formula)});
    }
    void visit(const Tdp_row& r)
    {
        header = {"tdp_simulation", "tdp_formula"};
        cells.push_back({cell_of(r.tdp_simulation), cell_of(r.tdp_formula)});
    }
    void visit(const Write_row& r)
    {
        header = {"tw_nominal", "tw_varied", "twp_percent"};
        cells.push_back({cell_of(r.tw_nominal), cell_of(r.tw_varied),
                         cell_of(r.twp_percent)});
    }
    void visit(const Nominal_tw_row& r)
    {
        header = {"tw_simulation", "tw_formula"};
        cells.push_back({cell_of(r.tw_simulation), cell_of(r.tw_formula)});
    }
    void visit(const Disturb_row& r)
    {
        header = {"v_bump_nominal", "v_bump_varied", "disturb_percent"};
        cells.push_back({cell_of(r.v_bump_nominal),
                         cell_of(r.v_bump_varied),
                         cell_of(r.disturb_percent)});
    }
    void visit(const mc::Tdp_distribution& r)
    {
        header = {"samples", "mean", "stddev", "min",
                  "max",     "median", "p01",  "p99"};
        const util::Sample_summary& s = r.summary;
        cells.push_back({cell_of(static_cast<std::uint64_t>(s.count)),
                         cell_of(s.mean), cell_of(s.stddev), cell_of(s.min),
                         cell_of(s.max), cell_of(s.median), cell_of(s.p01),
                         cell_of(s.p99)});
    }
};

} // namespace

std::string to_csv(const Result_table& table)
{
    Csv_rows rows;
    for (std::size_t i = 0; i < table.size(); ++i) {
        std::visit([&](const auto& row) { rows.visit(row); }, table.raw(i));
    }

    std::ostringstream out;
    util::Csv_writer csv(out);

    std::vector<std::string> header = {"option", "word_lines", "ol_3sigma"};
    if (table.empty()) {
        // An empty table still carries its metric; without a row there is
        // no value column set, so export the axes header alone.
        csv.write_header(header);
        return out.str();
    }
    header.insert(header.end(), rows.header.begin(), rows.header.end());
    csv.write_header(header);

    for (std::size_t i = 0; i < table.size(); ++i) {
        const Query_case& axes = table.axes(i);
        std::vector<std::string> record = {
            std::string(tech::to_string(axes.option)),
            cell_of(axes.word_lines), cell_of(axes.ol_3sigma)};
        record.insert(record.end(), rows.cells[i].begin(),
                      rows.cells[i].end());
        csv.write_row(record);
    }
    return out.str();
}

} // namespace mpsram::core
