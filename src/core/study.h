// Variability_study: the legacy per-figure facade over the query layer.
//
// DEPRECATED-BUT-STABLE.  Since PR 5 the study is queried through the
// metric-centric API — build a core::Query (query.h) and execute it with
// core::Study_session::run (session.h):
//
//     Study_session session;
//     auto fig4 = session.run(Query(Metric::read_td)
//                                 .over_word_lines(option, sizes)
//                                 .on(Runner_options::parallel()));
//
// Every method below is a thin wrapper that builds the equivalent query
// and unpacks its Result_table; results are bitwise identical to the
// query path at any thread count (asserted by test_core_query).  The
// wrappers are kept for source stability and will not grow: new workloads
// register a Metric, they do not add methods here.
//
// Canonical parameter order of the query layer (and of any future
// wrapper): value axes first (option, word_lines, ol_3sigma), execution
// policy (runner) last.  worst_case_all_options historically took the
// runner first; PR 5 fixed it to the canonical order.
//
// Method -> Metric map:
//
//   worst_case() / worst_case_all_options()      Metric::worst_case_rc
//   worst_case_read() / read_sweep()             Metric::read_td
//   nominal_td() / nominal_td_batch()            Metric::nominal_td
//   worst_case_tdp() / worst_case_tdp_batch()    Metric::worst_case_tdp
//   mc_tdp() / mc_tdp_batch()                    Metric::mc_tdp
//   worst_case_tw() / write_sweep()              Metric::write_tw
//   nominal_tw() / nominal_tw_batch()            Metric::nominal_tw
//   mc_twp() / mc_twp_batch()                    Metric::mc_twp
//   (no wrapper — query only)                    Metric::disturb
#ifndef MPSRAM_CORE_STUDY_H
#define MPSRAM_CORE_STUDY_H

#include <memory>
#include <span>
#include <vector>

#include "core/query.h"
#include "core/runner.h"
#include "core/session.h"

namespace mpsram::core {

class Variability_study {
public:
    explicit Variability_study(tech::Technology tech = tech::n10(),
                               Study_options opts = Study_options{});

    const tech::Technology& technology() const
    {
        return session_->technology();
    }
    const Study_options& options() const { return session_->options(); }

    /// The query engine behind every wrapper (shared state: memos,
    /// extractor).  Preferred entry point for new code.
    const Study_session& session() const { return *session_; }

    // --- legacy row/case types (aliases of the query layer's) ----------------
    using Worst_case_row = core::Worst_case_row;
    using Read_row = core::Read_row;
    using Nominal_td_row = core::Nominal_td_row;
    using Tdp_row = core::Tdp_row;
    using Write_row = core::Write_row;
    /// One (option, word_lines, ol_3sigma) case of a Table III / MC
    /// sweep.  Kept as distinct structs (not Query_case aliases) because
    /// the stable wrappers promise the historical fixed default of 64
    /// word lines; Query_case defaults to 0 = "the session's array
    /// default" instead.
    struct Tdp_case {
        tech::Patterning_option option;
        int word_lines = 64;
        double ol_3sigma = -1.0;  ///< < 0: technology default

        operator Query_case() const { return {option, word_lines, ol_3sigma}; }
    };
    using Mc_case = Tdp_case;

    // --- Table I -------------------------------------------------------------
    /// Worst case for one option.  `ol_3sigma` < 0 uses the technology's
    /// assumption (LE3 only; ignored otherwise).  `runner` executes the
    /// corner enumeration.  [wraps Metric::worst_case_rc]
    Worst_case_row worst_case(tech::Patterning_option option,
                              double ol_3sigma = -1.0,
                              const Runner_options& runner = {}) const;

    /// Table I in one call: the worst case of every patterning option.
    /// Row order follows tech::all_patterning_options regardless of
    /// thread count.  [wraps Metric::worst_case_rc; parameter order fixed
    /// in PR 5 to the canonical (axes..., runner)]
    std::vector<Worst_case_row> worst_case_all_options(
        double ol_3sigma = -1.0, const Runner_options& runner = {}) const;

    // --- Fig. 4 --------------------------------------------------------------
    /// [wraps Metric::read_td]
    Read_row worst_case_read(tech::Patterning_option option,
                             int word_lines) const;

    /// Fig. 4 in one call: worst_case_read for every array length of the
    /// sweep, one SPICE job per word-line count on `runner`.  Results are
    /// indexed like `word_lines` and bitwise identical at any thread
    /// count.  [wraps Metric::read_td]
    std::vector<Read_row> read_sweep(tech::Patterning_option option,
                                     std::span<const int> word_lines,
                                     const Runner_options& runner = {}) const;

    // --- Table II ------------------------------------------------------------
    /// [wraps Metric::nominal_td]
    Nominal_td_row nominal_td(int word_lines) const;

    /// Table II in one call.  [wraps Metric::nominal_td]
    std::vector<Nominal_td_row> nominal_td_batch(
        std::span<const int> word_lines,
        const Runner_options& runner = {}) const;

    // --- Table III -----------------------------------------------------------
    /// [wraps Metric::worst_case_tdp]
    Tdp_row worst_case_tdp(tech::Patterning_option option,
                           int word_lines) const;

    /// Table III in one call: worst_case_tdp for every case on `runner`.
    /// [wraps Metric::worst_case_tdp]
    std::vector<Tdp_row> worst_case_tdp_batch(
        std::span<const Tdp_case> cases,
        const Runner_options& runner = {}) const;

    // --- Fig. 5 / Table IV ---------------------------------------------------
    /// [wraps Metric::mc_tdp]
    mc::Tdp_distribution mc_tdp(tech::Patterning_option option,
                                int word_lines,
                                const mc::Distribution_options& mc_opts,
                                double ol_3sigma = -1.0) const;

    /// mc_tdp for every case of a sweep.  Each case's sample loop is
    /// fanned out on `mc_opts.runner`; every case's result is independent
    /// of the sweep composition.  [wraps Metric::mc_tdp]
    std::vector<mc::Tdp_distribution> mc_tdp_batch(
        std::span<const Mc_case> cases,
        const mc::Distribution_options& mc_opts) const;

    // --- write extension (beyond the paper) ----------------------------------
    /// [wraps Metric::write_tw]
    Write_row worst_case_tw(tech::Patterning_option option,
                            int word_lines) const;

    /// [wraps Metric::write_tw]
    std::vector<Write_row> write_sweep(tech::Patterning_option option,
                                       std::span<const int> word_lines,
                                       const Runner_options& runner = {}) const;

    /// Nominal write time [s] (memoized).  [wraps Metric::nominal_tw]
    double nominal_tw(int word_lines) const;

    /// [wraps Metric::nominal_tw]
    std::vector<double> nominal_tw_batch(std::span<const int> word_lines,
                                         const Runner_options& runner = {})
        const;

    /// Monte-Carlo twp distribution with the SPICE-in-the-loop sample
    /// engine; `dist.tdp` holds twp [%].  A sample whose write fails to
    /// flip records NaN.  For the cheap analytic engine build the query
    /// directly: Query(Metric::mc_twp).with_twp_engine(Twp_engine::formula).
    /// [wraps Metric::mc_twp]
    mc::Tdp_distribution mc_twp(tech::Patterning_option option,
                                int word_lines,
                                const mc::Distribution_options& mc_opts,
                                double ol_3sigma = -1.0) const;

    /// [wraps Metric::mc_twp]
    std::vector<mc::Tdp_distribution> mc_twp_batch(
        std::span<const Mc_case> cases,
        const mc::Distribution_options& mc_opts) const;

    // --- building blocks (forwarded to the session) --------------------------
    geom::Wire_array decomposed_array(tech::Patterning_option option,
                                      int word_lines,
                                      double ol_3sigma = -1.0) const
    {
        return session_->decomposed_array(option, word_lines, ol_3sigma);
    }

    const extract::Extractor& extractor() const
    {
        return session_->extractor();
    }

    double simulate_td(const sram::Bitline_electrical& wires,
                       int word_lines) const
    {
        return session_->simulate_td(wires, word_lines);
    }

    double simulate_tw(const sram::Bitline_electrical& wires,
                       int word_lines) const
    {
        return session_->simulate_tw(wires, word_lines);
    }

    analytic::Td_params formula_params(int word_lines) const
    {
        return session_->formula_params(word_lines);
    }

    mc::Worst_case_result worst_case_full(tech::Patterning_option option,
                                          int word_lines,
                                          double ol_3sigma = -1.0,
                                          const Runner_options& runner = {})
        const
    {
        return session_->worst_case_full(option, word_lines, ol_3sigma,
                                         runner);
    }

    std::size_t corner_search_count() const
    {
        return session_->corner_search_count();
    }

private:
    /// Run a single-case query and unpack its one row.
    template <class Row>
    Row run_single(Query query) const;

    // unique_ptr keeps the class non-copyable (move-only), as it was when
    // it owned the extractor directly: a copy sharing one session's memos
    // and corner_search_count would silently alias observable state.
    std::unique_ptr<Study_session> session_;
};

} // namespace mpsram::core

#endif // MPSRAM_CORE_STUDY_H
