// Variability_study: the paper's end-to-end flow as a single object.
//
// Wraps technology selection, layout generation, patterning decomposition,
// extraction, worst-case search, SPICE read simulation, the analytic
// formula, and the Monte-Carlo distribution — one method per experiment of
// the paper:
//
//   worst_case()        -> Table I rows
//   worst_case_read()   -> Fig. 4 points
//   nominal_td()        -> Table II rows
//   worst_case_tdp()    -> Table III rows
//   mc_tdp()            -> Fig. 5 histograms / Table IV sigmas
//
// plus the write-operation extension on the same column substrate (the
// figure of merit is tw, word-line mid to storage flip):
//
//   worst_case_tw() / write_sweep()  -> write analogue of Fig. 4
//   nominal_tw() / nominal_tw_batch()
//   mc_twp()/ mc_twp_batch()         -> SPICE-in-the-loop twp distribution
#ifndef MPSRAM_CORE_STUDY_H
#define MPSRAM_CORE_STUDY_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "core/runner.h"
#include "extract/extractor.h"
#include "mc/distribution.h"
#include "mc/worst_case.h"
#include "sram/read_sim.h"
#include "sram/write_sim.h"
#include "tech/technology.h"

namespace mpsram::core {

struct Study_options {
    sram::Array_config array;  ///< bl_pairs defaults to the paper's 10
    extract::Extraction_options extraction;
    sram::Read_timing timing;
    /// Read-measurement options, including the integration-engine policy:
    /// `read.accuracy` defaults to the calibrated adaptive-LTE engine
    /// (sram::Sim_accuracy::fast) and governs every SPICE transient the
    /// study runs — single calls, read_sweep / nominal_td_batch /
    /// worst_case_tdp_batch, and the td references of the MC and
    /// corner-search flows.  Pin sram::Sim_accuracy::reference for the
    /// fixed-step oracle (tests, calibration).  Either way results are
    /// bitwise identical at any thread count.
    sram::Read_options read;
    sram::Netlist_options netlist;
    sram::Write_timing write_timing;
    /// Write-measurement options; `write.accuracy` governs the write-path
    /// transients exactly like `read.accuracy` does the read's.
    sram::Write_options write;
};

class Variability_study {
public:
    explicit Variability_study(tech::Technology tech = tech::n10(),
                               Study_options opts = Study_options{});

    const tech::Technology& technology() const { return tech_; }
    const Study_options& options() const { return opts_; }

    // --- Table I -------------------------------------------------------------
    struct Worst_case_row {
        tech::Patterning_option option;
        std::string corner;       ///< human-readable worst corner
        double cbl_percent = 0.0; ///< victim Cbl change
        double rbl_percent = 0.0; ///< victim Rbl change
        double vss_r_percent = 0.0;
    };
    /// Worst case for one option.  `ol_3sigma` < 0 uses the technology's
    /// assumption (LE3 only; ignored otherwise).  `runner` executes the
    /// corner enumeration.
    Worst_case_row worst_case(tech::Patterning_option option,
                              double ol_3sigma = -1.0,
                              const Runner_options& runner = {}) const;

    /// Table I in one call: the worst case of every patterning option,
    /// corner evaluations fanned out on `runner`.  Row order follows
    /// tech::all_patterning_options regardless of thread count.
    std::vector<Worst_case_row> worst_case_all_options(
        const Runner_options& runner = {}, double ol_3sigma = -1.0) const;

    // --- Fig. 4 ---------------------------------------------------------------
    struct Read_row {
        double td_nominal = 0.0;  ///< [s] SPICE, no variability
        double td_varied = 0.0;   ///< [s] SPICE at the worst corner
        double tdp_percent = 0.0;
    };
    Read_row worst_case_read(tech::Patterning_option option,
                             int word_lines) const;

    /// Fig. 4 in one call: worst_case_read for every array length of the
    /// sweep, one SPICE job per word-line count on `runner`.  Each worker
    /// owns a Read_sim_context (netlist + solver workspace), so repeated
    /// transients reuse allocations; results are indexed like `word_lines`
    /// and bitwise identical at any thread count.
    std::vector<Read_row> read_sweep(tech::Patterning_option option,
                                     std::span<const int> word_lines,
                                     const Runner_options& runner = {}) const;

    // --- Table II ---------------------------------------------------------------
    struct Nominal_td_row {
        double td_simulation = 0.0;  ///< [s]
        double td_formula = 0.0;     ///< [s]
    };
    Nominal_td_row nominal_td(int word_lines) const;

    /// Table II in one call: one nominal transient + formula evaluation
    /// per word-line count, fanned out on `runner` with per-worker
    /// simulation contexts.  Bitwise identical at any thread count.
    std::vector<Nominal_td_row> nominal_td_batch(
        std::span<const int> word_lines,
        const Runner_options& runner = {}) const;

    // --- Table III ----------------------------------------------------------------
    struct Tdp_row {
        double tdp_simulation = 0.0;  ///< [%]
        double tdp_formula = 0.0;     ///< [%]
    };
    Tdp_row worst_case_tdp(tech::Patterning_option option,
                           int word_lines) const;

    /// One Table III cell: an option at an array length (and optionally an
    /// overlay budget, LE3 only).
    struct Tdp_case {
        tech::Patterning_option option;
        int word_lines = 64;
        double ol_3sigma = -1.0;  ///< < 0: technology default
    };

    /// Table III in one call: worst_case_tdp for every case on `runner`.
    /// Each case runs its corner search (memoized, see below) plus two
    /// transients in one job; results are indexed like `cases` and bitwise
    /// identical at any thread count.
    std::vector<Tdp_row> worst_case_tdp_batch(
        std::span<const Tdp_case> cases,
        const Runner_options& runner = {}) const;

    // --- Fig. 5 / Table IV ----------------------------------------------------------
    mc::Tdp_distribution mc_tdp(tech::Patterning_option option,
                                int word_lines,
                                const mc::Distribution_options& mc_opts,
                                double ol_3sigma = -1.0) const;

    /// One Monte-Carlo case of a sweep: an option at an array length and
    /// (optionally) an overlay budget.
    struct Mc_case {
        tech::Patterning_option option;
        int word_lines = 64;
        double ol_3sigma = -1.0;  ///< < 0: technology default (LE3 only)
    };

    /// Run mc_tdp for every case of a sweep (Fig. 5's three options, an
    /// overlay-budget scan, a word-line scaling study...).  Each case's
    /// sample loop is fanned out on `mc_opts.runner` — samples dominate
    /// cases by orders of magnitude, so per-case parallelism saturates
    /// the pool while keeping every case's result independent of the
    /// sweep composition.  Results are indexed like `cases` and bitwise
    /// identical at any thread count.
    std::vector<mc::Tdp_distribution> mc_tdp_batch(
        std::span<const Mc_case> cases,
        const mc::Distribution_options& mc_opts) const;

    // --- write extension (beyond the paper) -----------------------------------
    /// The write analogue of a Fig. 4 point: tw nominal vs tw at the
    /// worst-case corner of the option.  The corner enumeration is shared
    /// with the read paths through the worst-case memo — worst_case_tw and
    /// worst_case_tdp on the same (option, word_lines, ol_3sigma) key
    /// trigger exactly one search between them.
    struct Write_row {
        double tw_nominal = 0.0;  ///< [s] SPICE, no variability
        double tw_varied = 0.0;   ///< [s] SPICE at the worst corner
        double twp_percent = 0.0;
    };
    Write_row worst_case_tw(tech::Patterning_option option,
                            int word_lines) const;

    /// Write sweep in one call: worst_case_tw for every array length, one
    /// job per word-line count on `runner` with per-worker
    /// Write_sim_contexts (netlist + solver workspace).  Results are
    /// indexed like `word_lines` and bitwise identical at any thread
    /// count.
    std::vector<Write_row> write_sweep(tech::Patterning_option option,
                                       std::span<const int> word_lines,
                                       const Runner_options& runner = {}) const;

    /// Nominal write time [s] (memoized like nominal_td).
    double nominal_tw(int word_lines) const;

    /// One nominal write transient per word-line count, fanned out on
    /// `runner` with per-worker contexts.  Bitwise identical at any thread
    /// count.
    std::vector<double> nominal_tw_batch(std::span<const int> word_lines,
                                         const Runner_options& runner = {})
        const;

    /// Monte-Carlo twp distribution: the generalized sampler with a
    /// SPICE-in-the-loop metric — every sample's realized geometry is
    /// rolled up and its write simulated on the per-worker context, so
    /// sample counts should be orders of magnitude below the read MC's
    /// (each sample costs a transient, not a formula evaluation).  A
    /// sample whose write fails to flip records NaN (NaN-safe summary)
    /// instead of aborting the sweep.  `dist.tdp` holds twp [%].
    mc::Tdp_distribution mc_twp(tech::Patterning_option option,
                                int word_lines,
                                const mc::Distribution_options& mc_opts,
                                double ol_3sigma = -1.0) const;

    /// mc_twp for every case of a sweep; same execution contract as
    /// mc_tdp_batch (per-case sample loops on `mc_opts.runner`).
    std::vector<mc::Tdp_distribution> mc_twp_batch(
        std::span<const Mc_case> cases,
        const mc::Distribution_options& mc_opts) const;

    /// SPICE tw with explicit wire electricals (write analogue of
    /// simulate_td; throws if the write never flips the cell).
    double simulate_tw(const sram::Bitline_electrical& wires,
                       int word_lines) const;

    // --- building blocks (exposed for examples, benches and tests) -----------
    /// Nominal metal1 array, decomposed for the option.
    geom::Wire_array decomposed_array(tech::Patterning_option option,
                                      int word_lines,
                                      double ol_3sigma = -1.0) const;

    const extract::Extractor& extractor() const { return *extractor_; }

    /// SPICE td with explicit wire electricals (shared by the Fig. 4 and
    /// Table II/III paths; also useful for ablation benches).
    double simulate_td(const sram::Bitline_electrical& wires,
                       int word_lines) const;

    /// Formula parameters at nominal wires for a given array length.
    analytic::Td_params formula_params(int word_lines) const;

    /// Worst-case search result with full geometry (Fig. 2-style dumps).
    /// Memoized on (option, word_lines, ol_3sigma): the corner enumeration
    /// runs exactly once per key no matter how many callers — concurrent
    /// ones included — ask for it; worst_case(), worst_case_read() and
    /// worst_case_tdp() all share the same memo.  `runner` only matters
    /// for the caller that performs the enumeration.
    mc::Worst_case_result worst_case_full(tech::Patterning_option option,
                                          int word_lines,
                                          double ol_3sigma = -1.0,
                                          const Runner_options& runner = {})
        const;

    /// Corner enumerations actually performed (not memo hits) since
    /// construction — the observable for the one-search-per-key contract.
    std::size_t corner_search_count() const
    {
        return corner_searches_.load(std::memory_order_relaxed);
    }

private:
    tech::Technology tech_with_ol(double ol_3sigma) const;
    /// Extracted per-cell electricals of the nominal (drawn) array.
    sram::Bitline_electrical nominal_wires(int word_lines) const;
    double nominal_td_spice(int word_lines,
                            sram::Read_sim_context* sim = nullptr) const;
    double simulate_td_on(const sram::Bitline_electrical& wires,
                          int word_lines, sram::Read_sim_context& sim) const;
    Read_row worst_case_read_on(tech::Patterning_option option,
                                int word_lines, double ol_3sigma,
                                sram::Read_sim_context& sim) const;
    Tdp_row worst_case_tdp_on(tech::Patterning_option option, int word_lines,
                              double ol_3sigma,
                              sram::Read_sim_context& sim) const;
    double nominal_tw_spice(int word_lines,
                            sram::Write_sim_context* sim = nullptr) const;
    double simulate_tw_on(const sram::Bitline_electrical& wires,
                          int word_lines, sram::Write_sim_context& sim) const;
    Write_row worst_case_tw_on(tech::Patterning_option option,
                               int word_lines, double ol_3sigma,
                               sram::Write_sim_context& sim) const;

    /// The worst-case memo entry for a key, computing it (exactly once,
    /// promise-backed) on a miss.
    std::shared_ptr<const mc::Worst_case_result> worst_case_cached(
        tech::Patterning_option option, int word_lines, double ol_3sigma,
        const Runner_options& runner) const;

    /// Shared skeleton of the batch APIs: `count` jobs on a Run_plan,
    /// each handed the per-worker simulation context (read or write) of
    /// the worker running it.
    template <class Context>
    void run_with_sim_contexts(
        std::size_t count, const Runner_options& runner,
        const std::function<void(std::size_t, Context&)>& job) const;

    tech::Technology tech_;
    Study_options opts_;
    std::unique_ptr<extract::Extractor> extractor_;
    sram::Cell_electrical cell_;

    // The nominal-metric memos (one per metric: td for the read path, tw
    // for the write path) are shared by every const method; batch APIs hit
    // them from pool workers, so all access goes through
    // nominal_cache_mutex_.
    mutable std::mutex nominal_cache_mutex_;
    mutable std::map<int, double> td_nominal_cache_;
    mutable std::map<int, double> tw_nominal_cache_;

    // Worst-case memo: option/word_lines/ol_3sigma (negative budgets
    // normalized to -1) -> shared future of the search result.  The first
    // caller of a key inserts the future and runs the enumeration outside
    // the lock; concurrent callers of the same key wait on the future
    // instead of duplicating the search.
    using Wc_key = std::tuple<tech::Patterning_option, int, double>;
    using Wc_entry =
        std::shared_future<std::shared_ptr<const mc::Worst_case_result>>;
    mutable std::mutex wc_cache_mutex_;
    mutable std::map<Wc_key, Wc_entry> wc_cache_;
    mutable std::atomic<std::size_t> corner_searches_{0};
};

} // namespace mpsram::core

#endif // MPSRAM_CORE_STUDY_H
