#include "extract/extractor.h"

#include <optional>

#include "extract/capacitance.h"
#include "extract/resistance.h"
#include "util/contracts.h"

namespace mpsram::extract {

Extractor::Extractor(tech::Beol_layer layer, Extraction_options opts)
    : layer_(std::move(layer)), opts_(opts)
{
    util::expects(layer_.pitch > 0.0 && layer_.thickness > 0.0,
                  "extractor needs a fully specified layer");
}

Wire_rc Extractor::wire_rc(const geom::Wire_array& arr, std::size_t i) const
{
    util::expects(i < arr.size(), "wire index out of range");
    const geom::Wire& w = arr[i];

    Wire_rc rc;
    rc.r = resistance_per_length(layer_, w.width, opts_);
    rc.c_plate = plate_per_length(layer_, w.width, opts_);

    std::optional<double> space_below;
    std::optional<double> space_above;
    if (i > 0) space_below = arr.spacing_below(i);
    if (i + 1 < arr.size()) space_above = arr.spacing_above(i);

    if (space_below) {
        rc.c_couple_below = coupling_per_length(layer_, *space_below, opts_);
    }
    if (space_above) {
        rc.c_couple_above = coupling_per_length(layer_, *space_above, opts_);
    }

    // Fringe: each side is shielded by its own neighbor's spacing; the
    // helper returns the two-plane total for one side.
    rc.c_fringe = fringe_per_length(layer_, space_below, opts_) +
                  fringe_per_length(layer_, space_above, opts_);

    return rc;
}

Net_rc Extractor::net_rc(const geom::Wire_array& arr, std::size_t i) const
{
    const Wire_rc rc = wire_rc(arr, i);
    const double len = arr[i].length;
    return Net_rc{rc.r * len, rc.c_total() * len};
}

double Extractor::wire_resistance_per_length(double drawn_width) const
{
    return resistance_per_length(layer_, drawn_width, opts_);
}

Rc_variation Extractor::variation(const geom::Wire_array& nominal,
                                  const geom::Wire_array& realized,
                                  std::size_t victim) const
{
    util::expects(nominal.size() == realized.size(),
                  "nominal and realized arrays must match in size");
    util::expects(victim < nominal.size(), "victim index out of range");
    util::expects(nominal[victim].net == realized[victim].net,
                  "victim wire identity mismatch between arrays");

    const Wire_rc nom = wire_rc(nominal, victim);
    const Wire_rc real = wire_rc(realized, victim);

    Rc_variation v;
    v.r_factor = real.r / nom.r;
    v.c_factor = real.c_total() / nom.c_total();
    util::ensures(v.r_factor > 0.0 && v.c_factor > 0.0,
                  "variation factors must be positive");
    return v;
}

} // namespace mpsram::extract
