#include "extract/capacitance.h"

#include <algorithm>
#include <cmath>

#include "geom/cross_section.h"
#include "util/contracts.h"

namespace mpsram::extract {

double coupling_per_length(const tech::Beol_layer& layer,
                           double drawn_spacing,
                           const Extraction_options& opts)
{
    util::expects(opts.integration_points >= 3 &&
                      opts.integration_points % 2 == 1,
                  "Simpson integration needs an odd point count >= 3");
    const double eps = layer.ild.permittivity();
    const double flare = layer.thickness * std::tan(layer.taper_angle);

    // Facing gap at relative height u in [0,1]: both trenches flare toward
    // each other by u * flare each.  Clamp at min_gap so corner cases that
    // short the wires price a saturated (huge but finite) coupling.
    const auto gap_at = [&](double u) {
        return std::max(drawn_spacing - 2.0 * u * flare, opts.min_gap);
    };

    // Simpson's rule over u for integrand thickness / gap(u).
    const int n = opts.integration_points;
    const double h = 1.0 / static_cast<double>(n - 1);
    double acc = 0.0;
    for (int i = 0; i < n; ++i) {
        const double u = static_cast<double>(i) * h;
        const double f = layer.thickness / gap_at(u);
        const double w =
            (i == 0 || i == n - 1) ? 1.0 : (i % 2 == 1 ? 4.0 : 2.0);
        acc += w * f;
    }
    const double plate_integral = acc * h / 3.0;

    const double c = eps * (plate_integral + opts.k_fringe_coupling);
    util::ensures(c > 0.0, "coupling capacitance must be positive");
    return c;
}

double plate_per_length(const tech::Beol_layer& layer,
                        double drawn_width,
                        const Extraction_options& opts)
{
    const double eps = layer.ild.permittivity();
    const auto xs = geom::Cross_section::from_taper(
        drawn_width, layer.thickness, layer.taper_angle);
    (void)opts;
    const double below = xs.bottom_width() / layer.below_plane_dist;
    const double above = xs.top_width() / layer.above_plane_dist;
    return eps * (below + above);
}

double fringe_per_length(const tech::Beol_layer& layer,
                         std::optional<double> drawn_spacing,
                         const Extraction_options& opts)
{
    const double eps = layer.ild.permittivity();
    const auto shield = [&](double plane_dist) {
        if (!drawn_spacing) return 1.0;  // unshielded edge wire
        const double s = std::max(*drawn_spacing, opts.min_gap);
        return std::pow(s / (s + plane_dist), opts.fringe_shield_power);
    };
    const double below = shield(layer.below_plane_dist);
    const double above = shield(layer.above_plane_dist);
    return eps * opts.k_fringe_ground * (below + above);
}

} // namespace mpsram::extract
