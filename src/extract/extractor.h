// The parameterized LPE front door: per-wire RC in a realized array, and
// realized-vs-nominal variation factors (the Rvar / Cvar multipliers of the
// paper's Section III formula).
#ifndef MPSRAM_EXTRACT_EXTRACTOR_H
#define MPSRAM_EXTRACT_EXTRACTOR_H

#include <cstddef>

#include "extract/options.h"
#include "geom/wire_array.h"
#include "tech/technology.h"

namespace mpsram::extract {

/// Per-unit-length RC breakdown of one wire inside an array.
struct Wire_rc {
    double r = 0.0;              ///< [ohm/m]
    double c_plate = 0.0;        ///< [F/m] area cap to planes
    double c_fringe = 0.0;       ///< [F/m] shielded fringe to planes
    double c_couple_below = 0.0; ///< [F/m] to the neighbor below
    double c_couple_above = 0.0; ///< [F/m] to the neighbor above

    double c_ground() const { return c_plate + c_fringe; }
    double c_total() const
    {
        return c_plate + c_fringe + c_couple_below + c_couple_above;
    }
};

/// Absolute rolled-up RC of a wire (per-length values times wire length).
struct Net_rc {
    double resistance = 0.0;   ///< [ohm]
    double capacitance = 0.0;  ///< [F]
};

/// Variation factors of a victim wire: realized / nominal, the quantities
/// the analytic formula consumes (Rvar, Cvar ~ "1 + x%").
struct Rc_variation {
    double r_factor = 1.0;
    double c_factor = 1.0;

    double r_percent() const { return (r_factor - 1.0) * 100.0; }
    double c_percent() const { return (c_factor - 1.0) * 100.0; }
};

/// Analytical parallel-wire extractor for one BEOL layer.
class Extractor {
public:
    explicit Extractor(tech::Beol_layer layer,
                       Extraction_options opts = Extraction_options{});

    const tech::Beol_layer& layer() const { return layer_; }
    const Extraction_options& options() const { return opts_; }

    /// Per-unit-length RC of wire `i` in the array.  Edge wires get
    /// unshielded fringe and no coupling on the open side.
    Wire_rc wire_rc(const geom::Wire_array& arr, std::size_t i) const;

    /// Absolute RC of wire `i` (uses the wire's own length).
    Net_rc net_rc(const geom::Wire_array& arr, std::size_t i) const;

    /// Resistance per length of an isolated wire of given drawn width.
    double wire_resistance_per_length(double drawn_width) const;

    /// RC variation of the same victim wire between a nominal and a
    /// realized array (arrays must be structurally identical).
    Rc_variation variation(const geom::Wire_array& nominal,
                           const geom::Wire_array& realized,
                           std::size_t victim) const;

private:
    tech::Beol_layer layer_;
    Extraction_options opts_;
};

} // namespace mpsram::extract

#endif // MPSRAM_EXTRACT_EXTRACTOR_H
