// Per-unit-length resistance of a damascene wire.
//
// R/len = rho_eff / A_core, where A_core is the trapezoidal cross-section
// minus the barrier liner and rho_eff includes the first-order
// surface/grain-scattering size effect.  The limiting dimension for the
// size effect is the smaller of the conducting core's mean width and its
// height; for the paper's track plan the height limits, which is why Rbl
// scales essentially with 1/width — exactly the sensitivity Table I implies
// (+3 nm CD -> Rbl -10.36%).
#ifndef MPSRAM_EXTRACT_RESISTANCE_H
#define MPSRAM_EXTRACT_RESISTANCE_H

#include "extract/options.h"
#include "geom/cross_section.h"
#include "tech/technology.h"

namespace mpsram::extract {

/// Conducting core cross-section for a drawn width on a layer (applies
/// taper and, per options, the barrier inset).
geom::Cross_section conducting_core(const tech::Beol_layer& layer,
                                    double drawn_width,
                                    const Extraction_options& opts);

/// Resistance per unit length [ohm/m] of a wire drawn at `drawn_width`.
double resistance_per_length(const tech::Beol_layer& layer,
                             double drawn_width,
                             const Extraction_options& opts);

} // namespace mpsram::extract

#endif // MPSRAM_EXTRACT_RESISTANCE_H
