// Tuning constants of the analytical extraction models.
//
// The defaults are calibrated (see bench/bench_calibration.cpp) so the
// worst-case Table I sensitivities land close to the paper's values; they
// are exposed so studies can explore model sensitivity.
#ifndef MPSRAM_EXTRACT_OPTIONS_H
#define MPSRAM_EXTRACT_OPTIONS_H

namespace mpsram::extract {

struct Extraction_options {
    /// Simpson integration points for the tapered-sidewall coupling
    /// integral (odd, >= 3).
    int integration_points = 17;
    /// Clamp on the local facing gap [m]; a variation corner that shorts
    /// two wires saturates at this gap instead of producing infinities
    /// (the DRC checker reports the short separately).
    double min_gap = 0.3e-9;
    /// Constant corner/fringe coupling term between neighbors, in units of
    /// the ILD permittivity (dimensionless, i.e. C/len = eps * k).
    /// Calibrated against Table I (bench_calibration --search).
    double k_fringe_coupling = 1.254;
    /// Fringe-to-plane coefficient per side per plane (units of eps).
    double k_fringe_ground = 1.642;
    /// Exponent on the fringe shielding factor (s / (s + h))^p.
    double fringe_shield_power = 0.6214;
    /// Model the diffusion barrier as electrically dead area.
    bool include_barrier = true;
};

} // namespace mpsram::extract

#endif // MPSRAM_EXTRACT_OPTIONS_H
