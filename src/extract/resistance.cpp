#include "extract/resistance.h"

#include <algorithm>

#include "util/contracts.h"

namespace mpsram::extract {

geom::Cross_section conducting_core(const tech::Beol_layer& layer,
                                    double drawn_width,
                                    const Extraction_options& opts)
{
    util::expects(drawn_width > 0.0, "drawn width must be positive");
    const auto full = geom::Cross_section::from_taper(
        drawn_width, layer.thickness, layer.taper_angle);
    if (!opts.include_barrier) return full;
    return full.inset(layer.conductor.barrier_thickness);
}

double resistance_per_length(const tech::Beol_layer& layer,
                             double drawn_width,
                             const Extraction_options& opts)
{
    const geom::Cross_section core =
        conducting_core(layer, drawn_width, opts);
    const double limiting = std::min(core.mean_width(), core.height());
    const double rho = layer.conductor.effective_resistivity(limiting);
    const double r = rho / core.area();
    util::ensures(r > 0.0, "resistance must be positive");
    return r;
}

} // namespace mpsram::extract
