// Per-unit-length capacitance components of a wire in a parallel array.
//
// Components per the standard dense-grating decomposition:
//   * sidewall coupling to each neighbor: parallel-plate integral over the
//     tapered facing gap (trenches flare toward each other at the top, so
//     the integral grows super-linearly as drawn spacing shrinks) plus a
//     constant corner-field term;
//   * area capacitance to the conducting planes below (FEOL) and above
//     (next metal);
//   * fringe capacitance to those planes, shielded by the neighbors: the
//     closer the neighbor, the less fringe field escapes to the planes.
#ifndef MPSRAM_EXTRACT_CAPACITANCE_H
#define MPSRAM_EXTRACT_CAPACITANCE_H

#include <optional>

#include "extract/options.h"
#include "tech/technology.h"

namespace mpsram::extract {

/// Sidewall coupling per unit length [F/m] between two wires on `layer`
/// whose drawn (bottom) edge-to-edge spacing is `drawn_spacing`.
double coupling_per_length(const tech::Beol_layer& layer,
                           double drawn_spacing,
                           const Extraction_options& opts);

/// Plate (area) capacitance per unit length [F/m] of a wire of drawn
/// width `drawn_width` to the planes below and above.
double plate_per_length(const tech::Beol_layer& layer,
                        double drawn_width,
                        const Extraction_options& opts);

/// Fringe capacitance per unit length [F/m] to both planes for ONE side of
/// the wire, given the drawn spacing to the neighbor on that side
/// (nullopt = no neighbor, unshielded fringe).
double fringe_per_length(const tech::Beol_layer& layer,
                         std::optional<double> drawn_spacing,
                         const Extraction_options& opts);

} // namespace mpsram::extract

#endif // MPSRAM_EXTRACT_CAPACITANCE_H
