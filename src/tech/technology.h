// The technology description: everything the parameterized LPE tool of the
// paper takes as input ("layer thickness, tapering angles, material
// properties, etch and CMP parameters") plus the process-variability
// assumptions of Section II-A and the FEOL electrical constants the SRAM
// netlists need.
#ifndef MPSRAM_TECH_TECHNOLOGY_H
#define MPSRAM_TECH_TECHNOLOGY_H

#include <string>

#include "geom/drc.h"
#include "tech/material.h"
#include "tech/patterning_option.h"

namespace mpsram::tech {

/// One BEOL routing layer (the study concerns metal1).
struct Beol_layer {
    std::string name;
    /// Track pitch [m].
    double pitch = 0.0;
    /// Nominal drawn line width [m].  The paper's bit lines are drawn at a
    /// non-minimum CD; this is that CD.
    double nominal_width = 0.0;
    /// Metal thickness [m].
    double thickness = 0.0;
    /// Sidewall taper angle from vertical [rad] (damascene: top wider).
    double taper_angle = 0.0;
    Conductor conductor;
    Dielectric ild;
    /// Distance from wire bottom to the conducting plane below (FEOL /
    /// gate level acting as a ground plane) [m].
    double below_plane_dist = 0.0;
    /// Distance from wire top to the plane above (next metal) [m].
    double above_plane_dist = 0.0;
    geom::Drc_rules drc;

    /// Edge-to-edge spacing between nominal neighbors [m].
    double nominal_space() const { return pitch - nominal_width; }
};

/// FEOL electrical constants used by the SRAM netlists and the analytic
/// formula (Section III-A nomenclature: RFE, CFE).
struct Feol_params {
    /// Supply, precharge and word-line high level [V] (paper: 0.7 V).
    double vdd = 0.7;
    /// Sense-amplifier sensitivity |Vbl - Vblb| [V] (paper: 0.07 V).
    double sense_margin = 0.07;
    /// Saturation drive current of a unit NMOS at vgs = vds = vdd [A].
    double nmos_ion = 40e-6;
    /// Saturation drive current of a unit PMOS [A].
    double pmos_ion = 30e-6;
    /// Threshold voltage magnitude [V].
    double vth = 0.25;
    /// Gate capacitance of a unit transistor [F].
    double c_gate = 0.05e-15;
    /// Source/drain junction capacitance of a unit transistor, including
    /// the local-interconnect stub and via down to the device [F].
    double c_junction = 0.045e-15;
};

/// Process-variation assumptions (Section II-A, in-house data).
struct Variability_assumptions {
    /// 3-sigma CD variation for LE3 masks, the SADP core layer and EUV [m].
    double cd_3sigma = 0.0;
    /// 3-sigma SADP spacer thickness variation [m].
    double sadp_spacer_3sigma = 0.0;
    /// 3-sigma overlay error for LE3 masks B and C relative to A [m].
    /// The paper studies the 3 nm - 8 nm range; defaults to the extreme.
    double le3_ol_3sigma = 0.0;
};

/// SRAM cell-level geometry knobs needed to build metal1 track arrays.
struct Cell_geometry {
    /// Cell extent along the bit line (routing direction x) [m].
    double cell_length = 0.0;
    /// Number of metal1 tracks a cell row contributes (BL, VSS, BLB, VDD).
    int tracks_per_cell = 4;
};

/// A complete technology node description.
struct Technology {
    std::string name;
    Beol_layer metal1;
    Beol_layer metal2;  ///< word-line layer; carried for completeness
    Feol_params feol;
    Variability_assumptions variability;
    Cell_geometry cell;

    /// SADP nominal spacer thickness implied by the metal1 track plan:
    /// two tracks per mandrel period, spacing fully spacer-defined.
    double sadp_spacer_nominal() const;
};

/// The imec-N10-like technology used throughout the paper's experiments.
Technology n10();

} // namespace mpsram::tech

#endif // MPSRAM_TECH_TECHNOLOGY_H
