#include "tech/material.h"

#include "util/contracts.h"
#include "util/units.h"

namespace mpsram::tech {

double Conductor::effective_resistivity(double d) const
{
    util::expects(d > 0.0, "limiting dimension must be positive");
    return rho_bulk * (1.0 + size_coeff / d);
}

double Dielectric::permittivity() const
{
    return k * units::eps0;
}

Conductor damascene_copper()
{
    Conductor cu;
    cu.name = "Cu (damascene)";
    cu.rho_bulk = 1.9 * units::uohm_cm;
    // Chosen so a ~25 nm wide wire runs at roughly 2.5x bulk resistivity,
    // consistent with published sub-30 nm Cu line data.
    cu.size_coeff = 38.0 * units::nm;
    cu.barrier_thickness = 1.5 * units::nm;
    cu.rho_barrier = 200.0 * units::uohm_cm;
    return cu;
}

Dielectric low_k_ild()
{
    Dielectric d;
    d.name = "low-k ILD";
    d.k = 2.7;
    return d;
}

} // namespace mpsram::tech
