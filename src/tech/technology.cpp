#include "tech/technology.h"

#include "util/contracts.h"
#include "util/units.h"

namespace mpsram::tech {

using namespace mpsram::units;

double Technology::sadp_spacer_nominal() const
{
    // One SADP period spans two tracks: mandrel line + gap line, separated
    // by two spacers:  2 * pitch = w_mandrel + w_gap + 2 * t_spacer.
    // With uniform track width w this reduces to pitch - w.
    const double t = metal1.pitch - metal1.nominal_width;
    util::ensures(t > 0.0, "track plan leaves no room for SADP spacers");
    return t;
}

Technology n10()
{
    Technology t;
    t.name = "imec-N10-like";

    // --- metal1: the bit-line / power-rail layer -------------------------
    t.metal1.name = "metal1";
    t.metal1.pitch = 45.0 * nm;
    // Non-minimum bit-line CD.  26 nm reproduces the paper's Rbl
    // sensitivity: +3 nm CD -> Rbl ~ -10.4% (Table I, LE3 and EUV rows).
    t.metal1.nominal_width = 26.0 * nm;
    // Thickness / taper / effective plane distances calibrated against the
    // paper's Table I worst-case sensitivities (bench_calibration --search).
    t.metal1.thickness = 25.65 * nm;
    t.metal1.taper_angle = 0.0869;  // ~5 degrees of trench flare
    t.metal1.conductor = damascene_copper();
    t.metal1.ild = low_k_ild();
    t.metal1.below_plane_dist = 82.4 * nm;
    t.metal1.above_plane_dist = 62.85 * nm;
    t.metal1.drc.min_width = 18.0 * nm;
    t.metal1.drc.min_space = 12.0 * nm;

    // --- metal2: vertical word lines (carried for completeness) ----------
    t.metal2.name = "metal2";
    t.metal2.pitch = 64.0 * nm;
    t.metal2.nominal_width = 32.0 * nm;
    t.metal2.thickness = 45.0 * nm;
    t.metal2.taper_angle = 0.052;
    t.metal2.conductor = damascene_copper();
    t.metal2.ild = low_k_ild();
    t.metal2.below_plane_dist = 50.0 * nm;
    t.metal2.above_plane_dist = 55.0 * nm;
    t.metal2.drc.min_width = 24.0 * nm;
    t.metal2.drc.min_space = 24.0 * nm;

    // --- FEOL ------------------------------------------------------------
    t.feol = Feol_params{};  // defaults above are the N10 values

    // --- variability (Section II-A) ---------------------------------------
    t.variability.cd_3sigma = 3.0 * nm;
    t.variability.sadp_spacer_3sigma = 1.5 * nm;
    t.variability.le3_ol_3sigma = 8.0 * nm;  // extreme of the 3-8 nm range

    // --- SRAM cell footprint ----------------------------------------------
    // High-density 6T cell: 4 horizontal metal1 tracks per cell row
    // (BL, VSS, BLB, VDD) and ~100 nm (two gate pitches) along the bit
    // line.  Together with the junction load below this puts the wire share
    // of the per-cell bit-line capacitance near 30%, the fraction the
    // paper's Table III implies.
    t.cell.cell_length = 100.0 * nm;
    t.cell.tracks_per_cell = 4;

    return t;
}

} // namespace mpsram::tech
