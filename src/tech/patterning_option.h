// The three metal1 patterning options compared by the paper (Section I):
// triple litho-etch (LELELE), self-aligned double patterning, and
// single-patterning EUV.
#ifndef MPSRAM_TECH_PATTERNING_OPTION_H
#define MPSRAM_TECH_PATTERNING_OPTION_H

#include <array>
#include <string_view>

namespace mpsram::tech {

enum class Patterning_option {
    le3,   ///< triple litho-etch (LELELE)
    sadp,  ///< self-aligned double patterning
    euv,   ///< single-patterning extreme-UV
};

/// All options, in the order the paper tabulates them.
inline constexpr std::array<Patterning_option, 3> all_patterning_options = {
    Patterning_option::le3, Patterning_option::sadp, Patterning_option::euv};

/// Paper-style label ("LELELE", "SADP", "EUV").
std::string_view to_string(Patterning_option option);

} // namespace mpsram::tech

#endif // MPSRAM_TECH_PATTERNING_OPTION_H
