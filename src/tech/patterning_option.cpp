#include "tech/patterning_option.h"

#include "util/contracts.h"

namespace mpsram::tech {

std::string_view to_string(Patterning_option option)
{
    switch (option) {
    case Patterning_option::le3:
        return "LELELE";
    case Patterning_option::sadp:
        return "SADP";
    case Patterning_option::euv:
        return "EUV";
    }
    throw util::Invariant_error("unknown patterning option");
}

} // namespace mpsram::tech
