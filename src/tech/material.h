// Electrical material models for BEOL conductors and dielectrics.
//
// Resistivity of nanoscale copper rises steeply as the wire narrows
// (surface and grain-boundary scattering); the extractor prices that via a
// first-order size-effect model, which is what makes Rbl respond
// super-linearly to patterning CD loss.
#ifndef MPSRAM_TECH_MATERIAL_H
#define MPSRAM_TECH_MATERIAL_H

#include <string>

namespace mpsram::tech {

/// Interconnect conductor (e.g. damascene Cu with a TaN liner).
struct Conductor {
    std::string name;
    /// Bulk resistivity [ohm*m].
    double rho_bulk = 0.0;
    /// Size-effect length [m]: rho_eff = rho_bulk * (1 + size_coeff / d)
    /// where d is the limiting cross-section dimension.  First-order
    /// Fuchs-Sondheimer / Mayadas-Shatzkes surrogate.
    double size_coeff = 0.0;
    /// Diffusion-barrier liner thickness [m] (sidewalls and bottom).
    double barrier_thickness = 0.0;
    /// Barrier resistivity [ohm*m]; high enough that the liner is usually
    /// treated as electrically dead area.
    double rho_barrier = 0.0;

    /// Effective resistivity for a conducting core of limiting dimension
    /// `d` [m] (the smaller of mean width and thickness).
    double effective_resistivity(double d) const;
};

/// Inter-layer / inter-metal dielectric.
struct Dielectric {
    std::string name;
    /// Relative permittivity.
    double k = 1.0;

    /// Absolute permittivity [F/m].
    double permittivity() const;
};

/// Reference materials.
Conductor damascene_copper();
Dielectric low_k_ild();

} // namespace mpsram::tech

#endif // MPSRAM_TECH_MATERIAL_H
