#include "pattern/sadp.h"

#include "util/contracts.h"

namespace mpsram::pattern {

Sadp_engine::Sadp_engine(const tech::Technology& tech)
    : spacer_nominal_(tech.sadp_spacer_nominal())
{
    axes_ = {
        {"cd_core", tech.variability.cd_3sigma / 3.0},
        {"spacer", tech.variability.sadp_spacer_3sigma / 3.0},
    };
}

geom::Wire_array Sadp_engine::decompose(geom::Wire_array nominal) const
{
    for (std::size_t i = 0; i < nominal.size(); ++i) {
        nominal[i].color = geom::Mask_color::mask_a;  // one core mask
        nominal[i].sadp = (i % 2 == 1) ? geom::Sadp_class::mandrel
                                       : geom::Sadp_class::gap;
    }
    return nominal;
}

geom::Wire_array Sadp_engine::realize(const geom::Wire_array& decomposed,
                                      std::span<const double> sample) const
{
    check_sample(sample);
    const double dcd = sample[cd_core];
    const double dsp = sample[spacer];

    // Mandrels print directly: symmetric CD bias, center fixed (a single
    // core mask has no self-overlay).  Gap lines are bounded by the
    // spacers on the neighboring mandrels.
    std::vector<geom::Wire> out;
    out.reserve(decomposed.size());
    for (std::size_t i = 0; i < decomposed.size(); ++i) {
        geom::Wire w = decomposed[i];
        switch (w.sadp) {
        case geom::Sadp_class::mandrel:
            w.width += dcd;
            break;
        case geom::Sadp_class::gap: {
            // Lower edge: neighbor mandrel's top edge + spacer; upper edge
            // symmetric.  Edge wires without a mandrel neighbor behave as
            // if one sat a pitch away (guard tracks make edges irrelevant
            // in the study).  Net effect on the width:
            w.width -= dcd + 2.0 * dsp;
            // Center: mandrel centers don't move and the spacer grows
            // symmetrically on both bounding mandrels, so the gap line's
            // center is unchanged.
            break;
        }
        case geom::Sadp_class::none:
            throw util::Precondition_error(
                "SADP realize on undecomposed wire array");
        }
        util::ensures(w.width > 0.0, "SADP variation pinched a wire off");
        out.push_back(std::move(w));
    }
    return geom::Wire_array(std::move(out));
}

void Sadp_engine::realize_into(const geom::Wire_array& decomposed,
                               std::span<const double> sample,
                               geom::Wire_array& out) const
{
    check_sample(sample);
    if (out.size() != decomposed.size()) out = decomposed;
    const double dcd = sample[cd_core];
    const double dsp = sample[spacer];

    for (std::size_t i = 0; i < decomposed.size(); ++i) {
        double width = decomposed[i].width;
        switch (decomposed[i].sadp) {
        case geom::Sadp_class::mandrel:
            width += dcd;
            break;
        case geom::Sadp_class::gap:
            width -= dcd + 2.0 * dsp;
            break;
        case geom::Sadp_class::none:
            throw util::Precondition_error(
                "SADP realize on undecomposed wire array");
        }
        util::ensures(width > 0.0, "SADP variation pinched a wire off");
        out[i].width = width;
        out[i].y_center = decomposed[i].y_center;
    }
}

} // namespace mpsram::pattern
