#include "pattern/euv.h"

#include "util/contracts.h"

namespace mpsram::pattern {

Euv_engine::Euv_engine(const tech::Technology& tech)
{
    axes_ = {
        {"cd", tech.variability.cd_3sigma / 3.0},
    };
}

geom::Wire_array Euv_engine::decompose(geom::Wire_array nominal) const
{
    for (std::size_t i = 0; i < nominal.size(); ++i) {
        nominal[i].color = geom::Mask_color::mask_a;
        nominal[i].sadp = geom::Sadp_class::none;
    }
    return nominal;
}

geom::Wire_array Euv_engine::realize(const geom::Wire_array& decomposed,
                                     std::span<const double> sample) const
{
    check_sample(sample);
    const double dcd = sample[cd];

    std::vector<geom::Wire> out;
    out.reserve(decomposed.size());
    for (std::size_t i = 0; i < decomposed.size(); ++i) {
        geom::Wire w = decomposed[i];
        w.width += dcd;
        util::ensures(w.width > 0.0, "EUV CD bias pinched a wire off");
        out.push_back(std::move(w));
    }
    return geom::Wire_array(std::move(out));
}

void Euv_engine::realize_into(const geom::Wire_array& decomposed,
                              std::span<const double> sample,
                              geom::Wire_array& out) const
{
    check_sample(sample);
    if (out.size() != decomposed.size()) out = decomposed;
    const double dcd = sample[cd];

    for (std::size_t i = 0; i < decomposed.size(); ++i) {
        const double width = decomposed[i].width + dcd;
        util::ensures(width > 0.0, "EUV CD bias pinched a wire off");
        out[i].width = width;
        out[i].y_center = decomposed[i].y_center;
    }
}

} // namespace mpsram::pattern
