#include "pattern/engine.h"

#include "pattern/euv.h"
#include "pattern/le3.h"
#include "pattern/sadp.h"
#include "util/contracts.h"

namespace mpsram::pattern {

std::string_view Patterning_engine::name() const
{
    return tech::to_string(option());
}

Process_sample Patterning_engine::nominal_sample() const
{
    return Process_sample(axes().size(), 0.0);
}

Process_sample Patterning_engine::sample_gaussian(util::Rng& rng,
                                                  double truncate_k) const
{
    Process_sample s;
    s.reserve(axes().size());
    for (const Variation_axis& axis : axes()) {
        s.push_back(rng.truncated_normal(0.0, axis.sigma, truncate_k));
    }
    return s;
}

void Patterning_engine::realize_into(const geom::Wire_array& decomposed,
                                     std::span<const double> sample,
                                     geom::Wire_array& out) const
{
    out = realize(decomposed, sample);
}

void Patterning_engine::check_sample(std::span<const double> sample) const
{
    util::expects(sample.size() == axes().size(),
                  "process sample size must match the engine's axis count");
}

std::unique_ptr<Patterning_engine> make_engine(tech::Patterning_option option,
                                               const tech::Technology& tech)
{
    switch (option) {
    case tech::Patterning_option::le3:
        return std::make_unique<Le3_engine>(tech);
    case tech::Patterning_option::sadp:
        return std::make_unique<Sadp_engine>(tech);
    case tech::Patterning_option::euv:
        return std::make_unique<Euv_engine>(tech);
    }
    throw util::Precondition_error("unknown patterning option");
}

} // namespace mpsram::pattern
