#include "pattern/le3.h"

#include "util/contracts.h"

namespace mpsram::pattern {

namespace {

geom::Mask_color color_of_index(std::size_t i)
{
    switch (i % 3) {
    case 0: return geom::Mask_color::mask_a;
    case 1: return geom::Mask_color::mask_b;
    default: return geom::Mask_color::mask_c;
    }
}

std::size_t mask_index(geom::Mask_color c)
{
    switch (c) {
    case geom::Mask_color::mask_a: return 0;
    case geom::Mask_color::mask_b: return 1;
    case geom::Mask_color::mask_c: return 2;
    case geom::Mask_color::unassigned: break;
    }
    throw util::Precondition_error("LE3 realize on undecomposed wire array");
}

} // namespace

Le3_engine::Le3_engine(const tech::Technology& tech)
{
    const double cd_sigma = tech.variability.cd_3sigma / 3.0;
    const double ol_sigma = tech.variability.le3_ol_3sigma / 3.0;
    axes_ = {
        {"cd_mask_a", cd_sigma},
        {"cd_mask_b", cd_sigma},
        {"cd_mask_c", cd_sigma},
        {"overlay_b", ol_sigma},
        {"overlay_c", ol_sigma},
    };
}

geom::Wire_array Le3_engine::decompose(geom::Wire_array nominal) const
{
    // Cyclic coloring: a dense 1-D line array is 3-colorable by position;
    // this is the standard LE3 decomposition for gratings.
    for (std::size_t i = 0; i < nominal.size(); ++i) {
        nominal[i].color = color_of_index(i);
        nominal[i].sadp = geom::Sadp_class::none;
    }
    return nominal;
}

geom::Wire_array Le3_engine::realize(const geom::Wire_array& decomposed,
                                     std::span<const double> sample) const
{
    check_sample(sample);

    // Mask A is the alignment reference: B and C shift relative to it.
    const double cd[3] = {sample[cd_a], sample[cd_b], sample[cd_c]};
    const double ol[3] = {0.0, sample[ol_b], sample[ol_c]};

    std::vector<geom::Wire> out;
    out.reserve(decomposed.size());
    for (std::size_t i = 0; i < decomposed.size(); ++i) {
        geom::Wire w = decomposed[i];
        const std::size_t m = mask_index(w.color);
        w.width += cd[m];
        util::ensures(w.width > 0.0, "LE3 CD bias pinched a wire off");
        w.y_center += ol[m];
        out.push_back(std::move(w));
    }
    // Overlay never exceeds a pitch in practice, so the track order is
    // preserved and the Wire_array ordering invariant holds.
    return geom::Wire_array(std::move(out));
}

void Le3_engine::realize_into(const geom::Wire_array& decomposed,
                              std::span<const double> sample,
                              geom::Wire_array& out) const
{
    check_sample(sample);
    if (out.size() != decomposed.size()) out = decomposed;

    const double cd[3] = {sample[cd_a], sample[cd_b], sample[cd_c]};
    const double ol[3] = {0.0, sample[ol_b], sample[ol_c]};

    for (std::size_t i = 0; i < decomposed.size(); ++i) {
        const std::size_t m = mask_index(decomposed[i].color);
        const double width = decomposed[i].width + cd[m];
        util::ensures(width > 0.0, "LE3 CD bias pinched a wire off");
        out[i].width = width;
        // Same track-order-preserving argument as realize(): overlay stays
        // below a pitch, so in-place y updates keep the array sorted.
        out[i].y_center = decomposed[i].y_center + ol[m];
    }
}

} // namespace mpsram::pattern
