// Patterning-engine interface: how a mask-level process realization turns a
// nominal wire array into printed geometry.
//
// Each engine owns (a) the decomposition rule that assigns nominal wires to
// masks / SADP line classes, (b) the list of independent variation axes
// (per-mask CD bias, overlay, spacer thickness), and (c) the geometric
// realization of a sampled point on those axes.
#ifndef MPSRAM_PATTERN_ENGINE_H
#define MPSRAM_PATTERN_ENGINE_H

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "geom/wire_array.h"
#include "tech/technology.h"
#include "util/rng.h"

namespace mpsram::pattern {

/// One independent Gaussian variation source of a patterning process.
struct Variation_axis {
    std::string name;  ///< e.g. "cd_mask_b", "overlay_c", "spacer"
    double sigma = 0;  ///< 1-sigma magnitude [m]
};

/// A realization point: one deviation value [m] per engine axis, in the
/// order reported by Patterning_engine::axes().
using Process_sample = std::vector<double>;

class Patterning_engine {
public:
    virtual ~Patterning_engine() = default;

    Patterning_engine(const Patterning_engine&) = delete;
    Patterning_engine& operator=(const Patterning_engine&) = delete;

    virtual tech::Patterning_option option() const = 0;

    /// Paper-style label of the option ("LELELE", "SADP", "EUV").
    std::string_view name() const;

    /// The engine's independent variation axes.
    virtual const std::vector<Variation_axis>& axes() const = 0;

    /// Assign mask colors / SADP classes.  Must be called on the nominal
    /// array before realize(); idempotent.
    virtual geom::Wire_array decompose(geom::Wire_array nominal) const = 0;

    /// Print the decomposed nominal array under the given process sample.
    /// `sample` must have exactly axes().size() entries.
    virtual geom::Wire_array realize(const geom::Wire_array& decomposed,
                                     std::span<const double> sample) const = 0;

    /// realize() into caller-owned storage.  Precondition: `out` is either
    /// empty/size-mismatched (it is then reset to a copy of `decomposed`)
    /// or a previous realize_into target for the *same* decomposed array —
    /// the per-worker scratch pattern of the Monte-Carlo and corner-search
    /// hot loops.  A same-sized buffer from a *different* array is not
    /// detected and yields garbage (stale nets/lengths).  In the reuse
    /// case wires are updated in place — no allocation, no net-label
    /// copies.  Results are bitwise identical to realize().
    virtual void realize_into(const geom::Wire_array& decomposed,
                              std::span<const double> sample,
                              geom::Wire_array& out) const;

    /// The all-zeros (nominal) sample.
    Process_sample nominal_sample() const;

    /// Gaussian sample of every axis, truncated at +/- truncate_k sigma.
    Process_sample sample_gaussian(util::Rng& rng,
                                   double truncate_k = 4.0) const;

protected:
    Patterning_engine() = default;

    /// Shared precondition helper for realize() implementations.
    void check_sample(std::span<const double> sample) const;
};

/// Factory keyed on the paper's three options.
std::unique_ptr<Patterning_engine> make_engine(tech::Patterning_option option,
                                               const tech::Technology& tech);

} // namespace mpsram::pattern

#endif // MPSRAM_PATTERN_ENGINE_H
