// Corner enumeration over a patterning engine's variation axes.
//
// Section II-B: "Using all combinations of CD and OL errors as input
// parameters, we identified the worst case scenario for each option with
// respect to Cbl increase."  This module enumerates every {-3s, 0, +3s}
// combination, scores each with a caller-supplied metric, and reports the
// maximizing corner.
#ifndef MPSRAM_PATTERN_CORNERS_H
#define MPSRAM_PATTERN_CORNERS_H

#include <functional>
#include <string>
#include <vector>

#include "pattern/engine.h"

namespace mpsram::pattern {

/// One evaluated corner.
struct Corner {
    Process_sample sample;
    double metric = 0.0;

    /// Human-readable rendering, e.g. "cd_mask_a=+3s overlay_b=-3s".
    std::string describe(const Patterning_engine& engine) const;
};

struct Corner_search {
    Corner worst;                ///< maximizing corner
    std::vector<Corner> all;     ///< every evaluated corner
};

/// Metric: maps a realized process sample to a score (e.g. extracted Cbl).
using Corner_metric = std::function<double(const Process_sample&)>;

/// Enumerate all +/-k-sigma (and optionally zero) combinations of the
/// engine's axes and return the metric-maximizing corner.
/// `levels_per_axis` is 2 ({-k, +k}) or 3 ({-k, 0, +k}).
Corner_search enumerate_corners(const Patterning_engine& engine,
                                const Corner_metric& metric,
                                double k_sigma = 3.0,
                                int levels_per_axis = 3);

} // namespace mpsram::pattern

#endif // MPSRAM_PATTERN_CORNERS_H
