// Corner enumeration over a patterning engine's variation axes.
//
// Section II-B: "Using all combinations of CD and OL errors as input
// parameters, we identified the worst case scenario for each option with
// respect to Cbl increase."  This module enumerates every {-3s, 0, +3s}
// combination, scores each with a caller-supplied metric, and reports the
// maximizing corner.
#ifndef MPSRAM_PATTERN_CORNERS_H
#define MPSRAM_PATTERN_CORNERS_H

#include <functional>
#include <string>
#include <vector>

#include "core/runner.h"
#include "pattern/engine.h"

namespace mpsram::pattern {

/// One evaluated corner.
struct Corner {
    Process_sample sample;
    double metric = 0.0;

    /// Human-readable rendering, e.g. "cd_mask_a=+3s overlay_b=-3s".
    std::string describe(const Patterning_engine& engine) const;
};

struct Corner_search {
    Corner worst;                ///< maximizing corner
    std::vector<Corner> all;     ///< every evaluated corner
};

/// Metric: maps a realized process sample to a score (e.g. extracted Cbl).
/// Must be safe to call concurrently from several threads.
using Corner_metric = std::function<double(const Process_sample&)>;

/// Metric that also receives the runner context, so implementations can
/// key per-worker scratch (geometry buffers, extractor caches) on
/// Run_context::worker.  The context must never influence the returned
/// value — worker assignment is nondeterministic.
using Corner_metric_ctx =
    std::function<double(const Process_sample&, const core::Run_context&)>;

/// All +/-k-sigma level combinations of the engine's axes, in mixed-radix
/// order (axis 0 fastest).  `levels_per_axis` is 2 ({-k, +k}) or 3
/// ({-k, 0, +k}).
std::vector<Process_sample> corner_samples(const Patterning_engine& engine,
                                           double k_sigma = 3.0,
                                           int levels_per_axis = 3);

/// Enumerate all +/-k-sigma (and optionally zero) combinations of the
/// engine's axes and return the metric-maximizing corner.  The metric
/// evaluations are independent jobs on `runner`; the reported worst
/// corner (first maximum in enumeration order) is identical at any
/// thread count.
Corner_search enumerate_corners(const Patterning_engine& engine,
                                const Corner_metric& metric,
                                double k_sigma = 3.0,
                                int levels_per_axis = 3,
                                const core::Runner_options& runner = {});
Corner_search enumerate_corners(const Patterning_engine& engine,
                                const Corner_metric_ctx& metric,
                                double k_sigma = 3.0,
                                int levels_per_axis = 3,
                                const core::Runner_options& runner = {});

} // namespace mpsram::pattern

#endif // MPSRAM_PATTERN_CORNERS_H
