#include "pattern/corners.h"

#include <cmath>
#include <sstream>

#include "util/contracts.h"

namespace mpsram::pattern {

std::string Corner::describe(const Patterning_engine& engine) const
{
    const auto& axes = engine.axes();
    util::expects(sample.size() == axes.size(),
                  "corner sample does not match engine axes");
    std::ostringstream out;
    bool first = true;
    for (std::size_t i = 0; i < axes.size(); ++i) {
        if (sample[i] == 0.0) continue;
        if (!first) out << ' ';
        first = false;
        const double sigmas =
            axes[i].sigma > 0.0 ? sample[i] / axes[i].sigma : 0.0;
        out << axes[i].name << '='
            << (sigmas >= 0.0 ? '+' : '-')
            << std::lround(std::fabs(sigmas)) << 's';
    }
    if (first) out << "nominal";
    return out.str();
}

std::vector<Process_sample> corner_samples(const Patterning_engine& engine,
                                           double k_sigma,
                                           int levels_per_axis)
{
    util::expects(levels_per_axis == 2 || levels_per_axis == 3,
                  "levels_per_axis must be 2 or 3");
    util::expects(k_sigma > 0.0, "k_sigma must be positive");

    const auto& axes = engine.axes();
    const std::size_t dims = axes.size();

    std::size_t total = 1;
    for (std::size_t i = 0; i < dims; ++i) {
        total *= static_cast<std::size_t>(levels_per_axis);
    }

    std::vector<Process_sample> samples;
    samples.reserve(total);

    // Mixed-radix counter over the per-axis levels.
    std::vector<int> digits(dims, 0);
    for (std::size_t it = 0; it < total; ++it) {
        Process_sample s(dims, 0.0);
        for (std::size_t d = 0; d < dims; ++d) {
            double level = 0.0;
            if (levels_per_axis == 2) {
                level = (digits[d] == 0) ? -k_sigma : k_sigma;
            } else {
                level = static_cast<double>(digits[d] - 1) * k_sigma;
            }
            s[d] = level * axes[d].sigma;
        }
        samples.push_back(std::move(s));

        // Increment the counter.
        for (std::size_t d = 0; d < dims; ++d) {
            if (++digits[d] < levels_per_axis) break;
            digits[d] = 0;
        }
    }
    return samples;
}

Corner_search enumerate_corners(const Patterning_engine& engine,
                                const Corner_metric& metric,
                                double k_sigma,
                                int levels_per_axis,
                                const core::Runner_options& runner)
{
    return enumerate_corners(
        engine,
        Corner_metric_ctx([&metric](const Process_sample& s,
                                    const core::Run_context&) {
            return metric(s);
        }),
        k_sigma, levels_per_axis, runner);
}

Corner_search enumerate_corners(const Patterning_engine& engine,
                                const Corner_metric_ctx& metric,
                                double k_sigma,
                                int levels_per_axis,
                                const core::Runner_options& runner)
{
    std::vector<Process_sample> samples =
        corner_samples(engine, k_sigma, levels_per_axis);

    Corner_search result;
    result.all.resize(samples.size());
    for (std::size_t i = 0; i < samples.size(); ++i) {
        result.all[i].sample = std::move(samples[i]);
    }

    // Each corner scores into its own slot; the argmax scan below stays
    // serial and in enumeration order, so ties break identically at any
    // thread count.
    core::run_indexed(
        result.all.size(),
        [&](std::size_t i, const core::Run_context& ctx) {
            result.all[i].metric = metric(result.all[i].sample, ctx);
        },
        runner);

    util::ensures(!result.all.empty(), "corner enumeration produced nothing");
    result.worst = result.all.front();
    for (const Corner& c : result.all) {
        if (c.metric > result.worst.metric) result.worst = c;
    }
    return result;
}

} // namespace mpsram::pattern
