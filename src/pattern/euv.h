// Single-patterning EUV.
//
// One exposure prints every line: a single CD bias moves all widths
// together and there is no overlay term.  The paper carries EUV as the
// reference point, noting its 3 nm 3-sigma CD assumption "may be
// pessimistic".
#ifndef MPSRAM_PATTERN_EUV_H
#define MPSRAM_PATTERN_EUV_H

#include "pattern/engine.h"

namespace mpsram::pattern {

class Euv_engine final : public Patterning_engine {
public:
    explicit Euv_engine(const tech::Technology& tech);

    tech::Patterning_option option() const override
    {
        return tech::Patterning_option::euv;
    }

    const std::vector<Variation_axis>& axes() const override { return axes_; }

    geom::Wire_array decompose(geom::Wire_array nominal) const override;

    geom::Wire_array realize(const geom::Wire_array& decomposed,
                             std::span<const double> sample) const override;

    void realize_into(const geom::Wire_array& decomposed,
                      std::span<const double> sample,
                      geom::Wire_array& out) const override;

    enum Axis : std::size_t {
        cd = 0,
        axis_count = 1,
    };

private:
    std::vector<Variation_axis> axes_;
};

} // namespace mpsram::pattern

#endif // MPSRAM_PATTERN_EUV_H
