// Triple litho-etch (LELELE) patterning.
//
// Consecutive tracks cycle through masks A, B, C, so same-mask neighbors
// sit three pitches apart.  Masks B and C are aligned to mask A (paper
// assumption, Section II-A), so their overlay errors shift whole line
// groups vertically while mask A stays put; every mask also carries an
// independent CD bias.  This is the option whose worst case crunches one
// spacing by CD growth *and* opposing overlay shifts (Fig. 2, top).
#ifndef MPSRAM_PATTERN_LE3_H
#define MPSRAM_PATTERN_LE3_H

#include "pattern/engine.h"

namespace mpsram::pattern {

class Le3_engine final : public Patterning_engine {
public:
    explicit Le3_engine(const tech::Technology& tech);

    tech::Patterning_option option() const override
    {
        return tech::Patterning_option::le3;
    }

    const std::vector<Variation_axis>& axes() const override { return axes_; }

    geom::Wire_array decompose(geom::Wire_array nominal) const override;

    geom::Wire_array realize(const geom::Wire_array& decomposed,
                             std::span<const double> sample) const override;

    void realize_into(const geom::Wire_array& decomposed,
                      std::span<const double> sample,
                      geom::Wire_array& out) const override;

    /// Axis indices within a Process_sample.
    enum Axis : std::size_t {
        cd_a = 0,
        cd_b = 1,
        cd_c = 2,
        ol_b = 3,
        ol_c = 4,
        axis_count = 5,
    };

private:
    std::vector<Variation_axis> axes_;
};

} // namespace mpsram::pattern

#endif // MPSRAM_PATTERN_LE3_H
