// Self-aligned double patterning (SADP).
//
// Mandrel lines are printed lithographically; spacers of nominally uniform
// thickness are deposited on every mandrel sidewall; the lines between
// spacers ("gap" lines) are defined by whatever room remains.  Spacings are
// therefore *spacer-defined everywhere* — the self-aligned property that
// makes SADP's coupling-capacitance variability so small — and the gap-line
// width anti-correlates with the mandrel CD:
//
//     w_gap = 2*pitch - w_mandrel - dCD - 2*(t_spacer + dSp)
//
// In the paper's SRAM track plan the bit lines are the spacer/gap-defined
// lines and the power rails are mandrel-defined, which produces the
// Rbl <-> Rvss anti-correlation discussed in Section III-A.
#ifndef MPSRAM_PATTERN_SADP_H
#define MPSRAM_PATTERN_SADP_H

#include "pattern/engine.h"

namespace mpsram::pattern {

class Sadp_engine final : public Patterning_engine {
public:
    explicit Sadp_engine(const tech::Technology& tech);

    tech::Patterning_option option() const override
    {
        return tech::Patterning_option::sadp;
    }

    const std::vector<Variation_axis>& axes() const override { return axes_; }

    /// Odd-indexed tracks become mandrels, even-indexed tracks gap lines.
    /// With the SRAM track order (BL, VSS, BLB, VDD) this puts every power
    /// rail on a mandrel and every bit line in a gap, as the paper states.
    geom::Wire_array decompose(geom::Wire_array nominal) const override;

    geom::Wire_array realize(const geom::Wire_array& decomposed,
                             std::span<const double> sample) const override;

    void realize_into(const geom::Wire_array& decomposed,
                      std::span<const double> sample,
                      geom::Wire_array& out) const override;

    enum Axis : std::size_t {
        cd_core = 0,
        spacer = 1,
        axis_count = 2,
    };

    double nominal_spacer() const { return spacer_nominal_; }

private:
    std::vector<Variation_axis> axes_;
    double spacer_nominal_ = 0.0;
};

} // namespace mpsram::pattern

#endif // MPSRAM_PATTERN_SADP_H
